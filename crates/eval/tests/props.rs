//! Property-based tests for the metric library: confusion-matrix algebra,
//! ROC/AUC invariants, DTW metric-ish properties, KDE positivity.

use eval::{auc, dtw_1d, BinaryCounts, ConfusionMatrix, GaussianKde, RocCurve};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Confusion counts always reconcile: totals, accuracy in [0,1], and
    /// micro-average totals = classes * observations.
    #[test]
    fn confusion_matrix_reconciles(
        obs in prop::collection::vec((0usize..4, 0usize..4), 1..100),
    ) {
        let mut m = ConfusionMatrix::new(4);
        for &(t, p) in &obs {
            m.record(t, p);
        }
        prop_assert_eq!(m.total(), obs.len());
        let acc = m.accuracy();
        prop_assert!((0.0..=1.0).contains(&acc));
        prop_assert_eq!(m.micro_average().total(), 4 * obs.len());
        // Per-class recall is bounded wherever defined.
        for c in 0..4 {
            let r = m.class_recall(c);
            prop_assert!(r.is_nan() || (0.0..=1.0).contains(&r));
        }
    }

    /// Merging binary counts is the same as counting the concatenation.
    #[test]
    fn binary_counts_merge_is_concat(
        a in prop::collection::vec((any::<bool>(), any::<bool>()), 1..50),
        b in prop::collection::vec((any::<bool>(), any::<bool>()), 1..50),
    ) {
        let to_counts = |xs: &[(bool, bool)]| {
            let (pred, truth): (Vec<bool>, Vec<bool>) = xs.iter().cloned().unzip();
            BinaryCounts::from_predictions(&pred, &truth)
        };
        let mut merged = to_counts(&a);
        merged.merge(&to_counts(&b));
        let concat: Vec<(bool, bool)> = a.iter().chain(b.iter()).cloned().collect();
        prop_assert_eq!(merged, to_counts(&concat));
    }

    /// F1 is always within [0, 1] and zero without true positives.
    #[test]
    fn f1_bounds(tp in 0usize..50, fp in 0usize..50, tn in 0usize..50, fn_ in 0usize..50) {
        let c = BinaryCounts { tp, fp, tn, fn_ };
        let f1 = c.f1();
        prop_assert!((0.0..=1.0).contains(&f1));
        if tp == 0 {
            prop_assert_eq!(f1, 0.0);
        }
    }

    /// AUC is invariant under any strictly monotone transform of scores.
    #[test]
    fn auc_monotone_invariance(scores in prop::collection::vec(-5.0f32..5.0, 6..40)) {
        let labels: Vec<bool> = scores.iter().enumerate().map(|(i, _)| i % 2 == 0).collect();
        if let Some(a) = auc(&scores, &labels) {
            let transformed: Vec<f32> = scores.iter().map(|&s| (s * 0.3).exp()).collect();
            let b = auc(&transformed, &labels).unwrap();
            prop_assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    /// ROC curves are monotone non-decreasing in both axes.
    #[test]
    fn roc_is_monotone(scores in prop::collection::vec(0.0f32..1.0, 6..60)) {
        let labels: Vec<bool> = scores.iter().map(|&s| s + 0.3 > 0.8).collect();
        if let Some(curve) = RocCurve::from_scores(&scores, &labels) {
            for w in curve.points().windows(2) {
                prop_assert!(w[1].fpr >= w[0].fpr - 1e-7);
                prop_assert!(w[1].tpr >= w[0].tpr - 1e-7);
            }
            prop_assert!((0.0..=1.0).contains(&curve.auc()));
        }
    }

    /// DTW: identity, symmetry, and the alignment never exceeds the
    /// lock-step cost.
    #[test]
    fn dtw_metric_properties(
        a in prop::collection::vec(-2.0f32..2.0, 4..30),
        b in prop::collection::vec(-2.0f32..2.0, 4..30),
    ) {
        prop_assert_eq!(dtw_1d(&a, &a, None).unwrap().distance, 0.0);
        let ab = dtw_1d(&a, &b, None).unwrap().distance;
        let ba = dtw_1d(&b, &a, None).unwrap().distance;
        prop_assert!((ab - ba).abs() < 1e-3 * (1.0 + ab.abs()));
        if a.len() == b.len() {
            let lockstep: f32 = a.iter().zip(b.iter()).map(|(x, y)| (x - y).abs()).sum();
            prop_assert!(ab <= lockstep + 1e-3);
        }
    }

    /// KDE densities are positive at the data points and decay far away.
    #[test]
    fn kde_positive_and_decaying(pts in prop::collection::vec(-1.0f32..1.0, 5..40)) {
        let data: Vec<Vec<f32>> = pts.iter().map(|&x| vec![x]).collect();
        let kde = GaussianKde::fit(&data).unwrap();
        for p in &data {
            prop_assert!(kde.pdf(p) > 0.0);
        }
        let near = kde.pdf(&[0.0]);
        let far = kde.pdf(&[1e4]);
        prop_assert!(far <= near);
    }
}
