//! Gaussian kernel density estimation.
//!
//! §III of the paper models each erroneous-gesture class as a distribution
//! estimated "using Gaussian kernels" and compares classes with
//! Jensen–Shannon divergence (Fig. 5). This module provides a multivariate
//! KDE with a diagonal Scott's-rule bandwidth.

use serde::{Deserialize, Serialize};

/// Multivariate Gaussian KDE with per-dimension (diagonal) bandwidths chosen
/// by Scott's rule: `h_d = sigma_d * n^(-1 / (dim + 4))`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaussianKde {
    points: Vec<Vec<f32>>,
    bandwidth: Vec<f32>,
    log_norm: f32,
}

impl GaussianKde {
    /// Fits a KDE to `points` (each an equal-length feature vector).
    ///
    /// Returns `None` if `points` is empty or dimensions are inconsistent.
    pub fn fit(points: &[Vec<f32>]) -> Option<Self> {
        let n = points.len();
        if n == 0 {
            return None;
        }
        let dim = points[0].len();
        if dim == 0 || points.iter().any(|p| p.len() != dim) {
            return None;
        }

        // Per-dimension std for Scott's rule; floor to avoid zero bandwidth
        // on constant dimensions.
        let mut mean = vec![0.0f64; dim];
        for p in points {
            for (m, &x) in mean.iter_mut().zip(p.iter()) {
                *m += x as f64;
            }
        }
        for m in &mut mean {
            *m /= n as f64;
        }
        let mut var = vec![0.0f64; dim];
        for p in points {
            for ((v, &x), m) in var.iter_mut().zip(p.iter()).zip(mean.iter()) {
                let d = x as f64 - m;
                *v += d * d;
            }
        }
        let scott = (n as f64).powf(-1.0 / (dim as f64 + 4.0));
        let bandwidth: Vec<f32> = var
            .iter()
            .map(|&v| {
                let sigma = (v / n as f64).sqrt().max(1e-3);
                (sigma * scott) as f32
            })
            .collect();

        // log of (2π)^(d/2) * prod(h_d) * n
        let mut log_norm = (dim as f32) * 0.5 * (2.0 * std::f32::consts::PI).ln();
        for &h in &bandwidth {
            log_norm += h.ln();
        }
        log_norm += (n as f32).ln();

        Some(Self { points: points.to_vec(), bandwidth, log_norm })
    }

    /// Number of fitted points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the KDE holds no points (never true for a fitted KDE).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.bandwidth.len()
    }

    /// Per-dimension bandwidths.
    pub fn bandwidth(&self) -> &[f32] {
        &self.bandwidth
    }

    /// Probability density at `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn pdf(&self, x: &[f32]) -> f32 {
        self.log_pdf(x).exp()
    }

    /// Log-density at `x`, computed with a log-sum-exp over kernels for
    /// numerical stability.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn log_pdf(&self, x: &[f32]) -> f32 {
        assert_eq!(x.len(), self.dim(), "query dimension mismatch");
        let mut log_terms: Vec<f32> = Vec::with_capacity(self.points.len());
        for p in &self.points {
            let mut e = 0.0f32;
            for ((&xi, &pi), &h) in x.iter().zip(p.iter()).zip(self.bandwidth.iter()) {
                let z = (xi - pi) / h;
                e += z * z;
            }
            log_terms.push(-0.5 * e);
        }
        let max = log_terms.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let sum: f32 = log_terms.iter().map(|&t| (t - max).exp()).sum();
        max + sum.ln() - self.log_norm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn fit_rejects_degenerate_input() {
        assert!(GaussianKde::fit(&[]).is_none());
        assert!(GaussianKde::fit(&[vec![]]).is_none());
        assert!(GaussianKde::fit(&[vec![1.0], vec![1.0, 2.0]]).is_none());
    }

    #[test]
    fn pdf_peaks_near_data() {
        let pts: Vec<Vec<f32>> = vec![vec![0.0], vec![0.1], vec![-0.1]];
        let kde = GaussianKde::fit(&pts).unwrap();
        assert!(kde.pdf(&[0.0]) > kde.pdf(&[5.0]));
    }

    #[test]
    fn univariate_density_integrates_to_one() {
        let mut rng = SmallRng::seed_from_u64(3);
        let pts: Vec<Vec<f32>> = (0..50).map(|_| vec![rng.gen_range(-1.0..1.0)]).collect();
        let kde = GaussianKde::fit(&pts).unwrap();
        // Riemann sum over a wide interval.
        let (lo, hi, steps) = (-6.0f32, 6.0f32, 2400usize);
        let dx = (hi - lo) / steps as f32;
        let integral: f32 = (0..steps).map(|i| kde.pdf(&[lo + (i as f32 + 0.5) * dx]) * dx).sum();
        assert!((integral - 1.0).abs() < 0.02, "integral {integral}");
    }

    #[test]
    fn constant_dimension_does_not_break() {
        let pts: Vec<Vec<f32>> = vec![vec![1.0, 3.0], vec![2.0, 3.0], vec![1.5, 3.0]];
        let kde = GaussianKde::fit(&pts).unwrap();
        assert!(kde.pdf(&[1.5, 3.0]).is_finite());
        assert!(kde.pdf(&[1.5, 3.0]) > 0.0);
    }

    #[test]
    fn log_pdf_is_stable_far_from_data() {
        let pts = vec![vec![0.0f32]];
        let kde = GaussianKde::fit(&pts).unwrap();
        let lp = kde.log_pdf(&[100.0]);
        assert!(lp.is_finite() || lp == f32::NEG_INFINITY);
        assert_eq!(kde.pdf(&[1000.0]), 0.0); // underflow to 0, not NaN
    }
}
