//! Timeliness metrics: jitter and reaction time (§IV-C, Equation 4).
//!
//! * **Jitter** — time between a gesture's actual onset and the first frame
//!   the classifier labels with that gesture; positive = early detection.
//! * **Reaction time** — `actual_t - detected_t` for an unsafe event:
//!   positive means the monitor flagged the erroneous gesture *before* the
//!   error actually occurred (early detection), negative means detection
//!   delay.

use serde::{Deserialize, Serialize};

/// A maximal run of identical labels: frames `start..end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Segment<T> {
    /// The run's label.
    pub label: T,
    /// First frame (inclusive).
    pub start: usize,
    /// One past the last frame (exclusive).
    pub end: usize,
}

impl<T> Segment<T> {
    /// Number of frames in the segment.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the segment is empty (never produced by [`segments`]).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Splits a frame-label stream into maximal constant-label segments.
pub fn segments<T: PartialEq + Copy>(labels: &[T]) -> Vec<Segment<T>> {
    let mut out = Vec::new();
    let mut start = 0usize;
    for i in 1..=labels.len() {
        if i == labels.len() || labels[i] != labels[start] {
            out.push(Segment { label: labels[start], start, end: i });
            start = i;
        }
    }
    out
}

/// Jitter of one ground-truth gesture segment, in frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JitterMeasurement {
    /// The gesture class.
    pub gesture: usize,
    /// Ground-truth onset frame.
    pub onset: usize,
    /// First frame where the prediction matched the gesture, if any.
    pub detected: Option<usize>,
}

impl JitterMeasurement {
    /// `onset - detected` in frames; positive = early detection. `None` if
    /// the gesture was never detected.
    pub fn jitter_frames(&self) -> Option<isize> {
        self.detected.map(|d| self.onset as isize - d as isize)
    }
}

/// Measures per-segment gesture jitter.
///
/// For every ground-truth segment the predicted stream is searched from
/// `lookback` frames before the onset to the segment end for the first frame
/// carrying the segment's gesture.
///
/// # Panics
///
/// Panics if the streams have different lengths.
pub fn gesture_jitter(truth: &[usize], pred: &[usize], lookback: usize) -> Vec<JitterMeasurement> {
    assert_eq!(truth.len(), pred.len(), "truth/pred length mismatch");
    segments(truth)
        .into_iter()
        .map(|seg| {
            let from = seg.start.saturating_sub(lookback);
            let detected = (from..seg.end).find(|&t| pred[t] == seg.label);
            JitterMeasurement { gesture: seg.label, onset: seg.start, detected }
        })
        .collect()
}

/// A ground-truth unsafe event to be detected.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErrorEvent {
    /// Gesture class the erroneous gesture belongs to.
    pub gesture: usize,
    /// Frame span of the erroneous gesture (search window for detections).
    pub span_start: usize,
    /// One past the last frame of the erroneous gesture.
    pub span_end: usize,
    /// Frame at which the error actually occurred (e.g. the video-derived
    /// block-drop frame, or the gesture onset for annotation-based labels).
    pub actual_frame: usize,
}

/// Result of matching one [`ErrorEvent`] against the predicted unsafe stream.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReactionMeasurement {
    /// The event.
    pub event: ErrorEvent,
    /// First frame flagged unsafe within the search window, if any.
    pub detected_frame: Option<usize>,
}

impl ReactionMeasurement {
    /// `actual - detected` in frames (Equation 4); positive = early.
    pub fn reaction_frames(&self) -> Option<isize> {
        self.detected_frame.map(|d| self.event.actual_frame as isize - d as isize)
    }
}

/// Matches each event against the predicted per-frame unsafe flags. The
/// search window is the erroneous-gesture span extended `lookback` frames
/// into the past (a detection slightly before the gesture boundary still
/// counts, and yields a positive reaction time).
///
/// # Panics
///
/// Panics if any event span exceeds the stream length.
pub fn measure_reactions(
    events: &[ErrorEvent],
    pred_unsafe: &[bool],
    lookback: usize,
) -> Vec<ReactionMeasurement> {
    events
        .iter()
        .map(|ev| {
            assert!(
                ev.span_end <= pred_unsafe.len(),
                "event span {}..{} exceeds stream length {}",
                ev.span_start,
                ev.span_end,
                pred_unsafe.len()
            );
            let from = ev.span_start.saturating_sub(lookback);
            let detected_frame = (from..ev.span_end).find(|&t| pred_unsafe[t]);
            ReactionMeasurement { event: ev.clone(), detected_frame }
        })
        .collect()
}

/// Fraction of events detected before their actual occurrence
/// (reaction > 0), over *all* events including undetected ones — the paper's
/// "% Early Detection" (Table VIII). `NaN` when there are no events.
pub fn early_detection_rate(measurements: &[ReactionMeasurement]) -> f32 {
    if measurements.is_empty() {
        return f32::NAN;
    }
    let early = measurements.iter().filter(|m| m.reaction_frames().is_some_and(|r| r > 0)).count();
    early as f32 / measurements.len() as f32
}

/// Converts a frame delta to milliseconds at `hz` frames per second.
pub fn frames_to_ms(frames: isize, hz: f32) -> f32 {
    frames as f32 * 1000.0 / hz
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segments_splits_runs() {
        let segs = segments(&[1, 1, 2, 2, 2, 1]);
        assert_eq!(
            segs,
            vec![
                Segment { label: 1, start: 0, end: 2 },
                Segment { label: 2, start: 2, end: 5 },
                Segment { label: 1, start: 5, end: 6 },
            ]
        );
    }

    #[test]
    fn segments_of_empty_is_empty() {
        assert!(segments::<usize>(&[]).is_empty());
    }

    #[test]
    fn jitter_zero_for_perfect_prediction() {
        let truth = [1, 1, 2, 2];
        let j = gesture_jitter(&truth, &truth, 0);
        assert!(j.iter().all(|m| m.jitter_frames() == Some(0)));
    }

    #[test]
    fn jitter_negative_for_late_detection() {
        let truth = [1, 1, 2, 2, 2, 2];
        let pred_ = [1, 1, 1, 1, 2, 2]; // G2 detected 2 frames late
        let j = gesture_jitter(&truth, &pred_, 0);
        assert_eq!(j[1].jitter_frames(), Some(-2));
    }

    #[test]
    fn jitter_positive_for_early_detection_with_lookback() {
        let truth = [1, 1, 1, 2, 2, 2];
        let pred_ = [1, 2, 2, 2, 2, 2]; // G2 starts 2 frames early
        let j = gesture_jitter(&truth, &pred_, 3);
        assert_eq!(j[1].jitter_frames(), Some(2));
    }

    #[test]
    fn jitter_none_when_never_detected() {
        let truth = [1, 1, 2, 2];
        let pred_ = [1, 1, 1, 1];
        let j = gesture_jitter(&truth, &pred_, 0);
        assert_eq!(j[1].detected, None);
        assert_eq!(j[1].jitter_frames(), None);
    }

    fn event(span: (usize, usize), actual: usize) -> ErrorEvent {
        ErrorEvent { gesture: 5, span_start: span.0, span_end: span.1, actual_frame: actual }
    }

    #[test]
    fn reaction_zero_when_detection_coincides_with_actual() {
        let pred = [false, false, true, true, false];
        let m = measure_reactions(&[event((2, 4), 2)], &pred, 0);
        assert_eq!(m[0].reaction_frames(), Some(0));
    }

    #[test]
    fn reaction_negative_when_late() {
        let pred = [false, false, false, true, false];
        let m = measure_reactions(&[event((2, 5), 2)], &pred, 0);
        assert_eq!(m[0].reaction_frames(), Some(-1));
    }

    #[test]
    fn reaction_positive_when_early_via_lookback() {
        // Error actually occurs at frame 4 (e.g. physical block drop), the
        // erroneous gesture spans 3..6, the monitor fires at frame 2.
        let pred = [false, false, true, true, true, true];
        let m = measure_reactions(&[event((3, 6), 4)], &pred, 2);
        assert_eq!(m[0].reaction_frames(), Some(2));
    }

    #[test]
    fn early_detection_rate_counts_undetected_in_denominator() {
        let pred = [true, false, false, false];
        let events = vec![event((0, 2), 1), event((2, 4), 2)];
        let m = measure_reactions(&events, &pred, 0);
        // Event 1 detected at 0 with actual 1 => reaction +1 (early).
        // Event 2 never detected.
        assert!((early_detection_rate(&m) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn frames_to_ms_conversion() {
        assert_eq!(frames_to_ms(30, 30.0), 1000.0);
        assert_eq!(frames_to_ms(-3, 30.0), -100.0);
    }
}
