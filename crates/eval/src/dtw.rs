//! Dynamic time warping.
//!
//! §IV-B of the paper compares the block-centroid trace of a faulty
//! demonstration against fault-free reference traces with DTW to detect
//! dropoff failures ("the block should have been dropped, but it was not").

/// DTW alignment result.
#[derive(Debug, Clone, PartialEq)]
pub struct DtwResult {
    /// Total accumulated distance along the optimal warping path.
    pub distance: f32,
    /// Optimal path as `(i, j)` index pairs from `(0,0)` to `(n-1, m-1)`.
    pub path: Vec<(usize, usize)>,
}

impl DtwResult {
    /// Distance normalized by path length (comparable across lengths).
    pub fn normalized_distance(&self) -> f32 {
        if self.path.is_empty() {
            return f32::NAN;
        }
        self.distance / self.path.len() as f32
    }
}

/// Euclidean distance between two equal-length points.
fn euclid(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(&x, &y)| (x - y) * (x - y)).sum::<f32>().sqrt()
}

/// Computes DTW between two multivariate sequences with an optional
/// Sakoe-Chiba band of half-width `window` (in index units). `None` means an
/// unconstrained alignment.
///
/// Returns `None` for empty sequences or inconsistent point dimensions.
pub fn dtw(a: &[Vec<f32>], b: &[Vec<f32>], window: Option<usize>) -> Option<DtwResult> {
    let n = a.len();
    let m = b.len();
    if n == 0 || m == 0 {
        return None;
    }
    let dim = a[0].len();
    if a.iter().any(|p| p.len() != dim) || b.iter().any(|p| p.len() != dim) {
        return None;
    }

    // Effective band must at least cover the diagonal slope difference.
    let w = window.map(|w| w.max(n.abs_diff(m))).unwrap_or(n.max(m));

    let inf = f32::INFINITY;
    let mut cost = vec![inf; (n + 1) * (m + 1)];
    let idx = |i: usize, j: usize| i * (m + 1) + j;
    cost[idx(0, 0)] = 0.0;

    for i in 1..=n {
        let j_lo = i.saturating_sub(w).max(1);
        let j_hi = (i + w).min(m);
        for j in j_lo..=j_hi {
            let d = euclid(&a[i - 1], &b[j - 1]);
            let best = cost[idx(i - 1, j)].min(cost[idx(i, j - 1)]).min(cost[idx(i - 1, j - 1)]);
            cost[idx(i, j)] = d + best;
        }
    }

    if !cost[idx(n, m)].is_finite() {
        return None;
    }

    // Backtrack the optimal path.
    let mut path = Vec::new();
    let (mut i, mut j) = (n, m);
    while i > 0 && j > 0 {
        path.push((i - 1, j - 1));
        let diag = cost[idx(i - 1, j - 1)];
        let up = cost[idx(i - 1, j)];
        let left = cost[idx(i, j - 1)];
        if diag <= up && diag <= left {
            i -= 1;
            j -= 1;
        } else if up <= left {
            i -= 1;
        } else {
            j -= 1;
        }
    }
    path.reverse();
    Some(DtwResult { distance: cost[idx(n, m)], path })
}

/// Convenience for univariate series.
pub fn dtw_1d(a: &[f32], b: &[f32], window: Option<usize>) -> Option<DtwResult> {
    let av: Vec<Vec<f32>> = a.iter().map(|&x| vec![x]).collect();
    let bv: Vec<Vec<f32>> = b.iter().map(|&x| vec![x]).collect();
    dtw(&av, &bv, window)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sequences_have_zero_distance() {
        let a = vec![vec![1.0], vec![2.0], vec![3.0]];
        let r = dtw(&a, &a, None).unwrap();
        assert_eq!(r.distance, 0.0);
        assert_eq!(r.path, vec![(0, 0), (1, 1), (2, 2)]);
    }

    #[test]
    fn time_shifted_sequences_align_cheaply() {
        // Same shape, shifted by one step: DTW absorbs the shift.
        let a: Vec<f32> = (0..20).map(|i| ((i as f32) * 0.4).sin()).collect();
        let b: Vec<f32> = (1..21).map(|i| ((i as f32) * 0.4).sin()).collect();
        let aligned = dtw_1d(&a, &b, None).unwrap().distance;
        let lockstep: f32 = a.iter().zip(b.iter()).map(|(x, y)| (x - y).abs()).sum();
        assert!(aligned < lockstep, "aligned {aligned} >= lockstep {lockstep}");
    }

    #[test]
    fn different_shapes_cost_more() {
        let flat = vec![0.0f32; 15];
        let shifted: Vec<f32> = (0..15).map(|i| ((i as f32) * 0.4).sin()).collect();
        let similar = dtw_1d(&flat, &flat, None).unwrap().distance;
        let different = dtw_1d(&flat, &shifted, None).unwrap().distance;
        assert!(different > similar + 1.0);
    }

    #[test]
    fn unequal_lengths_are_supported() {
        let a = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]];
        let b = vec![vec![0.0], vec![3.0]];
        let r = dtw(&a, &b, None).unwrap();
        assert!(r.distance.is_finite());
        assert_eq!(*r.path.first().unwrap(), (0, 0));
        assert_eq!(*r.path.last().unwrap(), (3, 1));
    }

    #[test]
    fn band_widens_to_cover_length_difference() {
        let a = vec![vec![0.0]; 30];
        let b = vec![vec![0.0]; 10];
        // window 1 < |n-m| = 20, must be widened internally.
        assert!(dtw(&a, &b, Some(1)).is_some());
    }

    #[test]
    fn empty_or_ragged_input_is_none() {
        let a = vec![vec![0.0]];
        assert!(dtw(&a, &[], None).is_none());
        let ragged = vec![vec![0.0], vec![0.0, 1.0]];
        assert!(dtw(&a, &ragged, None).is_none());
    }

    #[test]
    fn normalized_distance_is_per_step() {
        let a = vec![vec![0.0], vec![0.0]];
        let b = vec![vec![1.0], vec![1.0]];
        let r = dtw(&a, &b, None).unwrap();
        assert!((r.normalized_distance() - r.distance / r.path.len() as f32).abs() < 1e-7);
    }
}
