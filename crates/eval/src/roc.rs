//! ROC curves and AUC, the paper's threshold-free accuracy metric
//! (§IV-C, Table VII, Fig. 9).

use serde::{Deserialize, Serialize};

/// One point on a ROC curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RocPoint {
    /// False positive rate.
    pub fpr: f32,
    /// True positive rate.
    pub tpr: f32,
    /// Score threshold that produced this point (`>= threshold` → positive).
    pub threshold: f32,
}

/// A ROC curve built from `(score, is_positive)` observations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RocCurve {
    points: Vec<RocPoint>,
    auc: f32,
}

impl RocCurve {
    /// Builds the curve by sweeping a threshold over all distinct scores.
    /// Higher scores mean "more positive" (more anomalous).
    ///
    /// Returns `None` if either class is absent (AUC undefined).
    pub fn from_scores(scores: &[f32], labels: &[bool]) -> Option<Self> {
        assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
        let pos = labels.iter().filter(|&&l| l).count();
        let neg = labels.len() - pos;
        if pos == 0 || neg == 0 {
            return None;
        }

        // Sort by descending score; sweep the threshold downwards.
        let mut order: Vec<usize> = (0..scores.len()).collect();
        order.sort_by(|&a, &b| {
            scores[b].partial_cmp(&scores[a]).unwrap_or(std::cmp::Ordering::Equal)
        });

        let mut points = vec![RocPoint { fpr: 0.0, tpr: 0.0, threshold: f32::INFINITY }];
        let mut tp = 0usize;
        let mut fp = 0usize;
        let mut i = 0usize;
        while i < order.len() {
            let threshold = scores[order[i]];
            // Consume all observations tied at this score.
            while i < order.len() && scores[order[i]] == threshold {
                if labels[order[i]] {
                    tp += 1;
                } else {
                    fp += 1;
                }
                i += 1;
            }
            points.push(RocPoint {
                fpr: fp as f32 / neg as f32,
                tpr: tp as f32 / pos as f32,
                threshold,
            });
        }

        // Trapezoidal AUC.
        let mut auc = 0.0f64;
        for w in points.windows(2) {
            let dx = (w[1].fpr - w[0].fpr) as f64;
            auc += dx * (w[0].tpr + w[1].tpr) as f64 / 2.0;
        }
        Some(Self { points, auc: auc as f32 })
    }

    /// Area under the curve.
    pub fn auc(&self) -> f32 {
        self.auc
    }

    /// The swept points, from (0,0) to (1,1).
    pub fn points(&self) -> &[RocPoint] {
        &self.points
    }

    /// Renders the curve as `fpr,tpr` CSV lines (used by `repro_fig9_roc`).
    pub fn to_csv(&self) -> String {
        let mut s = String::from("fpr,tpr,threshold\n");
        for p in &self.points {
            s.push_str(&format!("{:.4},{:.4},{:.4}\n", p.fpr, p.tpr, p.threshold));
        }
        s
    }
}

/// AUC of `(score, label)` data, or `None` when undefined.
pub fn auc(scores: &[f32], labels: &[bool]) -> Option<f32> {
    RocCurve::from_scores(scores, labels).map(|c| c.auc())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation_has_auc_one() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [true, true, false, false];
        assert!((auc(&scores, &labels).unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn inverted_scores_have_auc_zero() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let labels = [true, true, false, false];
        assert!(auc(&scores, &labels).unwrap() < 1e-6);
    }

    #[test]
    fn random_interleaving_has_auc_half() {
        let scores = [0.4, 0.3, 0.2, 0.1];
        let labels = [true, false, true, false];
        let a = auc(&scores, &labels).unwrap();
        assert!((a - 0.5).abs() < 0.26, "auc {a}");
    }

    #[test]
    fn ties_are_handled_with_trapezoids() {
        // All scores tied: AUC must be exactly 0.5.
        let scores = [0.5, 0.5, 0.5, 0.5];
        let labels = [true, false, true, false];
        assert!((auc(&scores, &labels).unwrap() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn single_class_is_undefined() {
        assert!(auc(&[0.5, 0.6], &[true, true]).is_none());
        assert!(auc(&[0.5, 0.6], &[false, false]).is_none());
    }

    #[test]
    fn curve_starts_at_origin_and_ends_at_one_one() {
        let scores = [0.9, 0.1, 0.5, 0.3];
        let labels = [true, false, true, false];
        let curve = RocCurve::from_scores(&scores, &labels).unwrap();
        let first = curve.points().first().unwrap();
        let last = curve.points().last().unwrap();
        assert_eq!((first.fpr, first.tpr), (0.0, 0.0));
        assert_eq!((last.fpr, last.tpr), (1.0, 1.0));
    }

    #[test]
    fn auc_equals_pairwise_probability() {
        // AUC == P(score_pos > score_neg) + 0.5 P(tie), checked exhaustively.
        let scores = [0.9, 0.7, 0.7, 0.4, 0.2];
        let labels = [true, true, false, false, true];
        let mut wins = 0.0f32;
        let mut pairs = 0.0f32;
        for i in 0..scores.len() {
            for j in 0..scores.len() {
                if labels[i] && !labels[j] {
                    pairs += 1.0;
                    if scores[i] > scores[j] {
                        wins += 1.0;
                    } else if scores[i] == scores[j] {
                        wins += 0.5;
                    }
                }
            }
        }
        let expect = wins / pairs;
        assert!((auc(&scores, &labels).unwrap() - expect).abs() < 1e-6);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let curve = RocCurve::from_scores(&[0.9, 0.1], &[true, false]).unwrap();
        let csv = curve.to_csv();
        assert!(csv.starts_with("fpr,tpr"));
        assert!(csv.lines().count() >= 3);
    }
}
