//! Jensen–Shannon divergence between distributions (Equation 1 of the
//! paper), for both discrete distributions and KDE-modeled sample sets.

use crate::kde::GaussianKde;

/// KL divergence `D(p || q)` for discrete distributions in nats.
/// Terms with `p[i] == 0` contribute zero; `q[i] == 0` with `p[i] > 0`
/// contributes infinity.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn kl_discrete(p: &[f32], q: &[f32]) -> f32 {
    assert_eq!(p.len(), q.len(), "distribution length mismatch");
    let mut d = 0.0f32;
    for (&pi, &qi) in p.iter().zip(q.iter()) {
        if pi > 0.0 {
            if qi <= 0.0 {
                return f32::INFINITY;
            }
            d += pi * (pi / qi).ln();
        }
    }
    d
}

/// Jensen–Shannon divergence between discrete distributions, in nats.
/// Symmetric and bounded by `ln 2`.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn js_discrete(p: &[f32], q: &[f32]) -> f32 {
    assert_eq!(p.len(), q.len(), "distribution length mismatch");
    let m: Vec<f32> = p.iter().zip(q.iter()).map(|(&a, &b)| 0.5 * (a + b)).collect();
    0.5 * kl_discrete(p, &m) + 0.5 * kl_discrete(q, &m)
}

/// Monte-Carlo Jensen–Shannon divergence between two sample sets, each
/// modeled with a Gaussian KDE (Equation 1; used for Fig. 5).
///
/// `KL(P || M)` is estimated as the sample mean of `log p(x) - log m(x)`
/// over the samples of `P` (the standard estimator when the sample set
/// itself is the Monte-Carlo draw), with `m = (p + q) / 2`.
///
/// Returns `None` if either set cannot support a KDE (empty / inconsistent
/// dimensions / dimension mismatch between the sets).
pub fn js_divergence_kde(a: &[Vec<f32>], b: &[Vec<f32>]) -> Option<f32> {
    let ka = GaussianKde::fit(a)?;
    let kb = GaussianKde::fit(b)?;
    if ka.dim() != kb.dim() {
        return None;
    }

    let half_kl = |samples: &[Vec<f32>], own: &GaussianKde, other: &GaussianKde| -> f32 {
        let mut acc = 0.0f64;
        for x in samples {
            let lp = own.log_pdf(x) as f64;
            let lq = other.log_pdf(x) as f64;
            // log m(x) = log(0.5 (p + q)) via stable log-sum-exp of (lp, lq).
            let max = lp.max(lq);
            let lm = max + ((lp - max).exp() + (lq - max).exp()).ln() - std::f64::consts::LN_2;
            acc += lp - lm;
        }
        (acc / samples.len() as f64) as f32
    };

    let jsd = 0.5 * half_kl(a, &ka, &kb) + 0.5 * half_kl(b, &kb, &ka);
    // The estimator can go marginally negative from Monte-Carlo noise; clamp
    // into the theoretical [0, ln 2] range.
    Some(jsd.clamp(0.0, std::f32::consts::LN_2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn gaussian_samples(rng: &mut SmallRng, n: usize, mean: f32, std: f32) -> Vec<Vec<f32>> {
        // Box-Muller.
        (0..n)
            .map(|_| {
                let u1: f32 = rng.gen_range(1e-6..1.0);
                let u2: f32 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
                vec![mean + std * z]
            })
            .collect()
    }

    #[test]
    fn kl_of_identical_is_zero() {
        let p = [0.25, 0.25, 0.5];
        assert!(kl_discrete(&p, &p).abs() < 1e-7);
    }

    #[test]
    fn kl_is_infinite_on_missing_support() {
        assert_eq!(kl_discrete(&[1.0, 0.0], &[0.0, 1.0]), f32::INFINITY);
    }

    #[test]
    fn js_is_symmetric_and_bounded() {
        let p = [0.9, 0.1];
        let q = [0.1, 0.9];
        let d1 = js_discrete(&p, &q);
        let d2 = js_discrete(&q, &p);
        assert!((d1 - d2).abs() < 1e-7);
        assert!(d1 > 0.0 && d1 <= std::f32::consts::LN_2 + 1e-6);
    }

    #[test]
    fn js_of_disjoint_distributions_is_ln2() {
        let d = js_discrete(&[1.0, 0.0], &[0.0, 1.0]);
        assert!((d - std::f32::consts::LN_2).abs() < 1e-6);
    }

    #[test]
    fn kde_jsd_identical_samples_near_zero() {
        let mut rng = SmallRng::seed_from_u64(1);
        let a = gaussian_samples(&mut rng, 150, 0.0, 1.0);
        let b = gaussian_samples(&mut rng, 150, 0.0, 1.0);
        let d = js_divergence_kde(&a, &b).unwrap();
        assert!(d < 0.08, "jsd {d}");
    }

    #[test]
    fn kde_jsd_grows_with_separation() {
        let mut rng = SmallRng::seed_from_u64(2);
        let a = gaussian_samples(&mut rng, 150, 0.0, 1.0);
        let near = gaussian_samples(&mut rng, 150, 0.5, 1.0);
        let far = gaussian_samples(&mut rng, 150, 5.0, 1.0);
        let d_near = js_divergence_kde(&a, &near).unwrap();
        let d_far = js_divergence_kde(&a, &far).unwrap();
        assert!(d_far > d_near, "near {d_near} far {d_far}");
        assert!(d_far > 0.5, "far {d_far} should approach ln 2");
    }

    #[test]
    fn kde_jsd_rejects_dimension_mismatch() {
        let a = vec![vec![0.0, 1.0]];
        let b = vec![vec![0.0]];
        assert!(js_divergence_kde(&a, &b).is_none());
        assert!(js_divergence_kde(&[], &b).is_none());
    }
}
