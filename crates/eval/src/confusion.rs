//! Confusion matrices and the binary classification metrics used throughout
//! the paper: TPR, TNR, PPV, NPV, F1, accuracy (§IV-C).

use serde::{Deserialize, Serialize};

/// Binary confusion counts. The *positive* class is the anomaly ("unsafe")
/// class, matching the paper's convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BinaryCounts {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl BinaryCounts {
    /// Builds counts from parallel prediction/truth slices.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn from_predictions(pred: &[bool], truth: &[bool]) -> Self {
        assert_eq!(pred.len(), truth.len(), "prediction/truth length mismatch");
        let mut c = Self::default();
        for (&p, &t) in pred.iter().zip(truth.iter()) {
            c.record(p, t);
        }
        c
    }

    /// Records a single (predicted, actual) observation.
    pub fn record(&mut self, predicted: bool, actual: bool) {
        match (predicted, actual) {
            (true, true) => self.tp += 1,
            (true, false) => self.fp += 1,
            (false, false) => self.tn += 1,
            (false, true) => self.fn_ += 1,
        }
    }

    /// Merges another set of counts (micro-averaging).
    pub fn merge(&mut self, other: &BinaryCounts) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.tn += other.tn;
        self.fn_ += other.fn_;
    }

    /// Total number of observations.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// True positive rate (recall, sensitivity). `NaN` if no positives.
    pub fn tpr(&self) -> f32 {
        ratio(self.tp, self.tp + self.fn_)
    }

    /// True negative rate (specificity). `NaN` if no negatives.
    pub fn tnr(&self) -> f32 {
        ratio(self.tn, self.tn + self.fp)
    }

    /// Positive predictive value (precision). `NaN` if nothing predicted
    /// positive.
    pub fn ppv(&self) -> f32 {
        ratio(self.tp, self.tp + self.fp)
    }

    /// Negative predictive value. `NaN` if nothing predicted negative.
    pub fn npv(&self) -> f32 {
        ratio(self.tn, self.tn + self.fn_)
    }

    /// False positive rate.
    pub fn fpr(&self) -> f32 {
        ratio(self.fp, self.fp + self.tn)
    }

    /// Accuracy.
    pub fn accuracy(&self) -> f32 {
        ratio(self.tp + self.tn, self.total())
    }

    /// F1 score: harmonic mean of precision and recall. Returns 0 when both
    /// are zero (no true positives at all).
    pub fn f1(&self) -> f32 {
        let p = self.ppv();
        let r = self.tpr();
        if p.is_nan() || r.is_nan() || p + r == 0.0 {
            return 0.0;
        }
        2.0 * p * r / (p + r)
    }
}

fn ratio(num: usize, den: usize) -> f32 {
    if den == 0 {
        f32::NAN
    } else {
        num as f32 / den as f32
    }
}

/// Multi-class confusion matrix with `truth` on rows and `prediction` on
/// columns.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<usize>, // classes x classes, row-major
}

impl ConfusionMatrix {
    /// Creates an empty `classes x classes` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `classes == 0`.
    pub fn new(classes: usize) -> Self {
        assert!(classes > 0, "need at least one class");
        Self { classes, counts: vec![0; classes * classes] }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Records an observation.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn record(&mut self, truth: usize, pred: usize) {
        assert!(truth < self.classes && pred < self.classes, "class index out of range");
        self.counts[truth * self.classes + pred] += 1;
    }

    /// Count at `(truth, pred)`.
    pub fn count(&self, truth: usize, pred: usize) -> usize {
        self.counts[truth * self.classes + pred]
    }

    /// Total observations.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Overall accuracy; `NaN` when empty.
    pub fn accuracy(&self) -> f32 {
        let correct: usize = (0..self.classes).map(|c| self.count(c, c)).sum();
        ratio(correct, self.total())
    }

    /// Frame-level recall for one class (the paper's per-gesture "detection
    /// accuracy" in Table IX).
    pub fn class_recall(&self, class: usize) -> f32 {
        let row: usize = (0..self.classes).map(|p| self.count(class, p)).sum();
        ratio(self.count(class, class), row)
    }

    /// One-vs-rest binary counts for `class`.
    pub fn one_vs_rest(&self, class: usize) -> BinaryCounts {
        let mut b = BinaryCounts::default();
        for t in 0..self.classes {
            for p in 0..self.classes {
                let n = self.count(t, p);
                let actual = t == class;
                let predicted = p == class;
                match (predicted, actual) {
                    (true, true) => b.tp += n,
                    (true, false) => b.fp += n,
                    (false, false) => b.tn += n,
                    (false, true) => b.fn_ += n,
                }
            }
        }
        b
    }

    /// Micro-averaged binary counts over all classes (sums the one-vs-rest
    /// counts), the averaging the paper reports "unless stated otherwise".
    pub fn micro_average(&self) -> BinaryCounts {
        let mut acc = BinaryCounts::default();
        for c in 0..self.classes {
            acc.merge(&self.one_vs_rest(c));
        }
        acc
    }
}

impl std::fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "confusion ({} classes, truth rows / pred cols):", self.classes)?;
        for t in 0..self.classes {
            for p in 0..self.classes {
                write!(f, "{:>6}", self.count(t, p))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_metrics_hand_checked() {
        let c = BinaryCounts { tp: 8, fp: 2, tn: 85, fn_: 5 };
        assert!((c.tpr() - 8.0 / 13.0).abs() < 1e-6);
        assert!((c.tnr() - 85.0 / 87.0).abs() < 1e-6);
        assert!((c.ppv() - 0.8).abs() < 1e-6);
        assert!((c.npv() - 85.0 / 90.0).abs() < 1e-6);
        assert!((c.accuracy() - 0.93).abs() < 1e-6);
        let f1 = 2.0 * 0.8 * (8.0 / 13.0) / (0.8 + 8.0 / 13.0);
        assert!((c.f1() - f1).abs() < 1e-6);
    }

    #[test]
    fn from_predictions_counts() {
        let pred = [true, true, false, false];
        let truth = [true, false, true, false];
        let c = BinaryCounts::from_predictions(&pred, &truth);
        assert_eq!((c.tp, c.fp, c.fn_, c.tn), (1, 1, 1, 1));
    }

    #[test]
    fn f1_is_zero_without_true_positives() {
        let c = BinaryCounts { tp: 0, fp: 0, tn: 10, fn_: 3 };
        assert_eq!(c.f1(), 0.0);
    }

    #[test]
    fn degenerate_rates_are_nan() {
        let c = BinaryCounts { tp: 0, fp: 0, tn: 0, fn_: 0 };
        assert!(c.tpr().is_nan());
        assert!(c.ppv().is_nan());
    }

    #[test]
    fn confusion_accuracy_and_recall() {
        let mut m = ConfusionMatrix::new(3);
        m.record(0, 0);
        m.record(0, 1);
        m.record(1, 1);
        m.record(2, 2);
        assert!((m.accuracy() - 0.75).abs() < 1e-6);
        assert!((m.class_recall(0) - 0.5).abs() < 1e-6);
        assert_eq!(m.class_recall(1), 1.0);
    }

    #[test]
    fn one_vs_rest_is_consistent() {
        let mut m = ConfusionMatrix::new(2);
        for _ in 0..3 {
            m.record(0, 0);
        }
        m.record(0, 1);
        m.record(1, 0);
        m.record(1, 1);
        let b = m.one_vs_rest(1);
        assert_eq!((b.tp, b.fp, b.fn_, b.tn), (1, 1, 1, 3));
    }

    #[test]
    fn micro_average_total_is_classes_times_n() {
        let mut m = ConfusionMatrix::new(3);
        for i in 0..3 {
            m.record(i, i);
        }
        let micro = m.micro_average();
        assert_eq!(micro.total(), 9);
        assert_eq!(micro.fp, 0);
    }

    #[test]
    fn display_nonempty() {
        let m = ConfusionMatrix::new(2);
        assert!(!format!("{m}").is_empty());
    }
}
