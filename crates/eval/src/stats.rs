//! Small statistics helpers shared by the metric modules.

use serde::{Deserialize, Serialize};

/// Mean of a slice; `NaN` for empty input.
pub fn mean(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        return f32::NAN;
    }
    xs.iter().sum::<f32>() / xs.len() as f32
}

/// Population standard deviation; `NaN` for empty input.
pub fn std_dev(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        return f32::NAN;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f32>() / xs.len() as f32).sqrt()
}

/// Median (by sorting a copy); `NaN` for empty input.
pub fn median(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        return f32::NAN;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// Nearest-rank percentile (by sorting a copy); `NaN` for empty input.
/// `percentile(v, 0.5)` is the nearest-rank median, `percentile(v, 0.99)`
/// the p99. Always returns an **observed sample value**, so on even-length
/// input the p50 is the lower of the two middle samples and differs from
/// the interpolated [`median`].
pub fn percentile(xs: &[f32], q: f32) -> f32 {
    if xs.is_empty() {
        return f32::NAN;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = ((q.clamp(0.0, 1.0) * v.len() as f32).ceil() as usize).max(1) - 1;
    v[rank.min(v.len() - 1)]
}

/// A `mean ± std` pair, as reported in the paper's Table VIII.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample mean.
    pub mean: f32,
    /// Population standard deviation.
    pub std: f32,
    /// Number of samples.
    pub n: usize,
}

impl Summary {
    /// Summarizes a slice of observations.
    pub fn of(xs: &[f32]) -> Self {
        Self { mean: mean(xs), std: std_dev(xs), n: xs.len() }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.2} ±{:.2}", self.mean, self.std)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-6);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let v = [5.0f32, 1.0, 4.0, 2.0, 3.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 0.5), 3.0);
        assert_eq!(percentile(&v, 0.99), 5.0);
        assert_eq!(percentile(&v, 1.0), 5.0);
        // Nearest-rank returns an observed sample: lower middle on even n
        // (the interpolated `median` would say 150).
        assert_eq!(percentile(&[100.0, 200.0], 0.5), 100.0);
        assert!(percentile(&[], 0.5).is_nan());
    }

    #[test]
    fn empty_inputs_are_nan() {
        assert!(mean(&[]).is_nan());
        assert!(std_dev(&[]).is_nan());
        assert!(median(&[]).is_nan());
    }

    #[test]
    fn summary_formats_like_the_paper() {
        let s = Summary::of(&[0.8, 0.9, 1.0]);
        assert_eq!(format!("{s}"), "0.90 ±0.08");
    }
}
