//! # `eval` — metrics for the safety-monitoring evaluation
//!
//! Implements every metric the paper's evaluation (§IV-C) relies on:
//!
//! * classification: confusion matrices, TPR/TNR/PPV/NPV, F1, accuracy
//!   ([`confusion`]),
//! * threshold-free accuracy: ROC curves and AUC ([`roc`]),
//! * timeliness: gesture jitter, reaction time (Equation 4), % early
//!   detection ([`timing`]),
//! * distribution analysis: Gaussian KDE ([`kde`]) and Jensen–Shannon
//!   divergence (Equation 1, [`divergence`]) used for Fig. 5,
//! * dynamic time warping ([`dtw`]) used by the vision-based failure
//!   labeling of §IV-B,
//! * summary statistics ([`stats`]).

#![warn(missing_docs)]

pub mod confusion;
pub mod divergence;
pub mod dtw;
pub mod kde;
pub mod roc;
pub mod stats;
pub mod timing;

pub use confusion::{BinaryCounts, ConfusionMatrix};
pub use divergence::{js_discrete, js_divergence_kde, kl_discrete};
pub use dtw::{dtw, dtw_1d, DtwResult};
pub use kde::GaussianKde;
pub use roc::{auc, RocCurve, RocPoint};
pub use stats::{mean, median, percentile, std_dev, Summary};
pub use timing::{
    early_detection_rate, frames_to_ms, gesture_jitter, measure_reactions, segments, ErrorEvent,
    JitterMeasurement, ReactionMeasurement, Segment,
};
