//! The Table III fault-injection campaign — open loop and closed loop.
//!
//! Reproduces the paper's grid of 651 injections over the Block Transfer
//! task: 7 grasper-angle buckets × 2 injection-interval variants × 2
//! Cartesian-deviation buckets, with the paper's per-cell injection counts.
//!
//! [`run_closed_loop_campaign`] runs every grid cell **twice** with the
//! same seeds and fault specs — an unmonitored twin and a twin guarded by a
//! [`reactor::SafetyReactor`] — and reports per-cell prevention rate,
//! false-stop rate, and the distribution of reaction-time margin (ticks
//! between the first alert and the counterfactual unsafe event of the
//! unmonitored twin). This is the measurement the paper's headline claim
//! rests on: detection early enough to *act*.

use crate::spec::{CartesianFault, FaultInjector, FaultSpec, GrasperFault};
use context_monitor::serve::parallel_map;
use context_monitor::{ClosedLoopSummary, TrainedPipeline};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use raven_sim::{run_block_transfer, FailureMode, SimConfig, Trial};
use reactor::{Guarded, ReactorConfig, SafetyReactor};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One cell of the Table III grid.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridCell {
    /// Grasper-angle target range (rad).
    pub grasper: (f32, f32),
    /// Grasper injection interval (trajectory fractions).
    pub grasper_interval: (f32, f32),
    /// Cartesian deviation range (paper units).
    pub cartesian: (f32, f32),
    /// Cartesian injection interval (trajectory fractions).
    pub cartesian_interval: (f32, f32),
    /// Number of injections in this cell (paper's counts).
    pub injections: usize,
}

/// The paper's full 651-injection grid.
pub fn table3_grid() -> Vec<GridCell> {
    // (grasper bucket, [counts for variant A cart-low, A cart-high,
    //                   B cart-low, B cart-high])
    let rows: [((f32, f32), [usize; 4]); 7] = [
        ((0.30, 0.40), [16, 8, 16, 16]),
        ((0.50, 0.60), [16, 8, 16, 16]),
        ((0.70, 0.80), [16, 8, 16, 16]),
        ((0.90, 1.00), [58, 50, 16, 16]),
        ((1.10, 1.20), [47, 74, 16, 16]),
        ((1.30, 1.40), [41, 61, 16, 16]),
        ((1.50, 1.60), [7, 17, 16, 16]),
    ];
    // Variant A: grasper during [0.55, 0.70], Cartesian during [0.50, 0.60].
    // Variant B: grasper during [0.65, 0.90], Cartesian during [0.70, 0.90].
    let variants = [((0.55, 0.70), (0.50, 0.60)), ((0.65, 0.90), (0.70, 0.90))];
    let cart_buckets = [(3000.0, 6000.0), (6000.0, 65000.0)];

    let mut grid = Vec::new();
    for (grasper, counts) in rows {
        for (v, &(grasper_interval, cartesian_interval)) in variants.iter().enumerate() {
            for (c, &cartesian) in cart_buckets.iter().enumerate() {
                grid.push(GridCell {
                    grasper,
                    grasper_interval,
                    cartesian,
                    cartesian_interval,
                    injections: counts[v * 2 + c],
                });
            }
        }
    }
    grid
}

/// Campaign configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Base simulator configuration (each trial gets a derived seed).
    pub sim: SimConfig,
    /// Campaign master seed.
    pub seed: u64,
    /// Scales every cell's injection count (1.0 = the paper's 651 trials;
    /// use e.g. 0.1 for quick runs). At least one injection per cell.
    pub scale: f32,
    /// Worker threads.
    pub threads: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self { sim: SimConfig::default(), seed: 0xFA01, scale: 1.0, threads: 4 }
    }
}

/// Outcome tallies for one grid cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellResult {
    /// The cell.
    pub cell: GridCell,
    /// Injections actually run.
    pub injections: usize,
    /// Trials ending in a block-drop.
    pub block_drops: usize,
    /// Trials ending in a dropoff failure.
    pub dropoffs: usize,
}

impl CellResult {
    /// Trials with any error.
    pub fn errors(&self) -> usize {
        self.block_drops + self.dropoffs
    }
}

/// Full campaign result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Per-cell tallies, in [`table3_grid`] order.
    pub cells: Vec<CellResult>,
}

impl CampaignReport {
    /// Total injections.
    pub fn total_injections(&self) -> usize {
        self.cells.iter().map(|c| c.injections).sum()
    }

    /// Total block-drops.
    pub fn total_block_drops(&self) -> usize {
        self.cells.iter().map(|c| c.block_drops).sum()
    }

    /// Total dropoff failures.
    pub fn total_dropoffs(&self) -> usize {
        self.cells.iter().map(|c| c.dropoffs).sum()
    }

    /// Renders the Table III layout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "Grasper(rad)  GrasperDur  Cartesian(units)  CartDur     #Inj  Block-drop      Dropoff\n",
        );
        for c in &self.cells {
            let cell = c.cell;
            out.push_str(&format!(
                "{:.2}-{:.2}     {:.2}-{:.2}   {:>6.0}-{:<6.0}    {:.2}-{:.2}   {:>4}  {:>4} ({:>5.1}%)  {:>4} ({:>5.1}%)\n",
                cell.grasper.0,
                cell.grasper.1,
                cell.grasper_interval.0,
                cell.grasper_interval.1,
                cell.cartesian.0,
                cell.cartesian.1,
                cell.cartesian_interval.0,
                cell.cartesian_interval.1,
                c.injections,
                c.block_drops,
                100.0 * c.block_drops as f32 / c.injections.max(1) as f32,
                c.dropoffs,
                100.0 * c.dropoffs as f32 / c.injections.max(1) as f32,
            ));
        }
        out.push_str(&format!(
            "Total: {} injections, {} block-drops, {} dropoff failures\n",
            self.total_injections(),
            self.total_block_drops(),
            self.total_dropoffs()
        ));
        out
    }
}

/// Samples a concrete [`FaultSpec`] from a grid cell.
pub fn sample_spec(cell: &GridCell, rng: &mut impl Rng) -> FaultSpec {
    let jitter = |rng: &mut dyn rand::RngCore, (lo, hi): (f32, f32)| rng.gen_range(lo..hi);
    FaultSpec {
        grasper: Some(GrasperFault {
            target: jitter(rng, cell.grasper),
            interval: cell.grasper_interval,
        }),
        cartesian: Some(CartesianFault {
            deviation: jitter(rng, cell.cartesian),
            interval: cell.cartesian_interval,
        }),
    }
}

/// Runs one fault-injection trial and returns it with its spec.
pub fn run_injection(sim: &SimConfig, spec: FaultSpec) -> (Trial, FaultInjector) {
    let mut injector = FaultInjector::new(spec);
    let trial = run_block_transfer(sim, &mut injector);
    (trial, injector)
}

/// Flattens the grid into `(cell_index, trial_seed)` work items. Both the
/// open-loop and the closed-loop campaign derive their seeds here, so for a
/// given `(seed, scale)` the closed-loop campaign's unmonitored twins are
/// trial-for-trial the open-loop campaign's trials.
pub(crate) fn grid_work(grid: &[GridCell], cfg: &CampaignConfig) -> Vec<(usize, u64)> {
    let mut work = Vec::new();
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    for (ci, cell) in grid.iter().enumerate() {
        let n = ((cell.injections as f32 * cfg.scale).round() as usize).max(1);
        for _ in 0..n {
            work.push((ci, rng.gen::<u64>()));
        }
    }
    work
}

/// Runs the campaign over the Table III grid.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignReport {
    let grid = table3_grid();
    let work = grid_work(&grid, cfg);

    // The campaign rides the same audited fork-join primitive as the
    // serving layer; `parallel_map`'s balanced chunking replaced a
    // hand-rolled `div_ceil` split that could leave the last worker with a
    // fraction of everyone else's load. Results come back in work order, so
    // the report is deterministic regardless of thread count.
    let sim = cfg.sim;
    let outcomes: Vec<(usize, Option<FailureMode>)> =
        parallel_map(&work, cfg.threads.max(1), |&(ci, seed)| {
            let mut trial_rng = SmallRng::seed_from_u64(seed);
            let spec = sample_spec(&grid[ci], &mut trial_rng);
            let sim_cfg = SimConfig { seed, ..sim };
            let (trial, _) = run_injection(&sim_cfg, spec);
            (ci, trial.outcome.failure)
        });

    let mut cells: Vec<CellResult> = grid
        .iter()
        .map(|&cell| CellResult { cell, injections: 0, block_drops: 0, dropoffs: 0 })
        .collect();
    for (ci, failure) in outcomes {
        cells[ci].injections += 1;
        match failure {
            Some(FailureMode::BlockDrop) => cells[ci].block_drops += 1,
            Some(FailureMode::DropoffFailure) => cells[ci].dropoffs += 1,
            None => {}
        }
    }
    CampaignReport { cells }
}

/// Closed-loop campaign configuration: the same grid, seed derivation, and
/// scaling as [`CampaignConfig`], plus the reactor guarding the monitored
/// twin of every injection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClosedLoopConfig {
    /// Grid/seed/scale/threads of the underlying campaign.
    pub campaign: CampaignConfig,
    /// Reactor configuration (threshold, debounce, actuation latency,
    /// mitigation policy) for the monitored twin.
    pub reactor: ReactorConfig,
}

/// Outcome of one twin-run injection: the same seed and fault spec, run
/// once unmonitored and once behind the reactor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TwinOutcome {
    /// Index into [`table3_grid`].
    pub cell: usize,
    /// Failure of the unmonitored twin.
    pub baseline_failure: Option<FailureMode>,
    /// Tick at which the unmonitored twin's error became observable — the
    /// counterfactual unsafe event the margin is measured against.
    pub baseline_error_tick: Option<usize>,
    /// Failure of the monitored twin (`None` = the task completed).
    pub monitored_failure: Option<FailureMode>,
    /// First alert tick of the monitored twin's reactor.
    pub first_alert_tick: Option<usize>,
    /// Tick at which mitigation was scheduled to gate, if it engaged.
    pub engaged_tick: Option<usize>,
    /// Ticks whose commands the reactor actually gated (0 when mitigation
    /// was scheduled too late to act before the trial ended).
    pub ticks_gated: usize,
}

impl TwinOutcome {
    /// Whether the baseline suffered the preventable unsafe event (a block
    /// drop; a dropoff failure is a liveness failure a safety stop cannot
    /// avert — stopping *is* not dropping off).
    pub fn baseline_unsafe(&self) -> bool {
        self.baseline_failure == Some(FailureMode::BlockDrop)
    }

    /// Whether the reactor prevented the baseline's unsafe event: the
    /// unmonitored twin dropped the block, the monitored twin did not.
    pub fn prevented(&self) -> bool {
        self.baseline_unsafe() && self.monitored_failure != Some(FailureMode::BlockDrop)
    }

    /// Whether mitigation actually interrupted a trial that would have
    /// succeeded unmonitored (an unnecessary intervention). Requires
    /// gated ticks, not just a scheduled engagement: a gate scheduled past
    /// the end of the trial never touched a command and interrupted
    /// nothing.
    pub fn false_stop(&self) -> bool {
        self.baseline_failure.is_none() && self.ticks_gated > 0
    }

    /// Reaction-time margin in ticks: counterfactual unsafe-event tick
    /// minus first-alert tick (positive = the alert came early enough to
    /// matter). Measured only against **observable unsafe events** —
    /// baseline block drops, the same population prevention is scored on.
    /// A dropoff failure's `error_tick` is the synthetic end of the
    /// expected landing window, not an observable event, and would
    /// systematically inflate the margins; it is excluded. `None` when the
    /// baseline did not drop the block or no alert fired.
    ///
    /// The margin is detection-time margin (the paper's reaction-time
    /// convention): it is measured from the **first alert**, before
    /// debounce confirmation and actuation. Mitigation gates commands
    /// `(debounce - 1) + 1 + actuation_latency` ticks after that alert, so
    /// the actionable margin is smaller by exactly that much.
    pub fn margin_ticks(&self) -> Option<i64> {
        if !self.baseline_unsafe() {
            return None;
        }
        match (self.baseline_error_tick, self.first_alert_tick) {
            (Some(err), Some(alert)) => Some(err as i64 - alert as i64),
            _ => None,
        }
    }
}

/// Per-cell tallies of the closed-loop campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClosedLoopCell {
    /// The grid cell.
    pub cell: GridCell,
    /// Twin-run injections in this cell.
    pub injections: usize,
    /// Unmonitored-twin successes.
    pub baseline_successes: usize,
    /// Unmonitored-twin block drops.
    pub baseline_block_drops: usize,
    /// Unmonitored-twin dropoff failures.
    pub baseline_dropoffs: usize,
    /// Monitored-twin successes.
    pub monitored_successes: usize,
    /// Monitored-twin block drops (drops the reactor failed to prevent).
    pub monitored_block_drops: usize,
    /// Monitored-twin dropoff failures (includes intentional safety
    /// stops, which leave the block held — see [`TwinOutcome::prevented`]).
    pub monitored_dropoffs: usize,
    /// Baseline block drops the monitored twin avoided.
    pub prevented: usize,
    /// Mitigations engaged on would-have-succeeded trials.
    pub false_stops: usize,
    /// Monitored twins that raised at least one alert.
    pub alerted: usize,
    /// Reaction-time margins (ticks), in work order.
    pub margin_ticks: Vec<i64>,
}

/// Full closed-loop campaign result. Bit-identical across runs for a given
/// config (the twins share seeds; `parallel_map` returns in work order).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClosedLoopReport {
    /// Per-cell tallies, in [`table3_grid`] order.
    pub cells: Vec<ClosedLoopCell>,
    /// Simulation rate, for margin-to-ms conversion.
    pub hz: f32,
    /// The reactor configuration the monitored twins ran.
    pub reactor: ReactorConfig,
}

impl ClosedLoopReport {
    /// Total twin-run injections.
    pub fn total_injections(&self) -> usize {
        self.cells.iter().map(|c| c.injections).sum()
    }

    /// Total baseline block drops (preventable unsafe events).
    pub fn total_baseline_unsafe(&self) -> usize {
        self.cells.iter().map(|c| c.baseline_block_drops).sum()
    }

    /// Total prevented unsafe events.
    pub fn total_prevented(&self) -> usize {
        self.cells.iter().map(|c| c.prevented).sum()
    }

    /// All margins in ticks, cell-major in work order.
    pub fn margins_ticks(&self) -> Vec<i64> {
        self.cells.iter().flat_map(|c| c.margin_ticks.iter().copied()).collect()
    }

    /// The headline numbers, with margins converted to milliseconds.
    pub fn summary(&self) -> ClosedLoopSummary {
        let ms_per_tick = 1000.0 / self.hz;
        ClosedLoopSummary {
            injections: self.total_injections(),
            baseline_unsafe: self.total_baseline_unsafe(),
            prevented: self.total_prevented(),
            baseline_successes: self.cells.iter().map(|c| c.baseline_successes).sum(),
            false_stops: self.cells.iter().map(|c| c.false_stops).sum(),
            alerted: self.cells.iter().map(|c| c.alerted).sum(),
            margins_ms: self.margins_ticks().iter().map(|&t| t as f32 * ms_per_tick).collect(),
        }
    }

    /// Renders the reaction-time table: one row per grid cell, then the
    /// campaign-level summary block.
    pub fn render(&self) -> String {
        let ms_per_tick = 1000.0 / self.hz;
        let mut out = String::new();
        out.push_str(
            "Grasper(rad)  GrasperDur  #Inj  Unmonitored(BD/DO)  Monitored(BD/DO)  \
             Prevented  FalseStop  Margin(ms)\n",
        );
        for c in &self.cells {
            let cell = c.cell;
            let margin = if c.margin_ticks.is_empty() {
                "      -".to_string()
            } else {
                let mean = c.margin_ticks.iter().sum::<i64>() as f32 / c.margin_ticks.len() as f32
                    * ms_per_tick;
                format!("{mean:>+7.0}")
            };
            out.push_str(&format!(
                "{:.2}-{:.2}     {:.2}-{:.2}   {:>4}  {:>8}/{:<8}   {:>7}/{:<7}   \
                 {:>5}/{:<3}  {:>5}/{:<3}  {margin}\n",
                cell.grasper.0,
                cell.grasper.1,
                cell.grasper_interval.0,
                cell.grasper_interval.1,
                c.injections,
                c.baseline_block_drops,
                c.baseline_dropoffs,
                c.monitored_block_drops,
                c.monitored_dropoffs,
                c.prevented,
                c.baseline_block_drops,
                c.false_stops,
                c.baseline_successes,
            ));
        }
        out.push_str(&self.summary().render());
        out
    }
}

/// Tallies per-trial twin outcomes into the per-cell report — shared by the
/// single-robot campaign below and the fleet campaign
/// ([`crate::run_fleet_campaign`]), so both produce the **same**
/// `ClosedLoopReport` for the same outcomes, bit for bit.
pub(crate) fn tally_closed_loop(
    grid: &[GridCell],
    outcomes: Vec<TwinOutcome>,
    hz: f32,
    reactor_cfg: ReactorConfig,
) -> ClosedLoopReport {
    let mut cells: Vec<ClosedLoopCell> = grid
        .iter()
        .map(|&cell| ClosedLoopCell {
            cell,
            injections: 0,
            baseline_successes: 0,
            baseline_block_drops: 0,
            baseline_dropoffs: 0,
            monitored_successes: 0,
            monitored_block_drops: 0,
            monitored_dropoffs: 0,
            prevented: 0,
            false_stops: 0,
            alerted: 0,
            margin_ticks: Vec::new(),
        })
        .collect();
    for t in outcomes {
        let c = &mut cells[t.cell];
        c.injections += 1;
        match t.baseline_failure {
            None => c.baseline_successes += 1,
            Some(FailureMode::BlockDrop) => c.baseline_block_drops += 1,
            Some(FailureMode::DropoffFailure) => c.baseline_dropoffs += 1,
        }
        match t.monitored_failure {
            None => c.monitored_successes += 1,
            Some(FailureMode::BlockDrop) => c.monitored_block_drops += 1,
            Some(FailureMode::DropoffFailure) => c.monitored_dropoffs += 1,
        }
        c.prevented += t.prevented() as usize;
        c.false_stops += t.false_stop() as usize;
        c.alerted += t.first_alert_tick.is_some() as usize;
        if let Some(m) = t.margin_ticks() {
            c.margin_ticks.push(m);
        }
    }
    ClosedLoopReport { cells, hz, reactor: reactor_cfg }
}

/// Runs the closed-loop (twin-run) campaign: every grid cell's injections
/// executed twice with identical seeds and fault specs — once unmonitored,
/// once with a fresh [`SafetyReactor`] (sharing `pipeline`) downstream of
/// the fault injector. Deterministic for a given config: same seeds →
/// bit-identical report, regardless of thread count.
///
/// # Errors
///
/// [`reactor::ConfigError`] when the reactor configuration is invalid for
/// `pipeline` — validated **once up front**, so a bad sweep point fails
/// this one campaign call with a typed error instead of panicking a worker
/// thread (and with it the whole process) mid-campaign.
pub fn run_closed_loop_campaign(
    cfg: &ClosedLoopConfig,
    pipeline: &Arc<TrainedPipeline>,
) -> Result<ClosedLoopReport, reactor::ConfigError> {
    cfg.reactor.validate_for(pipeline)?;
    let grid = table3_grid();
    let work = grid_work(&grid, &cfg.campaign);
    let sim = cfg.campaign.sim;
    let reactor_cfg = cfg.reactor;

    let outcomes: Vec<TwinOutcome> =
        parallel_map(&work, cfg.campaign.threads.max(1), |&(ci, seed)| {
            let mut trial_rng = SmallRng::seed_from_u64(seed);
            let spec = sample_spec(&grid[ci], &mut trial_rng);
            let sim_cfg = SimConfig { seed, ..sim };

            // Unmonitored twin: the counterfactual.
            let (baseline, _) = run_injection(&sim_cfg, spec);

            // Monitored twin: same seed and spec, reactor at the last
            // computational stage (downstream of the injector). The config
            // was validated above, so construction cannot panic here.
            let mut guarded = Guarded::new(
                FaultInjector::new(spec),
                SafetyReactor::new(Arc::clone(pipeline), reactor_cfg),
            );
            let monitored = run_block_transfer(&sim_cfg, &mut guarded);

            TwinOutcome {
                cell: ci,
                baseline_failure: baseline.outcome.failure,
                baseline_error_tick: baseline.outcome.error_tick,
                monitored_failure: monitored.outcome.failure,
                first_alert_tick: guarded.reactor.first_alert_tick(),
                engaged_tick: guarded.reactor.engaged_tick(),
                ticks_gated: guarded.reactor.ticks_gated(),
            }
        });

    Ok(tally_closed_loop(&grid, outcomes, sim.hz, reactor_cfg))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_matches_the_paper_total() {
        let grid = table3_grid();
        assert_eq!(grid.len(), 28);
        let total: usize = grid.iter().map(|c| c.injections).sum();
        assert_eq!(total, 651, "Table III totals 651 injections");
    }

    fn quick_campaign(scale: f32) -> CampaignReport {
        run_campaign(&CampaignConfig {
            sim: SimConfig { hz: 50.0, duration_s: 4.0, seed: 0, tremor: 0.3 },
            seed: 42,
            scale,
            threads: 4,
        })
    }

    #[test]
    fn campaign_reproduces_table3_structure() {
        let report = quick_campaign(0.25);
        // Partition cells by the paper's qualitative regimes.
        let mut low_short_errors = 0usize;
        let mut low_short_n = 0usize;
        let mut low_long_dropoffs = 0usize;
        let mut low_long_n = 0usize;
        let mut high_drops = 0usize;
        let mut high_n = 0usize;
        for c in &report.cells {
            let low_angle = c.cell.grasper.1 <= 0.85;
            let long = c.cell.grasper_interval.1 > 0.8;
            if low_angle && !long {
                low_short_errors += c.errors();
                low_short_n += c.injections;
            } else if low_angle && long {
                low_long_dropoffs += c.dropoffs;
                low_long_n += c.injections;
            } else if c.cell.grasper.0 >= 1.1 {
                high_drops += c.block_drops;
                high_n += c.injections;
            }
        }
        // Low angle, short interval: almost no failures (paper: 0-12.5%).
        assert!(
            (low_short_errors as f32) < 0.25 * low_short_n as f32,
            "low/short errors {low_short_errors}/{low_short_n}"
        );
        // Low angle, long interval: dropoff failures dominate (paper: ~100%).
        assert!(
            (low_long_dropoffs as f32) > 0.7 * low_long_n as f32,
            "low/long dropoffs {low_long_dropoffs}/{low_long_n}"
        );
        // High angle: block drops dominate (paper: 75-100%).
        assert!(
            (high_drops as f32) > 0.7 * high_n as f32,
            "high-angle drops {high_drops}/{high_n}"
        );
    }

    #[test]
    fn campaign_is_deterministic() {
        let a = quick_campaign(0.05);
        let b = quick_campaign(0.05);
        assert_eq!(a, b);
    }

    #[test]
    fn report_renders_all_cells_and_totals() {
        let report = quick_campaign(0.02);
        let text = report.render();
        assert!(text.contains("Total:"));
        assert_eq!(text.lines().count(), 1 + 28 + 1);
    }

    use crate::testutil::{bt_pipeline, closed_loop_sim};
    use reactor::MitigationPolicy;

    fn closed_loop_cfg(scale: f32, policy: MitigationPolicy) -> ClosedLoopConfig {
        ClosedLoopConfig {
            campaign: CampaignConfig { sim: closed_loop_sim(), seed: 42, scale, threads: 4 },
            reactor: ReactorConfig { policy, ..ReactorConfig::default() },
        }
    }

    #[test]
    fn invalid_reactor_config_is_a_typed_campaign_error() {
        use reactor::ConfigError;
        let pipeline = bt_pipeline();
        let mut cfg = closed_loop_cfg(0.02, MitigationPolicy::StopAndHold);
        cfg.reactor.threshold = 2.0;
        assert_eq!(
            run_closed_loop_campaign(&cfg, &pipeline).err(),
            Some(ConfigError::Threshold(2.0)),
            "a bad sweep point must fail the campaign call, not panic the process"
        );
        cfg.reactor.threshold = 0.5;
        cfg.reactor.debounce = 10_000;
        assert!(matches!(
            run_closed_loop_campaign(&cfg, &pipeline).unwrap_err(),
            ConfigError::DebounceBeyondWarmup { .. }
        ));
    }

    #[test]
    fn closed_loop_campaign_is_deterministic_and_prevents_drops() {
        let pipeline = bt_pipeline();
        let cfg = closed_loop_cfg(0.04, MitigationPolicy::StopAndHold);
        let report = run_closed_loop_campaign(&cfg, &pipeline).expect("valid config");
        let again = run_closed_loop_campaign(&cfg, &pipeline).expect("valid config");
        assert_eq!(report, again, "same seeds must give a bit-identical report");

        // The unmonitored twins are trial-for-trial the open-loop campaign.
        let open = run_campaign(&cfg.campaign);
        for (c, o) in report.cells.iter().zip(open.cells.iter()) {
            assert_eq!(c.injections, o.injections);
            assert_eq!(c.baseline_block_drops, o.block_drops, "cell {:?}", c.cell.grasper);
            assert_eq!(c.baseline_dropoffs, o.dropoffs, "cell {:?}", c.cell.grasper);
        }

        // The acceptance criterion: the reactor prevents unsafe events the
        // unmonitored baseline (prevention rate 0 by construction) suffers.
        let summary = report.summary();
        assert!(summary.baseline_unsafe > 0, "grid too small to produce block drops");
        assert!(summary.prevented > 0, "closed loop prevented nothing: {}", report.render());
        assert!(
            report.cells.iter().map(|c| c.monitored_block_drops).sum::<usize>()
                < summary.baseline_unsafe,
            "monitored twins should drop the block less often than the baseline"
        );
        // Margins are measured and the summary renders.
        assert_eq!(summary.margins_ms.len(), report.margins_ticks().len());
        assert!(report.render().contains("prevention:"));
    }

    #[test]
    fn log_only_reactor_leaves_the_twin_bit_identical() {
        let pipeline = bt_pipeline();
        let cfg = closed_loop_cfg(0.02, MitigationPolicy::LogOnly);
        let report = run_closed_loop_campaign(&cfg, &pipeline).expect("valid config");
        for c in &report.cells {
            // A log-only reactor observes but never gates, so the monitored
            // twin replays the baseline exactly.
            assert_eq!(c.monitored_block_drops, c.baseline_block_drops, "{:?}", c.cell.grasper);
            assert_eq!(c.monitored_dropoffs, c.baseline_dropoffs, "{:?}", c.cell.grasper);
            assert_eq!(c.monitored_successes, c.baseline_successes, "{:?}", c.cell.grasper);
            assert_eq!(c.prevented, 0);
            assert_eq!(c.false_stops, 0, "log-only never engages");
        }
    }

    #[test]
    fn sample_spec_stays_in_bucket() {
        let mut rng = SmallRng::seed_from_u64(1);
        let cell = &table3_grid()[0];
        for _ in 0..50 {
            let spec = sample_spec(cell, &mut rng);
            let g = spec.grasper.unwrap();
            assert!((cell.grasper.0..cell.grasper.1).contains(&g.target));
            let c = spec.cartesian.unwrap();
            assert!((cell.cartesian.0..cell.cartesian.1).contains(&c.deviation));
        }
    }
}
