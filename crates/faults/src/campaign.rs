//! The Table III fault-injection campaign.
//!
//! Reproduces the paper's grid of 651 injections over the Block Transfer
//! task: 7 grasper-angle buckets × 2 injection-interval variants × 2
//! Cartesian-deviation buckets, with the paper's per-cell injection counts.

use crate::spec::{CartesianFault, FaultInjector, FaultSpec, GrasperFault};
use context_monitor::serve::parallel_map;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use raven_sim::{run_block_transfer, FailureMode, SimConfig, Trial};
use serde::{Deserialize, Serialize};

/// One cell of the Table III grid.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridCell {
    /// Grasper-angle target range (rad).
    pub grasper: (f32, f32),
    /// Grasper injection interval (trajectory fractions).
    pub grasper_interval: (f32, f32),
    /// Cartesian deviation range (paper units).
    pub cartesian: (f32, f32),
    /// Cartesian injection interval (trajectory fractions).
    pub cartesian_interval: (f32, f32),
    /// Number of injections in this cell (paper's counts).
    pub injections: usize,
}

/// The paper's full 651-injection grid.
pub fn table3_grid() -> Vec<GridCell> {
    // (grasper bucket, [counts for variant A cart-low, A cart-high,
    //                   B cart-low, B cart-high])
    let rows: [((f32, f32), [usize; 4]); 7] = [
        ((0.30, 0.40), [16, 8, 16, 16]),
        ((0.50, 0.60), [16, 8, 16, 16]),
        ((0.70, 0.80), [16, 8, 16, 16]),
        ((0.90, 1.00), [58, 50, 16, 16]),
        ((1.10, 1.20), [47, 74, 16, 16]),
        ((1.30, 1.40), [41, 61, 16, 16]),
        ((1.50, 1.60), [7, 17, 16, 16]),
    ];
    // Variant A: grasper during [0.55, 0.70], Cartesian during [0.50, 0.60].
    // Variant B: grasper during [0.65, 0.90], Cartesian during [0.70, 0.90].
    let variants = [((0.55, 0.70), (0.50, 0.60)), ((0.65, 0.90), (0.70, 0.90))];
    let cart_buckets = [(3000.0, 6000.0), (6000.0, 65000.0)];

    let mut grid = Vec::new();
    for (grasper, counts) in rows {
        for (v, &(grasper_interval, cartesian_interval)) in variants.iter().enumerate() {
            for (c, &cartesian) in cart_buckets.iter().enumerate() {
                grid.push(GridCell {
                    grasper,
                    grasper_interval,
                    cartesian,
                    cartesian_interval,
                    injections: counts[v * 2 + c],
                });
            }
        }
    }
    grid
}

/// Campaign configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Base simulator configuration (each trial gets a derived seed).
    pub sim: SimConfig,
    /// Campaign master seed.
    pub seed: u64,
    /// Scales every cell's injection count (1.0 = the paper's 651 trials;
    /// use e.g. 0.1 for quick runs). At least one injection per cell.
    pub scale: f32,
    /// Worker threads.
    pub threads: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self { sim: SimConfig::default(), seed: 0xFA01, scale: 1.0, threads: 4 }
    }
}

/// Outcome tallies for one grid cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellResult {
    /// The cell.
    pub cell: GridCell,
    /// Injections actually run.
    pub injections: usize,
    /// Trials ending in a block-drop.
    pub block_drops: usize,
    /// Trials ending in a dropoff failure.
    pub dropoffs: usize,
}

impl CellResult {
    /// Trials with any error.
    pub fn errors(&self) -> usize {
        self.block_drops + self.dropoffs
    }
}

/// Full campaign result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Per-cell tallies, in [`table3_grid`] order.
    pub cells: Vec<CellResult>,
}

impl CampaignReport {
    /// Total injections.
    pub fn total_injections(&self) -> usize {
        self.cells.iter().map(|c| c.injections).sum()
    }

    /// Total block-drops.
    pub fn total_block_drops(&self) -> usize {
        self.cells.iter().map(|c| c.block_drops).sum()
    }

    /// Total dropoff failures.
    pub fn total_dropoffs(&self) -> usize {
        self.cells.iter().map(|c| c.dropoffs).sum()
    }

    /// Renders the Table III layout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "Grasper(rad)  GrasperDur  Cartesian(units)  CartDur     #Inj  Block-drop      Dropoff\n",
        );
        for c in &self.cells {
            let cell = c.cell;
            out.push_str(&format!(
                "{:.2}-{:.2}     {:.2}-{:.2}   {:>6.0}-{:<6.0}    {:.2}-{:.2}   {:>4}  {:>4} ({:>5.1}%)  {:>4} ({:>5.1}%)\n",
                cell.grasper.0,
                cell.grasper.1,
                cell.grasper_interval.0,
                cell.grasper_interval.1,
                cell.cartesian.0,
                cell.cartesian.1,
                cell.cartesian_interval.0,
                cell.cartesian_interval.1,
                c.injections,
                c.block_drops,
                100.0 * c.block_drops as f32 / c.injections.max(1) as f32,
                c.dropoffs,
                100.0 * c.dropoffs as f32 / c.injections.max(1) as f32,
            ));
        }
        out.push_str(&format!(
            "Total: {} injections, {} block-drops, {} dropoff failures\n",
            self.total_injections(),
            self.total_block_drops(),
            self.total_dropoffs()
        ));
        out
    }
}

/// Samples a concrete [`FaultSpec`] from a grid cell.
pub fn sample_spec(cell: &GridCell, rng: &mut impl Rng) -> FaultSpec {
    let jitter = |rng: &mut dyn rand::RngCore, (lo, hi): (f32, f32)| rng.gen_range(lo..hi);
    FaultSpec {
        grasper: Some(GrasperFault {
            target: jitter(rng, cell.grasper),
            interval: cell.grasper_interval,
        }),
        cartesian: Some(CartesianFault {
            deviation: jitter(rng, cell.cartesian),
            interval: cell.cartesian_interval,
        }),
    }
}

/// Runs one fault-injection trial and returns it with its spec.
pub fn run_injection(sim: &SimConfig, spec: FaultSpec) -> (Trial, FaultInjector) {
    let mut injector = FaultInjector::new(spec);
    let trial = run_block_transfer(sim, &mut injector);
    (trial, injector)
}

/// Runs the campaign over the Table III grid.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignReport {
    let grid = table3_grid();
    // Flatten into (cell_index, trial_seed) work items.
    let mut work = Vec::new();
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    for (ci, cell) in grid.iter().enumerate() {
        let n = ((cell.injections as f32 * cfg.scale).round() as usize).max(1);
        for _ in 0..n {
            work.push((ci, rng.gen::<u64>()));
        }
    }

    // The campaign rides the same audited fork-join primitive as the
    // serving layer; `parallel_map`'s balanced chunking replaced a
    // hand-rolled `div_ceil` split that could leave the last worker with a
    // fraction of everyone else's load. Results come back in work order, so
    // the report is deterministic regardless of thread count.
    let sim = cfg.sim;
    let outcomes: Vec<(usize, Option<FailureMode>)> =
        parallel_map(&work, cfg.threads.max(1), |&(ci, seed)| {
            let mut trial_rng = SmallRng::seed_from_u64(seed);
            let spec = sample_spec(&grid[ci], &mut trial_rng);
            let sim_cfg = SimConfig { seed, ..sim };
            let (trial, _) = run_injection(&sim_cfg, spec);
            (ci, trial.outcome.failure)
        });

    let mut cells: Vec<CellResult> = grid
        .iter()
        .map(|&cell| CellResult { cell, injections: 0, block_drops: 0, dropoffs: 0 })
        .collect();
    for (ci, failure) in outcomes {
        cells[ci].injections += 1;
        match failure {
            Some(FailureMode::BlockDrop) => cells[ci].block_drops += 1,
            Some(FailureMode::DropoffFailure) => cells[ci].dropoffs += 1,
            None => {}
        }
    }
    CampaignReport { cells }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_matches_the_paper_total() {
        let grid = table3_grid();
        assert_eq!(grid.len(), 28);
        let total: usize = grid.iter().map(|c| c.injections).sum();
        assert_eq!(total, 651, "Table III totals 651 injections");
    }

    fn quick_campaign(scale: f32) -> CampaignReport {
        run_campaign(&CampaignConfig {
            sim: SimConfig { hz: 50.0, duration_s: 4.0, seed: 0, tremor: 0.3 },
            seed: 42,
            scale,
            threads: 4,
        })
    }

    #[test]
    fn campaign_reproduces_table3_structure() {
        let report = quick_campaign(0.25);
        // Partition cells by the paper's qualitative regimes.
        let mut low_short_errors = 0usize;
        let mut low_short_n = 0usize;
        let mut low_long_dropoffs = 0usize;
        let mut low_long_n = 0usize;
        let mut high_drops = 0usize;
        let mut high_n = 0usize;
        for c in &report.cells {
            let low_angle = c.cell.grasper.1 <= 0.85;
            let long = c.cell.grasper_interval.1 > 0.8;
            if low_angle && !long {
                low_short_errors += c.errors();
                low_short_n += c.injections;
            } else if low_angle && long {
                low_long_dropoffs += c.dropoffs;
                low_long_n += c.injections;
            } else if c.cell.grasper.0 >= 1.1 {
                high_drops += c.block_drops;
                high_n += c.injections;
            }
        }
        // Low angle, short interval: almost no failures (paper: 0-12.5%).
        assert!(
            (low_short_errors as f32) < 0.25 * low_short_n as f32,
            "low/short errors {low_short_errors}/{low_short_n}"
        );
        // Low angle, long interval: dropoff failures dominate (paper: ~100%).
        assert!(
            (low_long_dropoffs as f32) > 0.7 * low_long_n as f32,
            "low/long dropoffs {low_long_dropoffs}/{low_long_n}"
        );
        // High angle: block drops dominate (paper: 75-100%).
        assert!(
            (high_drops as f32) > 0.7 * high_n as f32,
            "high-angle drops {high_drops}/{high_n}"
        );
    }

    #[test]
    fn campaign_is_deterministic() {
        let a = quick_campaign(0.05);
        let b = quick_campaign(0.05);
        assert_eq!(a, b);
    }

    #[test]
    fn report_renders_all_cells_and_totals() {
        let report = quick_campaign(0.02);
        let text = report.render();
        assert!(text.contains("Total:"));
        assert_eq!(text.lines().count(), 1 + 28 + 1);
    }

    #[test]
    fn sample_spec_stays_in_bucket() {
        let mut rng = SmallRng::seed_from_u64(1);
        let cell = &table3_grid()[0];
        for _ in 0..50 {
            let spec = sample_spec(cell, &mut rng);
            let g = spec.grasper.unwrap();
            assert!((cell.grasper.0..cell.grasper.1).contains(&g.target));
            let c = spec.cartesian.unwrap();
            assert!((cell.cartesian.0..cell.cartesian.1).contains(&c.deviation));
        }
    }
}
