//! # `faults` — software fault injection for the Raven II simulator
//!
//! Implements §IV-B's fault-injection methodology:
//!
//! * [`spec::FaultSpec`] — faults on the commanded kinematic state
//!   variables (Grasper Angle ramps, Cartesian deviations of `δ/√3` per
//!   axis) over trajectory-fraction intervals,
//! * [`campaign`] — the Table III grid (651 injections across 28 cells)
//!   run in parallel via `context_monitor::serve::parallel_map` (the same
//!   audited fork-join path the serving layer uses), plus the **closed-loop
//!   twin-run campaign** ([`run_closed_loop_campaign`]): every injection
//!   executed unmonitored and behind a `reactor::SafetyReactor` with the
//!   same seeds, yielding prevention rate, false-stop rate, and
//!   reaction-time margins,
//! * [`fleet`] — the fleet-scale closed loop ([`run_fleet_campaign`]): N
//!   concurrent guarded procedures in lockstep over **one** shared
//!   `ShardedMonitorPool`, with a per-tick decision deadline, fail-safe
//!   holds on misses ([`run_forced_miss_drill`]), and a bit-identical
//!   report across pool worker counts,
//! * [`dataset`] — the 115-demonstration Block Transfer training set with
//!   gesture-level error labels derived from injection + manifestation
//!   times.

#![warn(missing_docs)]

pub mod campaign;
pub mod dataset;
pub mod fleet;
pub mod spec;
#[cfg(test)]
pub(crate) mod testutil;

pub use campaign::{
    run_campaign, run_closed_loop_campaign, run_injection, sample_spec, table3_grid,
    CampaignConfig, CampaignReport, CellResult, ClosedLoopCell, ClosedLoopConfig, ClosedLoopReport,
    GridCell, TwinOutcome,
};
pub use dataset::{build_block_transfer_dataset, relabel_with_injection, BlockTransferDataConfig};
pub use fleet::{
    run_elastic_wave, run_fleet_campaign, run_forced_miss_drill, DrillReport, ElasticOutcome,
    ElasticStats, FleetConfig, FleetStats,
};
pub use spec::{CartesianFault, FaultInjector, FaultSpec, GrasperFault, TARGET_ARM};
