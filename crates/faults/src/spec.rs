//! Fault specifications (§IV-B).
//!
//! "Each injected fault is characterized by the name of the state variable
//! (V) with value (S) that is targeted, along with the injected value (S')
//! and the duration of the injection (D)." Faults perturb the commanded
//! kinematic state variables — Grasper Angle and Cartesian Position — of
//! the transfer arm, exactly like the paper's software fault injector
//! perturbs trajectory packets.

use raven_sim::{CommandFilter, Commands};
use serde::{Deserialize, Serialize};

/// Paper-units → simulator-mm conversion for Cartesian deviations. Table III
/// sweeps 3 000–65 000 units; our workspace is ~200 mm wide, so 1 000 paper
/// units = 1 mm (documented in DESIGN.md).
pub const CARTESIAN_UNIT_SCALE: f32 = 1.0 / 1000.0;

/// Index of the transfer arm (the right manipulator performs the transfer).
pub const TARGET_ARM: usize = 1;

/// Grasper-angle fault: ramp the commanded angle by a constant per-tick
/// increment until the target S' is reached, then hold for the rest of the
/// injection interval (Fig. 6d).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GrasperFault {
    /// Target angle S' (rad).
    pub target: f32,
    /// Injection interval as trajectory fractions `[start, end)`.
    pub interval: (f32, f32),
}

/// Cartesian-position fault: a deviation of Euclidean magnitude δ enforced
/// uniformly over x, y, z (each axis gets `δ/√3`), ramped in at the start of
/// the interval (Fig. 6c).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CartesianFault {
    /// Total deviation δ in paper units (see [`CARTESIAN_UNIT_SCALE`]).
    pub deviation: f32,
    /// Injection interval as trajectory fractions `[start, end)`.
    pub interval: (f32, f32),
}

/// A complete fault specification (Table III rows combine both kinds).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Grasper-angle component.
    pub grasper: Option<GrasperFault>,
    /// Cartesian-position component.
    pub cartesian: Option<CartesianFault>,
}

/// Stateful injector implementing [`CommandFilter`] for a [`FaultSpec`].
#[derive(Debug, Clone)]
pub struct FaultInjector {
    spec: FaultSpec,
    /// Current ramped grasper value (None before the injection starts).
    ramp: Option<f32>,
    /// Ticks observed inside the grasper interval (sets the ramp rate).
    ramp_rate: f32,
    /// First tick at which any perturbation was applied.
    first_active_tick: Option<usize>,
}

impl FaultInjector {
    /// Creates an injector for a spec. The grasper ramp reaches its target
    /// within roughly the first quarter of the injection interval.
    pub fn new(spec: FaultSpec) -> Self {
        Self { spec, ramp: None, ramp_rate: 0.0, first_active_tick: None }
    }

    /// The spec being injected.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Tick at which the injection first perturbed a command, if it has.
    pub fn first_active_tick(&self) -> Option<usize> {
        self.first_active_tick
    }
}

impl CommandFilter for FaultInjector {
    fn apply(&mut self, tick: usize, progress: f32, commands: &mut Commands) {
        let mut active = false;

        if let Some(g) = self.spec.grasper {
            if progress >= g.interval.0 && progress < g.interval.1 {
                active = true;
                let cmd = &mut commands.arms[TARGET_ARM].grasper;
                let current = match self.ramp {
                    None => {
                        // Ramp from the unperturbed command; pick a rate that
                        // reaches the target within ~25% of the interval.
                        let span = (g.interval.1 - g.interval.0).max(1e-3);
                        // rate per unit progress → per-apply step estimated
                        // from progress deltas is unreliable; use a fixed
                        // fraction per call scaled by the distance.
                        self.ramp_rate = (g.target - *cmd).abs() / (0.25 * span);
                        *cmd
                    }
                    Some(v) => v,
                };
                let dp = 0.002; // nominal progress per tick (ramping is
                                // insensitive to the exact value)
                let step = self.ramp_rate * dp;
                let next = if (g.target - current).abs() <= step {
                    g.target
                } else {
                    current + step * (g.target - current).signum()
                };
                self.ramp = Some(next);
                *cmd = next;
            } else if progress >= g.interval.1 {
                self.ramp = None;
            }
        }

        if let Some(c) = self.spec.cartesian {
            if progress >= c.interval.0 && progress < c.interval.1 {
                active = true;
                let span = (c.interval.1 - c.interval.0).max(1e-3);
                // Ramp the deviation in over the first 20% of the interval.
                let ramp = ((progress - c.interval.0) / (0.2 * span)).clamp(0.0, 1.0);
                let per_axis = c.deviation * CARTESIAN_UNIT_SCALE / 3.0_f32.sqrt() * ramp;
                let p = &mut commands.arms[TARGET_ARM].position;
                p.x += per_axis;
                p.y += per_axis;
                p.z += per_axis;
            }
        }

        if active && self.first_active_tick.is_none() {
            self.first_active_tick = Some(tick);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kinematics::Vec3;
    use raven_sim::ArmCommand;

    fn base_commands() -> Commands {
        let arm = ArmCommand { position: Vec3::zero(), grasper: 0.12, euler: (0.0, 0.0, 0.0) };
        Commands { arms: [arm, arm] }
    }

    #[test]
    fn grasper_fault_ramps_to_target_and_holds() {
        let spec = FaultSpec {
            grasper: Some(GrasperFault { target: 1.4, interval: (0.2, 0.8) }),
            cartesian: None,
        };
        let mut inj = FaultInjector::new(spec);
        let mut reached = f32::NAN;
        for t in 0..1000 {
            let p = t as f32 / 999.0;
            let mut c = base_commands();
            inj.apply(t, p, &mut c);
            if !(0.2..0.8).contains(&p) {
                assert_eq!(c.arms[TARGET_ARM].grasper, 0.12, "outside interval at p={p}");
            } else {
                reached = c.arms[TARGET_ARM].grasper;
            }
        }
        assert!((reached - 1.4).abs() < 1e-4, "ramp should reach target, got {reached}");
    }

    #[test]
    fn grasper_ramp_is_monotone() {
        let spec = FaultSpec {
            grasper: Some(GrasperFault { target: 1.0, interval: (0.0, 1.0) }),
            cartesian: None,
        };
        let mut inj = FaultInjector::new(spec);
        let mut last = 0.0f32;
        for t in 0..500 {
            // Stay strictly inside the injection interval.
            let p = t as f32 / 500.0;
            let mut c = base_commands();
            inj.apply(t, p, &mut c);
            let g = c.arms[TARGET_ARM].grasper;
            assert!(g >= last - 1e-6, "ramp decreased: {g} < {last}");
            last = g;
        }
    }

    #[test]
    fn cartesian_fault_is_uniform_over_axes() {
        let spec = FaultSpec {
            grasper: None,
            cartesian: Some(CartesianFault { deviation: 6000.0, interval: (0.0, 1.0) }),
        };
        let mut inj = FaultInjector::new(spec);
        let mut c = base_commands();
        // Deep into the interval so the ramp is complete.
        inj.apply(500, 0.5, &mut c);
        let p = c.arms[TARGET_ARM].position;
        assert!((p.x - p.y).abs() < 1e-6 && (p.y - p.z).abs() < 1e-6);
        // |δ| = 6000 units = 6 mm.
        assert!((p.norm() - 6.0).abs() < 0.01, "deviation norm {}", p.norm());
        // Other arm untouched.
        assert_eq!(c.arms[0].position, Vec3::zero());
    }

    #[test]
    fn first_active_tick_is_recorded() {
        let spec = FaultSpec {
            grasper: Some(GrasperFault { target: 1.0, interval: (0.5, 0.7) }),
            cartesian: None,
        };
        let mut inj = FaultInjector::new(spec);
        for t in 0..100 {
            let mut c = base_commands();
            inj.apply(t, t as f32 / 99.0, &mut c);
        }
        let first = inj.first_active_tick().expect("fault should activate");
        assert!((49..=51).contains(&first), "first tick {first}");
    }

    #[test]
    fn empty_spec_is_identity() {
        let mut inj = FaultInjector::new(FaultSpec::default());
        let mut c = base_commands();
        let before = c;
        inj.apply(0, 0.5, &mut c);
        assert_eq!(c, before);
        assert_eq!(inj.first_active_tick(), None);
    }
}
