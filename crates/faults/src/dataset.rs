//! Builds the Block Transfer training dataset: fault-free plus faulty
//! demonstrations with gesture-level error labels.
//!
//! §IV-B: "We collected 20 fault-free demonstrations … The dataset collected
//! from the simulation experiments consisted of 115 fault-free and faulty
//! demonstrations", and errors were labeled by "record[ing] the time that we
//! injected the fault … and the time that the fault led to any of the common
//! errors … and then mapped those times to the corresponding gestures."

use crate::campaign::{sample_spec, table3_grid};
use crate::spec::FaultInjector;
use eval::segments;
use kinematics::{Dataset, Demonstration, ErrorAnnotation};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use raven_sim::{run_block_transfer, NoFaults, SimConfig, Trial};
use serde::{Deserialize, Serialize};

/// Dataset-builder configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BlockTransferDataConfig {
    /// Fault-free demonstrations (paper: 20).
    pub fault_free: usize,
    /// Faulty demonstrations (paper: 95, for 115 total).
    pub faulty: usize,
    /// Base simulator configuration.
    pub sim: SimConfig,
    /// Master seed.
    pub seed: u64,
}

impl Default for BlockTransferDataConfig {
    fn default() -> Self {
        Self { fault_free: 20, faulty: 95, sim: SimConfig::default(), seed: 0xB10C }
    }
}

impl BlockTransferDataConfig {
    /// Small/fast configuration for tests and examples.
    pub fn fast(seed: u64) -> Self {
        Self {
            fault_free: 4,
            faulty: 8,
            sim: SimConfig { hz: 50.0, duration_s: 4.0, seed: 0, tremor: 0.3 },
            seed,
        }
    }
}

/// Builds the dataset. Faulty demonstrations draw their specs uniformly
/// from the Table III grid; unsafe gesture labels cover every gesture
/// overlapping `[injection start, error manifestation]`.
pub fn build_block_transfer_dataset(cfg: &BlockTransferDataConfig) -> Dataset {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut demos = Vec::with_capacity(cfg.fault_free + cfg.faulty);

    for i in 0..cfg.fault_free {
        let sim = SimConfig { seed: rng.gen(), ..cfg.sim };
        let mut trial = run_block_transfer(&sim, &mut NoFaults);
        trial.demo.id = format!("BT_clean_{i:03}");
        trial.demo.supertrial = i % 5 + 1;
        demos.push(trial.demo);
    }

    let grid = table3_grid();
    for i in 0..cfg.faulty {
        let cell = &grid[rng.gen_range(0..grid.len())];
        let spec = sample_spec(cell, &mut rng);
        let sim = SimConfig { seed: rng.gen(), ..cfg.sim };
        let mut injector = FaultInjector::new(spec);
        let trial = run_block_transfer(&sim, &mut injector);
        let mut demo = relabel_with_injection(&trial, &injector);
        demo.id = format!("BT_fault_{i:03}");
        demo.supertrial = (cfg.fault_free + i) % 5 + 1;
        demos.push(demo);
    }

    Dataset::new(demos)
}

/// Rewrites a trial's safety labels using the injection time: the unsafe
/// span runs from the fault's first active tick to the error manifestation,
/// extended to whole gesture segments (the paper labels whole gestures).
/// Trials whose fault caused no error are labeled entirely safe.
pub fn relabel_with_injection(trial: &Trial, injector: &FaultInjector) -> Demonstration {
    let mut demo = trial.demo.clone();
    demo.unsafe_labels = vec![false; demo.len()];
    demo.errors.clear();

    let (Some(error_tick), Some(_)) = (trial.outcome.error_tick, trial.outcome.failure) else {
        return demo;
    };
    let start_tick = injector.first_active_tick().unwrap_or(error_tick);
    let lo = start_tick.min(error_tick);
    let hi = error_tick.max(start_tick).min(demo.len() - 1);

    let gesture_idx = demo.gesture_indices();
    for seg in segments(&gesture_idx) {
        if seg.start <= hi && seg.end > lo {
            for l in &mut demo.unsafe_labels[seg.start..seg.end] {
                *l = true;
            }
            demo.errors.push(ErrorAnnotation {
                gesture: demo.gestures[seg.start],
                span_start: seg.start,
                span_end: seg.end,
                actual_frame: error_tick.clamp(seg.start, seg.end - 1),
            });
        }
    }
    demo
}

#[cfg(test)]
mod tests {
    use super::*;
    use gestures::Gesture;

    #[test]
    fn dataset_has_requested_sizes_and_validates() {
        let ds = build_block_transfer_dataset(&BlockTransferDataConfig::fast(1));
        assert_eq!(ds.len(), 12);
        ds.validate().expect("valid dataset");
        // Fault-free demos are all safe.
        for d in ds.demos.iter().take(4) {
            assert_eq!(d.unsafe_frames(), 0, "{}", d.id);
        }
    }

    #[test]
    fn some_faulty_demos_are_labeled_unsafe() {
        let ds = build_block_transfer_dataset(&BlockTransferDataConfig::fast(2));
        let unsafe_demos = ds.demos.iter().filter(|d| d.unsafe_frames() > 0).count();
        assert!(unsafe_demos >= 2, "only {unsafe_demos} unsafe demos");
    }

    #[test]
    fn unsafe_spans_align_with_gesture_boundaries() {
        let ds = build_block_transfer_dataset(&BlockTransferDataConfig::fast(3));
        for d in &ds.demos {
            for e in &d.errors {
                // Whole-gesture labeling: the span boundaries coincide with
                // gesture changes.
                assert!(e.span_start == 0 || d.gestures[e.span_start - 1] != e.gesture);
                assert!(e.span_end == d.len() || d.gestures[e.span_end] != e.gesture);
            }
        }
    }

    #[test]
    fn erroneous_gestures_match_table7_support() {
        // Block Transfer errors should fall on the carry/drop gestures
        // (G5, G6, G11 dominate Table VII's bottom block), plus occasionally
        // G2/G12 when the injection interval overlaps early gestures.
        let ds = build_block_transfer_dataset(&BlockTransferDataConfig {
            faulty: 24,
            ..BlockTransferDataConfig::fast(4)
        });
        let mut late_gestures = 0usize;
        let mut total = 0usize;
        for d in &ds.demos {
            for e in &d.errors {
                total += 1;
                if matches!(e.gesture, Gesture::G5 | Gesture::G6 | Gesture::G11) {
                    late_gestures += 1;
                }
            }
        }
        assert!(total > 0);
        assert!(
            late_gestures as f32 >= 0.6 * total as f32,
            "expected carry/drop gestures to dominate: {late_gestures}/{total}"
        );
    }

    #[test]
    fn build_is_deterministic() {
        let a = build_block_transfer_dataset(&BlockTransferDataConfig::fast(5));
        let b = build_block_transfer_dataset(&BlockTransferDataConfig::fast(5));
        assert_eq!(a, b);
    }
}
