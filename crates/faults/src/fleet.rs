//! Fleet-scale closed loop: N concurrent guarded procedures riding **one**
//! shared [`ShardedMonitorPool`], with deadline-gated fail-safe decisions.
//!
//! [`run_closed_loop_campaign`](crate::run_closed_loop_campaign) closes the
//! loop for a single simulated robot: each monitored twin owns a private
//! `InferenceEngine`. This module is the production topology the ROADMAP
//! asks for — a *fleet* of simulated procedures multiplexed over one
//! sharded, micro-batched serving pool:
//!
//! ```text
//!   trial 0 ─ plan → fault → PooledReactor ─ apply ─┐
//!   trial 1 ─ plan → fault → PooledReactor ─ apply ─┤ lockstep tick
//!   …                                               │
//!        frames ──────────────► ShardedMonitorPool (shards, micro-batch)
//!        decisions ◄──────────── drain (barrier or per-tick deadline)
//! ```
//!
//! Each fleet tick, every live trial advances one physics step
//! ([`BlockTransferSim::step`]), its logged frame is submitted to the pool,
//! and the pool is drained — with a blocking barrier
//! ([`FleetConfig::tick_budget_ms`] `= None`, the deterministic default) or
//! a wall-clock deadline budget. A decision that misses its tick trips the
//! [`PooledReactor`] fail-safe: the trial's commands hold at the last
//! un-gated setpoint (never an unexamined plan command) until the late
//! decision arrives, and the miss is counted.
//!
//! **Determinism guarantee:** with the barrier drain, the fleet campaign's
//! [`ClosedLoopReport`] is bit-identical across pool worker counts and
//! fleet sizes, *and* bit-identical to the single-robot
//! `run_closed_loop_campaign` for the same configuration — the pool's
//! decisions are bit-exact to a sequential engine, and both reactor shapes
//! share one `AlertGate` state machine. CI enforces this via
//! `repro_fleet --smoke`.

use crate::campaign::{grid_work, sample_spec, table3_grid, tally_closed_loop};
use crate::campaign::{ClosedLoopConfig, ClosedLoopReport, GridCell, TwinOutcome};
use crate::run_injection;
use crate::spec::FaultInjector;
use context_monitor::serve::{Decision, ServeConfig, ShardedMonitorPool};
use context_monitor::{PoolStats, TrainedPipeline};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use raven_sim::{BlockTransferSim, CommandFilter, Commands, FailureMode, SimConfig};
use reactor::{ConfigError, Guarded, PooledReactor, ReactorConfig};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Derives one monitored trial from a `(cell, seed)` work item: the same
/// rng → spec → sim seeding as the unmonitored baselines, shared by the
/// campaign and the drill so the two can never diverge on what a "trial"
/// is.
///
/// # Errors
///
/// [`ConfigError`] when `reactor_cfg` fails [`ReactorConfig::validate`]
/// (callers pre-validate against the pipeline, so this propagates rather
/// than fires in practice).
fn make_guarded_trial(
    grid: &[GridCell],
    ci: usize,
    seed: u64,
    sim: SimConfig,
    reactor_cfg: ReactorConfig,
    deadline_ticks: usize,
) -> Result<(BlockTransferSim, Guarded<FaultInjector, PooledReactor>), ConfigError> {
    let mut trial_rng = SmallRng::seed_from_u64(seed);
    // lint: allow(panic, reason = "ci is produced by grid_work over this same grid, in-range by construction")
    let spec = sample_spec(&grid[ci], &mut trial_rng);
    Ok((
        BlockTransferSim::new(&SimConfig { seed, ..sim }),
        Guarded::new(FaultInjector::new(spec), PooledReactor::new(reactor_cfg, deadline_ticks)?),
    ))
}

/// Drains one serving tick into `decisions` (cleared first): a blocking
/// barrier when `budget_ms` is `None`, a wall-clock deadline otherwise —
/// the one drain path both the campaign and the drill ride.
fn drain_serving_tick(
    pool: &mut ShardedMonitorPool,
    budget_ms: Option<f32>,
    decisions: &mut Vec<Decision>,
) {
    decisions.clear();
    match budget_ms {
        // The deterministic serving tick: a barrier guarantees every
        // decision rides the tick it was submitted in.
        None => pool.flush_into(decisions),
        // The deadline-gated serving tick: whatever the pool delivers
        // inside the budget is applied now; the rest arrives late and
        // trips the per-trial fail-safe.
        Some(ms) => {
            let deadline = Instant::now() + Duration::from_secs_f32(ms.max(0.0) / 1e3);
            let _ = pool.drain_deadline(deadline, decisions);
        }
    }
}

/// Configuration of the fleet campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Grid, seed derivation, scale, baseline threads, and the reactor
    /// configuration every guarded procedure runs.
    pub closed_loop: ClosedLoopConfig,
    /// Shard worker threads of the shared serving pool (clamped to ≥ 1).
    pub workers: usize,
    /// Concurrent guarded procedures per wave — the pool's session count
    /// (clamped to ≥ 1).
    pub fleet: usize,
    /// Allowed decision lag in ticks beyond the structural one-tick sensing
    /// delay before a trial fails safe (see
    /// [`PooledReactor`]). `0` = the decision for frame `t-1` must be
    /// drained before tick `t` actuates.
    pub deadline_ticks: usize,
    /// Per-tick drain budget in milliseconds. `None` (default) drains with
    /// a blocking barrier — every decision rides its tick, which is what
    /// makes the report bit-identical across worker counts. `Some(ms)`
    /// drains on a wall-clock deadline: decisions that miss it trip the
    /// fail-safe and are applied late (outcomes then depend on host
    /// timing — use for load/fail-safe drills, not for reproducible
    /// reports).
    pub tick_budget_ms: Option<f32>,
}

impl FleetConfig {
    /// A deterministic (barrier-drained) fleet over `workers` shards and
    /// `fleet` concurrent procedures.
    pub fn barrier(closed_loop: ClosedLoopConfig, workers: usize, fleet: usize) -> Self {
        Self { closed_loop, workers, fleet, deadline_ticks: 0, tick_budget_ms: None }
    }
}

/// Serving-side accounting of a fleet campaign: how the reaction-time
/// margin decomposes into compute vs. queueing, and how often the deadline
/// gate had to fail safe.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetStats {
    /// Guarded procedures run.
    pub trials: usize,
    /// Frames submitted across all trials.
    pub frames: usize,
    /// Ticks (across all trials) whose commands were fail-safe-held
    /// because their gating decision missed the deadline. Always 0 with
    /// the barrier drain.
    pub deadline_misses: usize,
    /// Pool latency decomposition: per-decision compute and
    /// ingress-to-egress queueing.
    pub pool: PoolStats,
}

/// Runs the closed-loop twin-run campaign with every monitored twin served
/// by **one shared pool**: baselines run exactly like
/// [`run_closed_loop_campaign`](crate::run_closed_loop_campaign) (same
/// seeds, same specs — trial-for-trial the open-loop campaign), monitored
/// twins run in waves of [`FleetConfig::fleet`] concurrent procedures in
/// lockstep over the pool's micro-batched tick.
///
/// Returns the [`ClosedLoopReport`] (bit-identical across worker counts
/// under the barrier drain) plus the fleet's serving stats.
///
/// # Errors
///
/// [`ConfigError`] when the reactor configuration is invalid for
/// `pipeline` — one bad sweep point fails this call, not the process.
pub fn run_fleet_campaign(
    cfg: &FleetConfig,
    pipeline: &Arc<TrainedPipeline>,
) -> Result<(ClosedLoopReport, FleetStats), ConfigError> {
    let reactor_cfg = cfg.closed_loop.reactor;
    reactor_cfg.validate_for(pipeline)?;
    let grid = table3_grid();
    let work = grid_work(&grid, &cfg.closed_loop.campaign);
    let sim = cfg.closed_loop.campaign.sim;

    // Unmonitored twins: the counterfactuals, same parallel path as the
    // single-robot campaign.
    let baselines: Vec<(Option<FailureMode>, Option<usize>)> = context_monitor::serve::parallel_map(
        &work,
        cfg.closed_loop.campaign.threads.max(1),
        |&(ci, seed)| {
            let mut trial_rng = SmallRng::seed_from_u64(seed);
            // lint: allow(panic, reason = "ci is produced by grid_work over this same grid, in-range by construction")
            let spec = sample_spec(&grid[ci], &mut trial_rng);
            let sim_cfg = SimConfig { seed, ..sim };
            let (trial, _) = run_injection(&sim_cfg, spec);
            (trial.outcome.failure, trial.outcome.error_tick)
        },
    );

    // Monitored twins: waves of concurrent procedures over one shared pool.
    let fleet = cfg.fleet.max(1);
    let mut pool = ShardedMonitorPool::with_sessions(
        Arc::clone(pipeline),
        reactor_cfg.mode,
        ServeConfig {
            workers: cfg.workers.max(1),
            threshold: reactor_cfg.threshold,
            precision: reactor_cfg.precision,
        },
        fleet,
    );

    let mut outcomes: Vec<TwinOutcome> = Vec::with_capacity(work.len());
    let mut decisions: Vec<Decision> = Vec::new();
    let mut deadline_misses = 0usize;
    let mut frames = 0usize;
    // Baselines were computed over `work` in order; waves consume them in
    // the same order, so this pairing can never misalign.
    let mut baseline_iter = baselines.into_iter();

    for wave in work.chunks(fleet) {
        let mut sims: Vec<BlockTransferSim> = Vec::with_capacity(wave.len());
        let mut guards: Vec<Guarded<FaultInjector, PooledReactor>> = Vec::with_capacity(wave.len());
        for &(ci, seed) in wave {
            let (sim_run, guard) =
                make_guarded_trial(&grid, ci, seed, sim, reactor_cfg, cfg.deadline_ticks)?;
            sims.push(sim_run);
            guards.push(guard);
        }

        let ticks = sims.first().map_or(0, BlockTransferSim::ticks); // shared hz × duration
        for _ in 0..ticks {
            for (s, (sim_run, guard)) in sims.iter_mut().zip(guards.iter_mut()).enumerate() {
                let frame = sim_run.step(guard);
                // Non-Perfect mode was validated above, the sole way submit
                // can fail — surface it as the config error it is.
                pool.submit(s, frame).map_err(|_| ConfigError::PerfectContext)?;
                frames += 1;
            }
            drain_serving_tick(&mut pool, cfg.tick_budget_ms, &mut decisions);
            for d in &decisions {
                // lint: allow(panic, reason = "a decision routed to an out-of-range session is a pool bug; fail loud, never misroute a gating decision")
                guards[d.session].reactor.on_decision(d);
            }
        }

        // Budget mode can end the wave with stragglers still in flight:
        // drain them so every decision is applied (exactly once) and the
        // sessions can be reset cleanly.
        decisions.clear();
        pool.flush_into(&mut decisions);
        for d in &decisions {
            // lint: allow(panic, reason = "a decision routed to an out-of-range session is a pool bug; fail loud, never misroute a gating decision")
            guards[d.session].reactor.on_decision(d);
        }

        for (((sim_done, guard), &(cell, _seed)), baseline) in
            sims.into_iter().zip(guards).zip(wave).zip(baseline_iter.by_ref())
        {
            let trial = sim_done.finish();
            let gate = guard.reactor.gate();
            deadline_misses += guard.reactor.deadline_misses();
            outcomes.push(TwinOutcome {
                cell,
                baseline_failure: baseline.0,
                baseline_error_tick: baseline.1,
                monitored_failure: trial.outcome.failure,
                first_alert_tick: gate.first_alert_tick(),
                engaged_tick: gate.engaged_tick(),
                ticks_gated: gate.ticks_gated(),
            });
        }
        for s in 0..wave.len() {
            pool.reset_session(s);
        }
    }

    let stats = FleetStats { trials: work.len(), frames, deadline_misses, pool: pool.stats() };
    Ok((tally_closed_loop(&grid, outcomes, sim.hz, reactor_cfg), stats))
}

/// Per-trial result of an elastic wave ([`run_elastic_wave`]): the
/// deterministic fields of the trial's closed loop plus its warm
/// decision keys, comparable bit-for-bit across fleet shapes.
#[derive(Debug, Clone, PartialEq)]
pub struct ElasticOutcome {
    /// Ticks this trial ran (its own duration — trials differ).
    pub ticks: usize,
    /// Failure observed by the monitored run, if any.
    pub monitored_failure: Option<FailureMode>,
    /// First alert tick of the trial's gate.
    pub first_alert_tick: Option<usize>,
    /// Tick mitigation engaged, if it did.
    pub engaged_tick: Option<usize>,
    /// Ticks spent gated.
    pub ticks_gated: usize,
    /// `(frame, gesture index, score bits, alert)` of every warm
    /// decision, in frame order — the bit-equality payload.
    pub decision_keys: Vec<(usize, usize, u32, bool)>,
}

/// Serving-side accounting of an elastic wave.
#[derive(Debug, Clone, PartialEq)]
pub struct ElasticStats {
    /// Trials run (one per duration entry).
    pub trials: usize,
    /// Frames submitted across all trials.
    pub frames: usize,
    /// Most sessions live at once (≤ [`FleetConfig::fleet`]).
    pub peak_live: usize,
    /// Session ids the pool handed out — equals `trials`: every trial got
    /// a fresh session, finished ones were removed, slots recycled.
    pub sessions_opened: usize,
    /// Per-shard live-session occupancy after the wave — all zeros when
    /// every trial drained cleanly.
    pub final_occupancy: Vec<usize>,
}

/// Runs a **variable-length** trial cohort through one pool with elastic
/// session membership: at most [`FleetConfig::fleet`] trials run
/// concurrently in lockstep, each lasting `durations_s[i]` seconds of
/// sim time. When a trial ends, its session is **removed** from the pool
/// ([`ShardedMonitorPool::remove_session`]) and the freed slot admits
/// the next pending trial — the fixed-wave chunking of
/// [`run_fleet_campaign`] (which pads every wave to the longest trial)
/// is replaced by drain-and-readmit.
///
/// With the barrier drain (the default), every trial's
/// [`ElasticOutcome`] is **bit-identical** regardless of fleet size,
/// worker count, or which sessions it shared the pool with — the
/// elasticity machinery (occupancy-based placement, slot recycling) is
/// invisible in the decisions. The `faults::fleet` test suite pins this
/// against solo runs.
///
/// # Errors
///
/// [`ConfigError`] when the reactor configuration is invalid for
/// `pipeline`.
pub fn run_elastic_wave(
    cfg: &FleetConfig,
    pipeline: &Arc<TrainedPipeline>,
    durations_s: &[f32],
) -> Result<(Vec<ElasticOutcome>, ElasticStats), ConfigError> {
    let reactor_cfg = cfg.closed_loop.reactor;
    reactor_cfg.validate_for(pipeline)?;
    let grid = table3_grid();
    let work = grid_work(&grid, &cfg.closed_loop.campaign);
    let base_sim = cfg.closed_loop.campaign.sim;
    let fleet = cfg.fleet.max(1);

    let mut pool = ShardedMonitorPool::new(
        Arc::clone(pipeline),
        reactor_cfg.mode,
        ServeConfig {
            workers: cfg.workers.max(1),
            threshold: reactor_cfg.threshold,
            precision: reactor_cfg.precision,
        },
    );

    struct Live {
        trial: usize,
        session: usize,
        ticks: usize,
        stepped: usize,
        sim: BlockTransferSim,
        guard: Guarded<FaultInjector, PooledReactor>,
        keys: Vec<(usize, usize, u32, bool)>,
    }

    /// Routes a drained batch to the live cohort: gate feedback plus the
    /// warm-key record. Linear session lookup — the cohort is fleet-sized.
    fn route_elastic(decisions: &[Decision], live: &mut [Live]) {
        for d in decisions {
            if let Some(l) = live.iter_mut().find(|l| l.session == d.session) {
                l.guard.reactor.on_decision(d);
                if let Some(o) = d.output {
                    l.keys.push((
                        d.frame,
                        o.gesture.index(),
                        o.unsafe_probability.to_bits(),
                        o.alert,
                    ));
                }
            }
        }
    }

    let mut outcomes: Vec<Option<ElasticOutcome>> = vec![None; durations_s.len()];
    let mut live: Vec<Live> = Vec::new();
    let mut next_trial = 0usize;
    let mut frames = 0usize;
    let mut peak_live = 0usize;
    let mut decisions: Vec<Decision> = Vec::new();

    loop {
        // Admit pending trials into freed (or fresh) capacity. Session
        // ids are never reused; engine slots are — that recycling is
        // exactly what this wave exercises.
        while live.len() < fleet && next_trial < durations_s.len() {
            let (ci, seed) = work[next_trial % work.len().max(1)]; // lint: allow(panic, reason = "index is taken modulo the non-empty work list's length")
            let trial_sim = SimConfig { duration_s: durations_s[next_trial], ..base_sim }; // lint: allow(panic, reason = "the admit loop condition bounds next_trial by durations_s.len()")
            let (sim_run, guard) =
                make_guarded_trial(&grid, ci, seed, trial_sim, reactor_cfg, cfg.deadline_ticks)?;
            live.push(Live {
                trial: next_trial,
                session: pool.add_session(),
                ticks: sim_run.ticks(),
                stepped: 0,
                sim: sim_run,
                guard,
                keys: Vec::new(),
            });
            next_trial += 1;
        }
        if live.is_empty() {
            break;
        }
        peak_live = peak_live.max(live.len());

        // One lockstep tick across whoever is live right now.
        for l in &mut live {
            let frame = l.sim.step(&mut l.guard);
            // Non-Perfect mode was validated above, the sole way submit
            // can fail — surface it as the config error it is.
            pool.submit(l.session, frame).map_err(|_| ConfigError::PerfectContext)?;
            l.stepped += 1;
            frames += 1;
        }
        drain_serving_tick(&mut pool, cfg.tick_budget_ms, &mut decisions);
        route_elastic(&decisions, &mut live);

        // Budget mode can leave a finishing trial's decisions in flight;
        // drain them before the session is removed so nothing is lost.
        if cfg.tick_budget_ms.is_some() && live.iter().any(|l| l.stepped >= l.ticks) {
            decisions.clear();
            pool.flush_into(&mut decisions);
            route_elastic(&decisions, &mut live);
        }

        // Retire finished trials: the barrier above delivered their last
        // decisions, so removal drops nothing and frees the slot.
        let mut i = 0;
        while i < live.len() {
            // lint: allow(panic, reason = "the retire loop condition bounds i by live.len()")
            if live[i].stepped < live[i].ticks {
                i += 1;
                continue;
            }
            let l = live.swap_remove(i);
            pool.remove_session(l.session);
            let trial = l.sim.finish();
            let gate = l.guard.reactor.gate();
            // lint: allow(panic, reason = "trial index was minted from the outcomes range at admission")
            outcomes[l.trial] = Some(ElasticOutcome {
                ticks: l.ticks,
                monitored_failure: trial.outcome.failure,
                first_alert_tick: gate.first_alert_tick(),
                engaged_tick: gate.engaged_tick(),
                ticks_gated: gate.ticks_gated(),
                decision_keys: l.keys,
            });
        }
    }

    let stats = ElasticStats {
        trials: durations_s.len(),
        frames,
        peak_live,
        sessions_opened: pool.sessions_opened(),
        final_occupancy: pool.shard_occupancy().to_vec(),
    };
    let outcomes: Vec<ElasticOutcome> = outcomes.into_iter().flatten().collect();
    assert_eq!(outcomes.len(), durations_s.len(), "every admitted trial must retire exactly once");
    Ok((outcomes, stats))
}

/// Outcome of a forced-deadline-miss drill ([`run_forced_miss_drill`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DrillReport {
    /// Concurrent guarded trials driven ([`FleetConfig::fleet`]).
    pub trials: usize,
    /// Ticks each guarded trial ran.
    pub ticks: usize,
    /// Frames submitted across all trials (`trials * ticks`).
    pub frames: usize,
    /// Ticks (across all trials) whose commands were fail-safe-held
    /// because their decision missed the deadline.
    pub deadline_misses: usize,
    /// Fail-safe-held ticks whose commands did **not** equal the held
    /// setpoint — i.e. un-gated commands that escaped during a miss. The
    /// safety invariant is that this is always 0.
    pub ungated_during_miss: usize,
    /// Decisions applied by the gates (late ones included, exactly once;
    /// equals [`DrillReport::frames`] when nothing was lost).
    pub decisions_applied: usize,
}

/// Records the post-gate command of every tick plus whether the gate was
/// failing safe at that tick, so the drill can audit the safety invariant
/// from outside the reactor.
struct Recorder {
    guard: Guarded<FaultInjector, PooledReactor>,
    carried: Vec<Commands>,
    failsafe: Vec<bool>,
}

impl CommandFilter for Recorder {
    fn apply(&mut self, tick: usize, progress: f32, commands: &mut Commands) {
        self.guard.apply(tick, progress, commands);
        self.carried.push(*commands);
        self.failsafe.push(self.guard.reactor.failing_safe());
    }
}

/// The fail-safe drill: [`FleetConfig::fleet`] concurrent guarded Block
/// Transfer trials through a pool whose shard 0 is deliberately stalled for
/// `stall` mid-trial, drained with a (deliberately too small) per-tick
/// deadline budget. Every tick whose decision misses the deadline must
/// carry the held setpoint — never an un-gated plan command — and every
/// late decision must be applied exactly once when it finally arrives;
/// trials on the healthy shards must keep flowing while the stalled
/// shard's trials hold.
///
/// Returns the audit counts; callers assert `deadline_misses > 0` (the
/// stall really forced misses) and `ungated_during_miss == 0` (nothing
/// escaped any gate). The drill is wall-clock driven, so the *number* of
/// misses varies with the host — the invariants do not.
///
/// # Errors
///
/// [`ConfigError`] when the reactor configuration is invalid for
/// `pipeline`.
pub fn run_forced_miss_drill(
    cfg: &FleetConfig,
    pipeline: &Arc<TrainedPipeline>,
    stall: Duration,
) -> Result<DrillReport, ConfigError> {
    let reactor_cfg = cfg.closed_loop.reactor;
    reactor_cfg.validate_for(pipeline)?;
    let grid = table3_grid();
    let work = grid_work(&grid, &cfg.closed_loop.campaign);
    let sim = cfg.closed_loop.campaign.sim;
    let budget_ms = cfg.tick_budget_ms.unwrap_or(2.0).max(0.0);
    let fleet = cfg.fleet.max(1);

    let mut pool = ShardedMonitorPool::with_sessions(
        Arc::clone(pipeline),
        reactor_cfg.mode,
        ServeConfig {
            workers: cfg.workers.max(1),
            threshold: reactor_cfg.threshold,
            precision: reactor_cfg.precision,
        },
        fleet,
    );

    let mut sims: Vec<BlockTransferSim> = Vec::with_capacity(fleet);
    let mut recs: Vec<Recorder> = Vec::with_capacity(fleet);
    for &(ci, seed) in work.iter().cycle().take(fleet) {
        let (sim_run, guard) =
            make_guarded_trial(&grid, ci, seed, sim, reactor_cfg, cfg.deadline_ticks)?;
        recs.push(Recorder {
            guard,
            carried: Vec::with_capacity(sim_run.ticks()),
            failsafe: Vec::with_capacity(sim_run.ticks()),
        });
        sims.push(sim_run);
    }

    let ticks = sims.first().map_or(0, BlockTransferSim::ticks);
    let stall_at = ticks / 3;
    let mut decisions: Vec<Decision> = Vec::new();
    for t in 0..ticks {
        if t == stall_at {
            pool.inject_stall(0, stall);
        }
        for (s, (sim_run, rec)) in sims.iter_mut().zip(recs.iter_mut()).enumerate() {
            let frame = sim_run.step(rec);
            // Non-Perfect mode was validated above, the sole way submit can
            // fail — surface it as the config error it is.
            pool.submit(s, frame).map_err(|_| ConfigError::PerfectContext)?;
        }
        drain_serving_tick(&mut pool, Some(budget_ms), &mut decisions);
        for d in &decisions {
            // lint: allow(panic, reason = "a decision routed to an out-of-range session is a pool bug; fail loud, never misroute a gating decision")
            recs[d.session].guard.reactor.on_decision(d);
        }
    }
    // Let the stall clear and apply the stragglers (exactly once each).
    decisions.clear();
    pool.flush_into(&mut decisions);
    for d in &decisions {
        // lint: allow(panic, reason = "a decision routed to an out-of-range session is a pool bug; fail loud, never misroute a gating decision")
        recs[d.session].guard.reactor.on_decision(d);
    }

    // Audit every trial: a fail-safe-held tick must carry its
    // predecessor's command — the frozen setpoint — bit for bit. The
    // shifted zip starts the audit at tick 1: tick 0 never requires a
    // decision, so it can never be fail-safe-held.
    let mut deadline_misses = 0usize;
    let mut ungated_during_miss = 0usize;
    let mut decisions_applied = 0usize;
    for (sim_run, rec) in sims.into_iter().zip(&recs) {
        let _ = sim_run.finish();
        deadline_misses += rec.guard.reactor.deadline_misses();
        decisions_applied += rec.guard.reactor.decisions_applied();
        ungated_during_miss += rec
            .carried
            .iter()
            .zip(rec.carried.iter().skip(1).zip(rec.failsafe.iter().skip(1)))
            .filter(|(prev, (cur, &held))| held && cur != prev)
            .count();
    }

    Ok(DrillReport {
        trials: fleet,
        ticks,
        frames: fleet * ticks,
        deadline_misses,
        ungated_during_miss,
        decisions_applied,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::CampaignConfig;
    use crate::run_closed_loop_campaign;
    use crate::testutil::{bt_pipeline, closed_loop_sim};
    use reactor::{MitigationPolicy, ReactorConfig};

    fn fleet_cfg(scale: f32, workers: usize, fleet: usize) -> FleetConfig {
        FleetConfig::barrier(
            ClosedLoopConfig {
                campaign: CampaignConfig { sim: closed_loop_sim(), seed: 42, scale, threads: 4 },
                reactor: ReactorConfig {
                    policy: MitigationPolicy::StopAndHold,
                    ..ReactorConfig::default()
                },
            },
            workers,
            fleet,
        )
    }

    #[test]
    fn fleet_report_is_bit_identical_across_worker_counts_and_to_single_robot() {
        let pipeline = bt_pipeline();
        let cfg1 = fleet_cfg(0.02, 1, 3);
        let (report1, stats1) = run_fleet_campaign(&cfg1, &pipeline).expect("valid config");
        let cfg3 = fleet_cfg(0.02, 3, 5);
        let (report3, stats3) = run_fleet_campaign(&cfg3, &pipeline).expect("valid config");
        assert_eq!(
            report1, report3,
            "fleet report must be bit-identical across pool worker counts and fleet sizes"
        );
        assert_eq!(stats1.deadline_misses, 0, "barrier drain never misses");
        assert_eq!(stats3.deadline_misses, 0);
        assert_eq!(stats1.trials, stats3.trials);
        assert!(stats1.pool.queue.count > 0, "queueing telemetry covers the fleet's frames");

        // The pooled reactor and the in-process reactor share one state
        // machine over bit-exact scores: the fleet campaign reproduces the
        // single-robot campaign's report exactly.
        let single = run_closed_loop_campaign(&cfg1.closed_loop, &pipeline).expect("valid config");
        assert_eq!(report1, single, "fleet must equal the single-robot closed loop bit-for-bit");

        let summary = report1.summary();
        assert!(summary.baseline_unsafe > 0, "grid too small to produce block drops");
        assert!(summary.prevented > 0, "fleet prevention must beat the unmonitored 0% baseline");
    }

    #[test]
    fn forced_miss_drill_holds_failsafe_and_applies_late_decisions_once() {
        let pipeline = bt_pipeline();
        let mut cfg = fleet_cfg(0.02, 2, 2);
        cfg.tick_budget_ms = Some(2.0);
        let report = run_forced_miss_drill(&cfg, &pipeline, Duration::from_millis(120))
            .expect("valid config");
        assert_eq!(report.trials, 2, "the drill honors FleetConfig::fleet");
        assert_eq!(report.frames, 2 * report.ticks);
        assert!(report.deadline_misses > 0, "the stalled shard must force deadline misses");
        assert_eq!(
            report.ungated_during_miss, 0,
            "zero un-gated commands may escape while decisions are missing"
        );
        assert_eq!(
            report.decisions_applied, report.frames,
            "every late decision is applied exactly once"
        );
    }

    #[test]
    fn elastic_wave_mixed_lengths_bit_identical_to_solo_sessions() {
        let pipeline = bt_pipeline();
        // Five trials, four lengths: the short ones finish first, their
        // sessions are removed mid-wave, and trial 5 is admitted into a
        // recycled slot while the long trials are still streaming.
        let durations = [2.0f32, 4.0, 3.0, 2.0, 3.0];

        let wide = fleet_cfg(0.02, 3, 4);
        let (out_wide, stats_wide) = run_elastic_wave(&wide, &pipeline, &durations).expect("valid");
        let solo = fleet_cfg(0.02, 1, 1);
        let (out_solo, stats_solo) = run_elastic_wave(&solo, &pipeline, &durations).expect("valid");

        // The bit-equality proof: concurrency, mixed lengths, removal,
        // and slot recycling change *nothing* about any trial's decision
        // stream or closed-loop outcome.
        assert_eq!(
            out_wide, out_solo,
            "elastic wave must be bit-identical to running every trial solo"
        );
        assert!(
            out_wide.iter().any(|o| !o.decision_keys.is_empty()),
            "no trial ever warmed up — the equality above would be vacuous"
        );
        assert_ne!(
            out_wide.iter().map(|o| o.ticks).min(),
            out_wide.iter().map(|o| o.ticks).max(),
            "durations must actually differ for this test to exercise elasticity"
        );

        // Elasticity accounting: the wide wave really ran concurrently
        // (and readmitted into freed capacity), the solo wave serially.
        assert_eq!(stats_wide.peak_live, 4);
        assert_eq!(stats_solo.peak_live, 1);
        assert_eq!(stats_wide.sessions_opened, durations.len());
        assert_eq!(stats_solo.sessions_opened, durations.len());
        assert_eq!(stats_wide.frames, stats_solo.frames);
        assert!(
            stats_wide.final_occupancy.iter().all(|&n| n == 0),
            "every session must have been removed: occupancy {:?}",
            stats_wide.final_occupancy
        );
    }

    #[test]
    fn fleet_rejects_bad_sweep_points_with_typed_errors() {
        let pipeline = bt_pipeline();
        let mut cfg = fleet_cfg(0.02, 1, 1);
        cfg.closed_loop.reactor.debounce = 0;
        assert_eq!(
            run_fleet_campaign(&cfg, &pipeline).err(),
            Some(ConfigError::ZeroDebounce),
            "a bad sweep point fails the call, not the process"
        );
    }
}
