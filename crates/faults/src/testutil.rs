//! Shared fixtures for this crate's closed-loop tests: one trained Block
//! Transfer pipeline per test binary (training takes seconds; every test
//! only reads it).

use crate::dataset::{build_block_transfer_dataset, BlockTransferDataConfig};
use context_monitor::{MonitorConfig, TrainedPipeline};
use kinematics::FeatureSet;
use raven_sim::SimConfig;
use std::sync::{Arc, OnceLock};

/// The simulator configuration every closed-loop test campaign runs at.
pub(crate) fn closed_loop_sim() -> SimConfig {
    SimConfig { hz: 50.0, duration_s: 4.0, seed: 0, tremor: 0.3 }
}

/// One Block Transfer pipeline shared by every closed-loop test in this
/// binary.
pub(crate) fn bt_pipeline() -> Arc<TrainedPipeline> {
    static PIPELINE: OnceLock<Arc<TrainedPipeline>> = OnceLock::new();
    Arc::clone(PIPELINE.get_or_init(|| {
        let ds = build_block_transfer_dataset(&BlockTransferDataConfig {
            fault_free: 6,
            faulty: 18,
            sim: closed_loop_sim(),
            seed: 4242,
        });
        let mut cfg = MonitorConfig::fast(FeatureSet::CG).with_seed(9).with_window(10, 1);
        cfg.train.epochs = 8;
        cfg.train_stride = 3;
        let idx: Vec<usize> = (0..ds.len()).collect();
        Arc::new(TrainedPipeline::train(&ds, &idx, &cfg))
    }))
}
