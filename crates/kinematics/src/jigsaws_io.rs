//! Reader/writer for the JIGSAWS on-disk text format, so real JIGSAWS data
//! can replace the synthetic generator without code changes.
//!
//! * Kinematics: one line per frame, whitespace-separated floats
//!   (`19 * manipulators` columns).
//! * Transcription: `start_frame end_frame G<k>` per line, frames 1-based
//!   inclusive (the JIGSAWS convention); frames not covered by any line are
//!   filled from the nearest labeled neighbour.

use crate::sample::{KinematicSample, VARS_PER_MANIPULATOR};
use gestures::Gesture;

/// Error parsing JIGSAWS text data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// A line did not contain the expected number of float columns.
    BadColumnCount {
        /// 1-based line number.
        line: usize,
        /// Columns found.
        found: usize,
        /// Columns expected.
        expected: usize,
    },
    /// A column could not be parsed as a float.
    BadFloat {
        /// 1-based line number.
        line: usize,
        /// Offending token.
        token: String,
    },
    /// A transcription line was malformed.
    BadTranscriptionLine {
        /// 1-based line number.
        line: usize,
        /// The raw line.
        content: String,
    },
    /// A transcription span was out of range or inverted.
    BadSpan {
        /// 1-based line number.
        line: usize,
        /// Start frame (1-based).
        start: usize,
        /// End frame (1-based).
        end: usize,
    },
    /// The transcription labeled no frames at all.
    EmptyTranscription,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadColumnCount { line, found, expected } => {
                write!(f, "line {line}: expected {expected} columns, found {found}")
            }
            ParseError::BadFloat { line, token } => {
                write!(f, "line {line}: invalid float {token:?}")
            }
            ParseError::BadTranscriptionLine { line, content } => {
                write!(f, "line {line}: malformed transcription line {content:?}")
            }
            ParseError::BadSpan { line, start, end } => {
                write!(f, "line {line}: invalid span {start}..{end}")
            }
            ParseError::EmptyTranscription => write!(f, "transcription labels no frames"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Serializes kinematics frames to the JIGSAWS text format.
pub fn format_kinematics(frames: &[KinematicSample]) -> String {
    let mut out = String::new();
    for frame in frames {
        let row = frame.to_vec();
        for (i, x) in row.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(&format!("{x:.6}"));
        }
        out.push('\n');
    }
    out
}

/// Parses kinematics text with `manipulators` arms per frame.
///
/// # Errors
///
/// Returns a [`ParseError`] for malformed rows. Blank lines are skipped.
pub fn parse_kinematics(
    text: &str,
    manipulators: usize,
) -> Result<Vec<KinematicSample>, ParseError> {
    let expected = VARS_PER_MANIPULATOR * manipulators;
    let mut frames = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut row = Vec::with_capacity(expected);
        for token in line.split_whitespace() {
            let x: f32 = token
                .parse()
                .map_err(|_| ParseError::BadFloat { line: lineno + 1, token: token.to_string() })?;
            row.push(x);
        }
        if row.len() != expected {
            return Err(ParseError::BadColumnCount {
                line: lineno + 1,
                found: row.len(),
                expected,
            });
        }
        frames.push(KinematicSample::from_slice(&row, manipulators));
    }
    Ok(frames)
}

/// Serializes a per-frame gesture stream as a JIGSAWS transcription
/// (1-based inclusive frame spans).
pub fn format_transcription(gestures: &[Gesture]) -> String {
    let mut out = String::new();
    let mut start = 0usize;
    for i in 1..=gestures.len() {
        if i == gestures.len() || gestures[i] != gestures[start] {
            out.push_str(&format!("{} {} {}\n", start + 1, i, gestures[start]));
            start = i;
        }
    }
    out
}

/// Parses a JIGSAWS transcription into a per-frame gesture stream of length
/// `num_frames`, filling unlabeled frames from the nearest labeled
/// neighbour (leading gaps take the first label).
///
/// # Errors
///
/// Returns a [`ParseError`] for malformed lines, bad spans, or an empty
/// transcription.
pub fn parse_transcription(text: &str, num_frames: usize) -> Result<Vec<Gesture>, ParseError> {
    let mut labels: Vec<Option<Gesture>> = vec![None; num_frames];
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        let bad =
            || ParseError::BadTranscriptionLine { line: lineno + 1, content: line.to_string() };
        if parts.len() != 3 {
            return Err(bad());
        }
        let start: usize = parts[0].parse().map_err(|_| bad())?;
        let end: usize = parts[1].parse().map_err(|_| bad())?;
        let gesture = Gesture::parse(parts[2]).ok_or_else(bad)?;
        if start == 0 || start > end || end > num_frames {
            return Err(ParseError::BadSpan { line: lineno + 1, start, end });
        }
        for frame in (start - 1)..end {
            labels[frame] = Some(gesture);
        }
    }

    // Fill-forward then fill-backward.
    let mut last: Option<Gesture> = None;
    for l in labels.iter_mut() {
        match *l {
            Some(g) => last = Some(g),
            None => *l = last,
        }
    }
    let mut next: Option<Gesture> = None;
    for l in labels.iter_mut().rev() {
        match *l {
            Some(g) => next = Some(g),
            None => *l = next,
        }
    }
    labels.into_iter().collect::<Option<Vec<_>>>().ok_or(ParseError::EmptyTranscription)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Vec3;
    use crate::sample::ManipulatorState;

    fn frames(n: usize) -> Vec<KinematicSample> {
        (0..n)
            .map(|i| {
                let st = ManipulatorState {
                    position: Vec3::new(i as f32, 2.0 * i as f32, -0.5),
                    grasper_angle: 0.1 * i as f32,
                    ..ManipulatorState::default()
                };
                KinematicSample::new(vec![st, ManipulatorState::default()])
            })
            .collect()
    }

    #[test]
    fn kinematics_roundtrip() {
        let fs = frames(4);
        let text = format_kinematics(&fs);
        let parsed = parse_kinematics(&text, 2).unwrap();
        assert_eq!(parsed.len(), 4);
        for (a, b) in fs.iter().zip(parsed.iter()) {
            for (ma, mb) in a.manipulators.iter().zip(b.manipulators.iter()) {
                assert!((ma.position.x - mb.position.x).abs() < 1e-4);
                assert!((ma.grasper_angle - mb.grasper_angle).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn kinematics_rejects_bad_width() {
        let err = parse_kinematics("1.0 2.0 3.0\n", 2).unwrap_err();
        assert!(matches!(err, ParseError::BadColumnCount { expected: 38, found: 3, .. }));
    }

    #[test]
    fn kinematics_rejects_bad_float() {
        let row = vec!["x"; 38].join(" ");
        let err = parse_kinematics(&row, 2).unwrap_err();
        assert!(matches!(err, ParseError::BadFloat { .. }));
    }

    #[test]
    fn transcription_roundtrip() {
        use Gesture::*;
        let gestures = vec![G1, G1, G2, G2, G2, G11];
        let text = format_transcription(&gestures);
        assert_eq!(text, "1 2 G1\n3 5 G2\n6 6 G11\n");
        let parsed = parse_transcription(&text, 6).unwrap();
        assert_eq!(parsed, gestures);
    }

    #[test]
    fn transcription_fills_gaps_like_jigsaws() {
        // JIGSAWS transcripts often leave lead-in/out frames unlabeled.
        let text = "3 4 G2\n";
        let parsed = parse_transcription(text, 6).unwrap();
        use Gesture::*;
        assert_eq!(parsed, vec![G2, G2, G2, G2, G2, G2]);

        let text = "2 3 G1\n5 6 G4\n";
        let parsed = parse_transcription(text, 7).unwrap();
        assert_eq!(parsed, vec![G1, G1, G1, G1, G4, G4, G4]);
    }

    #[test]
    fn transcription_rejects_bad_spans() {
        assert!(matches!(
            parse_transcription("0 3 G1\n", 5).unwrap_err(),
            ParseError::BadSpan { .. }
        ));
        assert!(matches!(
            parse_transcription("4 2 G1\n", 5).unwrap_err(),
            ParseError::BadSpan { .. }
        ));
        assert!(matches!(
            parse_transcription("1 9 G1\n", 5).unwrap_err(),
            ParseError::BadSpan { .. }
        ));
    }

    #[test]
    fn transcription_rejects_malformed_lines() {
        assert!(matches!(
            parse_transcription("1 2\n", 5).unwrap_err(),
            ParseError::BadTranscriptionLine { .. }
        ));
        assert!(matches!(
            parse_transcription("1 2 G99\n", 5).unwrap_err(),
            ParseError::BadTranscriptionLine { .. }
        ));
    }

    #[test]
    fn empty_transcription_is_error() {
        assert_eq!(parse_transcription("", 3).unwrap_err(), ParseError::EmptyTranscription);
    }

    #[test]
    fn parse_error_display_nonempty() {
        let e = ParseError::BadSpan { line: 3, start: 4, end: 2 };
        assert!(!e.to_string().is_empty());
    }
}
