//! # `kinematics` — the time-series data model of the safety monitor
//!
//! The monitor consumes only kinematics (no video): per-frame manipulator
//! state in the JIGSAWS 19-variable schema (§IV-A). This crate provides:
//!
//! * geometry primitives ([`geometry::Vec3`], [`geometry::Mat3`]),
//! * per-frame state ([`sample::ManipulatorState`],
//!   [`sample::KinematicSample`]),
//! * feature-subset selection used by the Table V/VI ablations
//!   ([`features::FeatureSet`]),
//! * labeled demonstrations with gesture and safety annotations
//!   ([`trajectory::Demonstration`]),
//! * datasets with Leave-One-SuperTrial-Out folds and train-set
//!   normalization ([`dataset`]),
//! * sliding-window extraction, offline and streaming ([`windows`]),
//! * JIGSAWS text-format I/O so the real dataset drops in
//!   ([`jigsaws_io`]).

#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)] // indexed loops mirror frame arithmetic

pub mod dataset;
pub mod features;
pub mod geometry;
pub mod jigsaws_io;
pub mod sample;
pub mod trajectory;
pub mod windows;

pub use dataset::{Dataset, Fold, Normalizer};
pub use features::FeatureSet;
pub use geometry::{Mat3, Vec3};
pub use sample::{KinematicSample, ManipulatorState, VARS_PER_MANIPULATOR};
pub use trajectory::{Demonstration, ErrorAnnotation};
pub use windows::{windows_with_labels, windows_with_positions, SlidingWindow, WindowConfig};
