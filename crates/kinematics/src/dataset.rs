//! Demonstration collections, the Leave-One-SuperTrial-Out split, and
//! feature normalization.

use crate::features::FeatureSet;
use crate::trajectory::Demonstration;
use nn::Mat;
use serde::{Deserialize, Serialize};

/// A collection of demonstrations of one task.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Dataset {
    /// The demonstrations.
    pub demos: Vec<Demonstration>,
}

/// One LOSO fold: indices into [`Dataset::demos`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fold {
    /// Held-out super-trial index.
    pub supertrial: usize,
    /// Training demonstration indices.
    pub train: Vec<usize>,
    /// Test demonstration indices.
    pub test: Vec<usize>,
}

impl Dataset {
    /// Creates a dataset from demonstrations.
    pub fn new(demos: Vec<Demonstration>) -> Self {
        Self { demos }
    }

    /// Number of demonstrations.
    pub fn len(&self) -> usize {
        self.demos.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.demos.is_empty()
    }

    /// Total frame count across demonstrations (the paper's "Training size"
    /// row in Table IV).
    pub fn total_frames(&self) -> usize {
        self.demos.iter().map(|d| d.len()).sum()
    }

    /// Validates every demonstration.
    ///
    /// # Errors
    ///
    /// Returns the first validation failure.
    pub fn validate(&self) -> Result<(), String> {
        for d in &self.demos {
            d.validate()?;
        }
        Ok(())
    }

    /// Leave-One-SuperTrial-Out folds (§IV-A): for each distinct super-trial
    /// value, train on the others and test on it. Folds are ordered by
    /// super-trial index.
    pub fn loso_folds(&self) -> Vec<Fold> {
        let mut supertrials: Vec<usize> = self.demos.iter().map(|d| d.supertrial).collect();
        supertrials.sort_unstable();
        supertrials.dedup();
        supertrials
            .into_iter()
            .map(|st| {
                let (test, train): (Vec<usize>, Vec<usize>) =
                    (0..self.demos.len()).partition(|&i| self.demos[i].supertrial == st);
                Fold { supertrial: st, train, test }
            })
            .collect()
    }

    /// Demonstrations by index.
    pub fn select(&self, indices: &[usize]) -> Vec<&Demonstration> {
        indices.iter().map(|&i| &self.demos[i]).collect()
    }
}

/// Per-feature z-score normalizer fitted on training data only (so LOSO
/// folds do not leak test statistics).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Normalizer {
    mean: Vec<f32>,
    std: Vec<f32>,
}

impl Normalizer {
    /// Fits column statistics over the feature matrices of `demos`.
    ///
    /// # Panics
    ///
    /// Panics if `demos` is empty or contains no frames.
    pub fn fit(demos: &[&Demonstration], features: &FeatureSet) -> Self {
        assert!(!demos.is_empty(), "Normalizer::fit: no demonstrations");
        let dims = features.dims(demos[0].manipulators());
        let mut count = 0usize;
        let mut mean = vec![0.0f64; dims];
        for d in demos {
            for f in &d.frames {
                let v = f.to_feature_vec(features);
                for (m, x) in mean.iter_mut().zip(v.iter()) {
                    *m += *x as f64;
                }
                count += 1;
            }
        }
        assert!(count > 0, "Normalizer::fit: no frames");
        for m in &mut mean {
            *m /= count as f64;
        }
        let mut var = vec![0.0f64; dims];
        for d in demos {
            for f in &d.frames {
                let v = f.to_feature_vec(features);
                for ((s, x), m) in var.iter_mut().zip(v.iter()).zip(mean.iter()) {
                    let diff = *x as f64 - m;
                    *s += diff * diff;
                }
            }
        }
        let std = var.iter().map(|&v| ((v / count as f64).sqrt() as f32).max(1e-6)).collect();
        Self { mean: mean.into_iter().map(|m| m as f32).collect(), std }
    }

    /// Feature dimensionality.
    pub fn dims(&self) -> usize {
        self.mean.len()
    }

    /// Normalizes a `(frames, features)` matrix.
    ///
    /// # Panics
    ///
    /// Panics if the column count differs from the fitted dimensionality.
    pub fn apply(&self, m: &Mat) -> Mat {
        assert_eq!(m.cols(), self.dims(), "Normalizer::apply: dimension mismatch");
        // lint: allow(alloc, reason = "offline batch normalizer; hot code uses apply_frame_inplace -- reached only via the sim .step() name collision")
        let mut out = m.clone();
        self.apply_inplace(&mut out);
        out
    }

    /// In-place variant of [`Normalizer::apply`].
    ///
    /// # Panics
    ///
    /// Panics if the column count differs from the fitted dimensionality.
    pub fn apply_inplace(&self, m: &mut Mat) {
        assert_eq!(m.cols(), self.dims(), "Normalizer::apply: dimension mismatch");
        let cols = m.cols();
        for (i, x) in m.as_mut_slice().iter_mut().enumerate() {
            let c = i % cols;
            *x = (*x - self.mean[c]) / self.std[c];
        }
    }

    /// Normalizes a single frame's feature vector.
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the fitted dimensionality.
    pub fn apply_frame(&self, frame: &[f32]) -> Vec<f32> {
        assert_eq!(frame.len(), self.dims(), "Normalizer::apply_frame: dimension mismatch");
        frame.iter().enumerate().map(|(c, &x)| (x - self.mean[c]) / self.std[c]).collect()
    }

    /// Normalizes a single frame in place (the streaming monitor's
    /// allocation-free per-frame path). Bit-identical to
    /// [`Normalizer::apply_frame`].
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the fitted dimensionality.
    // lint: hot-path
    pub fn apply_frame_inplace(&self, frame: &mut [f32]) {
        assert_eq!(frame.len(), self.dims(), "Normalizer::apply_frame_inplace: dimension mismatch");
        for (c, x) in frame.iter_mut().enumerate() {
            *x = (*x - self.mean[c]) / self.std[c];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::{KinematicSample, ManipulatorState};
    use gestures::{Gesture, Task};

    fn demo(supertrial: usize, value: f32, frames: usize) -> Demonstration {
        let mut st = ManipulatorState::default();
        st.position.x = value;
        Demonstration {
            id: format!("d{supertrial}"),
            task: Task::Suturing,
            subject: "B".into(),
            supertrial,
            hz: 30.0,
            frames: vec![KinematicSample::new(vec![st, st]); frames],
            gestures: vec![Gesture::G1; frames],
            unsafe_labels: vec![false; frames],
            errors: vec![],
        }
    }

    #[test]
    fn loso_folds_partition_by_supertrial() {
        let ds = Dataset::new(vec![demo(1, 0.0, 3), demo(1, 1.0, 3), demo(2, 2.0, 3)]);
        let folds = ds.loso_folds();
        assert_eq!(folds.len(), 2);
        assert_eq!(folds[0].supertrial, 1);
        assert_eq!(folds[0].test, vec![0, 1]);
        assert_eq!(folds[0].train, vec![2]);
        assert_eq!(folds[1].test, vec![2]);
        // Every fold's train+test covers all demos exactly once.
        for f in &folds {
            let mut all: Vec<usize> = f.train.iter().chain(f.test.iter()).copied().collect();
            all.sort_unstable();
            assert_eq!(all, vec![0, 1, 2]);
        }
    }

    #[test]
    fn total_frames_sums() {
        let ds = Dataset::new(vec![demo(1, 0.0, 3), demo(2, 0.0, 7)]);
        assert_eq!(ds.total_frames(), 10);
    }

    #[test]
    fn normalizer_zero_means_unit_std() {
        let demos = [demo(1, -1.0, 5), demo(2, 1.0, 5)];
        let refs: Vec<&Demonstration> = demos.iter().collect();
        let norm = Normalizer::fit(&refs, &FeatureSet::ALL);
        let m = demos[0].feature_matrix(&FeatureSet::ALL);
        let normalized = norm.apply(&m);
        // Feature 0 (position.x) was -1 in this demo, mean 0, std 1 -> -1.
        assert!((normalized[(0, 0)] + 1.0).abs() < 1e-4);
        // Constant features normalize to 0 (std floored, mean subtracted).
        assert!(normalized[(0, 1)].abs() < 1e-4);
    }

    #[test]
    fn normalizer_frame_matches_matrix() {
        let demos = [demo(1, -1.0, 4), demo(2, 3.0, 4)];
        let refs: Vec<&Demonstration> = demos.iter().collect();
        let norm = Normalizer::fit(&refs, &FeatureSet::CG);
        let m = norm.apply(&demos[0].feature_matrix(&FeatureSet::CG));
        let frame = norm.apply_frame(&demos[0].frames[0].to_feature_vec(&FeatureSet::CG));
        assert_eq!(m.row(0), frame.as_slice());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn normalizer_rejects_wrong_width() {
        let demos = [demo(1, 0.0, 2)];
        let refs: Vec<&Demonstration> = demos.iter().collect();
        let norm = Normalizer::fit(&refs, &FeatureSet::CG);
        let _ = norm.apply(&Mat::zeros(2, 3));
    }
}
