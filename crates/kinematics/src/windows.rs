//! Sliding-window extraction (Equation 2: input `x_t = (x_t .. x_{t+w})`
//! with window `w` and stride `s`), both offline (for training) and online
//! (for the streaming monitor).

use nn::Mat;
use serde::{Deserialize, Serialize};

/// Sliding-window parameters. The paper uses `w = 5, s = 1` for Suturing and
/// `w = 10, s = 1` for Block Transfer error classifiers (Tables V/VI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WindowConfig {
    /// Window width in frames.
    pub width: usize,
    /// Stride between consecutive windows.
    pub stride: usize,
}

impl WindowConfig {
    /// Creates a window configuration.
    ///
    /// # Panics
    ///
    /// Panics if width or stride is zero.
    pub fn new(width: usize, stride: usize) -> Self {
        assert!(width > 0, "window width must be positive");
        assert!(stride > 0, "window stride must be positive");
        Self { width, stride }
    }

    /// Start indices of all complete windows over a stream of `len` frames.
    pub fn starts(&self, len: usize) -> impl Iterator<Item = usize> + '_ {
        let last = len.checked_sub(self.width);
        (0..=last.unwrap_or(0))
            .step_by(self.stride)
            .take_while(move |_| last.is_some())
            .filter(move |&s| s + self.width <= len)
    }
}

impl Default for WindowConfig {
    fn default() -> Self {
        Self { width: 5, stride: 1 }
    }
}

/// Extracts `(window, label)` pairs from a `(frames, features)` matrix; the
/// label of a window is the label of its **last** frame (the frame the
/// online monitor is classifying "now").
///
/// # Panics
///
/// Panics if `labels.len() != features.rows()`.
pub fn windows_with_labels(
    features: &Mat,
    labels: &[usize],
    cfg: WindowConfig,
) -> Vec<(Mat, usize)> {
    assert_eq!(labels.len(), features.rows(), "labels/features length mismatch");
    cfg.starts(features.rows())
        .map(|s| {
            let end = s + cfg.width;
            (features.slice_rows(s, end), labels[end - 1])
        })
        .collect()
}

/// Extracts `(window, frame_index_of_last_frame)` pairs — used when replaying
/// a demonstration through the online monitor while keeping frame alignment.
pub fn windows_with_positions(features: &Mat, cfg: WindowConfig) -> Vec<(Mat, usize)> {
    cfg.starts(features.rows())
        .map(|s| {
            let end = s + cfg.width;
            (features.slice_rows(s, end), end - 1)
        })
        .collect()
}

/// An online window buffer that yields a `(width, features)` window once
/// enough frames have been pushed — the streaming counterpart of
/// [`windows_with_labels`].
///
/// The window is kept materialized as one contiguous [`Mat`] that is handed
/// out by reference, so pushing a frame performs **no heap allocation**: the
/// buffer shifts rows with a `memmove` and overwrites the last row. (For the
/// window sizes the monitor uses — tens of frames × tens of features — the
/// shift is cheaper than the pointer chasing of a deque of rows, and the
/// network consumes the window as a contiguous matrix anyway.)
#[derive(Debug, Clone)]
pub struct SlidingWindow {
    width: usize,
    dims: usize,
    filled: usize,
    window: Mat,
}

impl SlidingWindow {
    /// Creates a buffer for windows of `width` frames of `dims` features.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0` or `dims == 0`.
    pub fn new(width: usize, dims: usize) -> Self {
        assert!(width > 0 && dims > 0, "width and dims must be positive");
        Self { width, dims, filled: 0, window: Mat::zeros(width, dims) }
    }

    /// Pushes a frame; returns the current window once the buffer is full.
    /// The returned reference stays valid until the next `push`.
    ///
    /// # Panics
    ///
    /// Panics if the frame width does not match `dims`.
    // lint: hot-path
    pub fn push(&mut self, frame: &[f32]) -> Option<&Mat> {
        assert_eq!(frame.len(), self.dims, "frame width mismatch");
        if self.filled == self.width {
            // Slide: drop the oldest row, append the new one.
            self.window.as_mut_slice().copy_within(self.dims.., 0);
            self.window.row_mut(self.width - 1).copy_from_slice(frame);
            Some(&self.window)
        } else {
            self.window.row_mut(self.filled).copy_from_slice(frame);
            self.filled += 1;
            if self.filled == self.width {
                Some(&self.window)
            } else {
                None
            }
        }
    }

    /// The current window, if warm (full).
    // lint: hot-path
    pub fn current(&self) -> Option<&Mat> {
        if self.filled == self.width {
            Some(&self.window)
        } else {
            None
        }
    }

    /// Window width in frames (the row count of every emitted window).
    // lint: hot-path
    pub fn width(&self) -> usize {
        self.width
    }

    /// Feature dimension (the column count of every emitted window).
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Copies the current window into rows `at .. at + width` of `dst`, for
    /// stacking several sessions' windows into one `(batch * width, dims)`
    /// matrix ahead of a batched forward pass. Returns `false` (writing
    /// nothing) while the buffer is still warming up.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is narrower than `dims` or the rows do not fit.
    // lint: hot-path
    pub fn copy_current_into(&self, dst: &mut Mat, at: usize) -> bool {
        match self.current() {
            Some(window) => {
                dst.copy_rows_from(window, at);
                true
            }
            None => false,
        }
    }

    /// Number of frames currently buffered.
    pub fn len(&self) -> usize {
        self.filled
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.filled == 0
    }

    /// Clears the buffer (e.g. between demonstrations).
    // lint: hot-path
    pub fn clear(&mut self) {
        self.filled = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(rows: usize, cols: usize) -> Mat {
        Mat::from_vec(rows, cols, (0..rows * cols).map(|i| i as f32).collect())
    }

    #[test]
    fn starts_cover_stream_with_stride() {
        let cfg = WindowConfig::new(3, 2);
        let starts: Vec<usize> = cfg.starts(8).collect();
        assert_eq!(starts, vec![0, 2, 4]);
    }

    #[test]
    fn starts_empty_when_stream_shorter_than_window() {
        let cfg = WindowConfig::new(5, 1);
        assert_eq!(cfg.starts(3).count(), 0);
    }

    #[test]
    fn windows_take_last_frame_label() {
        let m = ramp(6, 2);
        let labels = [0, 0, 1, 1, 2, 2];
        let w = windows_with_labels(&m, &labels, WindowConfig::new(3, 1));
        assert_eq!(w.len(), 4);
        assert_eq!(w[0].1, 1); // frames 0..3, last label = labels[2]
        assert_eq!(w[3].1, 2);
        assert_eq!(w[0].0.shape(), (3, 2));
        assert_eq!(w[0].0.row(0), m.row(0));
    }

    #[test]
    fn windows_with_positions_track_last_frame() {
        let m = ramp(5, 1);
        let w = windows_with_positions(&m, WindowConfig::new(2, 1));
        let pos: Vec<usize> = w.iter().map(|(_, p)| *p).collect();
        assert_eq!(pos, vec![1, 2, 3, 4]);
    }

    #[test]
    fn sliding_window_fills_then_slides() {
        let mut sw = SlidingWindow::new(3, 2);
        assert!(sw.push(&[0.0, 0.0]).is_none());
        assert!(sw.push(&[1.0, 1.0]).is_none());
        let w = sw.push(&[2.0, 2.0]).expect("full window");
        assert_eq!(w.row(0), &[0.0, 0.0]);
        assert_eq!(w.row(2), &[2.0, 2.0]);
        let w = sw.push(&[3.0, 3.0]).expect("slides");
        assert_eq!(w.row(0), &[1.0, 1.0]);
        assert_eq!(w.row(2), &[3.0, 3.0]);
    }

    #[test]
    fn sliding_window_matches_offline_windows() {
        let m = ramp(10, 3);
        let cfg = WindowConfig::new(4, 1);
        let offline = windows_with_positions(&m, cfg);
        let mut sw = SlidingWindow::new(4, 3);
        let mut online = Vec::new();
        for r in 0..m.rows() {
            if let Some(w) = sw.push(m.row(r)) {
                online.push((w.clone(), r));
            }
        }
        assert_eq!(offline, online);
    }

    #[test]
    fn copy_current_into_stacks_windows() {
        let mut a = SlidingWindow::new(2, 2);
        let mut b = SlidingWindow::new(2, 2);
        let mut stacked = Mat::zeros(4, 2);
        assert!(!a.copy_current_into(&mut stacked, 0), "cold buffer writes nothing");
        let _ = a.push(&[1.0, 2.0]);
        let _ = a.push(&[3.0, 4.0]);
        let _ = b.push(&[5.0, 6.0]);
        let _ = b.push(&[7.0, 8.0]);
        assert_eq!(a.width(), 2);
        assert_eq!(a.dims(), 2);
        assert!(a.copy_current_into(&mut stacked, 0));
        assert!(b.copy_current_into(&mut stacked, a.width()));
        assert_eq!(stacked, Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0], &[7.0, 8.0]]));
    }

    #[test]
    fn clear_resets_buffer() {
        let mut sw = SlidingWindow::new(2, 1);
        let _ = sw.push(&[1.0]);
        sw.clear();
        assert!(sw.is_empty());
        assert!(sw.push(&[2.0]).is_none());
    }
}
