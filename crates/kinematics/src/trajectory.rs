//! Labeled demonstrations: synchronized kinematics, gesture transcript, and
//! safety annotations.

use crate::features::FeatureSet;
use crate::sample::KinematicSample;
use gestures::{Gesture, Task};
use nn::Mat;
use serde::{Deserialize, Serialize};

/// One annotated unsafe event inside a demonstration: the erroneous gesture
/// span and the frame at which the error *actually* occurred (for JIGSAWS
/// annotations this is the gesture onset; for fault injections it is the
/// video-derived failure frame — §IV-B "Automated Labeling of Errors").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErrorAnnotation {
    /// Gesture class of the erroneous gesture.
    pub gesture: Gesture,
    /// First frame of the erroneous gesture.
    pub span_start: usize,
    /// One past the last frame of the erroneous gesture.
    pub span_end: usize,
    /// Frame of actual error occurrence.
    pub actual_frame: usize,
}

/// A complete labeled trial of a surgical task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Demonstration {
    /// Unique identifier (e.g. `"Suturing_B001"`).
    pub id: String,
    /// Task being performed.
    pub task: Task,
    /// Subject identifier (JIGSAWS: `B`–`I`).
    pub subject: String,
    /// Super-trial index 1–5 (the unit of the LOSO split, §IV-A).
    pub supertrial: usize,
    /// Sampling rate in frames per second.
    pub hz: f32,
    /// Kinematics, one sample per frame.
    pub frames: Vec<KinematicSample>,
    /// Ground-truth gesture per frame (parallel to `frames`).
    pub gestures: Vec<Gesture>,
    /// Ground-truth per-frame unsafe flag (parallel to `frames`).
    pub unsafe_labels: Vec<bool>,
    /// Span-level error annotations.
    pub errors: Vec<ErrorAnnotation>,
}

impl Demonstration {
    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the demonstration has no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Duration in milliseconds.
    pub fn duration_ms(&self) -> f32 {
        self.frames.len() as f32 * 1000.0 / self.hz
    }

    /// Number of manipulators per frame (0 for an empty demonstration).
    pub fn manipulators(&self) -> usize {
        self.frames.first().map_or(0, |f| f.manipulators.len())
    }

    /// Checks the internal consistency of all parallel arrays and
    /// annotations.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found.
    pub fn validate(&self) -> Result<(), String> {
        if self.gestures.len() != self.frames.len() {
            return Err(format!(
                "{}: {} gesture labels for {} frames",
                self.id,
                self.gestures.len(),
                self.frames.len()
            ));
        }
        if self.unsafe_labels.len() != self.frames.len() {
            return Err(format!(
                "{}: {} unsafe labels for {} frames",
                self.id,
                self.unsafe_labels.len(),
                self.frames.len()
            ));
        }
        let n = self.manipulators();
        if self.frames.iter().any(|f| f.manipulators.len() != n) {
            return Err(format!("{}: inconsistent manipulator counts", self.id));
        }
        for e in &self.errors {
            if e.span_start >= e.span_end || e.span_end > self.len() {
                return Err(format!(
                    "{}: bad error span {}..{}",
                    self.id, e.span_start, e.span_end
                ));
            }
        }
        if self.hz <= 0.0 {
            return Err(format!("{}: non-positive sampling rate", self.id));
        }
        Ok(())
    }

    /// Flattens the kinematics into a `(frames, features)` matrix under the
    /// given feature selection.
    pub fn feature_matrix(&self, features: &FeatureSet) -> Mat {
        let n = self.manipulators();
        let cols = features.dims(n);
        let mut data = Vec::with_capacity(self.len() * cols);
        for f in &self.frames {
            data.extend(f.to_feature_vec(features));
        }
        Mat::from_vec(self.len(), cols, data)
    }

    /// Per-frame gesture class indices.
    pub fn gesture_indices(&self) -> Vec<usize> {
        self.gestures.iter().map(|g| g.index()).collect()
    }

    /// The collapsed gesture sequence (one entry per segment), e.g.
    /// `[G2, G12, G6, G5, G11]` for Block Transfer.
    pub fn gesture_sequence(&self) -> Vec<Gesture> {
        let mut seq = Vec::new();
        for &g in &self.gestures {
            if seq.last() != Some(&g) {
                seq.push(g);
            }
        }
        seq
    }

    /// Downsamples by an integer factor (keeping every `factor`-th frame),
    /// adjusting labels, annotations, and the sampling rate.
    ///
    /// # Panics
    ///
    /// Panics if `factor == 0`.
    pub fn decimate(&self, factor: usize) -> Demonstration {
        assert!(factor > 0, "decimation factor must be positive");
        if factor == 1 {
            return self.clone();
        }
        let pick = |i: usize| i / factor;
        Demonstration {
            id: self.id.clone(),
            task: self.task,
            subject: self.subject.clone(),
            supertrial: self.supertrial,
            hz: self.hz / factor as f32,
            frames: self.frames.iter().step_by(factor).cloned().collect(),
            gestures: self.gestures.iter().step_by(factor).copied().collect(),
            unsafe_labels: self.unsafe_labels.iter().step_by(factor).copied().collect(),
            errors: self
                .errors
                .iter()
                .map(|e| ErrorAnnotation {
                    gesture: e.gesture,
                    span_start: pick(e.span_start),
                    span_end: pick(e.span_end.saturating_sub(1)) + 1,
                    actual_frame: pick(e.actual_frame),
                })
                .collect(),
        }
    }

    /// Number of frames labeled unsafe.
    pub fn unsafe_frames(&self) -> usize {
        self.unsafe_labels.iter().filter(|&&u| u).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::ManipulatorState;

    fn demo(frames: usize) -> Demonstration {
        Demonstration {
            id: "t".into(),
            task: Task::BlockTransfer,
            subject: "B".into(),
            supertrial: 1,
            hz: 30.0,
            frames: vec![KinematicSample::new(vec![ManipulatorState::default(); 2]); frames],
            gestures: vec![Gesture::G2; frames],
            unsafe_labels: vec![false; frames],
            errors: vec![],
        }
    }

    #[test]
    fn validate_accepts_consistent_demo() {
        assert!(demo(10).validate().is_ok());
    }

    #[test]
    fn validate_rejects_label_mismatch() {
        let mut d = demo(10);
        d.gestures.pop();
        assert!(d.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_error_span() {
        let mut d = demo(10);
        d.errors.push(ErrorAnnotation {
            gesture: Gesture::G2,
            span_start: 5,
            span_end: 20,
            actual_frame: 5,
        });
        assert!(d.validate().is_err());
    }

    #[test]
    fn feature_matrix_shape() {
        let d = demo(7);
        let m = d.feature_matrix(&FeatureSet::ALL);
        assert_eq!(m.shape(), (7, 38));
        let m = d.feature_matrix(&FeatureSet::CG);
        assert_eq!(m.shape(), (7, 8));
    }

    #[test]
    fn gesture_sequence_collapses_runs() {
        let mut d = demo(6);
        d.gestures =
            vec![Gesture::G2, Gesture::G2, Gesture::G12, Gesture::G12, Gesture::G6, Gesture::G6];
        assert_eq!(d.gesture_sequence(), vec![Gesture::G2, Gesture::G12, Gesture::G6]);
    }

    #[test]
    fn decimate_halves_frames_and_rate() {
        let mut d = demo(10);
        d.errors.push(ErrorAnnotation {
            gesture: Gesture::G2,
            span_start: 4,
            span_end: 8,
            actual_frame: 6,
        });
        let half = d.decimate(2);
        assert_eq!(half.len(), 5);
        assert_eq!(half.hz, 15.0);
        assert_eq!(half.errors[0].span_start, 2);
        assert_eq!(half.errors[0].actual_frame, 3);
        assert!(half.validate().is_ok());
        // Duration is preserved.
        assert!((half.duration_ms() - d.duration_ms()).abs() < 40.0);
    }

    #[test]
    fn decimate_by_one_is_identity() {
        let d = demo(5);
        assert_eq!(d.decimate(1), d);
    }
}
