//! Kinematic feature-subset selection.
//!
//! Table V/VI of the paper ablate the error classifiers over feature subsets:
//! all 19 variables, Cartesian + Rotation + Grasper ("C,R,G"), and
//! Cartesian + Grasper ("C,G" on the Raven II).

use serde::{Deserialize, Serialize};

/// Which kinematic variable groups to include when flattening a
/// [`crate::sample::ManipulatorState`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FeatureSet {
    /// Cartesian position (3 dims).
    pub cartesian: bool,
    /// Rotation matrix (9 dims).
    pub rotation: bool,
    /// Grasper angle (1 dim).
    pub grasper: bool,
    /// Linear velocity (3 dims).
    pub linear_velocity: bool,
    /// Angular velocity (3 dims).
    pub angular_velocity: bool,
}

impl FeatureSet {
    /// All 19 variables per manipulator (the paper's "All").
    pub const ALL: FeatureSet = FeatureSet {
        cartesian: true,
        rotation: true,
        grasper: true,
        linear_velocity: true,
        angular_velocity: true,
    };

    /// Cartesian + Rotation + Grasper (the paper's "C,R,G", Table V).
    pub const CRG: FeatureSet = FeatureSet {
        cartesian: true,
        rotation: true,
        grasper: true,
        linear_velocity: false,
        angular_velocity: false,
    };

    /// Cartesian + Grasper (the paper's "C,G" used on the Raven II, Table VI).
    pub const CG: FeatureSet = FeatureSet {
        cartesian: true,
        rotation: false,
        grasper: true,
        linear_velocity: false,
        angular_velocity: false,
    };

    /// Feature dimensionality per manipulator.
    pub fn dims_per_manipulator(&self) -> usize {
        let mut d = 0;
        if self.cartesian {
            d += 3;
        }
        if self.rotation {
            d += 9;
        }
        if self.grasper {
            d += 1;
        }
        if self.linear_velocity {
            d += 3;
        }
        if self.angular_velocity {
            d += 3;
        }
        d
    }

    /// Total dimensionality for `n` manipulators.
    pub fn dims(&self, manipulators: usize) -> usize {
        self.dims_per_manipulator() * manipulators
    }

    /// Short label used in the experiment tables ("All", "C,R,G", "C,G", …).
    pub fn label(&self) -> String {
        if *self == Self::ALL {
            return "All".to_string();
        }
        let mut parts = Vec::new();
        if self.cartesian {
            parts.push("C");
        }
        if self.rotation {
            parts.push("R");
        }
        if self.grasper {
            parts.push("G");
        }
        if self.linear_velocity {
            parts.push("LV");
        }
        if self.angular_velocity {
            parts.push("AV");
        }
        parts.join(",")
    }
}

impl Default for FeatureSet {
    fn default() -> Self {
        Self::ALL
    }
}

impl std::fmt::Display for FeatureSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensionalities_match_the_schema() {
        assert_eq!(FeatureSet::ALL.dims_per_manipulator(), 19);
        assert_eq!(FeatureSet::CRG.dims_per_manipulator(), 13);
        assert_eq!(FeatureSet::CG.dims_per_manipulator(), 4);
        assert_eq!(FeatureSet::ALL.dims(2), 38);
    }

    #[test]
    fn labels_match_the_paper_tables() {
        assert_eq!(FeatureSet::ALL.label(), "All");
        assert_eq!(FeatureSet::CRG.label(), "C,R,G");
        assert_eq!(FeatureSet::CG.label(), "C,G");
    }

    #[test]
    fn default_is_all() {
        assert_eq!(FeatureSet::default(), FeatureSet::ALL);
    }
}
