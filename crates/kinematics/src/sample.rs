//! Per-frame kinematic state: the JIGSAWS 19-variable manipulator schema.

use crate::features::FeatureSet;
use crate::geometry::{Mat3, Vec3};
use serde::{Deserialize, Serialize};

/// State of one robot manipulator at one frame — the 19 JIGSAWS variables
/// (§IV-A): Cartesian position (3), rotation matrix (9), grasper angle (1),
/// linear velocity (3), angular velocity (3).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ManipulatorState {
    /// End-effector Cartesian position (the paper's fault-injection unit is
    /// millimeters on the Raven II).
    pub position: Vec3,
    /// End-effector orientation.
    pub rotation: Mat3,
    /// Grasper opening angle in radians (0 = closed).
    pub grasper_angle: f32,
    /// Linear velocity.
    pub linear_velocity: Vec3,
    /// Angular velocity.
    pub angular_velocity: Vec3,
}

/// Number of kinematic variables per manipulator in the JIGSAWS schema.
pub const VARS_PER_MANIPULATOR: usize = 19;

impl ManipulatorState {
    /// Flattens the full 19-variable state in JIGSAWS column order.
    pub fn to_vec(&self) -> Vec<f32> {
        let mut v = Vec::with_capacity(VARS_PER_MANIPULATOR);
        v.extend_from_slice(&self.position.to_array());
        v.extend_from_slice(&self.rotation.m);
        v.push(self.grasper_angle);
        v.extend_from_slice(&self.linear_velocity.to_array());
        v.extend_from_slice(&self.angular_velocity.to_array());
        v
    }

    /// Reconstructs a state from the 19-variable JIGSAWS column order.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != 19`.
    pub fn from_slice(v: &[f32]) -> Self {
        assert_eq!(v.len(), VARS_PER_MANIPULATOR, "expected 19 variables, got {}", v.len());
        Self {
            position: Vec3::new(v[0], v[1], v[2]),
            rotation: Mat3 { m: v[3..12].try_into().expect("9 rotation elements") },
            grasper_angle: v[12],
            linear_velocity: Vec3::new(v[13], v[14], v[15]),
            angular_velocity: Vec3::new(v[16], v[17], v[18]),
        }
    }

    /// Flattens only the variables selected by `features`.
    pub fn to_feature_vec(&self, features: &FeatureSet) -> Vec<f32> {
        let mut v = Vec::with_capacity(features.dims_per_manipulator());
        self.append_feature_vec(features, &mut v);
        v
    }

    /// Appends the selected variables to `out` without allocating (given
    /// sufficient capacity) — the streaming monitor's per-frame path.
    // lint: hot-path
    pub fn append_feature_vec(&self, features: &FeatureSet, out: &mut Vec<f32>) {
        if features.cartesian {
            out.extend_from_slice(&self.position.to_array());
        }
        if features.rotation {
            out.extend_from_slice(&self.rotation.m);
        }
        if features.grasper {
            out.push(self.grasper_angle);
        }
        if features.linear_velocity {
            out.extend_from_slice(&self.linear_velocity.to_array());
        }
        if features.angular_velocity {
            out.extend_from_slice(&self.angular_velocity.to_array());
        }
    }
}

/// One frame of the robot: all manipulators (JIGSAWS: left + right slave).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct KinematicSample {
    /// Per-manipulator state, in platform order (e.g. `[left, right]`).
    pub manipulators: Vec<ManipulatorState>,
}

impl KinematicSample {
    /// Creates a frame from manipulator states.
    pub fn new(manipulators: Vec<ManipulatorState>) -> Self {
        Self { manipulators }
    }

    /// A frame of `n` default manipulators.
    pub fn zeros(n: usize) -> Self {
        Self { manipulators: vec![ManipulatorState::default(); n] }
    }

    /// Flattens all manipulators under the given feature selection.
    pub fn to_feature_vec(&self, features: &FeatureSet) -> Vec<f32> {
        let mut v = Vec::with_capacity(features.dims_per_manipulator() * self.manipulators.len());
        self.to_feature_vec_into(features, &mut v);
        v
    }

    /// Overwrites `out` with the flattened feature vector, reusing its
    /// allocation (no heap traffic in steady state).
    // lint: hot-path
    pub fn to_feature_vec_into(&self, features: &FeatureSet, out: &mut Vec<f32>) {
        out.clear();
        for m in &self.manipulators {
            m.append_feature_vec(features, out);
        }
    }

    /// Flattens the complete 19-variable schema for all manipulators.
    pub fn to_vec(&self) -> Vec<f32> {
        let mut v = Vec::with_capacity(VARS_PER_MANIPULATOR * self.manipulators.len());
        for m in &self.manipulators {
            v.extend(m.to_vec());
        }
        v
    }

    /// Reconstructs from a flat row of `19 * n` variables.
    ///
    /// # Panics
    ///
    /// Panics if the length is not a multiple of 19 or yields a different
    /// manipulator count than `n`.
    pub fn from_slice(v: &[f32], n: usize) -> Self {
        assert_eq!(v.len(), VARS_PER_MANIPULATOR * n, "bad row width {}", v.len());
        Self {
            manipulators: v
                .chunks_exact(VARS_PER_MANIPULATOR)
                .map(ManipulatorState::from_slice)
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_state() -> ManipulatorState {
        ManipulatorState {
            position: Vec3::new(1.0, 2.0, 3.0),
            rotation: Mat3::from_euler(0.1, 0.2, 0.3),
            grasper_angle: 0.7,
            linear_velocity: Vec3::new(0.1, 0.0, -0.1),
            angular_velocity: Vec3::new(0.0, 0.5, 0.0),
        }
    }

    #[test]
    fn to_vec_has_19_vars_and_roundtrips() {
        let s = sample_state();
        let v = s.to_vec();
        assert_eq!(v.len(), VARS_PER_MANIPULATOR);
        assert_eq!(ManipulatorState::from_slice(&v), s);
    }

    #[test]
    fn feature_vec_respects_selection() {
        let s = sample_state();
        let crg = s.to_feature_vec(&FeatureSet::CRG);
        assert_eq!(crg.len(), 13); // 3 + 9 + 1
        assert_eq!(crg[0], 1.0);
        assert_eq!(crg[12], 0.7);
        let cg = s.to_feature_vec(&FeatureSet::CG);
        assert_eq!(cg.len(), 4);
        assert_eq!(cg[3], 0.7);
    }

    #[test]
    fn frame_roundtrip_two_manipulators() {
        let frame = KinematicSample::new(vec![sample_state(), ManipulatorState::default()]);
        let v = frame.to_vec();
        assert_eq!(v.len(), 38);
        assert_eq!(KinematicSample::from_slice(&v, 2), frame);
    }

    #[test]
    fn full_featureset_equals_to_vec() {
        let frame = KinematicSample::new(vec![sample_state(), sample_state()]);
        assert_eq!(frame.to_feature_vec(&FeatureSet::ALL), frame.to_vec());
    }
}
