//! Minimal 3-D geometry types for manipulator state.

use serde::{Deserialize, Serialize};

/// A 3-D vector (Cartesian position, linear velocity, angular velocity).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
    /// Z component.
    pub z: f32,
}

impl Vec3 {
    /// Creates a vector.
    // lint: hot-path
    pub fn new(x: f32, y: f32, z: f32) -> Self {
        Self { x, y, z }
    }

    /// The zero vector.
    pub fn zero() -> Self {
        Self::default()
    }

    /// Euclidean norm.
    pub fn norm(self) -> f32 {
        (self.x * self.x + self.y * self.y + self.z * self.z).sqrt()
    }

    /// Euclidean distance to another point.
    pub fn distance(self, other: Vec3) -> f32 {
        (self - other).norm()
    }

    /// Dot product.
    pub fn dot(self, other: Vec3) -> f32 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Cross product.
    pub fn cross(self, other: Vec3) -> Vec3 {
        Vec3::new(
            self.y * other.z - self.z * other.y,
            self.z * other.x - self.x * other.z,
            self.x * other.y - self.y * other.x,
        )
    }

    /// Linear interpolation: `self + t * (other - self)`.
    pub fn lerp(self, other: Vec3, t: f32) -> Vec3 {
        self + (other - self) * t
    }

    /// Unit vector in the same direction; zero vector stays zero.
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        if n == 0.0 {
            Vec3::zero()
        } else {
            self * (1.0 / n)
        }
    }

    /// Components as an array.
    pub fn to_array(self) -> [f32; 3] {
        [self.x, self.y, self.z]
    }
}

impl std::ops::Add for Vec3 {
    type Output = Vec3;
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl std::ops::Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl std::ops::Mul<f32> for Vec3 {
    type Output = Vec3;
    fn mul(self, s: f32) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl std::ops::Neg for Vec3 {
    type Output = Vec3;
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

/// A 3x3 rotation matrix, row-major (the 9 "Rotation Matrix" variables of
/// the JIGSAWS kinematics schema).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mat3 {
    /// Row-major elements.
    pub m: [f32; 9],
}

impl Default for Mat3 {
    fn default() -> Self {
        Self::identity()
    }
}

impl Mat3 {
    /// The identity rotation.
    pub fn identity() -> Self {
        Self { m: [1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0] }
    }

    /// Rotation from intrinsic XYZ Euler angles (radians).
    pub fn from_euler(rx: f32, ry: f32, rz: f32) -> Self {
        let (sx, cx) = rx.sin_cos();
        let (sy, cy) = ry.sin_cos();
        let (sz, cz) = rz.sin_cos();
        // R = Rz * Ry * Rx
        Self {
            m: [
                cz * cy,
                cz * sy * sx - sz * cx,
                cz * sy * cx + sz * sx,
                sz * cy,
                sz * sy * sx + cz * cx,
                sz * sy * cx - cz * sx,
                -sy,
                cy * sx,
                cy * cx,
            ],
        }
    }

    /// Matrix product.
    #[allow(clippy::should_implement_trait)] // free-function style matches Vec3 ops
    pub fn mul(self, o: Mat3) -> Mat3 {
        let mut r = [0.0f32; 9];
        for i in 0..3 {
            for j in 0..3 {
                let mut acc = 0.0;
                for k in 0..3 {
                    acc += self.m[i * 3 + k] * o.m[k * 3 + j];
                }
                r[i * 3 + j] = acc;
            }
        }
        Mat3 { m: r }
    }

    /// Transpose (= inverse for proper rotations).
    pub fn transpose(self) -> Mat3 {
        let m = self.m;
        Mat3 { m: [m[0], m[3], m[6], m[1], m[4], m[7], m[2], m[5], m[8]] }
    }

    /// Trace.
    pub fn trace(self) -> f32 {
        self.m[0] + self.m[4] + self.m[8]
    }

    /// Geodesic angle (radians) between two rotations:
    /// `acos((trace(A^T B) - 1) / 2)`, clamped for numerical safety.
    pub fn angle_to(self, other: Mat3) -> f32 {
        let rel = self.transpose().mul(other);
        let c = ((rel.trace() - 1.0) / 2.0).clamp(-1.0, 1.0);
        c.acos()
    }

    /// Applies the rotation to a vector.
    pub fn apply(self, v: Vec3) -> Vec3 {
        Vec3::new(
            self.m[0] * v.x + self.m[1] * v.y + self.m[2] * v.z,
            self.m[3] * v.x + self.m[4] * v.y + self.m[5] * v.z,
            self.m[6] * v.x + self.m[7] * v.y + self.m[8] * v.z,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec3_arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
        assert!((a.dot(b) - 32.0).abs() < 1e-6);
    }

    #[test]
    fn cross_product_is_orthogonal() {
        let a = Vec3::new(1.0, 0.0, 0.0);
        let b = Vec3::new(0.0, 1.0, 0.0);
        assert_eq!(a.cross(b), Vec3::new(0.0, 0.0, 1.0));
        let c = Vec3::new(1.0, 2.0, 3.0).cross(Vec3::new(-2.0, 0.5, 1.0));
        assert!(c.dot(Vec3::new(1.0, 2.0, 3.0)).abs() < 1e-5);
    }

    #[test]
    fn norm_and_distance() {
        assert!((Vec3::new(3.0, 4.0, 0.0).norm() - 5.0).abs() < 1e-6);
        assert!((Vec3::zero().distance(Vec3::new(0.0, 0.0, 2.0)) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec3::new(0.0, 0.0, 0.0);
        let b = Vec3::new(2.0, 4.0, 6.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn normalized_has_unit_norm() {
        let v = Vec3::new(1.0, -2.0, 2.0).normalized();
        assert!((v.norm() - 1.0).abs() < 1e-6);
        assert_eq!(Vec3::zero().normalized(), Vec3::zero());
    }

    #[test]
    fn identity_rotation_is_noop() {
        let v = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(Mat3::identity().apply(v), v);
        assert_eq!(Mat3::identity().angle_to(Mat3::identity()), 0.0);
    }

    #[test]
    fn euler_rotation_preserves_norm() {
        let r = Mat3::from_euler(0.3, -0.7, 1.1);
        let v = Vec3::new(1.0, 2.0, 3.0);
        assert!((r.apply(v).norm() - v.norm()).abs() < 1e-5);
    }

    #[test]
    fn angle_to_recovers_rotation_angle() {
        let r = Mat3::from_euler(0.0, 0.0, 0.5);
        let angle = Mat3::identity().angle_to(r);
        assert!((angle - 0.5).abs() < 1e-5, "angle {angle}");
    }

    #[test]
    fn transpose_inverts_rotation() {
        let r = Mat3::from_euler(0.4, 0.2, -0.9);
        let should_be_identity = r.mul(r.transpose());
        for (i, &x) in should_be_identity.m.iter().enumerate() {
            let expect = if i % 4 == 0 { 1.0 } else { 0.0 };
            assert!((x - expect).abs() < 1e-5, "element {i}: {x}");
        }
    }
}
