//! Classic computer-vision operations: thresholding, connected components
//! (contours), centroids — the marker-based detection pipeline of §IV-B
//! ("we applied the same HSV threshold, followed by contour detection to
//! detect the contour of the block and track its centroid").

use crate::frame::Frame;
use serde::{Deserialize, Serialize};

/// A binary mask produced by thresholding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mask {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// Row-major boolean pixels.
    pub pixels: Vec<bool>,
}

impl Mask {
    /// Number of set pixels.
    pub fn area(&self) -> usize {
        self.pixels.iter().filter(|&&p| p).count()
    }
}

/// Thresholds a grayscale frame: pixels with intensity `>= min` are set.
/// (The intensity analog of the paper's HSV color threshold.)
pub fn threshold(frame: &Frame, min: u8) -> Mask {
    Mask {
        width: frame.width(),
        height: frame.height(),
        pixels: frame.bytes().iter().map(|&p| p >= min).collect(),
    }
}

/// A connected component (contour region) of a binary mask.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Component {
    /// Number of pixels.
    pub area: usize,
    /// Centroid in pixel coordinates.
    pub centroid: (f32, f32),
    /// Bounding box `(x0, y0, x1, y1)`, inclusive.
    pub bbox: (usize, usize, usize, usize),
}

/// Finds 4-connected components of a mask, largest first.
pub fn connected_components(mask: &Mask) -> Vec<Component> {
    let (w, h) = (mask.width, mask.height);
    let mut visited = vec![false; w * h];
    let mut out = Vec::new();
    let mut stack = Vec::new();

    for start in 0..w * h {
        if !mask.pixels[start] || visited[start] {
            continue;
        }
        // Flood fill.
        let mut area = 0usize;
        let mut sum = (0.0f64, 0.0f64);
        let mut bbox = (usize::MAX, usize::MAX, 0usize, 0usize);
        stack.push(start);
        visited[start] = true;
        while let Some(i) = stack.pop() {
            let (x, y) = (i % w, i / w);
            area += 1;
            sum.0 += x as f64;
            sum.1 += y as f64;
            bbox.0 = bbox.0.min(x);
            bbox.1 = bbox.1.min(y);
            bbox.2 = bbox.2.max(x);
            bbox.3 = bbox.3.max(y);
            let mut push = |nx: usize, ny: usize| {
                let ni = ny * w + nx;
                if mask.pixels[ni] && !visited[ni] {
                    visited[ni] = true;
                    stack.push(ni);
                }
            };
            if x > 0 {
                push(x - 1, y);
            }
            if x + 1 < w {
                push(x + 1, y);
            }
            if y > 0 {
                push(x, y - 1);
            }
            if y + 1 < h {
                push(x, y + 1);
            }
        }
        out.push(Component {
            area,
            centroid: ((sum.0 / area as f64) as f32, (sum.1 / area as f64) as f32),
            bbox,
        });
    }
    out.sort_by_key(|c| std::cmp::Reverse(c.area));
    out
}

/// Centroid of the largest bright component (the block tracker). `None`
/// when the threshold leaves nothing.
pub fn track_brightest(frame: &Frame, min: u8) -> Option<(f32, f32)> {
    let mask = threshold(frame, min);
    connected_components(&mask).first().map(|c| c.centroid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Frame;

    fn frame_with_square(w: usize, h: usize, x0: usize, y0: usize, side: usize) -> Frame {
        let mut data = vec![0u8; w * h];
        for y in y0..y0 + side {
            for x in x0..x0 + side {
                data[y * w + x] = 255;
            }
        }
        Frame::new(w, h, data)
    }

    #[test]
    fn threshold_selects_bright_pixels() {
        let f = frame_with_square(8, 8, 2, 2, 3);
        let m = threshold(&f, 128);
        assert_eq!(m.area(), 9);
    }

    #[test]
    fn single_component_centroid_is_square_center() {
        let f = frame_with_square(16, 16, 4, 6, 4);
        let comps = connected_components(&threshold(&f, 128));
        assert_eq!(comps.len(), 1);
        let c = &comps[0];
        assert_eq!(c.area, 16);
        assert!((c.centroid.0 - 5.5).abs() < 1e-4);
        assert!((c.centroid.1 - 7.5).abs() < 1e-4);
        assert_eq!(c.bbox, (4, 6, 7, 9));
    }

    #[test]
    fn two_separate_squares_give_two_components() {
        let mut data = vec![0u8; 16 * 16];
        for (x0, y0) in [(1usize, 1usize), (10, 10)] {
            for y in y0..y0 + 2 {
                for x in x0..x0 + 2 {
                    data[y * 16 + x] = 200;
                }
            }
        }
        let f = Frame::new(16, 16, data);
        let comps = connected_components(&threshold(&f, 128));
        assert_eq!(comps.len(), 2);
    }

    #[test]
    fn components_sorted_by_area() {
        let mut data = vec![0u8; 16 * 16];
        for y in 0..3 {
            for x in 0..3 {
                data[y * 16 + x] = 200;
            }
        }
        data[15 * 16 + 15] = 200;
        let f = Frame::new(16, 16, data);
        let comps = connected_components(&threshold(&f, 128));
        assert_eq!(comps[0].area, 9);
        assert_eq!(comps[1].area, 1);
    }

    #[test]
    fn track_brightest_returns_none_on_dark_frame() {
        let f = Frame::new(8, 8, vec![5; 64]);
        assert_eq!(track_brightest(&f, 128), None);
    }

    #[test]
    fn diagonal_pixels_are_not_connected() {
        let mut data = vec![0u8; 4 * 4];
        data[0] = 255; // (0,0)
        data[5] = 255; // (1,1) — diagonal neighbour
        let f = Frame::new(4, 4, data);
        let comps = connected_components(&threshold(&f, 128));
        assert_eq!(comps.len(), 2, "4-connectivity must split diagonals");
    }
}
