//! Structural Similarity Index (Wang et al. 2004), used by the paper to
//! "find the exact frame (and the timestamp) of when the failure happened"
//! on thresholded images of the block (§IV-B).

use crate::frame::Frame;

const C1: f64 = (0.01 * 255.0) * (0.01 * 255.0);
const C2: f64 = (0.03 * 255.0) * (0.03 * 255.0);

/// Global SSIM between two equal-size frames, in `[-1, 1]` (1 = identical).
///
/// # Panics
///
/// Panics if the frames differ in size.
pub fn ssim(a: &Frame, b: &Frame) -> f64 {
    assert_eq!((a.width(), a.height()), (b.width(), b.height()), "ssim: frame size mismatch");
    ssim_slices(a.bytes(), b.bytes())
}

/// Windowed SSIM: mean SSIM over non-overlapping `win x win` tiles (a closer
/// match to the reference implementation; more sensitive to local changes).
///
/// # Panics
///
/// Panics if the frames differ in size or `win == 0`.
pub fn ssim_windowed(a: &Frame, b: &Frame, win: usize) -> f64 {
    assert_eq!((a.width(), a.height()), (b.width(), b.height()), "ssim: frame size mismatch");
    assert!(win > 0, "window must be positive");
    let (w, h) = (a.width(), a.height());
    let mut total = 0.0f64;
    let mut tiles = 0usize;
    let mut buf_a = Vec::with_capacity(win * win);
    let mut buf_b = Vec::with_capacity(win * win);
    let mut y = 0;
    while y < h {
        let mut x = 0;
        let y1 = (y + win).min(h);
        while x < w {
            let x1 = (x + win).min(w);
            buf_a.clear();
            buf_b.clear();
            for yy in y..y1 {
                for xx in x..x1 {
                    buf_a.push(a.get(xx, yy));
                    buf_b.push(b.get(xx, yy));
                }
            }
            total += ssim_slices(&buf_a, &buf_b);
            tiles += 1;
            x += win;
        }
        y += win;
    }
    total / tiles as f64
}

fn ssim_slices(a: &[u8], b: &[u8]) -> f64 {
    let n = a.len() as f64;
    let mean = |v: &[u8]| v.iter().map(|&x| x as f64).sum::<f64>() / n;
    let mu_a = mean(a);
    let mu_b = mean(b);
    let mut var_a = 0.0;
    let mut var_b = 0.0;
    let mut cov = 0.0;
    for (&xa, &xb) in a.iter().zip(b.iter()) {
        let da = xa as f64 - mu_a;
        let db = xb as f64 - mu_b;
        var_a += da * da;
        var_b += db * db;
        cov += da * db;
    }
    var_a /= n;
    var_b /= n;
    cov /= n;
    ((2.0 * mu_a * mu_b + C1) * (2.0 * cov + C2))
        / ((mu_a * mu_a + mu_b * mu_b + C1) * (var_a + var_b + C2))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(v: u8) -> Frame {
        Frame::new(16, 16, vec![v; 256])
    }

    fn square_at(x0: usize, y0: usize) -> Frame {
        let mut data = vec![10u8; 256];
        for y in y0..y0 + 4 {
            for x in x0..x0 + 4 {
                data[y * 16 + x] = 240;
            }
        }
        Frame::new(16, 16, data)
    }

    #[test]
    fn identical_frames_have_ssim_one() {
        let f = square_at(3, 3);
        assert!((ssim(&f, &f) - 1.0).abs() < 1e-9);
        assert!((ssim_windowed(&f, &f, 8) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn moved_object_lowers_ssim() {
        let a = square_at(2, 2);
        let b = square_at(10, 10);
        let s = ssim(&a, &b);
        assert!(s < 0.9, "ssim {s} should drop when the object moves");
        assert!(ssim_windowed(&a, &b, 8) < ssim_windowed(&a, &a, 8));
    }

    #[test]
    fn windowed_detects_small_shift() {
        let a = square_at(2, 2);
        let b = square_at(3, 2); // small shift
        assert!(ssim_windowed(&a, &b, 4) < 1.0 - 1e-6);
    }

    #[test]
    fn flat_frames_compare_by_luminance() {
        let s_same = ssim(&flat(100), &flat(100));
        let s_diff = ssim(&flat(20), &flat(220));
        assert!((s_same - 1.0).abs() < 1e-9);
        assert!(s_diff < 0.5);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn rejects_different_sizes() {
        let a = Frame::new(4, 4, vec![0; 16]);
        let b = Frame::new(8, 8, vec![0; 64]);
        let _ = ssim(&a, &b);
    }
}
