//! Automated, vision-based labeling of Block Transfer failures (§IV-B).
//!
//! The pipeline mirrors the paper's: render the virtual camera video at
//! 30 fps, threshold each frame to isolate the block, (1) use SSIM between
//! consecutive thresholded frames to timestamp the drop, (2) track the block
//! centroid and compare the trace against a fault-free reference with DTW to
//! detect dropoff failures ("the block should have been dropped, but it was
//! not").

use crate::cv::{threshold, track_brightest};
use crate::frame::{palette, Frame, VirtualCamera};
use eval::dtw;
use kinematics::Vec3;
use raven_sim::{layout, FailureMode, Trial};
use serde::{Deserialize, Serialize};

/// Vision-pipeline configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VisionConfig {
    /// Video rate (the paper logs at 30 fps).
    pub fps: f32,
    /// Camera model.
    pub camera: VirtualCamera,
    /// Intensity threshold isolating the block.
    pub block_threshold: u8,
    /// Consecutive-frame SSIM below this marks a sudden block motion (fall).
    pub ssim_drop_threshold: f64,
    /// Normalized DTW distance (px/step) above this marks a trace deviation.
    pub dtw_threshold: f32,
}

impl Default for VisionConfig {
    fn default() -> Self {
        Self {
            fps: 30.0,
            camera: VirtualCamera::default(),
            block_threshold: 200,
            ssim_drop_threshold: 0.90,
            dtw_threshold: 2.5,
        }
    }
}

/// Result of the vision pipeline on one trial.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VisionVerdict {
    /// Video frame where the drop (sudden fall) was detected, if any.
    pub drop_frame: Option<usize>,
    /// The drop frame mapped back to simulator ticks.
    pub drop_tick: Option<usize>,
    /// Whether the final block position is near the receptacle (pixel x).
    pub landed_near_receptacle: Option<bool>,
    /// Normalized DTW distance of the centroid trace vs. the reference.
    pub dtw_distance: f32,
    /// Failure classification from vision alone.
    pub failure: Option<FailureMode>,
}

/// Renders the trial's virtual-camera video, decimating simulator ticks to
/// the configured fps. Returns the frames and the tick of each frame.
pub fn render_video(trial: &Trial, cfg: &VisionConfig) -> (Vec<Frame>, Vec<usize>) {
    let hz = trial.demo.hz;
    let step = ((hz / cfg.fps).round() as usize).max(1);
    let mut frames = Vec::new();
    let mut ticks = Vec::new();
    for (tick, block) in trial.block_trace.iter().enumerate().step_by(step) {
        let arms: Vec<Vec3> =
            trial.demo.frames[tick].manipulators.iter().map(|m| m.position).collect();
        frames.push(cfg.camera.render(*block, layout::RECEPTACLE, &arms));
        ticks.push(tick);
    }
    (frames, ticks)
}

/// Thresholded-block frame used by the SSIM detector.
fn block_mask_frame(frame: &Frame, min: u8) -> Frame {
    let mask = threshold(frame, min);
    let data = mask.pixels.iter().map(|&p| if p { 255u8 } else { 0 }).collect();
    Frame::new(mask.width, mask.height, data)
}

/// Detects the video frame of a block *fall* via consecutive-frame SSIM on
/// thresholded block images, requiring (a) the block centroid to move
/// downward (image y increasing) and (b) the block to settle at table level
/// within the next few frames. The downward check rejects the grasp "snap"
/// at pick-up; the settle check rejects transient command jumps (e.g. a
/// Cartesian fault ending) where the block never reaches the table.
pub fn detect_drop_frame(frames: &[Frame], cfg: &VisionConfig) -> Option<usize> {
    let masks: Vec<Frame> =
        frames.iter().map(|f| block_mask_frame(f, cfg.block_threshold)).collect();
    let centroids: Vec<Option<(f32, f32)>> =
        frames.iter().map(|f| track_brightest(f, cfg.block_threshold)).collect();
    // Image row of a block resting on the table.
    let table_row = cfg
        .camera
        .project(Vec3::new(0.0, 0.0, 2.0))
        .map(|(_, y)| y as f32)
        .unwrap_or(cfg.camera.height as f32 - 1.0);

    for t in 1..masks.len() {
        let s = crate::ssim::ssim(&masks[t - 1], &masks[t]);
        let falling = match (centroids[t - 1], centroids[t]) {
            (Some((_, y0)), Some((_, y1))) => y1 - y0 >= 1.5,
            _ => false,
        };
        if s < cfg.ssim_drop_threshold && falling {
            // Settle check: within the next 5 frames the block must sit at
            // table level (a real fall completes in 1-2 frames at 30 fps).
            let settled = (t..(t + 5).min(centroids.len()))
                .any(|u| matches!(centroids[u], Some((_, y)) if (y - table_row).abs() <= 3.0));
            if settled {
                return Some(t);
            }
        }
    }
    None
}

/// The block-centroid trace in pixel coordinates (one `[x, y]` per frame;
/// frames where the block is not visible repeat the previous position).
pub fn centroid_trace(frames: &[Frame], cfg: &VisionConfig) -> Vec<Vec<f32>> {
    let mut out: Vec<Vec<f32>> = Vec::with_capacity(frames.len());
    for f in frames {
        match track_brightest(f, cfg.block_threshold) {
            Some((x, y)) => out.push(vec![x, y]),
            None => {
                let last = out.last().cloned().unwrap_or_else(|| vec![0.0, 0.0]);
                out.push(last);
            }
        }
    }
    out
}

/// Runs the full §IV-B vision pipeline against a fault-free reference trace.
pub fn label_trial(
    trial: &Trial,
    reference_trace: &[Vec<f32>],
    cfg: &VisionConfig,
) -> VisionVerdict {
    let (frames, ticks) = render_video(trial, cfg);
    let trace = centroid_trace(&frames, cfg);

    let drop_frame = detect_drop_frame(&frames, cfg);
    let drop_tick = drop_frame.map(|f| ticks[f.min(ticks.len() - 1)]);

    // Landing location check: final centroid x vs. receptacle x.
    let landed_near_receptacle = trace.last().map(|p| {
        let rx = cfg
            .camera
            .project(Vec3::new(layout::RECEPTACLE.x, 0.0, 1.0))
            .map(|(x, _)| x as f32)
            .unwrap_or(0.0);
        (p[0] - rx).abs() <= 6.0
    });

    let dtw_distance = dtw(&trace, reference_trace, None)
        .map(|r| r.normalized_distance())
        .unwrap_or(f32::INFINITY);

    // Vision-only classification. Fault-free trials drop within the
    // expected on-time window; earlier falls are premature drops, later (or
    // absent) drops are dropoff failures — DTW warping can absorb pure
    // timing deviations, so lateness is checked explicitly.
    let n = frames.len().max(1);
    let window = ((0.80 * n as f32) as usize, (0.89 * n as f32) as usize);
    let failure = match drop_frame {
        Some(f) if f < window.0 => Some(FailureMode::BlockDrop),
        Some(f) if f > window.1 => Some(FailureMode::DropoffFailure),
        Some(_) if landed_near_receptacle == Some(false) => Some(FailureMode::BlockDrop),
        Some(_) => {
            if dtw_distance > cfg.dtw_threshold {
                Some(FailureMode::DropoffFailure)
            } else {
                None
            }
        }
        None => Some(FailureMode::DropoffFailure),
    };

    VisionVerdict { drop_frame, drop_tick, landed_near_receptacle, dtw_distance, failure }
}

/// Convenience: the reference centroid trace of a fault-free trial.
pub fn reference_trace(trial: &Trial, cfg: &VisionConfig) -> Vec<Vec<f32>> {
    let (frames, _) = render_video(trial, cfg);
    centroid_trace(&frames, cfg)
}

/// Checks that the brightest-object detector actually sees the block where
/// the simulator says it is (projection consistency; used in tests and the
/// simulator's self-checks).
pub fn tracking_error_px(trial: &Trial, cfg: &VisionConfig) -> f32 {
    let (frames, ticks) = render_video(trial, cfg);
    let mut worst = 0.0f32;
    for (f, &tick) in frames.iter().zip(ticks.iter()) {
        if let (Some((cx, cy)), Some((px, py))) = (
            track_brightest(f, cfg.block_threshold),
            cfg.camera.project(trial.block_trace[tick] + Vec3::new(0.0, 0.0, 2.0)),
        ) {
            let dx = cx - px as f32;
            let dy = cy - py as f32;
            worst = worst.max((dx * dx + dy * dy).sqrt());
        }
    }
    worst
}

/// Exposes the palette for downstream consumers rendering legends.
pub fn block_intensity() -> u8 {
    palette::BLOCK
}

#[cfg(test)]
mod tests {
    use super::*;
    use raven_sim::{run_block_transfer, CommandFilter, Commands, NoFaults, SimConfig};

    fn sim_cfg(seed: u64) -> SimConfig {
        SimConfig { hz: 100.0, duration_s: 6.0, seed, tremor: 0.3 }
    }

    struct ForceOpen;
    impl CommandFilter for ForceOpen {
        fn apply(&mut self, _t: usize, p: f32, c: &mut Commands) {
            if (0.4..0.6).contains(&p) {
                c.arms[1].grasper = 1.3;
            }
        }
    }

    struct PinClosed;
    impl CommandFilter for PinClosed {
        fn apply(&mut self, _t: usize, p: f32, c: &mut Commands) {
            if p >= 0.6 {
                c.arms[1].grasper = 0.4;
            }
        }
    }

    #[test]
    fn fault_free_trial_is_labeled_safe() {
        let cfg = VisionConfig::default();
        let reference = reference_trace(&run_block_transfer(&sim_cfg(11), &mut NoFaults), &cfg);
        let trial = run_block_transfer(&sim_cfg(12), &mut NoFaults);
        let verdict = label_trial(&trial, &reference, &cfg);
        assert_eq!(verdict.failure, None, "verdict {verdict:?}");
        assert!(verdict.drop_frame.is_some(), "normal drop should be timestamped");
    }

    #[test]
    fn premature_drop_is_labeled_block_drop_near_the_true_tick() {
        let cfg = VisionConfig::default();
        let reference = reference_trace(&run_block_transfer(&sim_cfg(13), &mut NoFaults), &cfg);
        let trial = run_block_transfer(&sim_cfg(14), &mut ForceOpen);
        assert_eq!(trial.outcome.failure, Some(FailureMode::BlockDrop));
        let verdict = label_trial(&trial, &reference, &cfg);
        assert_eq!(verdict.failure, Some(FailureMode::BlockDrop), "verdict {verdict:?}");
        // Vision timestamp within 300 ms of the simulator ground truth.
        let truth = trial.outcome.error_tick.unwrap() as f32 / trial.demo.hz;
        let seen = verdict.drop_tick.unwrap() as f32 / trial.demo.hz;
        assert!((seen - truth).abs() < 0.3, "vision {seen}s vs truth {truth}s");
    }

    #[test]
    fn dropoff_failure_is_detected_via_dtw() {
        let cfg = VisionConfig::default();
        let reference = reference_trace(&run_block_transfer(&sim_cfg(15), &mut NoFaults), &cfg);
        let trial = run_block_transfer(&sim_cfg(16), &mut PinClosed);
        assert_eq!(trial.outcome.failure, Some(FailureMode::DropoffFailure));
        let verdict = label_trial(&trial, &reference, &cfg);
        assert_eq!(verdict.failure, Some(FailureMode::DropoffFailure), "verdict {verdict:?}");
    }

    #[test]
    fn dtw_distance_orders_faulty_above_fault_free() {
        let cfg = VisionConfig::default();
        let reference = reference_trace(&run_block_transfer(&sim_cfg(17), &mut NoFaults), &cfg);
        let clean = label_trial(&run_block_transfer(&sim_cfg(18), &mut NoFaults), &reference, &cfg);
        let faulty =
            label_trial(&run_block_transfer(&sim_cfg(19), &mut PinClosed), &reference, &cfg);
        assert!(
            faulty.dtw_distance > clean.dtw_distance,
            "faulty {} <= clean {}",
            faulty.dtw_distance,
            clean.dtw_distance
        );
    }

    #[test]
    fn tracker_follows_the_simulated_block() {
        let cfg = VisionConfig::default();
        let trial = run_block_transfer(&sim_cfg(20), &mut NoFaults);
        let err = tracking_error_px(&trial, &cfg);
        assert!(err < 3.0, "tracking error {err} px");
    }
}
