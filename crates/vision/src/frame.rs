//! Grayscale frames and the virtual camera.
//!
//! Replaces the paper's Gazebo virtual camera (§IV-B: video logged at 30 fps
//! alongside 1 kHz kinematics). The camera renders a side view (world x–z
//! plane) so block falls are visible, which is what the SSIM-based
//! block-drop detector needs.

use bytes::Bytes;
use kinematics::Vec3;
use serde::{Deserialize, Serialize};

/// An 8-bit grayscale frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    width: usize,
    height: usize,
    data: Bytes,
}

impl Frame {
    /// Creates a frame from raw bytes.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != width * height`.
    pub fn new(width: usize, height: usize, data: Vec<u8>) -> Self {
        assert_eq!(data.len(), width * height, "frame size mismatch");
        Self { width, height, data: Bytes::from(data) }
    }

    /// Frame width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Frame height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Pixel intensity at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, x: usize, y: usize) -> u8 {
        assert!(x < self.width && y < self.height, "pixel ({x},{y}) out of bounds");
        self.data[y * self.width + x]
    }

    /// Raw bytes, row-major.
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }
}

/// Render intensities.
pub mod palette {
    /// Background.
    pub const BACKGROUND: u8 = 10;
    /// Table surface line.
    pub const TABLE: u8 = 40;
    /// Receptacle walls.
    pub const RECEPTACLE: u8 = 90;
    /// Manipulator end-effectors.
    pub const ARM: u8 = 60;
    /// The block (brightest object; thresholding isolates it).
    pub const BLOCK: u8 = 230;
}

/// Orthographic side-view camera over the world x–z plane.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VirtualCamera {
    /// Frame width (px).
    pub width: usize,
    /// Frame height (px).
    pub height: usize,
    /// World x range mapped onto the frame width.
    pub x_range: (f32, f32),
    /// World z range mapped onto the frame height (bottom → top).
    pub z_range: (f32, f32),
}

impl Default for VirtualCamera {
    fn default() -> Self {
        Self { width: 96, height: 64, x_range: (-110.0, 110.0), z_range: (-6.0, 70.0) }
    }
}

impl VirtualCamera {
    /// Projects a world position to pixel coordinates (`None` if outside the
    /// frustum).
    pub fn project(&self, p: Vec3) -> Option<(usize, usize)> {
        let u = (p.x - self.x_range.0) / (self.x_range.1 - self.x_range.0);
        let v = (p.z - self.z_range.0) / (self.z_range.1 - self.z_range.0);
        if !(0.0..1.0).contains(&u) || !(0.0..1.0).contains(&v) {
            return None;
        }
        let x = (u * self.width as f32) as usize;
        // Image y grows downward.
        let y = ((1.0 - v) * self.height as f32) as usize;
        Some((x.min(self.width - 1), y.min(self.height - 1)))
    }

    /// Renders a scene: block, receptacle, and end-effector positions.
    pub fn render(&self, block: Vec3, receptacle: Vec3, arms: &[Vec3]) -> Frame {
        let mut data = vec![palette::BACKGROUND; self.width * self.height];

        // Table surface at z = 0.
        if let Some((_, ty)) = self.project(Vec3::new(0.0, 0.0, 0.0)) {
            for x in 0..self.width {
                data[ty * self.width + x] = palette::TABLE;
            }
        }

        // Receptacle: two short walls around its x position.
        for dx in [-8.0f32, 8.0] {
            for dz in 0..6 {
                let p = Vec3::new(receptacle.x + dx, 0.0, dz as f32);
                if let Some((x, y)) = self.project(p) {
                    data[y * self.width + x] = palette::RECEPTACLE;
                }
            }
        }

        // Arms: 2x2 dots.
        for &a in arms {
            if let Some((x, y)) = self.project(a) {
                self.stamp(&mut data, x, y, 1, palette::ARM);
            }
        }

        // Block: 5x5 bright square (drawn last so it occludes).
        if let Some((x, y)) = self.project(block + Vec3::new(0.0, 0.0, 2.0)) {
            self.stamp(&mut data, x, y, 2, palette::BLOCK);
        }

        Frame::new(self.width, self.height, data)
    }

    fn stamp(&self, data: &mut [u8], cx: usize, cy: usize, r: usize, value: u8) {
        let x0 = cx.saturating_sub(r);
        let y0 = cy.saturating_sub(r);
        for y in y0..=(cy + r).min(self.height - 1) {
            for x in x0..=(cx + r).min(self.width - 1) {
                data[y * self.width + x] = value;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projection_maps_corners() {
        let cam = VirtualCamera::default();
        let (x, y) = cam.project(Vec3::new(-109.0, 0.0, -5.0)).unwrap();
        assert!(x < 3);
        assert!(y > cam.height - 4);
        assert!(cam.project(Vec3::new(500.0, 0.0, 0.0)).is_none());
    }

    #[test]
    fn render_contains_bright_block() {
        let cam = VirtualCamera::default();
        let f = cam.render(Vec3::new(0.0, 0.0, 10.0), Vec3::new(-50.0, 30.0, 0.0), &[]);
        let max = f.bytes().iter().copied().max().unwrap();
        assert_eq!(max, palette::BLOCK);
    }

    #[test]
    fn block_occludes_and_moves() {
        let cam = VirtualCamera::default();
        let a = cam.render(Vec3::new(-20.0, 0.0, 10.0), Vec3::new(-50.0, 0.0, 0.0), &[]);
        let b = cam.render(Vec3::new(20.0, 0.0, 10.0), Vec3::new(-50.0, 0.0, 0.0), &[]);
        assert_ne!(a, b);
    }

    #[test]
    fn frame_accessors() {
        let f = Frame::new(4, 2, vec![0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(f.width(), 4);
        assert_eq!(f.height(), 2);
        assert_eq!(f.get(3, 1), 7);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn frame_rejects_bad_size() {
        let _ = Frame::new(3, 3, vec![0; 8]);
    }
}
