//! # `vision` — virtual camera and classic-CV failure labeling
//!
//! Pure-Rust replacement for the Gazebo virtual camera + OpenCV pipeline of
//! §IV-B: a side-view orthographic camera ([`frame::VirtualCamera`]),
//! intensity thresholding, connected-component contours and centroid
//! tracking ([`cv`]), SSIM ([`ssim`]), and the automated block-drop /
//! dropoff-failure labeling pipeline ([`labeling`]) that provides the
//! orthogonal ground truth for the fault-injection campaigns.

#![warn(missing_docs)]

pub mod cv;
pub mod frame;
pub mod labeling;
pub mod ssim;

pub use cv::{connected_components, threshold, track_brightest, Component, Mask};
pub use frame::{Frame, VirtualCamera};
pub use labeling::{
    centroid_trace, detect_drop_frame, label_trial, reference_trace, render_video, VisionConfig,
    VisionVerdict,
};
pub use ssim::{ssim, ssim_windowed};
