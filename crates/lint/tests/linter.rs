//! Fixture self-tests and the clean-tree gate.
//!
//! The fixtures under `tests/fixtures/` are deliberately violating sources
//! (excluded from the real scan by `lint.toml`); each test pins the exact
//! diagnostics the linter must produce so a rule regression — missed
//! violation or new false positive — fails here, inside tier-1 `cargo test`.
//! Single-file fixtures go through [`check_file`] (lexical rules only);
//! multi-file and transitive fixtures go through [`lint::analyze`], which
//! also builds the call graph and runs the reachability passes. The last
//! tests run the linter on the real workspace: the tree must be clean, the
//! committed `UNSAFE_INVENTORY.md` must match what the scan produces today,
//! and the full call-graph pass must stay under the CI latency budget.

use std::fs;
use std::path::{Path, PathBuf};

use lint::config::Config;
use lint::rules::{check_file, Diagnostic, FileFindings, FileScope};
use lint::scan::SourceFile;
use lint::Report;

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().expect("workspace root")
}

fn fixture_source(name: &str, rel: &str) -> SourceFile {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    let raw = fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    SourceFile::new(rel.to_string(), raw)
}

/// Lints one fixture lexically under the given scope flags, labelling it
/// `rel` (the path it would have if it sat inside the scoped tree).
fn lint_fixture(name: &str, rel: &str, fma: bool, panic: bool) -> FileFindings {
    check_file(&fixture_source(name, rel), FileScope { fma, panic, determinism: false })
}

/// Runs the full pipeline (lexical + call-graph passes) over a set of
/// fixtures posing as a little workspace (no crate-visibility gating).
fn analyze_fixtures(files: &[(&str, &str)], cfg: &Config) -> Report {
    lint::analyze(
        files.iter().map(|(name, rel)| fixture_source(name, rel)).collect(),
        cfg,
        &lint::deps::CrateMap::permissive(),
    )
}

fn lines_and_rules(diags: &[Diagnostic]) -> Vec<(usize, &'static str)> {
    diags.iter().map(|d| (d.line, d.rule)).collect()
}

#[test]
fn fma_fixture_flags_mul_add_and_intrinsic_with_no_escape_hatch() {
    let f = lint_fixture("fma_in_kernels.rs", "crates/nn/src/kernels.rs", true, false);
    assert_eq!(lines_and_rules(&f.diagnostics), [(7, "fma"), (19, "fma")], "{:#?}", f.diagnostics);
    assert!(f.diagnostics[0].message.contains("`mul_add`"), "{}", f.diagnostics[0].message);
    assert!(f.diagnostics[1].message.contains("`fmadd`"), "{}", f.diagnostics[1].message);
    assert!(f.diagnostics[1].message.contains("no allow exists"), "{}", f.diagnostics[1].message);
    // The documented unsafe fn and SAFETY'd block still inventory cleanly.
    assert_eq!(f.unsafe_sites.len(), 2, "{:#?}", f.unsafe_sites);
}

#[test]
fn bare_unsafe_fixture_flags_block_and_fn_sites() {
    let f = lint_fixture("bare_unsafe.rs", "crates/nn/src/simd.rs", false, false);
    assert_eq!(
        lines_and_rules(&f.diagnostics),
        [(5, "unsafe"), (8, "unsafe")],
        "{:#?}",
        f.diagnostics
    );
    assert!(f.diagnostics[0].message.contains("unsafe block"), "{}", f.diagnostics[0].message);
    assert!(f.diagnostics[1].message.contains("unsafe fn"), "{}", f.diagnostics[1].message);
    assert!(
        f.diagnostics[1].message.contains("# Safety"),
        "fn sites must mention the doc-section alternative: {}",
        f.diagnostics[1].message
    );
    assert!(f.unsafe_sites.is_empty(), "unjustified sites must not be inventoried");
}

#[test]
fn alloc_fixture_flags_every_allocation_in_the_tagged_body_only() {
    let f = lint_fixture("alloc_in_hot_path.rs", "crates/core/src/hot.rs", false, false);
    assert_eq!(
        lines_and_rules(&f.diagnostics),
        [(11, "alloc"), (12, "alloc"), (13, "alloc")],
        "{:#?}",
        f.diagnostics
    );
    for (d, pat) in f.diagnostics.iter().zip(["`.to_vec(`", "`format!`", "`.clone(`"]) {
        assert!(d.message.contains(pat), "expected {pat} in: {}", d.message);
        assert!(d.message.contains("hot-path fn `step`"), "{}", d.message);
    }
    // `Vec::new()` in the untagged `cold` fn stays legal.
}

#[test]
fn panic_fixture_flags_macro_index_and_unwrap_but_not_tests() {
    let f = lint_fixture("panic_in_decision_path.rs", "crates/reactor/src/safety.rs", false, true);
    assert_eq!(
        lines_and_rules(&f.diagnostics),
        [(6, "panic"), (8, "panic"), (12, "panic")],
        "{:#?}",
        f.diagnostics
    );
    assert!(f.diagnostics[0].message.contains("`panic!`"), "{}", f.diagnostics[0].message);
    assert!(f.diagnostics[1].message.contains("index"), "{}", f.diagnostics[1].message);
    assert!(f.diagnostics[2].message.contains("`unwrap()`"), "{}", f.diagnostics[2].message);
}

#[test]
fn determinism_fixture_flags_hashed_iteration_and_float_reduction() {
    let cfg =
        Config { determinism_paths: vec!["crates/nn/src/kernels.rs".into()], ..Config::default() };
    let r = analyze_fixtures(&[("hashmap_in_kernel.rs", "crates/nn/src/kernels.rs")], &cfg);
    assert_eq!(
        lines_and_rules(&r.diagnostics),
        [(4, "determinism"), (7, "determinism"), (11, "determinism")],
        "{:#?}",
        r.diagnostics
    );
    assert!(r.diagnostics[0].message.contains("`HashMap`"), "{}", r.diagnostics[0].message);
    assert!(
        r.diagnostics[2].message.contains("accumulation order"),
        "{}",
        r.diagnostics[2].message
    );
}

#[test]
fn transitive_alloc_fixture_follows_the_helper_call_with_a_chain() {
    let rel = "crates/core/src/hot.rs";
    let r = analyze_fixtures(&[("transitive_alloc_via_helper.rs", rel)], &Config::default());
    assert_eq!(
        lines_and_rules(&r.diagnostics),
        [(7, "hot-path"), (11, "alloc")],
        "{:#?}",
        r.diagnostics
    );
    // The untagged-callee diagnostic points at the call and names both ends.
    assert!(r.diagnostics[0].message.contains("`step`"), "{}", r.diagnostics[0].message);
    assert!(r.diagnostics[0].message.contains("`pack_tile`"), "{}", r.diagnostics[0].message);
    // The transitive allocation diagnostic carries the exact chain.
    assert_eq!(
        r.diagnostics[1].chain,
        [format!("step ({rel}:7)"), format!("pack_tile ({rel}:11)")],
        "{:#?}",
        r.diagnostics[1]
    );
    assert!(r.diagnostics[1].message.contains("`.to_vec(`"), "{}", r.diagnostics[1].message);
}

#[test]
fn cross_file_panic_chain_is_reported_at_the_unwrap_with_the_full_route() {
    let entry = "crates/reactor/src/plan.rs";
    let helper = "crates/shared/src/lib.rs";
    let cfg = Config { panic_paths: vec!["crates/reactor/src".into()], ..Config::default() };
    let r = analyze_fixtures(
        &[("panic_chain_entry.rs", entry), ("panic_chain_helper.rs", helper)],
        &cfg,
    );
    assert_eq!(lines_and_rules(&r.diagnostics), [(10, "panic")], "{:#?}", r.diagnostics);
    let d = &r.diagnostics[0];
    assert_eq!(d.file, helper);
    assert_eq!(
        d.chain,
        [
            format!("decide ({entry}:7)"),
            format!("classify ({helper}:6)"),
            format!("refine ({helper}:10)"),
        ],
        "{:#?}",
        d
    );
    assert!(d.message.contains("decision-path root `decide`"), "{}", d.message);
    assert_eq!(r.decision_roots, 1, "only `decide` sits in the scoped paths");
}

#[test]
fn unsafe_site_reachable_from_hot_root_is_attributed_in_the_inventory() {
    let r =
        analyze_fixtures(&[("unsafe_reachable.rs", "crates/nn/src/simd.rs")], &Config::default());
    assert!(r.diagnostics.is_empty(), "{:#?}", r.diagnostics);
    assert_eq!(r.allows.len(), 1, "{:#?}", r.allows);
    assert_eq!(r.allows[0].rule, "hot-path");
    assert_eq!(r.unsafe_sites.len(), 1, "{:#?}", r.unsafe_sites);
    assert_eq!(r.unsafe_sites[0].line, 13);
    assert_eq!(r.unsafe_sites[0].reach, "hot-path: root");
    assert!(r.inventory_markdown().contains("| hot-path: root |"), "reach column must render");
}

#[test]
fn turbofish_before_comparison_regression_keeps_the_call_edge() {
    // With the old shift-style angle matching, `::<Vec<Vec<f32>>>` would
    // run on to the `>` in `level > 3`, swallow `(n)`, and `make` would
    // vanish from the graph — no diagnostics at all.
    let rel = "crates/core/src/hot.rs";
    let r = analyze_fixtures(&[("turbofish_comparison.rs", rel)], &Config::default());
    assert_eq!(
        lines_and_rules(&r.diagnostics),
        [(9, "hot-path"), (15, "alloc")],
        "{:#?}",
        r.diagnostics
    );
    assert_eq!(
        r.diagnostics[1].chain,
        [format!("step ({rel}:9)"), format!("make ({rel}:15)")],
        "{:#?}",
        r.diagnostics[1]
    );
}

#[test]
fn clean_fixture_passes_every_rule_family() {
    let f = lint_fixture("clean.rs", "crates/nn/src/kernels.rs", true, true);
    assert!(f.diagnostics.is_empty(), "{:#?}", f.diagnostics);
    assert_eq!(f.unsafe_sites.len(), 2, "{:#?}", f.unsafe_sites);
    assert_eq!(f.unsafe_sites[0].justification, "# Safety (doc section)");
    assert_eq!(f.unsafe_sites[1].justification, "the caller upholds the doc contract above.");
}

#[test]
fn real_workspace_tree_is_clean() {
    let root = workspace_root();
    let cfg = lint::load_config(&root, None).expect("lint.toml parses");
    let report = lint::check_tree(&root, &cfg).expect("tree scan");
    assert!(report.files_scanned > 50, "suspiciously small scan: {}", report.files_scanned);
    assert!(report.defs > 300, "suspiciously small item parse: {} defs", report.defs);
    assert!(report.edges > 300, "suspiciously sparse graph: {} edges", report.edges);
    assert!(report.hot_roots > 20, "hot-path roots went missing: {}", report.hot_roots);
    assert!(report.decision_roots > 50, "decision roots went missing: {}", report.decision_roots);
    let rendered: Vec<String> = report
        .diagnostics
        .iter()
        .map(|d| format!("{}:{}: [{}] {}", d.file, d.line, d.rule, d.message))
        .collect();
    assert!(report.is_clean(), "workspace has lint violations:\n{}", rendered.join("\n"));
    // Latency budget: the whole analysis (including the call-graph build
    // and both reachability closures) must fit a 1-core CI runner. The
    // debug-profile bound here is deliberately the same 5s the release
    // binary is held to.
    assert!(
        report.total_ms < 5_000,
        "full workspace pass took {} ms (graph {} ms) — over the 5s CI budget",
        report.total_ms,
        report.graph_ms
    );
}

#[test]
fn committed_unsafe_inventory_matches_the_tree() {
    let root = workspace_root();
    let cfg = lint::load_config(&root, None).expect("lint.toml parses");
    let report = lint::check_tree(&root, &cfg).expect("tree scan");
    let committed = fs::read_to_string(root.join(&cfg.inventory))
        .expect("UNSAFE_INVENTORY.md is committed; run `cargo run -p lint -- --write-inventory`");
    assert_eq!(
        committed,
        report.inventory_markdown(),
        "UNSAFE_INVENTORY.md is stale — run `cargo run -p lint -- --write-inventory` and commit"
    );
}
