//! Fixture self-tests and the clean-tree gate.
//!
//! The fixtures under `tests/fixtures/` are deliberately violating sources
//! (excluded from the real scan by `lint.toml`); each test pins the exact
//! diagnostics the linter must produce so a rule regression — missed
//! violation or new false positive — fails here, inside tier-1 `cargo test`.
//! The last two tests run the linter on the real workspace: the tree must be
//! clean and the committed `UNSAFE_INVENTORY.md` must match what the scan
//! produces today.

use std::fs;
use std::path::{Path, PathBuf};

use lint::rules::{check_file, FileFindings};
use lint::scan::SourceFile;

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().expect("workspace root")
}

/// Lints one fixture under the given scope flags, labelling it `rel` (the
/// path it would have if it sat inside the scoped tree).
fn lint_fixture(name: &str, rel: &str, fma: bool, panic: bool) -> FileFindings {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    let raw = fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    check_file(&SourceFile::new(rel.to_string(), raw), fma, panic)
}

fn lines_and_rules(f: &FileFindings) -> Vec<(usize, &'static str)> {
    f.diagnostics.iter().map(|d| (d.line, d.rule)).collect()
}

#[test]
fn fma_fixture_flags_mul_add_and_intrinsic_with_no_escape_hatch() {
    let f = lint_fixture("fma_in_kernels.rs", "crates/nn/src/kernels.rs", true, false);
    assert_eq!(lines_and_rules(&f), [(7, "fma"), (19, "fma")], "{:#?}", f.diagnostics);
    assert!(f.diagnostics[0].message.contains("`mul_add`"), "{}", f.diagnostics[0].message);
    assert!(f.diagnostics[1].message.contains("`fmadd`"), "{}", f.diagnostics[1].message);
    assert!(f.diagnostics[1].message.contains("no allow exists"), "{}", f.diagnostics[1].message);
    // The documented unsafe fn and SAFETY'd block still inventory cleanly.
    assert_eq!(f.unsafe_sites.len(), 2, "{:#?}", f.unsafe_sites);
}

#[test]
fn bare_unsafe_fixture_flags_block_and_fn_sites() {
    let f = lint_fixture("bare_unsafe.rs", "crates/nn/src/simd.rs", false, false);
    assert_eq!(lines_and_rules(&f), [(5, "unsafe"), (8, "unsafe")], "{:#?}", f.diagnostics);
    assert!(f.diagnostics[0].message.contains("unsafe block"), "{}", f.diagnostics[0].message);
    assert!(f.diagnostics[1].message.contains("unsafe fn"), "{}", f.diagnostics[1].message);
    assert!(
        f.diagnostics[1].message.contains("# Safety"),
        "fn sites must mention the doc-section alternative: {}",
        f.diagnostics[1].message
    );
    assert!(f.unsafe_sites.is_empty(), "unjustified sites must not be inventoried");
}

#[test]
fn alloc_fixture_flags_every_allocation_in_the_tagged_body_only() {
    let f = lint_fixture("alloc_in_hot_path.rs", "crates/core/src/hot.rs", false, false);
    assert_eq!(
        lines_and_rules(&f),
        [(11, "alloc"), (12, "alloc"), (13, "alloc")],
        "{:#?}",
        f.diagnostics
    );
    for (d, pat) in f.diagnostics.iter().zip(["`.to_vec(`", "`format!`", "`.clone(`"]) {
        assert!(d.message.contains(pat), "expected {pat} in: {}", d.message);
        assert!(d.message.contains("hot-path fn `step`"), "{}", d.message);
    }
    // `Vec::new()` in the untagged `cold` fn stays legal.
}

#[test]
fn panic_fixture_flags_macro_index_and_unwrap_but_not_tests() {
    let f = lint_fixture("panic_in_decision_path.rs", "crates/reactor/src/safety.rs", false, true);
    assert_eq!(
        lines_and_rules(&f),
        [(6, "panic"), (8, "panic"), (12, "panic")],
        "{:#?}",
        f.diagnostics
    );
    assert!(f.diagnostics[0].message.contains("`panic!`"), "{}", f.diagnostics[0].message);
    assert!(f.diagnostics[1].message.contains("index"), "{}", f.diagnostics[1].message);
    assert!(f.diagnostics[2].message.contains("`unwrap()`"), "{}", f.diagnostics[2].message);
}

#[test]
fn clean_fixture_passes_every_rule_family() {
    let f = lint_fixture("clean.rs", "crates/nn/src/kernels.rs", true, true);
    assert!(f.diagnostics.is_empty(), "{:#?}", f.diagnostics);
    assert_eq!(f.unsafe_sites.len(), 2, "{:#?}", f.unsafe_sites);
    assert_eq!(f.unsafe_sites[0].justification, "# Safety (doc section)");
    assert_eq!(f.unsafe_sites[1].justification, "the caller upholds the doc contract above.");
}

#[test]
fn real_workspace_tree_is_clean() {
    let root = workspace_root();
    let cfg = lint::load_config(&root, None).expect("lint.toml parses");
    let report = lint::check_tree(&root, &cfg).expect("tree scan");
    assert!(report.files_scanned > 50, "suspiciously small scan: {}", report.files_scanned);
    let rendered: Vec<String> = report
        .diagnostics
        .iter()
        .map(|d| format!("{}:{}: [{}] {}", d.file, d.line, d.rule, d.message))
        .collect();
    assert!(report.is_clean(), "workspace has lint violations:\n{}", rendered.join("\n"));
}

#[test]
fn committed_unsafe_inventory_matches_the_tree() {
    let root = workspace_root();
    let cfg = lint::load_config(&root, None).expect("lint.toml parses");
    let report = lint::check_tree(&root, &cfg).expect("tree scan");
    let committed = fs::read_to_string(root.join(&cfg.inventory))
        .expect("UNSAFE_INVENTORY.md is committed; run `cargo run -p lint -- --write-inventory`");
    assert_eq!(
        committed,
        report.inventory_markdown(),
        "UNSAFE_INVENTORY.md is stale — run `cargo run -p lint -- --write-inventory` and commit"
    );
}
