//! Fixture (file 2 of 2): helper crate outside the panic-scoped paths.
//! Its `unwrap()` is legal lexically but reachable from `decide`, so the
//! transitive pass must flag it with the full chain.

pub fn classify(x: u8) -> u8 {
    refine(x)
}

fn refine(x: u8) -> u8 {
    Some(x).unwrap()
}
