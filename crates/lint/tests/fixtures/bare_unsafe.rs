// Lint fixture: unsafe code without a justifying comment. Never compiled —
// this directory is excluded in lint.toml and cargo ignores test subdirs.

pub fn read_first(p: *const u8) -> u8 {
    unsafe { *p }
}

pub unsafe fn no_doc_contract(p: *const u8) -> u8 {
    *p
}
