//! Fixture: nondeterminism in bit-exactness-scoped code — hashed
//! iteration order and a reassociating float reduction.

use std::collections::HashMap;

pub fn tally(xs: &[f32]) -> f32 {
    let mut m = HashMap::new();
    for (i, x) in xs.iter().enumerate() {
        m.insert(i, *x);
    }
    m.values().copied().sum::<f32>()
}
