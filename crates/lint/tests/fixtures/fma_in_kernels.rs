// Lint fixture: FMA patterns inside the kernels scope. Never compiled —
// this directory is excluded in lint.toml and cargo ignores test subdirs.

pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for (x, y) in a.iter().zip(b) {
        acc = x.mul_add(*y, acc);
    }
    acc
}

/// Fused tail of an AVX2 dot product.
///
/// # Safety
///
/// Both pointers must be valid for 8 aligned reads.
pub unsafe fn dot_avx2(a: *const f32, b: *const f32, acc: __m256) -> __m256 {
    // SAFETY: fixture only; the imagined caller upholds the doc contract.
    unsafe { _mm256_fmadd_ps(_mm256_loadu_ps(a), _mm256_loadu_ps(b), acc) }
}
