// Lint fixture: fully conforming file — every rule family finds nothing.

// lint: hot-path
pub fn accumulate(acc: &mut f32, xs: &[f32]) {
    for x in xs {
        *acc += *x;
    }
}

/// Reads one byte.
///
/// # Safety
///
/// `p` must be valid for reads.
pub unsafe fn read(p: *const u8) -> u8 {
    // SAFETY: the caller upholds the doc contract above.
    unsafe { *p }
}
