//! Fixture (file 1 of 2): a decision-path entry point calling into a
//! helper "crate" that panics two hops down. Analyzed together with
//! `panic_chain_helper.rs`; the lexical rule sees nothing here, the
//! transitive pass must follow the cross-file chain.

pub fn decide(x: u8) -> u8 {
    shared::classify(x)
}
