// Lint fixture: allocation inside a hot-path tagged fn. Never compiled —
// this directory is excluded in lint.toml and cargo ignores test subdirs.

pub struct Buf {
    data: Vec<u8>,
}

impl Buf {
    // lint: hot-path
    pub fn step(&mut self, src: &[u8]) -> Vec<u8> {
        let copy = src.to_vec();
        let _msg = format!("len = {}", copy.len());
        self.data.clone()
    }

    pub fn cold(&mut self) {
        self.data = Vec::new();
    }
}
