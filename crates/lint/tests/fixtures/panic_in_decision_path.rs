// Lint fixture: panics in the decision path. Never compiled —
// this directory is excluded in lint.toml and cargo ignores test subdirs.

pub fn decide(scores: &[f32], idx: usize) -> f32 {
    if idx >= scores.len() {
        panic!("bad index");
    }
    scores[idx]
}

pub fn first(scores: &[f32]) -> f32 {
    scores.first().copied().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn indexing_and_unwrap_in_tests_are_fine() {
        let v = [1.0f32];
        assert_eq!(v[0], v.first().copied().unwrap());
    }
}
