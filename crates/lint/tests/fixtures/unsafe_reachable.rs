//! Fixture: a justified unsafe block whose enclosing fn is reachable from
//! a hot-path root — the inventory's reachability column must attribute
//! it to that root.

// lint: hot-path
pub fn root(p: *const f32) -> f32 {
    // lint: allow(hot-path, reason = "leaf carries its own SAFETY contract")
    read_lane(p)
}

fn read_lane(p: *const f32) -> f32 {
    // SAFETY: caller guarantees `p` is valid and aligned for a f32 read.
    unsafe { *p }
}
