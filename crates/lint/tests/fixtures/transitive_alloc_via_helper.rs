//! Fixture: the hot-path fn is itself allocation-free, but a helper it
//! calls allocates. The lexical body audit cannot see this; the
//! transitive pass must, and must report the call chain.

// lint: hot-path
pub fn step(buf: &mut [f32]) {
    pack_tile(buf);
}

fn pack_tile(buf: &mut [f32]) {
    let scratch = buf.to_vec();
    let _ = scratch;
}
