//! Fixture: regression for the shift-style generic lexer bug. A closed
//! nested turbofish (`::<Vec<Vec<f32>>>`) followed later by a `>`
//! comparison must not be lexed as one giant generic argument list — that
//! would swallow the call parens, drop `make` from the call graph, and
//! silently lose the allocation behind it (a reachability false negative).

// lint: hot-path
pub fn step(n: usize, level: usize) -> bool {
    let buf = make::<Vec<Vec<f32>>>(n);
    let hot = level > 3;
    hot && !buf.is_empty()
}

fn make<T: Default>(n: usize) -> Vec<T> {
    let mut v = Vec::new();
    for _ in 0..n {
        v.push(T::default());
    }
    v
}
