//! Workspace crate-dependency map, used to gate call-graph resolution.
//!
//! Name-based resolution alone sprays edges across the whole workspace —
//! a bare `run(` in a kernel would resolve to every free `run` anywhere,
//! including crates the kernel's crate does not even depend on. Cargo
//! forbids exactly that: code in crate A can only name items from crates
//! A declares in `[dependencies]`. Filtering candidates by the (transitive)
//! dependency closure is therefore a *sound* narrowing — it removes only
//! edges the compiler itself would reject — while cutting the dominant
//! source of false positives.
//!
//! `[dev-dependencies]` are deliberately excluded: only test code can use
//! them, and test code never participates in reachability (integration
//! test, example, and bench files are blanket-marked test-only by the
//! analysis pipeline).
//!
//! The manifest reader covers the workspace's own conventions only:
//! `[package] name = "..."`, `[dependencies]` entries in the
//! `name.workspace = true`, `name = "ver"`, `name = { ... }`, and
//! `[dependencies.name]` forms.

use std::fs;
use std::path::Path;

/// Which crate each file belongs to and which crates it may call into.
#[derive(Debug)]
pub struct CrateMap {
    /// Crate directory prefixes, workspace-relative (`crates/core`); the
    /// last entry is the root package (matching everything else).
    dirs: Vec<String>,
    /// `visible[from][to]`: `from`'s transitive `[dependencies]` closure,
    /// including itself.
    visible: Vec<Vec<bool>>,
}

impl CrateMap {
    /// A single-crate map where everything sees everything — used by the
    /// in-memory fixture tests, which model one little workspace.
    pub fn permissive() -> Self {
        Self { dirs: vec![String::new()], visible: vec![vec![true]] }
    }

    /// Reads `crates/*/Cargo.toml` plus the root manifest under `root`.
    /// Missing or unparsable manifests degrade to the permissive map —
    /// the linter must never *gain* blind spots from a manifest problem.
    pub fn load(root: &Path) -> Self {
        let mut dirs: Vec<String> = Vec::new();
        let mut names: Vec<String> = Vec::new();
        let mut deps: Vec<Vec<String>> = Vec::new();
        let crates_dir = root.join("crates");
        let mut entries: Vec<_> = match fs::read_dir(&crates_dir) {
            Ok(e) => e.filter_map(|e| e.ok().map(|e| e.path())).collect(),
            Err(_) => return Self::permissive(),
        };
        entries.sort();
        for dir in entries {
            let Ok(text) = fs::read_to_string(dir.join("Cargo.toml")) else { continue };
            let Some((name, dep_names)) = parse_manifest(&text) else { continue };
            let rel = format!("crates/{}", dir.file_name().and_then(|n| n.to_str()).unwrap_or(""));
            dirs.push(rel);
            names.push(name);
            deps.push(dep_names);
        }
        if dirs.is_empty() {
            return Self::permissive();
        }
        // The root package owns top-level src/tests/examples; its empty dir
        // prefix matches whatever no workspace crate claims.
        let root_deps = fs::read_to_string(root.join("Cargo.toml"))
            .ok()
            .and_then(|t| parse_manifest(&t))
            .map(|(_, d)| d)
            .unwrap_or_default();
        dirs.push(String::new());
        names.push("<root>".into());
        deps.push(root_deps);

        let n = dirs.len();
        let mut visible = vec![vec![false; n]; n];
        for (i, row) in visible.iter_mut().enumerate() {
            row[i] = true;
            for dep in &deps[i] {
                if let Some(j) = names.iter().position(|m| m == dep) {
                    row[j] = true;
                }
            }
        }
        // Transitive closure: re-exports can surface a transitive dep's
        // items, so the conservative direction is to include them.
        let mut changed = true;
        while changed {
            changed = false;
            for i in 0..n {
                for j in 0..n {
                    if !visible[i][j] {
                        continue;
                    }
                    let via = visible[j].clone();
                    for (vis, through) in visible[i].iter_mut().zip(via) {
                        if through && !*vis {
                            *vis = true;
                            changed = true;
                        }
                    }
                }
            }
        }
        Self { dirs, visible }
    }

    /// The crate id owning `rel` (the root package for anything outside
    /// `crates/*`).
    pub fn crate_of(&self, rel: &str) -> usize {
        self.dirs
            .iter()
            .position(|d| !d.is_empty() && rel.starts_with(&format!("{d}/")))
            .unwrap_or(self.dirs.len() - 1)
    }

    /// Whether code in crate `from` may call into crate `to`.
    pub fn visible(&self, from: usize, to: usize) -> bool {
        self.visible[from][to]
    }

    /// Builds a map directly from parts — test support for the graph's
    /// dependency-gating tests.
    #[cfg(test)]
    pub(crate) fn from_parts(dirs: Vec<String>, visible: Vec<Vec<bool>>) -> Self {
        Self { dirs, visible }
    }
}

/// Extracts (package name, `[dependencies]` keys) from manifest text.
fn parse_manifest(text: &str) -> Option<(String, Vec<String>)> {
    let mut name: Option<String> = None;
    let mut deps: Vec<String> = Vec::new();
    let mut section = String::new();
    for raw in text.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(head) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            section = head.trim().to_string();
            if let Some(dep) = section.strip_prefix("dependencies.") {
                deps.push(dep.trim().to_string());
            }
            continue;
        }
        let Some(eq) = line.find('=') else { continue };
        let key = line[..eq].trim();
        let val = line[eq + 1..].trim();
        if section == "package" && key == "name" {
            name = val.strip_prefix('"').and_then(|v| v.strip_suffix('"')).map(str::to_string);
        }
        if section == "dependencies" {
            // `serde.workspace = true` → `serde`; `nn = { path = ... }` → `nn`.
            let dep = key.split('.').next().unwrap_or(key).trim();
            if !dep.is_empty() {
                deps.push(dep.to_string());
            }
        }
    }
    name.map(|n| (n, deps))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_parser_reads_name_and_dependency_forms() {
        let (name, deps) = parse_manifest(
            "[package]\nname = \"context-monitor\"\n\n[lib]\nname = \"context_monitor\"\n\n\
             [dependencies]\nnn.workspace = true\neval = { path = \"../eval\" }\nserde = \"1\"\n\
             [dependencies.rand]\nversion = \"0.8\"\n\n[dev-dependencies]\nproptest.workspace = true\n",
        )
        .unwrap();
        assert_eq!(name, "context-monitor");
        assert_eq!(deps, ["nn", "eval", "serde", "rand"], "dev-deps must be excluded");
    }

    #[test]
    fn permissive_map_lets_everything_see_everything() {
        let m = CrateMap::permissive();
        let c = m.crate_of("crates/anything/src/lib.rs");
        assert!(m.visible(c, c));
    }
}
