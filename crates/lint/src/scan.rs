//! The lexer-grade source scanner every rule family is built on.
//!
//! [`SourceFile`] classifies every byte of a Rust source file as **code**,
//! **comment**, or **literal** (string/char contents) in a single pass, then
//! derives the structural facts the rules need:
//!
//! * a *masked* view of the source — comments and literal contents blanked
//!   with spaces, newlines preserved — so pattern scans can never be fooled
//!   by a forbidden token inside a string or a doc comment;
//! * brace-matched **test regions** (`#[cfg(test)]` / `#[test]` items),
//!   which the no-panic and hot-path rules exempt;
//! * brace-matched **function bodies** for `// lint: hot-path` tags;
//! * the `// lint:` **directives** themselves (tags and allows).
//!
//! This is deliberately not a Rust parser: the gated paths contain no
//! macro-generated items, so lexical analysis over the masked text is
//! sufficient (see DESIGN.md §8 for the argument), and a ~400-line scanner
//! with zero dependencies is itself auditable — the property a trusted
//! checker needs most.

/// Byte classes produced by the masking pass.
const CODE: u8 = 0;
const COMMENT: u8 = 1;
const LITERAL: u8 = 2;

/// A `// lint:` directive found in a comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Directive {
    /// `// lint: hot-path` — the next `fn` is allocation-audited.
    HotPath {
        /// 1-based line of the tag comment.
        line: usize,
    },
    /// `// lint: allow(<rule>, reason = "...")` — suppresses diagnostics of
    /// that rule family on the same line and the line below.
    Allow {
        /// 1-based line of the allow comment.
        line: usize,
        /// Rule family the allow targets (`panic`, `alloc`, ...).
        rule: String,
        /// The mandatory human-readable justification.
        reason: String,
    },
    /// A `lint:` comment the scanner could not parse — always a diagnostic,
    /// never silently ignored.
    Malformed {
        /// 1-based line of the malformed directive.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
}

/// One scanned source file plus the structural indexes derived from it.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    /// The raw source text.
    pub raw: String,
    /// Same length as `raw`: comments and literal contents replaced by
    /// spaces, newlines kept, code bytes untouched.
    pub masked: String,
    /// Per-byte class (CODE / COMMENT / LITERAL).
    kind: Vec<u8>,
    /// Byte offset at which each 0-based line starts.
    line_starts: Vec<usize>,
    /// Byte spans of test-only items (merged, sorted by start).
    test_spans: Vec<(usize, usize)>,
    /// Parsed `// lint:` directives in line order.
    pub directives: Vec<Directive>,
}

impl SourceFile {
    /// Scans one file.
    pub fn new(rel: String, raw: String) -> Self {
        let kind = classify(&raw);
        let masked = mask(&raw, &kind);
        let line_starts = line_starts(&raw);
        let mut file = Self {
            rel,
            raw,
            masked,
            kind,
            line_starts,
            test_spans: Vec::new(),
            directives: Vec::new(),
        };
        file.test_spans = file.find_test_spans();
        file.directives = file.find_directives();
        file
    }

    /// 1-based line number of byte `offset`.
    pub fn line_of(&self, offset: usize) -> usize {
        match self.line_starts.binary_search(&offset) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    /// Number of lines in the file.
    pub fn line_count(&self) -> usize {
        self.line_starts.len()
    }

    /// Byte range of 1-based line `line` (excluding the newline).
    fn line_span(&self, line: usize) -> (usize, usize) {
        let start = self.line_starts[line - 1];
        let end = self.line_starts.get(line).map_or(self.raw.len(), |&next| next.saturating_sub(1));
        (start, end)
    }

    /// The comment text of 1-based line `line`: every byte classified as
    /// comment, with the `//` / `/*` introducers included as written.
    pub fn comment_text(&self, line: usize) -> &str {
        let (start, end) = self.line_span(line);
        let bytes = &self.raw.as_bytes()[start..end];
        let kinds = &self.kind[start..end];
        let first = kinds.iter().position(|&k| k == COMMENT);
        let last = kinds.iter().rposition(|&k| k == COMMENT);
        match (first, last) {
            (Some(a), Some(b)) => std::str::from_utf8(&bytes[a..=b]).unwrap_or(""),
            _ => "",
        }
    }

    /// The masked **code** text of 1-based line `line`.
    pub fn code_text(&self, line: usize) -> &str {
        let (start, end) = self.line_span(line);
        &self.masked[start..end]
    }

    /// Whether byte `offset` lies inside a test-only item.
    pub fn in_test(&self, offset: usize) -> bool {
        self.test_spans.iter().any(|&(s, e)| offset >= s && offset < e)
    }

    /// Finds `#[cfg(test)]` / `#[test]`-attributed items and returns their
    /// brace-matched byte spans.
    fn find_test_spans(&self) -> Vec<(usize, usize)> {
        let b = self.masked.as_bytes();
        let mut spans = Vec::new();
        let mut i = 0usize;
        while i < b.len() {
            if b[i] != b'#' {
                i += 1;
                continue;
            }
            let mut j = i + 1;
            // Inner attributes (`#![...]`) configure the enclosing scope,
            // not a following item — skip them.
            if j < b.len() && b[j] == b'!' {
                i += 1;
                continue;
            }
            while j < b.len() && (b[j] as char).is_whitespace() {
                j += 1;
            }
            if j >= b.len() || b[j] != b'[' {
                i += 1;
                continue;
            }
            let Some(close) = matching(b, j, b'[', b']') else { break };
            let content = &self.masked[j + 1..close];
            if attr_is_test(content) {
                if let Some(span) = self.item_span(close + 1) {
                    spans.push((i, span));
                    i = span;
                    continue;
                }
            }
            i = close + 1;
        }
        merge_spans(spans)
    }

    /// Byte offset one past the end of the item starting at/after `from`:
    /// the matching `}` of its first body brace, or its terminating `;`,
    /// whichever comes first in the token stream.
    fn item_span(&self, from: usize) -> Option<usize> {
        let b = self.masked.as_bytes();
        let mut i = from;
        while i < b.len() {
            match b[i] {
                b'{' => return matching(b, i, b'{', b'}').map(|e| e + 1),
                b';' => return Some(i + 1),
                // A further attribute between the test attr and the item.
                b'#' => {
                    let mut j = i + 1;
                    while j < b.len() && (b[j] as char).is_whitespace() {
                        j += 1;
                    }
                    if j < b.len() && b[j] == b'[' {
                        i = matching(b, j, b'[', b']')? + 1;
                    } else {
                        i += 1;
                    }
                }
                _ => i += 1,
            }
        }
        None
    }

    /// Parses every `lint:` comment in the file. A directive must start the
    /// comment's content (`// lint: ...`); prose that merely *mentions*
    /// `lint:` mid-sentence — e.g. this scanner's own documentation — is
    /// not a directive.
    fn find_directives(&self) -> Vec<Directive> {
        let mut out = Vec::new();
        for line in 1..=self.line_count() {
            let comment = self.comment_text(line);
            let content = comment.trim_start_matches(['/', '!', '*']).trim_start();
            let Some(body) = content.strip_prefix("lint:").map(str::trim) else { continue };
            if body == "hot-path" {
                out.push(Directive::HotPath { line });
            } else if let Some(rest) = body.strip_prefix("allow(") {
                out.push(parse_allow(line, rest));
            } else {
                out.push(Directive::Malformed {
                    line,
                    message: format!(
                        "unrecognized lint directive `{body}` (expected `hot-path` or \
                         `allow(<rule>, reason = \"...\")`)"
                    ),
                });
            }
        }
        out
    }

    /// All `fn` token offsets in masked code (token-boundary matched).
    pub fn fn_tokens(&self) -> Vec<usize> {
        token_offsets(&self.masked, "fn")
    }

    /// Resolves a hot-path tag on `tag_line` to the tagged function:
    /// `(name, body_start, body_end, fn_line)` for the first `fn` token at
    /// or after the tag line's start.
    pub fn tagged_fn(&self, tag_line: usize) -> Result<TaggedFn, String> {
        let (line_start, _) = self.line_span(tag_line);
        let b = self.masked.as_bytes();
        let fn_off = self
            .fn_tokens()
            .into_iter()
            .find(|&o| o >= line_start)
            .ok_or_else(|| "dangling `lint: hot-path` tag: no fn follows it".to_string())?;
        // Name: the identifier after `fn`.
        let mut i = fn_off + 2;
        while i < b.len() && (b[i] as char).is_whitespace() {
            i += 1;
        }
        let name_start = i;
        while i < b.len() && is_ident(b[i]) {
            i += 1;
        }
        let name = self.masked[name_start..i].to_string();
        // Body: first `{` before any *item-level* `;`. Parens and brackets
        // must be skipped — `probs: &mut [f32; 2]` carries a `;` inside the
        // argument list that says nothing about the item.
        let mut j = i;
        let mut depth = 0usize;
        let (open, close) = loop {
            if j >= b.len() {
                return Err(format!("hot-path fn `{name}`: no body found"));
            }
            match b[j] {
                b'(' | b'[' => depth += 1,
                b')' | b']' => depth = depth.saturating_sub(1),
                b'{' if depth == 0 => {
                    let close = matching(b, j, b'{', b'}')
                        .ok_or_else(|| format!("hot-path fn `{name}`: unbalanced braces"))?;
                    break (j, close);
                }
                b';' if depth == 0 => {
                    return Err(format!(
                        "hot-path tag on bodyless fn `{name}` (trait method declaration?)"
                    ))
                }
                _ => {}
            }
            j += 1;
        };
        Ok(TaggedFn { name, line: self.line_of(fn_off), body_start: open, body_end: close })
    }
}

/// A function resolved from a `// lint: hot-path` tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaggedFn {
    /// The function's name.
    pub name: String,
    /// 1-based line of its `fn` token.
    pub line: usize,
    /// Byte offset of the body's `{`.
    pub body_start: usize,
    /// Byte offset of the body's matching `}`.
    pub body_end: usize,
}

/// Parses the tail of `allow(<rule>, reason = "...")` (after the `(`).
fn parse_allow(line: usize, rest: &str) -> Directive {
    let Some(close) = rest.rfind(')') else {
        return Directive::Malformed { line, message: "allow(...) is missing its `)`".into() };
    };
    let inner = &rest[..close];
    let (rule, tail) = match inner.find(',') {
        Some(c) => (inner[..c].trim(), inner[c + 1..].trim()),
        None => (inner.trim(), ""),
    };
    if rule.is_empty() {
        return Directive::Malformed { line, message: "allow(...) names no rule".into() };
    }
    let reason = tail
        .strip_prefix("reason")
        .map(str::trim_start)
        .and_then(|t| t.strip_prefix('='))
        .map(str::trim)
        .and_then(|t| t.strip_prefix('"'))
        .and_then(|t| t.strip_suffix('"'))
        .unwrap_or("");
    if reason.is_empty() {
        return Directive::Malformed {
            line,
            message: format!(
                "allow({rule}) without a reason — every escape hatch must say why \
                 (`// lint: allow({rule}, reason = \"...\")`)"
            ),
        };
    }
    Directive::Allow { line, rule: rule.to_string(), reason: reason.to_string() }
}

/// Whether attribute content (masked) marks a test-only item: the word
/// `test` appears as a standalone token (`#[test]`, `#[cfg(test)]`,
/// `#[cfg(all(test, ...))]`, ...).
fn attr_is_test(content: &str) -> bool {
    let b = content.as_bytes();
    let mut i = 0usize;
    while i < b.len() {
        if is_ident(b[i]) {
            let start = i;
            while i < b.len() && is_ident(b[i]) {
                i += 1;
            }
            if &content[start..i] == "test" {
                return true;
            }
        } else {
            i += 1;
        }
    }
    false
}

/// Offset of the bracket matching `b[open]`, honoring nesting.
fn matching(b: &[u8], open: usize, lhs: u8, rhs: u8) -> Option<usize> {
    let mut depth = 0usize;
    for (i, &c) in b.iter().enumerate().skip(open) {
        if c == lhs {
            depth += 1;
        } else if c == rhs {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

fn merge_spans(mut spans: Vec<(usize, usize)>) -> Vec<(usize, usize)> {
    spans.sort_unstable();
    let mut out: Vec<(usize, usize)> = Vec::new();
    for (s, e) in spans {
        match out.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

/// Whether `c` can be part of an identifier.
pub fn is_ident(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphanumeric()
}

/// Offsets of every occurrence of identifier `word` in `text` with token
/// boundaries on both sides.
pub fn token_offsets(text: &str, word: &str) -> Vec<usize> {
    let b = text.as_bytes();
    let w = word.as_bytes();
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(pos) = text[from..].find(word) {
        let at = from + pos;
        let before_ok = at == 0 || !is_ident(b[at - 1]);
        let after = at + w.len();
        let after_ok = after >= b.len() || !is_ident(b[after]);
        if before_ok && after_ok {
            out.push(at);
        }
        from = at + w.len().max(1);
    }
    out
}

/// First non-whitespace byte at or after `from`, with its offset.
pub fn next_token(b: &[u8], from: usize) -> Option<(usize, u8)> {
    (from..b.len()).map(|i| (i, b[i])).find(|&(_, c)| !(c as char).is_whitespace())
}

/// Skips a generic-argument/parameter list whose `<` sits at `open` in
/// masked code, returning the offset one past the matching `>`.
///
/// Angle brackets in *type position* follow different lexing rules than
/// expression operators, and getting them wrong is a soundness bug for
/// every call-graph pass built on top:
///
/// * `>>` closes **two** levels (`Vec<Vec<f32>>`) — it is never a shift
///   in type position. The historical one-level-at-a-time matcher treated
///   `>>` as a shift operator and scanned on to the next standalone `>`,
///   so a turbofish like `make::<Vec<Vec<f32>>>()` followed by a `a > b`
///   comparison was mis-lexed as one long closed generic that swallowed
///   the call parens — and the swallowed call vanished from the call
///   graph (a false negative). Pinned by the
///   `turbofish_comparison.rs` fixture.
/// * the `>` of a `->` return-type arrow inside `Fn(...) -> T` bounds
///   closes nothing.
/// * `=` (const-generic defaults), `'` (lifetimes), and nested `(...)`
///   (`Fn` sugar) are all legal interior bytes.
///
/// Returns `None` when the bytes at `open` turn out not to be a generic
/// list after all (runs into `;`, `{`, or EOF at depth > 0) — callers
/// must then re-read the `<` as a comparison.
pub fn skip_generics(b: &[u8], open: usize) -> Option<usize> {
    debug_assert_eq!(b[open], b'<');
    let mut depth = 0usize;
    let mut i = open;
    while i < b.len() {
        match b[i] {
            b'<' => {
                depth += 1;
                i += 1;
            }
            b'>' => {
                if i > 0 && b[i - 1] == b'-' {
                    // `->` arrow inside Fn(...) -> T bounds.
                    i += 1;
                    continue;
                }
                // `>>` is handled naturally: each `>` closes one level.
                depth -= 1;
                i += 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            // A generic list never contains statements or blocks; hitting
            // one means the `<` was a comparison operator.
            b';' | b'{' | b'}' => return None,
            _ => i += 1,
        }
    }
    None
}

fn line_starts(src: &str) -> Vec<usize> {
    let mut starts = vec![0usize];
    for (i, c) in src.bytes().enumerate() {
        if c == b'\n' {
            starts.push(i + 1);
        }
    }
    if starts.last() == Some(&src.len()) && src.ends_with('\n') {
        starts.pop();
    }
    starts
}

/// Single-pass byte classification: comments (line, nested block), string
/// literals (plain, raw `r#".."#`, byte), char literals, and the char
/// literal / lifetime ambiguity.
fn classify(src: &str) -> Vec<u8> {
    let b = src.as_bytes();
    let mut kind = vec![CODE; b.len()];
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i];
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
            let start = i;
            while i < b.len() && b[i] != b'\n' {
                i += 1;
            }
            kind[start..i].fill(COMMENT);
        } else if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            let start = i;
            let mut depth = 1usize;
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            kind[start..i.min(b.len())].fill(COMMENT);
        } else if let Some(end) = raw_string_end(b, i) {
            kind[i..end].fill(LITERAL);
            i = end;
        } else if c == b'"'
            || (c == b'b' && i + 1 < b.len() && b[i + 1] == b'"' && !prev_ident(b, i))
        {
            let start = i;
            i += if c == b'b' { 2 } else { 1 };
            while i < b.len() {
                match b[i] {
                    b'\\' => i += 2,
                    b'"' => {
                        i += 1;
                        break;
                    }
                    _ => i += 1,
                }
            }
            kind[start..i.min(b.len())].fill(LITERAL);
        } else if c == b'b' && i + 1 < b.len() && b[i + 1] == b'\'' && !prev_ident(b, i) {
            let start = i;
            i = char_literal_end(b, i + 1);
            kind[start..i.min(b.len())].fill(LITERAL);
        } else if c == b'\'' {
            if i + 1 < b.len() && b[i + 1] == b'\\' {
                let start = i;
                i = char_literal_end(b, i);
                kind[start..i.min(b.len())].fill(LITERAL);
            } else if i + 2 < b.len() && b[i + 2] == b'\'' && b[i + 1] != b'\'' {
                // 'x' — a one-byte char literal. ('aa, 'a> etc. fall through
                // to the lifetime branch below.)
                kind[i..i + 3].fill(LITERAL);
                i += 3;
            } else {
                // Lifetime / loop label: skip the quote (and its identifier
                // implicitly — identifiers are never rescanned as quotes).
                i += 1;
            }
        } else {
            i += 1;
        }
    }
    kind
}

/// If a raw (byte) string literal starts at `i`, its one-past-the-end
/// offset: `r"..."`, `r#"..."#` (any number of `#`), `br"..."`.
fn raw_string_end(b: &[u8], i: usize) -> Option<usize> {
    if prev_ident(b, i) {
        return None;
    }
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if j >= b.len() || b[j] != b'r' {
        return None;
    }
    j += 1;
    let mut hashes = 0usize;
    while j < b.len() && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    if j >= b.len() || b[j] != b'"' {
        return None;
    }
    j += 1;
    while j < b.len() {
        if b[j] == b'"' && b[j + 1..].iter().take(hashes).filter(|&&c| c == b'#').count() == hashes
        {
            return Some(j + 1 + hashes);
        }
        j += 1;
    }
    Some(b.len())
}

/// One past the closing quote of the char literal whose opening `'` is at
/// `i`.
fn char_literal_end(b: &[u8], i: usize) -> usize {
    let mut j = i + 1;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'\'' => return j + 1,
            _ => j += 1,
        }
    }
    b.len()
}

fn prev_ident(b: &[u8], i: usize) -> bool {
    i > 0 && is_ident(b[i - 1])
}

fn mask(src: &str, kind: &[u8]) -> String {
    let out: Vec<u8> = src
        .bytes()
        .zip(kind.iter())
        .map(|(c, &k)| if k == CODE || c == b'\n' { c } else { b' ' })
        .collect();
    // Only ASCII bytes are ever replaced, so the result stays valid UTF-8.
    String::from_utf8(out).expect("masking preserves UTF-8")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::new("test.rs".into(), src.into())
    }

    #[test]
    fn masks_comments_and_strings_but_not_code() {
        let f = file("let x = \"panic!\"; // panic!\nlet y = panic!(\"\");\n");
        assert!(!f.masked.contains("panic!\""));
        assert!(f.code_text(2).contains("panic!"));
        assert_eq!(f.comment_text(1), "// panic!");
    }

    #[test]
    fn raw_strings_and_char_literals_are_masked() {
        let f = file("let s = r#\"unsafe { \"quote\" }\"#; let c = '{'; let l: &'static str = s;");
        assert!(!f.masked.contains("unsafe"));
        assert!(!f.masked.contains('{'), "brace inside char literal must be masked");
        assert!(f.masked.contains("static"), "lifetimes stay code");
    }

    #[test]
    fn nested_block_comments_are_masked() {
        let f = file("/* a /* nested */ still comment */ fn x() {}\n");
        assert!(f.masked.trim_start().starts_with("fn x"));
    }

    #[test]
    fn test_spans_cover_cfg_test_modules_and_test_fns() {
        let src = "fn live() { v[0]; }\n#[cfg(test)]\nmod tests {\n    fn helper() { v[0]; }\n}\n";
        let f = file(src);
        let live = src.find("live").unwrap();
        let helper = src.find("helper").unwrap();
        assert!(!f.in_test(live));
        assert!(f.in_test(helper));
    }

    #[test]
    fn directives_parse_and_malformed_ones_are_reported() {
        let src = "// lint: hot-path\nfn f() {}\n// lint: allow(panic, reason = \"why\")\n\
                   // lint: allow(panic)\n// lint: frobnicate\n";
        let f = file(src);
        assert_eq!(f.directives.len(), 4);
        assert_eq!(f.directives[0], Directive::HotPath { line: 1 });
        assert!(matches!(&f.directives[1],
            Directive::Allow { line: 3, rule, reason } if rule == "panic" && reason == "why"));
        assert!(matches!(&f.directives[2], Directive::Malformed { line: 4, .. }));
        assert!(matches!(&f.directives[3], Directive::Malformed { line: 5, .. }));
    }

    #[test]
    fn tagged_fn_resolves_name_and_body() {
        let src = "// lint: hot-path\npub fn hot(&mut self) -> usize {\n    let x = 1;\n    x\n}\n\
                   fn cold() {}\n";
        let f = file(src);
        let tag = f.tagged_fn(1).unwrap();
        assert_eq!(tag.name, "hot");
        assert_eq!(tag.line, 2);
        let body = &f.masked[tag.body_start..=tag.body_end];
        assert!(body.contains("let x"));
        assert!(!body.contains("cold"));
    }

    #[test]
    fn tagged_fn_skips_semicolons_inside_argument_lists() {
        // Regression: `&mut [f32; 2]` in the signature must not read as a
        // bodyless trait declaration.
        let src = "// lint: hot-path\npub fn score(&self, probs: &mut [f32; 2]) -> f32 {\n    probs[1]\n}\n";
        let tag = file(src).tagged_fn(1).unwrap();
        assert_eq!(tag.name, "score");
        assert_eq!(tag.line, 2);
    }

    #[test]
    fn token_offsets_respect_boundaries() {
        let t = "unsafe_probability unsafe { } my_unsafe unsafe";
        assert_eq!(token_offsets(t, "unsafe").len(), 2);
    }

    #[test]
    fn skip_generics_closes_double_angle_then_stops_before_comparison() {
        // The regression this helper exists for: `>>` must close two
        // levels, so the turbofish ends at the `>()` and the later `>`
        // comparison is NOT part of the generic list.
        let t = "make::<Vec<Vec<f32>>>(n); let hot = level > 3;";
        let open = t.find('<').unwrap();
        let end = skip_generics(t.as_bytes(), open).unwrap();
        assert_eq!(
            &t[end..end + 1],
            "(",
            "generic must close at the call parens, got `{}`",
            &t[end..]
        );
    }

    #[test]
    fn skip_generics_ignores_fn_arrow_and_rejects_comparisons() {
        let t = "<F: Fn(usize) -> f32>(f: F)";
        let end = skip_generics(t.as_bytes(), 0).unwrap();
        assert_eq!(&t[end..end + 1], "(");
        // A bare `<` comparison never closes as a generic: it runs into a
        // statement boundary first.
        let cmp = "a < b; foo()";
        assert_eq!(skip_generics(cmp.as_bytes(), cmp.find('<').unwrap()), None);
    }
}
