//! Function-item and call-site extraction on top of the masked token
//! stream — the layer the call graph is built from.
//!
//! [`parse_fns`] walks one [`SourceFile`]'s masked text and produces every
//! `fn` item with its name, enclosing `impl`/`trait` container, brace-matched
//! body span, and the call sites inside that body. Like the scanner itself
//! this is deliberately not a Rust parser: the gated paths contain no
//! macro-generated items, so a token-level read of the masked text sees
//! every function and every call that the compiler will (DESIGN.md §8).
//! Ambiguity is always resolved toward *more* edges, never fewer — the
//! resolution step in [`crate::graph`] relies on that.

use crate::scan::{is_ident, next_token, skip_generics, token_offsets, SourceFile};

/// One `fn` item found in a file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// Enclosing `impl` self-type or `trait` name, if any (`Mat` for
    /// `impl Mat { fn rows(...) }`); `None` for free functions.
    pub container: Option<String>,
    /// 1-based line of the `fn` token.
    pub line: usize,
    /// Byte offset of the `fn` token.
    pub offset: usize,
    /// Byte span of the body: `(offset of {, offset of matching })`.
    /// `None` for bodyless declarations (trait method signatures).
    pub body: Option<(usize, usize)>,
    /// Whether the first parameter is a `self` receiver (`self`, `&self`,
    /// `&mut self`, `&'a self`, `mut self`, `self: ...`). Only a
    /// self-taking method can be the target of a `.name(...)` call.
    pub has_self: bool,
    /// Whether the enclosing container is a `trait` block (as opposed to
    /// an `impl` block or no container). A trait-block fn with a body is a
    /// default method — the only workspace code a qualified call on an
    /// unregistered type can still reach.
    pub in_trait: bool,
    /// Whether the item sits inside a `#[cfg(test)]` / `#[test]` span.
    pub is_test: bool,
    /// Call sites inside the body, in source order.
    pub calls: Vec<CallSite>,
}

impl FnItem {
    /// `Container::name` or plain `name` — the label chains are rendered
    /// with.
    pub fn qualified_name(&self) -> String {
        match &self.container {
            Some(c) => format!("{c}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// The called name (last path segment).
    pub name: String,
    /// The path segment directly before the name (`Mat` in `Mat::zeros`,
    /// `kernels` in `kernels::gemm_ab`); `Self` is rewritten to the
    /// enclosing container. `None` for bare and method calls.
    pub qualifier: Option<String>,
    /// `true` for `.name(...)` receiver-method form.
    pub is_method: bool,
    /// 1-based line of the call.
    pub line: usize,
}

/// Keywords that can directly precede `(` without being a call, or that
/// start non-call constructs an identifier scan would otherwise trip on.
const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "fn", "let",
    "mut", "ref", "move", "in", "as", "where", "impl", "pub", "unsafe", "dyn", "const", "static",
    "use", "mod", "struct", "enum", "trait", "type", "self", "Self", "super", "crate", "true",
    "false", "async", "await", "box",
];

/// A container (`impl` or `trait`) body span with its type name.
struct Container {
    name: String,
    body: (usize, usize),
    is_trait: bool,
}

/// Parses every `fn` item in `file`.
pub fn parse_fns(file: &SourceFile) -> Vec<FnItem> {
    let b = file.masked.as_bytes();
    let containers = find_containers(file);
    let mut out = Vec::new();
    for fn_off in file.fn_tokens() {
        // `fn(` / `fn (` is a function-pointer type, not an item.
        let Some((name_start, first)) = next_token(b, fn_off + 2) else { continue };
        if !is_ident(first) {
            continue;
        }
        let mut i = name_start;
        while i < b.len() && is_ident(b[i]) {
            i += 1;
        }
        let name = file.masked[name_start..i].to_string();
        // Generic parameter list between name and the argument parens.
        if let Some((j, c)) = next_token(b, i) {
            if c == b'<' {
                match skip_generics(b, j) {
                    Some(end) => i = end,
                    None => continue, // unparseable signature: skip the item
                }
            }
        }
        // Argument list.
        let Some((paren, c)) = next_token(b, i) else { continue };
        if c != b'(' {
            continue;
        }
        let Some(close_paren) = matching_paren(b, paren) else { continue };
        // Body: first top-level `{` before a `;`. Return types and where
        // clauses in this workspace contain no braces (no const-generic
        // block defaults in signatures).
        let mut j = close_paren + 1;
        let body = loop {
            if j >= b.len() {
                break None;
            }
            match b[j] {
                b'{' => break matching_brace(b, j).map(|e| (j, e)),
                b';' => break None,
                _ => j += 1,
            }
        };
        let enclosing = containers.iter().find(|c| fn_off >= c.body.0 && fn_off < c.body.1);
        let container = enclosing.map(|c| c.name.clone());
        let calls = match body {
            Some((s, e)) => find_calls(file, s, e, container.as_deref()),
            None => Vec::new(),
        };
        out.push(FnItem {
            name,
            container,
            line: file.line_of(fn_off),
            offset: fn_off,
            body,
            has_self: first_param_is_self(file, b, paren, close_paren),
            in_trait: enclosing.map(|c| c.is_trait).unwrap_or(false),
            is_test: file.in_test(fn_off),
            calls,
        });
    }
    out
}

/// Whether the first parameter inside `(paren..close_paren)` is a `self`
/// receiver, in any of its spellings: `self`, `&self`, `&mut self`,
/// `&'a self`, `mut self`, `self: Pin<...>`.
fn first_param_is_self(file: &SourceFile, b: &[u8], paren: usize, close_paren: usize) -> bool {
    let mut i = paren + 1;
    loop {
        let Some((s, c)) = next_token(b, i) else { return false };
        if s >= close_paren {
            return false;
        }
        if c == b'&' {
            i = s + 1;
            continue;
        }
        if c == b'\'' {
            // Lifetime: skip the tick and its identifier.
            i = s + 1;
            while i < close_paren && is_ident(b[i]) {
                i += 1;
            }
            continue;
        }
        if !is_ident(c) {
            return false;
        }
        let mut e = s;
        while e < close_paren && is_ident(b[e]) {
            e += 1;
        }
        if &file.masked[s..e] == "mut" {
            i = e;
            continue;
        }
        return &file.masked[s..e] == "self";
    }
}

/// Finds `impl`/`trait` blocks and their self-type/trait names. For
/// `impl Trait for Type`, the container is `Type` (where the methods
/// live); for `impl Type` and `trait Name` it is that name.
fn find_containers(file: &SourceFile) -> Vec<Container> {
    let b = file.masked.as_bytes();
    let mut out = Vec::new();
    for kw in ["impl", "trait"] {
        for off in token_offsets(&file.masked, kw) {
            let mut i = off + kw.len();
            // `impl<T: Bound>` generic params.
            if let Some((j, c)) = next_token(b, i) {
                if c == b'<' {
                    match skip_generics(b, j) {
                        Some(end) => i = end,
                        None => continue,
                    }
                }
            }
            // Path (possibly two: `Trait for Type`). Take the segment after
            // `for` when present, else the first.
            let Some((head, head_end)) = read_type_head(file, b, i) else { continue };
            let mut name = head;
            let mut k = head_end;
            if let Some(for_off) = next_word_is(file, b, k, "for") {
                match read_type_head(file, b, for_off) {
                    Some((n, e)) => {
                        name = n;
                        k = e;
                    }
                    None => continue,
                }
            }
            // Body braces (skip a `where` clause if present).
            let mut j = k;
            let body = loop {
                if j >= b.len() {
                    break None;
                }
                match b[j] {
                    b'{' => break matching_brace(b, j).map(|e| (j, e)),
                    b';' => break None,
                    _ => j += 1,
                }
            };
            if let Some(body) = body {
                if !name.is_empty() {
                    out.push(Container { name, body, is_trait: kw == "trait" });
                }
            }
        }
    }
    out
}

/// Reads a type path starting at/after `from`; returns the **last**
/// segment's identifier (generics stripped) and the offset one past the
/// path. `core::Mat<'a, T>` → (`Mat`, after `>`).
fn read_type_head(file: &SourceFile, b: &[u8], from: usize) -> Option<(String, usize)> {
    let (mut i, first) = next_token(b, from)?;
    // `&`, `&mut`, `dyn` prefixes (trait objects / reference impls).
    if first == b'&' {
        i += 1;
    }
    let mut last = String::new();
    loop {
        let (s, c) = next_token(b, i)?;
        if !is_ident(c) {
            break;
        }
        let mut e = s;
        while e < b.len() && is_ident(b[e]) {
            e += 1;
        }
        let word = &file.masked[s..e];
        i = e;
        if word == "dyn" || word == "mut" {
            continue;
        }
        last = word.to_string();
        // Generic arguments on this segment.
        if let Some((j, c2)) = next_token(b, i) {
            if c2 == b'<' {
                i = skip_generics(b, j)?;
            }
        }
        // `::` → another segment follows.
        match next_token(b, i) {
            Some((j, b':')) if b.get(j + 1) == Some(&b':') => i = j + 2,
            _ => break,
        }
    }
    if last.is_empty() {
        None
    } else {
        Some((last, i))
    }
}

/// If the next word at/after `from` is `word`, returns the offset one past
/// it.
fn next_word_is(file: &SourceFile, b: &[u8], from: usize, word: &str) -> Option<usize> {
    let (s, c) = next_token(b, from)?;
    if !is_ident(c) {
        return None;
    }
    let mut e = s;
    while e < b.len() && is_ident(b[e]) {
        e += 1;
    }
    if &file.masked[s..e] == word {
        Some(e)
    } else {
        None
    }
}

/// Extracts call sites from the masked byte range `[start, end]` (a fn
/// body). A call is an identifier followed — possibly via a `::<...>`
/// turbofish — by `(`. Classification:
///
/// * `.name(` → method call (resolved by name across all impls);
/// * `Qual::name(` → qualified call (the qualifier narrows resolution);
/// * `name(` → free-function call (also covers closure/fn-pointer
///   invocation, which resolves conservatively by name).
///
/// Macro invocations (`name!(`) are not calls — the panic-family macros
/// are handled lexically by the panic rule.
fn find_calls(
    file: &SourceFile,
    start: usize,
    end: usize,
    container: Option<&str>,
) -> Vec<CallSite> {
    let b = file.masked.as_bytes();
    let mut out = Vec::new();
    let mut i = start;
    while i < end {
        if !is_ident(b[i]) || (i > 0 && is_ident(b[i - 1])) {
            i += 1;
            continue;
        }
        let word_start = i;
        while i < end && is_ident(b[i]) {
            i += 1;
        }
        let word = &file.masked[word_start..i];
        if word.as_bytes()[0].is_ascii_digit() || KEYWORDS.contains(&word) {
            continue;
        }
        let Some((j, c)) = next_token(b, i) else { break };
        // `name::<T>(` — skip the turbofish, then require `(`.
        let after_generics = if c == b':'
            && b.get(j + 1) == Some(&b':')
            && next_token(b, j + 2).is_some_and(|(_, c2)| c2 == b'<')
        {
            let (g, _) = next_token(b, j + 2).expect("checked above");
            match skip_generics(b, g) {
                Some(e) => e,
                None => continue,
            }
        } else {
            j
        };
        let Some((p, pc)) = next_token(b, after_generics) else { break };
        // Macros (`name!(`) never reach here: their `!` fails the `(`
        // check above, and the panic rule handles them lexically.
        if pc != b'(' || p > end {
            continue;
        }
        // Classify by what precedes the identifier.
        let mut q = word_start;
        while q > 0 && (b[q - 1] as char).is_whitespace() {
            q -= 1;
        }
        let (is_method, qualifier) = if q > 0 && b[q - 1] == b'.' {
            (true, None)
        } else if q > 1 && b[q - 1] == b':' && b[q - 2] == b':' {
            // Walk back over the qualifying segment (possibly with its own
            // `::` chain; only the innermost segment is kept).
            let mut s = q - 2;
            while s > 0 && (b[s - 1] as char).is_whitespace() {
                s -= 1;
            }
            let seg_end = s;
            while s > 0 && is_ident(b[s - 1]) {
                s -= 1;
            }
            let seg = &file.masked[s..seg_end];
            let qual = if seg.is_empty() {
                None // `<T as Trait>::name(`, `Vec::<u8>::new(` — give up, resolve wide
            } else if seg == "Self" {
                container.map(str::to_string)
            } else {
                Some(seg.to_string())
            };
            (false, qual)
        } else {
            (false, None)
        };
        out.push(CallSite {
            name: word.to_string(),
            qualifier,
            is_method,
            line: file.line_of(word_start),
        });
    }
    out
}

/// Offset of the `)` matching `b[open]`.
fn matching_paren(b: &[u8], open: usize) -> Option<usize> {
    matching_pair(b, open, b'(', b')')
}

/// Offset of the `}` matching `b[open]`.
fn matching_brace(b: &[u8], open: usize) -> Option<usize> {
    matching_pair(b, open, b'{', b'}')
}

fn matching_pair(b: &[u8], open: usize, lhs: u8, rhs: u8) -> Option<usize> {
    let mut depth = 0usize;
    for (i, &c) in b.iter().enumerate().skip(open) {
        if c == lhs {
            depth += 1;
        } else if c == rhs {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fns(src: &str) -> Vec<FnItem> {
        parse_fns(&SourceFile::new("t.rs".into(), src.into()))
    }

    #[test]
    fn free_fn_and_method_are_parsed_with_containers() {
        let src = "pub fn free(x: usize) -> usize { helper(x) }\n\
                   impl Mat {\n    pub fn rows(&self) -> usize { self.r }\n}\n\
                   impl std::fmt::Display for Mat {\n    fn fmt(&self) {}\n}\n\
                   trait Sink {\n    fn push_frame(&mut self) { self.flush() }\n    fn flush(&mut self);\n}\n";
        let items = fns(src);
        let names: Vec<(String, Option<String>)> =
            items.iter().map(|f| (f.name.clone(), f.container.clone())).collect();
        assert_eq!(
            names,
            [
                ("free".to_string(), None),
                ("rows".to_string(), Some("Mat".to_string())),
                ("fmt".to_string(), Some("Mat".to_string())),
                ("push_frame".to_string(), Some("Sink".to_string())),
                ("flush".to_string(), Some("Sink".to_string())),
            ],
            "{items:#?}"
        );
        assert!(items[4].body.is_none(), "trait declaration is bodyless");
        assert_eq!(items[0].calls.len(), 1);
        assert_eq!(items[0].calls[0].name, "helper");
        assert!(!items[0].has_self && !items[0].in_trait);
        assert!(items[1].has_self && !items[1].in_trait);
        assert!(items[3].has_self && items[3].in_trait);
    }

    #[test]
    fn self_receiver_spellings_are_recognised() {
        let src = "impl M {\n    fn a(self) {}\n    fn b(&self) {}\n    fn c(&mut self) {}\n    \
                   fn d(&'a self) {}\n    fn e(mut self) {}\n    fn f() {}\n    fn g(x: &Self) {}\n}\n";
        let by_self: Vec<bool> = fns(src).iter().map(|f| f.has_self).collect();
        assert_eq!(by_self, [true, true, true, true, true, false, false]);
    }

    #[test]
    fn generic_signatures_parse_through_fn_bounds() {
        let items = fns("fn map<F: Fn(usize) -> f32, T>(f: F, x: T) -> f32 { f(0) }\n");
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].name, "map");
        assert_eq!(
            items[0].calls,
            [CallSite { name: "f".into(), qualifier: None, is_method: false, line: 1 }]
        );
    }

    #[test]
    fn call_classification_distinguishes_method_qualified_free_and_macros() {
        let src =
            "fn f(&self) {\n    self.step(1);\n    Mat::zeros(2);\n    kernels::gemm_ab(3);\n    \
                   helper();\n    panic!(\"not a call\");\n    parse::<u32>(s);\n}\n";
        let items = fns(src);
        let calls = &items[0].calls;
        let view: Vec<(&str, Option<&str>, bool)> =
            calls.iter().map(|c| (c.name.as_str(), c.qualifier.as_deref(), c.is_method)).collect();
        assert_eq!(
            view,
            [
                ("step", None, true),
                ("zeros", Some("Mat"), false),
                ("gemm_ab", Some("kernels"), false),
                ("helper", None, false),
                ("parse", None, false),
            ],
            "{calls:#?}"
        );
    }

    #[test]
    fn self_qualifier_rewrites_to_container() {
        let src = "impl Pool {\n    fn spawn() { Self::build(); }\n    fn build() {}\n}\n";
        let items = fns(src);
        assert_eq!(items[0].calls[0].qualifier.as_deref(), Some("Pool"));
    }

    #[test]
    fn turbofish_with_nested_generics_does_not_swallow_the_call() {
        // Regression: `>>` closing two levels. A shift-style lexer would
        // extend the generic to the `>` comparison and lose the call.
        let src = "fn f(level: usize) -> bool {\n    let g = make_grid::<Vec<Vec<f32>>>();\n    \
                   level > g.len()\n}\n";
        let items = fns(src);
        let names: Vec<&str> = items[0].calls.iter().map(|c| c.name.as_str()).collect();
        assert!(names.contains(&"make_grid"), "{:#?}", items[0].calls);
        assert!(names.contains(&"len"), "{:#?}", items[0].calls);
    }

    #[test]
    fn test_items_are_flagged() {
        let src = "fn live() {}\n#[cfg(test)]\nmod t {\n    fn helper() {}\n}\n";
        let items = fns(src);
        assert!(!items[0].is_test);
        assert!(items[1].is_test);
    }
}
