//! The per-file (lexical) rule families: accumulation-order (no-FMA),
//! no-panic decision path, hot-path allocation audit, determinism, and the
//! unsafe inventory. The call-graph (transitive) families live in
//! [`crate::transitive`] and share this module's allow/audit machinery.
//!
//! All rules run over the **masked** source (see [`crate::scan`]) so a
//! forbidden token inside a string or comment can never trip a rule — and,
//! symmetrically, a `SAFETY:` justification is only ever read from real
//! comment text.

use crate::scan::{is_ident, next_token, token_offsets, Directive, SourceFile};

/// One rule violation, pointing at a file and line.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Rule family short name (`fma`, `panic`, `alloc`, `determinism`,
    /// `unsafe`, `hot-path`, `directive`).
    pub rule: &'static str,
    /// What went wrong and, where useful, how to fix it.
    pub message: String,
    /// For transitive diagnostics: the call chain from the root to the
    /// offending site, each element `name (file:line)`. Empty for lexical
    /// diagnostics.
    pub chain: Vec<String>,
}

/// One `// lint: allow(...)` escape hatch that actually suppressed a
/// diagnostic — inventoried so reviewers can audit every exemption.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct UsedAllow {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the allow comment.
    pub line: usize,
    /// Rule family it suppresses.
    pub rule: String,
    /// The justification given.
    pub reason: String,
}

/// One `unsafe` site for the inventory.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct UnsafeSite {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the `unsafe` token.
    pub line: usize,
    /// Byte offset of the `unsafe` token (used to attribute the site to
    /// its enclosing fn for the reachability column; not rendered).
    pub offset: usize,
    /// `block`, `fn`, `impl`, or `trait`.
    pub kind: &'static str,
    /// First line of the justifying `SAFETY:` comment (or `# Safety` doc
    /// section), without the comment introducer.
    pub justification: String,
    /// Which hot-path / decision-path roots reach the enclosing fn —
    /// filled by the call-graph pass, rendered as the inventory's
    /// reachability column. Empty until computed.
    pub reach: String,
}

/// Everything one file contributes to the report.
#[derive(Debug, Default)]
pub struct FileFindings {
    /// Violations.
    pub diagnostics: Vec<Diagnostic>,
    /// Exercised escape hatches.
    pub allows: Vec<UsedAllow>,
    /// Unsafe inventory entries.
    pub unsafe_sites: Vec<UnsafeSite>,
}

/// Tracks which `allow` directives exist and which got used, so unused
/// allows (stale exemptions) can be flagged. One table per file; the
/// transitive passes consume from the same tables as the lexical ones, so
/// finalization (the stale-allow sweep) must run only after **every** pass
/// is done — see [`finalize_allows`].
pub struct AllowTable {
    /// (line, rule, reason, used)
    entries: Vec<(usize, String, String, bool)>,
}

impl AllowTable {
    /// Collects the file's `allow` directives into a fresh table.
    pub fn new(file: &SourceFile) -> Self {
        let entries = file
            .directives
            .iter()
            .filter_map(|d| match d {
                Directive::Allow { line, rule, reason } => {
                    Some((*line, rule.clone(), reason.clone(), false))
                }
                _ => None,
            })
            .collect();
        Self { entries }
    }

    /// Consumes an allow for `rule` covering `line` (the allow sits on the
    /// same line or the line directly above). A same-line allow is
    /// preferred over one on the line above, so stacked allows on adjacent
    /// lines each suppress their own line's diagnostics rather than one
    /// shadowing the other into a false "unused" report. Returns the
    /// reason if found.
    pub fn consume(&mut self, rule: &str, line: usize) -> Option<String> {
        for same_line_pass in [true, false] {
            for (allow_line, allow_rule, reason, used) in &mut self.entries {
                let covers =
                    if same_line_pass { *allow_line == line } else { *allow_line + 1 == line };
                if allow_rule == rule && covers {
                    *used = true;
                    return Some(reason.clone());
                }
            }
        }
        None
    }
}

/// Known rule names an `allow(...)` may target. `fma` is deliberately
/// absent: the accumulation-order contract has no escape hatch.
const ALLOWABLE_RULES: &[&str] = &["panic", "alloc", "determinism", "hot-path"];

/// Which rule families apply to one file (derived from `lint.toml`
/// scopes).
#[derive(Debug, Clone, Copy, Default)]
pub struct FileScope {
    /// Accumulation-order (no-FMA) rule.
    pub fma: bool,
    /// No-panic decision-path rule (lexical; also marks the file's fns as
    /// decision-path roots for the transitive pass).
    pub panic: bool,
    /// Determinism rule (bit-exactness-scoped code).
    pub determinism: bool,
}

/// Runs the lexical rule families over one file, consuming from `allows`
/// but **not** finalizing it — the transitive passes still get to consume.
pub fn lexical_pass(
    file: &SourceFile,
    scope: FileScope,
    allows: &mut AllowTable,
    out: &mut FileFindings,
) {
    check_directives(file, out);
    if scope.fma {
        check_fma(file, out);
    }
    if scope.panic {
        check_panic(file, allows, out);
    }
    if scope.determinism {
        check_determinism(file, allows, out);
    }
    check_hot_paths(file, allows, out);
    check_unsafe(file, out);
}

/// Emits the allow audit trail and flags stale exemptions. Stale
/// exemptions are themselves violations: an allow that suppresses nothing
/// hides a remediation that already happened.
pub fn finalize_allows(rel: &str, allows: AllowTable, out: &mut FileFindings) {
    for (line, rule, reason, used) in allows.entries {
        if used {
            out.allows.push(UsedAllow { file: rel.to_string(), line, rule, reason });
        } else {
            out.diagnostics.push(Diagnostic {
                file: rel.to_string(),
                line,
                rule: "directive",
                message: format!("unused `lint: allow({rule})` — remove the stale exemption"),
                chain: Vec::new(),
            });
        }
    }
}

/// Runs every lexical rule family over one file in isolation (no
/// call-graph context) and finalizes its allows. This is the entry the
/// single-file fixture tests use; the tree pipeline in [`crate::check_tree`]
/// runs [`lexical_pass`] and the transitive passes before finalizing.
pub fn check_file(file: &SourceFile, scope: FileScope) -> FileFindings {
    let mut out = FileFindings::default();
    let mut allows = AllowTable::new(file);
    lexical_pass(file, scope, &mut allows, &mut out);
    finalize_allows(&file.rel, allows, &mut out);
    out.diagnostics.sort();
    out
}

/// Flags malformed directives and allows naming unknown rules.
fn check_directives(file: &SourceFile, out: &mut FileFindings) {
    for d in &file.directives {
        match d {
            Directive::Malformed { line, message } => out.diagnostics.push(Diagnostic {
                file: file.rel.clone(),
                line: *line,
                rule: "directive",
                message: message.clone(),
                chain: Vec::new(),
            }),
            Directive::Allow { line, rule, .. } if !ALLOWABLE_RULES.contains(&rule.as_str()) => {
                out.diagnostics.push(Diagnostic {
                    file: file.rel.clone(),
                    line: *line,
                    rule: "directive",
                    message: format!(
                        "allow({rule}) targets an unknown or unallowable rule \
                         (allowable: panic, alloc, determinism, hot-path; fma has no escape hatch)"
                    ),
                    chain: Vec::new(),
                });
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 1: accumulation-order contract (no FMA, no fast-math)
// ---------------------------------------------------------------------------

/// Substrings whose presence in masked code means the serial
/// ascending-k accumulation order can no longer be bit-exact across
/// backends. Substring (not token) matching is deliberate: it catches
/// `_mm256_fmadd_ps`, `vfmaq_f32`, `simd_fma`, future-width variants, and
/// any wrapper someone names after the operation.
const FMA_PATTERNS: &[&str] = &[
    "fmadd",
    "fmsub",
    "fnmadd",
    "fnmsub",
    "vfma",
    "vfms",
    "mul_add",
    "fadd_fast",
    "fsub_fast",
    "fmul_fast",
    "fdiv_fast",
    "frem_fast",
    "fast_math",
    "ffast-math",
];

/// The FMA rule covers the whole file — tests included — and has no allow:
/// a fused multiply-add in a test helper would still let an incorrect
/// kernel pass a bit-exactness comparison against itself.
fn check_fma(file: &SourceFile, out: &mut FileFindings) {
    for pat in FMA_PATTERNS {
        let mut from = 0usize;
        while let Some(pos) = file.masked[from..].find(pat) {
            let at = from + pos;
            out.diagnostics.push(Diagnostic {
                file: file.rel.clone(),
                line: file.line_of(at),
                rule: "fma",
                message: format!(
                    "`{pat}` breaks the serial ascending-k accumulation contract \
                     (bit-exactness across scalar/AVX2/NEON); no allow exists for this rule"
                ),
                chain: Vec::new(),
            });
            from = at + pat.len();
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 2: no-panic decision path
// ---------------------------------------------------------------------------

/// Macros that abort the decision path. `assert!`/`debug_assert!` are
/// deliberately not listed: they are the sanctioned loud-invariant
/// mechanism (DESIGN.md §8).
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Methods that panic on the error/none case.
const PANIC_METHODS: &[&str] = &[".unwrap(", ".unwrap_err(", ".expect(", ".expect_err("];

fn check_panic(file: &SourceFile, allows: &mut AllowTable, out: &mut FileFindings) {
    let masked = &file.masked;
    let b = masked.as_bytes();
    let mut flag = |at: usize, what: String, out: &mut FileFindings| {
        if file.in_test(at) {
            return;
        }
        let line = file.line_of(at);
        if allows.consume("panic", line).is_some() {
            return;
        }
        out.diagnostics.push(Diagnostic {
            file: file.rel.clone(),
            line,
            rule: "panic",
            message: format!(
                "{what} in a decision path — propagate a typed error or justify with \
                 `// lint: allow(panic, reason = \"...\")`"
            ),
            chain: Vec::new(),
        });
    };

    for mac in PANIC_MACROS {
        for at in token_offsets(masked, mac) {
            // Only the macro form: `panic!`, possibly with whitespace.
            if let Some((_, c)) = next_token(b, at + mac.len()) {
                if c == b'!' {
                    flag(at, format!("`{mac}!`"), out);
                }
            }
        }
    }

    for method in PANIC_METHODS {
        let mut from = 0usize;
        while let Some(pos) = masked[from..].find(method) {
            let at = from + pos;
            flag(at, format!("`{}()`", &method[1..method.len() - 1]), out);
            from = at + method.len();
        }
    }

    check_indexing(file, allows, out);
}

/// Keywords that legitimately precede `[` without it being an index
/// expression (array literals / types / patterns).
const PRE_BRACKET_KEYWORDS: &[&str] = &[
    "mut", "in", "return", "break", "dyn", "as", "ref", "move", "else", "if", "match", "const",
    "let",
];

/// Flags `expr[...]` indexing (which panics out-of-bounds) outside tests.
/// An index expression is a `[` directly preceded (modulo whitespace) by an
/// identifier byte, `)`, `]`, or `?` — and the preceding word, if any, is
/// not a keyword introducing an array literal/type.
fn check_indexing(file: &SourceFile, allows: &mut AllowTable, out: &mut FileFindings) {
    let b = file.masked.as_bytes();
    for at in 0..b.len() {
        if b[at] != b'[' {
            continue;
        }
        // `vec![` and friends are macro invocations, not indexing.
        let mut p = at;
        while p > 0 && (b[p - 1] as char).is_whitespace() {
            p -= 1;
        }
        if p == 0 {
            continue;
        }
        let prev = b[p - 1];
        if prev == b'!' {
            continue;
        }
        let is_index_base = is_ident(prev) || prev == b')' || prev == b']' || prev == b'?';
        if !is_index_base {
            continue;
        }
        if is_ident(prev) {
            // Word before the bracket: skip keywords (`let x: [u8; 4]` has
            // `:` before, handled above; `return [..]`, `&mut [..]`, ...).
            let mut w = p;
            while w > 0 && is_ident(b[w - 1]) {
                w -= 1;
            }
            let word = &file.masked[w..p];
            if PRE_BRACKET_KEYWORDS.contains(&word) {
                continue;
            }
            // A lifetime is a type position, never an index base
            // (`&'a [u8]`).
            if w > 0 && b[w - 1] == b'\'' {
                continue;
            }
        }
        if file.in_test(at) {
            continue;
        }
        let line = file.line_of(at);
        if allows.consume("panic", line).is_some() {
            continue;
        }
        out.diagnostics.push(Diagnostic {
            file: file.rel.clone(),
            line,
            rule: "panic",
            message: "slice/array index can panic out-of-bounds — use `.get()`/iterators or \
                      justify with `// lint: allow(panic, reason = \"...\")`"
                .into(),
            chain: Vec::new(),
        });
    }
}

// ---------------------------------------------------------------------------
// Rule 3: hot-path allocation audit
// ---------------------------------------------------------------------------

/// Patterns that allocate (or strongly suggest allocation) — forbidden in
/// `// lint: hot-path` function bodies. Matched in masked code; `word:`
/// entries require token boundaries.
const ALLOC_SUBSTRINGS: &[&str] = &[
    "Vec::new",
    "vec!",
    ".to_vec(",
    ".clone(",
    "format!",
    "Box::new",
    "Rc::new",
    "Arc::new",
    "String::new",
    ".to_string(",
    ".to_owned(",
    "with_capacity",
    ".collect(",
    ".collect::",
];

fn check_hot_paths(file: &SourceFile, allows: &mut AllowTable, out: &mut FileFindings) {
    for d in &file.directives {
        let Directive::HotPath { line } = d else { continue };
        let tagged = match file.tagged_fn(*line) {
            Ok(t) => t,
            Err(message) => {
                out.diagnostics.push(Diagnostic {
                    file: file.rel.clone(),
                    line: *line,
                    rule: "directive",
                    message,
                    chain: Vec::new(),
                });
                continue;
            }
        };
        let body = &file.masked[tagged.body_start..=tagged.body_end];
        for pat in ALLOC_SUBSTRINGS {
            let mut from = 0usize;
            while let Some(pos) = body[from..].find(pat) {
                let at = tagged.body_start + from + pos;
                from += pos + pat.len();
                if file.in_test(at) {
                    continue;
                }
                let at_line = file.line_of(at);
                if allows.consume("alloc", at_line).is_some() {
                    continue;
                }
                out.diagnostics.push(Diagnostic {
                    file: file.rel.clone(),
                    line: at_line,
                    rule: "alloc",
                    message: format!(
                        "`{pat}` allocates inside hot-path fn `{}` — hoist it to construction \
                         or justify with `// lint: allow(alloc, reason = \"...\")`",
                        tagged.name
                    ),
                    chain: Vec::new(),
                });
            }
        }
    }
}

/// Every (line, pattern) allocation hit in the masked byte span
/// `[start, end]` of `file` — shared by the lexical hot-path audit and
/// the transitive allocation pass.
pub fn alloc_hits(file: &SourceFile, start: usize, end: usize) -> Vec<(usize, &'static str)> {
    let mut out = Vec::new();
    let body = &file.masked[start..=end.min(file.masked.len().saturating_sub(1))];
    for pat in ALLOC_SUBSTRINGS {
        let mut from = 0usize;
        while let Some(pos) = body[from..].find(pat) {
            let at = start + from + pos;
            from += pos + pat.len();
            out.push((file.line_of(at), *pat));
        }
    }
    out.sort_unstable();
    out
}

/// Every (line, what) panic-family hit in the masked byte span of `file`:
/// the panic macros and the panicking `unwrap`/`expect` methods.
/// Deliberately **not** `expr[...]` indexing — indexing is ubiquitous,
/// bounds are usually pinned by construction, and flagging it across the
/// whole conservative reachability closure would drown the audit in
/// unfixable noise; the lexical rule still bans it inside the scoped
/// decision-path files themselves (DESIGN.md §8).
pub fn panic_hits(file: &SourceFile, start: usize, end: usize) -> Vec<(usize, String)> {
    let masked = &file.masked;
    let b = masked.as_bytes();
    let mut out = Vec::new();
    for mac in PANIC_MACROS {
        for at in token_offsets(masked, mac) {
            if at < start || at > end {
                continue;
            }
            if let Some((_, c)) = next_token(b, at + mac.len()) {
                if c == b'!' {
                    out.push((file.line_of(at), format!("`{mac}!`")));
                }
            }
        }
    }
    for method in PANIC_METHODS {
        let mut from = start;
        while let Some(pos) = masked[from..=end].find(method) {
            let at = from + pos;
            out.push((file.line_of(at), format!("`{}()`", &method[1..method.len() - 1])));
            from = at + method.len();
            if from > end {
                break;
            }
        }
    }
    out.sort_unstable();
    out
}

// ---------------------------------------------------------------------------
// Rule 4: determinism (bit-exactness-scoped code)
// ---------------------------------------------------------------------------

/// Patterns that smuggle nondeterminism into bit-exactness-scoped code,
/// with the reason each one breaks replay equality. Matched lexically in
/// masked non-test code of `[determinism]`-scoped files.
const DETERMINISM_PATTERNS: &[(&str, &str)] = &[
    ("HashMap", "iteration order is randomized per process — use BTreeMap or a Vec"),
    ("HashSet", "iteration order is randomized per process — use BTreeSet or a sorted Vec"),
    ("Instant::now", "a wall-clock value flowing into a decision breaks replay bit-equality"),
    ("SystemTime::now", "a wall-clock value flowing into a decision breaks replay bit-equality"),
    (".sum(", "iterator reduction hides the accumulation order — write the serial ascending loop"),
    (
        ".sum::<",
        "iterator reduction hides the accumulation order — write the serial ascending loop",
    ),
    (".product(", "iterator reduction hides the accumulation order — write the serial loop"),
    (".product::<", "iterator reduction hides the accumulation order — write the serial loop"),
    ("from_entropy", "OS-entropy seeding makes every run different — thread a fixed seed"),
    ("thread_rng", "OS-entropy seeding makes every run different — thread a fixed seed"),
];

/// Every bit-equality gate (`repro_serve --smoke`, the quant digest, fleet
/// equivalence) silently depends on scoped code never iterating a hashed
/// container, never deriving decisions from the clock, and never
/// reassociating float reductions. Tests are exempt: the runtime property
/// is about serving code, and test oracles are pinned by the no-FMA rule
/// where reassociation could mask a kernel bug.
fn check_determinism(file: &SourceFile, allows: &mut AllowTable, out: &mut FileFindings) {
    for (pat, why) in DETERMINISM_PATTERNS {
        let mut from = 0usize;
        while let Some(pos) = file.masked[from..].find(pat) {
            let at = from + pos;
            from = at + pat.len();
            // Token-boundary check for identifier-shaped pattern edges so
            // e.g. `HashMapLike` or a longer method name never matches.
            let b = file.masked.as_bytes();
            let first = pat.as_bytes()[0];
            let last = pat.as_bytes()[pat.len() - 1];
            if is_ident(first) && at > 0 && is_ident(b[at - 1]) {
                continue;
            }
            if is_ident(last) && at + pat.len() < b.len() && is_ident(b[at + pat.len()]) {
                continue;
            }
            if file.in_test(at) {
                continue;
            }
            let line = file.line_of(at);
            if allows.consume("determinism", line).is_some() {
                continue;
            }
            out.diagnostics.push(Diagnostic {
                file: file.rel.clone(),
                line,
                rule: "determinism",
                message: format!(
                    "`{pat}` in bit-exactness-scoped code: {why}; or justify with \
                     `// lint: allow(determinism, reason = \"...\")`"
                ),
                chain: Vec::new(),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 5: unsafe inventory
// ---------------------------------------------------------------------------

/// Classifies and justifies every `unsafe` token. Covers tests too: the
/// counting-allocator test harness carries unsafe code the inventory must
/// list.
fn check_unsafe(file: &SourceFile, out: &mut FileFindings) {
    let masked = &file.masked;
    let b = masked.as_bytes();
    for at in token_offsets(masked, "unsafe") {
        let Some((_, next)) = next_token(b, at + "unsafe".len()) else { continue };
        let kind = match next {
            b'{' => "block",
            _ => {
                let rest = &masked[at + "unsafe".len()..];
                let word_start = rest.len() - rest.trim_start().len();
                let word = rest[word_start..]
                    .split(|c: char| !(c == '_' || c.is_ascii_alphanumeric()))
                    .next()
                    .unwrap_or("");
                match word {
                    "fn" => "fn",
                    "impl" => "impl",
                    "trait" => "trait",
                    // `unsafe extern "C"` etc. — inventory as a block-level
                    // site; still needs a justification.
                    _ => "block",
                }
            }
        };
        let line = file.line_of(at);
        // `unsafe impl`/`unsafe trait` carry their obligation at the impl
        // head; `unsafe fn` may use a `# Safety` doc section instead of a
        // SAFETY comment (rustdoc convention).
        let accept_doc_safety = kind == "fn" || kind == "impl" || kind == "trait";
        match find_justification(file, line, accept_doc_safety) {
            Some(justification) => out.unsafe_sites.push(UnsafeSite {
                file: file.rel.clone(),
                line,
                offset: at,
                kind,
                justification,
                reach: String::new(),
            }),
            None => out.diagnostics.push(Diagnostic {
                file: file.rel.clone(),
                line,
                rule: "unsafe",
                message: format!(
                    "unsafe {kind} without a `SAFETY:` comment{} — state the invariant that \
                     makes it sound",
                    if accept_doc_safety { " (or `# Safety` doc section)" } else { "" }
                ),
                chain: Vec::new(),
            }),
        }
    }
}

/// Finds the justifying comment for an unsafe site on `line`: a `SAFETY:`
/// marker in the same-line comment, or in the contiguous run of
/// comment/attribute/blank lines directly above. For items,
/// a `# Safety` doc heading also qualifies.
fn find_justification(file: &SourceFile, line: usize, accept_doc: bool) -> Option<String> {
    let extract = |comment: &str| -> Option<String> {
        if let Some(pos) = comment.find("SAFETY:") {
            let text = comment[pos + "SAFETY:".len()..].trim();
            return Some(if text.is_empty() { "SAFETY".into() } else { text.to_string() });
        }
        if accept_doc {
            if let Some(pos) = comment.find("# Safety") {
                let text = comment[pos + "# Safety".len()..].trim();
                return Some(if text.is_empty() {
                    "# Safety (doc section)".into()
                } else {
                    text.to_string()
                });
            }
        }
        None
    };

    // Same line first (trailing `// SAFETY: ...`).
    let same = file.comment_text(line);
    if !same.is_empty() {
        if let Some(j) = extract(same) {
            return Some(j);
        }
    }
    // Walk upward through comments, attributes, and blank lines. Attributes
    // matter: `#[target_feature(...)]` commonly sits between an unsafe fn
    // and its `# Safety` docs.
    let mut l = line;
    let mut best: Option<String> = None;
    while l > 1 {
        l -= 1;
        let code = file.code_text(l).trim();
        let comment = file.comment_text(l);
        let is_attr = code.starts_with("#[") || code.starts_with("#![");
        if !code.is_empty() && !is_attr {
            break;
        }
        if !comment.is_empty() {
            if let Some(j) = extract(comment) {
                // Keep walking: the *first* line of a multi-line SAFETY
                // comment is the one we want, and it is the highest match.
                best = Some(j);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::SourceFile;

    fn findings(src: &str, fma: bool, panic: bool) -> FileFindings {
        let scope = FileScope { fma, panic, determinism: false };
        check_file(&SourceFile::new("t.rs".into(), src.into()), scope)
    }

    fn det_findings(src: &str) -> FileFindings {
        let scope = FileScope { determinism: true, ..FileScope::default() };
        check_file(&SourceFile::new("t.rs".into(), src.into()), scope)
    }

    #[test]
    fn fma_rule_fires_on_intrinsics_and_mul_add_only_in_code() {
        let f = findings("let y = _mm256_fmadd_ps(a, b, c);\n", true, false);
        assert_eq!(f.diagnostics.len(), 1);
        assert_eq!(f.diagnostics[0].rule, "fma");
        let f =
            findings("// never use _mm256_fmadd_ps here\nlet x = a.mul_add(b, c);\n", true, false);
        assert_eq!(f.diagnostics.len(), 1, "comment mention must not fire: {:?}", f.diagnostics);
        assert_eq!(f.diagnostics[0].line, 2);
    }

    #[test]
    fn panic_rule_flags_macros_methods_and_indexing_outside_tests() {
        let src = "fn f(v: &[u8]) -> u8 {\n    let x = v[0];\n    v.get(1).unwrap()\n}\n\
                   #[cfg(test)]\nmod t { fn g(v: &[u8]) { v[0]; v.iter().next().unwrap(); } }\n";
        let f = findings(src, false, true);
        let rules: Vec<_> = f.diagnostics.iter().map(|d| (d.rule, d.line)).collect();
        assert_eq!(rules, [("panic", 2), ("panic", 3)], "{:?}", f.diagnostics);
    }

    #[test]
    fn unwrap_or_is_not_flagged() {
        let f = findings("fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }\n", false, true);
        assert!(f.diagnostics.is_empty(), "{:?}", f.diagnostics);
    }

    #[test]
    fn patterns_and_types_are_not_index_expressions() {
        // `let` destructuring and lifetime-qualified slice types both put
        // an identifier before `[` without any indexing happening.
        let src = "fn f(v: kinematics::Vec3, s: &'a [u8]) {\n    \
                   let [x, y, z] = v.to_array();\n    let _ = (x, y, z, s);\n}\n";
        let f = findings(src, false, true);
        assert!(f.diagnostics.is_empty(), "{:?}", f.diagnostics);
    }

    #[test]
    fn allow_suppresses_and_is_inventoried_and_unused_allow_fires() {
        let src =
            "fn f(v: &[u8]) -> u8 {\n    // lint: allow(panic, reason = \"len checked\")\n    \
                   v[0]\n}\n// lint: allow(panic, reason = \"stale\")\nfn g() {}\n";
        let f = findings(src, false, true);
        assert_eq!(f.allows.len(), 1);
        assert_eq!(f.allows[0].reason, "len checked");
        assert_eq!(f.diagnostics.len(), 1);
        assert!(f.diagnostics[0].message.contains("unused"));
    }

    #[test]
    fn hot_path_rule_audits_tagged_body_only() {
        let src = "// lint: hot-path\nfn hot(&mut self) { self.buf.clone(); }\n\
                   fn cold() { Vec::<u8>::new(); }\n";
        let f = findings(src, false, false);
        assert_eq!(f.diagnostics.len(), 1, "{:?}", f.diagnostics);
        assert_eq!(f.diagnostics[0].rule, "alloc");
        assert_eq!(f.diagnostics[0].line, 2);
    }

    #[test]
    fn unsafe_needs_safety_and_doc_safety_counts_for_fns() {
        let bare =
            findings("fn f() { unsafe { core::hint::unreachable_unchecked() } }\n", false, false);
        assert_eq!(bare.diagnostics.iter().filter(|d| d.rule == "unsafe").count(), 1);
        let ok = findings(
            "fn f() {\n    // SAFETY: pointer is valid for the call\n    unsafe { g() }\n}\n",
            false,
            false,
        );
        assert!(ok.diagnostics.is_empty(), "{:?}", ok.diagnostics);
        assert_eq!(ok.unsafe_sites.len(), 1);
        assert_eq!(ok.unsafe_sites[0].justification, "pointer is valid for the call");
        let doc = findings(
            "/// Does things.\n///\n/// # Safety\n///\n/// Caller upholds X.\n\
             #[target_feature(enable = \"avx2\")]\npub unsafe fn g() {}\n",
            false,
            false,
        );
        assert!(doc.diagnostics.is_empty(), "{:?}", doc.diagnostics);
        assert_eq!(doc.unsafe_sites[0].kind, "fn");
    }

    #[test]
    fn determinism_rule_flags_hashed_iteration_clocks_and_reductions() {
        let src = "use std::collections::HashMap;\n\
                   fn f(xs: &[f32]) -> f32 {\n    let t = Instant::now();\n    \
                   let _ = t;\n    xs.iter().sum::<f32>()\n}\n\
                   #[cfg(test)]\nmod t { fn g(xs: &[f32]) -> f32 { xs.iter().sum() } }\n";
        let f = det_findings(src);
        let hits: Vec<_> = f.diagnostics.iter().map(|d| (d.rule, d.line)).collect();
        assert_eq!(
            hits,
            [("determinism", 1), ("determinism", 3), ("determinism", 5)],
            "{:?}",
            f.diagnostics
        );
    }

    #[test]
    fn determinism_allow_and_token_boundaries_work() {
        let src = "struct HashMapLike;\nfn f(lanes: &[i32]) -> i32 {\n    \
                   // lint: allow(determinism, reason = \"integer sum is exact in any order\")\n    \
                   lanes.iter().sum()\n}\n";
        let f = det_findings(src);
        assert!(f.diagnostics.is_empty(), "{:?}", f.diagnostics);
        assert_eq!(f.allows.len(), 1);
        assert_eq!(f.allows[0].rule, "determinism");
    }

    #[test]
    fn unsafe_in_identifiers_is_ignored() {
        let f = findings(
            "#![deny(unsafe_op_in_unsafe_fn)]\nlet unsafe_probability = 0.1;\n",
            false,
            false,
        );
        assert!(f.unsafe_sites.is_empty());
        assert!(f.diagnostics.is_empty(), "{:?}", f.diagnostics);
    }
}
