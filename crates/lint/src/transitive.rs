//! The call-graph rule families: transitive hot-path allocation freedom,
//! transitive panic-reachability, tag hygiene (missing/unreachable tags),
//! and the unsafe-inventory reachability column.
//!
//! The lexical rules in [`crate::rules`] audit what a function's own body
//! says; these passes audit what it can *reach*. Roots:
//!
//! * **hot-path roots** — every `// lint: hot-path`-tagged fn;
//! * **decision-path roots** — every non-test fn defined in a
//!   `[panic]`-scoped file (`reactor`, `core::serve`, `core::engine`,
//!   `faults::fleet`, `ingress::{codec,server}`).
//!
//! Resolution is the conservative name-based over-approximation described
//! in [`crate::graph`]: a diagnostic here may name a chain that dynamic
//! dispatch would never take, but no chain that exists can be missed.
//! Every diagnostic carries its call chain so an allow's reason can be
//! judged against the actual route.

use std::collections::BTreeSet;

use crate::config::Config;
use crate::graph::CallGraph;
use crate::reach::Reachability;
use crate::rules::{alloc_hits, panic_hits, AllowTable, Diagnostic, FileFindings};
use crate::scan::{Directive, SourceFile};

/// The computed reachability closures, kept for the inventory column.
pub struct TransitiveInfo {
    /// Closure from the hot-path roots.
    pub hot: Reachability,
    /// Closure from the decision-path roots.
    pub decision: Reachability,
    /// Def indices of the hot-path roots (tagged fns).
    pub hot_roots: Vec<usize>,
    /// Def indices of the decision-path roots.
    pub decision_roots: Vec<usize>,
}

/// Runs every call-graph pass. `files`, `allows` are parallel to the
/// workspace file list; `graph` was built from the same files.
pub fn run(
    files: &[SourceFile],
    graph: &CallGraph,
    cfg: &Config,
    allows: &mut [AllowTable],
    out: &mut FileFindings,
) -> TransitiveInfo {
    let rels: Vec<String> = files.iter().map(|f| f.rel.clone()).collect();

    // --- Root discovery -----------------------------------------------
    let mut hot_roots: Vec<usize> = Vec::new();
    let mut tagged: BTreeSet<usize> = BTreeSet::new();
    for (fi, file) in files.iter().enumerate() {
        for d in &file.directives {
            let Directive::HotPath { line } = d else { continue };
            // The tagged fn: first def in this file at/after the tag line.
            let def = graph
                .defs
                .iter()
                .enumerate()
                .filter(|(_, d)| d.file == fi && d.item.line >= *line)
                .min_by_key(|(_, d)| d.item.line);
            let Some((di, def)) = def else { continue }; // dangling tag: lexical rule reports it
            if def.item.is_test {
                out.diagnostics.push(Diagnostic {
                    file: file.rel.clone(),
                    line: *line,
                    rule: "hot-path",
                    message: format!(
                        "unreachable `lint: hot-path` tag: fn `{}` is test-only code, so the \
                         tag audits nothing in production — remove it",
                        def.item.name
                    ),
                    chain: Vec::new(),
                });
                continue;
            }
            if tagged.insert(di) {
                hot_roots.push(di);
            }
        }
    }
    let decision_roots: Vec<usize> = graph
        .defs
        .iter()
        .enumerate()
        .filter(|(_, d)| !d.item.is_test && crate::in_scope(&rels[d.file], &cfg.panic_paths))
        .map(|(i, _)| i)
        .collect();

    let hot = Reachability::compute(graph, &hot_roots);
    let decision = Reachability::compute(graph, &decision_roots);

    // --- Transitive hot-path allocation freedom -----------------------
    for (di, def) in graph.defs.iter().enumerate() {
        if !hot.reached(di) || tagged.contains(&di) || def.item.is_test {
            continue;
        }
        let Some((bs, be)) = def.item.body else { continue };
        let file = &files[def.file];
        for (line, pat) in alloc_hits(file, bs, be) {
            if allows[def.file].consume("alloc", line).is_some() {
                continue;
            }
            let chain = Reachability::render_chain(graph, &rels, &hot.chain_to(di, line));
            out.diagnostics.push(Diagnostic {
                file: file.rel.clone(),
                line,
                rule: "alloc",
                message: format!(
                    "`{pat}` allocates in fn `{}`, which is reachable from hot-path root \
                     `{}` — hoist it, or justify with `// lint: allow(alloc, reason = \"...\")`; \
                     chain: {}",
                    def.item.qualified_name(),
                    root_name(graph, &hot.chain_to(di, line)),
                    chain.join(" -> ")
                ),
                chain,
            });
        }
    }

    // --- Missing-tag-on-reachable-callee ------------------------------
    // A hot-path fn's *unambiguously resolved* direct callee should carry
    // the tag itself, so the lexical per-body audit covers it and the tag
    // set stays closed under the call relation. Ambiguous (sprayed)
    // resolutions are exempt — demanding tags across a conservative
    // over-approximation would force tags onto unrelated same-named fns.
    let mut flagged: BTreeSet<(usize, usize)> = BTreeSet::new();
    for &t in &hot_roots {
        let caller = &graph.defs[t];
        let ncalls = caller.item.calls.len();
        for call_i in 0..ncalls {
            let candidates: Vec<_> = graph.edges[t].iter().filter(|e| e.call == call_i).collect();
            if candidates.len() != 1 {
                continue;
            }
            let e = candidates[0];
            let g = &graph.defs[e.to];
            if g.item.is_test || g.item.body.is_none() || tagged.contains(&e.to) {
                continue;
            }
            if !flagged.insert((t, e.to)) {
                continue;
            }
            if allows[caller.file].consume("hot-path", e.line).is_some() {
                continue;
            }
            out.diagnostics.push(Diagnostic {
                file: rels[caller.file].clone(),
                line: e.line,
                rule: "hot-path",
                message: format!(
                    "hot-path fn `{}` calls `{}` ({}:{}), which is not tagged \
                     `// lint: hot-path` — tag the callee so its body is audited, or justify \
                     the call with `// lint: allow(hot-path, reason = \"...\")`",
                    caller.item.qualified_name(),
                    g.item.qualified_name(),
                    rels[g.file],
                    g.item.line
                ),
                chain: Vec::new(),
            });
        }
    }

    // --- Transitive panic-reachability --------------------------------
    // Sites inside the scoped files are owned by the stricter lexical
    // rule (which also bans indexing); this pass extends the macro and
    // unwrap/expect families to everything those files can reach.
    for (di, def) in graph.defs.iter().enumerate() {
        if !decision.reached(di) || def.item.is_test {
            continue;
        }
        if crate::in_scope(&rels[def.file], &cfg.panic_paths) {
            continue;
        }
        let Some((bs, be)) = def.item.body else { continue };
        let file = &files[def.file];
        for (line, what) in panic_hits(file, bs, be) {
            if allows[def.file].consume("panic", line).is_some() {
                continue;
            }
            let chain = Reachability::render_chain(graph, &rels, &decision.chain_to(di, line));
            out.diagnostics.push(Diagnostic {
                file: file.rel.clone(),
                line,
                rule: "panic",
                message: format!(
                    "{what} in fn `{}` is reachable from decision-path root `{}` — propagate \
                     a typed error or justify with `// lint: allow(panic, reason = \"...\")`; \
                     chain: {}",
                    def.item.qualified_name(),
                    root_name(graph, &decision.chain_to(di, line)),
                    chain.join(" -> ")
                ),
                chain,
            });
        }
    }

    TransitiveInfo { hot, decision, hot_roots, decision_roots }
}

/// The qualified name of the chain's root (first element).
fn root_name(graph: &CallGraph, chain: &[(usize, usize)]) -> String {
    chain.first().map(|&(d, _)| graph.defs[d].item.qualified_name()).unwrap_or_default()
}

/// Renders the inventory reachability cell for the fn enclosing an unsafe
/// site: which hot-path and decision-path roots reach it. Deterministic;
/// lists the two lexicographically-first root names per category plus a
/// count for the rest.
pub fn reach_cell(graph: &CallGraph, info: &TransitiveInfo, file: usize, offset: usize) -> String {
    let Some(d) = graph.enclosing_def(file, offset) else {
        return "item-level (no enclosing fn)".into();
    };
    if graph.defs[d].item.is_test {
        return "test-only".into();
    }
    let mut parts = Vec::new();
    for (label, reach) in [("hot-path", &info.hot), ("decision", &info.decision)] {
        let mut names: Vec<String> = reach
            .roots_reaching(d)
            .into_iter()
            .map(|r| graph.defs[r].item.qualified_name())
            .collect();
        if names.is_empty() {
            continue;
        }
        names.sort();
        names.dedup();
        let shown = names.len().min(2);
        let mut cell = names[..shown].join(", ");
        if names.len() > shown {
            cell.push_str(&format!(" +{}", names.len() - shown));
        }
        parts.push(format!("{label}: {cell}"));
    }
    if parts.is_empty() {
        "unreached".into()
    } else {
        parts.join(" · ")
    }
}

/// Test-only helper: whether `def` (by qualified name) is reachable from
/// the hot roots — used by the fixture self-tests to pin closure shape.
pub fn hot_reaches(graph: &CallGraph, info: &TransitiveInfo, qualified: &str) -> bool {
    graph
        .defs
        .iter()
        .enumerate()
        .any(|(i, d)| d.item.qualified_name() == qualified && info.hot.reached(i))
}
