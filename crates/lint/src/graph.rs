//! Workspace call graph with conservative name-based resolution.
//!
//! Nodes are every `fn` item the item parser found; edges are call sites
//! resolved **by name**, over-approximating wherever the lexical view
//! cannot decide (DESIGN.md §8):
//!
//! * `.name(...)` method calls resolve to every *self-taking* method
//!   named `name` in any `impl`/`trait` block in the workspace — receiver
//!   types are invisible lexically, and `dyn`/trait dispatch makes even a
//!   typed resolver over-approximate here. Self-less associated fns are
//!   excluded: Rust only reaches those through `Type::name(...)` syntax,
//!   so dropping them loses no edges;
//! * `Qual::name(...)` qualified calls narrow to methods of containers
//!   named `Qual` when the pair exists. Otherwise, a TitleCase qualifier
//!   is a type or trait: any workspace `impl`/`trait` on it would have
//!   registered the pair, so the only workspace code the call can still
//!   reach is a trait *default* method body named `name` (inherited
//!   without an override); failing that, the target is derived or
//!   external code. A lowercase qualifier is a module path segment and
//!   falls back wide — every def named `name`;
//! * bare `name(...)` calls resolve to every *free* function named
//!   `name` — a bare call can never reach a method, so excluding methods
//!   loses nothing; closure and fn-pointer invocations resolve to the
//!   same-named free fns, and closure *bodies* are audited as part of
//!   the function that defines them.
//!
//! Candidates are additionally filtered by the crate dependency map
//! ([`crate::deps`]): code in crate A can only name items from crates in
//! A's `[dependencies]` closure, so dropping the rest removes only edges
//! the compiler itself would reject.
//!
//! Calls that resolve to nothing are external (std / vendored stand-ins)
//! and terminate the walk. The direction of every approximation is more
//! edges, never fewer: a reachability false **negative** is impossible
//! for workspace-defined code, and every false positive is auditable at
//! the diagnostic it produces.

use std::collections::BTreeMap;

use crate::deps::CrateMap;
use crate::items::FnItem;

/// A node: one `fn` item, tagged with the file it came from.
#[derive(Debug)]
pub struct Def {
    /// Index into the workspace file list.
    pub file: usize,
    /// The parsed item.
    pub item: FnItem,
}

/// One resolved call edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Callee def index.
    pub to: usize,
    /// 1-based line of the call site (in the caller's file).
    pub line: usize,
    /// Index into the caller's `item.calls` — groups the edges one call
    /// site fanned out to, so rules can tell an unambiguous resolution
    /// (one candidate) from a conservative spray.
    pub call: usize,
}

/// The resolved workspace call graph.
#[derive(Debug)]
pub struct CallGraph {
    /// All function defs, in (file, offset) order.
    pub defs: Vec<Def>,
    /// Outgoing resolved edges per def, deduplicated, in call order.
    pub edges: Vec<Vec<Edge>>,
}

impl CallGraph {
    /// Builds the graph with no crate-visibility filtering (every file in
    /// one virtual crate) — the in-memory fixture path.
    pub fn build(per_file: Vec<Vec<FnItem>>) -> Self {
        let file_crate = vec![0; per_file.len()];
        Self::build_with_deps(per_file, &file_crate, &CrateMap::permissive())
    }

    /// Builds the graph from per-file item lists (parallel to the
    /// workspace file list), keeping only edges permitted by the crate
    /// dependency map (`file_crate[i]` is the crate owning file `i`).
    pub fn build_with_deps(
        per_file: Vec<Vec<FnItem>>,
        file_crate: &[usize],
        deps: &CrateMap,
    ) -> Self {
        let mut defs = Vec::new();
        for (file, items) in per_file.into_iter().enumerate() {
            for item in items {
                defs.push(Def { file, item });
            }
        }
        // Name indexes. `free` holds container-less defs; `methods` holds
        // self-taking defs inside impl/trait blocks (the `.name(` targets);
        // `assoc` holds every containered def (the module-path fallback);
        // `trait_defaults` holds bodied trait-block defs (what a qualified
        // call on an unregistered type can still reach); `by_container`
        // narrows qualified calls.
        let mut free: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut assoc: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut trait_defaults: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut by_container: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for (i, d) in defs.iter().enumerate() {
            match &d.item.container {
                Some(c) => {
                    assoc.entry(&d.item.name).or_default().push(i);
                    if d.item.has_self {
                        methods.entry(&d.item.name).or_default().push(i);
                    }
                    if d.item.in_trait && d.item.body.is_some() {
                        trait_defaults.entry(&d.item.name).or_default().push(i);
                    }
                    by_container.entry((c.as_str(), &d.item.name)).or_default().push(i);
                }
                None => free.entry(&d.item.name).or_default().push(i),
            }
        }
        let mut edges: Vec<Vec<Edge>> = Vec::with_capacity(defs.len());
        for d in &defs {
            let caller_crate = file_crate[d.file];
            let mut out: Vec<Edge> = Vec::new();
            for (call_i, call) in d.item.calls.iter().enumerate() {
                let name = call.name.as_str();
                let mut targets: Vec<usize> = if let Some(q) = &call.qualifier {
                    match by_container.get(&(q.as_str(), name)) {
                        Some(t) => t.clone(),
                        // TitleCase qualifier = type/trait with no such
                        // member in the workspace: only an inherited trait
                        // default body can still be the target (see module
                        // docs). Lowercase = module path: fall back wide.
                        None if q.starts_with(|c: char| c.is_ascii_uppercase()) => {
                            trait_defaults.get(name).cloned().unwrap_or_default()
                        }
                        None => free
                            .get(name)
                            .into_iter()
                            .chain(assoc.get(name))
                            .flatten()
                            .copied()
                            .collect(),
                    }
                } else if call.is_method {
                    methods.get(name).cloned().unwrap_or_default()
                } else {
                    free.get(name).cloned().unwrap_or_default()
                };
                targets.retain(|&t| deps.visible(caller_crate, file_crate[defs[t].file]));
                for t in targets {
                    let e = Edge { to: t, line: call.line, call: call_i };
                    if !out.contains(&e) {
                        out.push(e);
                    }
                }
            }
            edges.push(out);
        }
        Self { defs, edges }
    }

    /// Total edge count (for the report's stats line).
    pub fn edge_count(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }

    /// Defs in `file` whose body span contains byte `offset`, innermost
    /// (latest-starting) first. Used to attribute unsafe sites to their
    /// enclosing function.
    pub fn enclosing_def(&self, file: usize, offset: usize) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, d) in self.defs.iter().enumerate() {
            if d.file != file {
                continue;
            }
            let Some((s, e)) = d.item.body else { continue };
            if offset >= s && offset <= e {
                let better = match best {
                    Some(prev) => self.defs[prev].item.body.map(|(ps, _)| s > ps).unwrap_or(true),
                    None => true,
                };
                if better {
                    best = Some(i);
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_fns;
    use crate::scan::SourceFile;

    fn graph(files: &[&str]) -> CallGraph {
        CallGraph::build(
            files
                .iter()
                .map(|src| parse_fns(&SourceFile::new("t.rs".into(), (*src).into())))
                .collect(),
        )
    }

    fn names_of(g: &CallGraph, from: &str) -> Vec<String> {
        let i = g.defs.iter().position(|d| d.item.name == from).unwrap();
        g.edges[i].iter().map(|e| g.defs[e.to].item.qualified_name()).collect()
    }

    #[test]
    fn bare_calls_resolve_to_free_fns_only() {
        let g = graph(&[
            "fn root() { step(); }\nfn step() {}\n",
            "impl Engine { fn step(&mut self) {} }\n",
        ]);
        assert_eq!(names_of(&g, "root"), ["step"], "bare call must not reach the method");
    }

    #[test]
    fn method_calls_resolve_to_every_impl_conservatively() {
        let g = graph(&[
            "fn root(e: &mut Engine) { e.step(); }\n",
            "impl Engine { fn step(&mut self) {} }\nimpl Pool { fn step(&mut self) {} }\n",
        ]);
        assert_eq!(names_of(&g, "root"), ["Engine::step", "Pool::step"]);
    }

    #[test]
    fn qualified_calls_narrow_to_the_container_when_known() {
        let g = graph(&[
            "fn root() { Mat::zeros(3); kernels::gemm(1); }\n",
            "impl Mat { fn zeros(n: usize) {} }\nimpl Other { fn zeros(n: usize) {} }\nfn gemm(n: usize) {}\n",
        ]);
        assert_eq!(names_of(&g, "root"), ["Mat::zeros", "gemm"]);
    }

    #[test]
    fn receiver_calls_skip_selfless_associated_fns() {
        // `.quantize(` can only dispatch to a method taking `self`;
        // `QNet::quantize(net)` is reachable solely via qualified syntax.
        let g = graph(&[
            "fn root(q: &ActQuant) { q.quantize(0.5); }\n",
            "impl ActQuant { fn quantize(&self, x: f32) {} }\n\
             impl QNet { fn quantize(net: usize) {} }\n",
        ]);
        assert_eq!(names_of(&g, "root"), ["ActQuant::quantize"]);
    }

    #[test]
    fn unknown_type_qualifiers_reach_trait_defaults_only() {
        let g = graph(&[
            "fn root() { Widget::tick(); Vec::with_capacity(4); Derived::default(); }\n",
            "trait Clock { fn tick() { helper(); } }\nfn helper() {}\n\
             impl Adam { fn default() -> usize { 0 } }\n",
        ]);
        // `Widget` has no workspace member `tick` → the inherited trait
        // default is the only candidate; `Vec`/`Derived` resolve to
        // nothing — NOT to the unrelated `Adam::default`.
        assert_eq!(names_of(&g, "root"), ["Clock::tick"]);
    }

    #[test]
    fn external_calls_terminate() {
        let g = graph(&["fn root(v: &mut Vec<u8>) { v.push(1); Vec::with_capacity(4); }\n"]);
        assert_eq!(names_of(&g, "root"), Vec::<String>::new());
    }

    #[test]
    fn dependency_map_gates_cross_crate_edges() {
        let per_file = |srcs: &[&str]| -> Vec<Vec<crate::items::FnItem>> {
            srcs.iter()
                .map(|src| parse_fns(&SourceFile::new("t.rs".into(), (*src).into())))
                .collect()
        };
        let srcs = ["fn root() { step(); }\n", "fn step() {}\n"];
        // a depends on nothing: the same-named free fn in b is invisible.
        let isolated = CrateMap::from_parts(
            vec!["crates/a".into(), "crates/b".into()],
            vec![vec![true, false], vec![false, true]],
        );
        let g = CallGraph::build_with_deps(per_file(&srcs), &[0, 1], &isolated);
        assert_eq!(names_of(&g, "root"), Vec::<String>::new());
        // a depends on b: the edge appears.
        let linked = CrateMap::from_parts(
            vec!["crates/a".into(), "crates/b".into()],
            vec![vec![true, true], vec![false, true]],
        );
        let g = CallGraph::build_with_deps(per_file(&srcs), &[0, 1], &linked);
        assert_eq!(names_of(&g, "root"), ["step"]);
    }

    #[test]
    fn enclosing_def_picks_innermost() {
        let src = "fn outer() {\n    fn inner() { work(); }\n    inner();\n}\n";
        let g = graph(&[src]);
        let off = src.find("work").unwrap();
        let d = g.enclosing_def(0, off).unwrap();
        assert_eq!(g.defs[d].item.name, "inner");
    }
}
