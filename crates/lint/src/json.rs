//! `--json` diagnostics output.
//!
//! The lint crate is dependency-free, so this is a minimal hand-rolled
//! JSON writer — escaping and structure only, no general value model.
//! The schema is stable and versioned so CI consumers (the uploaded
//! artifact) can parse it without tracking linter internals:
//!
//! ```text
//! {
//!   "schema_version": 1,
//!   "files_scanned": N, "defs": N, "edges": N,
//!   "hot_roots": N, "decision_roots": N,
//!   "graph_ms": N, "total_ms": N, "clean": bool,
//!   "diagnostics": [{"rule", "file", "line", "message", "chain": [..]}],
//!   "allows":      [{"rule", "file", "line", "reason"}],
//!   "unsafe_sites":[{"file", "line", "kind", "reach", "justification"}]
//! }
//! ```

use crate::Report;

/// Renders the full report as a JSON document (trailing newline included).
pub fn render(report: &Report) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n");
    out.push_str("  \"schema_version\": 1,\n");
    out.push_str(&format!("  \"files_scanned\": {},\n", report.files_scanned));
    out.push_str(&format!("  \"defs\": {},\n", report.defs));
    out.push_str(&format!("  \"edges\": {},\n", report.edges));
    out.push_str(&format!("  \"hot_roots\": {},\n", report.hot_roots));
    out.push_str(&format!("  \"decision_roots\": {},\n", report.decision_roots));
    out.push_str(&format!("  \"graph_ms\": {},\n", report.graph_ms));
    out.push_str(&format!("  \"total_ms\": {},\n", report.total_ms));
    out.push_str(&format!("  \"clean\": {},\n", report.is_clean()));

    out.push_str("  \"diagnostics\": [");
    for (i, d) in report.diagnostics.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}, \"chain\": [{}]}}",
            string(d.rule),
            string(&d.file),
            d.line,
            string(&d.message),
            d.chain.iter().map(|c| string(c)).collect::<Vec<_>>().join(", ")
        ));
    }
    out.push_str(if report.diagnostics.is_empty() { "],\n" } else { "\n  ],\n" });

    out.push_str("  \"allows\": [");
    for (i, a) in report.allows.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"reason\": {}}}",
            string(&a.rule),
            string(&a.file),
            a.line,
            string(&a.reason)
        ));
    }
    out.push_str(if report.allows.is_empty() { "],\n" } else { "\n  ],\n" });

    out.push_str("  \"unsafe_sites\": [");
    for (i, s) in report.unsafe_sites.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{\"file\": {}, \"line\": {}, \"kind\": {}, \"reach\": {}, \
             \"justification\": {}}}",
            string(&s.file),
            s.line,
            string(s.kind),
            string(&s.reach),
            string(&s.justification)
        ));
    }
    out.push_str(if report.unsafe_sites.is_empty() { "]\n" } else { "\n  ]\n" });
    out.push_str("}\n");
    out
}

/// JSON string literal with the mandatory escapes (RFC 8259 §7).
fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{Diagnostic, UnsafeSite, UsedAllow};

    #[test]
    fn escaping_covers_quotes_backslashes_and_control_bytes() {
        assert_eq!(string("a\"b\\c\nd\te\u{1}"), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn report_renders_all_sections_and_stays_deterministic() {
        let report = Report {
            diagnostics: vec![Diagnostic {
                file: "a.rs".into(),
                line: 3,
                rule: "alloc",
                message: "msg \"quoted\"".into(),
                chain: vec!["root (a.rs:1)".into(), "leaf (a.rs:3)".into()],
            }],
            allows: vec![UsedAllow {
                file: "b.rs".into(),
                line: 9,
                rule: "panic".into(),
                reason: "why".into(),
            }],
            unsafe_sites: vec![UnsafeSite {
                file: "c.rs".into(),
                line: 2,
                offset: 10,
                kind: "block",
                justification: "ptr ok".into(),
                reach: "hot-path: gemm".into(),
            }],
            files_scanned: 3,
            defs: 5,
            edges: 4,
            hot_roots: 1,
            decision_roots: 2,
            graph_ms: 1,
            total_ms: 2,
        };
        let text = render(&report);
        assert!(text.contains("\"schema_version\": 1"));
        assert!(text.contains("\"chain\": [\"root (a.rs:1)\", \"leaf (a.rs:3)\"]"));
        assert!(text.contains("\"reach\": \"hot-path: gemm\""));
        assert!(text.contains("\"clean\": false"));
        assert_eq!(text, render(&report), "must be deterministic");
    }

    #[test]
    fn empty_report_renders_empty_arrays() {
        let text = render(&Report::default());
        assert!(text.contains("\"diagnostics\": [],"));
        assert!(text.contains("\"unsafe_sites\": []\n"));
        assert!(text.contains("\"clean\": true"));
    }
}
