//! CLI front-end: `cargo run -p lint -- --check | --write-inventory`.
//!
//! Exit codes: 0 clean, 1 violations found (or inventory drift in
//! `--check`), 2 usage/config/io error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn run(args: Vec<String>) -> Result<bool, String> {
    let mut check = false;
    let mut write_inventory = false;
    let mut root = default_root();
    let mut config_path: Option<PathBuf> = None;
    let mut json_path: Option<PathBuf> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--write-inventory" => write_inventory = true,
            "--root" => root = PathBuf::from(it.next().ok_or("--root needs a directory argument")?),
            "--config" => {
                config_path =
                    Some(PathBuf::from(it.next().ok_or("--config needs a file argument")?))
            }
            "--json" => {
                json_path = Some(PathBuf::from(it.next().ok_or("--json needs a file argument")?))
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return Ok(true);
            }
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    if !check && !write_inventory {
        return Err(format!("pass --check and/or --write-inventory\n{USAGE}"));
    }

    let cfg = lint::load_config(&root, config_path.as_deref())?;
    let report = lint::check_tree(&root, &cfg)?;

    if let Some(path) = &json_path {
        std::fs::write(path, lint::json::render(&report))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        println!("lint: wrote {}", path.display());
    }

    if write_inventory {
        let path = root.join(&cfg.inventory);
        std::fs::write(&path, report.inventory_markdown())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        println!("lint: wrote {} ({} unsafe sites)", cfg.inventory, report.unsafe_sites.len());
    }

    let mut clean = true;
    if check {
        for d in &report.diagnostics {
            println!("{}:{}: [{}] {}", d.file, d.line, d.rule, d.message);
        }
        if !report.diagnostics.is_empty() {
            clean = false;
        }
        // Drift check only makes sense when not also rewriting the file.
        if !write_inventory {
            let path = root.join(&cfg.inventory);
            let committed = std::fs::read_to_string(&path).unwrap_or_default();
            if committed != report.inventory_markdown() {
                println!(
                    "{}: [unsafe] inventory is stale — run `cargo run -p lint -- \
                     --write-inventory` and commit the diff",
                    cfg.inventory
                );
                clean = false;
            }
        }
        println!(
            "lint: {} files scanned, {} diagnostics, {} allows in use, {} unsafe sites",
            report.files_scanned,
            report.diagnostics.len(),
            report.allows.len(),
            report.unsafe_sites.len()
        );
        println!(
            "lint: call graph: {} defs, {} edges, {} hot-path roots, {} decision-path roots \
             ({} ms graph, {} ms total)",
            report.defs,
            report.edges,
            report.hot_roots,
            report.decision_roots,
            report.graph_ms,
            report.total_ms
        );
        if !report.allows.is_empty() {
            println!("lint: exemptions in use:");
            for a in &report.allows {
                println!("  {}:{}: allow({}) — {}", a.file, a.line, a.rule, a.reason);
            }
        }
    }
    Ok(clean)
}

/// The workspace root: `CARGO_MANIFEST_DIR/../..` when run via cargo, else
/// the current directory.
fn default_root() -> PathBuf {
    match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(dir) => {
            let p = Path::new(&dir);
            p.parent().and_then(Path::parent).map(PathBuf::from).unwrap_or_else(|| p.into())
        }
        Err(_) => PathBuf::from("."),
    }
}

const USAGE: &str = "\
usage: cargo run -p lint -- [--check] [--write-inventory] [--json FILE] [--root DIR] [--config FILE]

  --check            lint the tree (lexical rules + workspace call-graph passes);
                     prints file:line diagnostics with call chains, the allow audit
                     trail, and graph stats; also fails if UNSAFE_INVENTORY.md is stale
  --write-inventory  regenerate UNSAFE_INVENTORY.md (with reachability column) from
                     the current tree
  --json FILE        additionally write the full report as JSON (stable schema v1:
                     diagnostics with chains, allow audit, unsafe inventory, stats)
  --root DIR         workspace root (default: the lint crate's grandparent)
  --config FILE      config path (default: <root>/lint.toml)

exit codes: 0 = clean, 1 = violations or inventory drift, 2 = usage/config/io error
";
