//! Reachability over the call graph: which defs each root set can reach,
//! with predecessor tracking for diagnostic call chains and per-root
//! bitsets for the unsafe inventory's reachability column.

use crate::graph::CallGraph;

/// Reachability closure from one root set.
#[derive(Debug)]
pub struct Reachability {
    /// Root def indices, in the order given (bitset bit order).
    pub roots: Vec<usize>,
    /// For each def: whether it is reachable (roots included).
    reached: Vec<bool>,
    /// For each def: the BFS predecessor `(def, call line)` — `None` for
    /// roots and unreached defs. BFS order makes the recovered chain a
    /// shortest path, so diagnostics show the most direct route.
    pred: Vec<Option<(usize, usize)>>,
    /// For each def: bitset over `roots` of which roots reach it.
    root_bits: Vec<Vec<u64>>,
}

impl Reachability {
    /// Computes the closure of `roots` over `graph`, never traversing
    /// into or out of test-only defs.
    pub fn compute(graph: &CallGraph, roots: &[usize]) -> Self {
        let n = graph.defs.len();
        let words = roots.len().div_ceil(64).max(1);
        let mut reached = vec![false; n];
        let mut pred: Vec<Option<(usize, usize)>> = vec![None; n];
        let mut root_bits = vec![vec![0u64; words]; n];
        let mut queue = std::collections::VecDeque::new();
        for (bit, &r) in roots.iter().enumerate() {
            if graph.defs[r].item.is_test {
                continue;
            }
            reached[r] = true;
            root_bits[r][bit / 64] |= 1 << (bit % 64);
            queue.push_back(r);
        }
        // Phase 1: plain BFS for the reached set + shortest-chain preds.
        while let Some(d) = queue.pop_front() {
            for e in &graph.edges[d] {
                if graph.defs[e.to].item.is_test {
                    continue;
                }
                if !reached[e.to] {
                    reached[e.to] = true;
                    pred[e.to] = Some((d, e.line));
                    queue.push_back(e.to);
                }
            }
        }
        // Phase 2: propagate root bitsets to a fixpoint (a def can be
        // reachable from several roots; the inventory reports all).
        let mut changed = true;
        while changed {
            changed = false;
            for d in 0..n {
                if !reached[d] {
                    continue;
                }
                for e_i in 0..graph.edges[d].len() {
                    let to = graph.edges[d][e_i].to;
                    if graph.defs[to].item.is_test {
                        continue;
                    }
                    let src = root_bits[d].clone();
                    for (dst, word) in root_bits[to].iter_mut().zip(src) {
                        let add = word & !*dst;
                        if add != 0 {
                            *dst |= add;
                            changed = true;
                        }
                    }
                }
            }
        }
        Self { roots: roots.to_vec(), reached, pred, root_bits }
    }

    /// Whether `def` is reachable from any root.
    pub fn reached(&self, def: usize) -> bool {
        self.reached[def]
    }

    /// The roots (as def indices) that reach `def`, in bit order.
    pub fn roots_reaching(&self, def: usize) -> Vec<usize> {
        let mut out = Vec::new();
        for (bit, &r) in self.roots.iter().enumerate() {
            if self.root_bits[def][bit / 64] & (1 << (bit % 64)) != 0 {
                out.push(r);
            }
        }
        out
    }

    /// The shortest call chain from a root to `def`, as
    /// `[(def, call line into the NEXT def), ..., (def, site line)]`. The
    /// final element carries `site_line` (where the offending pattern
    /// sits). Empty if `def` is unreachable.
    pub fn chain_to(&self, def: usize, site_line: usize) -> Vec<(usize, usize)> {
        if !self.reached[def] {
            return Vec::new();
        }
        // `pred[x] = (p, line)` already pairs the predecessor with the
        // line of the call *it* makes into `x`, so walking back and
        // reversing yields the final pairing directly.
        let mut rev = vec![(def, site_line)];
        let mut cur = def;
        while let Some((p, line)) = self.pred[cur] {
            rev.push((p, line));
            cur = p;
        }
        rev.reverse();
        rev
    }

    /// Renders a chain as `a (file:12) -> b (file:34)`.
    pub fn render_chain(
        graph: &CallGraph,
        files: &[String],
        chain: &[(usize, usize)],
    ) -> Vec<String> {
        chain
            .iter()
            .map(|&(d, line)| {
                format!(
                    "{} ({}:{})",
                    graph.defs[d].item.qualified_name(),
                    files[graph.defs[d].file],
                    line
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_fns;
    use crate::scan::SourceFile;

    fn graph(src: &str) -> CallGraph {
        CallGraph::build(vec![parse_fns(&SourceFile::new("t.rs".into(), src.into()))])
    }

    fn idx(g: &CallGraph, name: &str) -> usize {
        g.defs.iter().position(|d| d.item.name == name).unwrap()
    }

    #[test]
    fn bfs_reaches_transitively_and_chains_are_shortest() {
        let g = graph(
            "fn root() { mid(); }\nfn mid() { leaf(); }\nfn leaf() {}\nfn cold() { leaf(); }\n",
        );
        let r = Reachability::compute(&g, &[idx(&g, "root")]);
        assert!(r.reached(idx(&g, "leaf")));
        assert!(!r.reached(idx(&g, "cold")));
        let chain = r.chain_to(idx(&g, "leaf"), 99);
        let names: Vec<_> = chain.iter().map(|&(d, l)| (g.defs[d].item.name.clone(), l)).collect();
        assert_eq!(
            names,
            [("root".to_string(), 1), ("mid".to_string(), 2), ("leaf".to_string(), 99)]
        );
    }

    #[test]
    fn test_defs_block_traversal() {
        let src = "fn root() { helper(); }\n#[cfg(test)]\nmod t {\n    fn helper() { leaf(); }\n}\nfn leaf() {}\n";
        let g = graph(src);
        let r = Reachability::compute(&g, &[idx(&g, "root")]);
        assert!(!r.reached(idx(&g, "leaf")), "reach must not flow through test-only defs");
    }

    #[test]
    fn root_bitsets_report_every_reaching_root() {
        let g = graph("fn a() { shared(); }\nfn b() { shared(); }\nfn c() {}\nfn shared() {}\n");
        let roots = [idx(&g, "a"), idx(&g, "b"), idx(&g, "c")];
        let r = Reachability::compute(&g, &roots);
        let reaching = r.roots_reaching(idx(&g, "shared"));
        let names: Vec<_> = reaching.iter().map(|&d| g.defs[d].item.name.clone()).collect();
        assert_eq!(names, ["a", "b"]);
    }

    #[test]
    fn bitsets_work_past_64_roots() {
        // 70 roots all calling one leaf: the second bitset word must fill.
        let mut src = String::new();
        for i in 0..70 {
            src.push_str(&format!("fn root{i}() {{ leaf(); }}\n"));
        }
        src.push_str("fn leaf() {}\n");
        let g = graph(&src);
        let roots: Vec<usize> = (0..70).map(|i| idx(&g, &format!("root{i}"))).collect();
        let r = Reachability::compute(&g, &roots);
        assert_eq!(r.roots_reaching(idx(&g, "leaf")).len(), 70);
    }
}
