//! `lint.toml` loading.
//!
//! The lint crate is dependency-free, so this is a tiny TOML-subset parser
//! covering exactly what the config needs: `[section]` headers, `key =
//! "string"` and `key = ["a", "b"]` values (arrays may span lines), and `#`
//! comments. Anything else is a hard error — config typos must not silently
//! relax a gate.

use std::collections::BTreeMap;

/// Parsed lint configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Directories (workspace-relative) to walk for `.rs` files.
    pub roots: Vec<String>,
    /// Path prefixes excluded from every rule (e.g. the linter's own
    /// known-bad fixtures).
    pub exclude: Vec<String>,
    /// Files covered by the accumulation-order (no-FMA) rule.
    pub fma_paths: Vec<String>,
    /// Path scopes covered by the no-panic decision-path rule. Non-test
    /// fns defined in these files are also the decision-path *roots* of
    /// the transitive panic-reachability pass.
    pub panic_paths: Vec<String>,
    /// Path scopes covered by the determinism rule (bit-exactness-scoped
    /// code: no hash-order iteration, no wall-clock values, no float
    /// reduction reassociation).
    pub determinism_paths: Vec<String>,
    /// Workspace-relative path of the unsafe inventory file.
    pub inventory: String,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            roots: vec!["crates".into(), "src".into(), "tests".into(), "examples".into()],
            exclude: Vec::new(),
            fma_paths: Vec::new(),
            panic_paths: Vec::new(),
            determinism_paths: Vec::new(),
            inventory: "UNSAFE_INVENTORY.md".into(),
        }
    }
}

impl Config {
    /// Parses `lint.toml` text. Unknown sections or keys are errors.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut tables: BTreeMap<String, BTreeMap<String, Value>> = BTreeMap::new();
        let mut section = String::new();
        let mut lines = text.lines().enumerate().peekable();
        while let Some((idx, raw)) = lines.next() {
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = name.trim().to_string();
                tables.entry(section.clone()).or_default();
                continue;
            }
            let Some(eq) = line.find('=') else {
                return Err(format!("lint.toml:{}: expected `key = value`", idx + 1));
            };
            let key = line[..eq].trim().to_string();
            let mut val = line[eq + 1..].trim().to_string();
            // Multiline arrays: keep consuming until brackets balance.
            while val.starts_with('[') && !bracket_balanced(&val) {
                let Some((_, next)) = lines.next() else {
                    return Err(format!("lint.toml:{}: unterminated array", idx + 1));
                };
                val.push(' ');
                val.push_str(strip_comment(next).trim());
            }
            let value = parse_value(&val).map_err(|e| format!("lint.toml:{}: {e}", idx + 1))?;
            tables.entry(section.clone()).or_default().insert(key, value);
        }
        Self::from_tables(tables)
    }

    fn from_tables(tables: BTreeMap<String, BTreeMap<String, Value>>) -> Result<Self, String> {
        let mut cfg = Self::default();
        for (section, entries) in tables {
            for (key, value) in entries {
                match (section.as_str(), key.as_str()) {
                    ("scan", "roots") => cfg.roots = value.into_array()?,
                    ("scan", "exclude") => cfg.exclude = value.into_array()?,
                    ("fma", "paths") => cfg.fma_paths = value.into_array()?,
                    ("panic", "paths") => cfg.panic_paths = value.into_array()?,
                    ("determinism", "paths") => cfg.determinism_paths = value.into_array()?,
                    ("unsafe", "inventory") => cfg.inventory = value.into_string()?,
                    _ => return Err(format!("lint.toml: unknown key `[{section}] {key}`")),
                }
            }
        }
        Ok(cfg)
    }
}

#[derive(Debug)]
enum Value {
    Str(String),
    Array(Vec<String>),
}

impl Value {
    fn into_array(self) -> Result<Vec<String>, String> {
        match self {
            Value::Array(a) => Ok(a),
            Value::Str(_) => Err("expected an array".into()),
        }
    }

    fn into_string(self) -> Result<String, String> {
        match self {
            Value::Str(s) => Ok(s),
            Value::Array(_) => Err("expected a string".into()),
        }
    }
}

fn parse_value(val: &str) -> Result<Value, String> {
    if let Some(inner) = val.strip_prefix('[').and_then(|v| v.strip_suffix(']')) {
        let mut items = Vec::new();
        for part in inner.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            items.push(parse_string(part)?);
        }
        Ok(Value::Array(items))
    } else {
        parse_string(val).map(Value::Str)
    }
}

fn parse_string(s: &str) -> Result<String, String> {
    s.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| format!("expected a quoted string, got `{s}`"))
}

/// Strips a `#` comment, ignoring `#` inside quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn bracket_balanced(s: &str) -> bool {
    let mut depth = 0i32;
    let mut in_str = false;
    for c in s.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_arrays_and_comments() {
        let cfg = Config::parse(
            "# header\n[scan]\nroots = [\"crates\", \"src\"] # trailing\nexclude = [\n    \
             \"crates/lint/tests/fixtures\",\n]\n[fma]\npaths = [\"crates/nn/src/kernels.rs\"]\n\
             [unsafe]\ninventory = \"INV.md\"\n",
        )
        .unwrap();
        assert_eq!(cfg.roots, ["crates", "src"]);
        assert_eq!(cfg.exclude, ["crates/lint/tests/fixtures"]);
        assert_eq!(cfg.fma_paths, ["crates/nn/src/kernels.rs"]);
        assert_eq!(cfg.inventory, "INV.md");
    }

    #[test]
    fn unknown_keys_are_errors() {
        assert!(Config::parse("[scan]\nrootz = [\"x\"]\n").is_err());
        assert!(Config::parse("[typo]\nroots = [\"x\"]\n").is_err());
    }

    #[test]
    fn unquoted_values_are_errors() {
        assert!(Config::parse("[unsafe]\ninventory = INV.md\n").is_err());
    }
}
