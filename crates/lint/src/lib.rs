//! Workspace invariant linter.
//!
//! Statically enforces the contracts the safety case rests on (DESIGN.md
//! §8): the kernels' serial ascending-k / no-FMA accumulation order, the
//! no-panic decision path, the allocation-free hot path, and a justified
//! `unsafe` inventory. See `lint.toml` for scopes and `README.md` for
//! usage; the binary front-end is `src/main.rs`.
//!
//! Deliberately dependency-free: the tool that checks the safety contracts
//! must not itself pull in code the contracts do not cover.

#![warn(missing_docs)]

pub mod config;
pub mod inventory;
pub mod rules;
pub mod scan;

use std::fs;
use std::path::{Path, PathBuf};

use config::Config;
use rules::{Diagnostic, UnsafeSite, UsedAllow};
use scan::SourceFile;

/// The result of linting a whole tree.
#[derive(Debug, Default)]
pub struct Report {
    /// All violations, sorted by (file, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Every exercised `// lint: allow(...)`, sorted — the exemption audit.
    pub allows: Vec<UsedAllow>,
    /// Every unsafe site, sorted — the inventory input.
    pub unsafe_sites: Vec<UnsafeSite>,
    /// How many files were scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Whether the tree passes.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Renders the current inventory markdown.
    pub fn inventory_markdown(&self) -> String {
        inventory::render(&self.unsafe_sites)
    }
}

/// Lints every `.rs` file under the configured roots of `root`.
pub fn check_tree(root: &Path, cfg: &Config) -> Result<Report, String> {
    let mut report = Report::default();
    for rel in collect_files(root, cfg)? {
        let abs = root.join(&rel);
        let raw = fs::read_to_string(&abs).map_err(|e| format!("{}: {e}", abs.display()))?;
        let file = SourceFile::new(rel.clone(), raw);
        let fma_scoped = in_scope(&rel, &cfg.fma_paths);
        let panic_scoped = in_scope(&rel, &cfg.panic_paths);
        let findings = rules::check_file(&file, fma_scoped, panic_scoped);
        report.diagnostics.extend(findings.diagnostics);
        report.allows.extend(findings.allows);
        report.unsafe_sites.extend(findings.unsafe_sites);
        report.files_scanned += 1;
    }
    report.diagnostics.sort();
    report.allows.sort();
    report.unsafe_sites.sort();
    Ok(report)
}

/// Loads `lint.toml` from `root` (hard error if missing: running without
/// config would silently check nothing).
pub fn load_config(root: &Path, explicit: Option<&Path>) -> Result<Config, String> {
    let path = explicit.map(PathBuf::from).unwrap_or_else(|| root.join("lint.toml"));
    let text = fs::read_to_string(&path)
        .map_err(|e| format!("cannot read config {}: {e}", path.display()))?;
    Config::parse(&text)
}

/// Whether `rel` (workspace-relative, `/`-separated) falls under one of the
/// `scopes` (exact file or directory prefix).
fn in_scope(rel: &str, scopes: &[String]) -> bool {
    scopes.iter().any(|s| rel == s || rel.starts_with(&format!("{s}/")))
}

/// Collects workspace-relative paths of every `.rs` file under the
/// configured roots, excluding `cfg.exclude` prefixes and anything under a
/// `target/` directory. Sorted for deterministic output.
fn collect_files(root: &Path, cfg: &Config) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    for scan_root in &cfg.roots {
        let dir = root.join(scan_root);
        if dir.is_dir() {
            walk(&dir, root, cfg, &mut out)?;
        }
    }
    out.sort();
    out.dedup();
    Ok(out)
}

fn walk(dir: &Path, root: &Path, cfg: &Config, out: &mut Vec<String>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut children: Vec<PathBuf> = Vec::new();
    for entry in entries {
        children.push(entry.map_err(|e| format!("{}: {e}", dir.display()))?.path());
    }
    children.sort();
    for path in children {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name == "target" || name.starts_with('.') {
            continue;
        }
        let rel = match path.strip_prefix(root) {
            Ok(r) => r.to_string_lossy().replace('\\', "/"),
            Err(_) => continue,
        };
        if in_scope(&rel, &cfg.exclude) {
            continue;
        }
        if path.is_dir() {
            walk(&path, root, cfg, out)?;
        } else if name.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_matching_is_prefix_or_exact() {
        let scopes = vec!["crates/reactor/src".to_string(), "crates/core/src/serve.rs".into()];
        assert!(in_scope("crates/reactor/src/gate.rs", &scopes));
        assert!(in_scope("crates/core/src/serve.rs", &scopes));
        assert!(!in_scope("crates/core/src/engine.rs", &scopes));
        assert!(!in_scope("crates/reactor/srcx/gate.rs", &scopes));
    }
}
