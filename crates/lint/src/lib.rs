//! Workspace invariant linter.
//!
//! Statically enforces the contracts the safety case rests on (DESIGN.md
//! §8): the kernels' serial ascending-k / no-FMA accumulation order, the
//! no-panic decision path, the allocation-free hot path, determinism of
//! bit-exactness-scoped code, and a justified `unsafe` inventory — both
//! lexically (per file) and transitively, over a conservative workspace
//! call graph ([`graph`], [`reach`], [`transitive`]). See `lint.toml` for
//! scopes and `README.md` for usage; the binary front-end is
//! `src/main.rs`.
//!
//! Deliberately dependency-free: the tool that checks the safety contracts
//! must not itself pull in code the contracts do not cover.

#![warn(missing_docs)]

pub mod config;
pub mod deps;
pub mod graph;
pub mod inventory;
pub mod items;
pub mod json;
pub mod reach;
pub mod rules;
pub mod scan;
pub mod transitive;

use std::fs;
use std::path::{Path, PathBuf};
use std::time::Instant;

use config::Config;
use rules::{AllowTable, Diagnostic, FileFindings, FileScope, UnsafeSite, UsedAllow};
use scan::SourceFile;

/// The result of linting a whole tree.
#[derive(Debug, Default)]
pub struct Report {
    /// All violations, sorted by (file, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Every exercised `// lint: allow(...)`, sorted — the exemption audit.
    pub allows: Vec<UsedAllow>,
    /// Every unsafe site, sorted — the inventory input.
    pub unsafe_sites: Vec<UnsafeSite>,
    /// How many files were scanned.
    pub files_scanned: usize,
    /// How many `fn` defs the item parser found.
    pub defs: usize,
    /// How many resolved call edges the graph holds.
    pub edges: usize,
    /// How many hot-path roots seeded the allocation closure.
    pub hot_roots: usize,
    /// How many decision-path roots seeded the panic closure.
    pub decision_roots: usize,
    /// Wall-clock for graph build + transitive passes, in ms.
    pub graph_ms: u128,
    /// Wall-clock for the whole analysis, in ms.
    pub total_ms: u128,
}

impl Report {
    /// Whether the tree passes.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Renders the current inventory markdown.
    pub fn inventory_markdown(&self) -> String {
        inventory::render(&self.unsafe_sites)
    }
}

/// Lints every `.rs` file under the configured roots of `root`.
pub fn check_tree(root: &Path, cfg: &Config) -> Result<Report, String> {
    let mut files = Vec::new();
    for rel in collect_files(root, cfg)? {
        let abs = root.join(&rel);
        let raw = fs::read_to_string(&abs).map_err(|e| format!("{}: {e}", abs.display()))?;
        files.push(SourceFile::new(rel, raw));
    }
    Ok(analyze(files, cfg, &deps::CrateMap::load(root)))
}

/// Runs the full analysis — lexical rules per file, then the call-graph
/// passes — over an in-memory file set. Entry point for the fixture
/// self-tests, which assemble multi-file workspaces directly (usually with
/// [`deps::CrateMap::permissive`]).
pub fn analyze(files: Vec<SourceFile>, cfg: &Config, crates: &deps::CrateMap) -> Report {
    let t0 = Instant::now();
    let mut report = Report { files_scanned: files.len(), ..Report::default() };
    let mut out = FileFindings::default();
    let mut allows: Vec<AllowTable> = Vec::with_capacity(files.len());

    for file in &files {
        let scope = FileScope {
            fma: in_scope(&file.rel, &cfg.fma_paths),
            panic: in_scope(&file.rel, &cfg.panic_paths),
            determinism: in_scope(&file.rel, &cfg.determinism_paths),
        };
        let mut table = AllowTable::new(file);
        rules::lexical_pass(file, scope, &mut table, &mut out);
        allows.push(table);
    }

    // Call-graph passes. Allow finalization must wait until these have
    // run: a transitive diagnostic can consume an allow in a file other
    // than the one currently being scanned.
    let tg = Instant::now();
    let mut per_file: Vec<Vec<items::FnItem>> = files.iter().map(items::parse_fns).collect();
    for (file, parsed) in files.iter().zip(per_file.iter_mut()) {
        if non_runtime(&file.rel) {
            // Integration tests, examples, and benches are not production
            // code: their defs must neither seed nor carry reachability.
            for item in parsed.iter_mut() {
                item.is_test = true;
            }
        }
    }
    let file_crate: Vec<usize> = files.iter().map(|f| crates.crate_of(&f.rel)).collect();
    let graph = graph::CallGraph::build_with_deps(per_file, &file_crate, crates);
    let info = transitive::run(&files, &graph, cfg, &mut allows, &mut out);
    report.defs = graph.defs.len();
    report.edges = graph.edge_count();
    report.hot_roots = info.hot_roots.len();
    report.decision_roots = info.decision_roots.len();
    report.graph_ms = tg.elapsed().as_millis();

    // Attribute each unsafe site to its enclosing fn's reachability.
    let file_index = |rel: &str| files.iter().position(|f| f.rel == rel);
    for site in &mut out.unsafe_sites {
        if let Some(fi) = file_index(&site.file) {
            site.reach = transitive::reach_cell(&graph, &info, fi, site.offset);
        }
    }

    for (file, table) in files.iter().zip(allows) {
        rules::finalize_allows(&file.rel, table, &mut out);
    }

    report.diagnostics = out.diagnostics;
    report.allows = out.allows;
    report.unsafe_sites = out.unsafe_sites;
    report.diagnostics.sort();
    report.allows.sort();
    report.unsafe_sites.sort();
    report.total_ms = t0.elapsed().as_millis();
    report
}

/// Loads `lint.toml` from `root` (hard error if missing: running without
/// config would silently check nothing).
pub fn load_config(root: &Path, explicit: Option<&Path>) -> Result<Config, String> {
    let path = explicit.map(PathBuf::from).unwrap_or_else(|| root.join("lint.toml"));
    let text = fs::read_to_string(&path)
        .map_err(|e| format!("cannot read config {}: {e}", path.display()))?;
    Config::parse(&text)
}

/// Whether `rel` (workspace-relative, `/`-separated) falls under one of the
/// `scopes` (exact file or directory prefix).
pub(crate) fn in_scope(rel: &str, scopes: &[String]) -> bool {
    scopes.iter().any(|s| rel == s || rel.starts_with(&format!("{s}/")))
}

/// Whether `rel` sits in a `tests/`, `examples/`, or `benches/` directory —
/// code that only runs under the test harness.
fn non_runtime(rel: &str) -> bool {
    rel.split('/').any(|seg| seg == "tests" || seg == "examples" || seg == "benches")
}

/// Collects workspace-relative paths of every `.rs` file under the
/// configured roots, excluding `cfg.exclude` prefixes and anything under a
/// `target/` directory. Sorted for deterministic output.
fn collect_files(root: &Path, cfg: &Config) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    for scan_root in &cfg.roots {
        let dir = root.join(scan_root);
        if dir.is_dir() {
            walk(&dir, root, cfg, &mut out)?;
        }
    }
    out.sort();
    out.dedup();
    Ok(out)
}

fn walk(dir: &Path, root: &Path, cfg: &Config, out: &mut Vec<String>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut children: Vec<PathBuf> = Vec::new();
    for entry in entries {
        children.push(entry.map_err(|e| format!("{}: {e}", dir.display()))?.path());
    }
    children.sort();
    for path in children {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name == "target" || name.starts_with('.') {
            continue;
        }
        let rel = match path.strip_prefix(root) {
            Ok(r) => r.to_string_lossy().replace('\\', "/"),
            Err(_) => continue,
        };
        if in_scope(&rel, &cfg.exclude) {
            continue;
        }
        if path.is_dir() {
            walk(&path, root, cfg, out)?;
        } else if name.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_matching_is_prefix_or_exact() {
        let scopes = vec!["crates/reactor/src".to_string(), "crates/core/src/serve.rs".into()];
        assert!(in_scope("crates/reactor/src/gate.rs", &scopes));
        assert!(in_scope("crates/core/src/serve.rs", &scopes));
        assert!(!in_scope("crates/core/src/engine.rs", &scopes));
        assert!(!in_scope("crates/reactor/srcx/gate.rs", &scopes));
    }
}
