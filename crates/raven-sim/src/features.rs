//! The 277-feature Raven II state vector (§IV-B: "The kinematics data from
//! the simulator consisted of 277 features (including the 19 variables
//! available from the JIGSAWS dataset)").
//!
//! Composition (documented in DESIGN.md):
//!
//! * 5 global fields: runlevel, sublevel, packet sequence, dt, progress
//! * per arm (×2, 136 each):
//!   * commanded position (3) + actual position (3)
//!   * commanded rotation matrix (9) + actual rotation matrix (9)
//!   * commanded grasper (1) + actual grasper (1)
//!   * linear velocity (3) + angular velocity (3)
//!   * 8 motor-channel blocks of 13: joint pos, joint vel, joint cmd,
//!     motor pos, motor vel, motor cmd, torque, encoder

use crate::arm::{Arm, MOTOR_CHANNELS};
use kinematics::Mat3;

/// Total feature count, matching the paper's logged schema width.
pub const RAVEN_FEATURES: usize = 277;

const GLOBALS: usize = 5;
const PER_ARM: usize = 3 + 3 + 9 + 9 + 1 + 1 + 3 + 3 + 8 * MOTOR_CHANNELS;

// Compile-time consistency check of the documented composition.
const _: () = assert!(GLOBALS + 2 * PER_ARM == RAVEN_FEATURES);

/// Flattens the simulator state into the 277-feature row.
pub fn flatten(tick: usize, dt: f32, progress: f32, arms: &[Arm; 2]) -> Vec<f32> {
    // lint: allow(alloc, reason = "fresh feature row per sim tick; harness code reached from the reactor only via the .step() name collision")
    let mut row = Vec::with_capacity(RAVEN_FEATURES);
    // Globals.
    row.push(3.0); // runlevel: pedal down
    row.push(0.0); // sublevel
    row.push(tick as f32); // packet sequence number
    row.push(dt);
    row.push(progress);

    for arm in arms {
        row.extend_from_slice(&arm.command.position.to_array());
        row.extend_from_slice(&arm.position.to_array());
        let rot_cmd =
            Mat3::from_euler(arm.command.euler.0, arm.command.euler.1, arm.command.euler.2);
        row.extend_from_slice(&rot_cmd.m);
        let rot_act = Mat3::from_euler(arm.euler.0, arm.euler.1, arm.euler.2);
        row.extend_from_slice(&rot_act.m);
        row.push(arm.command.grasper);
        row.push(arm.grasper);
        row.extend_from_slice(&arm.linear_velocity.to_array());
        row.extend_from_slice(&arm.angular_velocity.to_array());

        // Motor-channel blocks.
        row.extend_from_slice(&arm.joint_pos);
        row.extend_from_slice(&arm.joint_vel);
        // Joint command: position channels scaled from the commanded pose.
        for k in 0..MOTOR_CHANNELS {
            row.push(arm.joint_pos[k] + 0.1 * (arm.command.grasper - arm.grasper));
        }
        // Motor pos/vel: gear ratio 12.
        for k in 0..MOTOR_CHANNELS {
            row.push(arm.joint_pos[k] * 12.0);
        }
        for k in 0..MOTOR_CHANNELS {
            row.push(arm.joint_vel[k] * 12.0);
        }
        for k in 0..MOTOR_CHANNELS {
            row.push(arm.joint_pos[k] * 12.0 + 0.05 * arm.torque[k]);
        }
        row.extend_from_slice(&arm.torque);
        // Encoder counts.
        for k in 0..MOTOR_CHANNELS {
            row.push((arm.joint_pos[k] * 12.0 * 4096.0 / std::f32::consts::TAU).round());
        }
    }
    debug_assert_eq!(row.len(), RAVEN_FEATURES);
    row
}

#[cfg(test)]
mod tests {
    use super::*;
    use kinematics::Vec3;

    #[test]
    fn row_has_exactly_277_features() {
        let arms = [Arm::new(Vec3::zero()), Arm::new(Vec3::new(1.0, 2.0, 3.0))];
        let row = flatten(42, 0.01, 0.5, &arms);
        assert_eq!(row.len(), RAVEN_FEATURES);
    }

    #[test]
    fn globals_are_first() {
        let arms = [Arm::new(Vec3::zero()), Arm::new(Vec3::zero())];
        let row = flatten(7, 0.01, 0.25, &arms);
        assert_eq!(row[2], 7.0); // sequence
        assert_eq!(row[3], 0.01); // dt
        assert_eq!(row[4], 0.25); // progress
    }

    #[test]
    fn jigsaws_subset_is_present() {
        // Actual position of arm 0 lives at offset 5 + 3.
        let mut arm0 = Arm::new(Vec3::new(9.0, 8.0, 7.0));
        arm0.grasper = 0.33;
        let arms = [arm0, Arm::new(Vec3::zero())];
        let row = flatten(0, 0.01, 0.0, &arms);
        assert_eq!(&row[8..11], &[9.0, 8.0, 7.0]);
        // Actual grasper of arm 0 at 5 + 3 + 3 + 9 + 9 + 1.
        assert_eq!(row[30], 0.33);
    }
}
