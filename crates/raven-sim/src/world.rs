//! The Block Transfer world: a block, a receptacle, and grasp/fall physics.
//!
//! Mirrors the paper's Gazebo dry-lab world (§IV-B, Fig. 6): "the left and
//! right robot manipulators, grasper instruments, and the standard objects
//! in the Block Transfer task, including a block and a receptacle where the
//! block should be dropped."

use kinematics::Vec3;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Workspace landmarks (mm).
pub mod layout {
    use kinematics::Vec3;

    /// Initial block position (on the table, z = 0).
    pub const BLOCK_START: Vec3 = Vec3 { x: 50.0, y: -30.0, z: 0.0 };
    /// Receptacle center.
    pub const RECEPTACLE: Vec3 = Vec3 { x: -50.0, y: 30.0, z: 0.0 };
    /// Receptacle radius (mm): landings within this distance count as "in".
    pub const RECEPTACLE_RADIUS: f32 = 15.0;
    /// Table height (mm); the block rests and lands at this z.
    pub const TABLE_Z: f32 = 0.0;
    /// Distance within which a closed grasper picks up the block.
    pub const GRASP_RADIUS: f32 = 12.0;
}

/// Physical thresholds, jittered per trial to model contact variability
/// (this is what turns Table III's threshold bands into probabilistic
/// failure rates).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GraspPhysics {
    /// Grasper angle below which a nearby block is grasped.
    pub grasp_close: f32,
    /// Angle above which a held block slips out.
    pub hold_max: f32,
    /// Gravity (mm/s²).
    pub gravity: f32,
}

impl Default for GraspPhysics {
    fn default() -> Self {
        Self { grasp_close: 0.35, hold_max: 0.925, gravity: 9810.0 }
    }
}

impl GraspPhysics {
    /// Samples per-trial thresholds around the defaults (σ = 0.06 rad on the
    /// slip threshold).
    pub fn jittered(rng: &mut impl Rng) -> Self {
        let base = Self::default();
        let jitter = |rng: &mut dyn rand::RngCore, std: f32| {
            // Box-Muller.
            let u1: f32 = rng.gen_range(1e-7..1.0f32);
            let u2: f32 = rng.gen_range(0.0..1.0f32);
            std * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
        };
        Self {
            grasp_close: (base.grasp_close + jitter(rng, 0.03)).clamp(0.2, 0.5),
            hold_max: (base.hold_max + jitter(rng, 0.10)).clamp(0.6, 1.25),
            gravity: base.gravity,
        }
    }
}

/// A world event with its tick.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WorldEvent {
    /// The block was grasped by the arm with this index.
    Grasped {
        /// Simulation tick.
        tick: usize,
        /// Arm index.
        arm: usize,
    },
    /// The block left the grasper (intentional release or slip).
    Released {
        /// Simulation tick.
        tick: usize,
        /// Grasper angle at release.
        grasper_angle: f32,
    },
    /// The block reached the table.
    Landed {
        /// Simulation tick.
        tick: usize,
        /// Landing position.
        position: Vec3,
        /// Whether the landing is inside the receptacle.
        in_receptacle: bool,
    },
}

impl WorldEvent {
    /// The event's tick.
    pub fn tick(&self) -> usize {
        match *self {
            WorldEvent::Grasped { tick, .. }
            | WorldEvent::Released { tick, .. }
            | WorldEvent::Landed { tick, .. } => tick,
        }
    }
}

/// Block state machine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BlockState {
    /// Resting on the table (initial state, and after landing).
    Resting,
    /// Held by the arm with this index.
    Held(usize),
    /// In free fall with this vertical velocity (mm/s, negative = down).
    Falling(f32),
}

/// The simulated world.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct World {
    /// Current block position.
    pub block_position: Vec3,
    /// Block state.
    pub block_state: BlockState,
    /// Whether the block has landed after being carried (terminal).
    pub landed: Option<WorldEvent>,
    /// Physics thresholds for this trial.
    pub physics: GraspPhysics,
    events: Vec<WorldEvent>,
}

impl World {
    /// Creates a world with the block at its start position.
    pub fn new(physics: GraspPhysics) -> Self {
        Self {
            block_position: layout::BLOCK_START,
            block_state: BlockState::Resting,
            landed: None,
            physics,
            events: Vec::new(),
        }
    }

    /// All events so far, in order.
    pub fn events(&self) -> &[WorldEvent] {
        &self.events
    }

    /// Whether the block is currently held.
    pub fn is_held(&self) -> bool {
        matches!(self.block_state, BlockState::Held(_))
    }

    /// Advances the world by one tick given each arm's end-effector position
    /// and grasper angle.
    pub fn step(&mut self, tick: usize, dt: f32, arms: &[(Vec3, f32)]) {
        match self.block_state {
            BlockState::Resting => {
                if self.landed.is_some() {
                    return; // terminal: block stays where it landed
                }
                // Grasp check: any close, closed grasper picks up the block.
                for (i, &(pos, angle)) in arms.iter().enumerate() {
                    if angle <= self.physics.grasp_close
                        && pos.distance(self.block_position) <= layout::GRASP_RADIUS
                    {
                        self.block_state = BlockState::Held(i);
                        self.events.push(WorldEvent::Grasped { tick, arm: i });
                        break;
                    }
                }
            }
            BlockState::Held(arm) => {
                let (pos, angle) = arms[arm];
                // Block hangs just below the grasper.
                self.block_position = pos + Vec3::new(0.0, 0.0, -4.0);
                if angle >= self.physics.hold_max {
                    self.block_state = BlockState::Falling(0.0);
                    self.events.push(WorldEvent::Released { tick, grasper_angle: angle });
                }
            }
            BlockState::Falling(vz) => {
                let vz = vz - self.physics.gravity * dt;
                self.block_position.z += vz * dt;
                if self.block_position.z <= layout::TABLE_Z {
                    self.block_position.z = layout::TABLE_Z;
                    let in_receptacle = self.in_receptacle(self.block_position);
                    let ev =
                        WorldEvent::Landed { tick, position: self.block_position, in_receptacle };
                    self.landed = Some(ev);
                    self.events.push(ev);
                    self.block_state = BlockState::Resting;
                } else {
                    self.block_state = BlockState::Falling(vz);
                }
            }
        }
    }

    /// Whether an xy-position is inside the receptacle.
    pub fn in_receptacle(&self, p: Vec3) -> bool {
        let dx = p.x - layout::RECEPTACLE.x;
        let dy = p.y - layout::RECEPTACLE.y;
        (dx * dx + dy * dy).sqrt() <= layout::RECEPTACLE_RADIUS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    const DT: f32 = 0.01;

    fn world() -> World {
        World::new(GraspPhysics::default())
    }

    #[test]
    fn block_is_grasped_by_nearby_closed_grasper() {
        let mut w = world();
        let near = layout::BLOCK_START + Vec3::new(2.0, 0.0, 3.0);
        w.step(0, DT, &[(Vec3::zero(), 1.2), (near, 0.1)]);
        assert_eq!(w.block_state, BlockState::Held(1));
        assert!(matches!(w.events()[0], WorldEvent::Grasped { arm: 1, .. }));
    }

    #[test]
    fn open_grasper_does_not_grasp() {
        let mut w = world();
        let near = layout::BLOCK_START + Vec3::new(2.0, 0.0, 3.0);
        w.step(0, DT, &[(Vec3::zero(), 1.2), (near, 1.0)]);
        assert_eq!(w.block_state, BlockState::Resting);
    }

    #[test]
    fn far_grasper_does_not_grasp() {
        let mut w = world();
        let far = layout::BLOCK_START + Vec3::new(50.0, 0.0, 0.0);
        w.step(0, DT, &[(Vec3::zero(), 1.2), (far, 0.1)]);
        assert_eq!(w.block_state, BlockState::Resting);
    }

    #[test]
    fn held_block_follows_arm_and_slips_at_high_angle() {
        let mut w = world();
        let mut pos = layout::BLOCK_START + Vec3::new(0.0, 0.0, 3.0);
        w.step(0, DT, &[(Vec3::zero(), 1.2), (pos, 0.1)]);
        assert!(w.is_held());
        pos = pos + Vec3::new(-10.0, 5.0, 10.0);
        w.step(1, DT, &[(Vec3::zero(), 1.2), (pos, 0.1)]);
        assert!(w.block_position.distance(pos) < 5.0);
        // Open past hold_max: slips.
        w.step(2, DT, &[(Vec3::zero(), 1.2), (pos, 1.1)]);
        assert!(matches!(w.block_state, BlockState::Falling(_)));
    }

    #[test]
    fn falling_block_lands_on_table() {
        let mut w = world();
        w.block_position = Vec3::new(layout::RECEPTACLE.x, layout::RECEPTACLE.y, 30.0);
        w.block_state = BlockState::Falling(0.0);
        let arms = [(Vec3::zero(), 1.2), (Vec3::zero(), 1.2)];
        for t in 0..1000 {
            w.step(t, DT, &arms);
            if w.landed.is_some() {
                break;
            }
        }
        let landed = w.landed.expect("block should land");
        match landed {
            WorldEvent::Landed { in_receptacle, position, .. } => {
                assert!(in_receptacle);
                assert_eq!(position.z, layout::TABLE_Z);
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn landing_outside_receptacle_is_flagged() {
        let mut w = world();
        w.block_position = Vec3::new(0.0, 0.0, 20.0);
        w.block_state = BlockState::Falling(0.0);
        let arms = [(Vec3::zero(), 1.2), (Vec3::zero(), 1.2)];
        for t in 0..1000 {
            w.step(t, DT, &arms);
        }
        match w.landed.expect("landed") {
            WorldEvent::Landed { in_receptacle, .. } => assert!(!in_receptacle),
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn jittered_physics_vary_but_stay_sane() {
        let mut rng = SmallRng::seed_from_u64(4);
        let a = GraspPhysics::jittered(&mut rng);
        let b = GraspPhysics::jittered(&mut rng);
        assert_ne!(a.hold_max, b.hold_max);
        for p in [a, b] {
            assert!((0.6..=1.25).contains(&p.hold_max));
            assert!((0.2..=0.5).contains(&p.grasp_close));
        }
    }

    #[test]
    fn landed_block_cannot_be_regrasped() {
        let mut w = world();
        w.landed =
            Some(WorldEvent::Landed { tick: 0, position: w.block_position, in_receptacle: false });
        let near = w.block_position + Vec3::new(0.0, 0.0, 2.0);
        w.step(1, DT, &[(near, 0.1), (Vec3::zero(), 1.2)]);
        assert_eq!(w.block_state, BlockState::Resting);
        assert_eq!(w.events().len(), 1.min(w.events().len()));
    }
}
