//! Scripted Block Transfer motion plan.
//!
//! The plan plays the role of the paper's "surgeon's commands during
//! tele-operation or output from motion planning algorithms in autonomous
//! mode" (§IV-B): a gesture-segmented stream of commanded end-effector
//! positions and grasper angles following the Fig. 3b sequence
//! G2 → G12 → G6 → G5 → G11.

use crate::world::layout;
use gestures::Gesture;
use kinematics::Vec3;
use serde::{Deserialize, Serialize};

/// Commanded state for one arm at one tick: exactly the kinematic state
/// variables the fault injector perturbs (Cartesian position and grasper
/// angle, §IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArmCommand {
    /// Desired end-effector position (mm).
    pub position: Vec3,
    /// Desired grasper angle (rad).
    pub grasper: f32,
    /// Desired orientation as intrinsic XYZ Euler angles.
    pub euler: (f32, f32, f32),
}

/// Commands for both arms.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Commands {
    /// Left (0) and right (1) arm commands.
    pub arms: [ArmCommand; 2],
}

/// Grasper command constants.
pub const GRASPER_OPEN_CMD: f32 = 1.2;
/// Closed/holding grasper command.
pub const GRASPER_CLOSED_CMD: f32 = 0.12;

/// Normalized trajectory landmarks (fractions of total duration).
pub mod schedule {
    /// G2: approach + grasp the block.
    pub const G2_END: f32 = 0.20;
    /// G12: left-arm support reach.
    pub const G12_END: f32 = 0.32;
    /// G6: carry toward the center.
    pub const G6_END: f32 = 0.52;
    /// G5: carry to above the receptacle.
    pub const G5_END: f32 = 0.80;
    /// Within G2: when the grasper closes on the block.
    pub const GRASP_AT: f32 = 0.14;
    /// Within G11: when the grasper opens to release the block.
    pub const RELEASE_AT: f32 = 0.85;
    /// When the grasper closes again after the drop.
    pub const REGRIP_AT: f32 = 0.95;
    /// Expected landing window used to classify failure modes
    /// (drop-too-early vs. drop-too-late/never): fault-free trials land in
    /// this progress range. Kept tight so releases delayed past the fault
    /// window (e.g. a grasper pinned low until 90% of the trajectory)
    /// classify as dropoff failures, matching the §IV-B semantics.
    pub const LANDING_WINDOW: (f32, f32) = (0.82, 0.90);
}

/// The scripted Block Transfer plan.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct BlockTransferPlan;

impl BlockTransferPlan {
    /// The gesture active at normalized progress `p ∈ [0, 1]`.
    pub fn gesture(self, p: f32) -> Gesture {
        use schedule::*;
        if p < G2_END {
            Gesture::G2
        } else if p < G12_END {
            Gesture::G12
        } else if p < G6_END {
            Gesture::G6
        } else if p < G5_END {
            Gesture::G5
        } else {
            Gesture::G11
        }
    }

    /// Commanded arm states at progress `p`.
    pub fn commands(self, p: f32) -> Commands {
        use schedule::*;
        let p = p.clamp(0.0, 1.0);

        // Right arm (index 1) does the transfer.
        let right_start = Vec3::new(40.0, 0.0, 25.0);
        let above_block = layout::BLOCK_START + Vec3::new(0.0, 0.0, 10.0);
        let at_block = layout::BLOCK_START + Vec3::new(0.0, 0.0, 3.0);
        let center = Vec3::new(0.0, 0.0, 18.0);
        let above_receptacle = layout::RECEPTACLE + Vec3::new(0.0, 0.0, 14.0);
        let endpoint = Vec3::new(-62.0, 42.0, 24.0);

        let right_pos = if p < G2_END {
            // Approach: first over the block, then descend.
            let s = p / G2_END;
            if s < 0.6 {
                lerp(right_start, above_block, smooth(s / 0.6))
            } else {
                lerp(above_block, at_block, smooth((s - 0.6) / 0.4))
            }
        } else if p < G12_END {
            at_block
        } else if p < G6_END {
            lerp(at_block, center, smooth((p - G12_END) / (G6_END - G12_END)))
        } else if p < G5_END {
            lerp(center, above_receptacle, smooth((p - G6_END) / (G5_END - G6_END)))
        } else if p < RELEASE_AT {
            above_receptacle
        } else {
            lerp(above_receptacle, endpoint, smooth((p - RELEASE_AT) / (1.0 - RELEASE_AT)))
        };

        let right_grasper = if p < GRASP_AT {
            GRASPER_OPEN_CMD
        } else if p < RELEASE_AT {
            GRASPER_CLOSED_CMD
        } else if p < REGRIP_AT {
            GRASPER_OPEN_CMD
        } else {
            GRASPER_CLOSED_CMD * 3.0
        };

        // Left arm (index 0): support reach during G12, then hold.
        let left_start = Vec3::new(-40.0, 0.0, 25.0);
        let left_support = Vec3::new(15.0, -10.0, 18.0);
        let left_pos = if p < G2_END {
            left_start
        } else if p < G12_END {
            lerp(left_start, left_support, smooth((p - G2_END) / (G12_END - G2_END)))
        } else {
            left_support
        };

        let right_euler = (0.0, 0.1 * (p * std::f32::consts::PI).sin(), 0.2 * p);
        let left_euler = (0.0, 0.0, -0.1 * p);

        Commands {
            arms: [
                ArmCommand { position: left_pos, grasper: 0.6, euler: left_euler },
                ArmCommand { position: right_pos, grasper: right_grasper, euler: right_euler },
            ],
        }
    }
}

fn lerp(a: Vec3, b: Vec3, t: f32) -> Vec3 {
    a.lerp(b, t)
}

fn smooth(s: f32) -> f32 {
    let s = s.clamp(0.0, 1.0);
    s * s * (3.0 - 2.0 * s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gesture_sequence_matches_fig3b() {
        let plan = BlockTransferPlan;
        let seq: Vec<Gesture> = (0..100).map(|i| plan.gesture(i as f32 / 99.0)).collect();
        let mut collapsed = Vec::new();
        for g in seq {
            if collapsed.last() != Some(&g) {
                collapsed.push(g);
            }
        }
        assert_eq!(
            collapsed,
            vec![Gesture::G2, Gesture::G12, Gesture::G6, Gesture::G5, Gesture::G11]
        );
    }

    #[test]
    fn grasper_closes_on_block_and_opens_at_release() {
        let plan = BlockTransferPlan;
        assert_eq!(plan.commands(0.05).arms[1].grasper, GRASPER_OPEN_CMD);
        assert_eq!(plan.commands(0.5).arms[1].grasper, GRASPER_CLOSED_CMD);
        assert_eq!(plan.commands(0.88).arms[1].grasper, GRASPER_OPEN_CMD);
    }

    #[test]
    fn right_arm_reaches_block_then_receptacle() {
        let plan = BlockTransferPlan;
        let at_grasp = plan.commands(schedule::G2_END).arms[1].position;
        assert!(at_grasp.distance(layout::BLOCK_START) < 6.0, "grasp pos {at_grasp:?}");
        let at_release = plan.commands(0.84).arms[1].position;
        let dx = at_release.x - layout::RECEPTACLE.x;
        let dy = at_release.y - layout::RECEPTACLE.y;
        assert!((dx * dx + dy * dy).sqrt() < 5.0, "release pos {at_release:?}");
    }

    #[test]
    fn commands_are_continuous() {
        let plan = BlockTransferPlan;
        let n = 400;
        for i in 1..n {
            let a = plan.commands((i - 1) as f32 / (n - 1) as f32);
            let b = plan.commands(i as f32 / (n - 1) as f32);
            for arm in 0..2 {
                let step = a.arms[arm].position.distance(b.arms[arm].position);
                assert!(step < 3.0, "command jump {step} at step {i} arm {arm}");
            }
        }
    }

    #[test]
    fn progress_is_clamped() {
        let plan = BlockTransferPlan;
        assert_eq!(plan.commands(-0.5), plan.commands(0.0));
        assert_eq!(plan.commands(1.5), plan.commands(1.0));
    }
}
