//! Simulated manipulator: first-order tracking of commanded state plus a
//! deterministic joint/motor model to populate the Raven II feature schema.

use crate::plan::ArmCommand;
use kinematics::Vec3;
use serde::{Deserialize, Serialize};

/// Number of motor channels per arm in our Raven II state schema.
pub const MOTOR_CHANNELS: usize = 13;

/// One simulated arm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Arm {
    /// Actual end-effector position (mm).
    pub position: Vec3,
    /// Actual Euler orientation.
    pub euler: (f32, f32, f32),
    /// Actual grasper angle (rad).
    pub grasper: f32,
    /// Last commanded state.
    pub command: ArmCommand,
    /// Joint positions (synthesized from the pose).
    pub joint_pos: [f32; MOTOR_CHANNELS],
    /// Joint velocities.
    pub joint_vel: [f32; MOTOR_CHANNELS],
    /// Motor torque commands.
    pub torque: [f32; MOTOR_CHANNELS],
    /// Linear velocity (mm/s), finite-differenced.
    pub linear_velocity: Vec3,
    /// Angular velocity (rad/s), finite-differenced.
    pub angular_velocity: Vec3,
    /// Position-tracking time constant (s).
    pub tau_pos: f32,
    /// Grasper-tracking time constant (s).
    pub tau_grasper: f32,
}

impl Arm {
    /// Creates an arm at a starting pose.
    pub fn new(position: Vec3) -> Self {
        Self {
            position,
            euler: (0.0, 0.0, 0.0),
            grasper: 0.6,
            command: ArmCommand { position, grasper: 0.6, euler: (0.0, 0.0, 0.0) },
            joint_pos: [0.0; MOTOR_CHANNELS],
            joint_vel: [0.0; MOTOR_CHANNELS],
            torque: [0.0; MOTOR_CHANNELS],
            linear_velocity: Vec3::zero(),
            angular_velocity: Vec3::zero(),
            tau_pos: 0.05,
            tau_grasper: 0.02,
        }
    }

    /// Advances the arm one tick of `dt` seconds toward `cmd`.
    pub fn step(&mut self, cmd: ArmCommand, dt: f32) {
        self.command = cmd;
        let alpha_pos = 1.0 - (-dt / self.tau_pos).exp();
        let alpha_grasp = 1.0 - (-dt / self.tau_grasper).exp();

        let prev_pos = self.position;
        let prev_euler = self.euler;

        self.position = self.position.lerp(cmd.position, alpha_pos);
        self.euler = (
            self.euler.0 + (cmd.euler.0 - self.euler.0) * alpha_pos,
            self.euler.1 + (cmd.euler.1 - self.euler.1) * alpha_pos,
            self.euler.2 + (cmd.euler.2 - self.euler.2) * alpha_pos,
        );
        self.grasper += (cmd.grasper - self.grasper) * alpha_grasp;

        self.linear_velocity = (self.position - prev_pos) * (1.0 / dt);
        self.angular_velocity = Vec3::new(
            (self.euler.0 - prev_euler.0) / dt,
            (self.euler.1 - prev_euler.1) / dt,
            (self.euler.2 - prev_euler.2) / dt,
        );

        self.update_joints(dt);
    }

    /// Deterministic joint model: a fixed linear map from task space to the
    /// 13 motor channels (enough to exercise the full feature schema; real
    /// Raven II inverse kinematics is not needed for kinematics-level fault
    /// injection).
    fn update_joints(&mut self, dt: f32) {
        let p = self.position;
        let basis = [
            p.x * 0.01,
            p.y * 0.01,
            p.z * 0.01,
            self.euler.0,
            self.euler.1,
            self.euler.2,
            self.grasper,
        ];
        for k in 0..MOTOR_CHANNELS {
            let prev = self.joint_pos[k];
            // Mix the basis with channel-specific fixed weights.
            let mut v = 0.0f32;
            for (i, b) in basis.iter().enumerate() {
                let w = (((k * 7 + i * 3 + 1) % 11) as f32 - 5.0) / 5.0;
                v += w * b;
            }
            self.joint_pos[k] = v;
            self.joint_vel[k] = (v - prev) / dt;
            self.torque[k] = 0.6 * self.joint_vel[k] + 0.1 * v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cmd(pos: Vec3, grasper: f32) -> ArmCommand {
        ArmCommand { position: pos, grasper, euler: (0.0, 0.0, 0.0) }
    }

    #[test]
    fn arm_converges_to_command() {
        let mut arm = Arm::new(Vec3::zero());
        let target = Vec3::new(10.0, -5.0, 3.0);
        for _ in 0..200 {
            arm.step(cmd(target, 0.9), 0.01);
        }
        assert!(arm.position.distance(target) < 0.1);
        assert!((arm.grasper - 0.9).abs() < 0.01);
    }

    #[test]
    fn grasper_tracks_faster_than_position() {
        let mut arm = Arm::new(Vec3::zero());
        arm.step(cmd(Vec3::new(100.0, 0.0, 0.0), 1.2), 0.01);
        let pos_frac = arm.position.x / 100.0;
        let grasp_frac = (arm.grasper - 0.6) / (1.2 - 0.6);
        assert!(grasp_frac > pos_frac);
    }

    #[test]
    fn velocities_are_finite_differences() {
        let mut arm = Arm::new(Vec3::zero());
        arm.step(cmd(Vec3::new(10.0, 0.0, 0.0), 0.6), 0.01);
        let expect = arm.position.x / 0.01;
        assert!((arm.linear_velocity.x - expect).abs() < 1e-3);
    }

    #[test]
    fn joint_channels_respond_to_motion() {
        let mut arm = Arm::new(Vec3::zero());
        arm.step(cmd(Vec3::new(50.0, 20.0, -10.0), 1.0), 0.01);
        assert!(arm.joint_pos.iter().any(|&j| j.abs() > 1e-3));
        assert!(arm.torque.iter().any(|&t| t.abs() > 1e-5));
    }

    #[test]
    fn stationary_arm_has_zero_velocity() {
        let mut arm = Arm::new(Vec3::new(1.0, 2.0, 3.0));
        for _ in 0..50 {
            arm.step(cmd(Vec3::new(1.0, 2.0, 3.0), 0.6), 0.01);
        }
        assert!(arm.linear_velocity.norm() < 1e-3);
    }
}
