//! # `raven-sim` — a Raven II-like surgical robot simulator
//!
//! Pure-Rust replacement for the paper's ROS Gazebo + Raven II control
//! software stack (§IV-B): two first-order-controlled manipulators, a
//! block-and-receptacle world with grasp/slip/fall physics, a scripted
//! Block Transfer plan following the Fig. 3b gesture sequence, and a
//! 277-feature state log matching the paper's schema width.
//!
//! Faults are injected through the [`sim::CommandFilter`] hook, which
//! perturbs the commanded kinematic state variables exactly as the paper's
//! software fault injector perturbs trajectory packets.
//!
//! ```
//! use raven_sim::{run_block_transfer, NoFaults, SimConfig};
//!
//! let trial = run_block_transfer(&SimConfig::fast(7), &mut NoFaults);
//! assert!(trial.outcome.success);
//! assert_eq!(trial.features[0].len(), raven_sim::RAVEN_FEATURES);
//! ```

#![warn(missing_docs)]

pub mod arm;
pub mod features;
pub mod plan;
pub mod sim;
pub mod world;

pub use arm::Arm;
pub use features::RAVEN_FEATURES;
pub use plan::{ArmCommand, BlockTransferPlan, Commands};
pub use sim::{
    classify_outcome, run_block_transfer, BlockTransferSim, CommandFilter, FailureMode, NoFaults,
    SimConfig, Trial, TrialOutcome,
};
pub use world::{layout, BlockState, GraspPhysics, World, WorldEvent};
