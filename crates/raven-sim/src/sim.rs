//! The simulator loop: plan → (fault filter) → control → world physics →
//! logging, mirroring the paper's ROS Gazebo setup where faulty trajectory
//! packets are sent to the robot control software (§IV-B).

use crate::arm::Arm;
use crate::features::{flatten, RAVEN_FEATURES};
use crate::plan::{schedule, BlockTransferPlan, Commands};
use crate::world::{GraspPhysics, World, WorldEvent};
use gestures::Task;
use kinematics::{Demonstration, ErrorAnnotation, KinematicSample, ManipulatorState, Mat3, Vec3};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Simulation rate (Hz). The paper's simulator logs at 1 kHz; the
    /// default here is 100 Hz (see DESIGN.md §10), and all timings are
    /// expressed in trajectory fractions so the rate is transparent.
    pub hz: f32,
    /// Total trial duration in seconds.
    pub duration_s: f32,
    /// RNG seed (controls tremor and per-trial physics jitter).
    pub seed: u64,
    /// Tele-operation tremor amplitude (mm) added to commanded positions.
    pub tremor: f32,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self { hz: 100.0, duration_s: 8.0, seed: 0, tremor: 0.4 }
    }
}

impl SimConfig {
    /// Fast configuration for unit tests.
    pub fn fast(seed: u64) -> Self {
        Self { hz: 50.0, duration_s: 4.0, seed, tremor: 0.4 }
    }
}

/// A command-stream hook: mutates the commanded kinematic state variables
/// before they reach the robot control loop (the paper's software fault
/// injector perturbs exactly these packets), and observes the resulting
/// robot state after each physics step.
///
/// The two methods model the two halves of a monitor-in-the-control-loop
/// deployment (Fig. 4): [`observe`](CommandFilter::observe) is the sensing
/// path (the logged kinematic frame of tick `t`, delivered **after** the
/// arms and world have stepped), and [`apply`](CommandFilter::apply) is the
/// actuation path (the next tick's commands). A safety reactor therefore
/// acts on tick `t`'s state no earlier than tick `t + 1` — one tick of
/// sensing delay is built into the loop, and any additional actuation
/// latency is modeled on top by the filter itself.
pub trait CommandFilter {
    /// Perturbs `commands` at the given tick / normalized progress.
    fn apply(&mut self, tick: usize, progress: f32, commands: &mut Commands);

    /// Observes the robot state logged at `tick` (called after the physics
    /// step, before the next tick's [`apply`](CommandFilter::apply)). The
    /// default is a no-op so pure fault injectors stay untouched.
    fn observe(&mut self, tick: usize, state: &KinematicSample) {
        let _ = (tick, state);
    }
}

/// The identity filter: a fault-free trial.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl CommandFilter for NoFaults {
    fn apply(&mut self, _tick: usize, _progress: f32, _commands: &mut Commands) {}
}

/// Failure mode of a Block Transfer trial (the two error columns of
/// Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FailureMode {
    /// The block was dropped prematurely or landed outside the receptacle.
    BlockDrop,
    /// The block was not dropped (in the receptacle, at the right time).
    DropoffFailure,
}

impl std::fmt::Display for FailureMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureMode::BlockDrop => f.write_str("block-drop"),
            FailureMode::DropoffFailure => f.write_str("dropoff failure"),
        }
    }
}

/// Outcome of one trial.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrialOutcome {
    /// Whether the block landed in the receptacle within the expected
    /// landing window.
    pub success: bool,
    /// The failure mode, if any.
    pub failure: Option<FailureMode>,
    /// Tick at which the error became observable (landing tick for drops;
    /// end of the expected landing window for dropoff failures).
    pub error_tick: Option<usize>,
}

/// Full record of one simulated trial.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trial {
    /// JIGSAWS-schema demonstration (2 manipulators, per-tick gestures,
    /// outcome-derived safety labels).
    pub demo: Demonstration,
    /// Raw 277-feature rows, one per tick.
    pub features: Vec<Vec<f32>>,
    /// World events (grasp/release/land).
    pub events: Vec<WorldEvent>,
    /// Block centroid per tick (consumed by the `vision` crate).
    pub block_trace: Vec<Vec3>,
    /// Trial outcome.
    pub outcome: TrialOutcome,
}

/// Runs one Block Transfer trial through `filter`.
pub fn run_block_transfer(cfg: &SimConfig, filter: &mut dyn CommandFilter) -> Trial {
    let mut sim = BlockTransferSim::new(cfg);
    while !sim.done() {
        sim.step(filter);
    }
    sim.finish()
}

/// A resumable Block Transfer trial: the loop body of [`run_block_transfer`]
/// exposed one tick at a time, so a fleet driver can interleave N concurrent
/// guarded procedures in lockstep over one shared serving pool — each tick,
/// every live trial advances one physics step, its logged frame goes to the
/// pool, and the pool's decisions gate the *next* tick's commands.
///
/// Behavior is bit-identical to [`run_block_transfer`] for the same config
/// and filter: the RNG call order, physics, logging, and outcome
/// classification are literally the same code.
pub struct BlockTransferSim {
    cfg: SimConfig,
    rng: SmallRng,
    n: usize,
    dt: f32,
    plan: BlockTransferPlan,
    arms: [Arm; 2],
    world: World,
    features: Vec<Vec<f32>>,
    frames: Vec<KinematicSample>,
    gestures: Vec<gestures::Gesture>,
    block_trace: Vec<Vec3>,
    tick: usize,
}

impl BlockTransferSim {
    /// Prepares a trial (seeding the RNG and jittering the grasp physics
    /// exactly like [`run_block_transfer`]).
    ///
    /// # Panics
    ///
    /// Panics if `hz * duration_s` yields fewer than 10 ticks.
    pub fn new(cfg: &SimConfig) -> Self {
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let n = (cfg.hz * cfg.duration_s).round() as usize;
        assert!(n >= 10, "trial too short: {n} ticks");
        let world = World::new(GraspPhysics::jittered(&mut rng));
        Self {
            cfg: *cfg,
            rng,
            n,
            dt: 1.0 / cfg.hz,
            plan: BlockTransferPlan,
            arms: [Arm::new(Vec3::new(-40.0, 0.0, 25.0)), Arm::new(Vec3::new(40.0, 0.0, 25.0))],
            world,
            features: Vec::with_capacity(n),
            frames: Vec::with_capacity(n),
            gestures: Vec::with_capacity(n),
            block_trace: Vec::with_capacity(n),
            tick: 0,
        }
    }

    /// Total ticks this trial will run.
    pub fn ticks(&self) -> usize {
        self.n
    }

    /// The next tick [`BlockTransferSim::step`] will execute.
    pub fn tick(&self) -> usize {
        self.tick
    }

    /// Whether every tick has been executed.
    pub fn done(&self) -> bool {
        self.tick >= self.n
    }

    /// Executes one tick: plan → tremor → `filter.apply` → arm/world physics
    /// → logging → `filter.observe`, returning the kinematic frame logged at
    /// this tick (the frame a serving pool scores for the *next* tick's
    /// gating decision).
    ///
    /// # Panics
    ///
    /// Panics if called after [`BlockTransferSim::done`].
    pub fn step(&mut self, filter: &mut dyn CommandFilter) -> &KinematicSample {
        assert!(!self.done(), "trial already ran its {} ticks", self.n);
        let tick = self.tick;
        let progress = tick as f32 / (self.n - 1) as f32;
        let mut cmds = self.plan.commands(progress);
        // Tele-operation tremor on commanded positions.
        for arm in &mut cmds.arms {
            arm.position = arm.position
                + Vec3::new(
                    tremor(&mut self.rng, self.cfg.tremor),
                    tremor(&mut self.rng, self.cfg.tremor),
                    tremor(&mut self.rng, self.cfg.tremor * 0.5),
                );
        }
        filter.apply(tick, progress, &mut cmds);

        for (i, arm) in self.arms.iter_mut().enumerate() {
            arm.step(cmds.arms[i], self.dt);
        }
        self.world.step(
            tick,
            self.dt,
            &[
                (self.arms[0].position, self.arms[0].grasper),
                (self.arms[1].position, self.arms[1].grasper),
            ],
        );

        self.features.push(flatten(tick, self.dt, progress, &self.arms));
        // lint: allow(alloc, reason = "sim trace buffers; harness code, not the surgical hot loop -- reactor edge is a .step() name collision")
        let sample = KinematicSample::new(vec![to_state(&self.arms[0]), to_state(&self.arms[1])]);
        filter.observe(tick, &sample);
        self.frames.push(sample);
        self.gestures.push(self.plan.gesture(progress));
        self.block_trace.push(self.world.block_position);
        self.tick += 1;
        // lint: allow(panic, reason = "a frame is pushed four lines up; last() cannot be empty")
        self.frames.last().expect("frame just pushed")
    }

    /// Classifies the outcome and packages the completed trial.
    ///
    /// # Panics
    ///
    /// Panics if the trial has remaining ticks.
    pub fn finish(self) -> Trial {
        assert!(self.done(), "trial has {} ticks left", self.n - self.tick);
        let outcome = classify_outcome(self.world.events(), self.n);
        let demo = build_demo(&self.cfg, self.frames, self.gestures, &outcome);
        Trial {
            demo,
            features: self.features,
            events: self.world.events().to_vec(),
            block_trace: self.block_trace,
            outcome,
        }
    }
}

fn tremor(rng: &mut SmallRng, amp: f32) -> f32 {
    let u1: f32 = rng.gen_range(1e-7..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    amp * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

fn to_state(arm: &Arm) -> ManipulatorState {
    ManipulatorState {
        position: arm.position,
        rotation: Mat3::from_euler(arm.euler.0, arm.euler.1, arm.euler.2),
        grasper_angle: arm.grasper,
        linear_velocity: arm.linear_velocity,
        angular_velocity: arm.angular_velocity,
    }
}

/// Classifies the trial from world events (§IV-B failure semantics):
///
/// * landing before the expected window → premature **block-drop**,
/// * landing inside the window but outside the receptacle → **block-drop**
///   at the wrong position,
/// * landing inside the window and receptacle → success,
/// * landing after the window, or never → **dropoff failure** ("the block
///   should have been dropped, but it was not").
pub fn classify_outcome(events: &[WorldEvent], n_ticks: usize) -> TrialOutcome {
    let window = (
        (schedule::LANDING_WINDOW.0 * n_ticks as f32) as usize,
        (schedule::LANDING_WINDOW.1 * n_ticks as f32) as usize,
    );
    let landing = events.iter().find_map(|e| match *e {
        WorldEvent::Landed { tick, in_receptacle, .. } => Some((tick, in_receptacle)),
        _ => None,
    });
    match landing {
        Some((tick, in_receptacle)) => {
            if tick < window.0 {
                TrialOutcome {
                    success: false,
                    failure: Some(FailureMode::BlockDrop),
                    error_tick: Some(tick),
                }
            } else if tick <= window.1 && in_receptacle {
                TrialOutcome { success: true, failure: None, error_tick: None }
            } else if tick <= window.1 {
                TrialOutcome {
                    success: false,
                    failure: Some(FailureMode::BlockDrop),
                    error_tick: Some(tick),
                }
            } else {
                TrialOutcome {
                    success: false,
                    failure: Some(FailureMode::DropoffFailure),
                    error_tick: Some(window.1),
                }
            }
        }
        None => TrialOutcome {
            success: false,
            failure: Some(FailureMode::DropoffFailure),
            error_tick: Some(window.1.min(n_ticks - 1)),
        },
    }
}

fn build_demo(
    cfg: &SimConfig,
    frames: Vec<KinematicSample>,
    gestures: Vec<gestures::Gesture>,
    outcome: &TrialOutcome,
) -> Demonstration {
    let mut unsafe_labels = vec![false; frames.len()];
    let mut errors = Vec::new();
    if let (Some(_mode), Some(tick)) = (outcome.failure, outcome.error_tick) {
        // The erroneous gesture is the one active when the error manifested;
        // its whole segment is labeled unsafe (the paper labels whole
        // gestures).
        let g = gestures[tick.min(gestures.len() - 1)];
        let mut start = tick;
        while start > 0 && gestures[start - 1] == g {
            start -= 1;
        }
        let mut end = tick + 1;
        while end < gestures.len() && gestures[end] == g {
            end += 1;
        }
        for l in &mut unsafe_labels[start..end] {
            *l = true;
        }
        errors.push(ErrorAnnotation {
            gesture: g,
            span_start: start,
            span_end: end,
            actual_frame: tick,
        });
    }
    Demonstration {
        id: format!("BlockTransfer_SIM{:08x}", cfg.seed),
        task: Task::BlockTransfer,
        subject: "SIM".into(),
        supertrial: (cfg.seed % 5 + 1) as usize,
        hz: cfg.hz,
        frames,
        gestures,
        unsafe_labels,
        errors,
    }
}

/// Sanity accessor: the feature width every trial row has.
pub fn feature_width() -> usize {
    RAVEN_FEATURES
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::GRASPER_OPEN_CMD;

    #[test]
    fn fault_free_trial_succeeds() {
        for seed in 0..8 {
            let trial = run_block_transfer(&SimConfig::fast(seed), &mut NoFaults);
            assert!(
                trial.outcome.success,
                "seed {seed}: fault-free trial failed: {:?} events {:?}",
                trial.outcome, trial.events
            );
        }
    }

    #[test]
    fn trial_logs_full_feature_rows() {
        let trial = run_block_transfer(&SimConfig::fast(1), &mut NoFaults);
        assert!(!trial.features.is_empty());
        assert!(trial.features.iter().all(|r| r.len() == RAVEN_FEATURES));
        assert_eq!(trial.features.len(), trial.demo.len());
        assert_eq!(trial.block_trace.len(), trial.demo.len());
    }

    #[test]
    fn demo_follows_fig3b_gestures_and_validates() {
        let trial = run_block_transfer(&SimConfig::fast(2), &mut NoFaults);
        trial.demo.validate().expect("valid demo");
        use gestures::Gesture::*;
        assert_eq!(trial.demo.gesture_sequence(), vec![G2, G12, G6, G5, G11]);
    }

    #[test]
    fn fault_free_events_are_grasp_release_land() {
        let trial = run_block_transfer(&SimConfig::fast(3), &mut NoFaults);
        let kinds: Vec<&str> = trial
            .events
            .iter()
            .map(|e| match e {
                WorldEvent::Grasped { .. } => "grasp",
                WorldEvent::Released { .. } => "release",
                WorldEvent::Landed { .. } => "land",
            })
            .collect();
        assert_eq!(kinds, vec!["grasp", "release", "land"]);
    }

    /// A filter that forces the grasper open mid-carry: must cause a
    /// premature block-drop.
    struct ForceOpen;
    impl CommandFilter for ForceOpen {
        fn apply(&mut self, _t: usize, p: f32, c: &mut Commands) {
            if (0.4..0.6).contains(&p) {
                c.arms[1].grasper = GRASPER_OPEN_CMD;
            }
        }
    }

    #[test]
    fn forced_open_grasper_causes_block_drop() {
        let trial = run_block_transfer(&SimConfig::fast(4), &mut ForceOpen);
        assert_eq!(trial.outcome.failure, Some(FailureMode::BlockDrop));
        assert!(!trial.outcome.success);
        let err = trial.outcome.error_tick.unwrap();
        assert!((err as f32) < 0.7 * trial.demo.len() as f32);
        // Demo carries the unsafe annotation.
        assert_eq!(trial.demo.errors.len(), 1);
        assert!(trial.demo.unsafe_frames() > 0);
    }

    /// A filter that pins the grasper closed through the release: dropoff
    /// failure.
    struct PinClosed;
    impl CommandFilter for PinClosed {
        fn apply(&mut self, _t: usize, p: f32, c: &mut Commands) {
            if p >= 0.65 {
                c.arms[1].grasper = 0.4;
            }
        }
    }

    #[test]
    fn pinned_grasper_causes_dropoff_failure() {
        let trial = run_block_transfer(&SimConfig::fast(5), &mut PinClosed);
        assert_eq!(trial.outcome.failure, Some(FailureMode::DropoffFailure));
        assert_eq!(trial.demo.errors[0].gesture, gestures::Gesture::G11);
    }

    #[test]
    fn trials_are_deterministic_per_seed() {
        let a = run_block_transfer(&SimConfig::fast(6), &mut NoFaults);
        let b = run_block_transfer(&SimConfig::fast(6), &mut NoFaults);
        assert_eq!(a, b);
    }

    #[test]
    fn stepped_sim_is_bit_identical_to_the_closed_form_run() {
        // The fleet driver interleaves trials tick-by-tick; that must not
        // change a single bit of any trial. Checked fault-free and with a
        // command-mutating filter.
        let cfg = SimConfig::fast(7);
        let whole = run_block_transfer(&cfg, &mut NoFaults);
        let mut sim = BlockTransferSim::new(&cfg);
        assert_eq!(sim.ticks(), whole.demo.len());
        let mut frames_seen = 0usize;
        while !sim.done() {
            let t = sim.tick();
            let frame = sim.step(&mut NoFaults);
            assert_eq!(frame, &whole.demo.frames[t], "frame {t} diverged");
            frames_seen += 1;
        }
        assert_eq!(frames_seen, whole.demo.len());
        assert_eq!(sim.finish(), whole);

        let faulted = run_block_transfer(&SimConfig::fast(4), &mut ForceOpen);
        let mut sim = BlockTransferSim::new(&SimConfig::fast(4));
        let mut filter = ForceOpen;
        while !sim.done() {
            sim.step(&mut filter);
        }
        assert_eq!(sim.finish(), faulted);
    }
}
