//! TCP front end over an elastic [`ShardedMonitorPool`].
//!
//! Thread topology (all std-net blocking sockets, no async runtime):
//!
//! ```text
//!   acceptor ──spawns──▶ reader (1/conn) ──PoolCmd──▶ pool thread ──┐
//!                          ▲                              owns      │
//!                          │ recycled KinematicSample   the pool    │
//!                          └──────────────────────────────┘         │
//!   client ◀── writer (1/conn) ◀───────── Egress ───────────────────┘
//! ```
//!
//! The pool thread is the *only* owner of the [`ShardedMonitorPool`]; it
//! multiplexes every admitted session onto the pool's shard workers, so
//! the socket layer adds threads per connection but the inference fleet
//! stays at `ServeConfig::workers` threads regardless of session count.
//!
//! **Admission control sheds, never delays**: a HELLO past the session
//! cap gets a typed BUSY reply and a closed connection immediately.
//! Admitted sessions never queue behind arrivals — the paper's real-time
//! framing (every decision inside the 30 Hz tick budget) survives
//! overload because overload is turned away at the door
//! (DESIGN.md §13).
//!
//! A session slot is released back to the admission counter only after
//! the pool thread has called [`ShardedMonitorPool::remove_session`],
//! so `active ≤ cap` also bounds the pool's live sessions.
//!
//! Per-frame steady state is allocation-free end to end: the decoder
//! reuses one [`FrameMsg`], decoded samples travel reader → pool thread
//! by value and come back over a per-connection recycle channel, and the
//! writer reuses one encode buffer.

use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use bytes::{Buf, BytesMut};
use context_monitor::{ContextMode, ServeConfig, ShardedMonitorPool, TrainedPipeline};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use gestures::Gesture;
use kinematics::KinematicSample;

use crate::codec::{
    encode_busy, encode_bye, encode_decision, encode_error, encode_welcome, DecisionMsg, Decoded,
    Decoder, ErrorCode, FrameMsg,
};

/// How to run the service.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; `127.0.0.1:0` picks a free port (see
    /// [`IngressServer::local_addr`]).
    pub addr: String,
    /// Admission cap: concurrent admitted sessions. HELLOs beyond it get
    /// BUSY, never a queue slot.
    pub max_sessions: usize,
    /// Manipulators per frame the served pipeline was trained on
    /// (JIGSAWS: 2). Frames with any other count are rejected with
    /// [`ErrorCode::BadShape`] before they can reach a shard worker.
    pub manipulators: usize,
    /// Context mode every session runs in. `Perfect` requires clients to
    /// attach a gesture label to every FRAME; the other modes forbid it.
    pub mode: ContextMode,
    /// Shard-pool shape (worker threads, alert threshold, precision).
    pub serve: ServeConfig,
    /// Reader poll tick: how often an idle connection checks the
    /// shutdown flag. Bounds shutdown latency, not decision latency.
    pub read_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            max_sessions: 64,
            manipulators: 2,
            mode: ContextMode::Predicted,
            serve: ServeConfig::default(),
            read_timeout: Duration::from_millis(25),
        }
    }
}

/// Monotonic service counters (cheap atomics, readable while serving).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerStats {
    /// Sessions currently admitted (HELLO accepted, not yet removed).
    pub active: usize,
    /// Sessions ever admitted.
    pub admitted: u64,
    /// HELLOs turned away with BUSY.
    pub shed: u64,
    /// Connections closed for protocol violations.
    pub protocol_errors: u64,
    /// DECISION messages routed to writers.
    pub decisions: u64,
}

#[derive(Default)]
struct Counters {
    active: AtomicUsize,
    admitted: AtomicU64,
    shed: AtomicU64,
    protocol_errors: AtomicU64,
    decisions: AtomicU64,
}

/// Reader → pool-thread commands.
enum PoolCmd {
    Open {
        conn: u64,
        egress: Sender<Egress>,
        recycle: Sender<KinematicSample>,
    },
    Frame {
        conn: u64,
        context: Option<Gesture>,
        sample: KinematicSample,
    },
    Goodbye {
        conn: u64,
    },
    /// Connection vanished (EOF, socket error, reader shutdown): remove
    /// the session immediately, dropping undelivered decisions.
    Gone {
        conn: u64,
    },
}

/// Pool-thread / reader → writer messages.
enum Egress {
    Welcome {
        session: u64,
    },
    Busy {
        active: u32,
        cap: u32,
    },
    Decision(DecisionMsg),
    Error {
        code: ErrorCode,
    },
    Bye {
        delivered: u64,
    },
    /// Flush nothing more; shut the socket down.
    Close,
}

/// Handle to a running ingress service. Dropping it shuts the service
/// down and joins every thread.
pub struct IngressServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    counters: Arc<Counters>,
    cmd_tx: Option<Sender<PoolCmd>>,
    acceptor: Option<JoinHandle<()>>,
    pool_thread: Option<JoinHandle<()>>,
    threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

#[derive(Clone)]
struct ReaderCtx {
    cmd_tx: Sender<PoolCmd>,
    counters: Arc<Counters>,
    shutdown: Arc<AtomicBool>,
    mode: ContextMode,
    manipulators: usize,
    max_sessions: usize,
    read_timeout: Duration,
}

impl IngressServer {
    /// Binds, spawns the acceptor and pool threads, and starts serving.
    pub fn start(pipeline: Arc<TrainedPipeline>, cfg: ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let shutdown = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(Counters::default());
        let threads: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let (cmd_tx, cmd_rx) = unbounded::<PoolCmd>();

        let pool_counters = Arc::clone(&counters);
        let pool_mode = cfg.mode;
        let pool_serve = cfg.serve;
        let pool_thread = std::thread::Builder::new()
            .name("ingress-pool".to_string())
            .spawn(move || pool_loop(pipeline, pool_mode, pool_serve, cmd_rx, pool_counters))?;

        let ctx = ReaderCtx {
            cmd_tx: cmd_tx.clone(),
            counters: Arc::clone(&counters),
            shutdown: Arc::clone(&shutdown),
            mode: cfg.mode,
            manipulators: cfg.manipulators,
            max_sessions: cfg.max_sessions,
            read_timeout: cfg.read_timeout,
        };
        let acceptor_shutdown = Arc::clone(&shutdown);
        let acceptor_threads = Arc::clone(&threads);
        let acceptor = std::thread::Builder::new()
            .name("ingress-accept".to_string())
            .spawn(move || accept_loop(listener, ctx, acceptor_shutdown, acceptor_threads))?;

        Ok(Self {
            addr,
            shutdown,
            counters,
            cmd_tx: Some(cmd_tx),
            acceptor: Some(acceptor),
            pool_thread: Some(pool_thread),
            threads,
        })
    }

    /// The address the service is listening on (with the real port when
    /// bound to `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of the service counters.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            active: self.counters.active.load(Ordering::Acquire),
            admitted: self.counters.admitted.load(Ordering::Relaxed),
            shed: self.counters.shed.load(Ordering::Relaxed),
            protocol_errors: self.counters.protocol_errors.load(Ordering::Relaxed),
            decisions: self.counters.decisions.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting, drains every connection, and joins all threads.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        // Readers exit within one read-timeout tick of the flag; once the
        // last one drops its command sender the channel disconnects and
        // the pool thread drains and exits.
        self.cmd_tx = None;
        if let Some(h) = self.pool_thread.take() {
            let _ = h.join();
        }
        let handles = match self.threads.lock() {
            Ok(mut guard) => std::mem::take(&mut *guard),
            Err(_) => Vec::new(),
        };
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for IngressServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    ctx: ReaderCtx,
    shutdown: Arc<AtomicBool>,
    threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    let mut next_conn: u64 = 0;
    while !shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let conn = next_conn;
                next_conn += 1;
                let conn_ctx = ctx.clone();
                let spawned = std::thread::Builder::new()
                    .name(format!("ingress-conn-{conn}"))
                    .spawn(move || reader_loop(stream, conn, conn_ctx));
                if let (Ok(handle), Ok(mut guard)) = (spawned, threads.lock()) {
                    guard.push(handle);
                }
            }
            Err(ref e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// Per-connection protocol state.
#[derive(PartialEq, Eq, Clone, Copy)]
enum ConnState {
    AwaitHello,
    Streaming,
    Draining,
}

fn reader_loop(mut stream: TcpStream, conn: u64, ctx: ReaderCtx) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(ctx.read_timeout));
    let writer_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let (egress_tx, egress_rx) = unbounded::<Egress>();
    // The writer thread joins through the server's shared handle list;
    // it exits when every Egress sender is gone (reader + pool entry).
    let writer = std::thread::Builder::new()
        .name(format!("ingress-write-{conn}"))
        .spawn(move || writer_loop(writer_stream, egress_rx));
    match writer {
        Ok(_detached_until_senders_drop) => {}
        Err(_) => return,
    }

    let (recycle_tx, recycle_rx) = unbounded::<KinematicSample>();
    let mut dec = Decoder::new();
    let mut frame = FrameMsg::default();
    let mut buf = [0u8; 16 * 1024];
    let mut state = ConnState::AwaitHello;
    let mut next_seq: u32 = 0;
    let mut opened = false;

    // Sends the typed error reply, closes the socket, and counts it.
    let fail = |code: ErrorCode| {
        ctx.counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
        let _ = egress_tx.send(Egress::Error { code });
        let _ = egress_tx.send(Egress::Close);
    };

    'conn: loop {
        match stream.read(&mut buf) {
            Ok(0) => break 'conn,
            Ok(n) => {
                // lint: allow(panic, reason = "read() contract: n <= buf.len()")
                dec.extend(&buf[..n]);
                loop {
                    match dec.decode_next(&mut frame) {
                        Ok(None) => break,
                        Err(err) => {
                            fail(err.into());
                            break 'conn;
                        }
                        Ok(Some(Decoded::Hello { wants_context })) => {
                            if state != ConnState::AwaitHello {
                                fail(ErrorCode::UnexpectedMessage);
                                break 'conn;
                            }
                            if wants_context != (ctx.mode == ContextMode::Perfect) {
                                fail(ErrorCode::BadContext);
                                break 'conn;
                            }
                            let cap = ctx.max_sessions;
                            let seat = ctx.counters.active.fetch_update(
                                Ordering::AcqRel,
                                Ordering::Acquire,
                                |active| if active < cap { Some(active + 1) } else { None },
                            );
                            match seat {
                                Err(active) => {
                                    // Shed, don't delay: typed BUSY and out.
                                    ctx.counters.shed.fetch_add(1, Ordering::Relaxed);
                                    let _ = egress_tx.send(Egress::Busy {
                                        active: active as u32,
                                        cap: cap as u32,
                                    });
                                    let _ = egress_tx.send(Egress::Close);
                                    break 'conn;
                                }
                                Ok(_) => {
                                    ctx.counters.admitted.fetch_add(1, Ordering::Relaxed);
                                    let open = ctx.cmd_tx.send(PoolCmd::Open {
                                        conn,
                                        egress: egress_tx.clone(),
                                        recycle: recycle_tx.clone(),
                                    });
                                    if open.is_err() {
                                        ctx.counters.active.fetch_sub(1, Ordering::AcqRel);
                                        let _ = egress_tx.send(Egress::Close);
                                        break 'conn;
                                    }
                                    opened = true;
                                    state = ConnState::Streaming;
                                }
                            }
                        }
                        Ok(Some(Decoded::Frame)) => {
                            if state != ConnState::Streaming {
                                fail(ErrorCode::UnexpectedMessage);
                                break 'conn;
                            }
                            if frame.seq != next_seq {
                                fail(ErrorCode::BadSequence);
                                break 'conn;
                            }
                            let wants = ctx.mode == ContextMode::Perfect;
                            if frame.context.is_some() != wants {
                                fail(ErrorCode::BadContext);
                                break 'conn;
                            }
                            if frame.sample.manipulators.len() != ctx.manipulators {
                                fail(ErrorCode::BadShape);
                                break 'conn;
                            }
                            next_seq += 1;
                            // Swap the decoded sample out against a
                            // recycled one so the decoder's scratch keeps
                            // its warmed-up capacity.
                            let mut sample = recycle_rx.try_recv().unwrap_or_default();
                            std::mem::swap(&mut sample, &mut frame.sample);
                            let sent = ctx.cmd_tx.send(PoolCmd::Frame {
                                conn,
                                context: frame.context,
                                sample,
                            });
                            if sent.is_err() {
                                break 'conn;
                            }
                        }
                        Ok(Some(Decoded::Goodbye)) => {
                            if state != ConnState::Streaming {
                                fail(ErrorCode::UnexpectedMessage);
                                break 'conn;
                            }
                            state = ConnState::Draining;
                            if ctx.cmd_tx.send(PoolCmd::Goodbye { conn }).is_err() {
                                break 'conn;
                            }
                        }
                        // Server→client kinds arriving *from* a client.
                        Ok(Some(_)) => {
                            fail(ErrorCode::BadKind);
                            break 'conn;
                        }
                    }
                }
            }
            Err(ref e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if ctx.shutdown.load(Ordering::Acquire) {
                    break 'conn;
                }
            }
            Err(_) => break 'conn,
        }
    }
    if opened {
        // Idempotent: the pool ignores conns it already finished.
        let _ = ctx.cmd_tx.send(PoolCmd::Gone { conn });
    }
}

fn writer_loop(mut stream: TcpStream, egress_rx: Receiver<Egress>) {
    let mut enc = BytesMut::new();
    while let Ok(msg) = egress_rx.recv() {
        enc.clear();
        match msg {
            Egress::Close => break,
            Egress::Welcome { session } => encode_welcome(&mut enc, session),
            Egress::Busy { active, cap } => encode_busy(&mut enc, active, cap),
            Egress::Decision(d) => encode_decision(&mut enc, &d),
            Egress::Error { code } => encode_error(&mut enc, code),
            Egress::Bye { delivered } => encode_bye(&mut enc, delivered),
        }
        if stream.write_all(enc.chunk()).is_err() {
            break;
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
}

struct ConnEntry {
    session: usize,
    egress: Sender<Egress>,
    recycle: Sender<KinematicSample>,
    submitted: u64,
    delivered: u64,
    draining: bool,
}

/// Sole owner of the [`ShardedMonitorPool`]: admits sessions into it,
/// forwards frames, routes decisions back to the right writer, and
/// removes sessions when their connection ends (elasticity — freed
/// engine slots are recycled for future sessions).
fn pool_loop(
    pipeline: Arc<TrainedPipeline>,
    mode: ContextMode,
    serve: ServeConfig,
    cmd_rx: Receiver<PoolCmd>,
    counters: Arc<Counters>,
) {
    let mut pool = ShardedMonitorPool::new(pipeline, mode, serve);
    let mut conns: HashMap<u64, ConnEntry> = HashMap::new();
    let mut by_session: HashMap<usize, u64> = HashMap::new();
    let mut decisions = Vec::new();

    'serve: loop {
        match cmd_rx.recv_timeout(Duration::from_micros(500)) {
            Ok(cmd) => {
                handle_cmd(cmd, &mut pool, &mut conns, &mut by_session, &counters);
                while let Ok(cmd) = cmd_rx.try_recv() {
                    handle_cmd(cmd, &mut pool, &mut conns, &mut by_session, &counters);
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break 'serve,
        }
        pool.poll_into(&mut decisions);
        route_decisions(&mut decisions, &mut pool, &mut conns, &mut by_session, &counters);
    }

    // Shutdown: nothing can submit any more; drain in-flight compute so
    // the counters stay truthful, then release every writer.
    pool.flush_into(&mut decisions);
    route_decisions(&mut decisions, &mut pool, &mut conns, &mut by_session, &counters);
    for entry in conns.values() {
        let _ = entry.egress.send(Egress::Close);
    }
    counters.active.store(0, Ordering::Release);
}

fn handle_cmd(
    cmd: PoolCmd,
    pool: &mut ShardedMonitorPool,
    conns: &mut HashMap<u64, ConnEntry>,
    by_session: &mut HashMap<usize, u64>,
    counters: &Arc<Counters>,
) {
    match cmd {
        PoolCmd::Open { conn, egress, recycle } => {
            let session = pool.add_session();
            let _ = egress.send(Egress::Welcome { session: session as u64 });
            by_session.insert(session, conn);
            conns.insert(
                conn,
                ConnEntry { session, egress, recycle, submitted: 0, delivered: 0, draining: false },
            );
        }
        PoolCmd::Frame { conn, context, sample } => {
            let Some(entry) = conns.get_mut(&conn) else { return };
            match context {
                Some(gesture) => pool.submit_with_context(entry.session, &sample, gesture),
                None => {
                    // The reader enforced mode/context agreement, so this
                    // cannot be Err(MissingContext).
                    let _ = pool.submit(entry.session, &sample);
                }
            }
            entry.submitted += 1;
            let _ = entry.recycle.send(sample);
        }
        PoolCmd::Goodbye { conn } => {
            let finished = match conns.get_mut(&conn) {
                Some(entry) => {
                    entry.draining = true;
                    entry.delivered == entry.submitted
                }
                None => false,
            };
            if finished {
                finish_conn(conn, pool, conns, by_session, counters);
            }
        }
        PoolCmd::Gone { conn } => {
            if let Some(entry) = conns.remove(&conn) {
                by_session.remove(&entry.session);
                pool.remove_session(entry.session);
                counters.active.fetch_sub(1, Ordering::AcqRel);
            }
        }
    }
}

fn route_decisions(
    decisions: &mut Vec<context_monitor::Decision>,
    pool: &mut ShardedMonitorPool,
    conns: &mut HashMap<u64, ConnEntry>,
    by_session: &mut HashMap<usize, u64>,
    counters: &Arc<Counters>,
) {
    for d in decisions.drain(..) {
        // Sessions whose connection died mid-flight still drain their
        // decisions out of the pool; they just have nowhere to go.
        let Some(&conn) = by_session.get(&d.session) else { continue };
        let finished = match conns.get_mut(&conn) {
            Some(entry) => {
                entry.delivered += 1;
                counters.decisions.fetch_add(1, Ordering::Relaxed);
                let msg = DecisionMsg::from_decision(d.frame as u32, d.output.as_ref());
                let _ = entry.egress.send(Egress::Decision(msg));
                entry.draining && entry.delivered == entry.submitted
            }
            None => false,
        };
        if finished {
            finish_conn(conn, pool, conns, by_session, counters);
        }
    }
}

/// Clean GOODBYE completion: every submitted frame has its decision on
/// the wire, so acknowledge with BYE, close, and free the session slot.
fn finish_conn(
    conn: u64,
    pool: &mut ShardedMonitorPool,
    conns: &mut HashMap<u64, ConnEntry>,
    by_session: &mut HashMap<usize, u64>,
    counters: &Arc<Counters>,
) {
    let Some(entry) = conns.remove(&conn) else { return };
    let _ = entry.egress.send(Egress::Bye { delivered: entry.delivered });
    let _ = entry.egress.send(Egress::Close);
    by_session.remove(&entry.session);
    pool.remove_session(entry.session);
    counters.active.fetch_sub(1, Ordering::AcqRel);
}
