//! Length-prefixed binary wire protocol for the ingress service.
//!
//! Every message is `u32le body_len | body`, with
//! `body = u8 version | u8 kind | payload`. The length prefix counts the
//! body only (version byte included), so a reader can frame a message
//! without understanding it. Version is [`WIRE_VERSION`]; a mismatched
//! version byte is rejected per message, letting a future v2 coexist on
//! the same port.
//!
//! Client → server kinds sit in `0x01..=0x7F`, server → client kinds in
//! `0x80..=0xFF`, so a direction-confused peer is caught by kind, not by
//! payload shape.
//!
//! | kind | message  | payload |
//! |------|----------|---------|
//! | 0x01 | HELLO    | `u8 wants_context` |
//! | 0x02 | FRAME    | `u32 seq \| u8 context (0xFF = none, else gesture index) \| u8 nmanip \| nmanip × 19 f32le` |
//! | 0x03 | GOODBYE  | empty |
//! | 0x81 | WELCOME  | `u64 session` |
//! | 0x82 | BUSY     | `u32 active \| u32 cap` |
//! | 0x83 | DECISION | `u32 seq \| u8 flags (bit0 warm, bit1 alert) \| u8 gesture \| u32 score_bits \| u32 compute_ms_bits` |
//! | 0x84 | ERROR    | `u8 code` |
//! | 0x85 | BYE      | `u64 delivered` |
//!
//! Scores travel as IEEE-754 bit patterns (`f32::to_bits`), never as
//! decimal text, so the socket decision stream can be compared
//! *bit-identically* against an in-process pool (`tests/e2e.rs`).
//!
//! Decoding never trusts the peer: the length prefix is bounds-checked
//! against [`MAX_BODY`] **before any buffer growth**, every payload read
//! is checked ([`Cursor`]), and a declared manipulator count is verified
//! against the actual body length. The whole module is in the workspace
//! linter's no-panic scope (`lint.toml`); malformed input surfaces as
//! [`ProtoError`], not as a panic in a worker thread.

use bytes::{Buf, BufMut, BytesMut};
use gestures::Gesture;
use kinematics::{KinematicSample, ManipulatorState, Vec3, VARS_PER_MANIPULATOR};

/// Protocol version carried in every message body.
pub const WIRE_VERSION: u8 = 1;

/// Upper bound on a message body, checked against the length prefix
/// *before* the decoder reserves space for the message. 255 manipulators
/// × 19 f32 + the FRAME header is < 20 KiB; 64 KiB leaves headroom for a
/// future v2 without letting a hostile 4 GiB prefix drive an allocation.
pub const MAX_BODY: usize = 64 * 1024;

/// Sentinel context byte in FRAME meaning "no gesture label attached".
const NO_CONTEXT: u8 = 0xFF;

/// Message kind bytes (client → server).
pub const KIND_HELLO: u8 = 0x01;
/// See [`KIND_HELLO`].
pub const KIND_FRAME: u8 = 0x02;
/// See [`KIND_HELLO`].
pub const KIND_GOODBYE: u8 = 0x03;
/// Message kind bytes (server → client).
pub const KIND_WELCOME: u8 = 0x81;
/// See [`KIND_WELCOME`].
pub const KIND_BUSY: u8 = 0x82;
/// See [`KIND_WELCOME`].
pub const KIND_DECISION: u8 = 0x83;
/// See [`KIND_WELCOME`].
pub const KIND_ERROR: u8 = 0x84;
/// See [`KIND_WELCOME`].
pub const KIND_BYE: u8 = 0x85;

/// Why a byte stream failed to decode. Every variant closes the
/// connection with a typed [`ErrorCode`] reply; none of them panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtoError {
    /// Length prefix exceeds [`MAX_BODY`] — rejected before allocation.
    Oversized {
        /// The declared body length.
        declared: usize,
    },
    /// Version byte is not [`WIRE_VERSION`].
    BadVersion {
        /// The version byte received.
        got: u8,
    },
    /// Unknown message kind byte.
    BadKind {
        /// The kind byte received.
        got: u8,
    },
    /// Body ended before its payload did.
    Truncated,
    /// Body kept going after its payload ended.
    TrailingBytes,
    /// FRAME context byte is neither `0xFF` nor a valid gesture index.
    BadGesture {
        /// The context byte received.
        got: u8,
    },
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            ProtoError::Oversized { declared } => {
                write!(f, "declared body of {declared} bytes exceeds MAX_BODY {MAX_BODY}")
            }
            ProtoError::BadVersion { got } => {
                write!(f, "wire version {got} (expected {WIRE_VERSION})")
            }
            ProtoError::BadKind { got } => write!(f, "unknown message kind {got:#04x}"),
            ProtoError::Truncated => write!(f, "payload shorter than its header claims"),
            ProtoError::TrailingBytes => write!(f, "payload longer than its header claims"),
            ProtoError::BadGesture { got } => write!(f, "context byte {got:#04x} is no gesture"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// Typed reason carried by an ERROR message before the server closes a
/// connection. The codec maps [`ProtoError`] onto the first four; the
/// server adds the session-state reasons.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// Generic framing/payload violation (truncated, trailing, bad
    /// gesture byte).
    Malformed = 1,
    /// Version byte mismatch.
    BadVersion = 2,
    /// Length prefix above [`MAX_BODY`].
    Oversized = 3,
    /// Kind byte the server does not accept (unknown, or server→client
    /// kind sent by a client).
    BadKind = 4,
    /// Message legal in itself but not in this session state (FRAME
    /// before HELLO, second HELLO, FRAME after GOODBYE).
    UnexpectedMessage = 5,
    /// FRAME sequence number was not the next expected one.
    BadSequence = 6,
    /// FRAME context contradicts the pool's [`ContextMode`]: missing
    /// under `Perfect`, present under `Predicted`/`NoContext`.
    ///
    /// [`ContextMode`]: context_monitor::ContextMode
    BadContext = 7,
    /// FRAME manipulator count differs from what the served pipeline was
    /// trained on.
    BadShape = 8,
}

impl ErrorCode {
    /// Decodes a wire byte back into a code.
    // lint: hot-path
    pub fn from_u8(byte: u8) -> Option<ErrorCode> {
        match byte {
            1 => Some(ErrorCode::Malformed),
            2 => Some(ErrorCode::BadVersion),
            3 => Some(ErrorCode::Oversized),
            4 => Some(ErrorCode::BadKind),
            5 => Some(ErrorCode::UnexpectedMessage),
            6 => Some(ErrorCode::BadSequence),
            7 => Some(ErrorCode::BadContext),
            8 => Some(ErrorCode::BadShape),
            _ => None,
        }
    }
}

impl From<ProtoError> for ErrorCode {
    fn from(err: ProtoError) -> ErrorCode {
        match err {
            ProtoError::Oversized { .. } => ErrorCode::Oversized,
            ProtoError::BadVersion { .. } => ErrorCode::BadVersion,
            ProtoError::BadKind { .. } => ErrorCode::BadKind,
            ProtoError::Truncated | ProtoError::TrailingBytes | ProtoError::BadGesture { .. } => {
                ErrorCode::Malformed
            }
        }
    }
}

/// Reusable FRAME payload target: [`Decoder::decode_next`] writes into
/// this instead of returning an owned sample, so a warm connection
/// decodes frames with **zero allocations** (the manipulator `Vec`
/// reaches its high-water mark once and is reused).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FrameMsg {
    /// Client-assigned sequence number (dense from 0 per session).
    pub seq: u32,
    /// Operator-supplied gesture label (`Perfect` context mode).
    pub context: Option<Gesture>,
    /// The decoded kinematic frame.
    pub sample: KinematicSample,
}

/// A DECISION message — the per-frame verdict in wire form. Scores stay
/// as bit patterns end to end; [`DecisionMsg::from_decision`] and the
/// e2e tests compare them with `==`, never through a float round-trip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecisionMsg {
    /// Echoed FRAME sequence number.
    pub seq: u32,
    /// `false` while the session's sliding window is still warming up
    /// (gesture/score/alert fields are zero and meaningless then).
    pub warm: bool,
    /// Whether the alert threshold was crossed.
    pub alert: bool,
    /// [`Gesture::index`] of the inferred context.
    pub gesture: u8,
    /// `f32::to_bits` of the unsafe probability.
    pub score_bits: u32,
    /// `f32::to_bits` of the per-frame compute latency (wall-clock:
    /// excluded from bit-equality, like `compute_ms` everywhere else).
    pub compute_ms_bits: u32,
}

impl DecisionMsg {
    /// Converts a pool decision (minus its session id, which the wire
    /// carries implicitly — one session per connection) to wire form.
    pub fn from_decision(seq: u32, output: Option<&context_monitor::MonitorOutput>) -> DecisionMsg {
        match output {
            None => DecisionMsg {
                seq,
                warm: false,
                alert: false,
                gesture: 0,
                score_bits: 0,
                compute_ms_bits: 0,
            },
            Some(out) => DecisionMsg {
                seq,
                warm: true,
                alert: out.alert,
                gesture: out.gesture.index() as u8,
                score_bits: out.unsafe_probability.to_bits(),
                compute_ms_bits: out.compute_ms.to_bits(),
            },
        }
    }

    /// The bit-equality key: everything except `compute_ms_bits`
    /// (wall-clock, excluded from equality exactly like the in-process
    /// equivalence tests exclude `compute_ms`).
    pub fn key(&self) -> (u32, bool, bool, u8, u32) {
        (self.seq, self.warm, self.alert, self.gesture, self.score_bits)
    }
}

/// One fully decoded message. FRAME payloads land in the caller's
/// [`FrameMsg`] (see [`Decoder::decode_next`]); everything else is small
/// and returned by value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decoded {
    /// Session open request.
    Hello {
        /// Client intends to attach gesture context to every FRAME.
        wants_context: bool,
    },
    /// One kinematic frame; payload written into the out-param.
    Frame,
    /// Clean end-of-stream: drain my decisions, then BYE.
    Goodbye,
    /// Session admitted.
    Welcome {
        /// Server-assigned session id.
        session: u64,
    },
    /// Session shed by admission control.
    Busy {
        /// Sessions active when the HELLO arrived.
        active: u32,
        /// The admission cap.
        cap: u32,
    },
    /// Per-frame verdict.
    Decision(DecisionMsg),
    /// Typed protocol error; the connection closes after this.
    Error {
        /// Why.
        code: ErrorCode,
    },
    /// GOODBYE acknowledged after the decision stream drained.
    Bye {
        /// Decisions delivered over the session's lifetime.
        delivered: u64,
    },
}

/// Checked, panic-free reader over one message body.
struct Cursor<'a> {
    rest: &'a [u8],
}

impl<'a> Cursor<'a> {
    // lint: hot-path
    fn new(body: &'a [u8]) -> Cursor<'a> {
        Cursor { rest: body }
    }

    // lint: hot-path
    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        if n > self.rest.len() {
            return Err(ProtoError::Truncated);
        }
        let (head, tail) = self.rest.split_at(n);
        self.rest = tail;
        Ok(head)
    }

    // lint: hot-path
    fn u8(&mut self) -> Result<u8, ProtoError> {
        match self.rest.split_first() {
            Some((&byte, tail)) => {
                self.rest = tail;
                Ok(byte)
            }
            None => Err(ProtoError::Truncated),
        }
    }

    // lint: hot-path
    fn u32(&mut self) -> Result<u32, ProtoError> {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(self.take(4)?);
        Ok(u32::from_le_bytes(raw))
    }

    // lint: hot-path
    fn u64(&mut self) -> Result<u64, ProtoError> {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(raw))
    }

    // lint: hot-path
    fn f32(&mut self) -> Result<f32, ProtoError> {
        Ok(f32::from_bits(self.u32()?))
    }

    fn finish(self) -> Result<(), ProtoError> {
        if self.rest.is_empty() {
            Ok(())
        } else {
            Err(ProtoError::TrailingBytes)
        }
    }
}

/// Incremental stream decoder. Feed raw socket reads with
/// [`Decoder::extend`]; pull complete messages with
/// [`Decoder::decode_next`]. Handles messages split across arbitrarily
/// many reads (and many messages per read).
#[derive(Debug, Default)]
pub struct Decoder {
    buf: BytesMut,
}

impl Decoder {
    /// An empty decoder.
    pub fn new() -> Decoder {
        Decoder { buf: BytesMut::new() }
    }

    /// Bytes buffered but not yet consumed as messages.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Appends raw bytes from the socket.
    // lint: hot-path
    pub fn extend(&mut self, data: &[u8]) {
        self.buf.put_slice(data);
    }

    /// Decodes the next complete message, if one is buffered.
    ///
    /// Returns `Ok(None)` when more bytes are needed, `Ok(Some(_))` for a
    /// complete message (FRAME payloads are written into `frame`, and the
    /// variant is [`Decoded::Frame`]), and `Err(_)` on malformed input —
    /// after which the stream is poisoned and the connection must close.
    ///
    /// An oversized length prefix fails here *before* the decoder buffers
    /// or reserves anything for the message body.
    // lint: hot-path
    pub fn decode_next(&mut self, frame: &mut FrameMsg) -> Result<Option<Decoded>, ProtoError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let mut prefix = [0u8; 4];
        match self.buf.chunk().get(..4) {
            Some(head) => prefix.copy_from_slice(head),
            None => return Ok(None),
        }
        let body_len = u32::from_le_bytes(prefix) as usize;
        if body_len > MAX_BODY {
            return Err(ProtoError::Oversized { declared: body_len });
        }
        if self.buf.len() < 4 + body_len {
            return Ok(None);
        }
        self.buf.advance(4);
        let decoded = match self.buf.chunk().get(..body_len) {
            Some(body) => decode_body(body, frame),
            None => Err(ProtoError::Truncated),
        };
        self.buf.advance(body_len);
        // lint: allow(hot-path, reason = "receiver is an Option, not a Mat -- std .map() name collision in the receiver-blind resolver")
        decoded.map(Some)
    }
}

/// Decodes one framed body (version byte onward).
// lint: hot-path
fn decode_body(body: &[u8], frame: &mut FrameMsg) -> Result<Decoded, ProtoError> {
    let mut cur = Cursor::new(body);
    let version = cur.u8()?;
    if version != WIRE_VERSION {
        return Err(ProtoError::BadVersion { got: version });
    }
    let kind = cur.u8()?;
    match kind {
        KIND_HELLO => {
            let wants_context = cur.u8()? != 0;
            cur.finish()?;
            Ok(Decoded::Hello { wants_context })
        }
        KIND_FRAME => {
            frame.seq = cur.u32()?;
            let ctx = cur.u8()?;
            frame.context = if ctx == NO_CONTEXT {
                None
            } else {
                match Gesture::from_index(ctx as usize) {
                    Some(g) => Some(g),
                    None => return Err(ProtoError::BadGesture { got: ctx }),
                }
            };
            let nmanip = cur.u8()? as usize;
            frame.sample.manipulators.resize(nmanip, ManipulatorState::default());
            for manip in &mut frame.sample.manipulators {
                decode_manipulator(&mut cur, manip)?;
            }
            cur.finish()?;
            Ok(Decoded::Frame)
        }
        KIND_GOODBYE => {
            cur.finish()?;
            Ok(Decoded::Goodbye)
        }
        KIND_WELCOME => {
            let session = cur.u64()?;
            cur.finish()?;
            Ok(Decoded::Welcome { session })
        }
        KIND_BUSY => {
            let active = cur.u32()?;
            let cap = cur.u32()?;
            cur.finish()?;
            Ok(Decoded::Busy { active, cap })
        }
        KIND_DECISION => {
            let seq = cur.u32()?;
            let flags = cur.u8()?;
            let gesture = cur.u8()?;
            let score_bits = cur.u32()?;
            let compute_ms_bits = cur.u32()?;
            cur.finish()?;
            Ok(Decoded::Decision(DecisionMsg {
                seq,
                warm: flags & 0x01 != 0,
                alert: flags & 0x02 != 0,
                gesture,
                score_bits,
                compute_ms_bits,
            }))
        }
        KIND_ERROR => {
            let raw = cur.u8()?;
            cur.finish()?;
            match ErrorCode::from_u8(raw) {
                Some(code) => Ok(Decoded::Error { code }),
                None => Err(ProtoError::Truncated),
            }
        }
        KIND_BYE => {
            let delivered = cur.u64()?;
            cur.finish()?;
            Ok(Decoded::Bye { delivered })
        }
        other => Err(ProtoError::BadKind { got: other }),
    }
}

/// Reads 19 f32le variables in JIGSAWS column order (the layout of
/// `ManipulatorState::to_vec`), preserving bit patterns.
// lint: hot-path
fn decode_manipulator(cur: &mut Cursor<'_>, out: &mut ManipulatorState) -> Result<(), ProtoError> {
    out.position = Vec3::new(cur.f32()?, cur.f32()?, cur.f32()?);
    for cell in &mut out.rotation.m {
        *cell = cur.f32()?;
    }
    out.grasper_angle = cur.f32()?;
    out.linear_velocity = Vec3::new(cur.f32()?, cur.f32()?, cur.f32()?);
    out.angular_velocity = Vec3::new(cur.f32()?, cur.f32()?, cur.f32()?);
    Ok(())
}

/// Writes the `len | version | kind` header for a `payload_len`-byte
/// payload.
// lint: hot-path
fn put_header(out: &mut BytesMut, kind: u8, payload_len: usize) {
    out.put_u32_le((2 + payload_len) as u32);
    out.put_u8(WIRE_VERSION);
    out.put_u8(kind);
}

/// Encodes HELLO.
pub fn encode_hello(out: &mut BytesMut, wants_context: bool) {
    put_header(out, KIND_HELLO, 1);
    out.put_u8(wants_context as u8);
}

/// Encodes one kinematic FRAME. Alloc-free once `out` is warm — this is
/// the client's per-frame path.
// lint: hot-path
pub fn encode_frame(
    out: &mut BytesMut,
    seq: u32,
    context: Option<Gesture>,
    sample: &KinematicSample,
) {
    let nmanip = sample.manipulators.len();
    debug_assert!(nmanip <= u8::MAX as usize, "frame with >255 manipulators");
    put_header(out, KIND_FRAME, 4 + 1 + 1 + nmanip * VARS_PER_MANIPULATOR * 4);
    out.put_u32_le(seq);
    out.put_u8(match context {
        Some(g) => g.index() as u8,
        None => NO_CONTEXT,
    });
    out.put_u8(nmanip as u8);
    for manip in &sample.manipulators {
        encode_manipulator(out, manip);
    }
}

/// Writes 19 f32le variables in JIGSAWS column order.
// lint: hot-path
fn encode_manipulator(out: &mut BytesMut, manip: &ManipulatorState) {
    let [px, py, pz] = manip.position.to_array();
    out.put_f32_le(px);
    out.put_f32_le(py);
    out.put_f32_le(pz);
    for &cell in &manip.rotation.m {
        out.put_f32_le(cell);
    }
    out.put_f32_le(manip.grasper_angle);
    let [lx, ly, lz] = manip.linear_velocity.to_array();
    out.put_f32_le(lx);
    out.put_f32_le(ly);
    out.put_f32_le(lz);
    let [ax, ay, az] = manip.angular_velocity.to_array();
    out.put_f32_le(ax);
    out.put_f32_le(ay);
    out.put_f32_le(az);
}

/// Encodes GOODBYE.
pub fn encode_goodbye(out: &mut BytesMut) {
    put_header(out, KIND_GOODBYE, 0);
}

/// Encodes WELCOME.
pub fn encode_welcome(out: &mut BytesMut, session: u64) {
    put_header(out, KIND_WELCOME, 8);
    out.put_u64_le(session);
}

/// Encodes BUSY.
pub fn encode_busy(out: &mut BytesMut, active: u32, cap: u32) {
    put_header(out, KIND_BUSY, 8);
    out.put_u32_le(active);
    out.put_u32_le(cap);
}

/// Encodes a DECISION — the server's per-frame path.
// lint: hot-path
pub fn encode_decision(out: &mut BytesMut, msg: &DecisionMsg) {
    put_header(out, KIND_DECISION, 4 + 1 + 1 + 4 + 4);
    out.put_u32_le(msg.seq);
    out.put_u8((msg.warm as u8) | ((msg.alert as u8) << 1));
    out.put_u8(msg.gesture);
    out.put_u32_le(msg.score_bits);
    out.put_u32_le(msg.compute_ms_bits);
}

/// Encodes ERROR.
pub fn encode_error(out: &mut BytesMut, code: ErrorCode) {
    put_header(out, KIND_ERROR, 1);
    out.put_u8(code as u8);
}

/// Encodes BYE.
pub fn encode_bye(out: &mut BytesMut, delivered: u64) {
    put_header(out, KIND_BYE, 8);
    out.put_u64_le(delivered);
}
