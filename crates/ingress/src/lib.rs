//! Network ingress: the [`ShardedMonitorPool`] as a real service.
//!
//! Everything before this crate multiplexes surgical-robot telemetry
//! streams onto the monitor fleet *in process*. This crate puts a wire
//! in the middle without giving up the repo's core guarantee: the
//! decision stream a client reads off the socket is **bit-identical**
//! to what an in-process pool produces for the same frames
//! (`tests/e2e.rs`, gated in CI by `repro_serve --smoke`).
//!
//! - [`codec`] — length-prefixed versioned wire protocol on the
//!   vendored `bytes`; allocation-free encode/decode on the per-frame
//!   path; malformed input is a typed [`codec::ProtoError`], never a
//!   panic.
//! - [`server`] — std-net TCP front end: acceptor + per-connection
//!   reader/writer threads bridged to the pool over crossbeam channels,
//!   with an admission controller that *sheds* (typed BUSY) instead of
//!   delaying admitted sessions.
//! - [`client`] — blocking client used by tests and tools.
//! - [`loadgen`] — closed-loop load generator: hundreds of concurrent
//!   synthetic sessions, per-frame round-trip latency quantiles, shed
//!   accounting (`BENCH_ingress.json` comes from `repro_serve`'s sweep
//!   over it).
//!
//! [`ShardedMonitorPool`]: context_monitor::ShardedMonitorPool

pub mod client;
pub mod codec;
pub mod loadgen;
pub mod server;

pub use client::{ClientError, Connection, ServerMsg};
pub use codec::{DecisionMsg, Decoded, Decoder, ErrorCode, FrameMsg, ProtoError};
pub use loadgen::{LatencySummary, LoadReport, LoadgenConfig};
pub use server::{IngressServer, ServerConfig, ServerStats};
