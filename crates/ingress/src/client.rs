//! Minimal blocking client for the ingress wire protocol — the session
//! side of `server.rs`, used by the e2e tests and the load generator.

use std::io::{ErrorKind, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use bytes::{Buf, BytesMut};
use gestures::Gesture;
use kinematics::KinematicSample;

use crate::codec::{
    encode_frame, encode_goodbye, encode_hello, DecisionMsg, Decoded, Decoder, ErrorCode, FrameMsg,
    ProtoError,
};

/// A message the server can send to a client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerMsg {
    /// Admitted; the per-frame stream may start.
    Welcome {
        /// Server-assigned session id.
        session: u64,
    },
    /// Shed by admission control; the connection is closing.
    Busy {
        /// Sessions active when the HELLO arrived.
        active: u32,
        /// The admission cap.
        cap: u32,
    },
    /// Per-frame verdict.
    Decision(DecisionMsg),
    /// Typed protocol error; the connection is closing.
    Error {
        /// Why.
        code: ErrorCode,
    },
    /// GOODBYE acknowledged; `delivered` decisions were sent in total.
    Bye {
        /// Total decisions delivered over the session.
        delivered: u64,
    },
}

/// Why a receive failed.
#[derive(Debug)]
pub enum ClientError {
    /// Socket error.
    Io(std::io::Error),
    /// The server sent bytes that do not decode.
    Proto(ProtoError),
    /// The server closed the connection.
    Closed,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Proto(e) => write!(f, "protocol error: {e}"),
            ClientError::Closed => write!(f, "connection closed by server"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// One client connection = one (attempted) session.
pub struct Connection {
    stream: TcpStream,
    dec: Decoder,
    enc: BytesMut,
    scratch: FrameMsg,
    buf: [u8; 8 * 1024],
}

impl Connection {
    /// Connects (TCP_NODELAY on) without sending anything yet.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            dec: Decoder::new(),
            enc: BytesMut::new(),
            scratch: FrameMsg::default(),
            buf: [0u8; 8 * 1024],
        })
    }

    /// Switches the socket between blocking [`Connection::recv`] and
    /// polling [`Connection::try_recv`] use.
    pub fn set_nonblocking(&mut self, nonblocking: bool) -> std::io::Result<()> {
        self.stream.set_nonblocking(nonblocking)
    }

    /// Bounds how long a blocking [`Connection::recv`] waits.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Writes the encode buffer out fully, spinning through partial
    /// writes and `WouldBlock` (messages are tiny; a nonblocking socket
    /// drains them in a bounded number of retries).
    fn flush_enc(&mut self) -> std::io::Result<()> {
        while self.enc.has_remaining() {
            match self.stream.write(self.enc.chunk()) {
                Ok(0) => {
                    self.enc.clear();
                    return Err(std::io::Error::new(
                        ErrorKind::WriteZero,
                        "socket accepted no bytes",
                    ));
                }
                Ok(n) => self.enc.advance(n),
                Err(ref e) if e.kind() == ErrorKind::WouldBlock => std::thread::yield_now(),
                Err(ref e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => {
                    self.enc.clear();
                    return Err(e);
                }
            }
        }
        self.enc.clear();
        Ok(())
    }

    /// Opens the session. `wants_context` must match the server's
    /// context mode (`true` iff it serves `ContextMode::Perfect`).
    pub fn send_hello(&mut self, wants_context: bool) -> std::io::Result<()> {
        encode_hello(&mut self.enc, wants_context);
        self.flush_enc()
    }

    /// Sends one kinematic frame. `seq` must be dense from 0.
    pub fn send_frame(
        &mut self,
        seq: u32,
        context: Option<Gesture>,
        sample: &KinematicSample,
    ) -> std::io::Result<()> {
        encode_frame(&mut self.enc, seq, context, sample);
        self.flush_enc()
    }

    /// Asks the server to drain this session's decisions and reply BYE.
    pub fn send_goodbye(&mut self) -> std::io::Result<()> {
        encode_goodbye(&mut self.enc);
        self.flush_enc()
    }

    /// Sends raw bytes as-is — for tests that exercise the server's
    /// malformed-input handling.
    pub fn send_raw(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.stream.write_all(bytes)
    }

    /// Blocking receive of the next server message.
    pub fn recv(&mut self) -> Result<ServerMsg, ClientError> {
        loop {
            if let Some(msg) = self.decode_buffered()? {
                return Ok(msg);
            }
            match self.stream.read(&mut self.buf) {
                Ok(0) => return Err(ClientError::Closed),
                Ok(n) => self.dec.extend(&self.buf[..n]),
                Err(e) => return Err(ClientError::Io(e)),
            }
        }
    }

    /// Non-blocking receive: `Ok(None)` when no complete message is
    /// available right now (requires `set_nonblocking(true)`).
    pub fn try_recv(&mut self) -> Result<Option<ServerMsg>, ClientError> {
        loop {
            if let Some(msg) = self.decode_buffered()? {
                return Ok(Some(msg));
            }
            match self.stream.read(&mut self.buf) {
                Ok(0) => return Err(ClientError::Closed),
                Ok(n) => self.dec.extend(&self.buf[..n]),
                Err(ref e)
                    if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut =>
                {
                    return Ok(None)
                }
                Err(e) => return Err(ClientError::Io(e)),
            }
        }
    }

    fn decode_buffered(&mut self) -> Result<Option<ServerMsg>, ClientError> {
        match self.dec.decode_next(&mut self.scratch) {
            Ok(None) => Ok(None),
            Err(e) => Err(ClientError::Proto(e)),
            Ok(Some(decoded)) => match decoded {
                Decoded::Welcome { session } => Ok(Some(ServerMsg::Welcome { session })),
                Decoded::Busy { active, cap } => Ok(Some(ServerMsg::Busy { active, cap })),
                Decoded::Decision(d) => Ok(Some(ServerMsg::Decision(d))),
                Decoded::Error { code } => Ok(Some(ServerMsg::Error { code })),
                Decoded::Bye { delivered } => Ok(Some(ServerMsg::Bye { delivered })),
                // Client→server kinds coming *from* a server.
                Decoded::Hello { .. } | Decoded::Frame | Decoded::Goodbye => {
                    Err(ClientError::Proto(ProtoError::BadKind { got: 0 }))
                }
            },
        }
    }
}
