//! Closed-loop load generator for the ingress service.
//!
//! Drives `sessions` concurrent synthetic sessions (multiplexed over a
//! bounded number of driver threads — thousands of sessions do not need
//! thousands of client threads), each keeping exactly one frame in
//! flight: a session sends frame `n+1` only after frame `n`'s DECISION
//! came back. Offered load therefore scales with admitted sessions and
//! the sweep in `repro_serve` finds the knee by raising the session
//! count, not by open-loop flooding (which would measure queue growth,
//! not service latency).
//!
//! Latency samples are ingress-to-egress round trips (frame written →
//! decision decoded) of **admitted** sessions only; shed sessions are
//! counted, not timed — BUSY is a constant-time reply by design.

use std::io;
use std::time::{Duration, Instant};

use kinematics::{KinematicSample, ManipulatorState, Mat3, Vec3};

use crate::client::{ClientError, Connection, ServerMsg};

/// One load point.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Concurrent sessions to offer.
    pub sessions: usize,
    /// Frames each admitted session streams before GOODBYE.
    pub frames_per_session: usize,
    /// Driver threads multiplexing the sessions (clamped to
    /// `1..=sessions`).
    pub threads: usize,
    /// Manipulators per synthetic frame (must match the served
    /// pipeline).
    pub manipulators: usize,
    /// Per-frame round-trip budget used for the deadline-miss count.
    pub deadline_ms: f64,
    /// Seed for the deterministic synthetic kinematics.
    pub seed: u64,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            sessions: 8,
            frames_per_session: 100,
            threads: 8,
            manipulators: 2,
            deadline_ms: 33.3,
            seed: 2020,
        }
    }
}

/// Latency quantiles over admitted-session round trips, in ms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Median.
    pub p50_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// Worst observed.
    pub max_ms: f64,
    /// Mean.
    pub mean_ms: f64,
}

/// What one load point measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Sessions offered (`LoadgenConfig::sessions`).
    pub offered: usize,
    /// Sessions admitted (WELCOME).
    pub admitted: usize,
    /// Sessions shed (BUSY).
    pub shed: usize,
    /// Sessions that failed with an unexpected socket/protocol error.
    pub errors: usize,
    /// Frames sent by admitted sessions.
    pub frames_sent: u64,
    /// Decisions received by admitted sessions.
    pub decisions: u64,
    /// Round trips above `LoadgenConfig::deadline_ms`.
    pub deadline_misses: u64,
    /// Round-trip quantiles (all-zero if nothing was admitted).
    pub latency: LatencySummary,
    /// Wall-clock of the whole load point, seconds.
    pub elapsed_s: f64,
    /// Decisions per second across all admitted sessions.
    pub decisions_per_sec: f64,
}

/// splitmix64 — tiny deterministic generator for synthetic kinematics.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A float in `[-1, 1)` from the generator's top bits.
fn unit(state: &mut u64) -> f32 {
    ((splitmix(state) >> 40) as f32 / (1u64 << 23) as f32) * 2.0 - 1.0
}

/// Fills `out` with the deterministic synthetic frame `(seed, t)` —
/// same inputs, bit-identical frame, on every thread and every run.
pub fn synthetic_sample_into(seed: u64, t: u64, manipulators: usize, out: &mut KinematicSample) {
    out.manipulators.clear();
    for m in 0..manipulators as u64 {
        let mut state =
            seed ^ t.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ m.wrapping_mul(0xD134_2543_DE82_EF95);
        let position = Vec3::new(unit(&mut state), unit(&mut state), unit(&mut state));
        let mut rotation = Mat3::default();
        for cell in &mut rotation.m {
            *cell = unit(&mut state);
        }
        out.manipulators.push(ManipulatorState {
            position,
            rotation,
            grasper_angle: unit(&mut state),
            linear_velocity: Vec3::new(unit(&mut state), unit(&mut state), unit(&mut state)),
            angular_velocity: Vec3::new(unit(&mut state), unit(&mut state), unit(&mut state)),
        });
    }
}

struct Session {
    conn: Connection,
    id: usize,
    sent: u64,
    got: u64,
    in_flight: Option<Instant>,
    done: bool,
}

#[derive(Default)]
struct ThreadOut {
    admitted: usize,
    shed: usize,
    errors: usize,
    frames_sent: u64,
    decisions: u64,
    latencies_ms: Vec<f64>,
}

/// Runs one load point against a serving ingress at `addr`.
pub fn run(addr: &str, cfg: &LoadgenConfig) -> io::Result<LoadReport> {
    let threads = cfg.threads.clamp(1, cfg.sessions.max(1));
    let start = Instant::now();
    let mut merged = ThreadOut::default();

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for worker in 0..threads {
            let cfg = cfg.clone();
            handles.push(scope.spawn(move || {
                let ids: Vec<usize> =
                    (0..cfg.sessions).filter(|id| id % threads == worker).collect();
                drive_sessions(addr, &cfg, &ids)
            }));
        }
        for handle in handles {
            let out = handle.join().unwrap_or_default();
            merged.admitted += out.admitted;
            merged.shed += out.shed;
            merged.errors += out.errors;
            merged.frames_sent += out.frames_sent;
            merged.decisions += out.decisions;
            merged.latencies_ms.extend(out.latencies_ms);
        }
    });

    let elapsed_s = start.elapsed().as_secs_f64();
    let mut lat = merged.latencies_ms;
    lat.sort_by(|a, b| a.total_cmp(b));
    let quantile = |q: f64| -> f64 {
        if lat.is_empty() {
            return 0.0;
        }
        let idx = ((lat.len() - 1) as f64 * q).round() as usize;
        lat.get(idx).copied().unwrap_or(0.0)
    };
    let mean = if lat.is_empty() { 0.0 } else { lat.iter().sum::<f64>() / lat.len() as f64 };
    let deadline_misses = lat.iter().filter(|&&ms| ms > cfg.deadline_ms).count() as u64;

    Ok(LoadReport {
        offered: cfg.sessions,
        admitted: merged.admitted,
        shed: merged.shed,
        errors: merged.errors,
        frames_sent: merged.frames_sent,
        decisions: merged.decisions,
        deadline_misses,
        latency: LatencySummary {
            p50_ms: quantile(0.50),
            p99_ms: quantile(0.99),
            max_ms: lat.last().copied().unwrap_or(0.0),
            mean_ms: mean,
        },
        elapsed_s,
        decisions_per_sec: if elapsed_s > 0.0 { merged.decisions as f64 / elapsed_s } else { 0.0 },
    })
}

/// Drives this thread's share of the sessions: admit all, then
/// round-robin the closed-loop send/receive until every admitted
/// session has streamed its frames, then GOODBYE/BYE each one.
fn drive_sessions(addr: &str, cfg: &LoadgenConfig, ids: &[usize]) -> ThreadOut {
    let mut out = ThreadOut::default();
    let mut sessions: Vec<Session> = Vec::new();

    for &id in ids {
        let mut conn = match Connection::connect(addr) {
            Ok(c) => c,
            Err(_) => {
                out.errors += 1;
                continue;
            }
        };
        if conn.send_hello(false).is_err() {
            out.errors += 1;
            continue;
        }
        match conn.recv() {
            Ok(ServerMsg::Welcome { .. }) => {
                if conn.set_nonblocking(true).is_err() {
                    out.errors += 1;
                    continue;
                }
                out.admitted += 1;
                sessions.push(Session { conn, id, sent: 0, got: 0, in_flight: None, done: false });
            }
            Ok(ServerMsg::Busy { .. }) => out.shed += 1,
            _ => out.errors += 1,
        }
    }

    let frames = cfg.frames_per_session as u64;
    let mut sample = KinematicSample::default();
    loop {
        let mut progressed = false;
        let mut remaining = false;
        for sess in &mut sessions {
            if sess.done {
                continue;
            }
            if sess.in_flight.is_none() && sess.sent < frames {
                let seed = cfg.seed ^ (sess.id as u64).wrapping_mul(0xA076_1D64_78BD_642F);
                synthetic_sample_into(seed, sess.sent, cfg.manipulators, &mut sample);
                let sent_at = Instant::now();
                if sess.conn.send_frame(sess.sent as u32, None, &sample).is_err() {
                    out.errors += 1;
                    sess.done = true;
                    continue;
                }
                sess.sent += 1;
                out.frames_sent += 1;
                sess.in_flight = Some(sent_at);
                progressed = true;
            }
            match sess.conn.try_recv() {
                Ok(None) => {}
                Ok(Some(ServerMsg::Decision(_))) => {
                    if let Some(sent_at) = sess.in_flight.take() {
                        out.latencies_ms.push(sent_at.elapsed().as_secs_f64() * 1e3);
                    }
                    sess.got += 1;
                    out.decisions += 1;
                    progressed = true;
                }
                Ok(Some(_)) | Err(_) => {
                    out.errors += 1;
                    sess.done = true;
                    continue;
                }
            }
            if sess.sent == frames && sess.got == frames {
                sess.done = true;
            } else {
                remaining = true;
            }
        }
        if !remaining {
            break;
        }
        if !progressed {
            std::thread::sleep(Duration::from_micros(50));
        }
    }

    // Clean teardown: GOODBYE, wait for BYE.
    for sess in &mut sessions {
        if sess.got != frames {
            continue; // errored out above; socket drops on scope exit
        }
        if sess.conn.set_nonblocking(false).is_err()
            || sess.conn.set_read_timeout(Some(Duration::from_secs(10))).is_err()
            || sess.conn.send_goodbye().is_err()
        {
            out.errors += 1;
            continue;
        }
        loop {
            match sess.conn.recv() {
                Ok(ServerMsg::Bye { .. }) => break,
                Ok(ServerMsg::Decision(_)) => {}
                Ok(_) | Err(ClientError::Io(_)) | Err(ClientError::Proto(_)) => {
                    out.errors += 1;
                    break;
                }
                Err(ClientError::Closed) => {
                    out.errors += 1;
                    break;
                }
            }
        }
    }
    out
}
