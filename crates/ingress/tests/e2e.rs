//! End-to-end: a real TCP client against a real [`IngressServer`].
//!
//! The load-bearing test is the first one — the decision stream read off
//! the socket must be **bit-identical** (scores compared as `to_bits`
//! patterns) to what an in-process [`ShardedMonitorPool`] produces for
//! the same frames. The wire is allowed to add latency, never to change
//! a single bit of a decision.
//!
//! The rest pins the service's failure behavior: admission control sheds
//! with a typed BUSY (and readmits once a session ends — elasticity),
//! and every flavor of malformed client gets a typed ERROR plus a closed
//! connection, never a panic, a stalled worker, or a poisoned pool.

use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use context_monitor::serve::{ServeConfig, ShardedMonitorPool};
use context_monitor::{ContextMode, MonitorConfig, TrainedPipeline};
use gestures::Task;
use ingress::client::{ClientError, Connection, ServerMsg};
use ingress::codec::{DecisionMsg, ErrorCode, WIRE_VERSION};
use ingress::server::{IngressServer, ServerConfig};
use jigsaws::{generate, GeneratorConfig};
use kinematics::{Dataset, FeatureSet};

/// Bit-equality key of one decision: `DecisionMsg::key()`.
type Key = (u32, bool, bool, u8, u32);

fn fixture() -> &'static (Arc<TrainedPipeline>, Dataset) {
    static FIXTURE: OnceLock<(Arc<TrainedPipeline>, Dataset)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let ds = generate(&GeneratorConfig::fast(Task::Suturing).with_seed(11));
        let mut cfg = MonitorConfig::fast(FeatureSet::CRG).with_seed(11 ^ 0xA5);
        cfg.train.epochs = 2;
        cfg.train_stride = 6;
        let idx: Vec<usize> = (0..ds.len()).collect();
        (Arc::new(TrainedPipeline::train(&ds, &idx, &cfg)), ds)
    })
}

fn serve_cfg(workers: usize) -> ServeConfig {
    ServeConfig { workers, ..ServeConfig::default() }
}

fn start_server(mode: ContextMode, max_sessions: usize, workers: usize) -> IngressServer {
    let (pipeline, _) = fixture();
    IngressServer::start(
        Arc::clone(pipeline),
        ServerConfig { max_sessions, mode, serve: serve_cfg(workers), ..ServerConfig::default() },
    )
    .expect("bind ingress server")
}

/// Bit-equality key stream of an in-process pool run over `sessions`
/// demo streams — warm-up frames included (as `warm == false` entries),
/// exactly like the wire's DECISION-per-FRAME contract.
fn in_process_keys(mode: ContextMode, sessions: usize, workers: usize) -> Vec<Vec<Key>> {
    let (pipeline, ds) = fixture();
    let mut pool =
        ShardedMonitorPool::with_sessions(Arc::clone(pipeline), mode, serve_cfg(workers), sessions);
    for (s, demo) in ds.demos.iter().take(sessions).enumerate() {
        for (t, frame) in demo.frames.iter().enumerate() {
            match mode {
                ContextMode::Perfect => pool.submit_with_context(s, frame, demo.gestures[t]),
                _ => pool.submit(s, frame).expect("non-Perfect submit cannot fail"),
            }
        }
    }
    let mut keys = vec![Vec::new(); sessions];
    for d in pool.flush() {
        let msg = DecisionMsg::from_decision(d.frame as u32, d.output.as_ref());
        keys[d.session].push((d.frame as u32, msg.key()));
    }
    keys.into_iter()
        .map(|mut v| {
            v.sort_by_key(|&(frame, _)| frame);
            v.into_iter().map(|(_, key)| key).collect()
        })
        .collect()
}

/// Streams demo `s` over one socket session and returns the decision key
/// stream plus the BYE-acknowledged delivery count.
fn socket_session_keys(addr: &str, mode: ContextMode, s: usize) -> (Vec<Key>, u64) {
    let (_, ds) = fixture();
    let demo = &ds.demos[s];
    let mut conn = Connection::connect(addr).expect("connect");
    conn.send_hello(mode == ContextMode::Perfect).expect("hello");
    let ServerMsg::Welcome { .. } = conn.recv().expect("welcome") else {
        panic!("expected WELCOME");
    };
    let mut keys = Vec::new();
    for (t, frame) in demo.frames.iter().enumerate() {
        let context = (mode == ContextMode::Perfect).then(|| demo.gestures[t]);
        conn.send_frame(t as u32, context, frame).expect("send frame");
        // Closed loop: wait for this frame's decision before the next
        // frame, so the ingress path (not client buffering) is timed.
        match conn.recv().expect("decision") {
            ServerMsg::Decision(d) => {
                assert_eq!(d.seq, t as u32, "decisions must arrive in frame order");
                keys.push(d.key());
            }
            other => panic!("expected DECISION, got {other:?}"),
        }
    }
    conn.send_goodbye().expect("goodbye");
    match conn.recv().expect("bye") {
        ServerMsg::Bye { delivered } => (keys, delivered),
        other => panic!("expected BYE, got {other:?}"),
    }
}

#[test]
fn socket_stream_bit_identical_to_in_process_pool() {
    let mode = ContextMode::Predicted;
    let sessions = 2;
    let server = start_server(mode, 8, 2);
    let addr = server.local_addr().to_string();

    // Both sessions stream concurrently, like real clients would.
    let (a, b) = std::thread::scope(|scope| {
        let addr_a = addr.clone();
        let addr_b = addr.clone();
        let ha = scope.spawn(move || socket_session_keys(&addr_a, mode, 0));
        let hb = scope.spawn(move || socket_session_keys(&addr_b, mode, 1));
        (ha.join().expect("session 0"), hb.join().expect("session 1"))
    });

    let want = in_process_keys(mode, sessions, 2);
    let (_, ds) = fixture();
    assert_eq!(a.1, ds.demos[0].len() as u64, "BYE must account for every frame");
    assert_eq!(b.1, ds.demos[1].len() as u64);
    assert_eq!(a.0, want[0], "session 0: socket stream differs from in-process pool");
    assert_eq!(b.0, want[1], "session 1: socket stream differs from in-process pool");
    assert!(a.0.iter().any(|k| k.1), "stream never warmed up — vacuous equality");

    let stats = server.stats();
    assert_eq!(stats.admitted, 2);
    assert_eq!(stats.shed, 0);
    assert_eq!(stats.protocol_errors, 0);
    assert_eq!(stats.decisions, (ds.demos[0].len() + ds.demos[1].len()) as u64);
}

#[test]
fn perfect_context_over_the_wire_bit_identical() {
    let mode = ContextMode::Perfect;
    let server = start_server(mode, 4, 2);
    let addr = server.local_addr().to_string();
    let (keys, delivered) = socket_session_keys(&addr, mode, 0);
    let want = in_process_keys(mode, 1, 2);
    assert_eq!(keys, want[0]);
    assert!(delivered > 0);
}

/// Retries HELLO until admitted (the slot of a finished/dead session is
/// released asynchronously by the pool thread).
fn admit_with_retry(addr: &str, deadline: Duration) -> Connection {
    let start = Instant::now();
    loop {
        let mut conn = Connection::connect(addr).expect("connect");
        conn.send_hello(false).expect("hello");
        match conn.recv().expect("reply") {
            ServerMsg::Welcome { .. } => return conn,
            ServerMsg::Busy { .. } => {
                assert!(start.elapsed() < deadline, "slot never freed: BUSY past the deadline");
                std::thread::sleep(Duration::from_millis(10));
            }
            other => panic!("expected WELCOME or BUSY, got {other:?}"),
        }
    }
}

#[test]
fn admission_cap_sheds_with_typed_busy_then_readmits() {
    let server = start_server(ContextMode::Predicted, 2, 1);
    let addr = server.local_addr().to_string();

    let mut first = Connection::connect(&addr).expect("connect");
    first.send_hello(false).expect("hello");
    assert!(matches!(first.recv().expect("welcome"), ServerMsg::Welcome { .. }));
    let mut second = Connection::connect(&addr).expect("connect");
    second.send_hello(false).expect("hello");
    assert!(matches!(second.recv().expect("welcome"), ServerMsg::Welcome { .. }));

    // At the cap: the third HELLO is shed with a typed BUSY naming the
    // cap, and the connection closes — it is never queued.
    let mut third = Connection::connect(&addr).expect("connect");
    third.send_hello(false).expect("hello");
    match third.recv().expect("busy") {
        ServerMsg::Busy { active, cap } => {
            assert_eq!(cap, 2);
            assert_eq!(active, 2);
        }
        other => panic!("expected BUSY, got {other:?}"),
    }
    assert!(
        matches!(third.recv(), Err(ClientError::Closed) | Err(ClientError::Io(_))),
        "server must close a shed connection"
    );

    // A clean GOODBYE frees the slot for a new session (elasticity).
    second.send_goodbye().expect("goodbye");
    assert!(matches!(second.recv().expect("bye"), ServerMsg::Bye { delivered: 0 }));
    let _readmitted = admit_with_retry(&addr, Duration::from_secs(5));

    let stats = server.stats();
    assert!(stats.shed >= 1, "the third HELLO must have been shed");
    assert_eq!(stats.admitted, 3);
}

#[test]
fn abrupt_disconnect_frees_the_slot() {
    let server = start_server(ContextMode::Predicted, 1, 1);
    let addr = server.local_addr().to_string();

    let mut doomed = Connection::connect(&addr).expect("connect");
    doomed.send_hello(false).expect("hello");
    assert!(matches!(doomed.recv().expect("welcome"), ServerMsg::Welcome { .. }));
    // Stream a frame so the session has real in-flight state, then die.
    let (_, ds) = fixture();
    doomed.send_frame(0, None, &ds.demos[0].frames[0]).expect("frame");
    drop(doomed);

    // Drain-on-disconnect: the server notices EOF, removes the session,
    // and the single slot becomes admittable again.
    let _next = admit_with_retry(&addr, Duration::from_secs(5));
}

/// Expects the typed error then the close, in order.
fn expect_error_then_close(conn: &mut Connection, code: ErrorCode) {
    match conn.recv().expect("typed error before close") {
        ServerMsg::Error { code: got } => assert_eq!(got, code),
        other => panic!("expected ERROR({code:?}), got {other:?}"),
    }
    assert!(
        matches!(conn.recv(), Err(ClientError::Closed) | Err(ClientError::Io(_))),
        "connection must close after a protocol error"
    );
}

#[test]
fn malformed_clients_get_typed_errors_and_the_service_survives() {
    let server = start_server(ContextMode::Predicted, 4, 2);
    let addr = server.local_addr().to_string();

    // Garbage kind byte inside a well-framed message.
    let mut conn = Connection::connect(&addr).expect("connect");
    conn.send_raw(&[3, 0, 0, 0, WIRE_VERSION, 0x5A, 0]).expect("raw");
    expect_error_then_close(&mut conn, ErrorCode::BadKind);

    // Oversized length prefix: rejected before any allocation.
    let mut conn = Connection::connect(&addr).expect("connect");
    conn.send_raw(&u32::MAX.to_le_bytes()).expect("raw");
    expect_error_then_close(&mut conn, ErrorCode::Oversized);

    // Wrong version byte.
    let mut conn = Connection::connect(&addr).expect("connect");
    conn.send_raw(&[2, 0, 0, 0, WIRE_VERSION + 1, 0x01]).expect("raw");
    expect_error_then_close(&mut conn, ErrorCode::BadVersion);

    // FRAME before HELLO: well-formed, wrong state.
    let mut conn = Connection::connect(&addr).expect("connect");
    let (_, ds) = fixture();
    conn.send_frame(0, None, &ds.demos[0].frames[0]).expect("frame");
    expect_error_then_close(&mut conn, ErrorCode::UnexpectedMessage);

    // Admitted, then a sequence gap.
    let mut conn = admit_with_retry(&addr, Duration::from_secs(5));
    conn.send_frame(5, None, &ds.demos[0].frames[0]).expect("frame");
    expect_error_then_close(&mut conn, ErrorCode::BadSequence);

    // Admitted, then a frame with the wrong manipulator count.
    let mut conn = admit_with_retry(&addr, Duration::from_secs(5));
    let mut fat = ds.demos[0].frames[0].clone();
    fat.manipulators.push(fat.manipulators[0]);
    conn.send_frame(0, None, &fat).expect("frame");
    expect_error_then_close(&mut conn, ErrorCode::BadShape);

    // Context label under a non-Perfect server.
    let mut conn = admit_with_retry(&addr, Duration::from_secs(5));
    conn.send_frame(0, Some(ds.demos[0].gestures[0]), &ds.demos[0].frames[0]).expect("frame");
    expect_error_then_close(&mut conn, ErrorCode::BadContext);

    assert_eq!(server.stats().protocol_errors, 7);

    // No panicked worker, no stalled pool: a well-formed session still
    // gets bit-exact service after all of the abuse above.
    let (keys, _) = socket_session_keys(&addr, ContextMode::Predicted, 0);
    let want = in_process_keys(ContextMode::Predicted, 1, 2);
    assert_eq!(keys, want[0], "service must stay bit-exact after malformed clients");
}
