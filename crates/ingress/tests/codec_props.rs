//! Codec robustness: proptest round-trips over every message type plus
//! adversarial decodes. The invariant under attack: **no byte sequence a
//! peer can send makes the codec panic, allocate unboundedly, or emit a
//! wrong message** — malformed input always surfaces as a typed
//! [`ProtoError`].

use bytes::{Buf, BytesMut};
use gestures::{Gesture, ALL_GESTURES, NUM_GESTURES};
use ingress::codec::{
    encode_busy, encode_bye, encode_decision, encode_error, encode_frame, encode_goodbye,
    encode_hello, encode_welcome, DecisionMsg, Decoded, Decoder, ErrorCode, FrameMsg, ProtoError,
    KIND_FRAME, MAX_BODY, WIRE_VERSION,
};
use ingress::loadgen::synthetic_sample_into;
use kinematics::KinematicSample;
use proptest::prelude::*;

/// Everything the protocol can say, in owned form for equality checks.
#[derive(Debug, Clone, PartialEq)]
enum Msg {
    Hello { wants_context: bool },
    Frame { seq: u32, context: Option<Gesture>, sample: KinematicSample },
    Goodbye,
    Welcome { session: u64 },
    Busy { active: u32, cap: u32 },
    Decision(DecisionMsg),
    Error { code: ErrorCode },
    Bye { delivered: u64 },
}

fn encode(msg: &Msg, out: &mut BytesMut) {
    match msg {
        Msg::Hello { wants_context } => encode_hello(out, *wants_context),
        Msg::Frame { seq, context, sample } => encode_frame(out, *seq, *context, sample),
        Msg::Goodbye => encode_goodbye(out),
        Msg::Welcome { session } => encode_welcome(out, *session),
        Msg::Busy { active, cap } => encode_busy(out, *active, *cap),
        Msg::Decision(d) => encode_decision(out, d),
        Msg::Error { code } => encode_error(out, *code),
        Msg::Bye { delivered } => encode_bye(out, *delivered),
    }
}

/// Derives one arbitrary message from a seed — cheaper than a dedicated
/// Strategy per variant and just as thorough under proptest's seed
/// exploration.
fn arb_msg(seed: u64) -> Msg {
    let mut s = seed;
    let mut next = move || {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        s >> 11
    };
    match next() % 8 {
        0 => Msg::Hello { wants_context: next() % 2 == 0 },
        1 => {
            let nmanip = (next() % 4) as usize; // 0..=3 manipulators
            let context = if next() % 2 == 0 {
                None
            } else {
                Gesture::from_index((next() as usize) % NUM_GESTURES)
            };
            let mut sample = KinematicSample::default();
            synthetic_sample_into(next(), next(), nmanip, &mut sample);
            Msg::Frame { seq: next() as u32, context, sample }
        }
        2 => Msg::Goodbye,
        3 => Msg::Welcome { session: next() },
        4 => Msg::Busy { active: next() as u32, cap: next() as u32 },
        5 => Msg::Decision(DecisionMsg {
            seq: next() as u32,
            warm: next() % 2 == 0,
            alert: next() % 2 == 0,
            gesture: (next() % NUM_GESTURES as u64) as u8,
            score_bits: next() as u32,
            compute_ms_bits: next() as u32,
        }),
        6 => Msg::Error {
            code: ErrorCode::from_u8((next() % 8 + 1) as u8).expect("codes 1..=8 all decode"),
        },
        _ => Msg::Bye { delivered: next() },
    }
}

fn decode_one(dec: &mut Decoder, frame: &mut FrameMsg) -> Option<Msg> {
    match dec.decode_next(frame).expect("well-formed bytes must decode") {
        None => None,
        Some(Decoded::Hello { wants_context }) => Some(Msg::Hello { wants_context }),
        Some(Decoded::Frame) => Some(Msg::Frame {
            seq: frame.seq,
            context: frame.context,
            sample: frame.sample.clone(),
        }),
        Some(Decoded::Goodbye) => Some(Msg::Goodbye),
        Some(Decoded::Welcome { session }) => Some(Msg::Welcome { session }),
        Some(Decoded::Busy { active, cap }) => Some(Msg::Busy { active, cap }),
        Some(Decoded::Decision(d)) => Some(Msg::Decision(d)),
        Some(Decoded::Error { code }) => Some(Msg::Error { code }),
        Some(Decoded::Bye { delivered }) => Some(Msg::Bye { delivered }),
    }
}

proptest! {
    /// Round trip over all message types, with the byte stream re-chunked
    /// at an arbitrary granularity: any split of the stream across reads
    /// reassembles into exactly the encoded message sequence.
    #[test]
    fn round_trips_across_arbitrary_read_boundaries(
        seed in 0u64..1_000_000,
        count in 1usize..8,
        chunk in 1usize..64,
    ) {
        let msgs: Vec<Msg> = (0..count).map(|i| arb_msg(seed.wrapping_add(i as u64 * 7919))).collect();
        let mut wire = BytesMut::new();
        for m in &msgs {
            encode(m, &mut wire);
        }

        let mut dec = Decoder::new();
        let mut frame = FrameMsg::default();
        let mut got = Vec::new();
        for piece in wire.chunk().chunks(chunk) {
            dec.extend(piece);
            while let Some(m) = decode_one(&mut dec, &mut frame) {
                got.push(m);
            }
        }
        prop_assert_eq!(got, msgs);
        prop_assert_eq!(dec.pending(), 0);
    }

    /// Frame samples survive the wire **bit-exactly**: every f32 keeps its
    /// bit pattern (the property the e2e socket-vs-in-process equality
    /// stands on).
    #[test]
    fn frame_floats_are_bit_preserved(seed in 0u64..1_000_000, nmanip in 1usize..5) {
        let mut sample = KinematicSample::default();
        synthetic_sample_into(seed, seed ^ 0xABCD, nmanip, &mut sample);
        let mut wire = BytesMut::new();
        encode_frame(&mut wire, 7, None, &sample);

        let mut dec = Decoder::new();
        let mut frame = FrameMsg::default();
        dec.extend(wire.chunk());
        prop_assert_eq!(dec.decode_next(&mut frame), Ok(Some(Decoded::Frame)));
        let sent = sample.to_vec();
        let got = frame.sample.to_vec();
        prop_assert_eq!(sent.len(), got.len());
        for (a, b) in sent.iter().zip(got.iter()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Truncating a well-formed message anywhere *strictly inside* it
    /// never yields a message (and never errors — the decoder just waits
    /// for the rest).
    #[test]
    fn truncated_messages_decode_to_none(seed in 0u64..1_000_000, cut_frac in 0u32..1000) {
        let msg = arb_msg(seed);
        let mut wire = BytesMut::new();
        encode(&msg, &mut wire);
        let total = wire.len();
        let cut = (total - 1) * cut_frac as usize / 1000;

        let mut dec = Decoder::new();
        let mut frame = FrameMsg::default();
        dec.extend(&wire.chunk()[..cut]);
        prop_assert_eq!(dec.decode_next(&mut frame), Ok(None));
        // The remainder completes it.
        dec.extend(&wire.chunk()[cut..]);
        prop_assert!(matches!(dec.decode_next(&mut frame), Ok(Some(_))));
    }

    /// A garbage version byte is rejected on every message kind.
    #[test]
    fn garbage_version_byte_rejected(seed in 0u64..1_000_000, raw_version in 0u16..256) {
        let version = if raw_version as u8 == WIRE_VERSION { WIRE_VERSION + 1 } else { raw_version as u8 };
        let msg = arb_msg(seed);
        let mut wire = BytesMut::new();
        encode(&msg, &mut wire);
        let mut bytes = wire.chunk().to_vec();
        bytes[4] = version; // byte 4 = first body byte = version
        let mut dec = Decoder::new();
        let mut frame = FrameMsg::default();
        dec.extend(&bytes);
        prop_assert_eq!(
            dec.decode_next(&mut frame),
            Err(ProtoError::BadVersion { got: version })
        );
    }

    /// Flipping body bytes of a FRAME never panics: every outcome is a
    /// clean decode or a typed error.
    #[test]
    fn mutated_frame_bodies_never_panic(
        seed in 0u64..1_000_000,
        victim in 0usize..100,
        raw_value in 0u16..256,
    ) {
        let mut sample = KinematicSample::default();
        synthetic_sample_into(seed, 3, 2, &mut sample);
        let mut wire = BytesMut::new();
        encode_frame(&mut wire, 1, Some(ALL_GESTURES[seed as usize % NUM_GESTURES]), &sample);
        let mut bytes = wire.chunk().to_vec();
        let idx = 4 + victim % (bytes.len() - 4); // keep the length prefix honest
        bytes[idx] = raw_value as u8;

        let mut dec = Decoder::new();
        let mut frame = FrameMsg::default();
        dec.extend(&bytes);
        let _ = dec.decode_next(&mut frame); // must return, not panic
    }
}

#[test]
fn oversized_length_prefix_rejected_before_any_buffering() {
    let mut dec = Decoder::new();
    let mut frame = FrameMsg::default();
    // Claim a 512 MiB body; send only the prefix.
    let declared = 512usize * 1024 * 1024;
    dec.extend(&(declared as u32).to_le_bytes());
    assert_eq!(dec.decode_next(&mut frame), Err(ProtoError::Oversized { declared }));
    // Nothing was buffered beyond the 4 prefix bytes — the attack never
    // drove an allocation.
    assert!(dec.pending() <= 4, "oversized prefix must not grow the buffer");
    assert!(declared > MAX_BODY);
}

#[test]
fn unknown_kind_byte_rejected() {
    let mut wire = BytesMut::new();
    wire.extend_from_slice(&3u32.to_le_bytes());
    wire.extend_from_slice(&[WIRE_VERSION, 0x7E, 0x00]);
    let mut dec = Decoder::new();
    let mut frame = FrameMsg::default();
    dec.extend(wire.chunk());
    assert_eq!(dec.decode_next(&mut frame), Err(ProtoError::BadKind { got: 0x7E }));
}

#[test]
fn frame_with_invalid_gesture_byte_rejected() {
    // FRAME with context byte 0x20 (no such gesture; 0xFF would mean none).
    let body = [WIRE_VERSION, KIND_FRAME, 0, 0, 0, 0, 0x20, 0];
    let mut wire = BytesMut::new();
    wire.extend_from_slice(&(body.len() as u32).to_le_bytes());
    wire.extend_from_slice(&body);
    let mut dec = Decoder::new();
    let mut frame = FrameMsg::default();
    dec.extend(wire.chunk());
    assert_eq!(dec.decode_next(&mut frame), Err(ProtoError::BadGesture { got: 0x20 }));
}

#[test]
fn frame_with_lying_manipulator_count_rejected() {
    // Declares 3 manipulators but carries bytes for none.
    let body = [WIRE_VERSION, KIND_FRAME, 0, 0, 0, 0, 0xFF, 3];
    let mut wire = BytesMut::new();
    wire.extend_from_slice(&(body.len() as u32).to_le_bytes());
    wire.extend_from_slice(&body);
    let mut dec = Decoder::new();
    let mut frame = FrameMsg::default();
    dec.extend(wire.chunk());
    assert_eq!(dec.decode_next(&mut frame), Err(ProtoError::Truncated));
}

#[test]
fn trailing_bytes_after_payload_rejected() {
    // GOODBYE with one stray payload byte.
    let body = [WIRE_VERSION, 0x03, 0xAA];
    let mut wire = BytesMut::new();
    wire.extend_from_slice(&(body.len() as u32).to_le_bytes());
    wire.extend_from_slice(&body);
    let mut dec = Decoder::new();
    let mut frame = FrameMsg::default();
    dec.extend(wire.chunk());
    assert_eq!(dec.decode_next(&mut frame), Err(ProtoError::TrailingBytes));
}

/// Steady-state decode is allocation-free: a warm decoder fed whole
/// frames one at a time keeps reusing the same scratch (observable as
/// the FrameMsg manipulator capacity staying put).
#[test]
fn warm_decode_reuses_frame_capacity() {
    let mut sample = KinematicSample::default();
    synthetic_sample_into(99, 0, 2, &mut sample);
    let mut dec = Decoder::new();
    let mut frame = FrameMsg::default();
    let mut wire = BytesMut::new();
    let mut warm_capacity = 0;
    for seq in 0..100u32 {
        encode_frame(&mut wire, seq, None, &sample);
        dec.extend(wire.chunk());
        wire.clear();
        assert_eq!(dec.decode_next(&mut frame), Ok(Some(Decoded::Frame)));
        assert_eq!(frame.seq, seq);
        if seq == 0 {
            warm_capacity = frame.sample.manipulators.capacity();
        } else {
            assert_eq!(
                frame.sample.manipulators.capacity(),
                warm_capacity,
                "decode scratch reallocated after warm-up (frame {seq})"
            );
        }
    }
}
