//! Numerical gradient checking used by the layer test suites.
//!
//! The check builds a scalar loss `L = sum(C ⊙ f(x))` for a fixed coefficient
//! matrix `C`, runs the analytic backward pass, and compares every input and
//! parameter gradient against central finite differences.

use crate::layers::{Mode, SeqLayer};
use crate::mat::Mat;

/// Deterministic pseudo-random coefficients in `[-1, 1]` used to reduce the
/// layer output to a scalar loss.
fn coefficients(rows: usize, cols: usize) -> Mat {
    let mut state: u64 = 0x9E3779B97F4A7C15;
    let data = (0..rows * cols)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (u32::MAX as f32 / 2.0)) - 1.0
        })
        .collect();
    Mat::from_vec(rows, cols, data)
}

fn scalar_loss(layer: &mut dyn SeqLayer, x: &Mat, mode: Mode) -> (f32, Mat) {
    let y = layer.forward(x, mode);
    let c = coefficients(y.rows(), y.cols());
    (y.hadamard(&c).sum(), c)
}

fn assert_close(analytic: f32, numeric: f32, tol: f32, what: &str) {
    let denom = 1.0_f32.max(analytic.abs()).max(numeric.abs());
    let rel = (analytic - numeric).abs() / denom;
    assert!(
        rel <= tol,
        "{what}: analytic {analytic:.6} vs numeric {numeric:.6} (relative error {rel:.6} > {tol})"
    );
}

/// Checks input and parameter gradients of `layer` at point `x` against
/// central finite differences, using `Mode::Eval` for the forward pass.
///
/// # Panics
///
/// Panics (failing the test) if any gradient deviates by more than `tol`
/// relative error.
pub fn check_layer_gradients(layer: &mut dyn SeqLayer, x: &Mat, tol: f32) {
    check_layer_gradients_mode(layer, x, tol, Mode::Eval);
}

/// Same as [`check_layer_gradients`] but with an explicit forward mode
/// (needed for layers whose backward pass matches the training-mode forward,
/// e.g. batch normalization).
pub fn check_layer_gradients_mode(layer: &mut dyn SeqLayer, x: &Mat, tol: f32, mode: Mode) {
    let eps = 1e-2_f32;

    // Analytic gradients.
    layer.visit_params(&mut |p| p.zero_grad());
    let (_, c) = scalar_loss(layer, x, mode);
    let dx = layer.backward(&c);
    assert_eq!(dx.shape(), x.shape(), "backward must return a gradient shaped like the input");

    // Input gradient check.
    let mut xp = x.clone();
    for i in 0..x.len() {
        let orig = xp.as_slice()[i];
        xp.as_mut_slice()[i] = orig + eps;
        let (lp, _) = scalar_loss(layer, &xp, mode);
        xp.as_mut_slice()[i] = orig - eps;
        let (lm, _) = scalar_loss(layer, &xp, mode);
        xp.as_mut_slice()[i] = orig;
        let numeric = (lp - lm) / (2.0 * eps);
        assert_close(dx.as_slice()[i], numeric, tol, &format!("d input[{i}]"));
    }

    // Parameter gradient check. Gradients were accumulated during the single
    // analytic backward pass above; perturb each parameter in turn.
    let mut param_grads: Vec<Vec<f32>> = Vec::new();
    layer.visit_params(&mut |p| param_grads.push(p.grad.as_slice().to_vec()));

    let n_params = param_grads.len();
    for pi in 0..n_params {
        let plen = param_grads[pi].len();
        for i in 0..plen {
            let mut lp = 0.0;
            let mut lm = 0.0;
            perturb_param(layer, pi, i, eps);
            lp += scalar_loss(layer, x, mode).0;
            perturb_param(layer, pi, i, -2.0 * eps);
            lm += scalar_loss(layer, x, mode).0;
            perturb_param(layer, pi, i, eps);
            let numeric = (lp - lm) / (2.0 * eps);
            assert_close(
                param_grads[pi][i],
                numeric,
                tol,
                &format!("d param[{pi}][{i}] of {}", layer.name()),
            );
        }
    }
}

fn perturb_param(layer: &mut dyn SeqLayer, target: usize, index: usize, delta: f32) {
    let mut k = 0;
    layer.visit_params(&mut |p| {
        if k == target {
            p.value.as_mut_slice()[index] += delta;
        }
        k += 1;
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coefficients_are_deterministic_and_bounded() {
        let a = coefficients(3, 4);
        let b = coefficients(3, 4);
        assert_eq!(a, b);
        assert!(a.as_slice().iter().all(|&x| (-1.0..=1.0).contains(&x)));
    }
}
