//! Network container: an ordered stack of layers with (de)serialization.

use crate::layers::{build_layer, LayerScratch, LayerSpec, Mode, SeqLayer};
use crate::mat::Mat;
use crate::param::Param;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Serializable description of a network architecture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct NetworkSpec {
    /// Layers applied in order.
    pub layers: Vec<LayerSpec>,
}

impl NetworkSpec {
    /// Creates a spec from a list of layers.
    pub fn new(layers: Vec<LayerSpec>) -> Self {
        Self { layers }
    }
}

/// A feed-forward stack of [`SeqLayer`]s built from a [`NetworkSpec`].
///
/// # Examples
///
/// ```
/// use nn::network::{Network, NetworkSpec};
/// use nn::layers::{LayerSpec, Mode};
/// use nn::mat::Mat;
///
/// let spec = NetworkSpec::new(vec![
///     LayerSpec::Lstm { in_dim: 4, hidden: 8, return_sequences: false },
///     LayerSpec::Dense { in_dim: 8, out_dim: 3 },
/// ]);
/// let mut net = Network::new(spec, 42);
/// let logits = net.forward(&Mat::zeros(10, 4), Mode::Eval);
/// assert_eq!(logits.shape(), (1, 3));
/// ```
pub struct Network {
    spec: NetworkSpec,
    layers: Vec<Box<dyn SeqLayer>>,
    /// Owned scratch backing the convenience [`Network::predict_into`];
    /// the shareable inference paths ([`Network::predict_scratch`],
    /// [`Network::predict_batch_into`]) take caller-owned scratch instead.
    scratch: NetworkScratch,
}

/// Caller-owned buffers for the `&self` inference paths: ping-pong
/// activation matrices plus one [`LayerScratch`] per layer.
///
/// Weights stay in the (shared, read-only) [`Network`]; everything mutable
/// during inference lives here. Create one per engine/thread with
/// [`Network::make_scratch`] and reuse it across calls — all buffers grow to
/// a high-water mark, so steady-state inference performs no allocation.
/// A scratch is shape-agnostic: the same instance may be reused across
/// networks with the **same layer count** (e.g. the per-gesture error
/// classifiers, which share one architecture).
#[derive(Debug, Default, Clone)]
pub struct NetworkScratch {
    ping: Mat,
    pong: Mat,
    layers: Vec<LayerScratch>,
}

/// Shared driver for the allocation-free inference paths: runs `x` through
/// `layers` (batched when `batch > 1`), ping-ponging activations through the
/// scratch and writing the final activation into `out`.
fn run_layers(
    layers: &[Box<dyn SeqLayer>],
    x: &Mat,
    batch: usize,
    out: &mut Mat,
    scratch: &mut NetworkScratch,
) {
    run_layers_observed(layers, x, batch, out, scratch, &mut |_, _| {});
}

/// [`run_layers`] with an observation hook: `observe(i, input)` fires with
/// each layer's *input* activation right before the layer runs. The hook
/// is how the quantized tier's activation calibration records per-layer
/// input ranges ([`Network::predict_traced`]) without the network exposing
/// layer internals; the computation itself is bit-identical to the
/// unobserved path.
fn run_layers_observed(
    layers: &[Box<dyn SeqLayer>],
    x: &Mat,
    batch: usize,
    out: &mut Mat,
    scratch: &mut NetworkScratch,
    observe: &mut dyn FnMut(usize, &Mat),
) {
    assert!(batch > 0, "batch must be positive");
    assert_eq!(x.rows() % batch, 0, "batch does not divide input rows");
    if layers.is_empty() {
        out.copy_from(x);
        return;
    }
    assert_eq!(
        scratch.layers.len(),
        layers.len(),
        "NetworkScratch layer count does not match the network"
    );
    let mut cur = 0usize;
    for (i, layer) in layers.iter().enumerate() {
        let ls = &mut scratch.layers[i];
        if i == 0 {
            observe(i, x);
            layer.infer_batch_into(x, batch, &mut scratch.ping, ls);
        } else if cur == 0 {
            observe(i, &scratch.ping);
            layer.infer_batch_into(&scratch.ping, batch, &mut scratch.pong, ls);
            cur = 1;
        } else {
            observe(i, &scratch.pong);
            layer.infer_batch_into(&scratch.pong, batch, &mut scratch.ping, ls);
            cur = 0;
        }
    }
    out.copy_from(if cur == 0 { &scratch.ping } else { &scratch.pong });
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("layers", &self.layers.iter().map(|l| l.name()).collect::<Vec<_>>())
            .field("num_params", &{
                // visit_params requires &mut; report spec size instead.
                self.spec.layers.len()
            })
            .finish()
    }
}

/// Weight checkpoint: spec plus flattened weights in visit order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SavedNetwork {
    /// The architecture.
    pub spec: NetworkSpec,
    /// Parameter values in [`Network::visit_params`] order.
    pub weights: Vec<Mat>,
}

impl Network {
    /// Builds a network from `spec`, initializing weights from `seed`.
    pub fn new(spec: NetworkSpec, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let layers: Vec<Box<dyn SeqLayer>> =
            spec.layers.iter().map(|s| build_layer(s, &mut rng)).collect();
        let scratch = NetworkScratch {
            ping: Mat::zeros(0, 0),
            pong: Mat::zeros(0, 0),
            layers: vec![LayerScratch::default(); layers.len()],
        };
        Self { spec, layers, scratch }
    }

    /// Creates a caller-owned scratch sized for this network's layer stack,
    /// for use with [`Network::predict_scratch`] /
    /// [`Network::predict_batch_into`].
    pub fn make_scratch(&self) -> NetworkScratch {
        NetworkScratch {
            ping: Mat::zeros(0, 0),
            pong: Mat::zeros(0, 0),
            layers: vec![LayerScratch::default(); self.layers.len()],
        }
    }

    /// The architecture this network was built from.
    pub fn spec(&self) -> &NetworkSpec {
        &self.spec
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Runs the forward pass.
    pub fn forward(&mut self, x: &Mat, mode: Mode) -> Mat {
        let mut cur = x.clone();
        for layer in &mut self.layers {
            cur = layer.forward(&cur, mode);
        }
        cur
    }

    /// Runs the backward pass; must follow a `forward` call. Returns the
    /// gradient with respect to the network input.
    pub fn backward(&mut self, grad_out: &Mat) -> Mat {
        let mut cur = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            cur = layer.backward(&cur);
        }
        cur
    }

    /// Zeroes all parameter gradients.
    pub fn zero_grad(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }

    /// Visits every parameter block in a stable (layer, block) order.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    /// Total number of scalar trainable parameters.
    pub fn num_params(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.len());
        n
    }

    /// Convenience: forward pass in eval mode.
    pub fn predict(&mut self, x: &Mat) -> Mat {
        self.forward(x, Mode::Eval)
    }

    /// Allocation-free inference through the network-owned scratch, writing
    /// the logits into `out`.
    ///
    /// Produces bit-identical results to [`Network::predict`] but performs
    /// no heap allocation once the buffers have warmed up to the input
    /// shape. Unlike `forward`, no state for `backward` is recorded. For a
    /// network shared across engines or threads, use
    /// [`Network::predict_scratch`] with caller-owned scratch instead.
    pub fn predict_into(&mut self, x: &Mat, out: &mut Mat) {
        let Self { layers, scratch, .. } = self;
        run_layers(layers, x, 1, out, scratch);
    }

    /// Allocation-free inference with **caller-owned** scratch: the network
    /// itself stays immutable, so one trained `Network` (it is `Sync`) can
    /// serve many engines/threads concurrently, each holding its own
    /// [`NetworkScratch`]. Bit-identical to [`Network::predict`].
    pub fn predict_scratch(&self, x: &Mat, out: &mut Mat, scratch: &mut NetworkScratch) {
        run_layers(&self.layers, x, 1, out, scratch);
    }

    /// Cross-sequence micro-batched inference: `x` holds `batch` equally
    /// shaped `(T, F)` sequences stacked row-wise as `(batch * T, F)`, and
    /// the output stacks each sequence's result the same way (for the
    /// classifier heads in this workspace: one `(1, classes)` row per
    /// sequence, so `out` is `(batch, classes)` and row `b` belongs to
    /// sequence `b`).
    ///
    /// Each sequence's block is **bit-identical** to running that sequence
    /// alone through [`Network::predict_scratch`]; the speedup comes from
    /// fusing the row-independent matrix products (dense layers, LSTM input
    /// projections, im2col convolutions) of all sequences into single
    /// `matmul_into` calls instead of `batch` small ones.
    pub fn predict_batch_into(
        &self,
        x: &Mat,
        batch: usize,
        out: &mut Mat,
        scratch: &mut NetworkScratch,
    ) {
        run_layers(&self.layers, x, batch, out, scratch);
    }

    /// [`Network::predict_scratch`] plus an observation hook:
    /// `observe(i, input)` fires with layer `i`'s input activation right
    /// before that layer runs. Used by the quantized tier's activation
    /// calibration ([`crate::quant`]) to record per-layer input ranges;
    /// the outputs are bit-identical to the unobserved path.
    pub fn predict_traced(
        &self,
        x: &Mat,
        out: &mut Mat,
        scratch: &mut NetworkScratch,
        observe: &mut dyn FnMut(usize, &Mat),
    ) {
        run_layers_observed(&self.layers, x, 1, out, scratch, observe);
    }

    /// Copies all parameter values out (for early-stopping snapshots).
    pub fn snapshot_weights(&mut self) -> Vec<Mat> {
        let mut out = Vec::new();
        self.visit_params(&mut |p| out.push(p.value.clone()));
        out
    }

    /// Restores parameter values from a snapshot.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot does not match the network architecture.
    pub fn restore_weights(&mut self, weights: &[Mat]) {
        let mut k = 0;
        self.visit_params(&mut |p| {
            assert!(k < weights.len(), "restore_weights: snapshot too short");
            assert_eq!(
                p.value.shape(),
                weights[k].shape(),
                "restore_weights: shape mismatch at block {k}"
            );
            p.value = weights[k].clone();
            k += 1;
        });
        assert_eq!(k, weights.len(), "restore_weights: snapshot too long");
    }

    /// Scales all accumulated gradients by `s` (used to average over a batch).
    pub fn scale_grads(&mut self, s: f32) {
        self.visit_params(&mut |p| {
            for g in p.grad.as_mut_slice() {
                *g *= s;
            }
        });
    }

    /// Global L2 gradient-norm clipping; returns the pre-clip norm.
    pub fn clip_grad_norm(&mut self, max_norm: f32) -> f32 {
        let mut sq = 0.0f32;
        self.visit_params(&mut |p| {
            sq += p.grad.as_slice().iter().map(|g| g * g).sum::<f32>();
        });
        let norm = sq.sqrt();
        if norm > max_norm && norm > 0.0 {
            let s = max_norm / norm;
            self.scale_grads(s);
        }
        norm
    }

    /// Serializes architecture and weights into a [`SavedNetwork`].
    pub fn save(&mut self) -> SavedNetwork {
        SavedNetwork { spec: self.spec.clone(), weights: self.snapshot_weights() }
    }

    /// Rebuilds a network from a checkpoint.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint weights do not match its own spec.
    pub fn from_saved(saved: &SavedNetwork) -> Self {
        let mut net = Network::new(saved.spec.clone(), 0);
        net.restore_weights(&saved.weights);
        net
    }

    /// Serializes the checkpoint to a JSON string.
    ///
    /// # Errors
    ///
    /// Returns an error if JSON serialization fails.
    pub fn to_json(&mut self) -> Result<String, serde_json::Error> {
        serde_json::to_string(&self.save())
    }

    /// Deserializes a checkpoint from a JSON string.
    ///
    /// # Errors
    ///
    /// Returns an error if the JSON is malformed.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        let saved: SavedNetwork = serde_json::from_str(json)?;
        Ok(Self::from_saved(&saved))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Padding;

    fn small_spec() -> NetworkSpec {
        NetworkSpec::new(vec![
            LayerSpec::Conv1d {
                in_channels: 3,
                out_channels: 4,
                kernel: 3,
                padding: Padding::Same,
            },
            LayerSpec::Relu,
            LayerSpec::GlobalMaxPool,
            LayerSpec::Dense { in_dim: 4, out_dim: 2 },
        ])
    }

    #[test]
    fn forward_produces_logits() {
        let mut net = Network::new(small_spec(), 1);
        let y = net.forward(&Mat::full(8, 3, 0.5), Mode::Eval);
        assert_eq!(y.shape(), (1, 2));
    }

    #[test]
    fn seeded_construction_is_deterministic() {
        let mut a = Network::new(small_spec(), 7);
        let mut b = Network::new(small_spec(), 7);
        let x = Mat::full(8, 3, 0.3);
        assert_eq!(a.forward(&x, Mode::Eval), b.forward(&x, Mode::Eval));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Network::new(small_spec(), 7);
        let mut b = Network::new(small_spec(), 8);
        let x = Mat::full(8, 3, 0.3);
        assert_ne!(a.forward(&x, Mode::Eval), b.forward(&x, Mode::Eval));
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut net = Network::new(small_spec(), 3);
        let x = Mat::full(8, 3, 0.1);
        let before = net.forward(&x, Mode::Eval);
        let snap = net.snapshot_weights();
        // Perturb weights.
        net.visit_params(&mut |p| {
            for w in p.value.as_mut_slice() {
                *w += 1.0;
            }
        });
        assert_ne!(net.forward(&x, Mode::Eval), before);
        net.restore_weights(&snap);
        assert_eq!(net.forward(&x, Mode::Eval), before);
    }

    #[test]
    fn json_roundtrip_preserves_predictions() {
        let mut net = Network::new(small_spec(), 3);
        let x = Mat::full(8, 3, 0.1);
        let before = net.forward(&x, Mode::Eval);
        let json = net.to_json().unwrap();
        let mut restored = Network::from_json(&json).unwrap();
        assert_eq!(restored.forward(&x, Mode::Eval), before);
    }

    #[test]
    fn num_params_counts_all_blocks() {
        let mut net =
            Network::new(NetworkSpec::new(vec![LayerSpec::Dense { in_dim: 3, out_dim: 2 }]), 0);
        assert_eq!(net.num_params(), 3 * 2 + 2);
    }

    #[test]
    fn clip_grad_norm_scales_down() {
        let mut net =
            Network::new(NetworkSpec::new(vec![LayerSpec::Dense { in_dim: 2, out_dim: 2 }]), 0);
        net.visit_params(&mut |p| {
            for g in p.grad.as_mut_slice() {
                *g = 10.0;
            }
        });
        let pre = net.clip_grad_norm(1.0);
        assert!(pre > 1.0);
        let mut sq = 0.0;
        net.visit_params(&mut |p| sq += p.grad.as_slice().iter().map(|g| g * g).sum::<f32>());
        assert!((sq.sqrt() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn predict_into_is_bit_exact_for_conv_stack() {
        let mut net = Network::new(small_spec(), 5);
        let mut out = Mat::zeros(0, 0);
        // Varying input shapes exercise the scratch-buffer resizing.
        for t in [8usize, 12, 8, 5] {
            let x = Mat::from_vec(t, 3, (0..t * 3).map(|i| ((i as f32) * 0.37).sin()).collect());
            let reference = net.predict(&x);
            net.predict_into(&x, &mut out);
            assert_eq!(reference, out, "mismatch at t={t}");
        }
    }

    #[test]
    fn predict_into_is_bit_exact_for_lstm_stack() {
        let spec = NetworkSpec::new(vec![
            LayerSpec::Lstm { in_dim: 4, hidden: 6, return_sequences: true },
            LayerSpec::Lstm { in_dim: 6, hidden: 3, return_sequences: false },
            LayerSpec::Dense { in_dim: 3, out_dim: 5 },
            LayerSpec::Relu,
            LayerSpec::Dense { in_dim: 5, out_dim: 2 },
        ]);
        let mut net = Network::new(spec, 11);
        let mut out = Mat::zeros(0, 0);
        for t in [10usize, 15, 10] {
            let x = Mat::from_vec(t, 4, (0..t * 4).map(|i| ((i as f32) * 0.21).cos()).collect());
            let reference = net.predict(&x);
            net.predict_into(&x, &mut out);
            assert_eq!(reference, out, "mismatch at t={t}");
        }
    }

    #[test]
    fn predict_into_covers_every_layer_kind() {
        // One network touching the layers not covered above.
        let spec = NetworkSpec::new(vec![
            LayerSpec::BatchNorm { dim: 3 },
            LayerSpec::Conv1d {
                in_channels: 3,
                out_channels: 4,
                kernel: 2,
                padding: Padding::Valid,
            },
            LayerSpec::Tanh,
            LayerSpec::MaxPool1d { kernel: 2 },
            LayerSpec::Sigmoid,
            LayerSpec::GlobalAvgPool,
            LayerSpec::Dense { in_dim: 4, out_dim: 4 },
            LayerSpec::Dropout { rate: 0.5 },
            LayerSpec::Flatten,
            LayerSpec::Dense { in_dim: 4, out_dim: 2 },
        ]);
        let mut net = Network::new(spec, 3);
        let x = Mat::from_vec(9, 3, (0..27).map(|i| (i as f32) * 0.1 - 1.3).collect());
        let reference = net.predict(&x);
        let mut out = Mat::zeros(0, 0);
        net.predict_into(&x, &mut out);
        assert_eq!(reference, out);

        // TakeLast after a sequence-returning LSTM.
        let spec = NetworkSpec::new(vec![
            LayerSpec::Lstm { in_dim: 3, hidden: 4, return_sequences: true },
            LayerSpec::TakeLast,
        ]);
        let mut net = Network::new(spec, 4);
        let reference = net.predict(&x);
        net.predict_into(&x, &mut out);
        assert_eq!(reference, out);
    }

    #[test]
    fn debug_is_nonempty() {
        let net = Network::new(small_spec(), 1);
        assert!(!format!("{net:?}").is_empty());
    }

    /// A trained network must be shareable read-only across worker threads
    /// (the sharded serving layer holds it behind an `Arc`).
    #[test]
    fn network_and_mat_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Mat>();
        assert_send_sync::<Network>();
        assert_send_sync::<NetworkScratch>();
    }

    #[test]
    fn predict_scratch_matches_predict_into_with_shared_network() {
        let mut net = Network::new(small_spec(), 5);
        let mut scratch = net.make_scratch();
        let mut a = Mat::zeros(0, 0);
        let mut b = Mat::zeros(0, 0);
        for t in [8usize, 12, 8] {
            let x = Mat::from_vec(t, 3, (0..t * 3).map(|i| ((i as f32) * 0.29).sin()).collect());
            net.predict_into(&x, &mut a);
            let shared: &Network = &net;
            shared.predict_scratch(&x, &mut b, &mut scratch);
            assert_eq!(a, b, "mismatch at t={t}");
        }
    }

    /// Batched inference must be bit-identical, per sequence, to running
    /// each sequence alone — across every layer kind the workspace models
    /// use (LSTM, Conv1d, pools, reductions, norm, activations, dense).
    #[test]
    fn predict_batch_into_is_bit_exact_per_sequence() {
        let specs = vec![
            small_spec(),
            NetworkSpec::new(vec![
                LayerSpec::Lstm { in_dim: 3, hidden: 6, return_sequences: true },
                LayerSpec::Lstm { in_dim: 6, hidden: 4, return_sequences: false },
                LayerSpec::Dense { in_dim: 4, out_dim: 5 },
                LayerSpec::Relu,
                LayerSpec::Dense { in_dim: 5, out_dim: 2 },
            ]),
            NetworkSpec::new(vec![
                LayerSpec::BatchNorm { dim: 3 },
                LayerSpec::Conv1d {
                    in_channels: 3,
                    out_channels: 4,
                    kernel: 2,
                    padding: Padding::Valid,
                },
                LayerSpec::Tanh,
                LayerSpec::MaxPool1d { kernel: 2 },
                LayerSpec::Sigmoid,
                LayerSpec::GlobalAvgPool,
                LayerSpec::Dense { in_dim: 4, out_dim: 4 },
                LayerSpec::Dropout { rate: 0.5 },
                LayerSpec::Flatten,
                LayerSpec::Dense { in_dim: 4, out_dim: 2 },
            ]),
            NetworkSpec::new(vec![
                LayerSpec::Lstm { in_dim: 3, hidden: 4, return_sequences: true },
                LayerSpec::TakeLast,
            ]),
        ];
        let t = 9usize;
        for (si, spec) in specs.into_iter().enumerate() {
            let net = Network::new(spec, 7 + si as u64);
            let mut scratch = net.make_scratch();
            let windows: Vec<Mat> = (0..3)
                .map(|w| {
                    Mat::from_vec(
                        t,
                        3,
                        (0..t * 3).map(|i| ((i + w * 50) as f32 * 0.17).sin()).collect(),
                    )
                })
                .collect();
            // Reference: each window alone.
            let mut singles = Vec::new();
            for w in &windows {
                let mut out = Mat::zeros(0, 0);
                net.predict_scratch(w, &mut out, &mut scratch);
                singles.push(out);
            }
            // Batched: stacked windows in one call.
            let mut stacked = Mat::zeros(windows.len() * t, 3);
            for (b, w) in windows.iter().enumerate() {
                stacked.copy_rows_from(w, b * t);
            }
            let mut out = Mat::zeros(0, 0);
            net.predict_batch_into(&stacked, windows.len(), &mut out, &mut scratch);
            let rows_per_seq = out.rows() / windows.len();
            for (b, single) in singles.iter().enumerate() {
                assert_eq!(single.rows(), rows_per_seq, "spec {si}: row count");
                for r in 0..rows_per_seq {
                    assert_eq!(
                        single.row(r),
                        out.row(b * rows_per_seq + r),
                        "spec {si}, sequence {b}, row {r}"
                    );
                }
            }
        }
    }
}
