//! Post-training int8 quantization: calibrated weights + activations over
//! the [`crate::kernels::int8`] GEMM, the inference substrate of the
//! quantized serving tier.
//!
//! # Scheme
//!
//! * **Weights** are quantized per output channel (per-row symmetric):
//!   each output channel's weight vector is stored as a row of a
//!   [`QuantizedMat`] — already transposed into the `(out, in)` layout the
//!   `A·Bᵀ` int8 kernel consumes — with its own `f32` scale
//!   `max_abs / 127`.
//! * **Activations** are quantized per tensor with a scale calibrated
//!   offline: a traced pass over held-out calibration windows
//!   ([`Network::predict_traced`]) records each quantizable layer's input
//!   `max_abs`, and the scale is frozen into the [`QuantizedNetwork`].
//! * **Requantization is deterministic**: `q = clamp(round_ties_even(x ·
//!   inv_scale), -127, 127)` where `inv_scale` is the reciprocal computed
//!   **once** at quantization time. Multiply and `round_ties_even` are
//!   exactly-specified IEEE operations, so quantized outputs are
//!   bit-identical across runs, batch sizes, worker counts, and — because
//!   the int8 GEMM is exact — across scalar/SIMD backends.
//!
//! Only inference is quantized; f32 stays the training substrate and the
//! [`QuantizedNetwork`] is derived from a trained [`Network`]
//! (quantize-after-train). Softmax inputs, pooling, and biases stay in
//! f32. LSTM gate nonlinearities also stay in f32 but swap `libm`
//! sigmoid/tanh for the deterministic rational approximants
//! ([`fast_tanh`], error < 1e-4 — far below the tier's own quantization
//! step): the matrix products *and* the gate math dominate the per-tick
//! cost, and the int8 tier buys throughput on both.
//!
//! The LSTM hidden state is quantized with a **fixed** scale of `1/127`
//! rather than a calibrated one: `h = o · tanh(c)` is analytically inside
//! `(-1, 1)` (pinned by the layer's `hidden_states_are_bounded` test), so
//! the full int8 range is always used and calibration cannot improve it.

use crate::kernels::int8::{gemm_i8_abt, K_ALIGN};
use crate::layers::{LayerSpec, Padding};
use crate::mat::Mat;
use crate::network::Network;

/// Why a trained network could not be quantized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuantError {
    /// The architecture contains a layer kind the int8 tier does not
    /// implement (the pipeline's classifiers only use Dense, Relu,
    /// GlobalMaxPool, Lstm, and Conv1d).
    Unsupported(&'static str),
    /// No calibration windows were supplied: activation scales would be
    /// arbitrary and the tier would clamp silently.
    NoCalibration,
}

impl std::fmt::Display for QuantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuantError::Unsupported(name) => {
                write!(f, "quantized tier does not support layer kind {name}")
            }
            QuantError::NoCalibration => {
                f.write_str("activation calibration requires at least one calibration window")
            }
        }
    }
}

impl std::error::Error for QuantError {}

/// Per-row symmetric int8 weight matrix in the `(out, in)` layout the
/// `A·Bᵀ` kernel consumes: row `j` is output channel `j`, quantized with
/// its own scale `max_abs(row) / 127` (`1.0` for all-zero rows).
///
/// Rows are stored at a [`stride`](Self::stride) of [`K_ALIGN`]-rounded
/// width with exact-zero padding, so the GEMM's k-loop is pure vector
/// steps with no scalar tail; zero terms contribute exactly 0, keeping the
/// padded product bit-identical to the unpadded one.
#[derive(Debug, Clone)]
pub struct QuantizedMat {
    rows: usize,
    cols: usize,
    stride: usize,
    data: Vec<i8>,
    scales: Vec<f32>,
}

impl QuantizedMat {
    /// Quantizes the **columns** of `w` (stored `(in, out)`, the layer
    /// convention) into rows of a `(out, in)` int8 matrix — transposition
    /// and quantization in one pass, at quantize time, so inference never
    /// strides a column.
    pub fn from_columns(w: &Mat) -> Self {
        let (in_dim, out_dim) = w.shape();
        let stride = in_dim.next_multiple_of(K_ALIGN);
        let mut data = vec![0i8; out_dim * stride];
        let mut scales = vec![1.0f32; out_dim];
        for j in 0..out_dim {
            let mut max_abs = 0.0f32;
            for i in 0..in_dim {
                max_abs = max_abs.max(w[(i, j)].abs());
            }
            let scale = if max_abs > 0.0 { max_abs / 127.0 } else { 1.0 };
            let inv = scale.recip();
            scales[j] = scale;
            for i in 0..in_dim {
                data[j * stride + i] = quantize_rne(w[(i, j)], inv);
            }
        }
        Self { rows: out_dim, cols: in_dim, stride, data, scales }
    }

    /// Output channels (rows of the transposed layout).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Input width (columns of the transposed layout), excluding padding.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Stored row width: [`cols`](Self::cols) rounded up to [`K_ALIGN`].
    /// The activation operand must be staged at this same stride, and it is
    /// the `k` passed to the GEMM.
    // lint: hot-path
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// The quantized values, row-major `(out, stride)` with zero padding.
    // lint: hot-path
    pub fn data(&self) -> &[i8] {
        &self.data
    }

    /// Per-output-channel scales.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }
}

/// Deterministic round-to-nearest-even int8 quantization:
/// `clamp(round_ties_even(x · inv_scale), -127, 127)`.
///
/// `inv_scale` is the reciprocal of the scale, computed once when the
/// quantizer is built — multiplication by a frozen reciprocal plus
/// `round_ties_even` are exactly-specified IEEE operations, which is what
/// makes requantization reproducible bit-for-bit everywhere. Non-finite
/// inputs saturate through the `as` cast (NaN to 0), never trap.
#[inline]
// lint: hot-path
pub fn quantize_rne(x: f32, inv_scale: f32) -> i8 {
    (x * inv_scale).round_ties_even().clamp(-127.0, 127.0) as i8
}

/// A frozen per-tensor activation quantizer: the calibrated scale and its
/// precomputed reciprocal.
#[derive(Debug, Clone, Copy)]
pub struct ActQuant {
    /// Dequantization scale (`max_abs / 127` from calibration).
    pub scale: f32,
    inv_scale: f32,
}

impl ActQuant {
    /// Builds a quantizer from a calibrated `max_abs` (`1.0` scale when the
    /// calibration pass only saw zeros).
    pub fn from_max_abs(max_abs: f32) -> Self {
        let scale = if max_abs > 0.0 { max_abs / 127.0 } else { 1.0 };
        Self { scale, inv_scale: scale.recip() }
    }

    /// Quantizes one value (see [`quantize_rne`]).
    #[inline]
    // lint: hot-path
    pub fn quantize(&self, x: f32) -> i8 {
        quantize_rne(x, self.inv_scale)
    }
}

/// Quantized dense layer: int8 `x·Wᵀ` plus f32 bias.
#[derive(Debug, Clone)]
struct QDense {
    wq: QuantizedMat, // (out, in)
    /// Per-output-channel dequantization factor `w_scale · x_scale`.
    deq: Vec<f32>,
    bias: Vec<f32>,
    x: ActQuant,
}

/// Quantized 1-D convolution: int8 im2col patches against pre-transposed
/// `(Cout, k·Cin)` weights. Zero padding quantizes exactly to 0, so the
/// patch matrix is assembled directly in int8.
#[derive(Debug, Clone)]
struct QConv1d {
    wq: QuantizedMat, // (Cout, k*Cin)
    deq: Vec<f32>,
    bias: Vec<f32>,
    x: ActQuant,
    in_channels: usize,
    kernel: usize,
    padding: Padding,
}

/// Quantized LSTM: the batched input projection `x·Wᵀ` uses the calibrated
/// input scale; the per-step recurrence `h·Uᵀ` uses the fixed `1/127`
/// hidden scale (module docs). Gates and cell state stay f32 in the f32
/// layer's operation order, with [`fast_tanh`]/[`fast_sigmoid`] as the
/// nonlinearities.
#[derive(Debug, Clone)]
struct QLstm {
    wq: QuantizedMat, // (4H, in)
    uq: QuantizedMat, // (4H, H)
    /// `w_scale · x_scale` per gate column.
    deq_w: Vec<f32>,
    /// `u_scale / 127` per gate column (fixed hidden scale).
    deq_u: Vec<f32>,
    bias: Vec<f32>,
    x: ActQuant,
    hidden: usize,
    return_sequences: bool,
}

/// One layer of a [`QuantizedNetwork`].
#[derive(Debug, Clone)]
enum QLayer {
    Dense(QDense),
    Relu,
    GlobalMaxPool,
    Lstm(QLstm),
    Conv1d(QConv1d),
}

/// Reusable int8/i32/f32 staging buffers for one quantized inference pass.
/// All buffers grow to a high-water mark; steady-state ticks allocate
/// nothing.
#[derive(Debug, Default, Clone)]
struct QuantBuffers {
    /// Quantized GEMM A operand (activation rows or im2col patches).
    qa: Vec<i8>,
    /// Quantized input rows, pre-patching (Conv1d).
    qx: Vec<i8>,
    /// Quantized hidden state (LSTM recurrence).
    qh: Vec<i8>,
    /// i32 GEMM accumulator.
    acc: Vec<i32>,
    /// i32 accumulator for the per-step LSTM recurrence.
    acc_h: Vec<i32>,
    /// Dequantized LSTM input projection `(batch·T, 4H)`.
    xw: Mat,
    /// LSTM hidden-to-gate projection.
    hu: Vec<f32>,
    /// LSTM hidden state.
    h: Vec<f32>,
    /// LSTM cell state.
    c: Vec<f32>,
}

/// Caller-owned scratch for [`QuantizedNetwork`] inference: ping-pong
/// activation matrices plus the int8 staging buffers. One per
/// engine/thread, exactly like [`crate::network::NetworkScratch`].
#[derive(Debug, Default, Clone)]
pub struct QuantScratch {
    ping: Mat,
    pong: Mat,
    buf: QuantBuffers,
}

/// A post-training-quantized twin of a trained [`Network`]: per-channel
/// int8 weights, calibrated activation scales, f32 glue.
///
/// Outputs are *close to* — not bit-identical to — the f32 network
/// (quantization error is the point of the parity gate), but are
/// **bit-identical to themselves** across GEMM backends, batch sizes, and
/// worker counts: the int8 products are exact and every f32 step follows
/// one fixed operation order.
#[derive(Debug, Clone)]
pub struct QuantizedNetwork {
    layers: Vec<QLayer>,
}

impl QuantizedNetwork {
    /// Quantizes a trained network, calibrating activation scales from a
    /// traced pass over `calib` (each entry one `(T, F)` input window, e.g.
    /// a sample of the training windows).
    ///
    /// # Errors
    ///
    /// [`QuantError::Unsupported`] if the architecture contains a layer
    /// kind outside {Dense, Relu, GlobalMaxPool, Lstm, Conv1d};
    /// [`QuantError::NoCalibration`] if `calib` is empty.
    pub fn quantize(net: &mut Network, calib: &[Mat]) -> Result<Self, QuantError> {
        if calib.is_empty() {
            return Err(QuantError::NoCalibration);
        }
        let saved = net.save();
        let n_layers = saved.spec.layers.len();

        // Calibration: record each layer's input max_abs over all windows.
        let mut max_abs = vec![0.0f32; n_layers];
        let mut scratch = net.make_scratch();
        let mut out = Mat::zeros(0, 0);
        for x in calib {
            net.predict_traced(x, &mut out, &mut scratch, &mut |i, input| {
                for &v in input.as_slice() {
                    if v.abs() > max_abs[i] {
                        max_abs[i] = v.abs();
                    }
                }
            });
        }

        // Map the flat visit-order weight list onto quantized layers.
        let mut layers = Vec::with_capacity(n_layers);
        let mut w_idx = 0usize;
        for (i, spec) in saved.spec.layers.iter().enumerate() {
            match *spec {
                LayerSpec::Dense { .. } => {
                    let w = &saved.weights[w_idx];
                    let b = &saved.weights[w_idx + 1];
                    w_idx += 2;
                    let x = ActQuant::from_max_abs(max_abs[i]);
                    let wq = QuantizedMat::from_columns(w);
                    let deq = wq.scales().iter().map(|s| s * x.scale).collect();
                    layers.push(QLayer::Dense(QDense { wq, deq, bias: b.row(0).to_vec(), x }));
                }
                LayerSpec::Relu => layers.push(QLayer::Relu),
                LayerSpec::GlobalMaxPool => layers.push(QLayer::GlobalMaxPool),
                LayerSpec::Lstm { hidden, return_sequences, .. } => {
                    let w = &saved.weights[w_idx];
                    let u = &saved.weights[w_idx + 1];
                    let b = &saved.weights[w_idx + 2];
                    w_idx += 3;
                    let x = ActQuant::from_max_abs(max_abs[i]);
                    let wq = QuantizedMat::from_columns(w);
                    let uq = QuantizedMat::from_columns(u);
                    let deq_w = wq.scales().iter().map(|s| s * x.scale).collect();
                    let deq_u = uq.scales().iter().map(|s| s / 127.0).collect();
                    layers.push(QLayer::Lstm(QLstm {
                        wq,
                        uq,
                        deq_w,
                        deq_u,
                        bias: b.row(0).to_vec(),
                        x,
                        hidden,
                        return_sequences,
                    }));
                }
                LayerSpec::Conv1d { in_channels, kernel, padding, .. } => {
                    let w = &saved.weights[w_idx];
                    let b = &saved.weights[w_idx + 1];
                    w_idx += 2;
                    let x = ActQuant::from_max_abs(max_abs[i]);
                    let wq = QuantizedMat::from_columns(w);
                    let deq = wq.scales().iter().map(|s| s * x.scale).collect();
                    layers.push(QLayer::Conv1d(QConv1d {
                        wq,
                        deq,
                        bias: b.row(0).to_vec(),
                        x,
                        in_channels,
                        kernel,
                        padding,
                    }));
                }
                LayerSpec::Tanh => return Err(QuantError::Unsupported("Tanh")),
                LayerSpec::Sigmoid => return Err(QuantError::Unsupported("Sigmoid")),
                LayerSpec::Dropout { .. } => return Err(QuantError::Unsupported("Dropout")),
                LayerSpec::BatchNorm { .. } => return Err(QuantError::Unsupported("BatchNorm")),
                LayerSpec::MaxPool1d { .. } => return Err(QuantError::Unsupported("MaxPool1d")),
                LayerSpec::GlobalAvgPool => return Err(QuantError::Unsupported("GlobalAvgPool")),
                LayerSpec::TakeLast => return Err(QuantError::Unsupported("TakeLast")),
                LayerSpec::Flatten => return Err(QuantError::Unsupported("Flatten")),
            }
        }
        Ok(Self { layers })
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Creates a caller-owned scratch for this network.
    pub fn make_scratch(&self) -> QuantScratch {
        QuantScratch::default()
    }

    /// Single-sequence quantized inference (see
    /// [`QuantizedNetwork::predict_batch_into`]).
    // lint: hot-path
    pub fn predict_scratch(&self, x: &Mat, out: &mut Mat, scratch: &mut QuantScratch) {
        self.predict_batch_into(x, 1, out, scratch);
    }

    /// Cross-sequence micro-batched quantized inference, mirroring
    /// [`Network::predict_batch_into`]'s row conventions: `x` holds `batch`
    /// equally shaped sequences stacked row-wise. Each sequence's block is
    /// bit-identical to running that sequence alone — row-independent
    /// integer products plus per-element dequantization — which is what
    /// keeps the sharded pool's decisions independent of worker count on
    /// the int8 tier too.
    // lint: hot-path
    pub fn predict_batch_into(
        &self,
        x: &Mat,
        batch: usize,
        out: &mut Mat,
        scratch: &mut QuantScratch,
    ) {
        assert!(batch > 0, "batch must be positive");
        assert_eq!(x.rows() % batch, 0, "batch does not divide input rows");
        if self.layers.is_empty() {
            out.copy_from(x);
            return;
        }
        let QuantScratch { ping, pong, buf } = scratch;
        let mut cur = 0usize;
        for (i, layer) in self.layers.iter().enumerate() {
            if i == 0 {
                layer.infer_batch(x, batch, ping, buf);
            } else if cur == 0 {
                layer.infer_batch(ping, batch, pong, buf);
                cur = 1;
            } else {
                layer.infer_batch(pong, batch, ping, buf);
                cur = 0;
            }
        }
        out.copy_from(if cur == 0 { ping } else { pong });
    }
}

impl QLayer {
    /// Runs one quantized layer over `batch` stacked sequences.
    // lint: hot-path
    fn infer_batch(&self, x: &Mat, batch: usize, out: &mut Mat, buf: &mut QuantBuffers) {
        match self {
            QLayer::Dense(d) => d.infer(x, out, buf),
            QLayer::Relu => {
                out.resize(x.rows(), x.cols());
                for (o, &v) in out.as_mut_slice().iter_mut().zip(x.as_slice()) {
                    *o = if v > 0.0 { v } else { 0.0 };
                }
            }
            QLayer::GlobalMaxPool => {
                let t = x.rows() / batch;
                assert!(t > 0, "GlobalMaxPool: empty input");
                let c = x.cols();
                out.resize(batch, c);
                for seq in 0..batch {
                    for col in 0..c {
                        let mut best = x[(seq * t, col)];
                        for r in 1..t {
                            if x[(seq * t + r, col)] > best {
                                best = x[(seq * t + r, col)];
                            }
                        }
                        out[(seq, col)] = best;
                    }
                }
            }
            QLayer::Lstm(l) => l.infer_batch(x, batch, out, buf),
            QLayer::Conv1d(cv) => cv.infer_batch(x, batch, out, buf),
        }
    }
}

/// Deterministic rational tanh for the quantized tier's LSTM gates: the
/// [7/6] Padé approximant of tanh on a clamped domain.
///
/// `|fast_tanh(x) - tanh(x)| < 1e-4` everywhere — far below the ~8e-3
/// quantization step the int8 tier already injects per value, so the
/// parity gate's accuracy budget is unaffected. What it buys: no `libm`
/// call, so the gate loop is straight-line mul/add/div in one fixed IEEE
/// order — still bit-deterministic across runs, backends, and worker
/// counts (the determinism contract needs *reproducible* gates, not
/// f32-identical ones) — and auto-vectorizable, which is where the tier's
/// per-frame latency win over f32's `exp`-based gates comes from.
#[inline]
// lint: hot-path
fn fast_tanh(x: f32) -> f32 {
    // Beyond ±4.9 the approximant and tanh are both within 1.2e-4 of ±1.
    let x = x.clamp(-4.9, 4.9);
    let x2 = x * x;
    let num = x * (135135.0 + x2 * (17325.0 + x2 * (378.0 + x2)));
    let den = 135135.0 + x2 * (62370.0 + x2 * (3150.0 + x2 * 28.0));
    num / den
}

/// Deterministic sigmoid via [`fast_tanh`]:
/// `σ(x) = 0.5 + 0.5·tanh(x/2)` (same error bound, halved).
#[inline]
// lint: hot-path
fn fast_sigmoid(x: f32) -> f32 {
    0.5 + 0.5 * fast_tanh(0.5 * x)
}

/// Quantizes every row of `x` into `dst` at row stride `stride`
/// (≥ `x.cols()`), zero-filling the padding — exactly the layout
/// [`QuantizedMat`] stores weights in, so the GEMM runs tail-free.
// lint: hot-path
fn quantize_rows(x: &Mat, q: &ActQuant, stride: usize, dst: &mut Vec<i8>) {
    let (rows, cols) = x.shape();
    dst.resize(rows * stride, 0);
    dst.fill(0);
    let src = x.as_slice();
    for r in 0..rows {
        let drow = &mut dst[r * stride..r * stride + cols];
        for (d, &v) in drow.iter_mut().zip(&src[r * cols..(r + 1) * cols]) {
            *d = q.quantize(v);
        }
    }
}

impl QDense {
    /// `out = dequant(quant(x) · Wqᵀ) + b`, rows independent.
    // lint: hot-path
    fn infer(&self, x: &Mat, out: &mut Mat, buf: &mut QuantBuffers) {
        let (rows, in_dim) = x.shape();
        let out_dim = self.wq.rows();
        assert_eq!(in_dim, self.wq.cols(), "QDense: input width mismatch");
        let stride = self.wq.stride();
        quantize_rows(x, &self.x, stride, &mut buf.qa);
        buf.acc.resize(rows * out_dim, 0);
        gemm_i8_abt(rows, stride, out_dim, &buf.qa, self.wq.data(), &mut buf.acc);
        out.resize(rows, out_dim);
        for r in 0..rows {
            let acc_row = &buf.acc[r * out_dim..(r + 1) * out_dim];
            let out_row = out.row_mut(r);
            for j in 0..out_dim {
                out_row[j] = acc_row[j] as f32 * self.deq[j] + self.bias[j];
            }
        }
    }
}

impl QConv1d {
    // lint: hot-path
    fn pad_lo(&self) -> usize {
        match self.padding {
            Padding::Valid => 0,
            Padding::Same => self.kernel.saturating_sub(1) / 2,
        }
    }

    fn output_len(&self, t: usize) -> usize {
        let total = match self.padding {
            Padding::Valid => 0,
            Padding::Same => self.kernel.saturating_sub(1),
        };
        let padded = t + total;
        assert!(
            padded >= self.kernel,
            "QConv1d: input of {t} steps too short for kernel {}",
            self.kernel
        );
        padded - self.kernel + 1
    }

    /// Quantizes the input rows once, assembles the int8 im2col patch
    /// matrix (padding is exactly 0), and runs one int8 GEMM per call.
    // lint: hot-path
    fn infer_batch(&self, x: &Mat, batch: usize, out: &mut Mat, buf: &mut QuantBuffers) {
        let cin = self.in_channels;
        assert_eq!(x.cols(), cin, "QConv1d: expected {} channels, got {}", cin, x.cols());
        let t = x.rows() / batch;
        let t_out = self.output_len(t);
        let lo = self.pad_lo();
        let k = self.kernel;
        let cin_kcin = k * cin;
        let stride = self.wq.stride();
        debug_assert_eq!(self.wq.cols(), cin_kcin);
        let cout = self.wq.rows();

        quantize_rows(x, &self.x, cin, &mut buf.qx);
        buf.qa.resize(batch * t_out * stride, 0);
        buf.qa.fill(0);
        for b in 0..batch {
            for o in 0..t_out {
                let row =
                    &mut buf.qa[(b * t_out + o) * stride..(b * t_out + o) * stride + cin_kcin];
                for j in 0..k {
                    let src = (o + j) as isize - lo as isize;
                    if src >= 0 && (src as usize) < t {
                        let src_row = (b * t + src as usize) * cin;
                        row[j * cin..(j + 1) * cin]
                            .copy_from_slice(&buf.qx[src_row..src_row + cin]);
                    }
                }
            }
        }
        buf.acc.resize(batch * t_out * cout, 0);
        gemm_i8_abt(batch * t_out, stride, cout, &buf.qa, self.wq.data(), &mut buf.acc);
        out.resize(batch * t_out, cout);
        for r in 0..batch * t_out {
            let acc_row = &buf.acc[r * cout..(r + 1) * cout];
            let out_row = out.row_mut(r);
            for j in 0..cout {
                out_row[j] = acc_row[j] as f32 * self.deq[j] + self.bias[j];
            }
        }
    }
}

impl QLstm {
    /// The f32 layer's fused structure with quantized projections: one
    /// batched int8 `x·Wᵀ` for every step of every sequence, then the
    /// cheap per-step recurrence with an int8 `h·Uᵀ` at the fixed `1/127`
    /// hidden scale. Gate math follows the f32 layer's operation order
    /// with the deterministic rational nonlinearities ([`fast_tanh`]).
    // lint: hot-path
    fn infer_batch(&self, x: &Mat, batch: usize, out: &mut Mat, buf: &mut QuantBuffers) {
        let h = self.hidden;
        let in_dim = x.cols();
        assert_eq!(in_dim, self.wq.cols(), "QLstm: input width mismatch");
        let t_len = x.rows() / batch;
        assert!(t_len > 0, "QLstm: empty input sequence");

        // Batched input projection.
        let stride_w = self.wq.stride();
        quantize_rows(x, &self.x, stride_w, &mut buf.qa);
        buf.acc.resize(batch * t_len * 4 * h, 0);
        gemm_i8_abt(batch * t_len, stride_w, 4 * h, &buf.qa, self.wq.data(), &mut buf.acc);
        buf.xw.resize(batch * t_len, 4 * h);
        for r in 0..batch * t_len {
            let acc_row = &buf.acc[r * 4 * h..(r + 1) * 4 * h];
            let xw_row = buf.xw.row_mut(r);
            for j in 0..4 * h {
                xw_row[j] = acc_row[j] as f32 * self.deq_w[j];
            }
        }

        let stride_u = self.uq.stride();
        buf.hu.resize(4 * h, 0.0);
        buf.h.resize(h, 0.0);
        buf.c.resize(h, 0.0);
        // The shared buffer may hold another layer's data; zero it once so
        // the `stride_u - h` padding tail is exact 0 for every step.
        buf.qh.resize(stride_u, 0);
        buf.qh.fill(0);
        buf.acc_h.resize(4 * h, 0);
        if self.return_sequences {
            out.resize(batch * t_len, h);
        } else {
            out.resize(batch, h);
        }

        let b_row = &self.bias;
        for seq in 0..batch {
            buf.h.fill(0.0);
            buf.c.fill(0.0);
            for t in 0..t_len {
                // h is in (-1, 1); quantize at the fixed 1/127 scale.
                for (qh, &hv) in buf.qh[..h].iter_mut().zip(buf.h.iter()) {
                    *qh = quantize_rne(hv, 127.0);
                }
                gemm_i8_abt(1, stride_u, 4 * h, &buf.qh, self.uq.data(), &mut buf.acc_h);
                for j in 0..4 * h {
                    buf.hu[j] = buf.acc_h[j] as f32 * self.deq_u[j];
                }
                let xw_row = buf.xw.row(seq * t_len + t);
                let hu = &buf.hu;
                for k in 0..h {
                    let zi = xw_row[k] + hu[k] + b_row[k];
                    let zf = xw_row[h + k] + hu[h + k] + b_row[h + k];
                    let zg = xw_row[2 * h + k] + hu[2 * h + k] + b_row[2 * h + k];
                    let zo = xw_row[3 * h + k] + hu[3 * h + k] + b_row[3 * h + k];
                    let i = fast_sigmoid(zi);
                    let f = fast_sigmoid(zf);
                    let g = fast_tanh(zg);
                    let o = fast_sigmoid(zo);
                    let c_new = f * buf.c[k] + i * g;
                    buf.c[k] = c_new;
                    buf.h[k] = o * fast_tanh(c_new);
                }
                if self.return_sequences {
                    out.row_mut(seq * t_len + t).copy_from_slice(&buf.h);
                }
            }
            if !self.return_sequences {
                out.row_mut(seq).copy_from_slice(&buf.h);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkSpec;

    fn calib_windows(t: usize, f: usize, n: usize) -> Vec<Mat> {
        (0..n)
            .map(|w| {
                Mat::from_vec(
                    t,
                    f,
                    (0..t * f).map(|i| ((i + w * 31) as f32 * 0.23).sin()).collect(),
                )
            })
            .collect()
    }

    #[test]
    fn rational_gates_stay_within_1e4_of_libm() {
        let mut worst = 0.0f32;
        for i in -12000..=12000 {
            let x = i as f32 * 1e-3; // dense grid over [-12, 12]
            worst = worst.max((fast_tanh(x) - x.tanh()).abs());
            worst = worst.max((fast_sigmoid(x) - crate::layers::activation::sigmoid(x)).abs());
        }
        assert!(worst < 1e-4, "gate approximation error {worst} too large");
        // Saturation and symmetry edges.
        assert_eq!(fast_tanh(0.0), 0.0);
        assert_eq!(fast_tanh(100.0), -fast_tanh(-100.0));
        assert!(fast_tanh(100.0) <= 1.0 && fast_tanh(100.0) > 0.9998);
    }

    #[test]
    fn rne_requantization_is_pinned() {
        // Ties go to even; clamped symmetric at ±127.
        assert_eq!(quantize_rne(2.5, 1.0), 2);
        assert_eq!(quantize_rne(3.5, 1.0), 4);
        assert_eq!(quantize_rne(-2.5, 1.0), -2);
        assert_eq!(quantize_rne(-0.5, 1.0), 0);
        assert_eq!(quantize_rne(1.5, 1.0), 2);
        assert_eq!(quantize_rne(200.0, 1.0), 127);
        assert_eq!(quantize_rne(-200.0, 1.0), -127);
        assert_eq!(quantize_rne(f32::NAN, 1.0), 0);
    }

    #[test]
    fn per_row_scales_cover_channels_independently() {
        let w = Mat::from_rows(&[&[1.0, 100.0], &[-2.0, 50.0]]);
        let q = QuantizedMat::from_columns(&w);
        assert_eq!(q.rows(), 2);
        assert_eq!(q.cols(), 2);
        // Rows are stored at the K_ALIGN stride with zero padding.
        assert_eq!(q.stride(), K_ALIGN);
        assert_eq!(q.data().len(), 2 * K_ALIGN);
        assert!(q.data()[2..K_ALIGN].iter().all(|&v| v == 0));
        // Channel 0 max_abs 2, channel 1 max_abs 100.
        assert_eq!(q.scales()[0], 2.0 / 127.0);
        assert_eq!(q.scales()[1], 100.0 / 127.0);
        // Max-magnitude entries hit ±127 exactly.
        assert_eq!(q.data()[1], -127); // w[(1,0)] = -2
        assert_eq!(q.data()[q.stride()], 127); // w[(0,1)] = 100
    }

    #[test]
    fn zero_rows_quantize_with_unit_scale() {
        let w = Mat::zeros(3, 2);
        let q = QuantizedMat::from_columns(&w);
        assert_eq!(q.scales(), &[1.0, 1.0]);
        assert!(q.data().iter().all(|&v| v == 0));
    }

    fn conv_spec() -> NetworkSpec {
        NetworkSpec::new(vec![
            LayerSpec::Conv1d {
                in_channels: 3,
                out_channels: 8,
                kernel: 3,
                padding: Padding::Same,
            },
            LayerSpec::Relu,
            LayerSpec::Conv1d {
                in_channels: 8,
                out_channels: 8,
                kernel: 3,
                padding: Padding::Same,
            },
            LayerSpec::Relu,
            LayerSpec::GlobalMaxPool,
            LayerSpec::Dense { in_dim: 8, out_dim: 6 },
            LayerSpec::Relu,
            LayerSpec::Dense { in_dim: 6, out_dim: 2 },
        ])
    }

    fn lstm_spec() -> NetworkSpec {
        NetworkSpec::new(vec![
            LayerSpec::Lstm { in_dim: 3, hidden: 8, return_sequences: true },
            LayerSpec::Lstm { in_dim: 8, hidden: 5, return_sequences: false },
            LayerSpec::Dense { in_dim: 5, out_dim: 4 },
            LayerSpec::Relu,
            LayerSpec::Dense { in_dim: 4, out_dim: 3 },
        ])
    }

    #[test]
    fn quantized_outputs_track_f32_closely() {
        for (spec, seed) in [(conv_spec(), 3u64), (lstm_spec(), 7u64)] {
            let mut net = Network::new(spec, seed);
            let calib = calib_windows(9, 3, 6);
            let qnet = QuantizedNetwork::quantize(&mut net, &calib).unwrap();
            let mut scratch = net.make_scratch();
            let mut qscratch = qnet.make_scratch();
            let mut want = Mat::zeros(0, 0);
            let mut got = Mat::zeros(0, 0);
            for x in &calib {
                net.predict_scratch(x, &mut want, &mut scratch);
                qnet.predict_scratch(x, &mut got, &mut qscratch);
                assert_eq!(want.shape(), got.shape());
                for (w, g) in want.as_slice().iter().zip(got.as_slice()) {
                    // Untrained random nets: just pin that quantization is a
                    // perturbation, not a rewrite. The trained-accuracy
                    // tolerance lives in the parity gate.
                    assert!((w - g).abs() < 0.2, "f32 {w} vs int8 {g}");
                }
            }
        }
    }

    #[test]
    fn batched_quantized_inference_is_bit_exact_per_sequence() {
        for (spec, seed) in [(conv_spec(), 11u64), (lstm_spec(), 13u64)] {
            let mut net = Network::new(spec, seed);
            let t = 9usize;
            let calib = calib_windows(t, 3, 4);
            let qnet = QuantizedNetwork::quantize(&mut net, &calib).unwrap();
            let mut qscratch = qnet.make_scratch();
            let mut singles = Vec::new();
            for x in &calib {
                let mut out = Mat::zeros(0, 0);
                qnet.predict_scratch(x, &mut out, &mut qscratch);
                singles.push(out);
            }
            let mut stacked = Mat::zeros(calib.len() * t, 3);
            for (b, w) in calib.iter().enumerate() {
                stacked.copy_rows_from(w, b * t);
            }
            let mut out = Mat::zeros(0, 0);
            qnet.predict_batch_into(&stacked, calib.len(), &mut out, &mut qscratch);
            let rows_per_seq = out.rows() / calib.len();
            for (b, single) in singles.iter().enumerate() {
                for r in 0..rows_per_seq {
                    assert_eq!(single.row(r), out.row(b * rows_per_seq + r), "seq {b}, row {r}");
                }
            }
        }
    }

    #[test]
    fn quantization_requires_calibration() {
        let mut net = Network::new(conv_spec(), 1);
        assert_eq!(
            QuantizedNetwork::quantize(&mut net, &[]).err(),
            Some(QuantError::NoCalibration)
        );
    }

    #[test]
    fn unsupported_layers_are_rejected_typed() {
        let mut net = Network::new(NetworkSpec::new(vec![LayerSpec::BatchNorm { dim: 3 }]), 1);
        let calib = calib_windows(4, 3, 1);
        assert_eq!(
            QuantizedNetwork::quantize(&mut net, &calib).err(),
            Some(QuantError::Unsupported("BatchNorm"))
        );
    }
}
