//! int8×int8→i32 GEMM kernels for the quantized inference tier.
//!
//! One contraction variant covers every quantized inference product:
//! [`gemm_i8_abt`] — `C = A·Bᵀ` with `A` the quantized activations
//! `(m, k)`, `B` the quantized weights stored **pre-transposed** `(n, k)`
//! (row `j` of `B` is output channel `j`), and `C` the `(m, n)` i32
//! accumulator. Weights are laid out at quantization time so dense, LSTM
//! gate projections, and im2col convolutions all hit this single kernel.
//!
//! # Why every summation order is bit-identical here
//!
//! The f32 kernels need a hard accumulation-order contract because float
//! addition does not associate. Integer addition does, and these kernels
//! cannot overflow on the way to the final sum:
//!
//! * every term is `a·b` with `|a|, |b| ≤ 128`, so `|a·b| ≤ 16384`;
//! * a pairwise i16→i32 step (`_mm256_madd_epi16`, `vmull_s8` +
//!   `vpadalq_s16`) sums two such terms exactly — sign-extended i8 values
//!   are far inside the i16 range where those instructions are exact and
//!   saturation-free;
//! * the i32 accumulator holds at most `k` terms, and the public entry
//!   points reject `k > `[`MAX_K`], so `|Σ| ≤ k·16384 < i32::MAX`.
//!
//! Exact, associative, saturation-free arithmetic means the SIMD backends
//! are free to vectorize **along k** (pairwise reduction trees) and still
//! produce *bit-identical* output to the serial ascending-k scalar
//! reference [`naive_i8_abt`] — identical by construction, and pinned by
//! the same cross-backend property tests as the f32 layer
//! (`tests/gemm_props.rs`). There is no zero-skip: integer `0·x` is an
//! exact 0 with no NaN semantics to preserve.
//!
//! Dispatch rides the same process-wide backend request as the f32 layer
//! (`GEMM_BACKEND` / [`set_gemm_backend`](super::set_gemm_backend)):
//! [`active_gemm_i8_isa`] resolves the request against the host, and
//! [`gemm_i8_abt_with`] runs one explicit backend for race-free
//! comparisons. No packing scratch is needed — the pre-transposed weight
//! rows are already k-contiguous — so the kernels are allocation-free
//! unconditionally, not just after warm-up.

use super::GemmIsa;

/// Rows per register block in the scalar backend (A rows advanced
/// together, reusing each loaded B row).
pub const I8_MR: usize = 4;

/// Preferred k-alignment for operand rows: padding both operands' rows to
/// a multiple of this (with exact zeros) lets the SIMD backends run pure
/// vector k-loops with no scalar tail. Zero terms contribute exactly 0 to
/// an integer dot product, so padded and unpadded calls are bit-identical;
/// the quantized layers ([`crate::quant`]) stage their operands at this
/// stride.
pub const K_ALIGN: usize = 16;

/// Largest `k` the i32 accumulator provably cannot saturate for:
/// `i32::MAX / 128²`. Every shape the pipeline multiplies is hundreds at
/// most; the public entry points assert this bound so saturation-freedom
/// is a checked contract, not an assumption.
pub const MAX_K: usize = (i32::MAX / (128 * 128)) as usize;

/// Reference `C = A·Bᵀ`: `a` is `(m, k)`, `b` is `(n, k)` (pre-transposed
/// weights), `out` is `(m, n)`, all row-major. Each element is one serial
/// ascending-k dot product in i32. Overwrites `out`.
///
/// # Panics
///
/// Panics if a slice length does not match its dimensions or `k` exceeds
/// [`MAX_K`].
pub fn naive_i8_abt(m: usize, k: usize, n: usize, a: &[i8], b: &[i8], out: &mut [i32]) {
    check_dims_i8(m, k, n, a.len(), b.len(), out.len());
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0i32;
            for (&av, &bv) in a_row.iter().zip(b_row.iter()) {
                acc += av as i32 * bv as i32;
            }
            out[i * n + j] = acc;
        }
    }
}

/// `C = A·Bᵀ` on the active backend (see [`naive_i8_abt`] for the
/// layout). Bit-identical to the reference on every backend — integer
/// arithmetic makes that exact by construction (module docs).
///
/// # Panics
///
/// Panics if a slice length does not match its dimensions or `k` exceeds
/// [`MAX_K`].
// lint: hot-path
pub fn gemm_i8_abt(m: usize, k: usize, n: usize, a: &[i8], b: &[i8], out: &mut [i32]) {
    check_dims_i8(m, k, n, a.len(), b.len(), out.len());
    run(active_gemm_i8_isa(), m, k, n, a, b, out);
}

/// [`gemm_i8_abt`] on one explicit backend, ignoring the global dispatch —
/// how tests and benches compare backends without racing on process state.
///
/// # Panics
///
/// Panics on dimension mismatch, `k > `[`MAX_K`], or if `isa` is
/// unavailable on this host.
// lint: hot-path
pub fn gemm_i8_abt_with(
    isa: GemmIsa,
    m: usize,
    k: usize,
    n: usize,
    a: &[i8],
    b: &[i8],
    out: &mut [i32],
) {
    check_dims_i8(m, k, n, a.len(), b.len(), out.len());
    super::assert_isa_available(isa);
    run(isa, m, k, n, a, b, out);
}

/// The ISA the int8 kernels resolve to under the current backend request.
///
/// The int8 microkernels require exactly the same ISA tier as the f32 ones
/// (AVX2 on x86_64, NEON on aarch64), so today this coincides with
/// [`active_gemm_isa`](super::active_gemm_isa) — but callers and the
/// [`gemm_backend_label`](super::gemm_backend_label) header treat the two
/// dtypes as separately resolved so a future ISA split (e.g. VNNI-only
/// int8) stays a local change.
// lint: hot-path
pub fn active_gemm_i8_isa() -> GemmIsa {
    super::active_gemm_isa()
}

/// Runs the resolved backend.
///
/// # Panics
///
/// Panics if `isa` is not compiled into this binary (wrong architecture).
// lint: hot-path
fn run(isa: GemmIsa, m: usize, k: usize, n: usize, a: &[i8], b: &[i8], out: &mut [i32]) {
    match isa {
        GemmIsa::Scalar => scalar_i8_abt(m, k, n, a, b, out),
        #[cfg(target_arch = "x86_64")]
        GemmIsa::Avx2 => {
            // SAFETY: this arm is only reachable through a dispatch / ISA
            // assertion that verified `is_x86_feature_detected!("avx2")`.
            unsafe { avx2::gemm_abt(m, k, n, a, b, out) }
        }
        #[cfg(target_arch = "aarch64")]
        GemmIsa::Neon => {
            // SAFETY: reachable only after runtime NEON detection.
            unsafe { neon::gemm_abt(m, k, n, a, b, out) }
        }
        #[allow(unreachable_patterns)] // reachable only for foreign-arch ISAs
        // lint: allow(panic, reason = "foreign-arch ISA arm; dispatch only selects backends the detector verified on this CPU")
        other => panic!("int8 GEMM backend {other:?} is not available on this architecture"),
    }
}

/// Scalar `C = A·Bᵀ`: the reference loop with [`I8_MR`]-row blocking so
/// each loaded B row is reused across four output rows. Identical output
/// to [`naive_i8_abt`] — exact integer sums in any order (module docs).
// lint: hot-path
fn scalar_i8_abt(m: usize, k: usize, n: usize, a: &[i8], b: &[i8], out: &mut [i32]) {
    let mut i0 = 0;
    while i0 + I8_MR <= m {
        for j in 0..n {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = [0i32; I8_MR];
            for (kk, &bv) in b_row.iter().enumerate() {
                let bv = bv as i32;
                for (r, slot) in acc.iter_mut().enumerate() {
                    *slot += a[(i0 + r) * k + kk] as i32 * bv;
                }
            }
            for (r, &slot) in acc.iter().enumerate() {
                out[(i0 + r) * n + j] = slot;
            }
        }
        i0 += I8_MR;
    }
    for i in i0..m {
        let a_row = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0i32;
            for (&av, &bv) in a_row.iter().zip(b_row.iter()) {
                acc += av as i32 * bv as i32;
            }
            out[i * n + j] = acc;
        }
    }
}

#[track_caller]
// lint: hot-path
fn check_dims_i8(m: usize, k: usize, n: usize, a_len: usize, b_len: usize, out_len: usize) {
    assert_eq!(a_len, m * k, "gemm_i8: A length {a_len} != {m}x{k}");
    assert_eq!(b_len, n * k, "gemm_i8: B length {b_len} != {n}x{k}");
    assert_eq!(out_len, m * n, "gemm_i8: C length {out_len} != {m}x{n}");
    assert!(k <= MAX_K, "gemm_i8: k={k} exceeds the saturation-free bound {MAX_K}");
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! AVX2 int8 microkernels, vectorized **along k**.
    //!
    //! Per 16 k-elements: sign-extend A and B bytes to i16
    //! (`_mm256_cvtepi8_epi16`), multiply-and-pairwise-add to eight i32
    //! partial sums (`_mm256_madd_epi16` — exact for sign-extended i8
    //! inputs, see the module docs' saturation argument), and accumulate
    //! with `_mm256_add_epi32`. Integer associativity makes every reduction
    //! tree below bit-identical to the serial reference.
    //!
    //! The pipeline's contractions have **small k** (tens), so the
    //! per-output horizontal reduction — not the multiply loop — is the
    //! cost that matters. The main loop therefore computes [`JB`] = 8
    //! adjacent outputs per A row at once and folds their eight
    //! accumulators through a single `_mm256_hadd_epi32` tree, amortizing
    //! the reduction to ~¾ of a vector op per output instead of a
    //! store-and-sum per output. Leftover `n % 8` outputs reduce serially;
    //! the `k % 16` tail runs the scalar loop (the quantized layers pad k
    //! to [`K_ALIGN`](super::K_ALIGN) so it is usually empty).

    use core::arch::x86_64::{
        __m256i, _mm256_add_epi32, _mm256_cvtepi8_epi16, _mm256_hadd_epi32, _mm256_madd_epi16,
        _mm256_permute2x128_si256, _mm256_setzero_si256, _mm256_storeu_si256, _mm_loadu_si128,
    };

    /// i8 elements consumed per vector step.
    const STEP: usize = 16;

    /// Adjacent outputs (B rows) whose accumulators fold through one
    /// horizontal-add tree.
    const JB: usize = 8;

    /// Loads 16 i8 values starting at `row[kk]` sign-extended to 16×i16.
    ///
    /// # Safety
    ///
    /// AVX2 must be available and `row[kk..kk + 16]` must be in bounds.
    #[target_feature(enable = "avx2")]
    unsafe fn load16_i16(row: &[i8], kk: usize) -> __m256i {
        debug_assert!(kk + STEP <= row.len());
        // SAFETY: the caller guarantees 16 readable bytes at `row[kk]`.
        let bytes = unsafe { _mm_loadu_si128(row.as_ptr().add(kk).cast()) };
        _mm256_cvtepi8_epi16(bytes)
    }

    /// Serially reduces the eight i32 lanes of `v` (exact integer sums, so
    /// the reduction order is immaterial to the result).
    #[target_feature(enable = "avx2")]
    fn hsum_epi32(v: __m256i) -> i32 {
        let mut lanes = [0i32; 8];
        // SAFETY: `lanes` is 8 i32 (32 bytes) on the stack.
        unsafe { _mm256_storeu_si256(lanes.as_mut_ptr().cast(), v) };
        // lint: allow(determinism, reason = "i32 horizontal sum -- integer addition is exact and order-independent")
        lanes.iter().sum()
    }

    /// Folds eight accumulators into one vector whose lane `r` is the full
    /// lane-sum of `acc[r]` — three `hadd` levels plus a 128-bit half swap.
    /// Every op is an exact i32 add, so this equals eight serial
    /// [`hsum_epi32`] calls bit for bit.
    #[target_feature(enable = "avx2")]
    fn hsum8_epi32(acc: [__m256i; JB]) -> __m256i {
        let h01 = _mm256_hadd_epi32(acc[0], acc[1]);
        let h23 = _mm256_hadd_epi32(acc[2], acc[3]);
        let h45 = _mm256_hadd_epi32(acc[4], acc[5]);
        let h67 = _mm256_hadd_epi32(acc[6], acc[7]);
        // `hadd` interleaves its operands per 128-bit half, so after two
        // levels lane r of each half holds acc[r]'s half-sums:
        //   q03 = [a0l a1l a2l a3l | a0h a1h a2h a3h], q47 likewise.
        let q03 = _mm256_hadd_epi32(h01, h23);
        let q47 = _mm256_hadd_epi32(h45, h67);
        let lo = _mm256_permute2x128_si256(q03, q47, 0x20);
        let hi = _mm256_permute2x128_si256(q03, q47, 0x31);
        _mm256_add_epi32(lo, hi)
    }

    /// AVX2 `C = A·Bᵀ` over i8 inputs: per A row, [`JB`] adjacent outputs
    /// accumulate together and share one horizontal-add tree.
    ///
    /// # Safety
    ///
    /// AVX2 must be available at runtime; dimension checks are the public
    /// wrappers' job.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn gemm_abt(
        m: usize,
        k: usize,
        n: usize,
        a: &[i8],
        b: &[i8],
        out: &mut [i32],
    ) {
        let kb = k - k % STEP;
        let nb = n - n % JB;
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let mut j = 0;
            while j < nb {
                let mut acc = [_mm256_setzero_si256(); JB];
                for kk in (0..kb).step_by(STEP) {
                    // SAFETY: `kk + 16 <= kb <= k`, the row length.
                    let av = unsafe { load16_i16(a_row, kk) };
                    for (r, slot) in acc.iter_mut().enumerate() {
                        // SAFETY: same in-bounds argument for B row `j + r`.
                        let bv = unsafe { load16_i16(&b[(j + r) * k..(j + r + 1) * k], kk) };
                        *slot = _mm256_add_epi32(*slot, _mm256_madd_epi16(av, bv));
                    }
                }
                let mut sums = [0i32; JB];
                // SAFETY: `sums` is 8 i32 (32 bytes) on the stack.
                unsafe { _mm256_storeu_si256(sums.as_mut_ptr().cast(), hsum8_epi32(acc)) };
                for (r, sum) in sums.iter_mut().enumerate() {
                    for kk in kb..k {
                        *sum += a_row[kk] as i32 * b[(j + r) * k + kk] as i32;
                    }
                }
                out[i * n + j..i * n + j + JB].copy_from_slice(&sums);
                j += JB;
            }
            for j in nb..n {
                let b_row = &b[j * k..(j + 1) * k];
                let mut acc = _mm256_setzero_si256();
                for kk in (0..kb).step_by(STEP) {
                    // SAFETY: `kk + 16 <= kb <= k`, the row length.
                    let (av, bv) = unsafe { (load16_i16(a_row, kk), load16_i16(b_row, kk)) };
                    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(av, bv));
                }
                let mut sum = hsum_epi32(acc);
                for kk in kb..k {
                    sum += a_row[kk] as i32 * b_row[kk] as i32;
                }
                out[i * n + j] = sum;
            }
        }
    }
}

#[cfg(target_arch = "aarch64")]
mod neon {
    //! NEON int8 microkernels, vectorized **along k**.
    //!
    //! Per 8 k-elements: widening multiply i8×i8→i16 (`vmull_s8`, exact for
    //! the full i8 range) and pairwise add-accumulate into four i32 lanes
    //! (`vpadalq_s16`). As in the AVX2 backend, the pipeline's small-k
    //! shapes make the per-output horizontal reduction the dominant cost,
    //! so the main loop folds [`JB`] = 4 adjacent outputs' accumulators
    //! through a two-level `vpaddq_s32` tree and stores four i32 results at
    //! once. Leftover outputs reduce with `vaddvq_s32`; the `k % 8` tail
    //! runs the scalar loop — everything is an exact integer add, so the
    //! result is bit-identical to the serial reference (module docs).

    use core::arch::aarch64::{
        vaddvq_s32, vdupq_n_s32, vld1_s8, vmull_s8, vpadalq_s16, vpaddq_s32, vst1q_s32,
    };

    /// i8 elements consumed per vector step.
    const STEP: usize = 8;

    /// Adjacent outputs (B rows) whose accumulators fold through one
    /// pairwise-add tree.
    const JB: usize = 4;

    /// NEON `C = A·Bᵀ` over i8 inputs: per A row, [`JB`] adjacent outputs
    /// accumulate together and share one pairwise-add tree.
    ///
    /// # Safety
    ///
    /// NEON must be available at runtime; dimension checks are the public
    /// wrappers' job.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn gemm_abt(
        m: usize,
        k: usize,
        n: usize,
        a: &[i8],
        b: &[i8],
        out: &mut [i32],
    ) {
        let kb = k - k % STEP;
        let nb = n - n % JB;
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let mut j = 0;
            while j < nb {
                let mut acc = [vdupq_n_s32(0); JB];
                for kk in (0..kb).step_by(STEP) {
                    // SAFETY: `kk + 8 <= kb <= k`, the row length.
                    let av = unsafe { vld1_s8(a_row.as_ptr().add(kk)) };
                    for (r, slot) in acc.iter_mut().enumerate() {
                        // SAFETY: same in-bounds argument for B row `j + r`.
                        let bv = unsafe { vld1_s8(b.as_ptr().add((j + r) * k + kk)) };
                        *slot = vpadalq_s16(*slot, vmull_s8(av, bv));
                    }
                }
                // `vpaddq` concatenates pairwise sums of both operands, so
                // two levels leave lane r holding acc[r]'s full lane-sum —
                // exact i32 adds, bit-equal to four serial `vaddvq_s32`.
                let p01 = vpaddq_s32(acc[0], acc[1]);
                let p23 = vpaddq_s32(acc[2], acc[3]);
                let mut sums = [0i32; JB];
                // SAFETY: `sums` is 4 i32 (16 bytes) on the stack.
                unsafe { vst1q_s32(sums.as_mut_ptr(), vpaddq_s32(p01, p23)) };
                for (r, sum) in sums.iter_mut().enumerate() {
                    for kk in kb..k {
                        *sum += a_row[kk] as i32 * b[(j + r) * k + kk] as i32;
                    }
                }
                out[i * n + j..i * n + j + JB].copy_from_slice(&sums);
                j += JB;
            }
            for j in nb..n {
                let b_row = &b[j * k..(j + 1) * k];
                let mut acc = vdupq_n_s32(0);
                for kk in (0..kb).step_by(STEP) {
                    // SAFETY: `kk + 8 <= kb <= k`, the row length.
                    let (av, bv) = unsafe {
                        (vld1_s8(a_row.as_ptr().add(kk)), vld1_s8(b_row.as_ptr().add(kk)))
                    };
                    acc = vpadalq_s16(acc, vmull_s8(av, bv));
                }
                let mut sum = vaddvq_s32(acc);
                for kk in kb..k {
                    sum += a_row[kk] as i32 * b_row[kk] as i32;
                }
                out[i * n + j] = sum;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic i8 fill covering the full range including -128.
    fn fill_i8(len: usize, seed: u64) -> Vec<i8> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state & 0xFF) as u8 as i8
            })
            .collect()
    }

    #[test]
    fn scalar_matches_naive_over_shapes() {
        for &(m, k, n) in &[(1, 1, 1), (3, 7, 5), (4, 16, 8), (5, 17, 3), (8, 33, 9), (2, 0, 4)] {
            let a = fill_i8(m * k, 11 + m as u64);
            let b = fill_i8(n * k, 23 + k as u64);
            let mut want = vec![0i32; m * n];
            let mut got = vec![0i32; m * n];
            naive_i8_abt(m, k, n, &a, &b, &mut want);
            scalar_i8_abt(m, k, n, &a, &b, &mut got);
            assert_eq!(want, got, "shape ({m},{k},{n})");
        }
    }

    #[test]
    fn extreme_values_cannot_saturate() {
        // All-(-128) inputs maximize every term; the checked MAX_K bound is
        // what keeps the running i32 sum exact.
        let k = 1024;
        let a = vec![-128i8; k];
        let b = vec![-128i8; k];
        let mut out = [0i32];
        gemm_i8_abt(1, k, 1, &a, &b, &mut out);
        assert_eq!(out[0], 128 * 128 * k as i32);
    }

    #[test]
    #[should_panic(expected = "saturation-free bound")]
    fn oversized_k_is_rejected() {
        let k = MAX_K + 1;
        let a = vec![0i8; k];
        let b = vec![0i8; k];
        let mut out = [0i32];
        gemm_i8_abt(1, k, 1, &a, &b, &mut out);
    }
}
