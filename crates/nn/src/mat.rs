//! A minimal dense, row-major `f32` matrix used throughout the network stack.
//!
//! Sequence data flows through layers as a [`Mat`] of shape `(time, features)`;
//! plain vectors are represented as `(1, features)` matrices. The type is
//! deliberately small; every matrix product is a thin wrapper over the
//! blocked, cache-tiled kernels in [`crate::kernels`] — runtime-dispatched
//! to SIMD microkernels (AVX2/NEON) when the host supports them, and
//! bit-identical to the historical naive loops on every backend (see the
//! accumulation-order contract there).
//! The wrappers use a thread-local [`GemmScratch`] for panel packing, so
//! they stay allocation-free in steady state without threading scratch
//! through every call site; hot paths that want explicit scratch ownership
//! call `kernels::{matmul_into, matmul_transpose_into, transpose_matmul_into}`
//! directly.

use crate::kernels::{self, GemmScratch};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;

thread_local! {
    /// Packing scratch behind the `Mat` convenience wrappers; grows to a
    /// high-water mark per thread.
    static MAT_GEMM_SCRATCH: RefCell<GemmScratch> = RefCell::new(GemmScratch::default());
}

/// Runs `f` with the thread-local GEMM packing scratch.
fn with_gemm_scratch<R>(f: impl FnOnce(&mut GemmScratch) -> R) -> R {
    MAT_GEMM_SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

/// Dense row-major matrix of `f32`.
///
/// # Examples
///
/// ```
/// use nn::mat::Mat;
/// let m = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// assert_eq!(m.shape(), (2, 2));
/// assert_eq!(m[(1, 0)], 3.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Mat {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Mat::from_vec: data length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        if rows.is_empty() {
            return Self::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "Mat::from_rows: inconsistent row lengths");
            data.extend_from_slice(r);
        }
        Self { rows: rows.len(), cols, data }
    }

    /// Creates a `(1, n)` row-vector matrix.
    pub fn row_vector(v: &[f32]) -> Self {
        Self { rows: 1, cols: v.len(), data: v.to_vec() }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    // lint: hot-path
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the backing row-major storage.
    // lint: hot-path
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the backing row-major storage.
    // lint: hot-path
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the backing row-major storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Borrow row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    // lint: hot-path
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row index {r} out of bounds for {} rows", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    // lint: hot-path
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row index {r} out of bounds for {} rows", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterate over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Reshapes to `rows x cols`, reusing the existing allocation when the
    /// capacity suffices. The contents afterwards are unspecified — callers
    /// must overwrite every element (the allocation-free inference path
    /// relies on this never reallocating in steady state).
    // lint: hot-path
    pub fn resize(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Sets every element to `value` without changing the shape.
    // lint: hot-path
    pub fn fill(&mut self, value: f32) {
        self.data.fill(value);
    }

    /// Makes `self` an element-for-element copy of `src`, reusing the
    /// existing allocation when possible.
    // lint: hot-path
    pub fn copy_from(&mut self, src: &Mat) {
        self.resize(src.rows, src.cols);
        self.data.copy_from_slice(&src.data);
    }

    /// Copies every row of `src` into `self` starting at row `at` — the
    /// stacking primitive behind the batched inference path: callers build a
    /// `(batch * T, F)` matrix out of per-session `(T, F)` windows without
    /// allocating (given capacity).
    ///
    /// # Panics
    ///
    /// Panics if the widths differ or `src` does not fit at `at`.
    // lint: hot-path
    pub fn copy_rows_from(&mut self, src: &Mat, at: usize) {
        assert_eq!(self.cols, src.cols, "copy_rows_from: width mismatch");
        assert!(
            at + src.rows <= self.rows,
            "copy_rows_from: {} rows at {at} exceed {} rows",
            src.rows,
            self.rows
        );
        self.data[at * self.cols..(at + src.rows) * self.cols].copy_from_slice(&src.data);
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Mat) -> Mat {
        // The kernel resizes and fully overwrites `out`; starting empty
        // avoids a redundant zero-fill.
        let mut out = Mat::default();
        self.matmul_into(other, &mut out);
        out
    }

    /// Matrix product `self * other` written into `out` (resized as needed,
    /// no allocation when `out` has capacity). Bit-identical to
    /// [`Mat::matmul`]: the accumulation order is the same (see
    /// [`crate::kernels`] for the contract).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    pub fn matmul_into(&self, other: &Mat, out: &mut Mat) {
        with_gemm_scratch(|s| kernels::matmul_into(self, other, out, s));
    }

    /// Matrix product `self * other^T`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.cols`.
    pub fn matmul_transpose(&self, other: &Mat) -> Mat {
        let mut out = Mat::default();
        self.matmul_transpose_into(other, &mut out);
        out
    }

    /// Matrix product `self * other^T` written into `out` (resized as
    /// needed, no allocation when `out` has capacity). Bit-identical to
    /// [`Mat::matmul_transpose`].
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.cols`.
    pub fn matmul_transpose_into(&self, other: &Mat, out: &mut Mat) {
        with_gemm_scratch(|s| kernels::matmul_transpose_into(self, other, out, s));
    }

    /// Matrix product `self^T * other`.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != other.rows`.
    pub fn transpose_matmul(&self, other: &Mat) -> Mat {
        let mut out = Mat::default();
        self.transpose_matmul_into(other, &mut out);
        out
    }

    /// Matrix product `self^T * other` written into `out` (resized as
    /// needed, no allocation when `out` has capacity). Bit-identical to
    /// [`Mat::transpose_matmul`].
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != other.rows`.
    pub fn transpose_matmul_into(&self, other: &Mat, out: &mut Mat) {
        with_gemm_scratch(|s| kernels::transpose_matmul_into(self, other, out, s));
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Mat {
        let mut out = Mat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Element-wise addition. Panics if shapes differ.
    pub fn add(&self, other: &Mat) -> Mat {
        self.zip_with(other, |a, b| a + b)
    }

    /// Element-wise subtraction. Panics if shapes differ.
    pub fn sub(&self, other: &Mat) -> Mat {
        self.zip_with(other, |a, b| a - b)
    }

    /// Element-wise multiplication (Hadamard product). Panics if shapes differ.
    pub fn hadamard(&self, other: &Mat) -> Mat {
        self.zip_with(other, |a, b| a * b)
    }

    /// Element-wise combination of two equally shaped matrices.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn zip_with(&self, other: &Mat, f: impl Fn(f32, f32) -> f32) -> Mat {
        assert_eq!(self.shape(), other.shape(), "zip_with: shape mismatch");
        // lint: allow(alloc, reason = "allocating constructor-style API; the hot edge is a pointer .add() name collision, kernels never call it")
        let data = self.data.iter().zip(other.data.iter()).map(|(&a, &b)| f(a, b)).collect();
        Mat { rows: self.rows, cols: self.cols, data }
    }

    /// Returns a new matrix with `f` applied to every element.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Mat {
        // lint: allow(alloc, reason = "allocating constructor-style API; the hot edge is an Option .map() name collision, hot code never calls it")
        Mat { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Scales every element by `s`.
    pub fn scale(&self, s: f32) -> Mat {
        self.map(|x| x * s)
    }

    /// In-place `self += other * scale`. Panics if shapes differ.
    pub fn add_scaled_inplace(&mut self, other: &Mat, scale: f32) {
        assert_eq!(self.shape(), other.shape(), "add_scaled_inplace: shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b * scale;
        }
    }

    /// Adds `row` (a `(1, cols)` bias) to every row of `self` in place.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != self.cols`.
    pub fn add_row_inplace(&mut self, row: &[f32]) {
        assert_eq!(row.len(), self.cols, "add_row_inplace: width mismatch");
        for r in self.data.chunks_exact_mut(self.cols) {
            for (a, &b) in r.iter_mut().zip(row.iter()) {
                *a += b;
            }
        }
    }

    /// Sum over rows, returning a `(1, cols)` matrix.
    pub fn sum_rows(&self) -> Mat {
        let mut out = Mat::zeros(1, self.cols);
        for r in self.iter_rows() {
            for (o, &x) in out.data.iter_mut().zip(r.iter()) {
                *o += x;
            }
        }
        out
    }

    /// Mean over rows, returning a `(1, cols)` matrix. Returns zeros for an
    /// empty matrix.
    pub fn mean_rows(&self) -> Mat {
        if self.rows == 0 {
            return Mat::zeros(1, self.cols);
        }
        self.sum_rows().scale(1.0 / self.rows as f32)
    }

    /// Sum of all elements.
    // lint: hot-path
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Maximum absolute element, or 0 for an empty matrix.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0_f32, |m, &x| m.max(x.abs()))
    }

    /// Returns the sub-matrix consisting of rows `start..end`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > rows`.
    pub fn slice_rows(&self, start: usize, end: usize) -> Mat {
        assert!(start <= end && end <= self.rows, "slice_rows: bad range {start}..{end}");
        Mat {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        }
    }

    /// Vertically stacks `self` on top of `other`. Panics if widths differ.
    pub fn vstack(&self, other: &Mat) -> Mat {
        assert_eq!(self.cols, other.cols, "vstack: width mismatch");
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Mat { rows: self.rows + other.rows, cols: self.cols, data }
    }

    /// Horizontally concatenates columns of `self` and `other`.
    /// Panics if heights differ.
    pub fn hstack(&self, other: &Mat) -> Mat {
        assert_eq!(self.rows, other.rows, "hstack: height mismatch");
        let mut out = Mat::zeros(self.rows, self.cols + other.cols);
        for i in 0..self.rows {
            out.row_mut(i)[..self.cols].copy_from_slice(self.row(i));
            out.row_mut(i)[self.cols..].copy_from_slice(other.row(i));
        }
        out
    }

    /// Index of the maximum element in row `r` (first one on ties).
    ///
    /// # Panics
    ///
    /// Panics if the matrix has zero columns or `r >= rows`.
    // lint: hot-path
    pub fn argmax_row(&self, r: usize) -> usize {
        let row = self.row(r);
        assert!(!row.is_empty(), "argmax_row: empty row");
        let mut best = 0;
        for (i, &x) in row.iter().enumerate() {
            if x > row[best] {
                best = i;
            }
        }
        best
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }
}

impl std::ops::Index<(usize, usize)> for Mat {
    type Output = f32;
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Mat {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl std::fmt::Display for Mat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Mat {}x{} [", self.rows, self.cols)?;
        for r in self.iter_rows() {
            write!(f, "  [")?;
            for (i, x) in r.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{x:.4}")?;
            }
            writeln!(f, "]")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_requested_shape() {
        let m = Mat::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_vec_roundtrips() {
        let m = Mat::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(m.row(0), &[1., 2., 3.]);
        assert_eq!(m.row(1), &[4., 5., 6.]);
        assert_eq!(m.clone().into_vec(), vec![1., 2., 3., 4., 5., 6.]);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_rejects_bad_length() {
        let _ = Mat::from_vec(2, 2, vec![1.0; 5]);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Mat::from_rows(&[&[1., 2.], &[3., 4.]]);
        let b = Mat::from_rows(&[&[5., 6.], &[7., 8.]]);
        let c = a.matmul(&b);
        assert_eq!(c, Mat::from_rows(&[&[19., 22.], &[43., 50.]]));
    }

    #[test]
    fn matmul_transpose_equals_explicit_transpose() {
        let a = Mat::from_rows(&[&[1., 2., 3.], &[4., 5., 6.]]);
        let b = Mat::from_rows(&[&[7., 8., 9.], &[1., 0., -1.]]);
        assert_eq!(a.matmul_transpose(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn transpose_matmul_equals_explicit_transpose() {
        let a = Mat::from_rows(&[&[1., 2.], &[3., 4.], &[5., 6.]]);
        let b = Mat::from_rows(&[&[7., 8.], &[9., 1.], &[2., 3.]]);
        assert_eq!(a.transpose_matmul(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn elementwise_ops() {
        let a = Mat::from_rows(&[&[1., -2.]]);
        let b = Mat::from_rows(&[&[3., 4.]]);
        assert_eq!(a.add(&b), Mat::from_rows(&[&[4., 2.]]));
        assert_eq!(a.sub(&b), Mat::from_rows(&[&[-2., -6.]]));
        assert_eq!(a.hadamard(&b), Mat::from_rows(&[&[3., -8.]]));
        assert_eq!(a.scale(2.0), Mat::from_rows(&[&[2., -4.]]));
        assert_eq!(a.map(f32::abs), Mat::from_rows(&[&[1., 2.]]));
    }

    #[test]
    fn row_reductions() {
        let a = Mat::from_rows(&[&[1., 2.], &[3., 4.]]);
        assert_eq!(a.sum_rows(), Mat::from_rows(&[&[4., 6.]]));
        assert_eq!(a.mean_rows(), Mat::from_rows(&[&[2., 3.]]));
        assert_eq!(a.sum(), 10.0);
    }

    #[test]
    fn stacking_and_slicing() {
        let a = Mat::from_rows(&[&[1., 2.]]);
        let b = Mat::from_rows(&[&[3., 4.], &[5., 6.]]);
        let v = a.vstack(&b);
        assert_eq!(v.shape(), (3, 2));
        assert_eq!(v.slice_rows(1, 3), b);
        let h = a.hstack(&Mat::from_rows(&[&[9.]]));
        assert_eq!(h, Mat::from_rows(&[&[1., 2., 9.]]));
    }

    #[test]
    fn argmax_row_picks_first_max() {
        let a = Mat::from_rows(&[&[1., 5., 5., 2.]]);
        assert_eq!(a.argmax_row(0), 1);
    }

    #[test]
    fn add_row_inplace_broadcasts() {
        let mut a = Mat::from_rows(&[&[1., 2.], &[3., 4.]]);
        a.add_row_inplace(&[10., 20.]);
        assert_eq!(a, Mat::from_rows(&[&[11., 22.], &[13., 24.]]));
    }

    #[test]
    fn display_is_nonempty() {
        let a = Mat::zeros(1, 1);
        assert!(!format!("{a}").is_empty());
        assert!(!format!("{a:?}").is_empty());
    }
}
