//! Mini-batch training loop with early stopping, matching the paper's
//! recipe: Adam + step-decay + early stopping on a held-out validation set.

use crate::layers::Mode;
use crate::loss::cross_entropy_weighted;
use crate::mat::Mat;
use crate::network::{Network, NetworkScratch};
use crate::optim::{Adam, StepDecay};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A labeled training sample: a `(T, F)` window and its class index.
pub type Sample = (Mat, usize);

/// Training-loop configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Maximum number of epochs.
    pub epochs: usize,
    /// Mini-batch size (gradients are averaged over the batch).
    pub batch_size: usize,
    /// Learning-rate schedule.
    pub schedule: StepDecay,
    /// Early stopping: stop after this many epochs without validation
    /// improvement. `None` disables early stopping.
    pub patience: Option<usize>,
    /// Per-class loss weights (e.g. inverse-frequency for imbalanced data).
    pub class_weights: Option<Vec<f32>>,
    /// Global gradient-norm clip; `None` disables clipping.
    pub grad_clip: Option<f32>,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 30,
            batch_size: 16,
            schedule: StepDecay::new(1e-3, 0.5, 10),
            patience: Some(5),
            class_weights: None,
            grad_clip: Some(5.0),
            seed: 0,
        }
    }
}

impl TrainConfig {
    /// The paper's low-learning-rate setup (§III): Adam at 1e-4 with
    /// step-decay.
    pub fn paper_default() -> Self {
        Self { schedule: StepDecay::new(1e-4, 0.5, 10), ..Self::default() }
    }
}

/// Per-epoch statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochStats {
    /// 0-based epoch index.
    pub epoch: usize,
    /// Mean training loss.
    pub train_loss: f32,
    /// Mean validation loss (or train loss if no validation set).
    pub val_loss: f32,
    /// Validation accuracy.
    pub val_accuracy: f32,
    /// Learning rate used this epoch.
    pub lr: f32,
}

/// Result of a training run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainReport {
    /// Number of epochs actually run (may be < `epochs` with early stopping).
    pub epochs_run: usize,
    /// Best validation loss seen.
    pub best_val_loss: f32,
    /// Epoch index of the best validation loss.
    pub best_epoch: usize,
    /// Per-epoch history.
    pub history: Vec<EpochStats>,
}

/// Trains `net` on `train`, early-stopping on `val`.
///
/// On return the network holds the weights of the best validation epoch
/// (when early stopping is enabled and a validation set is given).
///
/// # Panics
///
/// Panics if `train` is empty or `batch_size == 0`.
pub fn train_classifier(
    net: &mut Network,
    train: &[Sample],
    val: &[Sample],
    cfg: &TrainConfig,
) -> TrainReport {
    assert!(!train.is_empty(), "train_classifier: empty training set");
    assert!(cfg.batch_size > 0, "train_classifier: batch_size must be positive");

    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut order: Vec<usize> = (0..train.len()).collect();
    let weights = cfg.class_weights.as_deref();

    let mut best_val = f32::INFINITY;
    let mut best_epoch = 0usize;
    let mut best_weights: Option<Vec<Mat>> = None;
    let mut since_best = 0usize;
    let mut history = Vec::with_capacity(cfg.epochs);
    let mut adam = Adam::new();
    let mut eval_scratch = net.make_scratch();

    for epoch in 0..cfg.epochs {
        let lr = cfg.schedule.lr(epoch);
        order.shuffle(&mut rng);

        let mut epoch_loss = 0.0f64;
        for batch in order.chunks(cfg.batch_size) {
            net.zero_grad();
            for &idx in batch {
                let (x, y) = &train[idx];
                let logits = net.forward(x, Mode::Train);
                let (loss, grad) = cross_entropy_weighted(&logits, *y, weights);
                epoch_loss += loss as f64;
                net.backward(&grad);
            }
            net.scale_grads(1.0 / batch.len() as f32);
            if let Some(clip) = cfg.grad_clip {
                net.clip_grad_norm(clip);
            }
            adam.step(net, lr);
        }
        let train_loss = (epoch_loss / train.len() as f64) as f32;

        let (val_loss, val_accuracy) = if val.is_empty() {
            (train_loss, f32::NAN)
        } else {
            evaluate(net, val, weights, &mut eval_scratch)
        };
        history.push(EpochStats { epoch, train_loss, val_loss, val_accuracy, lr });

        if val_loss < best_val {
            best_val = val_loss;
            best_epoch = epoch;
            since_best = 0;
            if cfg.patience.is_some() {
                best_weights = Some(net.snapshot_weights());
            }
        } else {
            since_best += 1;
            if let Some(patience) = cfg.patience {
                if since_best >= patience {
                    break;
                }
            }
        }
    }

    if let Some(w) = &best_weights {
        net.restore_weights(w);
    }
    TrainReport { epochs_run: history.len(), best_val_loss: best_val, best_epoch, history }
}

/// Evaluates `net` on `data`, returning `(mean loss, accuracy)`.
///
/// Takes the network by shared reference plus caller-owned
/// [`NetworkScratch`] — the same contract as the serving-side inference
/// paths — so evaluation can run over a network shared across threads
/// (e.g. the parallel per-gesture training workers) and allocates nothing
/// per window once the scratch is warm. Bit-identical to the historical
/// `forward(x, Mode::Eval)` loop.
pub fn evaluate(
    net: &Network,
    data: &[Sample],
    class_weights: Option<&[f32]>,
    scratch: &mut NetworkScratch,
) -> (f32, f32) {
    if data.is_empty() {
        return (f32::NAN, f32::NAN);
    }
    let mut loss = 0.0f64;
    let mut correct = 0usize;
    let mut logits = Mat::zeros(0, 0);
    for (x, y) in data {
        net.predict_scratch(x, &mut logits, scratch);
        let (l, _) = cross_entropy_weighted(&logits, *y, class_weights);
        loss += l as f64;
        if logits.argmax_row(0) == *y {
            correct += 1;
        }
    }
    ((loss / data.len() as f64) as f32, correct as f32 / data.len() as f32)
}

/// Class-probability prediction for a single window. Shared-reference +
/// caller-owned scratch, like [`evaluate`].
pub fn predict_proba(net: &Network, x: &Mat, scratch: &mut NetworkScratch) -> Vec<f32> {
    let mut logits = Mat::zeros(0, 0);
    net.predict_scratch(x, &mut logits, scratch);
    crate::loss::softmax(logits.row(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{LayerSpec, Padding};
    use crate::network::NetworkSpec;
    use rand::Rng;

    /// Synthetic two-class sequence problem: class 0 drifts up, class 1
    /// drifts down.
    fn toy_data(n: usize, seed: u64) -> Vec<Sample> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let label = i % 2;
                let slope: f32 = if label == 0 { 0.2 } else { -0.2 };
                let rows: Vec<f32> = (0..8)
                    .flat_map(|t| {
                        let v = slope * t as f32 + rng.gen_range(-0.05..0.05);
                        [v, -v]
                    })
                    .collect();
                (Mat::from_vec(8, 2, rows), label)
            })
            .collect()
    }

    #[test]
    fn lstm_classifier_learns_toy_problem() {
        let train = toy_data(40, 1);
        let val = toy_data(16, 2);
        let spec = NetworkSpec::new(vec![
            LayerSpec::Lstm { in_dim: 2, hidden: 8, return_sequences: false },
            LayerSpec::Dense { in_dim: 8, out_dim: 2 },
        ]);
        let mut net = Network::new(spec, 3);
        let cfg = TrainConfig {
            epochs: 30,
            batch_size: 8,
            schedule: StepDecay::constant(0.01),
            patience: Some(10),
            ..TrainConfig::default()
        };
        let report = train_classifier(&mut net, &train, &val, &cfg);
        let (_, acc) = evaluate(&net, &val, None, &mut net.make_scratch());
        assert!(acc > 0.9, "validation accuracy {acc} too low; report {report:?}");
    }

    #[test]
    fn conv_classifier_learns_toy_problem() {
        let train = toy_data(40, 5);
        let val = toy_data(16, 6);
        let spec = NetworkSpec::new(vec![
            LayerSpec::Conv1d {
                in_channels: 2,
                out_channels: 8,
                kernel: 3,
                padding: Padding::Same,
            },
            LayerSpec::Relu,
            LayerSpec::GlobalMaxPool,
            LayerSpec::Dense { in_dim: 8, out_dim: 2 },
        ]);
        let mut net = Network::new(spec, 3);
        let cfg = TrainConfig {
            epochs: 30,
            batch_size: 8,
            schedule: StepDecay::constant(0.01),
            patience: Some(10),
            ..TrainConfig::default()
        };
        train_classifier(&mut net, &train, &val, &cfg);
        let (_, acc) = evaluate(&net, &val, None, &mut net.make_scratch());
        assert!(acc > 0.9, "validation accuracy {acc} too low");
    }

    #[test]
    fn early_stopping_restores_best_weights() {
        let train = toy_data(20, 7);
        let val = toy_data(8, 8);
        let spec =
            NetworkSpec::new(vec![LayerSpec::Flatten, LayerSpec::Dense { in_dim: 16, out_dim: 2 }]);
        let mut net = Network::new(spec, 1);
        let cfg = TrainConfig {
            epochs: 50,
            batch_size: 4,
            schedule: StepDecay::constant(0.05),
            patience: Some(3),
            ..TrainConfig::default()
        };
        let report = train_classifier(&mut net, &train, &val, &cfg);
        // The net now holds best-epoch weights: its val loss matches the report.
        let (val_loss, _) = evaluate(&net, &val, None, &mut net.make_scratch());
        assert!(
            (val_loss - report.best_val_loss).abs() < 1e-4,
            "restored val loss {val_loss} != best {}",
            report.best_val_loss
        );
    }

    #[test]
    fn training_is_deterministic_given_seed() {
        let train = toy_data(16, 9);
        let spec =
            NetworkSpec::new(vec![LayerSpec::Flatten, LayerSpec::Dense { in_dim: 16, out_dim: 2 }]);
        let cfg = TrainConfig { epochs: 5, patience: None, ..TrainConfig::default() };
        let mut a = Network::new(spec.clone(), 4);
        let mut b = Network::new(spec, 4);
        let ra = train_classifier(&mut a, &train, &[], &cfg);
        let rb = train_classifier(&mut b, &train, &[], &cfg);
        assert_eq!(ra.history.last().unwrap().train_loss, rb.history.last().unwrap().train_loss);
        assert_eq!(a.snapshot_weights(), b.snapshot_weights());
    }

    #[test]
    fn predict_proba_sums_to_one() {
        let spec =
            NetworkSpec::new(vec![LayerSpec::Flatten, LayerSpec::Dense { in_dim: 16, out_dim: 3 }]);
        let net = Network::new(spec, 1);
        let p = predict_proba(&net, &Mat::zeros(8, 2), &mut net.make_scratch());
        assert_eq!(p.len(), 3);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn rejects_empty_training_set() {
        let spec = NetworkSpec::new(vec![LayerSpec::Dense { in_dim: 2, out_dim: 2 }]);
        let mut net = Network::new(spec, 1);
        let _ = train_classifier(&mut net, &[], &[], &TrainConfig::default());
    }
}
