//! Loss functions: softmax cross-entropy (optionally class-weighted).
//!
//! The gesture classifier is a multi-class softmax cross-entropy problem; the
//! per-gesture error classifiers are binary, which we treat as 2-class
//! softmax (mathematically equivalent to a sigmoid + BCE head). Class weights
//! compensate for the heavy imbalance of erroneous vs. normal gestures
//! (Table VII: 4–79% error rates per gesture).

use crate::mat::Mat;

/// Numerically stable softmax of a logit row.
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0; logits.len()];
    softmax_into(logits, &mut out);
    out
}

/// Allocation-free [`softmax`]: writes the distribution into `out`.
/// Bit-identical to `softmax` (same max-shift and normalization order).
///
/// # Panics
///
/// Panics if `out.len() != logits.len()`.
// lint: hot-path
pub fn softmax_into(logits: &[f32], out: &mut [f32]) {
    assert_eq!(logits.len(), out.len(), "softmax_into: length mismatch");
    let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    for (o, &x) in out.iter_mut().zip(logits.iter()) {
        *o = (x - max).exp();
    }
    let sum: f32 = out.iter().sum();
    for o in out.iter_mut() {
        *o /= sum;
    }
}

/// Softmax cross-entropy loss for a `(1, C)` logit matrix and a target class.
///
/// Returns `(loss, grad)` where `grad` is d loss / d logits, ready to feed to
/// [`crate::network::Network::backward`].
///
/// # Panics
///
/// Panics if `logits` is not a single row or `target` is out of range.
pub fn cross_entropy(logits: &Mat, target: usize) -> (f32, Mat) {
    cross_entropy_weighted(logits, target, None)
}

/// Class-weighted softmax cross-entropy.
///
/// If `class_weights` is provided, both the loss and the gradient are scaled
/// by `class_weights[target]`.
///
/// # Panics
///
/// Panics if `logits` is not a single row, `target` is out of range, or the
/// weight vector length mismatches the class count.
pub fn cross_entropy_weighted(
    logits: &Mat,
    target: usize,
    class_weights: Option<&[f32]>,
) -> (f32, Mat) {
    assert_eq!(logits.rows(), 1, "cross_entropy expects a (1, C) logit row");
    let c = logits.cols();
    assert!(target < c, "target class {target} out of range for {c} classes");
    if let Some(w) = class_weights {
        assert_eq!(w.len(), c, "class_weights length mismatch");
    }
    let probs = softmax(logits.row(0));
    let weight = class_weights.map_or(1.0, |w| w[target]);
    let loss = -(probs[target].max(1e-12)).ln() * weight;
    let mut grad = Mat::zeros(1, c);
    for (k, &p) in probs.iter().enumerate() {
        grad[(0, k)] = (p - if k == target { 1.0 } else { 0.0 }) * weight;
    }
    (loss, grad)
}

/// Inverse-frequency class weights, normalized so their mean is 1.
///
/// Classes absent from `labels` receive weight 0 (they cannot be sampled).
///
/// # Panics
///
/// Panics if `num_classes == 0`.
pub fn inverse_frequency_weights(labels: &[usize], num_classes: usize) -> Vec<f32> {
    assert!(num_classes > 0, "num_classes must be positive");
    let mut counts = vec![0usize; num_classes];
    for &l in labels {
        assert!(l < num_classes, "label {l} out of range");
        counts[l] += 1;
    }
    let total = labels.len() as f32;
    let mut weights: Vec<f32> = counts
        .iter()
        .map(|&c| if c == 0 { 0.0 } else { total / (num_classes as f32 * c as f32) })
        .collect();
    let present: Vec<f32> = weights.iter().cloned().filter(|&w| w > 0.0).collect();
    if !present.is_empty() {
        let mean = present.iter().sum::<f32>() / present.len() as f32;
        if mean > 0.0 {
            for w in &mut weights {
                *w /= mean;
            }
        }
    }
    weights
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let p = softmax(&[1000.0, 1000.0]);
        assert!((p[0] - 0.5).abs() < 1e-6);
        assert!(p.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn cross_entropy_gradient_matches_softmax_minus_onehot() {
        let logits = Mat::from_rows(&[&[0.5, -0.3, 1.2]]);
        let (_, grad) = cross_entropy(&logits, 2);
        let p = softmax(logits.row(0));
        assert!((grad[(0, 0)] - p[0]).abs() < 1e-6);
        assert!((grad[(0, 2)] - (p[2] - 1.0)).abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_numerical_gradient() {
        let logits = Mat::from_rows(&[&[0.5, -0.3, 1.2]]);
        let (_, grad) = cross_entropy(&logits, 1);
        let eps = 1e-3;
        for k in 0..3 {
            let mut lp = logits.clone();
            lp[(0, k)] += eps;
            let mut lm = logits.clone();
            lm[(0, k)] -= eps;
            let numeric = (cross_entropy(&lp, 1).0 - cross_entropy(&lm, 1).0) / (2.0 * eps);
            assert!((grad[(0, k)] - numeric).abs() < 1e-3);
        }
    }

    #[test]
    fn weighted_loss_scales() {
        let logits = Mat::from_rows(&[&[0.1, 0.9]]);
        let (l1, g1) = cross_entropy_weighted(&logits, 0, None);
        let (l2, g2) = cross_entropy_weighted(&logits, 0, Some(&[2.0, 1.0]));
        assert!((l2 - 2.0 * l1).abs() < 1e-6);
        assert!((g2[(0, 0)] - 2.0 * g1[(0, 0)]).abs() < 1e-6);
    }

    #[test]
    fn inverse_frequency_weights_balance() {
        // 3:1 imbalance -> minority class weighted 3x majority.
        let labels = [0, 0, 0, 1];
        let w = inverse_frequency_weights(&labels, 2);
        assert!((w[1] / w[0] - 3.0).abs() < 1e-5);
        let mean = (w[0] + w[1]) / 2.0;
        assert!((mean - 1.0).abs() < 1e-5);
    }

    #[test]
    fn missing_class_gets_zero_weight() {
        let labels = [0, 0];
        let w = inverse_frequency_weights(&labels, 3);
        assert_eq!(w[1], 0.0);
        assert_eq!(w[2], 0.0);
        assert!(w[0] > 0.0);
    }
}
