//! Pooling layers over the time axis.

use crate::layers::{LayerScratch, Mode, SeqLayer};
use crate::mat::Mat;
use crate::param::Param;

/// Max pooling with kernel size = stride (non-overlapping windows). A
/// trailing partial window is pooled over its available steps.
#[derive(Debug)]
pub struct MaxPool1d {
    kernel: usize,
    argmax: Option<Vec<usize>>, // flat (out_row, col) -> source row
    in_shape: (usize, usize),
}

impl MaxPool1d {
    /// Creates a max-pool layer.
    ///
    /// # Panics
    ///
    /// Panics if `kernel == 0`.
    pub fn new(kernel: usize) -> Self {
        assert!(kernel > 0, "pool kernel must be positive");
        Self { kernel, argmax: None, in_shape: (0, 0) }
    }

    /// Kernel (= stride) size.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Output length for `t` input steps.
    pub fn output_len(&self, t: usize) -> usize {
        t.div_ceil(self.kernel)
    }
}

impl SeqLayer for MaxPool1d {
    fn forward(&mut self, x: &Mat, _mode: Mode) -> Mat {
        let t = x.rows();
        let c = x.cols();
        let t_out = self.output_len(t);
        let mut y = Mat::zeros(t_out, c);
        let mut argmax = vec![0usize; t_out * c];
        for o in 0..t_out {
            let start = o * self.kernel;
            let end = (start + self.kernel).min(t);
            for col in 0..c {
                let mut best_row = start;
                let mut best = x[(start, col)];
                for r in start + 1..end {
                    if x[(r, col)] > best {
                        best = x[(r, col)];
                        best_row = r;
                    }
                }
                y[(o, col)] = best;
                argmax[o * c + col] = best_row;
            }
        }
        self.argmax = Some(argmax);
        self.in_shape = (t, c);
        y
    }

    fn infer_into(&self, x: &Mat, out: &mut Mat, scratch: &mut LayerScratch) {
        self.infer_batch_into(x, 1, out, scratch);
    }

    fn infer_batch_into(&self, x: &Mat, batch: usize, out: &mut Mat, _scratch: &mut LayerScratch) {
        assert!(
            batch > 0 && x.rows().is_multiple_of(batch),
            "MaxPool1d: batch does not divide rows"
        );
        let t = x.rows() / batch;
        let c = x.cols();
        let t_out = self.output_len(t);
        out.resize(batch * t_out, c);
        for seq in 0..batch {
            for o in 0..t_out {
                let start = o * self.kernel;
                let end = (start + self.kernel).min(t);
                for col in 0..c {
                    let mut best = x[(seq * t + start, col)];
                    for r in start + 1..end {
                        if x[(seq * t + r, col)] > best {
                            best = x[(seq * t + r, col)];
                        }
                    }
                    out[(seq * t_out + o, col)] = best;
                }
            }
        }
    }

    fn backward(&mut self, grad_out: &Mat) -> Mat {
        let argmax = self.argmax.as_ref().expect("MaxPool1d::backward called before forward");
        let (t, c) = self.in_shape;
        let mut dx = Mat::zeros(t, c);
        for o in 0..grad_out.rows() {
            for col in 0..c {
                let src = argmax[o * c + col];
                dx[(src, col)] += grad_out[(o, col)];
            }
        }
        dx
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn name(&self) -> &'static str {
        "MaxPool1d"
    }
}

/// Collapses `(T, F)` to `(1, F)` by per-feature maxima.
#[derive(Debug, Default)]
pub struct GlobalMaxPool {
    argmax: Option<Vec<usize>>,
    in_shape: (usize, usize),
}

impl GlobalMaxPool {
    /// Creates a global max-pool layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SeqLayer for GlobalMaxPool {
    fn forward(&mut self, x: &Mat, _mode: Mode) -> Mat {
        assert!(x.rows() > 0, "GlobalMaxPool: empty input");
        let c = x.cols();
        let mut y = Mat::zeros(1, c);
        let mut argmax = vec![0usize; c];
        for col in 0..c {
            let mut best = x[(0, col)];
            for r in 1..x.rows() {
                if x[(r, col)] > best {
                    best = x[(r, col)];
                    argmax[col] = r;
                }
            }
            y[(0, col)] = best;
        }
        self.argmax = Some(argmax);
        self.in_shape = x.shape();
        y
    }

    fn infer_into(&self, x: &Mat, out: &mut Mat, scratch: &mut LayerScratch) {
        self.infer_batch_into(x, 1, out, scratch);
    }

    fn infer_batch_into(&self, x: &Mat, batch: usize, out: &mut Mat, _scratch: &mut LayerScratch) {
        assert!(
            batch > 0 && x.rows().is_multiple_of(batch),
            "GlobalMaxPool: batch does not divide rows"
        );
        let t = x.rows() / batch;
        assert!(t > 0, "GlobalMaxPool: empty input");
        let c = x.cols();
        out.resize(batch, c);
        for seq in 0..batch {
            for col in 0..c {
                let mut best = x[(seq * t, col)];
                for r in 1..t {
                    if x[(seq * t + r, col)] > best {
                        best = x[(seq * t + r, col)];
                    }
                }
                out[(seq, col)] = best;
            }
        }
    }

    fn backward(&mut self, grad_out: &Mat) -> Mat {
        let argmax = self.argmax.as_ref().expect("GlobalMaxPool::backward called before forward");
        let (t, c) = self.in_shape;
        let mut dx = Mat::zeros(t, c);
        for col in 0..c {
            dx[(argmax[col], col)] = grad_out[(0, col)];
        }
        dx
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn name(&self) -> &'static str {
        "GlobalMaxPool"
    }
}

/// Collapses `(T, F)` to `(1, F)` by per-feature means.
#[derive(Debug, Default)]
pub struct GlobalAvgPool {
    in_rows: usize,
}

impl GlobalAvgPool {
    /// Creates a global average-pool layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SeqLayer for GlobalAvgPool {
    fn forward(&mut self, x: &Mat, _mode: Mode) -> Mat {
        assert!(x.rows() > 0, "GlobalAvgPool: empty input");
        self.in_rows = x.rows();
        x.mean_rows()
    }

    fn infer_into(&self, x: &Mat, out: &mut Mat, scratch: &mut LayerScratch) {
        self.infer_batch_into(x, 1, out, scratch);
    }

    fn infer_batch_into(&self, x: &Mat, batch: usize, out: &mut Mat, _scratch: &mut LayerScratch) {
        assert!(
            batch > 0 && x.rows().is_multiple_of(batch),
            "GlobalAvgPool: batch does not divide rows"
        );
        let t = x.rows() / batch;
        assert!(t > 0, "GlobalAvgPool: empty input");
        let c = x.cols();
        out.resize(batch, c);
        out.fill(0.0);
        // Same accumulate-then-scale order as `mean_rows` for bit-exactness.
        let scale = 1.0 / t as f32;
        for seq in 0..batch {
            for r in 0..t {
                let src = x.row(seq * t + r);
                for (o, &v) in out.row_mut(seq).iter_mut().zip(src.iter()) {
                    *o += v;
                }
            }
            for o in out.row_mut(seq) {
                *o *= scale;
            }
        }
    }

    fn backward(&mut self, grad_out: &Mat) -> Mat {
        let t = self.in_rows;
        let mut dx = Mat::zeros(t, grad_out.cols());
        let scale = 1.0 / t as f32;
        for r in 0..t {
            for c in 0..grad_out.cols() {
                dx[(r, c)] = grad_out[(0, c)] * scale;
            }
        }
        dx
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn name(&self) -> &'static str {
        "GlobalAvgPool"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_gradients;

    #[test]
    fn maxpool_shrinks_and_handles_partial_window() {
        let mut l = MaxPool1d::new(2);
        let x = Mat::from_rows(&[&[1.0], &[5.0], &[3.0], &[2.0], &[9.0]]);
        let y = l.forward(&x, Mode::Eval);
        assert_eq!(y, Mat::from_rows(&[&[5.0], &[3.0], &[9.0]]));
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let mut l = MaxPool1d::new(2);
        let x = Mat::from_rows(&[&[1.0], &[5.0], &[3.0], &[2.0]]);
        let _ = l.forward(&x, Mode::Eval);
        let dx = l.backward(&Mat::from_rows(&[&[1.0], &[1.0]]));
        assert_eq!(dx, Mat::from_rows(&[&[0.0], &[1.0], &[1.0], &[0.0]]));
    }

    #[test]
    fn global_max_pool_gradients() {
        let mut l = GlobalMaxPool::new();
        let x = Mat::from_rows(&[&[0.1, 0.9], &[0.7, 0.2], &[0.3, 0.4]]);
        check_layer_gradients(&mut l, &x, 1e-2);
    }

    #[test]
    fn global_avg_pool_gradients() {
        let mut l = GlobalAvgPool::new();
        let x = Mat::from_rows(&[&[0.1, 0.9], &[0.7, 0.2], &[0.3, 0.4]]);
        check_layer_gradients(&mut l, &x, 1e-2);
    }

    #[test]
    fn global_avg_pool_is_mean() {
        let mut l = GlobalAvgPool::new();
        let x = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(l.forward(&x, Mode::Eval), Mat::from_rows(&[&[2.0, 3.0]]));
    }
}
