//! Fully connected layer, applied independently to every time step.

use crate::init;
use crate::kernels::{self, GemmScratch};
use crate::layers::{LayerScratch, Mode, SeqLayer};
use crate::mat::Mat;
use crate::param::Param;
use rand::Rng;

/// Fully connected (affine) layer `y = x W + b`.
///
/// For a `(T, in_dim)` input the layer is applied per row (time-distributed),
/// producing `(T, out_dim)`. For `(1, in_dim)` inputs this is an ordinary
/// dense layer.
#[derive(Debug)]
pub struct Dense {
    weight: Param, // (in_dim, out_dim)
    bias: Param,   // (1, out_dim)
    cached_input: Option<Mat>,
    /// Training-side GEMM packing scratch (inference uses the caller's
    /// [`LayerScratch`] instead; `backward` takes `&mut self`, so the layer
    /// owning its training scratch is fine).
    gemm: GemmScratch,
    /// Weight-gradient staging buffer, reused across steps.
    dw: Mat,
}

impl Dense {
    /// Creates a dense layer with He-uniform weights and zero bias.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut impl Rng) -> Self {
        Self {
            weight: Param::new(init::he_uniform(rng, in_dim, in_dim, out_dim)),
            bias: Param::new(Mat::zeros(1, out_dim)),
            cached_input: None,
            gemm: GemmScratch::default(),
            dw: Mat::zeros(0, 0),
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.weight.value.rows()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.weight.value.cols()
    }
}

impl SeqLayer for Dense {
    fn forward(&mut self, x: &Mat, _mode: Mode) -> Mat {
        let mut y = Mat::zeros(0, 0);
        kernels::matmul_into(x, &self.weight.value, &mut y, &mut self.gemm);
        y.add_row_inplace(self.bias.value.row(0));
        self.cached_input = Some(x.clone());
        y
    }

    // Row-wise: the default `infer_batch_into` (one stacked matmul over all
    // sequences) is both correct and the batched fast path.
    fn infer_into(&self, x: &Mat, out: &mut Mat, scratch: &mut LayerScratch) {
        kernels::matmul_into(x, &self.weight.value, out, &mut scratch.gemm);
        out.add_row_inplace(self.bias.value.row(0));
    }

    fn backward(&mut self, grad_out: &Mat) -> Mat {
        let x = self.cached_input.as_ref().expect("Dense::backward called before forward");
        // dW = x^T * dY ; db = sum over rows of dY ; dX = dY * W^T
        kernels::transpose_matmul_into(x, grad_out, &mut self.dw, &mut self.gemm);
        self.weight.grad.add_scaled_inplace(&self.dw, 1.0);
        self.bias.grad.add_scaled_inplace(&grad_out.sum_rows(), 1.0);
        let mut dx = Mat::zeros(0, 0);
        kernels::matmul_transpose_into(grad_out, &self.weight.value, &mut dx, &mut self.gemm);
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    fn name(&self) -> &'static str {
        "Dense"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_gradients;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shape_is_time_distributed() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut layer = Dense::new(4, 2, &mut rng);
        let x = Mat::full(5, 4, 0.5);
        let y = layer.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), (5, 2));
        assert_eq!(layer.in_dim(), 4);
        assert_eq!(layer.out_dim(), 2);
    }

    #[test]
    fn forward_matches_manual_affine() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut layer = Dense::new(2, 2, &mut rng);
        layer.weight.value = Mat::from_rows(&[&[1., 2.], &[3., 4.]]);
        layer.bias.value = Mat::from_rows(&[&[0.5, -0.5]]);
        let y = layer.forward(&Mat::from_rows(&[&[1., 1.]]), Mode::Eval);
        assert_eq!(y, Mat::from_rows(&[&[4.5, 5.5]]));
    }

    #[test]
    fn gradients_match_numerical() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut layer = Dense::new(3, 2, &mut rng);
        let x = crate::init::uniform(&mut rng, 4, 3, 1.0);
        check_layer_gradients(&mut layer, &x, 1e-2);
    }
}
