//! Layer implementations and the [`SeqLayer`] abstraction.
//!
//! Data flows through the network as `(time, features)` matrices; plain
//! feature vectors are `(1, features)`. A layer either preserves the time
//! axis (Dense applied per-row, activations, LSTM with
//! `return_sequences = true`), shrinks it (Conv1d, MaxPool1d), or reduces it
//! away ([`reduce::TakeLast`], [`pool::GlobalMaxPool`], [`reduce::Flatten`]).

pub mod activation;
pub mod conv1d;
pub mod dense;
pub mod dropout;
pub mod lstm;
pub mod norm;
pub mod pool;
pub mod reduce;

use crate::mat::Mat;
use crate::param::Param;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Whether a forward pass is part of training (enables dropout, batch-stat
/// updates) or inference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Mode {
    /// Training: dropout active, normalization uses batch statistics.
    Train,
    /// Inference: deterministic forward pass.
    #[default]
    Eval,
}

/// Caller-owned scratch buffers for the allocation-free inference paths.
///
/// Layers used to own their inference scratch, which forced `&mut self` on
/// the inference-only forward pass and made a shared network unusable from
/// several threads. The scratch now travels with the **caller** (one per
/// layer inside [`crate::network::NetworkScratch`]): the layer itself stays
/// immutable during inference, so one read-only [`crate::network::Network`]
/// can serve many engines/threads concurrently, each with its own scratch.
///
/// The fields are a small generic pool each layer uses as it sees fit
/// (LSTM: `m` = input-projection matrix, `v1..v3` = gate/state vectors;
/// Conv1d: `m` = im2col patch matrix; every matmul-bearing layer: `gemm` =
/// panel-packing scratch for the tiled kernels). All buffers grow to a
/// high-water mark and are reused, so steady-state inference performs no
/// allocation.
#[derive(Debug, Default, Clone)]
pub struct LayerScratch {
    /// Matrix scratch (LSTM input projection, Conv1d patches).
    pub(crate) m: Mat,
    /// Vector scratch #1 (LSTM: hidden-to-gate projection).
    pub(crate) v1: Vec<f32>,
    /// Vector scratch #2 (LSTM: hidden state).
    pub(crate) v2: Vec<f32>,
    /// Vector scratch #3 (LSTM: cell state).
    pub(crate) v3: Vec<f32>,
    /// Packing scratch for the tiled GEMM kernels ([`crate::kernels`]) —
    /// caller-owned so the inference forward passes allocate nothing.
    pub(crate) gemm: crate::kernels::GemmScratch,
}

/// A differentiable layer over `(time, features)` sequences.
///
/// `backward` must be called immediately after the `forward` whose
/// intermediate state it relies on; layers cache activations internally.
/// Inference (`infer_into` / `infer_batch_into`) takes `&self` plus
/// caller-owned [`LayerScratch`], so a trained layer is `Sync`-shareable.
pub trait SeqLayer: Send + Sync {
    /// Computes the layer output for input `x`.
    fn forward(&mut self, x: &Mat, mode: Mode) -> Mat;

    /// Inference-only forward pass writing the output into `out`.
    ///
    /// Semantically identical (bit-for-bit) to `forward(x, Mode::Eval)`,
    /// but caches nothing for `backward` and reuses the caller's scratch
    /// and `out` allocations, so the steady-state hot path performs no heap
    /// allocation and the layer itself is not mutated.
    fn infer_into(&self, x: &Mat, out: &mut Mat, scratch: &mut LayerScratch);

    /// Batched inference over `batch` equally shaped sequences stacked
    /// row-wise: `x` is `(batch * T, F)` and the output is
    /// `(batch * T_out, F_out)` with each sequence's block bit-identical to
    /// what [`SeqLayer::infer_into`] produces for that sequence alone.
    ///
    /// The default forwards to `infer_into`, which is correct **only** for
    /// layers that treat every row independently (dense, activations,
    /// eval-mode norm/dropout). Layers that mix information across time
    /// steps (LSTM, Conv1d, pooling, reductions) must override it with a
    /// sequence-aware implementation or batches would leak across session
    /// boundaries.
    fn infer_batch_into(&self, x: &Mat, batch: usize, out: &mut Mat, scratch: &mut LayerScratch) {
        debug_assert!(batch > 0 && x.rows().is_multiple_of(batch), "batch does not divide rows");
        self.infer_into(x, out, scratch);
    }

    /// Propagates `grad_out` (d loss / d output) backwards, accumulating
    /// parameter gradients and returning d loss / d input.
    fn backward(&mut self, grad_out: &Mat) -> Mat;

    /// Visits every trainable parameter block in a stable order.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param));

    /// Short human-readable layer name used in `Debug` output.
    fn name(&self) -> &'static str;
}

/// Padding behaviour for [`conv1d::Conv1d`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Padding {
    /// No padding: output length is `T - k + 1`.
    #[default]
    Valid,
    /// Zero padding so the output length equals the input length.
    Same,
}

/// Serializable architecture description; [`build_layer`] turns a spec into a
/// concrete layer. A full network is described by `Vec<LayerSpec>` (see
/// [`crate::network::NetworkSpec`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[allow(missing_docs)] // variant fields are self-describing dimensions
pub enum LayerSpec {
    /// Fully connected layer applied to every time step independently.
    Dense { in_dim: usize, out_dim: usize },
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// Inverted dropout with the given drop rate.
    Dropout { rate: f32 },
    /// Temporal batch normalization over the time axis.
    BatchNorm { dim: usize },
    /// 1-D convolution over the time axis.
    Conv1d { in_channels: usize, out_channels: usize, kernel: usize, padding: Padding },
    /// Max pooling with kernel = stride.
    MaxPool1d { kernel: usize },
    /// Collapse the time axis by taking per-feature maxima.
    GlobalMaxPool,
    /// Collapse the time axis by averaging.
    GlobalAvgPool,
    /// Long short-term memory layer.
    Lstm {
        in_dim: usize,
        hidden: usize,
        /// If true the full `(T, hidden)` sequence is emitted; otherwise only
        /// the last hidden state as `(1, hidden)`.
        return_sequences: bool,
    },
    /// Keep only the last time step.
    TakeLast,
    /// Flatten `(T, F)` into `(1, T*F)`.
    Flatten,
}

/// Instantiates the layer described by `spec`, drawing initial weights from
/// `rng`.
pub fn build_layer(spec: &LayerSpec, rng: &mut impl Rng) -> Box<dyn SeqLayer> {
    match *spec {
        LayerSpec::Dense { in_dim, out_dim } => Box::new(dense::Dense::new(in_dim, out_dim, rng)),
        LayerSpec::Relu => Box::new(activation::Relu::new()),
        LayerSpec::Tanh => Box::new(activation::TanhLayer::new()),
        LayerSpec::Sigmoid => Box::new(activation::SigmoidLayer::new()),
        LayerSpec::Dropout { rate } => Box::new(dropout::Dropout::new(rate, rng.gen())),
        LayerSpec::BatchNorm { dim } => Box::new(norm::BatchNorm::new(dim)),
        LayerSpec::Conv1d { in_channels, out_channels, kernel, padding } => {
            Box::new(conv1d::Conv1d::new(in_channels, out_channels, kernel, padding, rng))
        }
        LayerSpec::MaxPool1d { kernel } => Box::new(pool::MaxPool1d::new(kernel)),
        LayerSpec::GlobalMaxPool => Box::new(pool::GlobalMaxPool::new()),
        LayerSpec::GlobalAvgPool => Box::new(pool::GlobalAvgPool::new()),
        LayerSpec::Lstm { in_dim, hidden, return_sequences } => {
            Box::new(lstm::Lstm::new(in_dim, hidden, return_sequences, rng))
        }
        LayerSpec::TakeLast => Box::new(reduce::TakeLast::new()),
        LayerSpec::Flatten => Box::new(reduce::Flatten::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn build_layer_covers_every_spec() {
        let mut rng = SmallRng::seed_from_u64(1);
        let specs = vec![
            LayerSpec::Dense { in_dim: 3, out_dim: 2 },
            LayerSpec::Relu,
            LayerSpec::Tanh,
            LayerSpec::Sigmoid,
            LayerSpec::Dropout { rate: 0.5 },
            LayerSpec::BatchNorm { dim: 3 },
            LayerSpec::Conv1d {
                in_channels: 3,
                out_channels: 4,
                kernel: 2,
                padding: Padding::Valid,
            },
            LayerSpec::MaxPool1d { kernel: 2 },
            LayerSpec::GlobalMaxPool,
            LayerSpec::GlobalAvgPool,
            LayerSpec::Lstm { in_dim: 3, hidden: 4, return_sequences: true },
            LayerSpec::TakeLast,
            LayerSpec::Flatten,
        ];
        for spec in &specs {
            let layer = build_layer(spec, &mut rng);
            assert!(!layer.name().is_empty());
        }
    }

    #[test]
    fn layer_spec_serde_roundtrip() {
        let spec = LayerSpec::Conv1d {
            in_channels: 8,
            out_channels: 16,
            kernel: 3,
            padding: Padding::Same,
        };
        let json = serde_json::to_string(&spec).unwrap();
        let back: LayerSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }
}
