//! Element-wise activation layers: ReLU, tanh, sigmoid.

use crate::layers::{LayerScratch, Mode, SeqLayer};
use crate::mat::Mat;
use crate::param::Param;

/// Rectified linear unit `max(0, x)`.
#[derive(Debug, Default)]
pub struct Relu {
    cached_input: Option<Mat>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Writes `f` applied to every element of `x` into `out` without
/// allocating (shared by the activation layers' `infer_into`). Element-wise,
/// so the default batched path (treating the stacked batch as one matrix)
/// is exact.
fn map_into(x: &Mat, out: &mut Mat, f: impl Fn(f32) -> f32) {
    out.resize(x.rows(), x.cols());
    for (o, &v) in out.as_mut_slice().iter_mut().zip(x.as_slice().iter()) {
        *o = f(v);
    }
}

impl SeqLayer for Relu {
    fn forward(&mut self, x: &Mat, _mode: Mode) -> Mat {
        self.cached_input = Some(x.clone());
        x.map(|v| v.max(0.0))
    }

    fn infer_into(&self, x: &Mat, out: &mut Mat, _scratch: &mut LayerScratch) {
        map_into(x, out, |v| v.max(0.0));
    }

    fn backward(&mut self, grad_out: &Mat) -> Mat {
        let x = self.cached_input.as_ref().expect("Relu::backward called before forward");
        x.zip_with(grad_out, |xi, g| if xi > 0.0 { g } else { 0.0 })
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn name(&self) -> &'static str {
        "Relu"
    }
}

/// Hyperbolic tangent activation.
#[derive(Debug, Default)]
pub struct TanhLayer {
    cached_output: Option<Mat>,
}

impl TanhLayer {
    /// Creates a tanh layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SeqLayer for TanhLayer {
    fn forward(&mut self, x: &Mat, _mode: Mode) -> Mat {
        let y = x.map(f32::tanh);
        self.cached_output = Some(y.clone());
        y
    }

    fn infer_into(&self, x: &Mat, out: &mut Mat, _scratch: &mut LayerScratch) {
        map_into(x, out, f32::tanh);
    }

    fn backward(&mut self, grad_out: &Mat) -> Mat {
        let y = self.cached_output.as_ref().expect("TanhLayer::backward called before forward");
        y.zip_with(grad_out, |yi, g| g * (1.0 - yi * yi))
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn name(&self) -> &'static str {
        "Tanh"
    }
}

/// Logistic sigmoid activation `1 / (1 + e^-x)`.
#[derive(Debug, Default)]
pub struct SigmoidLayer {
    cached_output: Option<Mat>,
}

impl SigmoidLayer {
    /// Creates a sigmoid layer.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Numerically stable scalar sigmoid.
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

impl SeqLayer for SigmoidLayer {
    fn forward(&mut self, x: &Mat, _mode: Mode) -> Mat {
        let y = x.map(sigmoid);
        self.cached_output = Some(y.clone());
        y
    }

    fn infer_into(&self, x: &Mat, out: &mut Mat, _scratch: &mut LayerScratch) {
        map_into(x, out, sigmoid);
    }

    fn backward(&mut self, grad_out: &Mat) -> Mat {
        let y = self.cached_output.as_ref().expect("SigmoidLayer::backward called before forward");
        y.zip_with(grad_out, |yi, g| g * yi * (1.0 - yi))
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn name(&self) -> &'static str {
        "Sigmoid"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_gradients;

    #[test]
    fn relu_clamps_negatives() {
        let mut l = Relu::new();
        let y = l.forward(&Mat::from_rows(&[&[-1.0, 0.0, 2.0]]), Mode::Eval);
        assert_eq!(y, Mat::from_rows(&[&[0.0, 0.0, 2.0]]));
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert!((sigmoid(40.0) - 1.0).abs() < 1e-6);
        assert!(sigmoid(-40.0) < 1e-6);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
    }

    #[test]
    fn relu_gradients_match_numerical() {
        let mut l = Relu::new();
        let x = Mat::from_rows(&[&[-0.5, 0.3, 1.2], &[0.7, -0.1, 0.4]]);
        check_layer_gradients(&mut l, &x, 1e-2);
    }

    #[test]
    fn tanh_gradients_match_numerical() {
        let mut l = TanhLayer::new();
        let x = Mat::from_rows(&[&[-0.5, 0.3, 1.2]]);
        check_layer_gradients(&mut l, &x, 1e-2);
    }

    #[test]
    fn sigmoid_gradients_match_numerical() {
        let mut l = SigmoidLayer::new();
        let x = Mat::from_rows(&[&[-0.5, 0.3, 1.2]]);
        check_layer_gradients(&mut l, &x, 1e-2);
    }
}
