//! 1-D convolution over the time axis.

use crate::init;
use crate::kernels::{self, GemmScratch};
use crate::layers::{LayerScratch, Mode, Padding, SeqLayer};
use crate::mat::Mat;
use crate::param::Param;
use rand::Rng;

/// 1-D convolution: input `(T, Cin)`, output `(T', Cout)` with stride 1.
///
/// With [`Padding::Valid`], `T' = T - k + 1`; with [`Padding::Same`], `T' = T`
/// (zero padding split evenly, extra zero at the end for even kernels).
///
/// The weight is stored as a `(k * Cin, Cout)` matrix so the forward pass is
/// an im2col patch-matrix product.
#[derive(Debug)]
pub struct Conv1d {
    weight: Param, // (k*Cin, Cout)
    bias: Param,   // (1, Cout)
    in_channels: usize,
    kernel: usize,
    padding: Padding,
    cached_patches: Option<Mat>, // (T', k*Cin); buffer reused across steps
    cached_input_rows: usize,
    /// Training-side GEMM packing scratch (inference uses the caller's
    /// [`LayerScratch`]).
    gemm: GemmScratch,
    /// Weight-gradient staging buffer, reused across steps.
    dw: Mat,
    /// Patch-gradient staging buffer (`dY · Wᵀ`), reused across steps.
    dpatches: Mat,
}

impl Conv1d {
    /// Creates a Conv1d layer with He-uniform weights.
    ///
    /// # Panics
    ///
    /// Panics if `kernel == 0`.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        padding: Padding,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(kernel > 0, "kernel size must be positive");
        let fan_in = kernel * in_channels;
        Self {
            weight: Param::new(init::he_uniform(rng, fan_in, fan_in, out_channels)),
            bias: Param::new(Mat::zeros(1, out_channels)),
            in_channels,
            kernel,
            padding,
            cached_patches: None,
            cached_input_rows: 0,
            gemm: GemmScratch::default(),
            dw: Mat::zeros(0, 0),
            dpatches: Mat::zeros(0, 0),
        }
    }

    /// Number of input channels.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.weight.value.cols()
    }

    /// Kernel width.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    fn pad_amounts(&self, _t: usize) -> (usize, usize) {
        match self.padding {
            Padding::Valid => (0, 0),
            Padding::Same => {
                let total = self.kernel.saturating_sub(1);
                // For odd kernels this is symmetric; for even kernels the
                // extra zero goes at the end.
                (total / 2, total - total / 2)
            }
        }
    }

    /// Output length for an input of `t` time steps.
    ///
    /// # Panics
    ///
    /// Panics if the (padded) input is shorter than the kernel.
    pub fn output_len(&self, t: usize) -> usize {
        let (lo, hi) = self.pad_amounts(t);
        let padded = t + lo + hi;
        assert!(
            padded >= self.kernel,
            "Conv1d: input of {t} steps too short for kernel {}",
            self.kernel
        );
        padded - self.kernel + 1
    }

    /// Fills `out` with the im2col patch matrix `(T', k*Cin)` (shared by the
    /// training and the allocation-free inference paths). `out` must already
    /// have the patch shape.
    fn patches_into(x: &Mat, lo: usize, k: usize, cin: usize, out: &mut Mat) {
        let t = x.rows();
        let t_out = out.rows();
        out.fill(0.0);
        Self::patch_block(x, 0, t, lo, k, cin, out, 0, t_out);
    }

    /// Writes the patch rows of one sequence — `t` input rows of `x`
    /// starting at `x_row0` — into `t_out` rows of `out` starting at
    /// `out_row0`. `out` must be pre-zeroed; padding rows stay zero.
    #[allow(clippy::too_many_arguments)] // im2col geometry is inherently wide
    fn patch_block(
        x: &Mat,
        x_row0: usize,
        t: usize,
        lo: usize,
        k: usize,
        cin: usize,
        out: &mut Mat,
        out_row0: usize,
        t_out: usize,
    ) {
        for o in 0..t_out {
            let row = out.row_mut(out_row0 + o);
            for j in 0..k {
                // Index into the *unpadded* input; out-of-range rows are zero.
                let src = (o + j) as isize - lo as isize;
                if src >= 0 && (src as usize) < t {
                    row[j * cin..(j + 1) * cin].copy_from_slice(x.row(x_row0 + src as usize));
                }
            }
        }
    }
}

impl SeqLayer for Conv1d {
    fn forward(&mut self, x: &Mat, _mode: Mode) -> Mat {
        assert_eq!(
            x.cols(),
            self.in_channels,
            "Conv1d: expected {} channels, got {}",
            self.in_channels,
            x.cols()
        );
        // Reuse the cached patch buffer across training steps — im2col was
        // the one per-step allocation the inference refactor never covered.
        let mut patches = self.cached_patches.take().unwrap_or_default();
        patches.resize(self.output_len(x.rows()), self.kernel * self.in_channels);
        Self::patches_into(
            x,
            self.pad_amounts(x.rows()).0,
            self.kernel,
            self.in_channels,
            &mut patches,
        );
        let mut y = Mat::zeros(0, 0);
        kernels::matmul_into(&patches, &self.weight.value, &mut y, &mut self.gemm);
        y.add_row_inplace(self.bias.value.row(0));
        self.cached_input_rows = x.rows();
        self.cached_patches = Some(patches);
        y
    }

    fn infer_into(&self, x: &Mat, out: &mut Mat, scratch: &mut LayerScratch) {
        self.infer_batch_into(x, 1, out, scratch);
    }

    fn infer_batch_into(&self, x: &Mat, batch: usize, out: &mut Mat, scratch: &mut LayerScratch) {
        assert_eq!(
            x.cols(),
            self.in_channels,
            "Conv1d: expected {} channels, got {}",
            self.in_channels,
            x.cols()
        );
        assert!(batch > 0 && x.rows().is_multiple_of(batch), "Conv1d: batch does not divide rows");
        let t = x.rows() / batch;
        let (lo, _hi) = self.pad_amounts(t);
        let t_out = self.output_len(t);
        // One stacked patch matrix for every sequence, then a single fused
        // matmul — each output row is the same dot product as in the
        // unbatched path, so results are bit-identical per sequence.
        let patches = &mut scratch.m;
        patches.resize(batch * t_out, self.kernel * self.in_channels);
        patches.fill(0.0);
        for b in 0..batch {
            Self::patch_block(
                x,
                b * t,
                t,
                lo,
                self.kernel,
                self.in_channels,
                patches,
                b * t_out,
                t_out,
            );
        }
        kernels::matmul_into(patches, &self.weight.value, out, &mut scratch.gemm);
        out.add_row_inplace(self.bias.value.row(0));
    }

    fn backward(&mut self, grad_out: &Mat) -> Mat {
        let patches = self.cached_patches.as_ref().expect("Conv1d::backward called before forward");
        // dW = patches^T * dY; db = column sums of dY.
        kernels::transpose_matmul_into(patches, grad_out, &mut self.dw, &mut self.gemm);
        self.weight.grad.add_scaled_inplace(&self.dw, 1.0);
        self.bias.grad.add_scaled_inplace(&grad_out.sum_rows(), 1.0);

        // dPatches = dY * W^T, then scatter back to input rows.
        kernels::matmul_transpose_into(
            grad_out,
            &self.weight.value,
            &mut self.dpatches,
            &mut self.gemm,
        );
        let dpatches = &self.dpatches;
        let t = self.cached_input_rows;
        let (lo, _hi) = self.pad_amounts(t);
        let k = self.kernel;
        let cin = self.in_channels;
        let mut dx = Mat::zeros(t, cin);
        for o in 0..dpatches.rows() {
            let prow = dpatches.row(o);
            for j in 0..k {
                let src = (o + j) as isize - lo as isize;
                if src >= 0 && (src as usize) < t {
                    let dst = dx.row_mut(src as usize);
                    for (d, &g) in dst.iter_mut().zip(prow[j * cin..(j + 1) * cin].iter()) {
                        *d += g;
                    }
                }
            }
        }
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    fn name(&self) -> &'static str {
        "Conv1d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_gradients;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn valid_padding_output_length() {
        let mut rng = SmallRng::seed_from_u64(1);
        let l = Conv1d::new(2, 3, 3, Padding::Valid, &mut rng);
        assert_eq!(l.output_len(10), 8);
    }

    #[test]
    fn same_padding_preserves_length() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut l = Conv1d::new(2, 3, 3, Padding::Same, &mut rng);
        let x = Mat::full(7, 2, 1.0);
        assert_eq!(l.forward(&x, Mode::Eval).shape(), (7, 3));
    }

    #[test]
    fn forward_matches_manual_convolution() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut l = Conv1d::new(1, 1, 2, Padding::Valid, &mut rng);
        // kernel [w0, w1] applied to single-channel series.
        l.weight.value = Mat::from_rows(&[&[2.0], &[3.0]]);
        l.bias.value = Mat::from_rows(&[&[1.0]]);
        let x = Mat::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let y = l.forward(&x, Mode::Eval);
        // y[0] = 2*1 + 3*2 + 1 = 9 ; y[1] = 2*2 + 3*3 + 1 = 14
        assert_eq!(y, Mat::from_rows(&[&[9.0], &[14.0]]));
    }

    #[test]
    fn gradients_match_numerical_valid() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut l = Conv1d::new(2, 3, 3, Padding::Valid, &mut rng);
        let x = init::uniform(&mut rng, 6, 2, 1.0);
        check_layer_gradients(&mut l, &x, 2e-2);
    }

    #[test]
    fn gradients_match_numerical_same() {
        let mut rng = SmallRng::seed_from_u64(6);
        let mut l = Conv1d::new(2, 2, 4, Padding::Same, &mut rng);
        let x = init::uniform(&mut rng, 5, 2, 1.0);
        check_layer_gradients(&mut l, &x, 2e-2);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn rejects_input_shorter_than_kernel() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut l = Conv1d::new(1, 1, 5, Padding::Valid, &mut rng);
        let _ = l.forward(&Mat::full(3, 1, 0.0), Mode::Eval);
    }
}
