//! Long short-term memory layer with full backpropagation through time.

use crate::init;
use crate::kernels::{self, GemmScratch};
use crate::layers::{LayerScratch, Mode, SeqLayer};
use crate::mat::Mat;
use crate::param::Param;
use rand::Rng;

/// LSTM layer over a `(T, in_dim)` sequence.
///
/// Gate layout in the fused weight matrices is `[input, forget, cell, output]`
/// (each `hidden` wide). The forget-gate bias is initialized to 1, the usual
/// trick to preserve memory early in training.
///
/// With `return_sequences = true` the layer emits the full `(T, hidden)`
/// hidden-state sequence (for stacking, as in the paper's 2-layer stacked
/// LSTM gesture classifier); otherwise only the final hidden state as
/// `(1, hidden)`.
#[derive(Debug)]
pub struct Lstm {
    w: Param, // (in_dim, 4H): input -> gates
    u: Param, // (hidden, 4H): hidden -> gates
    b: Param, // (1, 4H)
    hidden: usize,
    return_sequences: bool,
    cache: Option<Cache>,
    /// Training-side GEMM packing scratch (inference uses the caller's
    /// [`LayerScratch`]).
    gemm: GemmScratch,
    /// Per-step hidden→gate projection `h_{t-1}·U`, reused across steps.
    hu: Vec<f32>,
    /// Input→gate projection `x·W` of the whole sequence, reused across
    /// steps.
    xw: Mat,
    /// Running hidden state, reused across steps.
    h_state: Vec<f32>,
    /// Running cell state, reused across steps.
    c_state: Vec<f32>,
    /// Pre-activation gate gradients `(T, 4H)`, reused across steps.
    dz: Mat,
    /// Expanded per-step output gradient `(T, H)`, reused across steps.
    dh_seq: Mat,
    /// Weight-gradient staging buffer, reused across steps.
    dwbuf: Mat,
}

/// BPTT activations. The buffers live on after `backward` and are reused by
/// the next `forward` (every element is overwritten), so steady-state
/// training steps allocate nothing here.
#[derive(Debug, Default)]
struct Cache {
    x: Mat,      // (T, in_dim)
    h_prev: Mat, // (T, hidden): h_{t-1} rows (row 0 = zeros)
    c_prev: Mat, // (T, hidden)
    i: Mat,
    f: Mat,
    g: Mat,
    o: Mat,
    tanh_c: Mat, // (T, hidden)
}

impl Lstm {
    /// Creates an LSTM layer with Xavier-initialized weights.
    ///
    /// # Panics
    ///
    /// Panics if `hidden == 0`.
    pub fn new(in_dim: usize, hidden: usize, return_sequences: bool, rng: &mut impl Rng) -> Self {
        assert!(hidden > 0, "hidden size must be positive");
        let mut b = Mat::zeros(1, 4 * hidden);
        for c in hidden..2 * hidden {
            b[(0, c)] = 1.0; // forget-gate bias
        }
        Self {
            w: Param::new(init::xavier_uniform(rng, in_dim, 4 * hidden)),
            u: Param::new(init::xavier_uniform(rng, hidden, 4 * hidden)),
            b: Param::new(b),
            hidden,
            return_sequences,
            cache: None,
            gemm: GemmScratch::default(),
            hu: Vec::new(),
            xw: Mat::zeros(0, 0),
            h_state: Vec::new(),
            c_state: Vec::new(),
            dz: Mat::zeros(0, 0),
            dh_seq: Mat::zeros(0, 0),
            dwbuf: Mat::zeros(0, 0),
        }
    }

    /// Hidden-state width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Whether the full sequence is returned.
    pub fn return_sequences(&self) -> bool {
        self.return_sequences
    }

    fn sigmoid(x: f32) -> f32 {
        crate::layers::activation::sigmoid(x)
    }
}

impl SeqLayer for Lstm {
    fn forward(&mut self, x: &Mat, _mode: Mode) -> Mat {
        let t_len = x.rows();
        let h = self.hidden;
        assert!(t_len > 0, "Lstm: empty input sequence");
        assert_eq!(
            x.cols(),
            self.w.value.rows(),
            "Lstm: expected {} input features, got {}",
            self.w.value.rows(),
            x.cols()
        );

        // Pre-compute the input contribution for every step at once, into
        // the reused projection buffer.
        kernels::matmul_into(x, &self.w.value, &mut self.xw, &mut self.gemm); // (T, 4H)

        // Reuse the previous step's cache buffers: every element of every
        // buffer is overwritten below, so resizing without zeroing is safe.
        let mut cache = self.cache.take().unwrap_or_default();
        cache.x.copy_from(x);
        cache.h_prev.resize(t_len, h);
        cache.c_prev.resize(t_len, h);
        cache.i.resize(t_len, h);
        cache.f.resize(t_len, h);
        cache.g.resize(t_len, h);
        cache.o.resize(t_len, h);
        cache.tanh_c.resize(t_len, h);
        let mut hs = Mat::zeros(t_len, h);

        self.h_state.resize(h, 0.0);
        self.c_state.resize(h, 0.0);
        self.h_state.fill(0.0);
        self.c_state.fill(0.0);
        self.hu.resize(4 * h, 0.0);

        for t in 0..t_len {
            cache.h_prev.row_mut(t).copy_from_slice(&self.h_state);
            cache.c_prev.row_mut(t).copy_from_slice(&self.c_state);

            // z = xw[t] + h_{t-1} U + b. The projection goes through the
            // same skip-zero kernel as every other matmul, so it is
            // bit-identical to the historical `Mat::row_vector(h).matmul(U)`.
            kernels::gemm_ab(
                1,
                h,
                4 * h,
                &self.h_state,
                self.u.value.as_slice(),
                &mut self.hu,
                &mut self.gemm,
            );
            let hu = &self.hu;
            let xw_row = self.xw.row(t);
            let b_row = self.b.value.row(0);
            for k in 0..h {
                let zi = xw_row[k] + hu[k] + b_row[k];
                let zf = xw_row[h + k] + hu[h + k] + b_row[h + k];
                let zg = xw_row[2 * h + k] + hu[2 * h + k] + b_row[2 * h + k];
                let zo = xw_row[3 * h + k] + hu[3 * h + k] + b_row[3 * h + k];
                let i = Self::sigmoid(zi);
                let f = Self::sigmoid(zf);
                let g = zg.tanh();
                let o = Self::sigmoid(zo);
                let c_new = f * self.c_state[k] + i * g;
                let tc = c_new.tanh();
                cache.i[(t, k)] = i;
                cache.f[(t, k)] = f;
                cache.g[(t, k)] = g;
                cache.o[(t, k)] = o;
                cache.tanh_c[(t, k)] = tc;
                self.c_state[k] = c_new;
                self.h_state[k] = o * tc;
            }
            hs.row_mut(t).copy_from_slice(&self.h_state);
        }

        self.cache = Some(cache);

        if self.return_sequences {
            hs
        } else {
            hs.slice_rows(t_len - 1, t_len)
        }
    }

    fn infer_into(&self, x: &Mat, out: &mut Mat, scratch: &mut LayerScratch) {
        self.infer_batch_into(x, 1, out, scratch);
    }

    fn infer_batch_into(&self, x: &Mat, batch: usize, out: &mut Mat, scratch: &mut LayerScratch) {
        let h = self.hidden;
        assert!(batch > 0 && x.rows().is_multiple_of(batch), "Lstm: batch does not divide rows");
        let t_len = x.rows() / batch;
        assert!(t_len > 0, "Lstm: empty input sequence");
        assert_eq!(
            x.cols(),
            self.w.value.rows(),
            "Lstm: expected {} input features, got {}",
            self.w.value.rows(),
            x.cols()
        );

        // The input projection of *every* sequence in one fused matmul
        // (the dominant cost); each row's dot product is independent of the
        // other rows, so per-sequence results stay bit-identical to the
        // unbatched path. Only the cheap recurrence below runs per sequence.
        let xw = &mut scratch.m;
        kernels::matmul_into(x, &self.w.value, xw, &mut scratch.gemm); // (batch*T, 4H)
        let hu = &mut scratch.v1;
        let h_state = &mut scratch.v2;
        let c_state = &mut scratch.v3;
        hu.resize(4 * h, 0.0);
        h_state.resize(h, 0.0);
        c_state.resize(h, 0.0);
        if self.return_sequences {
            out.resize(batch * t_len, h);
        } else {
            out.resize(batch, h);
        }

        let u = &self.u.value;
        let b_row = self.b.value.row(0);
        for seq in 0..batch {
            h_state.fill(0.0);
            c_state.fill(0.0);
            for t in 0..t_len {
                // hu = h_{t-1} * U through the same skip-zero kernel as
                // `forward`, so results match it bit-for-bit.
                kernels::gemm_ab(1, h, 4 * h, h_state, u.as_slice(), hu, &mut scratch.gemm);

                let xw_row = xw.row(seq * t_len + t);
                for k in 0..h {
                    let zi = xw_row[k] + hu[k] + b_row[k];
                    let zf = xw_row[h + k] + hu[h + k] + b_row[h + k];
                    let zg = xw_row[2 * h + k] + hu[2 * h + k] + b_row[2 * h + k];
                    let zo = xw_row[3 * h + k] + hu[3 * h + k] + b_row[3 * h + k];
                    let i = Self::sigmoid(zi);
                    let f = Self::sigmoid(zf);
                    let g = zg.tanh();
                    let o = Self::sigmoid(zo);
                    let c_new = f * c_state[k] + i * g;
                    c_state[k] = c_new;
                    h_state[k] = o * c_new.tanh();
                }
                if self.return_sequences {
                    out.row_mut(seq * t_len + t).copy_from_slice(h_state);
                }
            }
            if !self.return_sequences {
                out.row_mut(seq).copy_from_slice(h_state);
            }
        }
    }

    fn backward(&mut self, grad_out: &Mat) -> Mat {
        let cache = self.cache.as_ref().expect("Lstm::backward called before forward");
        let t_len = cache.x.rows();
        let h = self.hidden;

        // Expand grad_out to a per-step (T, H) gradient (reused buffer).
        let dh_seq = &mut self.dh_seq;
        dh_seq.resize(t_len, h);
        if self.return_sequences {
            assert_eq!(grad_out.shape(), (t_len, h), "Lstm: bad grad_out shape");
            dh_seq.copy_from(grad_out);
        } else {
            assert_eq!(grad_out.shape(), (1, h), "Lstm: bad grad_out shape");
            dh_seq.fill(0.0);
            dh_seq.row_mut(t_len - 1).copy_from_slice(grad_out.row(0));
        }

        // Pre-activation gate grads (reused buffer; every element is
        // assigned below before it is read).
        self.dz.resize(t_len, 4 * h);
        let mut dh_next = vec![0.0f32; h];
        let mut dc_next = vec![0.0f32; h];

        for t in (0..t_len).rev() {
            for k in 0..h {
                let dh = self.dh_seq[(t, k)] + dh_next[k];
                let o = cache.o[(t, k)];
                let tc = cache.tanh_c[(t, k)];
                let dct = dh * o * (1.0 - tc * tc) + dc_next[k];
                let i = cache.i[(t, k)];
                let f = cache.f[(t, k)];
                let g = cache.g[(t, k)];
                let do_ = dh * tc;
                let di = dct * g;
                let df = dct * cache.c_prev[(t, k)];
                let dg = dct * i;
                self.dz[(t, k)] = di * i * (1.0 - i);
                self.dz[(t, h + k)] = df * f * (1.0 - f);
                self.dz[(t, 2 * h + k)] = dg * (1.0 - g * g);
                self.dz[(t, 3 * h + k)] = do_ * o * (1.0 - o);
                dc_next[k] = dct * f;
            }
            // dh_next = dz[t] * U^T, straight through the ABᵀ kernel into
            // the reused state vector (dz[t] is complete at this point).
            kernels::gemm_abt(
                1,
                4 * h,
                h,
                self.dz.row(t),
                self.u.value.as_slice(),
                &mut dh_next,
                &mut self.gemm,
            );
        }

        // Parameter gradients from the assembled dz.
        kernels::transpose_matmul_into(&cache.x, &self.dz, &mut self.dwbuf, &mut self.gemm);
        self.w.grad.add_scaled_inplace(&self.dwbuf, 1.0);
        kernels::transpose_matmul_into(&cache.h_prev, &self.dz, &mut self.dwbuf, &mut self.gemm);
        self.u.grad.add_scaled_inplace(&self.dwbuf, 1.0);
        self.b.grad.add_scaled_inplace(&self.dz.sum_rows(), 1.0);

        // Input gradient.
        let mut dx = Mat::zeros(0, 0);
        kernels::matmul_transpose_into(&self.dz, &self.w.value, &mut dx, &mut self.gemm);
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.w);
        f(&mut self.u);
        f(&mut self.b);
    }

    fn name(&self) -> &'static str {
        "Lstm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_gradients;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shapes() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seq = Lstm::new(3, 5, true, &mut rng);
        let mut last = Lstm::new(3, 5, false, &mut rng);
        let x = init::uniform(&mut rng, 7, 3, 1.0);
        assert_eq!(seq.forward(&x, Mode::Eval).shape(), (7, 5));
        assert_eq!(last.forward(&x, Mode::Eval).shape(), (1, 5));
    }

    #[test]
    fn last_state_matches_sequence_tail() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seq = Lstm::new(3, 4, true, &mut rng);
        let x = init::uniform(&mut rng, 6, 3, 1.0);
        let full = seq.forward(&x, Mode::Eval);
        seq.return_sequences = false;
        let last = seq.forward(&x, Mode::Eval);
        assert_eq!(last.row(0), full.row(5));
    }

    #[test]
    fn hidden_states_are_bounded() {
        // h = o * tanh(c) with o in (0,1) and |tanh| < 1.
        let mut rng = SmallRng::seed_from_u64(3);
        let mut l = Lstm::new(2, 6, true, &mut rng);
        let x = init::uniform(&mut rng, 20, 2, 5.0);
        let y = l.forward(&x, Mode::Eval);
        assert!(y.as_slice().iter().all(|&v| v.abs() < 1.0));
    }

    #[test]
    fn gradients_match_numerical_return_sequences() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut l = Lstm::new(2, 3, true, &mut rng);
        let x = init::uniform(&mut rng, 4, 2, 0.8);
        check_layer_gradients(&mut l, &x, 3e-2);
    }

    #[test]
    fn gradients_match_numerical_last_only() {
        let mut rng = SmallRng::seed_from_u64(12);
        let mut l = Lstm::new(2, 3, false, &mut rng);
        let x = init::uniform(&mut rng, 4, 2, 0.8);
        check_layer_gradients(&mut l, &x, 3e-2);
    }

    #[test]
    fn forget_bias_initialized_to_one() {
        let mut rng = SmallRng::seed_from_u64(1);
        let l = Lstm::new(2, 3, true, &mut rng);
        for k in 3..6 {
            assert_eq!(l.b.value[(0, k)], 1.0);
        }
        assert_eq!(l.b.value[(0, 0)], 0.0);
    }

    use crate::init;
}
