//! Shape-manipulation layers: take-last and flatten.

use crate::layers::{LayerScratch, Mode, SeqLayer};
use crate::mat::Mat;
use crate::param::Param;

/// Keeps only the last time step: `(T, F)` → `(1, F)`. This is how an LSTM
/// stack with `return_sequences = true` is reduced before the dense head.
#[derive(Debug, Default)]
pub struct TakeLast {
    in_rows: usize,
}

impl TakeLast {
    /// Creates a take-last layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SeqLayer for TakeLast {
    fn forward(&mut self, x: &Mat, _mode: Mode) -> Mat {
        assert!(x.rows() > 0, "TakeLast: empty input");
        self.in_rows = x.rows();
        x.slice_rows(x.rows() - 1, x.rows())
    }

    fn infer_into(&self, x: &Mat, out: &mut Mat, scratch: &mut LayerScratch) {
        self.infer_batch_into(x, 1, out, scratch);
    }

    fn infer_batch_into(&self, x: &Mat, batch: usize, out: &mut Mat, _scratch: &mut LayerScratch) {
        assert!(
            batch > 0 && x.rows().is_multiple_of(batch),
            "TakeLast: batch does not divide rows"
        );
        let t = x.rows() / batch;
        assert!(t > 0, "TakeLast: empty input");
        out.resize(batch, x.cols());
        for seq in 0..batch {
            out.row_mut(seq).copy_from_slice(x.row((seq + 1) * t - 1));
        }
    }

    fn backward(&mut self, grad_out: &Mat) -> Mat {
        let mut dx = Mat::zeros(self.in_rows, grad_out.cols());
        dx.row_mut(self.in_rows - 1).copy_from_slice(grad_out.row(0));
        dx
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn name(&self) -> &'static str {
        "TakeLast"
    }
}

/// Flattens `(T, F)` into a single `(1, T*F)` row (row-major), as used before
/// dense heads in the 1D-CNN error classifiers.
#[derive(Debug, Default)]
pub struct Flatten {
    in_shape: (usize, usize),
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SeqLayer for Flatten {
    fn forward(&mut self, x: &Mat, _mode: Mode) -> Mat {
        self.in_shape = x.shape();
        Mat::from_vec(1, x.len(), x.as_slice().to_vec())
    }

    fn infer_into(&self, x: &Mat, out: &mut Mat, scratch: &mut LayerScratch) {
        self.infer_batch_into(x, 1, out, scratch);
    }

    fn infer_batch_into(&self, x: &Mat, batch: usize, out: &mut Mat, _scratch: &mut LayerScratch) {
        assert!(batch > 0 && x.rows().is_multiple_of(batch), "Flatten: batch does not divide rows");
        // Row-major storage: flattening each sequence block is a straight
        // reinterpretation of the stacked buffer.
        out.resize(batch, x.len() / batch.max(1));
        out.as_mut_slice().copy_from_slice(x.as_slice());
    }

    fn backward(&mut self, grad_out: &Mat) -> Mat {
        let (t, f) = self.in_shape;
        Mat::from_vec(t, f, grad_out.as_slice().to_vec())
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn name(&self) -> &'static str {
        "Flatten"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_gradients;

    #[test]
    fn take_last_keeps_final_row() {
        let mut l = TakeLast::new();
        let x = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(l.forward(&x, Mode::Eval), Mat::from_rows(&[&[3.0, 4.0]]));
    }

    #[test]
    fn take_last_gradients() {
        let mut l = TakeLast::new();
        let x = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        check_layer_gradients(&mut l, &x, 1e-2);
    }

    #[test]
    fn flatten_roundtrips_shape() {
        let mut l = Flatten::new();
        let x = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let y = l.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), (1, 4));
        let dx = l.backward(&y);
        assert_eq!(dx, x);
    }

    #[test]
    fn flatten_gradients() {
        let mut l = Flatten::new();
        let x = Mat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        check_layer_gradients(&mut l, &x, 1e-2);
    }
}
