//! Temporal batch normalization.
//!
//! The paper's gesture classifier uses batch-normalization layers between
//! LSTM stacks. Our training loop processes one `(T, F)` window at a time, so
//! this layer normalizes each feature over the *time* axis of the window
//! during training (the window plays the role of the mini-batch) and keeps
//! running statistics for inference — the usual BatchNorm deltas documented
//! in DESIGN.md §10.

use crate::layers::{LayerScratch, Mode, SeqLayer};
use crate::mat::Mat;
use crate::param::Param;

const EPS: f32 = 1e-5;

/// Per-feature normalization over the time axis with learned scale and shift.
#[derive(Debug)]
pub struct BatchNorm {
    gamma: Param, // (1, dim)
    beta: Param,  // (1, dim)
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    momentum: f32,
    // Caches from training-mode forward.
    cache: Option<NormCache>,
    last_mode: Mode,
}

#[derive(Debug)]
struct NormCache {
    x_hat: Mat,
    inv_std: Vec<f32>,
}

impl BatchNorm {
    /// Creates a batch-norm layer over `dim` features with γ=1, β=0.
    pub fn new(dim: usize) -> Self {
        Self {
            gamma: Param::new(Mat::full(1, dim, 1.0)),
            beta: Param::new(Mat::zeros(1, dim)),
            running_mean: vec![0.0; dim],
            running_var: vec![1.0; dim],
            momentum: 0.1,
            cache: None,
            last_mode: Mode::Eval,
        }
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.gamma.value.cols()
    }
}

impl SeqLayer for BatchNorm {
    fn forward(&mut self, x: &Mat, mode: Mode) -> Mat {
        let dim = self.dim();
        assert_eq!(x.cols(), dim, "BatchNorm: expected {dim} features, got {}", x.cols());
        self.last_mode = mode;
        let t = x.rows();

        // Eval mode, or degenerate one-row windows (variance undefined):
        // use running statistics.
        if mode == Mode::Eval || t < 2 {
            self.cache = None;
            let mut y = Mat::zeros(t, dim);
            for r in 0..t {
                for c in 0..dim {
                    let x_hat =
                        (x[(r, c)] - self.running_mean[c]) / (self.running_var[c] + EPS).sqrt();
                    y[(r, c)] = self.gamma.value[(0, c)] * x_hat + self.beta.value[(0, c)];
                }
            }
            return y;
        }

        let mean = x.mean_rows();
        let mut var = vec![0.0f32; dim];
        for r in 0..t {
            for c in 0..dim {
                let d = x[(r, c)] - mean[(0, c)];
                var[c] += d * d;
            }
        }
        for v in &mut var {
            *v /= t as f32;
        }

        for c in 0..dim {
            self.running_mean[c] =
                (1.0 - self.momentum) * self.running_mean[c] + self.momentum * mean[(0, c)];
            self.running_var[c] =
                (1.0 - self.momentum) * self.running_var[c] + self.momentum * var[c];
        }

        let inv_std: Vec<f32> = var.iter().map(|v| 1.0 / (v + EPS).sqrt()).collect();
        let mut x_hat = Mat::zeros(t, dim);
        let mut y = Mat::zeros(t, dim);
        for r in 0..t {
            for c in 0..dim {
                let xh = (x[(r, c)] - mean[(0, c)]) * inv_std[c];
                x_hat[(r, c)] = xh;
                y[(r, c)] = self.gamma.value[(0, c)] * xh + self.beta.value[(0, c)];
            }
        }
        self.cache = Some(NormCache { x_hat, inv_std });
        y
    }

    // Eval-mode normalization uses running statistics per row, so the
    // default batched path over the stacked matrix is exact.
    fn infer_into(&self, x: &Mat, out: &mut Mat, _scratch: &mut LayerScratch) {
        let dim = self.dim();
        assert_eq!(x.cols(), dim, "BatchNorm: expected {dim} features, got {}", x.cols());
        let t = x.rows();
        out.resize(t, dim);
        for r in 0..t {
            for c in 0..dim {
                let x_hat = (x[(r, c)] - self.running_mean[c]) / (self.running_var[c] + EPS).sqrt();
                out[(r, c)] = self.gamma.value[(0, c)] * x_hat + self.beta.value[(0, c)];
            }
        }
    }

    fn backward(&mut self, grad_out: &Mat) -> Mat {
        let dim = self.dim();
        match &self.cache {
            // Eval-mode (or one-row) forward: an affine map with constants.
            None => {
                let mut dx = Mat::zeros(grad_out.rows(), grad_out.cols());
                for r in 0..grad_out.rows() {
                    for c in 0..dim {
                        let x_hat_grad = grad_out[(r, c)] * self.gamma.value[(0, c)];
                        dx[(r, c)] = x_hat_grad / (self.running_var[c] + EPS).sqrt();
                        // Parameter grads still accumulate from x_hat which we
                        // can reconstruct only in train mode; eval backward is
                        // used for gradient flow only.
                        self.beta.grad[(0, c)] += grad_out[(r, c)];
                    }
                }
                dx
            }
            Some(cache) => {
                let t = grad_out.rows() as f32;
                let mut dx = Mat::zeros(grad_out.rows(), grad_out.cols());
                for c in 0..dim {
                    let gamma = self.gamma.value[(0, c)];
                    let mut sum_dy = 0.0;
                    let mut sum_dy_xhat = 0.0;
                    for r in 0..grad_out.rows() {
                        let dy = grad_out[(r, c)];
                        sum_dy += dy;
                        sum_dy_xhat += dy * cache.x_hat[(r, c)];
                    }
                    self.beta.grad[(0, c)] += sum_dy;
                    self.gamma.grad[(0, c)] += sum_dy_xhat;
                    for r in 0..grad_out.rows() {
                        let dy = grad_out[(r, c)];
                        let xh = cache.x_hat[(r, c)];
                        dx[(r, c)] =
                            gamma * cache.inv_std[c] / t * (t * dy - sum_dy - xh * sum_dy_xhat);
                    }
                }
                dx
            }
        }
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }

    fn name(&self) -> &'static str {
        "BatchNorm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_gradients_mode;

    #[test]
    fn train_forward_normalizes_each_feature() {
        let mut l = BatchNorm::new(2);
        let x = Mat::from_rows(&[&[1., 10.], &[2., 20.], &[3., 30.], &[4., 40.]]);
        let y = l.forward(&x, Mode::Train);
        for c in 0..2 {
            let mean: f32 = (0..4).map(|r| y[(r, c)]).sum::<f32>() / 4.0;
            let var: f32 = (0..4).map(|r| (y[(r, c)] - mean).powi(2)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5, "feature {c} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "feature {c} var {var}");
        }
    }

    #[test]
    fn eval_uses_running_statistics() {
        let mut l = BatchNorm::new(1);
        let x = Mat::from_rows(&[&[4.0], &[6.0]]);
        // Drive running stats toward the batch stats.
        for _ in 0..200 {
            let _ = l.forward(&x, Mode::Train);
        }
        let y = l.forward(&Mat::from_rows(&[&[5.0]]), Mode::Eval);
        // 5.0 is the mean of the training data, so output ≈ β = 0.
        assert!(y[(0, 0)].abs() < 0.1, "got {}", y[(0, 0)]);
    }

    #[test]
    fn train_gradients_match_numerical() {
        let mut l = BatchNorm::new(3);
        // Fix running stats so repeated forwards during FD stay consistent:
        // momentum 0 freezes them.
        l.momentum = 0.0;
        let x = Mat::from_rows(&[&[0.5, -1.0, 2.0], &[1.5, 0.0, -0.5], &[-0.7, 0.3, 0.9]]);
        check_layer_gradients_mode(&mut l, &x, 5e-2, Mode::Train);
    }

    #[test]
    fn single_row_window_falls_back_to_running_stats() {
        let mut l = BatchNorm::new(2);
        let y = l.forward(&Mat::from_rows(&[&[1.0, 2.0]]), Mode::Train);
        assert_eq!(y.shape(), (1, 2));
        assert!(y.as_slice().iter().all(|v| v.is_finite()));
    }
}
