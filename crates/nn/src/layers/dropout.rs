//! Inverted dropout regularization.

use crate::layers::{LayerScratch, Mode, SeqLayer};
use crate::mat::Mat;
use crate::param::Param;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Inverted dropout: during training each element is zeroed with probability
/// `rate` and survivors are scaled by `1 / (1 - rate)` so the expected
/// activation is unchanged. During evaluation the layer is the identity.
#[derive(Debug)]
pub struct Dropout {
    rate: f32,
    rng: SmallRng,
    mask: Option<Mat>,
}

impl Dropout {
    /// Creates a dropout layer.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not within `[0, 1)`.
    pub fn new(rate: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&rate), "dropout rate must be in [0,1), got {rate}");
        Self { rate, rng: SmallRng::seed_from_u64(seed), mask: None }
    }

    /// The configured drop probability.
    pub fn rate(&self) -> f32 {
        self.rate
    }
}

impl SeqLayer for Dropout {
    fn forward(&mut self, x: &Mat, mode: Mode) -> Mat {
        match mode {
            Mode::Eval => {
                self.mask = None;
                x.clone()
            }
            Mode::Train => {
                let keep = 1.0 - self.rate;
                let scale = 1.0 / keep;
                let mask = Mat::from_vec(
                    x.rows(),
                    x.cols(),
                    (0..x.len())
                        .map(|_| if self.rng.gen::<f32>() < keep { scale } else { 0.0 })
                        .collect(),
                );
                let y = x.hadamard(&mask);
                self.mask = Some(mask);
                y
            }
        }
    }

    fn infer_into(&self, x: &Mat, out: &mut Mat, _scratch: &mut LayerScratch) {
        // Inference-mode dropout is the identity (batch-safe as-is).
        out.copy_from(x);
    }

    fn backward(&mut self, grad_out: &Mat) -> Mat {
        match &self.mask {
            Some(mask) => grad_out.hadamard(mask),
            None => grad_out.clone(),
        }
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn name(&self) -> &'static str {
        "Dropout"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let mut l = Dropout::new(0.5, 1);
        let x = Mat::full(3, 3, 2.0);
        assert_eq!(l.forward(&x, Mode::Eval), x);
        assert_eq!(l.backward(&x), x);
    }

    #[test]
    fn train_mode_zeroes_roughly_rate_fraction() {
        let mut l = Dropout::new(0.5, 42);
        let x = Mat::full(100, 100, 1.0);
        let y = l.forward(&x, Mode::Train);
        let zeros = y.as_slice().iter().filter(|&&v| v == 0.0).count();
        let frac = zeros as f32 / 10_000.0;
        assert!((0.45..0.55).contains(&frac), "zero fraction {frac} not near 0.5");
        // Survivors are scaled by 1/keep.
        assert!(y.as_slice().iter().all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
    }

    #[test]
    fn backward_uses_same_mask_as_forward() {
        let mut l = Dropout::new(0.3, 7);
        let x = Mat::full(4, 4, 1.0);
        let y = l.forward(&x, Mode::Train);
        let g = l.backward(&Mat::full(4, 4, 1.0));
        // Gradient is zero exactly where the forward output was zeroed.
        for (a, b) in y.as_slice().iter().zip(g.as_slice().iter()) {
            assert_eq!(*a == 0.0, *b == 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "dropout rate")]
    fn rejects_rate_of_one() {
        let _ = Dropout::new(1.0, 0);
    }
}
