//! Weight initialization schemes.
//!
//! All initializers take an explicit RNG so training runs are fully
//! reproducible from a seed.

use crate::mat::Mat;
use rand::Rng;

/// Glorot/Xavier uniform initialization: `U(-l, l)` with
/// `l = sqrt(6 / (fan_in + fan_out))`. Suited to tanh/sigmoid gates (LSTM).
pub fn xavier_uniform(rng: &mut impl Rng, rows: usize, cols: usize) -> Mat {
    let limit = (6.0 / (rows + cols) as f32).sqrt();
    uniform(rng, rows, cols, limit)
}

/// He/Kaiming uniform initialization: `U(-l, l)` with `l = sqrt(6 / fan_in)`.
/// Suited to ReLU layers (Dense, Conv1d).
pub fn he_uniform(rng: &mut impl Rng, fan_in: usize, rows: usize, cols: usize) -> Mat {
    let limit = (6.0 / fan_in.max(1) as f32).sqrt();
    uniform(rng, rows, cols, limit)
}

/// Uniform initialization on `[-limit, limit]`.
pub fn uniform(rng: &mut impl Rng, rows: usize, cols: usize, limit: f32) -> Mat {
    let data = (0..rows * cols).map(|_| rng.gen_range(-limit..=limit)).collect();
    Mat::from_vec(rows, cols, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_respects_limit() {
        let mut rng = SmallRng::seed_from_u64(7);
        let m = xavier_uniform(&mut rng, 10, 20);
        let limit = (6.0 / 30.0_f32).sqrt();
        assert!(m.as_slice().iter().all(|&x| x.abs() <= limit));
        assert_eq!(m.shape(), (10, 20));
    }

    #[test]
    fn he_respects_limit() {
        let mut rng = SmallRng::seed_from_u64(7);
        let m = he_uniform(&mut rng, 10, 10, 4);
        let limit = (6.0 / 10.0_f32).sqrt();
        assert!(m.as_slice().iter().all(|&x| x.abs() <= limit));
    }

    #[test]
    fn seeded_init_is_deterministic() {
        let a = xavier_uniform(&mut SmallRng::seed_from_u64(42), 4, 4);
        let b = xavier_uniform(&mut SmallRng::seed_from_u64(42), 4, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn init_is_not_constant() {
        let m = xavier_uniform(&mut SmallRng::seed_from_u64(1), 8, 8);
        let first = m.as_slice()[0];
        assert!(m.as_slice().iter().any(|&x| x != first));
    }
}
