//! Blocked, cache-tiled f32 GEMM kernels — the one compute substrate every
//! matrix product in the workspace routes through.
//!
//! Three contraction variants cover everything the layers need:
//!
//! * [`gemm_ab`] — `C = A·B` (forward passes: dense, LSTM gate projection,
//!   im2col convolution),
//! * [`gemm_abt`] — `C = A·Bᵀ` (backward input gradients: `dX = dY·Wᵀ`),
//! * [`gemm_atb`] — `C = Aᵀ·B` (backward weight gradients: `dW = Xᵀ·dY`).
//!
//! Each has a naive reference twin ([`naive_ab`], [`naive_abt`],
//! [`naive_atb`]) that is the *literal* pre-kernel-layer triple loop; the
//! proptest suite (`tests/gemm_props.rs`) pins every backend to the
//! references **bit-for-bit**.
//!
//! # The accumulation-order contract
//!
//! Every output element is produced by *exactly* the same sequence of IEEE
//! operations as the historical `Mat` loops:
//!
//! * `C[i][j]` accumulates `A[i][k]·B[k][j]` terms in **ascending k**, in a
//!   single serial chain starting from `0.0` — tiling over `k` keeps the
//!   running sum resident (registers within a panel, the output buffer
//!   across panels), never a per-panel partial that is re-associated later.
//! * `AB` and `AᵀB` **skip** terms whose A-element compares equal to `0.0`
//!   (the historical sparse shortcut — ReLU activations and im2col padding
//!   make exact zeros common); `ABᵀ` never skips. Skipping is semantic, not
//!   just fast: it suppresses `0·inf → NaN` exactly where the old code did.
//!
//! Float addition is not associative, so this contract is what lets the
//! repo's equivalence tests (`props_cross_crate`, `serve_equivalence`,
//! train/infer agreement) keep using `assert_eq!` with no epsilon.
//! Vectorizing across *independent* output elements and reusing loaded
//! operands is fair game; reassociating within one element is not.
//!
//! # Backends and runtime dispatch
//!
//! Two implementations satisfy the contract:
//!
//! * the **scalar** cache-tiled kernels (the universal fallback, and the
//!   executable specification of the tiling scheme below), and
//! * **SIMD** microkernels (AVX2 on x86_64, NEON on aarch64) that
//!   vectorize **across output columns**: one vector register holds 8 (AVX2)
//!   or 4 (NEON) *adjacent output elements of the same row*, so each lane
//!   carries exactly one element's serial ascending-k chain. The broadcast
//!   A element is uniform across the vector, which keeps the zero-skip
//!   predicate uniform per k step, and every update is a separate IEEE
//!   multiply then add (`mul_ps`/`add_ps`, `vmulq`/`vaddq`) — **never FMA**,
//!   whose single rounding would diverge from the scalar chain.
//!
//! The backend is picked once, on first use, through a function-pointer
//! dispatch table: the `GEMM_BACKEND` environment variable
//! (`auto`/`scalar`/`simd`) or a [`set_gemm_backend`] call requests a
//! [`GemmBackend`], runtime feature detection
//! (`is_x86_feature_detected!("avx2")` / aarch64 `neon`) resolves it to a
//! [`GemmIsa`], and a forced `Simd` silently falls back to scalar when the
//! ISA is absent (so a CI matrix can force both paths everywhere).
//! [`gemm_backend_label`] renders the resolution for bench/fleet headers,
//! and the `gemm_*_with` entry points run one explicit backend without
//! touching the global dispatch (how tests compare backends race-free).
//!
//! # Tiling scheme
//!
//! `AB` / `AᵀB`: `for k-panel (KC) → for col-block (NC, packed B panel once
//! column-blocked) → for row-quad (MR) → fused microkernel`. The
//! microkernel advances MR=4 output rows through the panel at once — every
//! loaded B row is reused four times, the four output rows stay resident in
//! L1, and the zero-skip check is hoisted to one branch per k step
//! (amortized over `4·n` multiply-adds) with a per-row fallback when a zero
//! actually occurs. B panels are packed into contiguous `kc × NC` strips
//! only when the product is genuinely column-blocked (`n > NC`); below
//! that — every shape this pipeline multiplies — the row-major panel is
//! already contiguous and packing would be a pure copy tax.
//!
//! `ABᵀ`: B rows become output columns, so the panel *is* packed (k-major
//! strips as wide as the backend's vector: 4 scalar/NEON, 8 AVX2); the
//! microkernel holds an `MR×width` register tile whose independent
//! accumulator chains per row break the serial-dependency latency wall of
//! the naive one-dot-product-at-a-time loop.
//! Row tails (`m % MR`) and short products (`m < MR`, e.g. the
//! per-timestep LSTM recurrence) run the reference row loop over the same
//! panels.
//!
//! # Scratch ownership
//!
//! Packing needs a buffer; the kernels never allocate one behind the
//! caller's back. Every entry point takes a caller-owned [`GemmScratch`]
//! that grows to a high-water mark and is reused — layers pass the one
//! inside their [`crate::layers::LayerScratch`] (inference) or their own
//! training scratch, and the `Mat` convenience wrappers fall back to a
//! thread-local instance so ad-hoc callers stay allocation-free in steady
//! state too. The packed region is **64-byte aligned** so the SIMD
//! backends' k-major `ABᵀ` strips can use aligned vector loads.

use crate::mat::Mat;
use std::sync::atomic::{AtomicU8, Ordering};

pub mod int8;

/// Rows per register tile (A rows processed together by the microkernel).
pub const MR: usize = 4;
/// k-panel depth: B rows kept hot (and packed, once column-blocked) per
/// outer iteration.
pub const KC: usize = 256;
/// Column-block width: above this, B panels are packed into contiguous
/// `kc × NC` strips so the microkernel never strides a huge row. At or
/// below it, the row-major panel is already contiguous enough and is
/// consumed in place (packing would be a pure copy tax — every shape the
/// pipeline actually multiplies lands here).
pub const NC: usize = 512;

/// Caller-owned packing scratch for the tiled kernels.
///
/// Holds the packed B panel (at most `KC × NC` floats for `AB`/`AᵀB`,
/// `KC × width·⌈n/width⌉` for `ABᵀ`), carved out of one buffer at a
/// 64-byte-aligned offset so SIMD backends can use aligned loads on packed
/// strips. Reusable across calls, across differently shaped products, and
/// across backends; all growth is amortized, so steady-state kernel calls
/// perform no heap allocation.
#[derive(Debug, Default, Clone)]
pub struct GemmScratch {
    raw: Vec<f32>,
}

/// Alignment (bytes) of the packed region — one cache line, and a multiple
/// of every vector width the SIMD backends load.
const PACK_ALIGN: usize = 64;

impl GemmScratch {
    /// Ensures capacity for `len` packed floats and returns the buffer,
    /// starting at a 64-byte-aligned offset.
    fn packed(&mut self, len: usize) -> &mut [f32] {
        const PAD: usize = PACK_ALIGN / size_of::<f32>();
        if self.raw.len() < len + PAD {
            self.raw.resize(len + PAD, 0.0);
        }
        let off = self.raw.as_ptr().align_offset(PACK_ALIGN);
        debug_assert!(off < PAD, "aligning a 4-byte-aligned base needs < {PAD} elements");
        &mut self.raw[off..off + len]
    }
}

// ---------------------------------------------------------------------------
// Backend selection: requested backend -> resolved ISA -> dispatch table.
// ---------------------------------------------------------------------------

/// Requested GEMM backend (what the caller or environment asks for).
///
/// `Auto` (the default) uses the best SIMD ISA the host supports, falling
/// back to the scalar tiles; `Scalar` and `Simd` force one side so tests
/// and CI can exercise both paths. A forced `Simd` on a host without a
/// supported ISA resolves to scalar (graceful skip) — check [`simd_isa`]
/// to tell the difference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GemmBackend {
    /// Runtime detection: SIMD when available, scalar otherwise.
    #[default]
    Auto,
    /// Always the scalar cache-tiled kernels.
    Scalar,
    /// The SIMD microkernels when the ISA is present; scalar fallback.
    Simd,
}

/// The instruction set a GEMM call actually executes with (the *resolved*
/// side of [`GemmBackend`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GemmIsa {
    /// Scalar cache-tiled kernels (every host).
    Scalar,
    /// AVX2 256-bit microkernels (x86_64, runtime-detected).
    Avx2,
    /// NEON 128-bit microkernels (aarch64, runtime-detected).
    Neon,
}

impl GemmIsa {
    /// Lower-case name for headers and JSON summaries.
    pub fn name(self) -> &'static str {
        match self {
            GemmIsa::Scalar => "scalar",
            GemmIsa::Avx2 => "avx2",
            GemmIsa::Neon => "neon",
        }
    }
}

/// One GEMM variant entry in the dispatch table: `(m, k, n, a, b, out,
/// scratch)` with the layout documented on the public wrapper.
type GemmFn = fn(usize, usize, usize, &[f32], &[f32], &mut [f32], &mut GemmScratch);

/// The per-ISA dispatch table: one function pointer per contraction
/// variant. Resolved once (first GEMM call or [`set_gemm_backend`]) and
/// then read lock-free on every call.
struct Dispatch {
    ab: GemmFn,
    abt: GemmFn,
    atb: GemmFn,
}

static SCALAR_TABLE: Dispatch = Dispatch { ab: scalar_ab, abt: scalar_abt, atb: scalar_atb };
#[cfg(target_arch = "x86_64")]
static AVX2_TABLE: Dispatch = Dispatch { ab: avx2_ab, abt: avx2_abt, atb: avx2_atb };
#[cfg(target_arch = "aarch64")]
static NEON_TABLE: Dispatch = Dispatch { ab: neon_ab, abt: neon_abt, atb: neon_atb };

/// Resolved ISA: 0 = unresolved, otherwise `encode_isa`.
static ACTIVE_ISA: AtomicU8 = AtomicU8::new(0);
/// Last requested backend (`GemmBackend` discriminant + 1) for the label.
static REQUESTED: AtomicU8 = AtomicU8::new(0);
/// Where the request came from, for the label.
static SOURCE: AtomicU8 = AtomicU8::new(SRC_DEFAULT);

const SRC_DEFAULT: u8 = 0;
const SRC_ENV: u8 = 1;
const SRC_API: u8 = 2;

fn encode_isa(isa: GemmIsa) -> u8 {
    match isa {
        GemmIsa::Scalar => 1,
        GemmIsa::Avx2 => 2,
        GemmIsa::Neon => 3,
    }
}

// lint: hot-path
fn decode_isa(v: u8) -> GemmIsa {
    match v {
        1 => GemmIsa::Scalar,
        2 => GemmIsa::Avx2,
        3 => GemmIsa::Neon,
        // lint: allow(panic, reason = "encode/decode round-trip over ACTIVE_ISA; only encoded values are ever stored")
        _ => unreachable!("ACTIVE_ISA only ever stores encoded ISAs"),
    }
}

/// The SIMD ISA this host supports (runtime feature detection), regardless
/// of any override. `None` on hosts with neither AVX2 nor NEON — there the
/// scalar tiles are the only backend and `Simd` requests fall back.
// lint: hot-path
pub fn simd_isa() -> Option<GemmIsa> {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return Some(GemmIsa::Avx2);
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        if std::arch::is_aarch64_feature_detected!("neon") {
            return Some(GemmIsa::Neon);
        }
    }
    None
}

/// Installs `request` as the process-wide GEMM backend and returns the ISA
/// it resolved to. Intended for startup and tests; concurrent GEMM calls
/// keep working (dispatch is an atomic read) but may straddle the switch.
pub fn set_gemm_backend(request: GemmBackend) -> GemmIsa {
    install(request, SRC_API)
}

/// The currently active ISA, resolving the backend on first use: an
/// explicit [`set_gemm_backend`] wins, then the `GEMM_BACKEND` environment
/// variable (`auto`/`scalar`/`simd`), then auto-detection.
// lint: hot-path
pub fn active_gemm_isa() -> GemmIsa {
    match ACTIVE_ISA.load(Ordering::Acquire) {
        // lint: allow(hot-path, reason = "one-time OnceLock initialisation of the dispatch choice, not steady-state work")
        0 => resolve_from_env(),
        v => decode_isa(v),
    }
}

/// One-line description of the dispatch resolution — the ISA each kernel
/// family (f32, int8) resolved to plus the effective override — for bench
/// and fleet headers, e.g. `f32 avx2 / int8 avx2 (auto-detected)` or
/// `f32 scalar / int8 scalar (forced by GEMM_BACKEND=scalar)`. The two
/// dtypes resolve from the *same* backend request but are reported
/// separately: with two kernel families a single ISA name would be
/// ambiguous the moment their hardware requirements diverge.
pub fn gemm_backend_label() -> String {
    let isa = active_gemm_isa();
    let i8_isa = int8::active_gemm_i8_isa();
    let req = match REQUESTED.load(Ordering::Relaxed) {
        1 => GemmBackend::Auto,
        2 => GemmBackend::Scalar,
        3 => GemmBackend::Simd,
        _ => GemmBackend::Auto,
    };
    let via = match SOURCE.load(Ordering::Relaxed) {
        SRC_ENV => "GEMM_BACKEND",
        SRC_API => "set_gemm_backend",
        _ => "default",
    };
    let how = match (req, isa) {
        (GemmBackend::Auto, GemmIsa::Scalar) => "auto: no SIMD ISA detected".to_string(),
        (GemmBackend::Auto, _) => "auto-detected".to_string(),
        (GemmBackend::Simd, GemmIsa::Scalar) => {
            format!("simd requested by {via}, ISA unavailable — scalar fallback")
        }
        (GemmBackend::Scalar, _) | (GemmBackend::Simd, _) => format!("forced by {via}"),
    };
    format!("f32 {} / int8 {} ({how})", isa.name(), i8_isa.name())
}

fn resolve_from_env() -> GemmIsa {
    let (request, src) = match std::env::var("GEMM_BACKEND").as_deref() {
        Ok("scalar") => (GemmBackend::Scalar, SRC_ENV),
        Ok("simd") => (GemmBackend::Simd, SRC_ENV),
        Ok("auto") => (GemmBackend::Auto, SRC_ENV),
        _ => (GemmBackend::Auto, SRC_DEFAULT),
    };
    install(request, src)
}

fn install(request: GemmBackend, src: u8) -> GemmIsa {
    let isa = match request {
        GemmBackend::Scalar => GemmIsa::Scalar,
        GemmBackend::Auto | GemmBackend::Simd => simd_isa().unwrap_or(GemmIsa::Scalar),
    };
    let req_code = match request {
        GemmBackend::Auto => 1,
        GemmBackend::Scalar => 2,
        GemmBackend::Simd => 3,
    };
    REQUESTED.store(req_code, Ordering::Relaxed);
    SOURCE.store(src, Ordering::Relaxed);
    ACTIVE_ISA.store(encode_isa(isa), Ordering::Release);
    isa
}

/// Dispatch table for `isa`.
///
/// # Panics
///
/// Panics if `isa` is not compiled into this binary (wrong architecture).
// lint: hot-path
fn isa_table(isa: GemmIsa) -> &'static Dispatch {
    match isa {
        GemmIsa::Scalar => &SCALAR_TABLE,
        #[cfg(target_arch = "x86_64")]
        GemmIsa::Avx2 => &AVX2_TABLE,
        #[cfg(target_arch = "aarch64")]
        GemmIsa::Neon => &NEON_TABLE,
        #[allow(unreachable_patterns)] // reachable only for foreign-arch ISAs
        // lint: allow(panic, reason = "foreign-arch ISA arm; dispatch only selects backends the detector verified on this CPU")
        other => panic!("GEMM backend {other:?} is not available on this architecture"),
    }
}

/// Asserts `isa` actually runs on this host (compiled in *and* detected).
// lint: hot-path
fn assert_isa_available(isa: GemmIsa) {
    if isa != GemmIsa::Scalar && simd_isa() != Some(isa) {
        panic!("GEMM backend {isa:?} is not available on this host (see kernels::simd_isa)");
    }
}

// ---------------------------------------------------------------------------
// Naive reference kernels — the literal pre-kernel-layer `Mat` loops.
// ---------------------------------------------------------------------------

/// Reference `C = A·B`: `a` is `(m, k)`, `b` is `(k, n)`, `out` is `(m, n)`,
/// all row-major. Skips A-elements equal to `0.0`. Overwrites `out`.
///
/// # Panics
///
/// Panics if a slice length does not match its dimensions.
pub fn naive_ab(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    check_dims(m, k, n, a.len(), b.len(), out.len(), k * n);
    out.fill(0.0);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (kk, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = &b[kk * n..(kk + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                *o += av * bv;
            }
        }
    }
}

/// Reference `C = A·Bᵀ`: `a` is `(m, k)`, `b` is `(n, k)`, `out` is
/// `(m, n)`. Each element is one serial dot product; no zero-skip.
/// Overwrites `out`.
///
/// # Panics
///
/// Panics if a slice length does not match its dimensions.
pub fn naive_abt(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    check_dims(m, k, n, a.len(), b.len(), out.len(), n * k);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0;
            for (&av, &bv) in a_row.iter().zip(b_row.iter()) {
                acc += av * bv;
            }
            out[i * n + j] = acc;
        }
    }
}

/// Reference `C = Aᵀ·B`: `a` is `(k, m)`, `b` is `(k, n)`, `out` is
/// `(m, n)`. Skips A-elements equal to `0.0`. Overwrites `out`.
///
/// # Panics
///
/// Panics if a slice length does not match its dimensions.
pub fn naive_atb(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    check_dims(m, k, n, a.len(), b.len(), out.len(), k * n);
    out.fill(0.0);
    for kk in 0..k {
        let a_row = &a[kk * m..(kk + 1) * m];
        let b_row = &b[kk * n..(kk + 1) * n];
        for (i, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let out_row = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                *o += av * bv;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Dispatching entry points.
// ---------------------------------------------------------------------------

/// Tiled `C = A·B` (see [`naive_ab`] for the layout and semantics) on the
/// active backend. Bit-identical to the reference on every backend; uses
/// `scratch` for the packed B panel.
///
/// # Panics
///
/// Panics if a slice length does not match its dimensions.
// lint: hot-path
pub fn gemm_ab(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    scratch: &mut GemmScratch,
) {
    check_dims(m, k, n, a.len(), b.len(), out.len(), k * n);
    (isa_table(active_gemm_isa()).ab)(m, k, n, a, b, out, scratch);
}

/// Tiled `C = A·Bᵀ` (see [`naive_abt`] for the layout and semantics) on the
/// active backend. Bit-identical to the reference on every backend; uses
/// `scratch` for the packed Bᵀ panel.
///
/// # Panics
///
/// Panics if a slice length does not match its dimensions.
// lint: hot-path
pub fn gemm_abt(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    scratch: &mut GemmScratch,
) {
    check_dims(m, k, n, a.len(), b.len(), out.len(), n * k);
    (isa_table(active_gemm_isa()).abt)(m, k, n, a, b, out, scratch);
}

/// Tiled `C = Aᵀ·B` (see [`naive_atb`] for the layout and semantics) on the
/// active backend. Bit-identical to the reference on every backend; uses
/// `scratch` for the packed B panel.
///
/// # Panics
///
/// Panics if a slice length does not match its dimensions.
// lint: hot-path
pub fn gemm_atb(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    scratch: &mut GemmScratch,
) {
    check_dims(m, k, n, a.len(), b.len(), out.len(), k * n);
    (isa_table(active_gemm_isa()).atb)(m, k, n, a, b, out, scratch);
}

/// [`gemm_ab`] on one explicit backend, ignoring the global dispatch — how
/// tests and benches compare backends without racing on process state.
///
/// # Panics
///
/// Panics on dimension mismatch or if `isa` is unavailable on this host.
#[allow(clippy::too_many_arguments)] // a GEMM call + backend is inherently this wide
                                     // lint: hot-path
pub fn gemm_ab_with(
    isa: GemmIsa,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    scratch: &mut GemmScratch,
) {
    check_dims(m, k, n, a.len(), b.len(), out.len(), k * n);
    assert_isa_available(isa);
    (isa_table(isa).ab)(m, k, n, a, b, out, scratch);
}

/// [`gemm_abt`] on one explicit backend, ignoring the global dispatch.
///
/// # Panics
///
/// Panics on dimension mismatch or if `isa` is unavailable on this host.
#[allow(clippy::too_many_arguments)] // a GEMM call + backend is inherently this wide
                                     // lint: hot-path
pub fn gemm_abt_with(
    isa: GemmIsa,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    scratch: &mut GemmScratch,
) {
    check_dims(m, k, n, a.len(), b.len(), out.len(), n * k);
    assert_isa_available(isa);
    (isa_table(isa).abt)(m, k, n, a, b, out, scratch);
}

/// [`gemm_atb`] on one explicit backend, ignoring the global dispatch.
///
/// # Panics
///
/// Panics on dimension mismatch or if `isa` is unavailable on this host.
#[allow(clippy::too_many_arguments)] // a GEMM call + backend is inherently this wide
                                     // lint: hot-path
pub fn gemm_atb_with(
    isa: GemmIsa,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    scratch: &mut GemmScratch,
) {
    check_dims(m, k, n, a.len(), b.len(), out.len(), k * n);
    assert_isa_available(isa);
    (isa_table(isa).atb)(m, k, n, a, b, out, scratch);
}

// ---------------------------------------------------------------------------
// Scalar tiled kernels (the universal fallback).
// ---------------------------------------------------------------------------

/// Scalar tiled `C = A·B`; dimension checks live in the public wrappers.
fn scalar_ab(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    scratch: &mut GemmScratch,
) {
    out.fill(0.0);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    for pc in (0..k).step_by(KC) {
        let kc = KC.min(k - pc);
        for jc in (0..n).step_by(NC) {
            let nc = NC.min(n - jc);
            // Pack only when actually column-blocked; otherwise consume the
            // row-major panel in place (see [`NC`]).
            let (panel, stride): (&[f32], usize) = if nc < n {
                let packed = scratch.packed(kc * nc);
                pack_panel(b, n, pc, jc, kc, nc, packed);
                (&*packed, nc)
            } else {
                (&b[pc * n..], n)
            };
            for i0 in (0..m).step_by(MR) {
                let mr = MR.min(m - i0);
                let out_block = &mut out[i0 * n + jc..];
                if mr == MR {
                    let a_rows = [
                        &a[i0 * k + pc..i0 * k + pc + kc],
                        &a[(i0 + 1) * k + pc..(i0 + 1) * k + pc + kc],
                        &a[(i0 + 2) * k + pc..(i0 + 2) * k + pc + kc],
                        &a[(i0 + 3) * k + pc..(i0 + 3) * k + pc + kc],
                    ];
                    quad_rows(a_rows, panel, stride, out_block, n, nc, kc);
                } else {
                    for r in 0..mr {
                        let a_row = &a[(i0 + r) * k + pc..(i0 + r) * k + pc + kc];
                        axpy_row(a_row, panel, stride, &mut out_block[r * n..r * n + nc]);
                    }
                }
            }
        }
    }
}

/// Scalar tiled `C = A·Bᵀ`; dimension checks live in the public wrappers.
fn scalar_abt(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    scratch: &mut GemmScratch,
) {
    out.fill(0.0);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    // B rows become output columns: pack k-major strips of ABT_NR B-rows so
    // the k-loop reads one contiguous line regardless of the B row stride.
    const ABT_NR: usize = 4;
    let strips = n.div_ceil(ABT_NR);
    for pc in (0..k).step_by(KC) {
        let kc = KC.min(k - pc);
        let packed = scratch.packed(strips * kc * ABT_NR);
        // packed[s][kk][c] = B[s*ABT_NR + c][pc + kk] (zero-padded strip).
        for s in 0..strips {
            let j0 = s * ABT_NR;
            let nr = ABT_NR.min(n - j0);
            let dst = &mut packed[s * kc * ABT_NR..(s + 1) * kc * ABT_NR];
            for kk in 0..kc {
                for c in 0..ABT_NR {
                    dst[kk * ABT_NR + c] = if c < nr { b[(j0 + c) * k + pc + kk] } else { 0.0 };
                }
            }
        }
        for i0 in (0..m).step_by(MR) {
            let mr = MR.min(m - i0);
            for s in 0..strips {
                let j0 = s * ABT_NR;
                let nr = ABT_NR.min(n - j0);
                let bp = &packed[s * kc * ABT_NR..(s + 1) * kc * ABT_NR];
                // MR×ABT_NR accumulator tile, loaded from C so the serial
                // k-chain continues across panels.
                let mut acc = [[0.0f32; ABT_NR]; MR];
                for (r, acc_row) in acc.iter_mut().enumerate().take(mr) {
                    for (c, slot) in acc_row.iter_mut().enumerate().take(nr) {
                        *slot = out[(i0 + r) * n + j0 + c];
                    }
                }
                for kk in 0..kc {
                    let bv = &bp[kk * ABT_NR..(kk + 1) * ABT_NR];
                    for (r, acc_row) in acc.iter_mut().enumerate().take(mr) {
                        let av = a[(i0 + r) * k + pc + kk];
                        for (slot, &bvv) in acc_row.iter_mut().zip(bv.iter()) {
                            *slot += av * bvv;
                        }
                    }
                }
                for (r, acc_row) in acc.iter().enumerate().take(mr) {
                    for (c, &slot) in acc_row.iter().enumerate().take(nr) {
                        out[(i0 + r) * n + j0 + c] = slot;
                    }
                }
            }
        }
    }
}

/// Scalar tiled `C = Aᵀ·B`; dimension checks live in the public wrappers.
fn scalar_atb(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    scratch: &mut GemmScratch,
) {
    out.fill(0.0);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    for pc in (0..k).step_by(KC) {
        let kc = KC.min(k - pc);
        for jc in (0..n).step_by(NC) {
            let nc = NC.min(n - jc);
            let (panel, stride): (&[f32], usize) = if nc < n {
                let packed = scratch.packed(kc * nc);
                pack_panel(b, n, pc, jc, kc, nc, packed);
                (&*packed, nc)
            } else {
                (&b[pc * n..], n)
            };
            for i0 in (0..m).step_by(MR) {
                let mr = MR.min(m - i0);
                let out_block = &mut out[i0 * n + jc..];
                if mr == MR {
                    // The MR A-values of one k step sit contiguously in A's
                    // row `pc+kk` at column i0 — gathered per step below.
                    quad_cols(a, m, i0, pc, kc, panel, stride, out_block, n, nc);
                } else {
                    for r in 0..mr {
                        let out_row = &mut out_block[r * n..r * n + nc];
                        for kk in 0..kc {
                            let av = a[(pc + kk) * m + i0 + r];
                            if av == 0.0 {
                                continue;
                            }
                            let b_row = &panel[kk * stride..kk * stride + nc];
                            for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                                *o += av * bv;
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Packs the `kc × nc` sub-panel of row-major `b` (full width `n`) starting
/// at `(pc, jc)` into a contiguous `nc`-stride buffer.
fn pack_panel(b: &[f32], n: usize, pc: usize, jc: usize, kc: usize, nc: usize, packed: &mut [f32]) {
    for kk in 0..kc {
        let src = &b[(pc + kk) * n + jc..(pc + kk) * n + jc + nc];
        packed[kk * nc..kk * nc + nc].copy_from_slice(src);
    }
}

/// The shared quad microkernel body: advances four output rows through one
/// k-panel, re-using every loaded B row four times. `gather` supplies the
/// four A values of k step `kk` (the only thing that differs between the
/// `AB` and `AᵀB` variants). The common all-nonzero case runs one fused
/// branch-free update (four independent SIMD-friendly streams); any zero A
/// element falls back to per-row updates with the per-row skip, which is
/// the identical per-element operation sequence — this skip logic is
/// bit-exactness-critical and intentionally exists exactly once.
#[inline(always)]
fn quad_panel(
    gather: impl Fn(usize) -> [f32; MR],
    panel: &[f32],
    stride: usize,
    out_block: &mut [f32],
    n: usize,
    nc: usize,
    kc: usize,
) {
    let (o0, rest) = out_block.split_at_mut(n);
    let (o1, rest) = rest.split_at_mut(n);
    let (o2, rest) = rest.split_at_mut(n);
    let o3 = &mut rest[..nc];
    let (o0, o1, o2) = (&mut o0[..nc], &mut o1[..nc], &mut o2[..nc]);
    for kk in 0..kc {
        let [x0, x1, x2, x3] = gather(kk);
        let bv = &panel[kk * stride..kk * stride + nc];
        if x0 != 0.0 && x1 != 0.0 && x2 != 0.0 && x3 != 0.0 {
            for j in 0..nc {
                o0[j] += x0 * bv[j];
                o1[j] += x1 * bv[j];
                o2[j] += x2 * bv[j];
                o3[j] += x3 * bv[j];
            }
        } else {
            // Mixed zeros: per-row skips, same per-element sequence.
            for (o, x) in [(&mut *o0, x0), (&mut *o1, x1), (&mut *o2, x2), (&mut *o3, x3)] {
                if x == 0.0 {
                    continue;
                }
                for (oj, &bj) in o.iter_mut().zip(bv.iter()) {
                    *oj += x * bj;
                }
            }
        }
    }
}

/// [`quad_panel`] for `AB`: the four A values of k step `kk` come from four
/// row slices of A.
#[inline]
fn quad_rows(
    a_rows: [&[f32]; MR],
    panel: &[f32],
    stride: usize,
    out_block: &mut [f32],
    n: usize,
    nc: usize,
    kc: usize,
) {
    quad_panel(
        |kk| [a_rows[0][kk], a_rows[1][kk], a_rows[2][kk], a_rows[3][kk]],
        panel,
        stride,
        out_block,
        n,
        nc,
        kc,
    );
}

/// [`quad_panel`] for `AᵀB`: the four A values of k step `kk` sit
/// contiguously in A's row `pc+kk` at column `i0`.
#[allow(clippy::too_many_arguments)] // a GEMM tile is inherently this wide
#[inline]
fn quad_cols(
    a: &[f32],
    lda: usize,
    i0: usize,
    pc: usize,
    kc: usize,
    panel: &[f32],
    stride: usize,
    out_block: &mut [f32],
    n: usize,
    nc: usize,
) {
    quad_panel(
        |kk| {
            let av = &a[(pc + kk) * lda + i0..(pc + kk) * lda + i0 + MR];
            [av[0], av[1], av[2], av[3]]
        },
        panel,
        stride,
        out_block,
        n,
        nc,
        kc,
    );
}

/// Single-row panel update with the zero-skip: `out_row += Σ_k a_row[kk] ·
/// panel[kk]` — the reference operation sequence, used for row tails and
/// short-A products.
fn axpy_row(a_row: &[f32], panel: &[f32], stride: usize, out_row: &mut [f32]) {
    let nc = out_row.len();
    for (kk, &av) in a_row.iter().enumerate() {
        if av == 0.0 {
            continue;
        }
        let b_row = &panel[kk * stride..kk * stride + nc];
        for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
            *o += av * bv;
        }
    }
}

#[track_caller]
// lint: hot-path
fn check_dims(
    m: usize,
    k: usize,
    n: usize,
    a_len: usize,
    b_len: usize,
    out_len: usize,
    b_expect: usize,
) {
    assert_eq!(a_len, m * k, "gemm: A length {a_len} != {m}x{k}");
    assert_eq!(b_len, b_expect, "gemm: B length {b_len} does not match dims (k={k}, n={n})");
    assert_eq!(out_len, m * n, "gemm: C length {out_len} != {m}x{n}");
}

// ---------------------------------------------------------------------------
// AVX2 microkernels (x86_64): 8-wide across output columns.
// ---------------------------------------------------------------------------

/// Dispatch-table entry for AVX2 `AB`.
#[cfg(target_arch = "x86_64")]
fn avx2_ab(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    scratch: &mut GemmScratch,
) {
    // SAFETY: this entry is only reachable through a dispatch table / ISA
    // assertion that verified `is_x86_feature_detected!("avx2")`.
    unsafe { avx2::gemm_ab(m, k, n, a, b, out, scratch) }
}

/// Dispatch-table entry for AVX2 `ABᵀ`.
#[cfg(target_arch = "x86_64")]
fn avx2_abt(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    scratch: &mut GemmScratch,
) {
    // SAFETY: reachable only after runtime AVX2 detection (see `avx2_ab`).
    unsafe { avx2::gemm_abt(m, k, n, a, b, out, scratch) }
}

/// Dispatch-table entry for AVX2 `AᵀB`.
#[cfg(target_arch = "x86_64")]
fn avx2_atb(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    scratch: &mut GemmScratch,
) {
    // SAFETY: reachable only after runtime AVX2 detection (see `avx2_ab`).
    unsafe { avx2::gemm_atb(m, k, n, a, b, out, scratch) }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! AVX2 column-vectorized microkernels.
    //!
    //! One `__m256` holds 8 adjacent output columns of a single row; the
    //! broadcast A element is uniform across the vector, so each lane runs
    //! exactly the scalar kernels' per-element serial ascending-k chain and
    //! the zero-skip predicate stays uniform per k step. Updates are a
    //! separate `_mm256_mul_ps` then `_mm256_add_ps` — never FMA, whose
    //! fused rounding would diverge from the scalar chain. Column tails
    //! (`nc % 8`) run the identical scalar per-element update.

    use super::{pack_panel, GemmScratch, KC, MR, NC};
    use core::arch::x86_64::{
        __m256, _mm256_add_ps, _mm256_load_ps, _mm256_loadu_ps, _mm256_mul_ps, _mm256_set1_ps,
        _mm256_setzero_ps, _mm256_storeu_ps,
    };

    /// Output columns per vector register.
    const LANES: usize = 8;

    /// AVX2 tiled `C = A·B` — the scalar tiling scheme with the microkernel
    /// inner loops 8-wide across columns.
    ///
    /// # Safety
    ///
    /// AVX2 must be available at runtime; dimension checks are the public
    /// wrappers' job.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn gemm_ab(
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        scratch: &mut GemmScratch,
    ) {
        out.fill(0.0);
        if m == 0 || n == 0 || k == 0 {
            return;
        }
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            for jc in (0..n).step_by(NC) {
                let nc = NC.min(n - jc);
                if nc < n {
                    let packed = scratch.packed(kc * nc);
                    pack_panel(b, n, pc, jc, kc, nc, packed);
                    ab_panel(a, k, m, pc, kc, packed, nc, out, n, jc, nc);
                } else {
                    ab_panel(a, k, m, pc, kc, &b[pc * n..], n, out, n, jc, nc);
                }
            }
        }
    }

    /// AVX2 tiled `C = Aᵀ·B`.
    ///
    /// # Safety
    ///
    /// AVX2 must be available at runtime; dimension checks are the public
    /// wrappers' job.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn gemm_atb(
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        scratch: &mut GemmScratch,
    ) {
        out.fill(0.0);
        if m == 0 || n == 0 || k == 0 {
            return;
        }
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            for jc in (0..n).step_by(NC) {
                let nc = NC.min(n - jc);
                if nc < n {
                    let packed = scratch.packed(kc * nc);
                    pack_panel(b, n, pc, jc, kc, nc, packed);
                    atb_panel(a, m, pc, kc, packed, nc, out, n, jc, nc);
                } else {
                    atb_panel(a, m, pc, kc, &b[pc * n..], n, out, n, jc, nc);
                }
            }
        }
    }

    /// AVX2 tiled `C = A·Bᵀ`: k-major 8-wide packed strips (aligned loads)
    /// and an `MR×8` register accumulator tile.
    ///
    /// # Safety
    ///
    /// AVX2 must be available at runtime; dimension checks are the public
    /// wrappers' job.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn gemm_abt(
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        scratch: &mut GemmScratch,
    ) {
        out.fill(0.0);
        if m == 0 || n == 0 || k == 0 {
            return;
        }
        let strips = n.div_ceil(LANES);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            let packed = scratch.packed(strips * kc * LANES);
            // packed[s][kk][c] = B[s*LANES + c][pc + kk] (zero-padded strip);
            // pad lanes are discarded on writeback, so their values never
            // reach an output element.
            for s in 0..strips {
                let j0 = s * LANES;
                let nr = LANES.min(n - j0);
                let dst = &mut packed[s * kc * LANES..(s + 1) * kc * LANES];
                for kk in 0..kc {
                    for c in 0..LANES {
                        dst[kk * LANES + c] = if c < nr { b[(j0 + c) * k + pc + kk] } else { 0.0 };
                    }
                }
            }
            for i0 in (0..m).step_by(MR) {
                let mr = MR.min(m - i0);
                for s in 0..strips {
                    let j0 = s * LANES;
                    let nr = LANES.min(n - j0);
                    let bp = &packed[s * kc * LANES..(s + 1) * kc * LANES];
                    abt_tile(a, k, i0, mr, pc, kc, bp, out, n, j0, nr);
                }
            }
        }
    }

    /// One `mr × 8` `ABᵀ` accumulator tile: lanes continue their serial
    /// k-chains from `out` across k-panels, exactly like the scalar
    /// `MR×ABT_NR` tile.
    #[allow(clippy::too_many_arguments)] // a GEMM tile is inherently this wide
    #[target_feature(enable = "avx2")]
    fn abt_tile(
        a: &[f32],
        k: usize,
        i0: usize,
        mr: usize,
        pc: usize,
        kc: usize,
        bp: &[f32],
        out: &mut [f32],
        n: usize,
        j0: usize,
        nr: usize,
    ) {
        let mut acc = [_mm256_setzero_ps(); MR];
        for (r, slot) in acc.iter_mut().enumerate().take(mr) {
            *slot = load_row(&out[(i0 + r) * n + j0..], nr);
        }
        if mr == MR {
            for kk in 0..kc {
                // SAFETY: `bp` holds `kc * LANES` floats carved from the
                // 64-byte-aligned packing buffer at a strip offset that is a
                // multiple of 32 bytes, so `kk * LANES` is 32-byte aligned
                // and in bounds (kk < kc).
                let bv = unsafe { _mm256_load_ps(bp.as_ptr().add(kk * LANES)) };
                let base = pc + kk;
                acc[0] = _mm256_add_ps(acc[0], _mm256_mul_ps(_mm256_set1_ps(a[i0 * k + base]), bv));
                acc[1] = _mm256_add_ps(
                    acc[1],
                    _mm256_mul_ps(_mm256_set1_ps(a[(i0 + 1) * k + base]), bv),
                );
                acc[2] = _mm256_add_ps(
                    acc[2],
                    _mm256_mul_ps(_mm256_set1_ps(a[(i0 + 2) * k + base]), bv),
                );
                acc[3] = _mm256_add_ps(
                    acc[3],
                    _mm256_mul_ps(_mm256_set1_ps(a[(i0 + 3) * k + base]), bv),
                );
            }
        } else {
            for kk in 0..kc {
                // SAFETY: as above — aligned, in-bounds strip row.
                let bv = unsafe { _mm256_load_ps(bp.as_ptr().add(kk * LANES)) };
                for (r, slot) in acc.iter_mut().enumerate().take(mr) {
                    let xv = _mm256_set1_ps(a[(i0 + r) * k + pc + kk]);
                    *slot = _mm256_add_ps(*slot, _mm256_mul_ps(xv, bv));
                }
            }
        }
        for (r, slot) in acc.iter().enumerate().take(mr) {
            store_row(&mut out[(i0 + r) * n + j0..], nr, *slot);
        }
    }

    /// Loads `nr` floats (`nr <= 8`) into a vector, zero-padding the rest.
    #[target_feature(enable = "avx2")]
    fn load_row(row: &[f32], nr: usize) -> __m256 {
        if nr == LANES {
            // SAFETY: the caller's row slice holds at least LANES floats.
            unsafe { _mm256_loadu_ps(row.as_ptr()) }
        } else {
            let mut lane = [0.0f32; LANES];
            lane[..nr].copy_from_slice(&row[..nr]);
            // SAFETY: `lane` is LANES floats on the stack.
            unsafe { _mm256_loadu_ps(lane.as_ptr()) }
        }
    }

    /// Stores the first `nr` lanes (`nr <= 8`) of `v` into `row`.
    #[target_feature(enable = "avx2")]
    fn store_row(row: &mut [f32], nr: usize, v: __m256) {
        if nr == LANES {
            // SAFETY: the caller's row slice holds at least LANES floats.
            unsafe { _mm256_storeu_ps(row.as_mut_ptr(), v) };
        } else {
            let mut lane = [0.0f32; LANES];
            // SAFETY: `lane` is LANES floats on the stack.
            unsafe { _mm256_storeu_ps(lane.as_mut_ptr(), v) };
            row[..nr].copy_from_slice(&lane[..nr]);
        }
    }

    /// `AB` panel sweep: fused quads over full row-quads, skip-aware row
    /// updates for the `m % MR` tail — the scalar structure, 8-wide inside.
    #[allow(clippy::too_many_arguments)] // a GEMM tile is inherently this wide
    #[target_feature(enable = "avx2")]
    fn ab_panel(
        a: &[f32],
        k: usize,
        m: usize,
        pc: usize,
        kc: usize,
        panel: &[f32],
        stride: usize,
        out: &mut [f32],
        n: usize,
        jc: usize,
        nc: usize,
    ) {
        for i0 in (0..m).step_by(MR) {
            let mr = MR.min(m - i0);
            if mr == MR {
                let a_rows = [
                    &a[i0 * k + pc..i0 * k + pc + kc],
                    &a[(i0 + 1) * k + pc..(i0 + 1) * k + pc + kc],
                    &a[(i0 + 2) * k + pc..(i0 + 2) * k + pc + kc],
                    &a[(i0 + 3) * k + pc..(i0 + 3) * k + pc + kc],
                ];
                let o = quad_out_ptrs(out, i0, n, jc, nc);
                for kk in 0..kc {
                    let x = [a_rows[0][kk], a_rows[1][kk], a_rows[2][kk], a_rows[3][kk]];
                    quad_step(x, &panel[kk * stride..kk * stride + nc], o, nc);
                }
            } else {
                for r in 0..mr {
                    let a_row = &a[(i0 + r) * k + pc..(i0 + r) * k + pc + kc];
                    let orow = &mut out[(i0 + r) * n + jc..(i0 + r) * n + jc + nc];
                    axpy_row(a_row, panel, stride, orow);
                }
            }
        }
    }

    /// `AᵀB` panel sweep: identical to [`ab_panel`] except the four A
    /// values of k step `kk` sit contiguously in A's row `pc+kk` at column
    /// `i0` (`lda = m`).
    #[allow(clippy::too_many_arguments)] // a GEMM tile is inherently this wide
    #[target_feature(enable = "avx2")]
    fn atb_panel(
        a: &[f32],
        lda: usize,
        pc: usize,
        kc: usize,
        panel: &[f32],
        stride: usize,
        out: &mut [f32],
        n: usize,
        jc: usize,
        nc: usize,
    ) {
        let m = lda;
        for i0 in (0..m).step_by(MR) {
            let mr = MR.min(m - i0);
            if mr == MR {
                let o = quad_out_ptrs(out, i0, n, jc, nc);
                for kk in 0..kc {
                    let av = &a[(pc + kk) * lda + i0..(pc + kk) * lda + i0 + MR];
                    let x = [av[0], av[1], av[2], av[3]];
                    quad_step(x, &panel[kk * stride..kk * stride + nc], o, nc);
                }
            } else {
                for r in 0..mr {
                    let orow = &mut out[(i0 + r) * n + jc..(i0 + r) * n + jc + nc];
                    let op = orow.as_mut_ptr();
                    for kk in 0..kc {
                        let av = a[(pc + kk) * lda + i0 + r];
                        if av == 0.0 {
                            continue;
                        }
                        axpy_cols(av, &panel[kk * stride..kk * stride + nc], op, nc);
                    }
                }
            }
        }
    }

    /// Raw pointers to the four output rows of quad `i0` at column `jc`,
    /// each addressing `nc` valid floats.
    #[target_feature(enable = "avx2")]
    fn quad_out_ptrs(out: &mut [f32], i0: usize, n: usize, jc: usize, nc: usize) -> [*mut f32; MR] {
        // Bounds: row i0+3 exists (caller checked mr == MR) and jc+nc <= n.
        assert!((i0 + 3) * n + jc + nc <= out.len(), "quad rows out of bounds");
        let po = out.as_mut_ptr();
        // SAFETY: the assert above proves every offset (and the nc floats
        // after it) is inside `out`.
        unsafe {
            [
                po.add(i0 * n + jc),
                po.add((i0 + 1) * n + jc),
                po.add((i0 + 2) * n + jc),
                po.add((i0 + 3) * n + jc),
            ]
        }
    }

    /// One fused-quad k step: `o[r][0..nc] += x[r] * b_row`, all four `x`
    /// nonzero when called on the fast path; the mixed-zero fallback routes
    /// through [`axpy_cols`] per row. Same per-element sequence either way.
    #[target_feature(enable = "avx2")]
    fn quad_step(x: [f32; MR], b_row: &[f32], o: [*mut f32; MR], nc: usize) {
        if x[0] != 0.0 && x[1] != 0.0 && x[2] != 0.0 && x[3] != 0.0 {
            let xv = [
                _mm256_set1_ps(x[0]),
                _mm256_set1_ps(x[1]),
                _mm256_set1_ps(x[2]),
                _mm256_set1_ps(x[3]),
            ];
            let pb = b_row.as_ptr();
            let mut j = 0;
            while j + LANES <= nc {
                // SAFETY: j + LANES <= nc, `b_row` holds nc floats, and each
                // `o[r]` addresses nc valid floats (see `quad_out_ptrs`).
                unsafe {
                    let bv = _mm256_loadu_ps(pb.add(j));
                    for r in 0..MR {
                        let ov = _mm256_loadu_ps(o[r].add(j));
                        _mm256_storeu_ps(o[r].add(j), _mm256_add_ps(ov, _mm256_mul_ps(xv[r], bv)));
                    }
                }
                j += LANES;
            }
            while j < nc {
                // SAFETY: j < nc; same bounds as above.
                unsafe {
                    let bj = *pb.add(j);
                    for r in 0..MR {
                        *o[r].add(j) += x[r] * bj;
                    }
                }
                j += 1;
            }
        } else {
            // Mixed zeros: per-row skips, same per-element sequence.
            for r in 0..MR {
                if x[r] == 0.0 {
                    continue;
                }
                axpy_cols(x[r], b_row, o[r], nc);
            }
        }
    }

    /// Skip-aware row update over one k-panel: the reference
    /// `out_row += Σ_k a_row[kk] · panel[kk]` with the column loop 8-wide.
    #[target_feature(enable = "avx2")]
    fn axpy_row(a_row: &[f32], panel: &[f32], stride: usize, out_row: &mut [f32]) {
        let nc = out_row.len();
        let op = out_row.as_mut_ptr();
        for (kk, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            axpy_cols(av, &panel[kk * stride..kk * stride + nc], op, nc);
        }
    }

    /// `o[0..nc] += x * b_row[0..nc]`, 8 columns per step, scalar tail —
    /// separate multiply and add per lane, each lane one output element.
    #[target_feature(enable = "avx2")]
    fn axpy_cols(x: f32, b_row: &[f32], o: *mut f32, nc: usize) {
        debug_assert!(b_row.len() >= nc);
        let xv = _mm256_set1_ps(x);
        let pb = b_row.as_ptr();
        let mut j = 0;
        while j + LANES <= nc {
            // SAFETY: j + LANES <= nc and both pointers address nc valid
            // floats (the caller derived `o` from an nc-long row).
            unsafe {
                let bv = _mm256_loadu_ps(pb.add(j));
                let ov = _mm256_loadu_ps(o.add(j));
                _mm256_storeu_ps(o.add(j), _mm256_add_ps(ov, _mm256_mul_ps(xv, bv)));
            }
            j += LANES;
        }
        while j < nc {
            // SAFETY: j < nc; same bounds as above.
            unsafe { *o.add(j) += x * *pb.add(j) };
            j += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// NEON microkernels (aarch64): 4-wide across output columns.
// ---------------------------------------------------------------------------

/// Dispatch-table entry for NEON `AB`.
#[cfg(target_arch = "aarch64")]
fn neon_ab(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    scratch: &mut GemmScratch,
) {
    // SAFETY: this entry is only reachable through a dispatch table / ISA
    // assertion that verified `is_aarch64_feature_detected!("neon")`.
    unsafe { neon::gemm_ab(m, k, n, a, b, out, scratch) }
}

/// Dispatch-table entry for NEON `ABᵀ`.
#[cfg(target_arch = "aarch64")]
fn neon_abt(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    scratch: &mut GemmScratch,
) {
    // SAFETY: reachable only after runtime NEON detection (see `neon_ab`).
    unsafe { neon::gemm_abt(m, k, n, a, b, out, scratch) }
}

/// Dispatch-table entry for NEON `AᵀB`.
#[cfg(target_arch = "aarch64")]
fn neon_atb(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    scratch: &mut GemmScratch,
) {
    // SAFETY: reachable only after runtime NEON detection (see `neon_ab`).
    unsafe { neon::gemm_atb(m, k, n, a, b, out, scratch) }
}

#[cfg(target_arch = "aarch64")]
mod neon {
    //! NEON column-vectorized microkernels — the AVX2 module's structure at
    //! 4 lanes. One `float32x4_t` holds 4 adjacent output columns of one
    //! row; the broadcast A element keeps the zero-skip predicate uniform,
    //! and every update is a separate `vmulq_f32` then `vaddq_f32` — never
    //! `vfmaq`, whose fused rounding would diverge from the scalar chain.

    use super::{pack_panel, GemmScratch, KC, MR, NC};
    use core::arch::aarch64::{
        float32x4_t, vaddq_f32, vdupq_n_f32, vld1q_f32, vmulq_f32, vst1q_f32,
    };

    /// Output columns per vector register.
    const LANES: usize = 4;

    /// NEON tiled `C = A·B`.
    ///
    /// # Safety
    ///
    /// NEON must be available at runtime; dimension checks are the public
    /// wrappers' job.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn gemm_ab(
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        scratch: &mut GemmScratch,
    ) {
        out.fill(0.0);
        if m == 0 || n == 0 || k == 0 {
            return;
        }
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            for jc in (0..n).step_by(NC) {
                let nc = NC.min(n - jc);
                if nc < n {
                    let packed = scratch.packed(kc * nc);
                    pack_panel(b, n, pc, jc, kc, nc, packed);
                    ab_panel(a, k, m, pc, kc, packed, nc, out, n, jc, nc);
                } else {
                    ab_panel(a, k, m, pc, kc, &b[pc * n..], n, out, n, jc, nc);
                }
            }
        }
    }

    /// NEON tiled `C = Aᵀ·B`.
    ///
    /// # Safety
    ///
    /// NEON must be available at runtime; dimension checks are the public
    /// wrappers' job.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn gemm_atb(
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        scratch: &mut GemmScratch,
    ) {
        out.fill(0.0);
        if m == 0 || n == 0 || k == 0 {
            return;
        }
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            for jc in (0..n).step_by(NC) {
                let nc = NC.min(n - jc);
                if nc < n {
                    let packed = scratch.packed(kc * nc);
                    pack_panel(b, n, pc, jc, kc, nc, packed);
                    atb_panel(a, m, pc, kc, packed, nc, out, n, jc, nc);
                } else {
                    atb_panel(a, m, pc, kc, &b[pc * n..], n, out, n, jc, nc);
                }
            }
        }
    }

    /// NEON tiled `C = A·Bᵀ`: k-major 4-wide packed strips and an `MR×4`
    /// register accumulator tile.
    ///
    /// # Safety
    ///
    /// NEON must be available at runtime; dimension checks are the public
    /// wrappers' job.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn gemm_abt(
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        scratch: &mut GemmScratch,
    ) {
        out.fill(0.0);
        if m == 0 || n == 0 || k == 0 {
            return;
        }
        let strips = n.div_ceil(LANES);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            let packed = scratch.packed(strips * kc * LANES);
            // packed[s][kk][c] = B[s*LANES + c][pc + kk] (zero-padded strip);
            // pad lanes are discarded on writeback.
            for s in 0..strips {
                let j0 = s * LANES;
                let nr = LANES.min(n - j0);
                let dst = &mut packed[s * kc * LANES..(s + 1) * kc * LANES];
                for kk in 0..kc {
                    for c in 0..LANES {
                        dst[kk * LANES + c] = if c < nr { b[(j0 + c) * k + pc + kk] } else { 0.0 };
                    }
                }
            }
            for i0 in (0..m).step_by(MR) {
                let mr = MR.min(m - i0);
                for s in 0..strips {
                    let j0 = s * LANES;
                    let nr = LANES.min(n - j0);
                    let bp = &packed[s * kc * LANES..(s + 1) * kc * LANES];
                    abt_tile(a, k, i0, mr, pc, kc, bp, out, n, j0, nr);
                }
            }
        }
    }

    /// One `mr × 4` `ABᵀ` accumulator tile; lanes continue their serial
    /// k-chains from `out` across k-panels.
    #[allow(clippy::too_many_arguments)] // a GEMM tile is inherently this wide
    #[target_feature(enable = "neon")]
    fn abt_tile(
        a: &[f32],
        k: usize,
        i0: usize,
        mr: usize,
        pc: usize,
        kc: usize,
        bp: &[f32],
        out: &mut [f32],
        n: usize,
        j0: usize,
        nr: usize,
    ) {
        let mut acc = [vdupq_n_f32(0.0); MR];
        for (r, slot) in acc.iter_mut().enumerate().take(mr) {
            *slot = load_row(&out[(i0 + r) * n + j0..], nr);
        }
        for kk in 0..kc {
            // SAFETY: `bp` holds `kc * LANES` floats and kk < kc.
            let bv = unsafe { vld1q_f32(bp.as_ptr().add(kk * LANES)) };
            for (r, slot) in acc.iter_mut().enumerate().take(mr) {
                let xv = vdupq_n_f32(a[(i0 + r) * k + pc + kk]);
                *slot = vaddq_f32(*slot, vmulq_f32(xv, bv));
            }
        }
        for (r, slot) in acc.iter().enumerate().take(mr) {
            store_row(&mut out[(i0 + r) * n + j0..], nr, *slot);
        }
    }

    /// Loads `nr` floats (`nr <= 4`) into a vector, zero-padding the rest.
    #[target_feature(enable = "neon")]
    fn load_row(row: &[f32], nr: usize) -> float32x4_t {
        if nr == LANES {
            // SAFETY: the caller's row slice holds at least LANES floats.
            unsafe { vld1q_f32(row.as_ptr()) }
        } else {
            let mut lane = [0.0f32; LANES];
            lane[..nr].copy_from_slice(&row[..nr]);
            // SAFETY: `lane` is LANES floats on the stack.
            unsafe { vld1q_f32(lane.as_ptr()) }
        }
    }

    /// Stores the first `nr` lanes (`nr <= 4`) of `v` into `row`.
    #[target_feature(enable = "neon")]
    fn store_row(row: &mut [f32], nr: usize, v: float32x4_t) {
        if nr == LANES {
            // SAFETY: the caller's row slice holds at least LANES floats.
            unsafe { vst1q_f32(row.as_mut_ptr(), v) };
        } else {
            let mut lane = [0.0f32; LANES];
            // SAFETY: `lane` is LANES floats on the stack.
            unsafe { vst1q_f32(lane.as_mut_ptr(), v) };
            row[..nr].copy_from_slice(&lane[..nr]);
        }
    }

    /// `AB` panel sweep — the scalar structure, 4-wide inside.
    #[allow(clippy::too_many_arguments)] // a GEMM tile is inherently this wide
    #[target_feature(enable = "neon")]
    fn ab_panel(
        a: &[f32],
        k: usize,
        m: usize,
        pc: usize,
        kc: usize,
        panel: &[f32],
        stride: usize,
        out: &mut [f32],
        n: usize,
        jc: usize,
        nc: usize,
    ) {
        for i0 in (0..m).step_by(MR) {
            let mr = MR.min(m - i0);
            if mr == MR {
                let a_rows = [
                    &a[i0 * k + pc..i0 * k + pc + kc],
                    &a[(i0 + 1) * k + pc..(i0 + 1) * k + pc + kc],
                    &a[(i0 + 2) * k + pc..(i0 + 2) * k + pc + kc],
                    &a[(i0 + 3) * k + pc..(i0 + 3) * k + pc + kc],
                ];
                let o = quad_out_ptrs(out, i0, n, jc, nc);
                for kk in 0..kc {
                    let x = [a_rows[0][kk], a_rows[1][kk], a_rows[2][kk], a_rows[3][kk]];
                    quad_step(x, &panel[kk * stride..kk * stride + nc], o, nc);
                }
            } else {
                for r in 0..mr {
                    let a_row = &a[(i0 + r) * k + pc..(i0 + r) * k + pc + kc];
                    let orow = &mut out[(i0 + r) * n + jc..(i0 + r) * n + jc + nc];
                    axpy_row(a_row, panel, stride, orow);
                }
            }
        }
    }

    /// `AᵀB` panel sweep (`lda = m`; A values of a k step are contiguous).
    #[allow(clippy::too_many_arguments)] // a GEMM tile is inherently this wide
    #[target_feature(enable = "neon")]
    fn atb_panel(
        a: &[f32],
        lda: usize,
        pc: usize,
        kc: usize,
        panel: &[f32],
        stride: usize,
        out: &mut [f32],
        n: usize,
        jc: usize,
        nc: usize,
    ) {
        let m = lda;
        for i0 in (0..m).step_by(MR) {
            let mr = MR.min(m - i0);
            if mr == MR {
                let o = quad_out_ptrs(out, i0, n, jc, nc);
                for kk in 0..kc {
                    let av = &a[(pc + kk) * lda + i0..(pc + kk) * lda + i0 + MR];
                    let x = [av[0], av[1], av[2], av[3]];
                    quad_step(x, &panel[kk * stride..kk * stride + nc], o, nc);
                }
            } else {
                for r in 0..mr {
                    let orow = &mut out[(i0 + r) * n + jc..(i0 + r) * n + jc + nc];
                    let op = orow.as_mut_ptr();
                    for kk in 0..kc {
                        let av = a[(pc + kk) * lda + i0 + r];
                        if av == 0.0 {
                            continue;
                        }
                        axpy_cols(av, &panel[kk * stride..kk * stride + nc], op, nc);
                    }
                }
            }
        }
    }

    /// Raw pointers to the four output rows of quad `i0` at column `jc`.
    #[target_feature(enable = "neon")]
    fn quad_out_ptrs(out: &mut [f32], i0: usize, n: usize, jc: usize, nc: usize) -> [*mut f32; MR] {
        assert!((i0 + 3) * n + jc + nc <= out.len(), "quad rows out of bounds");
        let po = out.as_mut_ptr();
        // SAFETY: the assert above proves every offset (and the nc floats
        // after it) is inside `out`.
        unsafe {
            [
                po.add(i0 * n + jc),
                po.add((i0 + 1) * n + jc),
                po.add((i0 + 2) * n + jc),
                po.add((i0 + 3) * n + jc),
            ]
        }
    }

    /// One fused-quad k step; mixed zeros route through [`axpy_cols`].
    #[target_feature(enable = "neon")]
    fn quad_step(x: [f32; MR], b_row: &[f32], o: [*mut f32; MR], nc: usize) {
        if x[0] != 0.0 && x[1] != 0.0 && x[2] != 0.0 && x[3] != 0.0 {
            let xv = [vdupq_n_f32(x[0]), vdupq_n_f32(x[1]), vdupq_n_f32(x[2]), vdupq_n_f32(x[3])];
            let pb = b_row.as_ptr();
            let mut j = 0;
            while j + LANES <= nc {
                // SAFETY: j + LANES <= nc, `b_row` holds nc floats, and each
                // `o[r]` addresses nc valid floats (see `quad_out_ptrs`).
                unsafe {
                    let bv = vld1q_f32(pb.add(j));
                    for r in 0..MR {
                        let ov = vld1q_f32(o[r].add(j));
                        vst1q_f32(o[r].add(j), vaddq_f32(ov, vmulq_f32(xv[r], bv)));
                    }
                }
                j += LANES;
            }
            while j < nc {
                // SAFETY: j < nc; same bounds as above.
                unsafe {
                    let bj = *pb.add(j);
                    for r in 0..MR {
                        *o[r].add(j) += x[r] * bj;
                    }
                }
                j += 1;
            }
        } else {
            // Mixed zeros: per-row skips, same per-element sequence.
            for r in 0..MR {
                if x[r] == 0.0 {
                    continue;
                }
                axpy_cols(x[r], b_row, o[r], nc);
            }
        }
    }

    /// Skip-aware row update over one k-panel, 4-wide columns.
    #[target_feature(enable = "neon")]
    fn axpy_row(a_row: &[f32], panel: &[f32], stride: usize, out_row: &mut [f32]) {
        let nc = out_row.len();
        let op = out_row.as_mut_ptr();
        for (kk, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            axpy_cols(av, &panel[kk * stride..kk * stride + nc], op, nc);
        }
    }

    /// `o[0..nc] += x * b_row[0..nc]`, 4 columns per step, scalar tail.
    #[target_feature(enable = "neon")]
    fn axpy_cols(x: f32, b_row: &[f32], o: *mut f32, nc: usize) {
        debug_assert!(b_row.len() >= nc);
        let xv = vdupq_n_f32(x);
        let pb = b_row.as_ptr();
        let mut j = 0;
        while j + LANES <= nc {
            // SAFETY: j + LANES <= nc and both pointers address nc valid
            // floats (the caller derived `o` from an nc-long row).
            unsafe {
                let bv = vld1q_f32(pb.add(j));
                let ov = vld1q_f32(o.add(j));
                vst1q_f32(o.add(j), vaddq_f32(ov, vmulq_f32(xv, bv)));
            }
            j += LANES;
        }
        while j < nc {
            // SAFETY: j < nc; same bounds as above.
            unsafe { *o.add(j) += x * *pb.add(j) };
            j += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// Mat-level entry points (resize + dimension checks; layers call these with
// their own scratch, `Mat`'s methods call them with a thread-local one).
// ---------------------------------------------------------------------------

/// `out = a · b` with caller-owned packing scratch. Resizes `out`; no
/// allocation when `out` and `scratch` have warmed capacity.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
// lint: hot-path
pub fn matmul_into(a: &Mat, b: &Mat, out: &mut Mat, scratch: &mut GemmScratch) {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul: inner dimensions differ ({}x{} * {}x{})",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    out.resize(a.rows(), b.cols());
    gemm_ab(a.rows(), a.cols(), b.cols(), a.as_slice(), b.as_slice(), out.as_mut_slice(), scratch);
}

/// `out = a · bᵀ` with caller-owned packing scratch. Resizes `out`.
///
/// # Panics
///
/// Panics if `a.cols() != b.cols()`.
// lint: hot-path
pub fn matmul_transpose_into(a: &Mat, b: &Mat, out: &mut Mat, scratch: &mut GemmScratch) {
    assert_eq!(
        a.cols(),
        b.cols(),
        "matmul_transpose: inner dimensions differ ({}x{} * ({}x{})^T)",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    out.resize(a.rows(), b.rows());
    gemm_abt(a.rows(), a.cols(), b.rows(), a.as_slice(), b.as_slice(), out.as_mut_slice(), scratch);
}

/// `out = aᵀ · b` with caller-owned packing scratch. Resizes `out`.
///
/// # Panics
///
/// Panics if `a.rows() != b.rows()`.
// lint: hot-path
pub fn transpose_matmul_into(a: &Mat, b: &Mat, out: &mut Mat, scratch: &mut GemmScratch) {
    assert_eq!(
        a.rows(),
        b.rows(),
        "transpose_matmul: inner dimensions differ (({}x{})^T * {}x{})",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    out.resize(a.cols(), b.cols());
    gemm_atb(a.cols(), a.rows(), b.cols(), a.as_slice(), b.as_slice(), out.as_mut_slice(), scratch);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(len: usize, seed: u64) -> Vec<f32> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                // Mix in exact zeros to exercise the skip path.
                if state.is_multiple_of(7) {
                    0.0
                } else {
                    ((state >> 33) as i32 as f32) / (1u32 << 30) as f32
                }
            })
            .collect()
    }

    fn assert_bits_eq(got: &[f32], want: &[f32], what: &str) {
        assert_eq!(got.len(), want.len(), "{what}: length");
        for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
            assert_eq!(g.to_bits(), w.to_bits(), "{what}: element {i}: {g} vs {w}");
        }
    }

    /// Every backend available on this host, scalar first.
    fn backends() -> Vec<GemmIsa> {
        let mut isas = vec![GemmIsa::Scalar];
        isas.extend(simd_isa());
        isas
    }

    #[test]
    fn tiled_matches_naive_on_awkward_shapes() {
        // Shapes straddling every blocking boundary: MR, NR, KC edges — and
        // column tails not divisible by any vector width (8 AVX2, 4 NEON).
        let shapes = [
            (1, 1, 1),
            (1, 48, 192),
            (3, 17, 16),
            (4, 16, 16),
            (5, 31, 33),
            (15, 38, 192),
            (7, 300, 21),
            (17, 257, 49),
            (64, 5, 2),
        ];
        for isa in backends() {
            for &(m, k, n) in &shapes {
                let a = fill(m * k, (m * 31 + k * 7 + n) as u64);
                let b = fill(k * n, (m + k * 13 + n * 3) as u64);
                let bt = fill(n * k, (m * 5 + k + n * 11) as u64);
                let at = fill(k * m, (m + k * 29 + n * 17) as u64);
                let mut want = vec![0.0; m * n];
                let mut got = vec![0.0; m * n];
                let mut scratch = GemmScratch::default();

                naive_ab(m, k, n, &a, &b, &mut want);
                gemm_ab_with(isa, m, k, n, &a, &b, &mut got, &mut scratch);
                assert_bits_eq(&got, &want, &format!("{} ab {m}x{k}x{n}", isa.name()));

                naive_abt(m, k, n, &a, &bt, &mut want);
                gemm_abt_with(isa, m, k, n, &a, &bt, &mut got, &mut scratch);
                assert_bits_eq(&got, &want, &format!("{} abt {m}x{k}x{n}", isa.name()));

                naive_atb(m, k, n, &at, &b, &mut want);
                gemm_atb_with(isa, m, k, n, &at, &b, &mut got, &mut scratch);
                assert_bits_eq(&got, &want, &format!("{} atb {m}x{k}x{n}", isa.name()));
            }
        }
    }

    #[test]
    fn zero_k_zeroes_the_output() {
        for isa in backends() {
            let mut out = vec![7.0f32; 6];
            let mut scratch = GemmScratch::default();
            gemm_ab_with(isa, 2, 0, 3, &[], &[], &mut out, &mut scratch);
            assert!(out.iter().all(|&x| x == 0.0));
            out.fill(7.0);
            gemm_abt_with(isa, 2, 0, 3, &[], &[], &mut out, &mut scratch);
            assert!(out.iter().all(|&x| x == 0.0));
            out.fill(7.0);
            gemm_atb_with(isa, 2, 0, 3, &[], &[], &mut out, &mut scratch);
            assert!(out.iter().all(|&x| x == 0.0));
        }
    }

    #[test]
    fn zero_skip_suppresses_nan_like_the_reference() {
        // 0·inf must stay skipped in AB/AᵀB and must produce NaN in ABᵀ —
        // exactly the historical Mat semantics, on every backend.
        for isa in backends() {
            let a = [0.0f32, 1.0];
            let b = [f32::INFINITY, 2.0];
            let mut scratch = GemmScratch::default();
            let mut out = [0.0f32];
            gemm_ab_with(isa, 1, 2, 1, &a, &b, &mut out, &mut scratch);
            assert_eq!(out[0], 2.0, "{}", isa.name());
            gemm_abt_with(isa, 1, 2, 1, &a, &b, &mut out, &mut scratch);
            assert!(out[0].is_nan(), "{}", isa.name());
        }
    }

    #[test]
    fn packing_scratch_is_cache_line_aligned() {
        let mut scratch = GemmScratch::default();
        for len in [1, 7, 64, 1000] {
            let packed = scratch.packed(len);
            assert_eq!(packed.len(), len);
            assert_eq!(packed.as_ptr() as usize % PACK_ALIGN, 0, "len {len}");
        }
    }

    #[test]
    fn backend_resolution_is_forcible_and_labeled() {
        let detected = simd_isa();
        assert_eq!(set_gemm_backend(GemmBackend::Scalar), GemmIsa::Scalar);
        assert_eq!(active_gemm_isa(), GemmIsa::Scalar);
        assert!(
            gemm_backend_label().starts_with("f32 scalar / int8 scalar"),
            "{}",
            gemm_backend_label()
        );

        let resolved = set_gemm_backend(GemmBackend::Simd);
        assert_eq!(resolved, detected.unwrap_or(GemmIsa::Scalar));
        let prefix =
            format!("f32 {} / int8 {}", resolved.name(), int8::active_gemm_i8_isa().name());
        assert!(gemm_backend_label().starts_with(&prefix), "{}", gemm_backend_label());

        let auto = set_gemm_backend(GemmBackend::Auto);
        assert_eq!(auto, detected.unwrap_or(GemmIsa::Scalar));
    }

    #[test]
    fn mat_level_wrappers_resize_and_match() {
        let a = Mat::from_rows(&[&[1., 2.], &[3., 4.], &[5., 6.]]);
        let b = Mat::from_rows(&[&[7., 8.], &[9., 1.]]);
        let mut scratch = GemmScratch::default();
        let mut out = Mat::zeros(0, 0);
        matmul_into(&a, &b, &mut out, &mut scratch);
        assert_eq!(out, a.matmul(&b));
        matmul_transpose_into(&a, &b, &mut out, &mut scratch);
        assert_eq!(out, a.matmul(&b.transpose()));
        let c = Mat::from_rows(&[&[1., 2.], &[3., 4.], &[5., 6.]]);
        transpose_matmul_into(&a, &c, &mut out, &mut scratch);
        assert_eq!(out, a.transpose().matmul(&c));
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn wrapper_rejects_dimension_mismatch() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(2, 3);
        let mut out = Mat::zeros(0, 0);
        matmul_into(&a, &b, &mut out, &mut GemmScratch::default());
    }
}
