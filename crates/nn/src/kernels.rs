//! Blocked, cache-tiled f32 GEMM kernels — the one compute substrate every
//! matrix product in the workspace routes through.
//!
//! Three contraction variants cover everything the layers need:
//!
//! * [`gemm_ab`] — `C = A·B` (forward passes: dense, LSTM gate projection,
//!   im2col convolution),
//! * [`gemm_abt`] — `C = A·Bᵀ` (backward input gradients: `dX = dY·Wᵀ`),
//! * [`gemm_atb`] — `C = Aᵀ·B` (backward weight gradients: `dW = Xᵀ·dY`).
//!
//! Each has a naive reference twin ([`naive_ab`], [`naive_abt`],
//! [`naive_atb`]) that is the *literal* pre-kernel-layer triple loop; the
//! proptest suite (`tests/gemm_props.rs`) pins the tiled kernels to the
//! references **bit-for-bit**.
//!
//! # The accumulation-order contract
//!
//! Every output element is produced by *exactly* the same sequence of IEEE
//! operations as the historical `Mat` loops:
//!
//! * `C[i][j]` accumulates `A[i][k]·B[k][j]` terms in **ascending k**, in a
//!   single serial chain starting from `0.0` — tiling over `k` keeps the
//!   running sum resident (registers within a panel, the output buffer
//!   across panels), never a per-panel partial that is re-associated later.
//! * `AB` and `AᵀB` **skip** terms whose A-element compares equal to `0.0`
//!   (the historical sparse shortcut — ReLU activations and im2col padding
//!   make exact zeros common); `ABᵀ` never skips. Skipping is semantic, not
//!   just fast: it suppresses `0·inf → NaN` exactly where the old code did.
//!
//! Float addition is not associative, so this contract is what lets the
//! repo's equivalence tests (`props_cross_crate`, `serve_equivalence`,
//! train/infer agreement) keep using `assert_eq!` with no epsilon.
//! Vectorizing across *independent* output elements and reusing loaded
//! operands is fair game; reassociating within one element is not.
//!
//! # Tiling scheme
//!
//! `AB` / `AᵀB`: `for k-panel (KC) → for col-block (NC, packed B panel once
//! column-blocked) → for row-quad (MR) → fused microkernel`. The
//! microkernel advances MR=4 output rows through the panel at once — every
//! loaded B row is reused four times, the four output rows stay resident in
//! L1, and the zero-skip check is hoisted to one branch per k step
//! (amortized over `4·n` multiply-adds) with a per-row fallback when a zero
//! actually occurs. B panels are packed into contiguous `kc × NC` strips
//! only when the product is genuinely column-blocked (`n > NC`); below
//! that — every shape this pipeline multiplies — the row-major panel is
//! already contiguous and packing would be a pure copy tax.
//!
//! `ABᵀ`: B rows become output columns, so the panel *is* packed (k-major
//! 4-wide strips); the microkernel holds an `MR×4` register tile whose four
//! accumulator chains per row break the serial-dependency latency wall of
//! the naive one-dot-product-at-a-time loop.
//! Row tails (`m % MR`) and short products (`m < MR`, e.g. the
//! per-timestep LSTM recurrence) run the reference row loop over the same
//! panels.
//!
//! # Scratch ownership
//!
//! Packing needs a buffer; the kernels never allocate one behind the
//! caller's back. Every entry point takes a caller-owned [`GemmScratch`]
//! that grows to a high-water mark and is reused — layers pass the one
//! inside their [`crate::layers::LayerScratch`] (inference) or their own
//! training scratch, and the `Mat` convenience wrappers fall back to a
//! thread-local instance so ad-hoc callers stay allocation-free in steady
//! state too.

use crate::mat::Mat;

/// Rows per register tile (A rows processed together by the microkernel).
pub const MR: usize = 4;
/// k-panel depth: B rows kept hot (and packed, once column-blocked) per
/// outer iteration.
pub const KC: usize = 256;
/// Column-block width: above this, B panels are packed into contiguous
/// `kc × NC` strips so the microkernel never strides a huge row. At or
/// below it, the row-major panel is already contiguous enough and is
/// consumed in place (packing would be a pure copy tax — every shape the
/// pipeline actually multiplies lands here).
pub const NC: usize = 512;

/// Caller-owned packing scratch for the tiled kernels.
///
/// Holds the packed B panel (at most `KC × NC` floats for `AB`/`AᵀB`, `KC ×
/// 4·⌈n/4⌉` for `ABᵀ`). Reusable across calls and across differently shaped
/// products; all growth is amortized, so steady-state kernel calls perform
/// no heap allocation.
#[derive(Debug, Default, Clone)]
pub struct GemmScratch {
    packed: Vec<f32>,
}

impl GemmScratch {
    /// Ensures capacity for `len` packed floats and returns the buffer.
    fn packed(&mut self, len: usize) -> &mut [f32] {
        if self.packed.len() < len {
            self.packed.resize(len, 0.0);
        }
        &mut self.packed[..len]
    }
}

// ---------------------------------------------------------------------------
// Naive reference kernels — the literal pre-kernel-layer `Mat` loops.
// ---------------------------------------------------------------------------

/// Reference `C = A·B`: `a` is `(m, k)`, `b` is `(k, n)`, `out` is `(m, n)`,
/// all row-major. Skips A-elements equal to `0.0`. Overwrites `out`.
///
/// # Panics
///
/// Panics if a slice length does not match its dimensions.
pub fn naive_ab(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    check_dims(m, k, n, a.len(), b.len(), out.len(), k * n);
    out.fill(0.0);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (kk, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = &b[kk * n..(kk + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                *o += av * bv;
            }
        }
    }
}

/// Reference `C = A·Bᵀ`: `a` is `(m, k)`, `b` is `(n, k)`, `out` is
/// `(m, n)`. Each element is one serial dot product; no zero-skip.
/// Overwrites `out`.
///
/// # Panics
///
/// Panics if a slice length does not match its dimensions.
pub fn naive_abt(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    check_dims(m, k, n, a.len(), b.len(), out.len(), n * k);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0;
            for (&av, &bv) in a_row.iter().zip(b_row.iter()) {
                acc += av * bv;
            }
            out[i * n + j] = acc;
        }
    }
}

/// Reference `C = Aᵀ·B`: `a` is `(k, m)`, `b` is `(k, n)`, `out` is
/// `(m, n)`. Skips A-elements equal to `0.0`. Overwrites `out`.
///
/// # Panics
///
/// Panics if a slice length does not match its dimensions.
pub fn naive_atb(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    check_dims(m, k, n, a.len(), b.len(), out.len(), k * n);
    out.fill(0.0);
    for kk in 0..k {
        let a_row = &a[kk * m..(kk + 1) * m];
        let b_row = &b[kk * n..(kk + 1) * n];
        for (i, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let out_row = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                *o += av * bv;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Tiled kernels.
// ---------------------------------------------------------------------------

/// Tiled `C = A·B` (see [`naive_ab`] for the layout and semantics).
/// Bit-identical to the reference; uses `scratch` for the packed B panel.
///
/// # Panics
///
/// Panics if a slice length does not match its dimensions.
pub fn gemm_ab(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    scratch: &mut GemmScratch,
) {
    check_dims(m, k, n, a.len(), b.len(), out.len(), k * n);
    out.fill(0.0);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    for pc in (0..k).step_by(KC) {
        let kc = KC.min(k - pc);
        for jc in (0..n).step_by(NC) {
            let nc = NC.min(n - jc);
            // Pack only when actually column-blocked; otherwise consume the
            // row-major panel in place (see [`NC`]).
            let (panel, stride): (&[f32], usize) = if nc < n {
                let packed = scratch.packed(kc * nc);
                pack_panel(b, n, pc, jc, kc, nc, packed);
                (&*packed, nc)
            } else {
                (&b[pc * n..], n)
            };
            for i0 in (0..m).step_by(MR) {
                let mr = MR.min(m - i0);
                let out_block = &mut out[i0 * n + jc..];
                if mr == MR {
                    let a_rows = [
                        &a[i0 * k + pc..i0 * k + pc + kc],
                        &a[(i0 + 1) * k + pc..(i0 + 1) * k + pc + kc],
                        &a[(i0 + 2) * k + pc..(i0 + 2) * k + pc + kc],
                        &a[(i0 + 3) * k + pc..(i0 + 3) * k + pc + kc],
                    ];
                    quad_rows(a_rows, panel, stride, out_block, n, nc, kc);
                } else {
                    for r in 0..mr {
                        let a_row = &a[(i0 + r) * k + pc..(i0 + r) * k + pc + kc];
                        axpy_row(a_row, panel, stride, &mut out_block[r * n..r * n + nc]);
                    }
                }
            }
        }
    }
}

/// Tiled `C = A·Bᵀ` (see [`naive_abt`] for the layout and semantics).
/// Bit-identical to the reference; uses `scratch` for the packed Bᵀ panel.
///
/// # Panics
///
/// Panics if a slice length does not match its dimensions.
pub fn gemm_abt(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    scratch: &mut GemmScratch,
) {
    check_dims(m, k, n, a.len(), b.len(), out.len(), n * k);
    out.fill(0.0);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    // B rows become output columns: pack k-major strips of ABT_NR B-rows so
    // the k-loop reads one contiguous line regardless of the B row stride.
    const ABT_NR: usize = 4;
    let strips = n.div_ceil(ABT_NR);
    for pc in (0..k).step_by(KC) {
        let kc = KC.min(k - pc);
        let packed = scratch.packed(strips * kc * ABT_NR);
        // packed[s][kk][c] = B[s*ABT_NR + c][pc + kk] (zero-padded strip).
        for s in 0..strips {
            let j0 = s * ABT_NR;
            let nr = ABT_NR.min(n - j0);
            let dst = &mut packed[s * kc * ABT_NR..(s + 1) * kc * ABT_NR];
            for kk in 0..kc {
                for c in 0..ABT_NR {
                    dst[kk * ABT_NR + c] = if c < nr { b[(j0 + c) * k + pc + kk] } else { 0.0 };
                }
            }
        }
        for i0 in (0..m).step_by(MR) {
            let mr = MR.min(m - i0);
            for s in 0..strips {
                let j0 = s * ABT_NR;
                let nr = ABT_NR.min(n - j0);
                let bp = &packed[s * kc * ABT_NR..(s + 1) * kc * ABT_NR];
                // MR×ABT_NR accumulator tile, loaded from C so the serial
                // k-chain continues across panels.
                let mut acc = [[0.0f32; ABT_NR]; MR];
                for (r, acc_row) in acc.iter_mut().enumerate().take(mr) {
                    for (c, slot) in acc_row.iter_mut().enumerate().take(nr) {
                        *slot = out[(i0 + r) * n + j0 + c];
                    }
                }
                for kk in 0..kc {
                    let bv = &bp[kk * ABT_NR..(kk + 1) * ABT_NR];
                    for (r, acc_row) in acc.iter_mut().enumerate().take(mr) {
                        let av = a[(i0 + r) * k + pc + kk];
                        for (slot, &bvv) in acc_row.iter_mut().zip(bv.iter()) {
                            *slot += av * bvv;
                        }
                    }
                }
                for (r, acc_row) in acc.iter().enumerate().take(mr) {
                    for (c, &slot) in acc_row.iter().enumerate().take(nr) {
                        out[(i0 + r) * n + j0 + c] = slot;
                    }
                }
            }
        }
    }
}

/// Tiled `C = Aᵀ·B` (see [`naive_atb`] for the layout and semantics).
/// Bit-identical to the reference; uses `scratch` for the packed B panel.
///
/// # Panics
///
/// Panics if a slice length does not match its dimensions.
pub fn gemm_atb(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    scratch: &mut GemmScratch,
) {
    check_dims(m, k, n, a.len(), b.len(), out.len(), k * n);
    out.fill(0.0);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    for pc in (0..k).step_by(KC) {
        let kc = KC.min(k - pc);
        for jc in (0..n).step_by(NC) {
            let nc = NC.min(n - jc);
            let (panel, stride): (&[f32], usize) = if nc < n {
                let packed = scratch.packed(kc * nc);
                pack_panel(b, n, pc, jc, kc, nc, packed);
                (&*packed, nc)
            } else {
                (&b[pc * n..], n)
            };
            for i0 in (0..m).step_by(MR) {
                let mr = MR.min(m - i0);
                let out_block = &mut out[i0 * n + jc..];
                if mr == MR {
                    // The MR A-values of one k step sit contiguously in A's
                    // row `pc+kk` at column i0 — gathered per step below.
                    quad_cols(a, m, i0, pc, kc, panel, stride, out_block, n, nc);
                } else {
                    for r in 0..mr {
                        let out_row = &mut out_block[r * n..r * n + nc];
                        for kk in 0..kc {
                            let av = a[(pc + kk) * m + i0 + r];
                            if av == 0.0 {
                                continue;
                            }
                            let b_row = &panel[kk * stride..kk * stride + nc];
                            for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                                *o += av * bv;
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Packs the `kc × nc` sub-panel of row-major `b` (full width `n`) starting
/// at `(pc, jc)` into a contiguous `nc`-stride buffer.
fn pack_panel(b: &[f32], n: usize, pc: usize, jc: usize, kc: usize, nc: usize, packed: &mut [f32]) {
    for kk in 0..kc {
        let src = &b[(pc + kk) * n + jc..(pc + kk) * n + jc + nc];
        packed[kk * nc..kk * nc + nc].copy_from_slice(src);
    }
}

/// The shared quad microkernel body: advances four output rows through one
/// k-panel, re-using every loaded B row four times. `gather` supplies the
/// four A values of k step `kk` (the only thing that differs between the
/// `AB` and `AᵀB` variants). The common all-nonzero case runs one fused
/// branch-free update (four independent SIMD-friendly streams); any zero A
/// element falls back to per-row updates with the per-row skip, which is
/// the identical per-element operation sequence — this skip logic is
/// bit-exactness-critical and intentionally exists exactly once.
#[inline(always)]
fn quad_panel(
    gather: impl Fn(usize) -> [f32; MR],
    panel: &[f32],
    stride: usize,
    out_block: &mut [f32],
    n: usize,
    nc: usize,
    kc: usize,
) {
    let (o0, rest) = out_block.split_at_mut(n);
    let (o1, rest) = rest.split_at_mut(n);
    let (o2, rest) = rest.split_at_mut(n);
    let o3 = &mut rest[..nc];
    let (o0, o1, o2) = (&mut o0[..nc], &mut o1[..nc], &mut o2[..nc]);
    for kk in 0..kc {
        let [x0, x1, x2, x3] = gather(kk);
        let bv = &panel[kk * stride..kk * stride + nc];
        if x0 != 0.0 && x1 != 0.0 && x2 != 0.0 && x3 != 0.0 {
            for j in 0..nc {
                o0[j] += x0 * bv[j];
                o1[j] += x1 * bv[j];
                o2[j] += x2 * bv[j];
                o3[j] += x3 * bv[j];
            }
        } else {
            // Mixed zeros: per-row skips, same per-element sequence.
            for (o, x) in [(&mut *o0, x0), (&mut *o1, x1), (&mut *o2, x2), (&mut *o3, x3)] {
                if x == 0.0 {
                    continue;
                }
                for (oj, &bj) in o.iter_mut().zip(bv.iter()) {
                    *oj += x * bj;
                }
            }
        }
    }
}

/// [`quad_panel`] for `AB`: the four A values of k step `kk` come from four
/// row slices of A.
#[inline]
fn quad_rows(
    a_rows: [&[f32]; MR],
    panel: &[f32],
    stride: usize,
    out_block: &mut [f32],
    n: usize,
    nc: usize,
    kc: usize,
) {
    quad_panel(
        |kk| [a_rows[0][kk], a_rows[1][kk], a_rows[2][kk], a_rows[3][kk]],
        panel,
        stride,
        out_block,
        n,
        nc,
        kc,
    );
}

/// [`quad_panel`] for `AᵀB`: the four A values of k step `kk` sit
/// contiguously in A's row `pc+kk` at column `i0`.
#[allow(clippy::too_many_arguments)] // a GEMM tile is inherently this wide
#[inline]
fn quad_cols(
    a: &[f32],
    lda: usize,
    i0: usize,
    pc: usize,
    kc: usize,
    panel: &[f32],
    stride: usize,
    out_block: &mut [f32],
    n: usize,
    nc: usize,
) {
    quad_panel(
        |kk| {
            let av = &a[(pc + kk) * lda + i0..(pc + kk) * lda + i0 + MR];
            [av[0], av[1], av[2], av[3]]
        },
        panel,
        stride,
        out_block,
        n,
        nc,
        kc,
    );
}

/// Single-row panel update with the zero-skip: `out_row += Σ_k a_row[kk] ·
/// panel[kk]` — the reference operation sequence, used for row tails and
/// short-A products.
fn axpy_row(a_row: &[f32], panel: &[f32], stride: usize, out_row: &mut [f32]) {
    let nc = out_row.len();
    for (kk, &av) in a_row.iter().enumerate() {
        if av == 0.0 {
            continue;
        }
        let b_row = &panel[kk * stride..kk * stride + nc];
        for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
            *o += av * bv;
        }
    }
}

#[track_caller]
fn check_dims(
    m: usize,
    k: usize,
    n: usize,
    a_len: usize,
    b_len: usize,
    out_len: usize,
    b_expect: usize,
) {
    assert_eq!(a_len, m * k, "gemm: A length {a_len} != {m}x{k}");
    assert_eq!(b_len, b_expect, "gemm: B length {b_len} does not match dims (k={k}, n={n})");
    assert_eq!(out_len, m * n, "gemm: C length {out_len} != {m}x{n}");
}

// ---------------------------------------------------------------------------
// Mat-level entry points (resize + dimension checks; layers call these with
// their own scratch, `Mat`'s methods call them with a thread-local one).
// ---------------------------------------------------------------------------

/// `out = a · b` with caller-owned packing scratch. Resizes `out`; no
/// allocation when `out` and `scratch` have warmed capacity.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn matmul_into(a: &Mat, b: &Mat, out: &mut Mat, scratch: &mut GemmScratch) {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul: inner dimensions differ ({}x{} * {}x{})",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    out.resize(a.rows(), b.cols());
    gemm_ab(a.rows(), a.cols(), b.cols(), a.as_slice(), b.as_slice(), out.as_mut_slice(), scratch);
}

/// `out = a · bᵀ` with caller-owned packing scratch. Resizes `out`.
///
/// # Panics
///
/// Panics if `a.cols() != b.cols()`.
pub fn matmul_transpose_into(a: &Mat, b: &Mat, out: &mut Mat, scratch: &mut GemmScratch) {
    assert_eq!(
        a.cols(),
        b.cols(),
        "matmul_transpose: inner dimensions differ ({}x{} * ({}x{})^T)",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    out.resize(a.rows(), b.rows());
    gemm_abt(a.rows(), a.cols(), b.rows(), a.as_slice(), b.as_slice(), out.as_mut_slice(), scratch);
}

/// `out = aᵀ · b` with caller-owned packing scratch. Resizes `out`.
///
/// # Panics
///
/// Panics if `a.rows() != b.rows()`.
pub fn transpose_matmul_into(a: &Mat, b: &Mat, out: &mut Mat, scratch: &mut GemmScratch) {
    assert_eq!(
        a.rows(),
        b.rows(),
        "transpose_matmul: inner dimensions differ (({}x{})^T * {}x{})",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    out.resize(a.cols(), b.cols());
    gemm_atb(a.cols(), a.rows(), b.cols(), a.as_slice(), b.as_slice(), out.as_mut_slice(), scratch);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(len: usize, seed: u64) -> Vec<f32> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                // Mix in exact zeros to exercise the skip path.
                if state.is_multiple_of(7) {
                    0.0
                } else {
                    ((state >> 33) as i32 as f32) / (1u32 << 30) as f32
                }
            })
            .collect()
    }

    fn assert_bits_eq(got: &[f32], want: &[f32], what: &str) {
        assert_eq!(got.len(), want.len(), "{what}: length");
        for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
            assert_eq!(g.to_bits(), w.to_bits(), "{what}: element {i}: {g} vs {w}");
        }
    }

    #[test]
    fn tiled_matches_naive_on_awkward_shapes() {
        // Shapes straddling every blocking boundary: MR, NR, KC edges.
        let shapes = [
            (1, 1, 1),
            (1, 48, 192),
            (3, 17, 16),
            (4, 16, 16),
            (5, 31, 33),
            (15, 38, 192),
            (7, 300, 21),
            (17, 257, 49),
            (64, 5, 2),
        ];
        for &(m, k, n) in &shapes {
            let a = fill(m * k, (m * 31 + k * 7 + n) as u64);
            let b = fill(k * n, (m + k * 13 + n * 3) as u64);
            let bt = fill(n * k, (m * 5 + k + n * 11) as u64);
            let at = fill(k * m, (m + k * 29 + n * 17) as u64);
            let mut want = vec![0.0; m * n];
            let mut got = vec![0.0; m * n];
            let mut scratch = GemmScratch::default();

            naive_ab(m, k, n, &a, &b, &mut want);
            gemm_ab(m, k, n, &a, &b, &mut got, &mut scratch);
            assert_bits_eq(&got, &want, &format!("ab {m}x{k}x{n}"));

            naive_abt(m, k, n, &a, &bt, &mut want);
            gemm_abt(m, k, n, &a, &bt, &mut got, &mut scratch);
            assert_bits_eq(&got, &want, &format!("abt {m}x{k}x{n}"));

            naive_atb(m, k, n, &at, &b, &mut want);
            gemm_atb(m, k, n, &at, &b, &mut got, &mut scratch);
            assert_bits_eq(&got, &want, &format!("atb {m}x{k}x{n}"));
        }
    }

    #[test]
    fn zero_k_zeroes_the_output() {
        let mut out = vec![7.0f32; 6];
        let mut scratch = GemmScratch::default();
        gemm_ab(2, 0, 3, &[], &[], &mut out, &mut scratch);
        assert!(out.iter().all(|&x| x == 0.0));
        out.fill(7.0);
        gemm_abt(2, 0, 3, &[], &[], &mut out, &mut scratch);
        assert!(out.iter().all(|&x| x == 0.0));
        out.fill(7.0);
        gemm_atb(2, 0, 3, &[], &[], &mut out, &mut scratch);
        assert!(out.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn zero_skip_suppresses_nan_like_the_reference() {
        // 0·inf must stay skipped in AB/AᵀB and must produce NaN in ABᵀ —
        // exactly the historical Mat semantics.
        let a = [0.0f32, 1.0];
        let b = [f32::INFINITY, 2.0];
        let mut scratch = GemmScratch::default();
        let mut out = [0.0f32];
        gemm_ab(1, 2, 1, &a, &b, &mut out, &mut scratch);
        assert_eq!(out[0], 2.0);
        gemm_abt(1, 2, 1, &a, &b, &mut out, &mut scratch);
        assert!(out[0].is_nan());
    }

    #[test]
    fn mat_level_wrappers_resize_and_match() {
        let a = Mat::from_rows(&[&[1., 2.], &[3., 4.], &[5., 6.]]);
        let b = Mat::from_rows(&[&[7., 8.], &[9., 1.]]);
        let mut scratch = GemmScratch::default();
        let mut out = Mat::zeros(0, 0);
        matmul_into(&a, &b, &mut out, &mut scratch);
        assert_eq!(out, a.matmul(&b));
        matmul_transpose_into(&a, &b, &mut out, &mut scratch);
        assert_eq!(out, a.matmul(&b.transpose()));
        let c = Mat::from_rows(&[&[1., 2.], &[3., 4.], &[5., 6.]]);
        transpose_matmul_into(&a, &c, &mut out, &mut scratch);
        assert_eq!(out, a.transpose().matmul(&c));
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn wrapper_rejects_dimension_mismatch() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(2, 3);
        let mut out = Mat::zeros(0, 0);
        matmul_into(&a, &b, &mut out, &mut GemmScratch::default());
    }
}
