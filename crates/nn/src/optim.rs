//! Optimizers (SGD, Adam) and learning-rate schedules.
//!
//! The paper trains every model with Adam plus step-decay of the learning
//! rate and low initial rates (1e-4 .. 1e-3) "to help the stability of the
//! optimization, given a small dataset" (§III).

use crate::network::Network;
use serde::{Deserialize, Serialize};

/// Plain stochastic gradient descent with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Creates an SGD optimizer. `momentum = 0` recovers vanilla SGD.
    pub fn new(momentum: f32) -> Self {
        Self { momentum, velocity: Vec::new() }
    }

    /// Applies one update step with learning rate `lr`.
    pub fn step(&mut self, net: &mut Network, lr: f32) {
        let momentum = self.momentum;
        let velocity = &mut self.velocity;
        let mut k = 0;
        net.visit_params(&mut |p| {
            if velocity.len() <= k {
                // lint: allow(alloc, reason = "lazy velocity buffers on the training path; the reactor edge is a receiver-blind .step() collision -- it steps an engine, not an optimizer")
                velocity.push(vec![0.0; p.len()]);
            }
            let v = &mut velocity[k];
            assert_eq!(v.len(), p.len(), "Sgd: parameter shape changed");
            for ((w, &g), vi) in
                p.value.as_mut_slice().iter_mut().zip(p.grad.as_slice().iter()).zip(v.iter_mut())
            {
                *vi = momentum * *vi - lr * g;
                *w += *vi;
            }
            k += 1;
        });
    }
}

/// Adam optimizer (Kingma & Ba, 2014), the paper's training algorithm.
#[derive(Debug, Clone)]
pub struct Adam {
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Default for Adam {
    fn default() -> Self {
        Self::new()
    }
}

impl Adam {
    /// Creates Adam with the standard β₁=0.9, β₂=0.999, ε=1e-8.
    pub fn new() -> Self {
        Self { beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, m: Vec::new(), v: Vec::new() }
    }

    /// Creates Adam with custom moment coefficients.
    pub fn with_betas(beta1: f32, beta2: f32) -> Self {
        Self { beta1, beta2, ..Self::new() }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Applies one update step with learning rate `lr`.
    pub fn step(&mut self, net: &mut Network, lr: f32) {
        self.t += 1;
        let t = self.t as f32;
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);
        let (beta1, beta2, eps) = (self.beta1, self.beta2, self.eps);
        let (ms, vs) = (&mut self.m, &mut self.v);
        let mut k = 0;
        net.visit_params(&mut |p| {
            if ms.len() <= k {
                // lint: allow(alloc, reason = "lazy first-moment buffers, training-only; reactor edge is a .step() name collision")
                ms.push(vec![0.0; p.len()]);
                // lint: allow(alloc, reason = "lazy second-moment buffers, training-only; reactor edge is a .step() name collision")
                vs.push(vec![0.0; p.len()]);
            }
            let m = &mut ms[k];
            let v = &mut vs[k];
            assert_eq!(m.len(), p.len(), "Adam: parameter shape changed");
            for (((w, &g), mi), vi) in p
                .value
                .as_mut_slice()
                .iter_mut()
                .zip(p.grad.as_slice().iter())
                .zip(m.iter_mut())
                .zip(v.iter_mut())
            {
                *mi = beta1 * *mi + (1.0 - beta1) * g;
                *vi = beta2 * *vi + (1.0 - beta2) * g * g;
                let m_hat = *mi / bc1;
                let v_hat = *vi / bc2;
                *w -= lr * m_hat / (v_hat.sqrt() + eps);
            }
            k += 1;
        });
    }
}

/// Step-decay learning-rate schedule: `lr = initial * drop^(epoch / every)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepDecay {
    /// Learning rate at epoch 0.
    pub initial_lr: f32,
    /// Multiplicative factor applied every `every` epochs.
    pub drop: f32,
    /// Number of epochs between drops.
    pub every: usize,
}

impl StepDecay {
    /// Creates a step-decay schedule.
    ///
    /// # Panics
    ///
    /// Panics if `every == 0`.
    pub fn new(initial_lr: f32, drop: f32, every: usize) -> Self {
        assert!(every > 0, "decay interval must be positive");
        Self { initial_lr, drop, every }
    }

    /// A constant schedule (no decay).
    pub fn constant(lr: f32) -> Self {
        Self { initial_lr: lr, drop: 1.0, every: 1 }
    }

    /// Learning rate for `epoch` (0-based).
    pub fn lr(&self, epoch: usize) -> f32 {
        self.initial_lr * self.drop.powi((epoch / self.every) as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::LayerSpec;
    use crate::loss::cross_entropy;
    use crate::mat::Mat;
    use crate::network::NetworkSpec;

    fn tiny_net() -> Network {
        Network::new(NetworkSpec::new(vec![LayerSpec::Dense { in_dim: 2, out_dim: 2 }]), 5)
    }

    fn loss_of(net: &mut Network, x: &Mat, y: usize) -> f32 {
        let logits = net.forward(x, crate::layers::Mode::Train);
        cross_entropy(&logits, y).0
    }

    fn one_step(net: &mut Network, x: &Mat, y: usize) {
        net.zero_grad();
        let logits = net.forward(x, crate::layers::Mode::Train);
        let (_, grad) = cross_entropy(&logits, y);
        net.backward(&grad);
    }

    #[test]
    fn adam_reduces_loss() {
        let mut net = tiny_net();
        let mut adam = Adam::new();
        let x = Mat::from_rows(&[&[1.0, -0.5]]);
        let before = loss_of(&mut net, &x, 0);
        for _ in 0..50 {
            one_step(&mut net, &x, 0);
            adam.step(&mut net, 0.01);
        }
        let after = loss_of(&mut net, &x, 0);
        assert!(after < before, "Adam failed to reduce loss: {before} -> {after}");
        assert_eq!(adam.steps(), 50);
    }

    #[test]
    fn sgd_reduces_loss() {
        let mut net = tiny_net();
        let mut sgd = Sgd::new(0.9);
        let x = Mat::from_rows(&[&[1.0, -0.5]]);
        let before = loss_of(&mut net, &x, 1);
        for _ in 0..50 {
            one_step(&mut net, &x, 1);
            sgd.step(&mut net, 0.01);
        }
        assert!(loss_of(&mut net, &x, 1) < before);
    }

    #[test]
    fn step_decay_drops_at_interval() {
        let s = StepDecay::new(0.1, 0.5, 10);
        assert_eq!(s.lr(0), 0.1);
        assert_eq!(s.lr(9), 0.1);
        assert!((s.lr(10) - 0.05).abs() < 1e-8);
        assert!((s.lr(20) - 0.025).abs() < 1e-8);
    }

    #[test]
    fn constant_schedule_never_decays() {
        let s = StepDecay::constant(0.3);
        assert_eq!(s.lr(0), s.lr(1000));
    }
}
