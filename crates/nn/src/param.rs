//! Trainable parameter blocks.
//!
//! Every layer owns zero or more [`Param`] blocks (a value matrix plus its
//! accumulated gradient). Optimizers walk the network's parameters in a
//! stable order via [`crate::network::Network::visit_params`].

use crate::mat::Mat;
use serde::{Deserialize, Serialize};

/// A trainable parameter: a value matrix and its gradient accumulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Param {
    /// Current value of the parameter.
    pub value: Mat,
    /// Gradient accumulated by the most recent backward pass(es).
    pub grad: Mat,
}

impl Param {
    /// Creates a parameter from an initial value, with a zeroed gradient.
    pub fn new(value: Mat) -> Self {
        let grad = Mat::zeros(value.rows(), value.cols());
        Self { value, grad }
    }

    /// Zeroes the gradient accumulator.
    pub fn zero_grad(&mut self) {
        self.grad.as_mut_slice().fill(0.0);
    }

    /// Number of scalar parameters in this block.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Whether this block holds no parameters.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_zero_grad() {
        let p = Param::new(Mat::full(2, 3, 1.5));
        assert_eq!(p.grad, Mat::zeros(2, 3));
        assert_eq!(p.len(), 6);
        assert!(!p.is_empty());
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Param::new(Mat::zeros(1, 2));
        p.grad.as_mut_slice().fill(3.0);
        p.zero_grad();
        assert_eq!(p.grad.sum(), 0.0);
    }
}
