//! # `nn` — a from-scratch neural-network substrate
//!
//! This crate implements everything the DSN 2020 paper *"Real-Time
//! Context-aware Detection of Unsafe Events in Robot-Assisted Surgery"*
//! (Yasar & Alemzadeh) needed from Keras/TensorFlow, in pure Rust:
//!
//! * `(time, features)` sequence tensors ([`mat::Mat`]),
//! * layers: [`layers::dense::Dense`], [`layers::lstm::Lstm`] (stacked LSTMs
//!   with full BPTT), [`layers::conv1d::Conv1d`], pooling, dropout,
//!   batch-norm, activations,
//! * losses: (class-weighted) softmax cross-entropy,
//! * optimizers: Adam and SGD with step-decay schedules,
//! * a mini-batch training loop with early stopping
//!   ([`train::train_classifier`]),
//! * JSON weight checkpoints ([`network::SavedNetwork`]),
//! * numerical gradient checking used by the test-suite
//!   ([`gradcheck::check_layer_gradients`]).
//!
//! The paper's two model families are expressible directly:
//!
//! ```
//! use nn::layers::{LayerSpec, Padding};
//! use nn::network::{Network, NetworkSpec};
//!
//! // 2-layer stacked LSTM gesture classifier (scaled-down §V-A model).
//! let gesture_clf = NetworkSpec::new(vec![
//!     LayerSpec::Lstm { in_dim: 38, hidden: 64, return_sequences: true },
//!     LayerSpec::Lstm { in_dim: 64, hidden: 32, return_sequences: false },
//!     LayerSpec::Dense { in_dim: 32, out_dim: 64 },
//!     LayerSpec::Relu,
//!     LayerSpec::Dense { in_dim: 64, out_dim: 15 },
//! ]);
//!
//! // 1D-CNN erroneous-gesture classifier (§V-A, Table V).
//! let error_clf = NetworkSpec::new(vec![
//!     LayerSpec::Conv1d { in_channels: 38, out_channels: 32, kernel: 3, padding: Padding::Same },
//!     LayerSpec::Relu,
//!     LayerSpec::GlobalMaxPool,
//!     LayerSpec::Dense { in_dim: 32, out_dim: 16 },
//!     LayerSpec::Relu,
//!     LayerSpec::Dense { in_dim: 16, out_dim: 2 },
//! ]);
//! let _ = (Network::new(gesture_clf, 0), Network::new(error_clf, 1));
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(clippy::undocumented_unsafe_blocks)] // every unsafe block carries a SAFETY: comment
#![allow(clippy::needless_range_loop)] // indexed loops mirror the math in numeric kernels

pub mod gradcheck;
pub mod init;
pub mod kernels;
pub mod layers;
pub mod loss;
pub mod mat;
pub mod network;
pub mod optim;
pub mod param;
pub mod quant;
pub mod train;

pub use kernels::int8::{active_gemm_i8_isa, gemm_i8_abt, gemm_i8_abt_with, naive_i8_abt};
pub use kernels::{
    active_gemm_isa, gemm_backend_label, set_gemm_backend, GemmBackend, GemmIsa, GemmScratch,
};
pub use layers::{LayerScratch, LayerSpec, Mode, Padding, SeqLayer};
pub use mat::Mat;
pub use network::{Network, NetworkScratch, NetworkSpec, SavedNetwork};
pub use optim::{Adam, Sgd, StepDecay};
pub use quant::{QuantError, QuantScratch, QuantizedNetwork};
pub use train::{evaluate, predict_proba, train_classifier, Sample, TrainConfig, TrainReport};
