//! Property suite pinning the tiled GEMM kernels (`nn::kernels`) to their
//! naive references **bit-for-bit** over random shapes and values.
//!
//! This is the load-bearing guarantee of the kernel layer: every equivalence
//! test in the workspace (`props_cross_crate`, `serve_equivalence`,
//! train/infer agreement) uses `assert_eq!` with no epsilon, which only
//! stays sound if tiling never reassociates a single output element's
//! k-chain. Comparison here is on raw bit patterns (`to_bits`), strictly
//! stronger than `==` (it distinguishes `-0.0` from `0.0` and never lets
//! NaN slip through an equality).
//!
//! Every property runs under **every backend available on this host** —
//! the scalar tiles always, plus the SIMD microkernels (AVX2/NEON) when
//! runtime detection finds them — through the explicit `gemm_*_with` entry
//! points, so forced-Scalar and forced-Simd coverage does not depend on
//! process-global dispatch state (tests run in parallel).

use nn::kernels::int8::{gemm_i8_abt_with, naive_i8_abt, K_ALIGN, MAX_K};
use nn::kernels::{
    gemm_ab_with, gemm_abt_with, gemm_atb_with, naive_ab, naive_abt, naive_atb, simd_isa, GemmIsa,
    GemmScratch,
};
use nn::Mat;
use proptest::prelude::*;

/// Scalar first, then the detected SIMD ISA (if any).
fn backends() -> Vec<GemmIsa> {
    let mut isas = vec![GemmIsa::Scalar];
    isas.extend(simd_isa());
    isas
}

/// Deterministic matrix data with a controlled density of **exact zeros**
/// (probability ~1/4) so the skip-zero path is exercised as hard as the
/// dense path. Values span several binades to surface any reassociation.
fn fill(len: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            match state % 4 {
                0 => 0.0,
                1 => ((state >> 40) as i32 as f32) * 1e-3,
                2 => ((state >> 33) as i32 as f32) / (1u32 << 30) as f32,
                _ => ((state >> 48) as i16 as f32) * 64.0,
            }
        })
        .collect()
}

fn assert_bits_eq(got: &[f32], want: &[f32], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length mismatch");
    for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
        assert_eq!(g.to_bits(), w.to_bits(), "{what}: element {i} differs in bits: {g} vs {w}");
    }
}

/// Runs all three variants at `(m, k, n)` against their references, on
/// every available backend.
fn check_all(m: usize, k: usize, n: usize, seed: u64) {
    let a = fill(m * k, seed);
    let b = fill(k * n, seed.wrapping_add(1));
    let bt = fill(n * k, seed.wrapping_add(2));
    let at = fill(k * m, seed.wrapping_add(3));
    let mut want = vec![0.0f32; m * n];
    // Pre-poison the outputs: the kernels must fully overwrite them.
    let mut got = vec![f32::NAN; m * n];
    let mut scratch = GemmScratch::default();

    for isa in backends() {
        let tag = isa.name();

        got.fill(f32::NAN);
        naive_ab(m, k, n, &a, &b, &mut want);
        gemm_ab_with(isa, m, k, n, &a, &b, &mut got, &mut scratch);
        assert_bits_eq(&got, &want, &format!("{tag} AB m={m} k={k} n={n}"));

        got.fill(f32::NAN);
        naive_abt(m, k, n, &a, &bt, &mut want);
        gemm_abt_with(isa, m, k, n, &a, &bt, &mut got, &mut scratch);
        assert_bits_eq(&got, &want, &format!("{tag} ABt m={m} k={k} n={n}"));

        got.fill(f32::NAN);
        naive_atb(m, k, n, &at, &b, &mut want);
        gemm_atb_with(isa, m, k, n, &at, &b, &mut got, &mut scratch);
        assert_bits_eq(&got, &want, &format!("{tag} AtB m={m} k={k} n={n}"));
    }
}

/// Deterministic i8 data covering the full range, including `-128` (the
/// magnitude the saturation-freedom argument is written against).
fn fill_i8(len: usize, seed: u64) -> Vec<i8> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state & 0xFF) as u8 as i8
        })
        .collect()
}

/// Runs the int8 ABᵀ contraction at `(m, k, n)` against its reference on
/// every available backend — `assert_eq!` on i32 is already bit equality.
fn check_i8(m: usize, k: usize, n: usize, seed: u64) {
    let a = fill_i8(m * k, seed);
    let b = fill_i8(n * k, seed.wrapping_add(1));
    let mut want = vec![0i32; m * n];
    // Pre-poison the outputs: the kernels must fully overwrite them.
    let mut got = vec![i32::MIN; m * n];
    naive_i8_abt(m, k, n, &a, &b, &mut want);
    for isa in backends() {
        got.fill(i32::MIN);
        gemm_i8_abt_with(isa, m, k, n, &a, &b, &mut got);
        assert_eq!(got, want, "{} i8 ABt m={m} k={k} n={n}", isa.name());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random shapes across every blocking boundary (MR=4, KC=256),
    /// including degenerate zero-sized dimensions.
    #[test]
    fn tiled_kernels_are_bit_exact(
        m in 0usize..48,
        k in 0usize..300,
        n in 0usize..40,
        seed in 0u64..1_000_000,
    ) {
        check_all(m, k, n, seed);
    }

    /// Row-vector products (`1×N`): the LSTM recurrence shape, which takes
    /// the unpacked small-m path.
    #[test]
    fn row_vector_products_are_bit_exact(k in 0usize..200, n in 0usize..64, seed in 0u64..100_000) {
        check_all(1, k, n, seed);
    }

    /// Column-shaped products (`N×1` outputs and `k = 0/1` edges).
    #[test]
    fn degenerate_edges_are_bit_exact(m in 0usize..40, k in 0usize..2, seed in 0u64..100_000) {
        check_all(m, k, 1, seed);
        check_all(m, k, 0, seed.wrapping_add(7));
    }

    /// int8 ABᵀ over random shapes crossing every vector boundary: the
    /// k-step (16 AVX2 / 8 NEON), the 8-/4-output reduction groups, and
    /// their tails, on every backend. i32 equality is exact, so this pins
    /// the quantized tier's cross-backend bit-identity at the kernel level.
    #[test]
    fn int8_kernels_are_bit_exact(
        m in 0usize..48,
        k in 0usize..100,
        n in 0usize..40,
        seed in 0u64..1_000_000,
    ) {
        check_i8(m, k, n, seed);
    }

    /// int8 row-vector products (`1×N`): the quantized LSTM recurrence
    /// shape, plus the K_ALIGN-padded widths quant.rs actually stages.
    #[test]
    fn int8_row_vector_products_are_bit_exact(
        kp in 0usize..12,
        n in 0usize..64,
        seed in 0u64..100_000,
    ) {
        check_i8(1, kp * K_ALIGN, n, seed);
        check_i8(1, kp * K_ALIGN + 3, n, seed.wrapping_add(7));
    }

    /// The `Mat` wrappers (thread-local scratch) agree with explicit
    /// transposition computed through the reference path.
    #[test]
    fn mat_wrappers_agree_with_explicit_transpose(
        m in 1usize..12,
        k in 1usize..24,
        n in 1usize..12,
        seed in 0u64..100_000,
    ) {
        let a = Mat::from_vec(m, k, fill(m * k, seed));
        let b = Mat::from_vec(k, n, fill(k * n, seed.wrapping_add(1)));
        let bt = Mat::from_vec(n, k, fill(n * k, seed.wrapping_add(2)));
        let at = Mat::from_vec(k, m, fill(k * m, seed.wrapping_add(3)));

        // matmul against the raw reference kernel.
        let mut want = vec![0.0f32; m * n];
        naive_ab(m, k, n, a.as_slice(), b.as_slice(), &mut want);
        assert_bits_eq(a.matmul(&b).as_slice(), &want, "Mat::matmul");

        let mut out = Mat::zeros(0, 0);
        a.matmul_into(&b, &mut out);
        assert_bits_eq(out.as_slice(), &want, "Mat::matmul_into");

        naive_abt(m, k, n, a.as_slice(), bt.as_slice(), &mut want);
        a.matmul_transpose_into(&bt, &mut out);
        assert_bits_eq(out.as_slice(), &want, "Mat::matmul_transpose_into");
        assert_bits_eq(a.matmul_transpose(&bt).as_slice(), &want, "Mat::matmul_transpose");

        naive_atb(m, k, n, at.as_slice(), b.as_slice(), &mut want);
        at.transpose_matmul_into(&b, &mut out);
        assert_bits_eq(out.as_slice(), &want, "Mat::transpose_matmul_into");
        assert_bits_eq(at.transpose_matmul(&b).as_slice(), &want, "Mat::transpose_matmul");
    }
}

/// Non-random pins for the exact boundary shapes the blocking constants
/// create, so a future constant change cannot silently shrink coverage.
#[test]
fn blocking_boundary_shapes_are_bit_exact() {
    for &(m, k, n) in &[
        (4, 16, 16),   // exactly one MR x NR tile, one k step short of nothing
        (5, 16, 17),   // one past both register-tile edges
        (3, 64, 64),   // below MR: unpacked path
        (4, 256, 16),  // exactly one KC panel
        (4, 257, 16),  // KC panel + 1-deep tail panel
        (8, 512, 32),  // two full KC panels
        (1, 300, 1),   // serial chain crossing a panel boundary
        (48, 1, 48),   // k=1: single term per element
        (6, 40, 600),  // n > NC: the packed-panel column-blocked path
        (9, 300, 530), // packed panels AND a KC tail panel together
        (4, 16, 9),    // column tail: 9 = 8 + 1 (one past an AVX2 vector)
        (4, 16, 12),   // column tail: 12 = 8 + 4 (a NEON vector past AVX2)
        (5, 33, 15),   // tails in every dimension at once (m, k, n odd)
        (8, 20, 7),    // n below every vector width: scalar-tail-only columns
        (12, 40, 613), // packed panel whose tail block is itself tail-width
    ] {
        check_all(m, k, n, (m * 1_000_003 + k * 1_009 + n) as u64);
    }
}

/// Non-random pins for the int8 kernels' own boundary shapes (reduction
/// group widths JB=8/4, k-steps 16/8, and the pipeline's padded widths).
#[test]
fn int8_boundary_shapes_are_bit_exact() {
    for &(m, k, n) in &[
        (1, 16, 8),    // one vector step, one full AVX2 reduction group
        (1, 16, 9),    // reduction-group tail of 1
        (3, 48, 192),  // the padded gesture-LSTM input projection width
        (15, 48, 192), // ...at the streaming window batch
        (1, 48, 192),  // the gesture-LSTM recurrence shape
        (5, 80, 16),   // the padded im2col conv shape
        (4, 38, 7),    // unpadded k tail + n below every reduction group
        (2, 0, 4),     // k=0: all outputs exactly zero
        (7, 15, 13),   // below one vector step: scalar-tail-only k
        (9, 31, 12),   // k tail of 15 (max AVX2 tail) x NEON group boundary
    ] {
        check_i8(m, k, n, (m * 1_000_003 + k * 1_009 + n) as u64);
    }
}

// The saturation bound is a checked contract on every public entry; the
// pipeline's widest contraction must sit far inside it.
const _: () = assert!(MAX_K > 100_000);

/// `0·inf` handling must match the references on every backend: skipped
/// (suppressed) in AB and AᵀB, propagated to NaN in ABᵀ.
#[test]
fn nonfinite_semantics_match_reference() {
    let a = vec![0.0f32, 2.0];
    let b = vec![f32::INFINITY, 3.0]; // (2,1) for AB / AtB, (1,2) row for ABt
    let mut scratch = GemmScratch::default();

    for isa in backends() {
        let mut got = [f32::NAN];
        let mut want = [f32::NAN];

        naive_ab(1, 2, 1, &a, &b, &mut want);
        gemm_ab_with(isa, 1, 2, 1, &a, &b, &mut got, &mut scratch);
        assert_eq!((got[0].to_bits(), want[0].to_bits()), (6.0f32.to_bits(), 6.0f32.to_bits()));

        naive_abt(1, 2, 1, &a, &b, &mut want);
        gemm_abt_with(isa, 1, 2, 1, &a, &b, &mut got, &mut scratch);
        assert!(got[0].is_nan() && want[0].is_nan(), "{}", isa.name());

        let mut got2 = [f32::NAN, f32::NAN];
        let mut want2 = [f32::NAN, f32::NAN];
        naive_atb(2, 1, 1, &a, &b[..1], &mut want2);
        gemm_atb_with(isa, 2, 1, 1, &a, &b[..1], &mut got2, &mut scratch);
        assert_eq!(got2[0].to_bits(), want2[0].to_bits());
        assert_eq!(got2[1].to_bits(), want2[1].to_bits());
    }
}
