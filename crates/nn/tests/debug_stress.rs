#![cfg(debug_assertions)]
//! Debug-only stress: drives the GEMM kernels and `Mat` through degenerate
//! and tile-boundary shapes with overflow and bounds checks armed. A
//! fencepost error in the tiling loops (or a usize underflow in a tail
//! computation) that release builds would silently wrap past trips a loud
//! panic here. `cargo test --release` compiles this file out; the
//! debug-profile `cargo test` step in CI runs it.

use nn::kernels::{gemm_ab_with, gemm_abt_with, gemm_atb_with, simd_isa, GemmIsa, GemmScratch};
use nn::Mat;

/// Scalar always, plus the detected SIMD backend when the host has one.
fn backends() -> Vec<GemmIsa> {
    let mut isas = vec![GemmIsa::Scalar];
    isas.extend(simd_isa());
    isas
}

/// Deterministic finite values spanning sign and magnitude.
fn fill(len: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 40) as i32 as f32) * 1e-4
        })
        .collect()
}

/// Every (m, k, n) combination of empty, unit, and tile-boundary dims, on
/// every backend, all three transposition variants. Outputs are poisoned
/// with NaN first: the kernels must fully overwrite `m * n` elements even
/// at degenerate shapes, and every write must land in bounds (debug panics
/// otherwise).
#[test]
fn gemm_degenerate_and_tile_boundary_shapes() {
    let dims = [0usize, 1, 2, 3, 7, 8, 9, 15, 16, 17, 31, 32, 33];
    for isa in backends() {
        let mut scratch = GemmScratch::default();
        for &m in &dims {
            for &k in &dims {
                for &n in &dims {
                    let a = fill(m * k, 1);
                    let b = fill(k * n, 2);
                    let bt = fill(n * k, 3);
                    let at = fill(k * m, 4);
                    let mut out = vec![f32::NAN; m * n];

                    gemm_ab_with(isa, m, k, n, &a, &b, &mut out, &mut scratch);
                    assert!(
                        out.iter().all(|v| v.is_finite()),
                        "{} AB m={m} k={k} n={n}: NaN survived — incomplete overwrite",
                        isa.name()
                    );

                    out.fill(f32::NAN);
                    gemm_abt_with(isa, m, k, n, &a, &bt, &mut out, &mut scratch);
                    assert!(
                        out.iter().all(|v| v.is_finite()),
                        "{} ABT m={m} k={k} n={n}: NaN survived — incomplete overwrite",
                        isa.name()
                    );

                    out.fill(f32::NAN);
                    gemm_atb_with(isa, m, k, n, &at, &b, &mut out, &mut scratch);
                    assert!(
                        out.iter().all(|v| v.is_finite()),
                        "{} ATB m={m} k={k} n={n}: NaN survived — incomplete overwrite",
                        isa.name()
                    );
                }
            }
        }
    }
}

/// `Mat` boundary operations: last-row access, grow/shrink resizes, and
/// block copies ending exactly at the final row — every off-by-one in the
/// row arithmetic panics under debug bounds checks.
#[test]
fn mat_boundary_row_arithmetic() {
    for (rows, cols) in [(1usize, 1usize), (1, 7), (5, 1), (4, 6), (7, 3)] {
        let mut m = Mat::from_vec(rows, cols, fill(rows * cols, 9));
        assert_eq!(m.row(rows - 1).len(), cols);
        m.row_mut(rows - 1)[cols - 1] = 0.5;
        assert_eq!(m.iter_rows().count(), rows);

        // Copy a block that ends exactly at the last row.
        let src = Mat::from_vec(1, cols, fill(cols, 11));
        m.copy_rows_from(&src, rows - 1);
        assert_eq!(m.row(rows - 1), src.row(0));

        // Shrink then regrow; the buffer must stay consistent.
        m.resize(1, cols);
        assert_eq!(m.shape(), (1, cols));
        m.resize(rows + 2, cols);
        assert_eq!(m.shape(), (rows + 2, cols));
        assert_eq!(m.row(rows + 1).len(), cols);
    }
}
