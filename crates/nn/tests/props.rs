//! Property-based tests for the numeric core: matrix algebra laws, softmax
//! invariants, layer shape contracts, and optimizer sanity.

use nn::layers::{LayerSpec, Mode, Padding};
use nn::loss::{cross_entropy, softmax};
use nn::{Mat, Network, NetworkSpec};
use proptest::prelude::*;

fn mat_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Mat> {
    prop::collection::vec(-3.0f32..3.0, rows * cols).prop_map(move |v| Mat::from_vec(rows, cols, v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// (A B) C == A (B C) within float tolerance.
    #[test]
    fn matmul_is_associative(
        a in mat_strategy(3, 4),
        b in mat_strategy(4, 2),
        c in mat_strategy(2, 5),
    ) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for (x, y) in left.as_slice().iter().zip(right.as_slice().iter()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    /// A(B + C) == AB + AC.
    #[test]
    fn matmul_distributes_over_addition(
        a in mat_strategy(3, 4),
        b in mat_strategy(4, 3),
        c in mat_strategy(4, 3),
    ) {
        let left = a.matmul(&b.add(&c));
        let right = a.matmul(&b).add(&a.matmul(&c));
        for (x, y) in left.as_slice().iter().zip(right.as_slice().iter()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    /// (A^T)^T == A and transpose variants agree with explicit transpose.
    #[test]
    fn transpose_identities(a in mat_strategy(4, 6), b in mat_strategy(5, 6)) {
        prop_assert_eq!(a.transpose().transpose(), a.clone());
        let mt = a.matmul_transpose(&b);
        let explicit = a.matmul(&b.transpose());
        for (x, y) in mt.as_slice().iter().zip(explicit.as_slice().iter()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// Softmax output is a probability distribution and invariant to
    /// constant shifts of the logits.
    #[test]
    fn softmax_invariants(logits in prop::collection::vec(-20.0f32..20.0, 2..10), shift in -50.0f32..50.0) {
        let p = softmax(&logits);
        prop_assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        prop_assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
        let shifted: Vec<f32> = logits.iter().map(|&x| x + shift).collect();
        let q = softmax(&shifted);
        for (a, b) in p.iter().zip(q.iter()) {
            prop_assert!((a - b).abs() < 1e-4, "shift invariance broken: {a} vs {b}");
        }
    }

    /// Cross-entropy loss is non-negative and its gradient sums to zero
    /// over the class axis (softmax Jacobian property).
    #[test]
    fn cross_entropy_gradient_sums_to_zero(
        logits in prop::collection::vec(-5.0f32..5.0, 3..8),
        target_raw in 0usize..8,
    ) {
        let c = logits.len();
        let target = target_raw % c;
        let m = Mat::row_vector(&logits);
        let (loss, grad) = cross_entropy(&m, target);
        prop_assert!(loss >= 0.0);
        prop_assert!(grad.sum().abs() < 1e-5, "gradient sum {}", grad.sum());
    }

    /// Network forward passes produce the architecturally implied shapes
    /// for any window length >= the kernel.
    #[test]
    fn network_shape_contract(t in 5usize..30, seed in 0u64..64) {
        let spec = NetworkSpec::new(vec![
            LayerSpec::Conv1d { in_channels: 6, out_channels: 8, kernel: 3, padding: Padding::Same },
            LayerSpec::Relu,
            LayerSpec::MaxPool1d { kernel: 2 },
            LayerSpec::GlobalMaxPool,
            LayerSpec::Dense { in_dim: 8, out_dim: 4 },
        ]);
        let mut net = Network::new(spec, seed);
        let y = net.forward(&Mat::full(t, 6, 0.5), Mode::Eval);
        prop_assert_eq!(y.shape(), (1, 4));
        prop_assert!(y.as_slice().iter().all(|v| v.is_finite()));
    }

    /// Checkpoint JSON roundtrip preserves predictions for arbitrary seeds.
    #[test]
    fn checkpoint_roundtrip(seed in 0u64..256) {
        let spec = NetworkSpec::new(vec![
            LayerSpec::Lstm { in_dim: 4, hidden: 6, return_sequences: false },
            LayerSpec::Dense { in_dim: 6, out_dim: 3 },
        ]);
        let mut net = Network::new(spec, seed);
        let x = Mat::full(7, 4, 0.25);
        let before = net.forward(&x, Mode::Eval);
        let json = net.to_json().unwrap();
        let mut restored = Network::from_json(&json).unwrap();
        prop_assert_eq!(restored.forward(&x, Mode::Eval), before);
    }

    /// LSTM hidden states stay strictly inside (-1, 1) for any input.
    #[test]
    fn lstm_outputs_bounded(x in mat_strategy(12, 3), seed in 0u64..64) {
        let spec = NetworkSpec::new(vec![LayerSpec::Lstm {
            in_dim: 3,
            hidden: 5,
            return_sequences: true,
        }]);
        let mut net = Network::new(spec, seed);
        let y = net.forward(&x, Mode::Eval);
        prop_assert!(y.as_slice().iter().all(|v| v.abs() < 1.0));
    }

    /// Gradient clipping caps the global norm without changing direction.
    #[test]
    fn grad_clip_caps_norm(scale in 0.1f32..20.0) {
        let spec = NetworkSpec::new(vec![LayerSpec::Dense { in_dim: 3, out_dim: 3 }]);
        let mut net = Network::new(spec, 1);
        net.visit_params(&mut |p| {
            for g in p.grad.as_mut_slice() {
                *g = scale;
            }
        });
        let pre = net.clip_grad_norm(1.0);
        let mut sq = 0.0f32;
        net.visit_params(&mut |p| sq += p.grad.as_slice().iter().map(|g| g * g).sum::<f32>());
        let post = sq.sqrt();
        prop_assert!(post <= 1.0 + 1e-4);
        if pre <= 1.0 {
            prop_assert!((post - pre).abs() < 1e-4, "norm changed without need");
        }
    }
}
