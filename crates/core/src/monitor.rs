//! The online safety monitor: a streaming wrapper around the trained
//! pipeline that consumes kinematic frames one at a time and emits alerts —
//! the deployment form factor of Fig. 4 ("deployed on a trusted computing
//! base at the last computational stage in the robot control system").

use crate::pipeline::{ContextMode, TrainedPipeline};
use gestures::Gesture;
use kinematics::{KinematicSample, SlidingWindow};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::time::Instant;

/// One monitor decision for the newest frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonitorOutput {
    /// Inferred operational context.
    pub gesture: Gesture,
    /// Probability that the current gesture is unsafe.
    pub unsafe_probability: f32,
    /// Whether the alert threshold was crossed.
    pub alert: bool,
    /// Inference latency for this frame (ms) — the paper's "average
    /// computation time" (Table VIII reports 1.5–3.2 ms).
    pub compute_ms: f32,
}

/// Streaming safety monitor.
pub struct SafetyMonitor {
    pipeline: TrainedPipeline,
    window: SlidingWindow,
    gesture_window: SlidingWindow,
    /// Trailing raw gesture predictions for the causal mode filter.
    recent: VecDeque<usize>,
    mode: ContextMode,
    threshold: f32,
    frames_seen: usize,
    alerts: usize,
}

impl SafetyMonitor {
    /// Wraps a trained pipeline for streaming use.
    pub fn new(pipeline: TrainedPipeline, mode: ContextMode) -> Self {
        let width = pipeline.config.window.width;
        let dims = pipeline.in_dim;
        let gesture_window =
            SlidingWindow::new(pipeline.config.gesture_window, pipeline.gesture_in_dim);
        Self {
            pipeline,
            window: SlidingWindow::new(width, dims),
            gesture_window,
            recent: VecDeque::new(),
            mode,
            threshold: 0.5,
            frames_seen: 0,
            alerts: 0,
        }
    }

    /// Sets the alert threshold (default 0.5).
    ///
    /// # Panics
    ///
    /// Panics if not within `(0, 1)`.
    pub fn set_threshold(&mut self, threshold: f32) {
        assert!((0.0..1.0).contains(&threshold) && threshold > 0.0, "threshold must be in (0,1)");
        self.threshold = threshold;
    }

    /// Feeds one frame; returns a decision once the window is warm.
    /// With [`ContextMode::Perfect`] the caller must use
    /// [`SafetyMonitor::push_with_context`] instead.
    pub fn push(&mut self, frame: &KinematicSample) -> Option<MonitorOutput> {
        self.push_inner(frame, None)
    }

    /// Feeds one frame with externally supplied context (used for the
    /// perfect-boundary upper bound).
    pub fn push_with_context(
        &mut self,
        frame: &KinematicSample,
        gesture: Gesture,
    ) -> Option<MonitorOutput> {
        self.push_inner(frame, Some(gesture))
    }

    fn push_inner(
        &mut self,
        frame: &KinematicSample,
        context: Option<Gesture>,
    ) -> Option<MonitorOutput> {
        self.frames_seen += 1;
        let features = self
            .pipeline
            .normalizer
            .apply_frame(&frame.to_feature_vec(&self.pipeline.config.features));
        let gfeatures = self
            .pipeline
            .gesture_normalizer
            .apply_frame(&frame.to_feature_vec(&self.pipeline.config.gesture_features));
        let window = self.window.push(&features);
        let gwindow = self.gesture_window.push(&gfeatures);
        // Emit only once both stages are warm.
        let (window, gwindow) = (window?, gwindow?);

        let start = Instant::now();
        let gesture_idx = match (self.mode, context) {
            (ContextMode::Perfect, Some(g)) => g.index(),
            (ContextMode::Perfect, None) => {
                panic!("Perfect mode requires push_with_context")
            }
            _ => {
                let raw = self.pipeline.gesture_net.predict(&gwindow).argmax_row(0);
                let k = self.pipeline.config.gesture_smoothing.max(1);
                if self.recent.len() == k {
                    self.recent.pop_front();
                }
                self.recent.push_back(raw);
                mode_of_deque(&self.recent)
            }
        };
        let score = self.pipeline.score_window(&window, gesture_idx, self.mode);
        let compute_ms = start.elapsed().as_secs_f32() * 1000.0;

        let alert = score > self.threshold;
        if alert {
            self.alerts += 1;
        }
        Some(MonitorOutput {
            gesture: Gesture::from_index(gesture_idx).unwrap_or(Gesture::G1),
            unsafe_probability: score,
            alert,
            compute_ms,
        })
    }

    /// Clears the window buffers (call between demonstrations/procedures).
    pub fn reset(&mut self) {
        self.window.clear();
        self.gesture_window.clear();
        self.recent.clear();
        self.frames_seen = 0;
        self.alerts = 0;
    }

    /// Frames consumed since the last reset.
    pub fn frames_seen(&self) -> usize {
        self.frames_seen
    }

    /// Alerts raised since the last reset.
    pub fn alerts(&self) -> usize {
        self.alerts
    }

    /// Releases the wrapped pipeline.
    pub fn into_pipeline(self) -> TrainedPipeline {
        self.pipeline
    }
}

/// Most frequent value in a non-empty deque (earliest-seen wins ties),
/// matching the offline mode filter in `pipeline::run_demo`.
fn mode_of_deque(values: &VecDeque<usize>) -> usize {
    debug_assert!(!values.is_empty());
    let mut counts = std::collections::BTreeMap::new();
    for &v in values {
        *counts.entry(v).or_insert(0usize) += 1;
    }
    let mut best = *values.front().expect("non-empty");
    let mut best_n = 0usize;
    for &v in values {
        let n = counts[&v];
        if n > best_n {
            best = v;
            best_n = n;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MonitorConfig;
    use gestures::Task;
    use jigsaws::{generate, GeneratorConfig};
    use kinematics::FeatureSet;

    fn trained() -> (TrainedPipeline, kinematics::Dataset) {
        let ds = generate(&GeneratorConfig::fast(Task::Suturing).with_seed(31));
        let mut cfg = MonitorConfig::fast(FeatureSet::CRG).with_seed(5);
        cfg.train.epochs = 3;
        cfg.train_stride = 4;
        let idx: Vec<usize> = (0..ds.len()).collect();
        (TrainedPipeline::train(&ds, &idx, &cfg), ds)
    }

    #[test]
    fn streaming_monitor_matches_offline_run() {
        let (mut pipeline, ds) = trained();
        let demo = &ds.demos[0];
        let offline = pipeline.run_demo(demo, ContextMode::Predicted);

        let mut monitor = SafetyMonitor::new(pipeline, ContextMode::Predicted);
        let mut online_gestures = Vec::new();
        let mut online_scores = Vec::new();
        for frame in &demo.frames {
            if let Some(out) = monitor.push(frame) {
                online_gestures.push(out.gesture.index());
                online_scores.push(out.unsafe_probability);
            }
        }
        let warm = monitor
            .pipeline
            .config
            .window
            .width
            .max(monitor.pipeline.config.gesture_window);
        assert_eq!(online_gestures.len(), demo.len() - warm + 1);
        assert_eq!(&offline.gesture_pred[warm - 1..], &online_gestures[..]);
        for (a, b) in offline.unsafe_score[warm - 1..].iter().zip(online_scores.iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn monitor_warms_up_before_emitting() {
        let (pipeline, ds) = trained();
        let warm = pipeline.config.window.width.max(pipeline.config.gesture_window);
        let mut monitor = SafetyMonitor::new(pipeline, ContextMode::Predicted);
        for (i, frame) in ds.demos[0].frames.iter().enumerate().take(warm) {
            let out = monitor.push(frame);
            assert_eq!(out.is_some(), i + 1 >= warm, "frame {i}");
        }
    }

    #[test]
    fn reset_clears_state() {
        let (pipeline, ds) = trained();
        let mut monitor = SafetyMonitor::new(pipeline, ContextMode::Predicted);
        for frame in ds.demos[0].frames.iter().take(10) {
            let _ = monitor.push(frame);
        }
        assert_eq!(monitor.frames_seen(), 10);
        monitor.reset();
        assert_eq!(monitor.frames_seen(), 0);
        assert!(monitor.push(&ds.demos[0].frames[0]).is_none());
    }

    #[test]
    fn perfect_mode_uses_supplied_context() {
        let (pipeline, ds) = trained();
        let mut monitor = SafetyMonitor::new(pipeline, ContextMode::Perfect);
        let demo = &ds.demos[1];
        for (frame, &g) in demo.frames.iter().zip(demo.gestures.iter()) {
            if let Some(out) = monitor.push_with_context(frame, g) {
                assert_eq!(out.gesture, g);
            }
        }
    }

    #[test]
    fn threshold_changes_alert_rate() {
        let (pipeline, ds) = trained();
        let mut strict = SafetyMonitor::new(pipeline, ContextMode::Predicted);
        strict.set_threshold(0.99);
        let mut lax_alerts = 0usize;
        let mut strict_alerts = 0usize;
        for frame in &ds.demos[2].frames {
            if let Some(out) = strict.push(frame) {
                strict_alerts += out.alert as usize;
                lax_alerts += (out.unsafe_probability > 0.1) as usize;
            }
        }
        assert!(strict_alerts <= lax_alerts);
    }
}
