//! The online safety monitor: streaming adapters around the shared
//! [`InferenceEngine`] — the deployment form factor of Fig. 4 ("deployed on
//! a trusted computing base at the last computational stage in the robot
//! control system").
//!
//! [`SafetyMonitor`] wraps one pipeline with one engine (one surgical
//! session). [`MonitorPool`] multiplexes N independent sessions over a
//! **single** shared [`TrainedPipeline`]: engines hold only per-session
//! state (windows, smoothing filter, scratch buffers), so the memory cost
//! of an extra concurrent procedure is a few kilobytes rather than a copy
//! of the model weights.

use crate::engine::{EngineError, EngineStep, InferenceEngine};
use crate::pipeline::{ContextMode, TrainedPipeline};
use gestures::Gesture;
use kinematics::KinematicSample;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One monitor decision for the newest frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonitorOutput {
    /// Inferred operational context.
    pub gesture: Gesture,
    /// Probability that the current gesture is unsafe.
    pub unsafe_probability: f32,
    /// Whether the alert threshold was crossed.
    pub alert: bool,
    /// Inference latency for this frame (ms) — the paper's "average
    /// computation time" (Table VIII reports 1.5–3.2 ms).
    pub compute_ms: f32,
}

/// Converts a warm engine step into a monitor decision. The engine emits a
/// typed [`Gesture`] (provably in-range at the filter boundary), so no
/// index-to-gesture fallback exists on this path any more — an earlier
/// revision mapped out-of-range indices to `Gesture::G1` via `unwrap_or`,
/// silently reporting a wrong operational context.
// lint: hot-path
pub(crate) fn output_from_step(
    step: &EngineStep,
    threshold: f32,
    compute_ms: f32,
) -> Option<MonitorOutput> {
    let (gesture, score) = step.complete()?;
    Some(MonitorOutput { gesture, unsafe_probability: score, alert: score > threshold, compute_ms })
}

fn checked_threshold(threshold: f32) -> f32 {
    assert!(threshold > 0.0 && threshold < 1.0, "threshold must be in (0,1)");
    threshold
}

/// Streaming safety monitor for a single session.
pub struct SafetyMonitor {
    pipeline: TrainedPipeline,
    engine: InferenceEngine,
    threshold: f32,
    alerts: usize,
}

impl SafetyMonitor {
    /// Wraps a trained pipeline for streaming use.
    pub fn new(pipeline: TrainedPipeline, mode: ContextMode) -> Self {
        let engine = InferenceEngine::new(&pipeline, mode);
        Self { pipeline, engine, threshold: 0.5, alerts: 0 }
    }

    /// Sets the alert threshold (default 0.5).
    ///
    /// # Panics
    ///
    /// Panics if not within `(0, 1)`.
    pub fn set_threshold(&mut self, threshold: f32) {
        self.threshold = checked_threshold(threshold);
    }

    /// Feeds one frame; returns `Ok(Some(..))` once both stages are warm.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::MissingContext`] in [`ContextMode::Perfect`]
    /// (use [`SafetyMonitor::push_with_context`]); the frame is not
    /// consumed, so a misconfigured caller degrades gracefully instead of
    /// crashing a serving process.
    pub fn push(&mut self, frame: &KinematicSample) -> Result<Option<MonitorOutput>, EngineError> {
        let start = Instant::now();
        let step = self.engine.step(&self.pipeline, frame)?;
        Ok(self.finish(step, start))
    }

    /// Feeds one frame with externally supplied context (used for the
    /// perfect-boundary upper bound).
    pub fn push_with_context(
        &mut self,
        frame: &KinematicSample,
        gesture: Gesture,
    ) -> Option<MonitorOutput> {
        let start = Instant::now();
        let step = self.engine.step_with_context(&self.pipeline, frame, gesture);
        self.finish(step, start)
    }

    fn finish(&mut self, step: EngineStep, start: Instant) -> Option<MonitorOutput> {
        let compute_ms = start.elapsed().as_secs_f32() * 1000.0;
        let out = output_from_step(&step, self.threshold, compute_ms);
        if let Some(o) = &out {
            self.alerts += o.alert as usize;
        }
        out
    }

    /// Clears the per-session state (call between demonstrations).
    pub fn reset(&mut self) {
        self.engine.reset();
        self.alerts = 0;
    }

    /// Frames consumed since the last reset.
    pub fn frames_seen(&self) -> usize {
        self.engine.frames_seen()
    }

    /// Alerts raised since the last reset.
    pub fn alerts(&self) -> usize {
        self.alerts
    }

    /// Releases the wrapped pipeline.
    pub fn into_pipeline(self) -> TrainedPipeline {
        self.pipeline
    }
}

/// Identifier of a session inside a [`MonitorPool`].
pub type SessionId = usize;

/// N concurrent surgical sessions multiplexed over one shared pipeline.
///
/// Every session behaves exactly like its own [`SafetyMonitor`] — the
/// engines are fully independent (verified by the interleaving tests) —
/// but the model weights exist once. Frames from different sessions may be
/// pushed in any interleaving.
pub struct MonitorPool {
    pipeline: TrainedPipeline,
    mode: ContextMode,
    threshold: f32,
    sessions: Vec<InferenceEngine>,
    /// Per-session alert counters (same contract as
    /// [`SafetyMonitor::alerts`]).
    alerts: Vec<usize>,
}

impl MonitorPool {
    /// Creates an empty pool; add sessions with
    /// [`MonitorPool::add_session`].
    pub fn new(pipeline: TrainedPipeline, mode: ContextMode) -> Self {
        Self { pipeline, mode, threshold: 0.5, sessions: Vec::new(), alerts: Vec::new() }
    }

    /// Creates a pool with `n` sessions.
    pub fn with_sessions(pipeline: TrainedPipeline, mode: ContextMode, n: usize) -> Self {
        let mut pool = Self::new(pipeline, mode);
        for _ in 0..n {
            pool.add_session();
        }
        pool
    }

    /// Opens a new session and returns its id.
    pub fn add_session(&mut self) -> SessionId {
        self.sessions.push(InferenceEngine::new(&self.pipeline, self.mode));
        self.alerts.push(0);
        self.sessions.len() - 1
    }

    /// Number of open sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Sets the alert threshold shared by all sessions (default 0.5).
    ///
    /// # Panics
    ///
    /// Panics if not within `(0, 1)`.
    pub fn set_threshold(&mut self, threshold: f32) {
        self.threshold = checked_threshold(threshold);
    }

    /// Feeds one frame of `session`; returns `Ok(Some(..))` once that
    /// session is warm.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::MissingContext`] in [`ContextMode::Perfect`]
    /// (use [`MonitorPool::push_with_context`]) without consuming the
    /// frame — one misconfigured caller cannot crash a pool hosting other
    /// sessions.
    ///
    /// # Panics
    ///
    /// Panics on an unknown session id.
    pub fn push(
        &mut self,
        session: SessionId,
        frame: &KinematicSample,
    ) -> Result<Option<MonitorOutput>, EngineError> {
        let start = Instant::now();
        let step = self.sessions[session].step(&self.pipeline, frame)?;
        let compute_ms = start.elapsed().as_secs_f32() * 1000.0;
        Ok(self.finish(session, step, compute_ms))
    }

    /// Feeds one frame of `session` with externally supplied context.
    ///
    /// # Panics
    ///
    /// Panics on an unknown session id.
    pub fn push_with_context(
        &mut self,
        session: SessionId,
        frame: &KinematicSample,
        gesture: Gesture,
    ) -> Option<MonitorOutput> {
        let start = Instant::now();
        let step = self.sessions[session].step_with_context(&self.pipeline, frame, gesture);
        let compute_ms = start.elapsed().as_secs_f32() * 1000.0;
        self.finish(session, step, compute_ms)
    }

    fn finish(
        &mut self,
        session: SessionId,
        step: EngineStep,
        compute_ms: f32,
    ) -> Option<MonitorOutput> {
        let out = output_from_step(&step, self.threshold, compute_ms);
        if let Some(o) = &out {
            self.alerts[session] += o.alert as usize;
        }
        out
    }

    /// Alerts raised by `session` since it was opened or last reset.
    ///
    /// # Panics
    ///
    /// Panics on an unknown session id.
    pub fn alerts(&self, session: SessionId) -> usize {
        self.alerts[session]
    }

    /// Clears one session's state (call between procedures): the engine's
    /// sliding windows, the gesture majority filter, **and** the session's
    /// alert counter — a reset session is indistinguishable from a fresh
    /// one (an earlier revision reset only the engine, so alert counts
    /// leaked across procedures).
    ///
    /// # Panics
    ///
    /// Panics on an unknown session id.
    pub fn reset_session(&mut self, session: SessionId) {
        self.sessions[session].reset();
        self.alerts[session] = 0;
    }

    /// The shared pipeline.
    pub fn pipeline(&self) -> &TrainedPipeline {
        &self.pipeline
    }

    /// Releases the shared pipeline, dropping all sessions.
    pub fn into_pipeline(self) -> TrainedPipeline {
        self.pipeline
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MonitorConfig;
    use gestures::Task;
    use jigsaws::{generate, GeneratorConfig};
    use kinematics::FeatureSet;

    fn trained() -> (TrainedPipeline, kinematics::Dataset) {
        let ds = generate(&GeneratorConfig::fast(Task::Suturing).with_seed(31));
        let mut cfg = MonitorConfig::fast(FeatureSet::CRG).with_seed(5);
        cfg.train.epochs = 3;
        cfg.train_stride = 4;
        let idx: Vec<usize> = (0..ds.len()).collect();
        (TrainedPipeline::train(&ds, &idx, &cfg), ds)
    }

    #[test]
    fn streaming_monitor_matches_offline_run() {
        let (pipeline, ds) = trained();
        let demo = &ds.demos[0];
        let offline = pipeline.run_demo(demo, ContextMode::Predicted);

        let mut monitor = SafetyMonitor::new(pipeline, ContextMode::Predicted);
        let mut online_gestures = Vec::new();
        let mut online_scores = Vec::new();
        for frame in &demo.frames {
            if let Some(out) = monitor.push(frame).expect("Predicted mode cannot fail") {
                online_gestures.push(out.gesture.index());
                online_scores.push(out.unsafe_probability);
            }
        }
        let warm = monitor.pipeline.config.window.width.max(monitor.pipeline.config.gesture_window);
        assert_eq!(online_gestures.len(), demo.len() - warm + 1);
        assert_eq!(&offline.gesture_pred[warm - 1..], &online_gestures[..]);
        // Offline and online are the same engine code: exact equality.
        assert_eq!(&offline.unsafe_score[warm - 1..], &online_scores[..]);
    }

    #[test]
    fn monitor_warms_up_before_emitting() {
        let (pipeline, ds) = trained();
        let warm = pipeline.config.window.width.max(pipeline.config.gesture_window);
        let mut monitor = SafetyMonitor::new(pipeline, ContextMode::Predicted);
        for (i, frame) in ds.demos[0].frames.iter().enumerate().take(warm) {
            let out = monitor.push(frame).expect("Predicted mode cannot fail");
            assert_eq!(out.is_some(), i + 1 >= warm, "frame {i}");
        }
    }

    #[test]
    fn reset_clears_state() {
        let (pipeline, ds) = trained();
        let mut monitor = SafetyMonitor::new(pipeline, ContextMode::Predicted);
        for frame in ds.demos[0].frames.iter().take(10) {
            let _ = monitor.push(frame);
        }
        assert_eq!(monitor.frames_seen(), 10);
        monitor.reset();
        assert_eq!(monitor.frames_seen(), 0);
        assert!(monitor.push(&ds.demos[0].frames[0]).unwrap().is_none());
    }

    #[test]
    fn perfect_mode_uses_supplied_context() {
        let (pipeline, ds) = trained();
        let mut monitor = SafetyMonitor::new(pipeline, ContextMode::Perfect);
        let demo = &ds.demos[1];
        for (frame, &g) in demo.frames.iter().zip(demo.gestures.iter()) {
            if let Some(out) = monitor.push_with_context(frame, g) {
                assert_eq!(out.gesture, g);
            }
        }
    }

    #[test]
    fn threshold_changes_alert_rate() {
        let (pipeline, ds) = trained();
        let mut strict = SafetyMonitor::new(pipeline, ContextMode::Predicted);
        strict.set_threshold(0.99);
        let mut lax_alerts = 0usize;
        let mut strict_alerts = 0usize;
        for frame in &ds.demos[2].frames {
            if let Some(out) = strict.push(frame).unwrap() {
                strict_alerts += out.alert as usize;
                lax_alerts += (out.unsafe_probability > 0.1) as usize;
            }
        }
        assert!(strict_alerts <= lax_alerts);
    }

    #[test]
    fn pool_sessions_match_dedicated_monitors() {
        let (pipeline, ds) = trained();
        // Reference: each demo through its own SafetyMonitor.
        let mut reference: Vec<Vec<MonitorOutput>> = Vec::new();
        let mut pipeline = pipeline;
        for demo in ds.demos.iter().take(3) {
            let mut monitor = SafetyMonitor::new(pipeline, ContextMode::Predicted);
            let outs = demo.frames.iter().filter_map(|f| monitor.push(f).unwrap()).collect();
            reference.push(outs);
            pipeline = monitor.into_pipeline();
        }

        // Pool: the same three demos, frames interleaved round-robin.
        let mut pool = MonitorPool::with_sessions(pipeline, ContextMode::Predicted, 3);
        let mut pooled: Vec<Vec<MonitorOutput>> = vec![Vec::new(); 3];
        let longest = ds.demos.iter().take(3).map(|d| d.len()).max().unwrap();
        for t in 0..longest {
            for (s, demo) in ds.demos.iter().take(3).enumerate() {
                if let Some(frame) = demo.frames.get(t) {
                    if let Some(out) = pool.push(s, frame).unwrap() {
                        pooled[s].push(out);
                    }
                }
            }
        }

        for (s, (a, b)) in reference.iter().zip(pooled.iter()).enumerate() {
            assert_eq!(a.len(), b.len(), "session {s} output count");
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.gesture, y.gesture, "session {s}");
                // Exact equality: same engine code, same weights.
                assert_eq!(x.unsafe_probability, y.unsafe_probability, "session {s}");
                assert_eq!(x.alert, y.alert, "session {s}");
            }
        }
    }

    /// The deterministic fields of an output stream (compute_ms is
    /// wall-clock and legitimately differs between runs).
    fn run_fresh_monitor(
        pipeline: TrainedPipeline,
        frames: &[KinematicSample],
    ) -> (TrainedPipeline, Vec<(usize, u32, bool)>, usize) {
        let mut monitor = SafetyMonitor::new(pipeline, ContextMode::Predicted);
        let outs: Vec<(usize, u32, bool)> = frames
            .iter()
            .filter_map(|f| monitor.push(f).unwrap())
            .map(|o| (o.gesture.index(), o.unsafe_probability.to_bits(), o.alert))
            .collect();
        let alerts = monitor.alerts();
        (monitor.into_pipeline(), outs, alerts)
    }

    #[test]
    fn monitor_reset_is_bit_equal_to_a_fresh_session() {
        let (pipeline, ds) = trained();
        let frames = &ds.demos[0].frames;
        let (pipeline, fresh, fresh_alerts) = run_fresh_monitor(pipeline, frames);

        // Same monitor, dirtied by a partial run of a *different* demo
        // (windows, majority filter, and alert counter all populated),
        // then reset.
        let mut monitor = SafetyMonitor::new(pipeline, ContextMode::Predicted);
        monitor.set_threshold(0.5);
        for frame in ds.demos[1].frames.iter().take(40) {
            let _ = monitor.push(frame);
        }
        monitor.reset();
        assert_eq!(monitor.alerts(), 0, "reset must clear the alert counter");
        assert_eq!(monitor.frames_seen(), 0);

        let replay: Vec<(usize, u32, bool)> = frames
            .iter()
            .filter_map(|f| monitor.push(f).unwrap())
            .map(|o| (o.gesture.index(), o.unsafe_probability.to_bits(), o.alert))
            .collect();
        assert_eq!(replay, fresh, "post-reset output must be bit-equal to a fresh session");
        assert_eq!(monitor.alerts(), fresh_alerts);
    }

    #[test]
    fn pool_reset_session_is_bit_equal_to_a_fresh_session() {
        let (pipeline, ds) = trained();
        let frames = &ds.demos[0].frames;
        let (pipeline, fresh, fresh_alerts) = run_fresh_monitor(pipeline, frames);

        let mut pool = MonitorPool::with_sessions(pipeline, ContextMode::Predicted, 2);
        // Dirty both sessions, then reset only session 0.
        for frame in ds.demos[1].frames.iter().take(40) {
            let _ = pool.push(0, frame);
            let _ = pool.push(1, frame);
        }
        let session1_alerts = pool.alerts(1);
        pool.reset_session(0);
        assert_eq!(pool.alerts(0), 0, "reset_session must clear the alert counter");
        assert_eq!(pool.alerts(1), session1_alerts, "other sessions keep their counters");

        let replay: Vec<(usize, u32, bool)> = frames
            .iter()
            .filter_map(|f| pool.push(0, f).unwrap())
            .map(|o| (o.gesture.index(), o.unsafe_probability.to_bits(), o.alert))
            .collect();
        assert_eq!(replay, fresh, "post-reset session must be bit-equal to a fresh one");
        assert_eq!(pool.alerts(0), fresh_alerts);
    }

    #[test]
    fn pool_reset_affects_only_one_session() {
        let (pipeline, ds) = trained();
        let warm = pipeline.config.window.width.max(pipeline.config.gesture_window);
        let mut pool = MonitorPool::with_sessions(pipeline, ContextMode::Predicted, 2);
        // Warm both sessions fully.
        for frame in ds.demos[0].frames.iter().take(warm + 3) {
            let _ = pool.push(0, frame);
            let _ = pool.push(1, frame);
        }
        assert!(pool.push(0, &ds.demos[0].frames[warm + 3]).unwrap().is_some(), "session 0 warm");
        assert!(pool.push(1, &ds.demos[0].frames[warm + 3]).unwrap().is_some(), "session 1 warm");

        pool.reset_session(0);
        // Session 0 is cold again; session 1 keeps emitting from its state.
        assert!(pool.push(0, &ds.demos[0].frames[0]).unwrap().is_none(), "session 0 reset");
        assert!(
            pool.push(1, &ds.demos[0].frames[warm + 4]).unwrap().is_some(),
            "session 1 unaffected by session 0's reset"
        );
        assert_eq!(pool.session_count(), 2);
    }
}
