//! Network-spec builders for the two pipeline stages.

use crate::config::{ErrorModelKind, MonitorConfig};
use gestures::NUM_GESTURES;
use nn::{LayerSpec, NetworkSpec, Padding};

/// The gesture classifier: 2-layer stacked LSTM → dense(ReLU) → softmax
/// logits over the 15 gesture classes (§III "stacked LSTM layers to provide
/// greater abstraction of the input sequence", §V-A best model).
pub fn gesture_classifier_spec(cfg: &MonitorConfig, in_dim: usize) -> NetworkSpec {
    let (h1, h2) = cfg.gesture_hidden;
    NetworkSpec::new(vec![
        LayerSpec::Lstm { in_dim, hidden: h1, return_sequences: true },
        LayerSpec::Lstm { in_dim: h1, hidden: h2, return_sequences: false },
        LayerSpec::Dense { in_dim: h2, out_dim: cfg.gesture_dense },
        LayerSpec::Relu,
        LayerSpec::Dense { in_dim: cfg.gesture_dense, out_dim: NUM_GESTURES },
    ])
}

/// An erroneous-gesture (binary safe/unsafe) classifier.
pub fn error_classifier_spec(cfg: &MonitorConfig, in_dim: usize) -> NetworkSpec {
    match cfg.error_model {
        ErrorModelKind::Conv { c1, c2, dense } => NetworkSpec::new(vec![
            LayerSpec::Conv1d {
                in_channels: in_dim,
                out_channels: c1,
                kernel: 3,
                padding: Padding::Same,
            },
            LayerSpec::Relu,
            LayerSpec::Conv1d {
                in_channels: c1,
                out_channels: c2,
                kernel: 3,
                padding: Padding::Same,
            },
            LayerSpec::Relu,
            LayerSpec::GlobalMaxPool,
            LayerSpec::Dense { in_dim: c2, out_dim: dense },
            LayerSpec::Relu,
            LayerSpec::Dense { in_dim: dense, out_dim: 2 },
        ]),
        ErrorModelKind::Lstm { hidden, dense } => NetworkSpec::new(vec![
            LayerSpec::Lstm { in_dim, hidden, return_sequences: false },
            LayerSpec::Dense { in_dim: hidden, out_dim: dense },
            LayerSpec::Relu,
            LayerSpec::Dense { in_dim: dense, out_dim: 2 },
        ]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kinematics::FeatureSet;
    use nn::{Mat, Mode, Network};

    #[test]
    fn gesture_spec_produces_15_logits() {
        let cfg = MonitorConfig::fast(FeatureSet::ALL);
        let mut net = Network::new(gesture_classifier_spec(&cfg, 38), 1);
        let y = net.forward(&Mat::zeros(5, 38), Mode::Eval);
        assert_eq!(y.shape(), (1, NUM_GESTURES));
    }

    #[test]
    fn error_specs_produce_binary_logits() {
        let cfg = MonitorConfig::fast(FeatureSet::CG);
        let mut conv = Network::new(error_classifier_spec(&cfg, 8), 1);
        assert_eq!(conv.forward(&Mat::zeros(10, 8), Mode::Eval).shape(), (1, 2));
        let cfg = cfg.with_error_model(crate::config::ErrorModelKind::Lstm { hidden: 8, dense: 8 });
        let mut lstm = Network::new(error_classifier_spec(&cfg, 8), 1);
        assert_eq!(lstm.forward(&Mat::zeros(10, 8), Mode::Eval).shape(), (1, 2));
    }
}
