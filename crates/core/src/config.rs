//! Monitor configuration: model architectures, window parameters, and
//! training hyper-parameters.

use kinematics::{FeatureSet, WindowConfig};
use nn::{StepDecay, TrainConfig};
use serde::{Deserialize, Serialize};

/// Architecture of the erroneous-gesture classifiers (§V-A ablates LSTM vs
/// 1D-CNN; Tables V/VI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorModelKind {
    /// 1D-CNN: two same-padded conv layers, global max-pool, dense head
    /// (the paper's best performer).
    Conv {
        /// First conv output channels.
        c1: usize,
        /// Second conv output channels.
        c2: usize,
        /// Dense head width.
        dense: usize,
    },
    /// LSTM: single recurrent layer and a dense head.
    Lstm {
        /// Hidden size.
        hidden: usize,
        /// Dense head width.
        dense: usize,
    },
}

impl std::fmt::Display for ErrorModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ErrorModelKind::Conv { .. } => f.write_str("Conv"),
            ErrorModelKind::Lstm { .. } => f.write_str("LSTM"),
        }
    }
}

/// Numeric tier the monitor serves at.
///
/// `F32` is the training substrate and the accuracy reference. `Int8`
/// serves the post-training-quantized twin of the pipeline
/// ([`crate::pipeline::TrainedPipeline::quantize`]): per-channel int8
/// weights and calibrated activation scales over exact integer GEMMs
/// (`nn::quant`), trading a bounded, parity-gated accuracy delta for
/// higher sessions-per-core density. Both tiers keep the workspace's
/// determinism contract — outputs are bit-identical across GEMM backends,
/// batch sizes, and worker counts *within* a tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Precision {
    /// Full-precision f32 inference (default; the accuracy reference).
    #[default]
    F32,
    /// Calibrated int8 inference over the quantized pipeline tier.
    Int8,
}

impl Precision {
    /// Parses the spellings accepted by the `MONITOR_PRECISION` environment
    /// knob (`"f32"` / `"int8"`, case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "f32" => Some(Precision::F32),
            "int8" | "i8" => Some(Precision::Int8),
            _ => None,
        }
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Precision::F32 => f.write_str("f32"),
            Precision::Int8 => f.write_str("int8"),
        }
    }
}

/// Full monitor configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonitorConfig {
    /// Kinematic feature subset fed to the erroneous-gesture classifiers
    /// (Tables V/VI ablate this).
    pub features: FeatureSet,
    /// Sliding-window shape of the error stage (paper: w=5/s=1 Suturing,
    /// w=10/s=1 Block Transfer).
    pub window: WindowConfig,
    /// Feature subset fed to the gesture classifier (the paper feeds all 38
    /// kinematic variables to this stage).
    pub gesture_features: FeatureSet,
    /// Window width of the gesture classifier. The paper's stage 1 is a
    /// stateful LSTM with time-step 1 over the whole stream; our stateless
    /// equivalent gives stage 1 a longer window than stage 2 so it can see
    /// gesture transitions (DESIGN.md §10).
    pub gesture_window: usize,
    /// Stacked-LSTM hidden sizes of the gesture classifier (paper: 512, 96).
    pub gesture_hidden: (usize, usize),
    /// Causal mode-filter length over the predicted gesture stream
    /// (0 disables). The paper's stateful LSTM "learns to have smooth
    /// output over time"; stateless windows need explicit smoothing to
    /// match that behaviour. Only past predictions are used, so the
    /// streaming monitor stays online.
    pub gesture_smoothing: usize,
    /// Dense layer width after the LSTM stack (paper: 64).
    pub gesture_dense: usize,
    /// Erroneous-gesture model architecture.
    pub error_model: ErrorModelKind,
    /// Training hyper-parameters (both stages).
    pub train: TrainConfig,
    /// Stride used when harvesting training windows (1 = every frame; the
    /// scaled-down default subsamples for CPU speed).
    pub train_stride: usize,
    /// Minimum windows of a gesture class required to train a dedicated
    /// error classifier (smaller classes fall back to the global one).
    pub min_gesture_windows: usize,
    /// Worker threads for stage-2 per-gesture classifier training (clamped
    /// to at least 1). Each gesture trains from its own derived seed, so the
    /// resulting weights are **bit-identical for every worker count** — this
    /// only trades wall-clock for cores.
    pub train_workers: usize,
    /// Weight-initialization / shuffling seed.
    pub seed: u64,
}

impl MonitorConfig {
    /// Scaled-down defaults that train on CPU in seconds (DESIGN.md §10).
    pub fn fast(features: FeatureSet) -> Self {
        Self {
            features,
            window: WindowConfig::new(5, 1),
            gesture_features: FeatureSet::ALL,
            gesture_window: 15,
            gesture_hidden: (48, 24),
            gesture_smoothing: 9,
            gesture_dense: 16,
            error_model: ErrorModelKind::Conv { c1: 16, c2: 16, dense: 16 },
            train: TrainConfig {
                epochs: 12,
                batch_size: 32,
                schedule: StepDecay::new(8e-3, 0.5, 6),
                patience: Some(4),
                class_weights: None,
                grad_clip: Some(5.0),
                seed: 7,
            },
            train_stride: 2,
            min_gesture_windows: 24,
            train_workers: 2,
            seed: 7,
        }
    }

    /// The paper's model sizes (§V-A): 2-layer stacked LSTM of 512 and 96
    /// units, 64-unit dense layer, Adam at 1e-4. Training this on CPU is
    /// slow; it exists so the exact architecture is expressible.
    pub fn paper(features: FeatureSet) -> Self {
        Self {
            features,
            window: WindowConfig::new(5, 1),
            gesture_features: FeatureSet::ALL,
            gesture_window: 30,
            gesture_hidden: (512, 96),
            gesture_smoothing: 15,
            gesture_dense: 64,
            error_model: ErrorModelKind::Conv { c1: 512, c2: 128, dense: 32 },
            train: TrainConfig {
                epochs: 100,
                batch_size: 32,
                schedule: StepDecay::new(1e-4, 0.5, 20),
                patience: Some(10),
                class_weights: None,
                grad_clip: Some(5.0),
                seed: 7,
            },
            train_stride: 1,
            min_gesture_windows: 50,
            train_workers: 8,
            seed: 7,
        }
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.train.seed = seed;
        self
    }

    /// Builder-style window override (Block Transfer uses w=10).
    pub fn with_window(mut self, width: usize, stride: usize) -> Self {
        self.window = WindowConfig::new(width, stride);
        self
    }

    /// Builder-style error-model override.
    pub fn with_error_model(mut self, kind: ErrorModelKind) -> Self {
        self.error_model = kind;
        self
    }

    /// Builder-style training-worker override (weights stay bit-identical
    /// for every value; see [`MonitorConfig::train_workers`]).
    pub fn with_train_workers(mut self, workers: usize) -> Self {
        self.train_workers = workers;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_section5() {
        let cfg = MonitorConfig::paper(FeatureSet::ALL);
        assert_eq!(cfg.gesture_hidden, (512, 96));
        assert_eq!(cfg.gesture_dense, 64);
        assert_eq!(cfg.window.width, 5);
    }

    #[test]
    fn builders_compose() {
        let cfg = MonitorConfig::fast(FeatureSet::CG)
            .with_seed(11)
            .with_window(10, 1)
            .with_error_model(ErrorModelKind::Lstm { hidden: 8, dense: 8 });
        assert_eq!(cfg.seed, 11);
        assert_eq!(cfg.train.seed, 11);
        assert_eq!(cfg.window.width, 10);
        assert_eq!(cfg.error_model.to_string(), "LSTM");
    }

    #[test]
    fn config_serde_roundtrip() {
        let cfg = MonitorConfig::fast(FeatureSet::ALL);
        let json = serde_json::to_string(&cfg).unwrap();
        let back: MonitorConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }
}
