//! The shared incremental inference core.
//!
//! Both deployment shapes of the monitor — offline replay
//! ([`TrainedPipeline::run_demo`](crate::pipeline::TrainedPipeline::run_demo))
//! and online streaming ([`SafetyMonitor`](crate::monitor::SafetyMonitor) /
//! [`MonitorPool`](crate::monitor::MonitorPool)) — are thin adapters over
//! [`InferenceEngine`]: an allocation-free, frame-at-a-time evaluator that
//! owns the per-session state (sliding windows, the causal gesture-smoothing
//! filter, and inference scratch buffers) while the model weights stay in the
//! shared [`TrainedPipeline`]. Offline/online agreement is therefore true by
//! construction: the two paths execute literally the same code.
//!
//! Per frame, the steady-state hot path performs **no heap allocation**:
//! feature extraction, normalization, windowing, both network forward passes
//! (via [`nn::Network::predict_into`]), the softmax, and the majority filter
//! all reuse preallocated buffers. The paper reports 1.5–3.2 ms per-sample
//! compute (Table VIII); keeping the per-frame path allocation-free is what
//! lets one process multiplex many concurrent surgical sessions
//! ([`MonitorPool`](crate::monitor::MonitorPool)) at that budget.

use crate::pipeline::{ContextMode, TrainedPipeline};
use gestures::NUM_GESTURES;
use kinematics::{KinematicSample, SlidingWindow};
use nn::Mat;
use std::collections::VecDeque;

/// Causal majority filter over a bounded trailing window with O(1) updates.
///
/// Replaces the O(k log k) per-frame recounts that the offline
/// (`mode_of`) and online (`mode_of_deque`) paths used to duplicate: counts
/// are maintained incrementally, and per-class queues of insertion indices
/// resolve ties by **earliest appearance in the window** — the same rule as
/// the historical recount ("first value whose class attains the maximal
/// count wins").
#[derive(Debug, Clone)]
pub struct MajorityFilter {
    capacity: usize,
    values: VecDeque<usize>,
    counts: Vec<usize>,
    /// Per class: insertion indices of its occurrences still in the window
    /// (monotonically increasing; front = earliest).
    positions: Vec<VecDeque<u64>>,
    next_index: u64,
}

impl MajorityFilter {
    /// Creates a filter over the `capacity` most recent values drawn from
    /// `classes` distinct classes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or `classes == 0`.
    pub fn new(capacity: usize, classes: usize) -> Self {
        assert!(capacity > 0, "MajorityFilter: capacity must be positive");
        assert!(classes > 0, "MajorityFilter: classes must be positive");
        Self {
            capacity,
            values: VecDeque::with_capacity(capacity + 1),
            counts: vec![0; classes],
            positions: (0..classes).map(|_| VecDeque::with_capacity(capacity + 1)).collect(),
            next_index: 0,
        }
    }

    /// Pushes the newest value (evicting the oldest once at capacity) and
    /// returns the current majority. Amortized O(1) update, O(classes)
    /// query.
    ///
    /// # Panics
    ///
    /// Panics if `value` is out of the class range.
    pub fn push(&mut self, value: usize) -> usize {
        assert!(value < self.counts.len(), "MajorityFilter: class {value} out of range");
        if self.values.len() == self.capacity {
            let evicted = self.values.pop_front().expect("non-empty at capacity");
            self.counts[evicted] -= 1;
            self.positions[evicted].pop_front();
        }
        self.values.push_back(value);
        self.counts[value] += 1;
        self.positions[value].push_back(self.next_index);
        self.next_index += 1;
        self.majority().expect("filter non-empty after push")
    }

    /// The majority class of the current window (earliest-seen wins ties),
    /// or `None` when empty.
    pub fn majority(&self) -> Option<usize> {
        let mut best: Option<(usize, usize, u64)> = None; // (class, count, first_idx)
        for (class, &count) in self.counts.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let first = *self.positions[class].front().expect("count > 0");
            let better = match best {
                None => true,
                Some((_, bc, bf)) => count > bc || (count == bc && first < bf),
            };
            if better {
                best = Some((class, count, first));
            }
        }
        best.map(|(class, _, _)| class)
    }

    /// Number of values currently in the window.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Empties the window (capacity and class range are kept).
    pub fn clear(&mut self) {
        self.values.clear();
        self.counts.fill(0);
        for p in &mut self.positions {
            p.clear();
        }
        self.next_index = 0;
    }
}

/// Per-frame engine output. Each stage reports `Some` once its sliding
/// window (and, for the error stage, its routing context) is warm:
///
/// * `gesture` — the smoothed gesture context, from frame `gesture_window-1`
///   on (immediately in [`ContextMode::Perfect`]).
/// * `unsafe_score` — the erroneous-gesture probability, from the first
///   frame where both the error window and the required context exist.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineStep {
    /// Smoothed operational context (gesture class index), once available.
    pub gesture: Option<usize>,
    /// Probability that the current window is unsafe, once available.
    pub unsafe_score: Option<f32>,
}

impl EngineStep {
    /// Both stages warm: `(gesture, unsafe_score)`.
    pub fn complete(&self) -> Option<(usize, f32)> {
        match (self.gesture, self.unsafe_score) {
            (Some(g), Some(s)) => Some((g, s)),
            _ => None,
        }
    }
}

/// Incremental two-stage evaluator holding **only per-session state**; model
/// weights live in the [`TrainedPipeline`] passed to every [`step`](Self::step),
/// so many engines can share one pipeline (see
/// [`MonitorPool`](crate::monitor::MonitorPool)).
///
/// The engine must be stepped with the pipeline it was created from (or an
/// identically configured one); window widths and feature dimensions are
/// fixed at construction.
#[derive(Debug)]
pub struct InferenceEngine {
    mode: ContextMode,
    /// Error-stage sliding window over normalized features.
    window: SlidingWindow,
    /// Gesture-stage sliding window over normalized features.
    gesture_window: SlidingWindow,
    /// Causal smoothing over raw stage-1 predictions.
    filter: MajorityFilter,
    /// Last smoothed gesture (stage-2 routing context).
    gesture: Option<usize>,
    frames_seen: usize,
    // Scratch buffers (reused every frame; no steady-state allocation).
    feat: Vec<f32>,
    gfeat: Vec<f32>,
    logits: Mat,
    probs: [f32; 2],
}

impl InferenceEngine {
    /// Creates a fresh (cold) engine for one session.
    pub fn new(pipeline: &TrainedPipeline, mode: ContextMode) -> Self {
        let cfg = &pipeline.config;
        Self {
            mode,
            window: SlidingWindow::new(cfg.window.width, pipeline.in_dim),
            gesture_window: SlidingWindow::new(cfg.gesture_window, pipeline.gesture_in_dim),
            filter: MajorityFilter::new(cfg.gesture_smoothing.max(1), NUM_GESTURES),
            gesture: None,
            frames_seen: 0,
            feat: Vec::with_capacity(pipeline.in_dim),
            gfeat: Vec::with_capacity(pipeline.gesture_in_dim),
            logits: Mat::zeros(1, NUM_GESTURES),
            probs: [0.0; 2],
        }
    }

    /// The context mode this engine evaluates.
    pub fn mode(&self) -> ContextMode {
        self.mode
    }

    /// Frames consumed since construction or the last [`reset`](Self::reset).
    pub fn frames_seen(&self) -> usize {
        self.frames_seen
    }

    /// Clears all per-session state (call between procedures).
    pub fn reset(&mut self) {
        self.window.clear();
        self.gesture_window.clear();
        self.filter.clear();
        self.gesture = None;
        self.frames_seen = 0;
    }

    /// Feeds one frame, inferring the gesture context with stage 1.
    ///
    /// # Panics
    ///
    /// Panics in [`ContextMode::Perfect`] — perfect boundaries must be
    /// supplied via [`step_with_context`](Self::step_with_context).
    pub fn step(&mut self, pipeline: &mut TrainedPipeline, frame: &KinematicSample) -> EngineStep {
        assert!(self.mode != ContextMode::Perfect, "Perfect mode requires step_with_context");
        self.step_inner(pipeline, frame, None)
    }

    /// Feeds one frame with externally supplied context (the
    /// perfect-boundary upper bound).
    pub fn step_with_context(
        &mut self,
        pipeline: &mut TrainedPipeline,
        frame: &KinematicSample,
        gesture: usize,
    ) -> EngineStep {
        self.step_inner(pipeline, frame, Some(gesture))
    }

    fn step_inner(
        &mut self,
        pipeline: &mut TrainedPipeline,
        frame: &KinematicSample,
        context: Option<usize>,
    ) -> EngineStep {
        self.frames_seen += 1;

        // Stage 1: operational context.
        self.gesture = match (self.mode, context) {
            (ContextMode::Perfect, Some(g)) => Some(g),
            (ContextMode::Perfect, None) => panic!("Perfect mode requires step_with_context"),
            _ => {
                frame.to_feature_vec_into(&pipeline.config.gesture_features, &mut self.gfeat);
                pipeline.gesture_normalizer.apply_frame_inplace(&mut self.gfeat);
                match self.gesture_window.push(&self.gfeat) {
                    Some(gwindow) => {
                        pipeline.gesture_net.predict_into(gwindow, &mut self.logits);
                        let raw = self.logits.argmax_row(0);
                        Some(self.filter.push(raw))
                    }
                    // Not warm yet: keep the previous smoothed value (always
                    // `None` here, since stage 1 warms before it cools).
                    None => self.gesture,
                }
            }
        };

        // Stage 2: unsafe probability, routed by the stage-1 context. In
        // `NoContext` mode the single global classifier needs no context and
        // scores as soon as its own window is warm.
        frame.to_feature_vec_into(&pipeline.config.features, &mut self.feat);
        pipeline.normalizer.apply_frame_inplace(&mut self.feat);
        let routing = match self.mode {
            ContextMode::NoContext => Some(0),
            _ => self.gesture,
        };
        let unsafe_score = match (self.window.push(&self.feat), routing) {
            (Some(window), Some(route)) => Some(pipeline.score_window_into(
                window,
                route,
                self.mode,
                &mut self.logits,
                &mut self.probs,
            )),
            _ => None,
        };

        EngineStep { gesture: self.gesture, unsafe_score }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Recount reference: most frequent value in a non-empty slice,
    /// earliest-seen winning ties. This is the exact rule the historical
    /// duplicated `mode_of` / `mode_of_deque` implementations enforced;
    /// [`MajorityFilter`] must stay equivalent to it forever.
    fn mode_of(values: &[usize]) -> usize {
        debug_assert!(!values.is_empty());
        let mut counts = std::collections::BTreeMap::new();
        for &v in values {
            *counts.entry(v).or_insert(0usize) += 1;
        }
        let mut best = values[0];
        let mut best_n = 0usize;
        for &v in values {
            let n = counts[&v];
            if n > best_n {
                best = v;
                best_n = n;
            }
        }
        best
    }

    /// Sliding-window recount reference implementing the historical
    /// semantics of `pipeline::mode_of` over the trailing `k` values.
    fn recount_reference(stream: &[usize], k: usize) -> Vec<usize> {
        (0..stream.len())
            .map(|i| {
                let lo = i.saturating_sub(k - 1);
                mode_of(&stream[lo..=i])
            })
            .collect()
    }

    #[test]
    fn majority_matches_recount_on_random_streams() {
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for &k in &[1usize, 2, 5, 9] {
            for classes in [2usize, 5, NUM_GESTURES] {
                let stream: Vec<usize> = (0..300).map(|_| next() % classes).collect();
                let expected = recount_reference(&stream, k);
                let mut filter = MajorityFilter::new(k, classes);
                let got: Vec<usize> = stream.iter().map(|&v| filter.push(v)).collect();
                assert_eq!(got, expected, "k={k}, classes={classes}");
            }
        }
    }

    #[test]
    fn tie_break_is_earliest_seen_in_window() {
        let mut filter = MajorityFilter::new(4, 3);
        assert_eq!(filter.push(2), 2); // [2]
        assert_eq!(filter.push(1), 2); // [2, 1]: 1-1 tie, 2 seen first
        assert_eq!(filter.push(1), 1); // [2, 1, 1]: 1 leads outright
        assert_eq!(filter.push(2), 2); // [2, 1, 1, 2]: 2-2 tie, 2 seen first
        assert_eq!(filter.push(2), 1); // [1, 1, 2, 2]: 2-2 tie, 1 seen first
        assert_eq!(filter.push(2), 2); // [1, 2, 2, 2]: 2 leads outright
                                       // Matches the recount reference rule exactly.
        assert_eq!(mode_of(&[2, 1]), 2);
        assert_eq!(mode_of(&[2, 1, 1, 2]), 2);
        assert_eq!(mode_of(&[1, 1, 2, 2]), 1);
        assert_eq!(mode_of(&[1, 2, 2, 2]), 2);
    }

    #[test]
    fn eviction_forgets_old_values() {
        let mut filter = MajorityFilter::new(2, 4);
        filter.push(3);
        filter.push(3);
        assert_eq!(filter.majority(), Some(3));
        filter.push(0);
        filter.push(0);
        assert_eq!(filter.majority(), Some(0), "3s evicted");
        assert_eq!(filter.len(), 2);
    }

    #[test]
    fn clear_resets_filter() {
        let mut filter = MajorityFilter::new(3, 2);
        filter.push(1);
        filter.clear();
        assert!(filter.is_empty());
        assert_eq!(filter.majority(), None);
        assert_eq!(filter.push(0), 0);
    }
}
