//! The shared incremental inference core.
//!
//! Both deployment shapes of the monitor — offline replay
//! ([`TrainedPipeline::run_demo`](crate::pipeline::TrainedPipeline::run_demo))
//! and online streaming ([`SafetyMonitor`](crate::monitor::SafetyMonitor) /
//! [`MonitorPool`](crate::monitor::MonitorPool)) — are thin adapters over
//! [`InferenceEngine`]: an allocation-free, frame-at-a-time evaluator that
//! owns the per-session state (sliding windows, the causal gesture-smoothing
//! filter, and inference scratch buffers) while the model weights stay in the
//! shared [`TrainedPipeline`]. Offline/online agreement is therefore true by
//! construction: the two paths execute literally the same code.
//!
//! Per frame, the steady-state hot path performs **no heap allocation**:
//! feature extraction, normalization, windowing, both network forward passes
//! (via [`nn::Network::predict_into`]), the softmax, and the majority filter
//! all reuse preallocated buffers. The paper reports 1.5–3.2 ms per-sample
//! compute (Table VIII); keeping the per-frame path allocation-free is what
//! lets one process multiplex many concurrent surgical sessions
//! ([`MonitorPool`](crate::monitor::MonitorPool)) at that budget.

use crate::config::Precision;
use crate::pipeline::{ContextMode, ErrorRoute, QuantizedPipeline, TrainedPipeline};
use gestures::{Gesture, NUM_GESTURES};
use kinematics::{KinematicSample, SlidingWindow};
use nn::loss::softmax_into;
use nn::{Mat, NetworkScratch, QuantScratch};
use std::collections::VecDeque;

/// The quantized twin an [`Precision::Int8`] engine infers through.
/// Engines assert its presence at construction, so a miss here is a
/// caller swapping pipelines mid-session.
// lint: hot-path
fn quantized(pipeline: &TrainedPipeline) -> &QuantizedPipeline {
    // lint: allow(panic, reason = "with_precision asserts the quantized twin exists; losing it mid-session means the caller swapped pipelines and must fail loud")
    pipeline.quantized.as_ref().expect("Precision::Int8 requires TrainedPipeline::quantize()")
}

/// Typed error for the streaming decision path: a misconfigured caller gets
/// a value it can handle instead of a panic that would take down a serving
/// process hosting other sessions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineError {
    /// [`InferenceEngine::step`] (or a monitor `push`) was called on a
    /// [`ContextMode::Perfect`] engine, which needs externally supplied
    /// gesture boundaries (`step_with_context` / `push_with_context`).
    MissingContext,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::MissingContext => f.write_str(
                "ContextMode::Perfect requires externally supplied gesture context \
                 (use step_with_context / push_with_context)",
            ),
        }
    }
}

impl std::error::Error for EngineError {}

/// Causal majority filter over a bounded trailing window with O(1) updates.
///
/// Replaces the O(k log k) per-frame recounts that the offline
/// (`mode_of`) and online (`mode_of_deque`) paths used to duplicate: counts
/// are maintained incrementally, and per-class queues of insertion indices
/// resolve ties by **earliest appearance in the window** — the same rule as
/// the historical recount ("first value whose class attains the maximal
/// count wins").
#[derive(Debug, Clone)]
pub struct MajorityFilter {
    capacity: usize,
    values: VecDeque<usize>,
    counts: Vec<usize>,
    /// Per class: insertion indices of its occurrences still in the window
    /// (monotonically increasing; front = earliest).
    positions: Vec<VecDeque<u64>>,
    next_index: u64,
}

impl MajorityFilter {
    /// Creates a filter over the `capacity` most recent values drawn from
    /// `classes` distinct classes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or `classes == 0`.
    pub fn new(capacity: usize, classes: usize) -> Self {
        assert!(capacity > 0, "MajorityFilter: capacity must be positive");
        assert!(classes > 0, "MajorityFilter: classes must be positive");
        Self {
            capacity,
            values: VecDeque::with_capacity(capacity + 1),
            counts: vec![0; classes],
            positions: (0..classes).map(|_| VecDeque::with_capacity(capacity + 1)).collect(),
            next_index: 0,
        }
    }

    /// Pushes the newest value (evicting the oldest once at capacity) and
    /// returns the current majority. Amortized O(1) update, O(classes)
    /// query.
    ///
    /// # Panics
    ///
    /// Panics if `value` is out of the class range.
    // lint: hot-path
    pub fn push(&mut self, value: usize) -> usize {
        assert!(value < self.counts.len(), "MajorityFilter: class {value} out of range");
        if self.values.len() == self.capacity {
            // lint: allow(panic, reason = "window is at capacity, so pop_front cannot fail")
            let evicted = self.values.pop_front().expect("non-empty at capacity");
            // Covers this line and the next: evicted was admitted through
            // the entry assert, so it indexes in range.
            self.counts[evicted] -= 1; // lint: allow(panic, reason = "evicted passed the entry assert; counts/positions share its range")
            self.positions[evicted].pop_front();
        }
        self.values.push_back(value);
        // Covers this line and the next: value < counts.len() is asserted
        // at entry and positions has the same length.
        self.counts[value] += 1; // lint: allow(panic, reason = "value < counts.len() asserted at entry; positions same length")
        self.positions[value].push_back(self.next_index);
        self.next_index += 1;
        // lint: allow(panic, reason = "a value was just pushed, so the window cannot be empty")
        self.majority().expect("filter non-empty after push")
    }

    /// The majority class of the current window (earliest-seen wins ties),
    /// or `None` when empty.
    // lint: hot-path
    pub fn majority(&self) -> Option<usize> {
        let mut best: Option<(usize, usize, u64)> = None; // (class, count, first_idx)
        for (class, &count) in self.counts.iter().enumerate() {
            if count == 0 {
                continue;
            }
            // lint: allow(panic, reason = "class enumerates counts, positions has the same length, and count > 0 means a position exists")
            let first = *self.positions[class].front().expect("count > 0");
            let better = match best {
                None => true,
                Some((_, bc, bf)) => count > bc || (count == bc && first < bf),
            };
            if better {
                best = Some((class, count, first));
            }
        }
        // lint: allow(hot-path, reason = "receiver is an Option, not a Mat -- std .map() name collision in the receiver-blind resolver")
        best.map(|(class, _, _)| class)
    }

    /// Number of values currently in the window.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Empties the window (capacity and class range are kept).
    pub fn clear(&mut self) {
        self.values.clear();
        self.counts.fill(0);
        for p in &mut self.positions {
            p.clear();
        }
        self.next_index = 0;
    }
}

/// Per-frame engine output. Each stage reports `Some` once its sliding
/// window (and, for the error stage, its routing context) is warm:
///
/// * `gesture` — the smoothed gesture context, from frame `gesture_window-1`
///   on (immediately in [`ContextMode::Perfect`]).
/// * `unsafe_score` — the erroneous-gesture probability, from the first
///   frame where both the error window and the required context exist.
///
/// The gesture is a typed [`Gesture`], not a raw class index: the engine
/// proves the index in-range at the single point where it leaves the
/// bounded [`MajorityFilter`], so downstream consumers can never observe
/// (or silently "repair") an out-of-range context.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineStep {
    /// Smoothed operational context, once available.
    pub gesture: Option<Gesture>,
    /// Probability that the current window is unsafe, once available.
    pub unsafe_score: Option<f32>,
}

impl EngineStep {
    /// Both stages warm: `(gesture, unsafe_score)`.
    // lint: hot-path
    pub fn complete(&self) -> Option<(Gesture, f32)> {
        match (self.gesture, self.unsafe_score) {
            (Some(g), Some(s)) => Some((g, s)),
            _ => None,
        }
    }
}

/// Incremental two-stage evaluator holding **only per-session state**; model
/// weights live in the [`TrainedPipeline`] passed to every [`step`](Self::step),
/// so many engines can share one pipeline (see
/// [`MonitorPool`](crate::monitor::MonitorPool)).
///
/// The engine must be stepped with the pipeline it was created from (or an
/// identically configured one); window widths and feature dimensions are
/// fixed at construction.
#[derive(Debug)]
pub struct InferenceEngine {
    mode: ContextMode,
    /// Numeric tier the forward passes run at.
    precision: Precision,
    /// Error-stage sliding window over normalized features.
    window: SlidingWindow,
    /// Gesture-stage sliding window over normalized features.
    gesture_window: SlidingWindow,
    /// Causal smoothing over raw stage-1 predictions.
    filter: MajorityFilter,
    /// Last smoothed gesture (stage-2 routing context).
    gesture: Option<Gesture>,
    frames_seen: usize,
    // Scratch buffers (reused every frame; no steady-state allocation).
    // The network scratch lives here — not in the shared networks — so one
    // read-only `TrainedPipeline` can serve many engines across threads.
    feat: Vec<f32>,
    gfeat: Vec<f32>,
    logits: Mat,
    probs: [f32; 2],
    /// Inference scratch for the stage-1 gesture classifier.
    gscratch: NetworkScratch,
    /// Inference scratch for the stage-2 error classifiers (they share one
    /// architecture, so one scratch serves every route without reshaping).
    escratch: NetworkScratch,
    /// Int8-tier inference scratch (both stages; every buffer is
    /// high-water, so one scratch serves them sequentially). Empty and
    /// untouched on the f32 tier.
    qscratch: QuantScratch,
}

impl InferenceEngine {
    /// Creates a fresh (cold) engine for one session on the default
    /// [`Precision::F32`] tier.
    pub fn new(pipeline: &TrainedPipeline, mode: ContextMode) -> Self {
        Self::with_precision(pipeline, mode, Precision::F32)
    }

    /// Creates a fresh engine on a chosen numeric tier.
    ///
    /// # Panics
    ///
    /// Panics when asked for [`Precision::Int8`] before
    /// [`TrainedPipeline::quantize`](crate::pipeline::TrainedPipeline::quantize)
    /// populated the pipeline's quantized twin — a misconfiguration that
    /// must fail at session setup, not on the first warm frame.
    pub fn with_precision(
        pipeline: &TrainedPipeline,
        mode: ContextMode,
        precision: Precision,
    ) -> Self {
        assert!(
            precision == Precision::F32 || pipeline.quantized.is_some(),
            "Precision::Int8 requires TrainedPipeline::quantize() before engine creation"
        );
        let cfg = &pipeline.config;
        Self {
            mode,
            precision,
            window: SlidingWindow::new(cfg.window.width, pipeline.in_dim),
            gesture_window: SlidingWindow::new(cfg.gesture_window, pipeline.gesture_in_dim),
            filter: MajorityFilter::new(cfg.gesture_smoothing.max(1), NUM_GESTURES),
            gesture: None,
            frames_seen: 0,
            feat: Vec::with_capacity(pipeline.in_dim),
            gfeat: Vec::with_capacity(pipeline.gesture_in_dim),
            logits: Mat::zeros(1, NUM_GESTURES),
            probs: [0.0; 2],
            gscratch: pipeline.gesture_net.make_scratch(),
            escratch: pipeline.error_scratch(),
            qscratch: QuantScratch::default(),
        }
    }

    /// The context mode this engine evaluates.
    pub fn mode(&self) -> ContextMode {
        self.mode
    }

    /// The numeric tier this engine infers at.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Frames consumed since construction or the last [`reset`](Self::reset).
    pub fn frames_seen(&self) -> usize {
        self.frames_seen
    }

    /// Clears all per-session state (call between procedures).
    pub fn reset(&mut self) {
        self.window.clear();
        self.gesture_window.clear();
        self.filter.clear();
        self.gesture = None;
        self.frames_seen = 0;
    }

    /// Feeds one frame, inferring the gesture context with stage 1.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::MissingContext`] in [`ContextMode::Perfect`]
    /// — perfect boundaries must be supplied via
    /// [`step_with_context`](Self::step_with_context). The frame is **not**
    /// consumed on error (no window or counter advances).
    // lint: hot-path
    pub fn step(
        &mut self,
        pipeline: &TrainedPipeline,
        frame: &KinematicSample,
    ) -> Result<EngineStep, EngineError> {
        if self.mode == ContextMode::Perfect {
            return Err(EngineError::MissingContext);
        }
        Ok(self.step_inner(pipeline, frame, None))
    }

    /// Feeds one frame with externally supplied context (the
    /// perfect-boundary upper bound). In the other modes the supplied
    /// context is ignored and stage 1 infers it as usual.
    // lint: hot-path
    pub fn step_with_context(
        &mut self,
        pipeline: &TrainedPipeline,
        frame: &KinematicSample,
        gesture: Gesture,
    ) -> EngineStep {
        self.step_inner(pipeline, frame, Some(gesture))
    }

    // lint: hot-path
    fn step_inner(
        &mut self,
        pipeline: &TrainedPipeline,
        frame: &KinematicSample,
        context: Option<Gesture>,
    ) -> EngineStep {
        self.frames_seen += 1;

        // Stage 1: operational context.
        self.gesture = if self.mode == ContextMode::Perfect {
            // `step` rejects Perfect mode, so context is always Some here.
            debug_assert!(context.is_some(), "Perfect mode requires context");
            context
        } else {
            frame.to_feature_vec_into(&pipeline.config.gesture_features, &mut self.gfeat);
            pipeline.gesture_normalizer.apply_frame_inplace(&mut self.gfeat);
            match self.gesture_window.push(&self.gfeat) {
                Some(gwindow) => {
                    match self.precision {
                        Precision::F32 => pipeline.gesture_net.predict_scratch(
                            gwindow,
                            &mut self.logits,
                            &mut self.gscratch,
                        ),
                        Precision::Int8 => quantized(pipeline).gesture_net.predict_scratch(
                            gwindow,
                            &mut self.logits,
                            &mut self.qscratch,
                        ),
                    }
                    debug_assert_eq!(self.logits.cols(), NUM_GESTURES);
                    Some(self.smooth_raw_class(self.logits.argmax_row(0)))
                }
                // Not warm yet: keep the previous smoothed value (always
                // `None` here, since stage 1 warms before it cools).
                None => self.gesture,
            }
        };

        // Stage 2: unsafe probability, routed by the stage-1 context. In
        // `NoContext` mode the single global classifier needs no context and
        // scores as soon as its own window is warm.
        frame.to_feature_vec_into(&pipeline.config.features, &mut self.feat);
        pipeline.normalizer.apply_frame_inplace(&mut self.feat);
        let routing = match self.mode {
            ContextMode::NoContext => Some(0),
            // lint: allow(hot-path, reason = "receiver is an Option, not a Mat -- std .map() name collision in the receiver-blind resolver")
            _ => self.gesture.map(Gesture::index),
        };
        let unsafe_score = match (self.window.push(&self.feat), routing) {
            (Some(window), Some(route)) => Some(match self.precision {
                Precision::F32 => pipeline.score_window_scratch(
                    window,
                    route,
                    self.mode,
                    &mut self.logits,
                    &mut self.probs,
                    &mut self.escratch,
                ),
                Precision::Int8 => pipeline.score_window_scratch_q(
                    window,
                    route,
                    self.mode,
                    &mut self.logits,
                    &mut self.probs,
                    &mut self.qscratch,
                ),
            }),
            _ => None,
        };

        EngineStep { gesture: self.gesture, unsafe_score }
    }

    /// Smooths a raw stage-1 class index and converts it to a typed
    /// [`Gesture`], the **only** place a class index crosses into the typed
    /// domain. In-range is an invariant, not a hope: `MajorityFilter::push`
    /// asserts `raw < NUM_GESTURES` on entry and only ever returns values it
    /// admitted, so the conversion cannot fail — a malformed gesture
    /// classifier (logit width ≠ `NUM_GESTURES`) is rejected loudly here
    /// instead of being silently mapped to `Gesture::G1` downstream.
    // lint: hot-path
    fn smooth_raw_class(&mut self, raw: usize) -> Gesture {
        let smoothed = self.filter.push(raw);
        // lint: allow(panic, reason = "the filter only returns values it admitted, all < NUM_GESTURES; a malformed classifier must fail loud")
        Gesture::from_index(smoothed).expect("MajorityFilter output is bounded by NUM_GESTURES")
    }
}

/// One engine+frame pair inside a micro-batched tick ([`step_batch`]).
///
/// The engine is referenced by **index** into the engine slice passed to
/// `step_batch` (not by `&mut`), which lets a long-running worker keep one
/// reusable `Vec<BatchJob>` across ticks — the serving hot path performs no
/// per-tick allocation.
#[derive(Debug, Clone)]
pub struct BatchJob {
    /// Index of the per-session engine in the tick's engine slice. An
    /// engine may appear **at most once** per tick: its sliding window is
    /// consumed by the batched forward pass.
    pub engine: usize,
    /// The frame to feed.
    pub frame: KinematicSample,
    /// Externally supplied context — required for engines in
    /// [`ContextMode::Perfect`], ignored otherwise.
    pub context: Option<Gesture>,
}

/// Reusable buffers for [`step_batch`]: stacked window matrices, batched
/// logits, network scratch for both stages, and tick bookkeeping. One per
/// shard worker; everything grows to a high-water mark and is reused.
#[derive(Debug)]
pub struct BatchScratch {
    gwindows: Mat,
    glogits: Mat,
    gscratch: NetworkScratch,
    ewindows: Mat,
    elogits: Mat,
    escratch: NetworkScratch,
    /// Int8-tier scratch (both stages, sequential use). Empty on f32 ticks.
    qscratch: QuantScratch,
    gmembers: Vec<usize>,
    eready: Vec<bool>,
    pending: Vec<(usize, ErrorRoute)>,
    scores: Vec<Option<f32>>,
    seen: Vec<bool>,
}

impl BatchScratch {
    /// Creates scratch sized for `pipeline`'s two classifier stages.
    pub fn new(pipeline: &TrainedPipeline) -> Self {
        Self {
            gwindows: Mat::zeros(0, 0),
            glogits: Mat::zeros(0, 0),
            gscratch: pipeline.gesture_net.make_scratch(),
            ewindows: Mat::zeros(0, 0),
            elogits: Mat::zeros(0, 0),
            escratch: pipeline.error_scratch(),
            qscratch: QuantScratch::default(),
            gmembers: Vec::new(),
            eready: Vec::new(),
            pending: Vec::new(),
            scores: Vec::new(),
            seen: Vec::new(),
        }
    }
}

/// Advances several sessions by one frame each with **cross-session
/// micro-batching**: all warm stage-1 windows run through one batched
/// gesture-net forward pass, and stage-2 windows are grouped by the error
/// classifier they route to and batched per group.
///
/// Exactly equivalent — bit-for-bit, per session — to calling
/// [`InferenceEngine::step`] / [`InferenceEngine::step_with_context`] on
/// each job in order: every batched row is the same dot-product sequence as
/// its unbatched counterpart (see `nn::Network::predict_batch_into`), and
/// per-session state (windows, majority filter) is untouched by batching.
/// `outputs` is cleared and refilled with one [`EngineStep`] per job, in
/// job order.
///
/// All engines must come from (engines configured identically to)
/// `pipeline`.
///
/// # Panics
///
/// Panics when a job references an out-of-range or duplicated engine
/// index, or when an engine in [`ContextMode::Perfect`] is given no
/// context — the same invariant [`InferenceEngine::step`] reports as
/// [`EngineError::MissingContext`]; the serving layer rejects such
/// submissions before they ever reach a worker, and a loud panic here
/// beats silently suppressing a session's output in release builds.
// lint: hot-path
pub fn step_batch(
    pipeline: &TrainedPipeline,
    engines: &mut [InferenceEngine],
    jobs: &[BatchJob],
    scratch: &mut BatchScratch,
    outputs: &mut Vec<EngineStep>,
) {
    outputs.clear();
    if jobs.is_empty() {
        return;
    }
    let BatchScratch {
        gwindows,
        glogits,
        gscratch,
        ewindows,
        elogits,
        escratch,
        qscratch,
        gmembers,
        eready,
        pending,
        scores,
        seen,
    } = scratch;

    seen.clear();
    seen.resize(engines.len(), false);
    for job in jobs.iter() {
        assert!(job.engine < engines.len(), "step_batch: unknown engine {}", job.engine);
        // Covers this line and the next: seen was just resized to
        // engines.len() and job.engine passed the bound assert above.
        assert!(!seen[job.engine], "step_batch: engine {} appears twice in one tick", job.engine); // lint: allow(panic, reason = "seen is engines.len() long and job.engine passed the bound assert")
        seen[job.engine] = true;
    }
    // One batched forward pass serves the whole tick, so every engine in
    // it must run at one numeric tier (the serving layer configures a pool
    // uniformly; mixing tiers requires separate pools).
    // lint: allow(panic, reason = "jobs is non-empty here and jobs[0].engine passed the entry bound assert")
    let precision = engines[jobs[0].engine].precision;

    // Phase 1: ingest every frame into its engine's windows (no inference).
    gmembers.clear();
    eready.clear();
    for (j, job) in jobs.iter().enumerate() {
        // lint: allow(panic, reason = "every job.engine passed the entry bound assert")
        let e = &mut engines[job.engine];
        assert!(e.precision == precision, "step_batch: mixed-precision tick");
        e.frames_seen += 1;
        if e.mode == ContextMode::Perfect {
            assert!(job.context.is_some(), "Perfect mode requires context (see EngineError)");
            e.gesture = job.context;
        } else {
            job.frame.to_feature_vec_into(&pipeline.config.gesture_features, &mut e.gfeat);
            pipeline.gesture_normalizer.apply_frame_inplace(&mut e.gfeat);
            if e.gesture_window.push(&e.gfeat).is_some() {
                gmembers.push(j);
            }
        }
        job.frame.to_feature_vec_into(&pipeline.config.features, &mut e.feat);
        pipeline.normalizer.apply_frame_inplace(&mut e.feat);
        eready.push(e.window.push(&e.feat).is_some());
    }

    // Phase 2: one batched stage-1 forward pass for every warm gesture
    // window, then the per-session smoothing filters.
    if !gmembers.is_empty() {
        let n = gmembers.len();
        // lint: allow(panic, reason = "gmembers is non-empty here and holds indices of jobs; every job.engine passed the entry bound assert")
        let first = &engines[jobs[gmembers[0]].engine];
        let gw = first.gesture_window.width();
        let gd = first.gesture_window.dims();
        gwindows.resize(n * gw, gd);
        for (b, &j) in gmembers.iter().enumerate() {
            // lint: allow(panic, reason = "gmembers holds indices of jobs; every job.engine passed the entry bound assert")
            let e = &engines[jobs[j].engine];
            let copied = e.gesture_window.copy_current_into(gwindows, b * gw);
            debug_assert!(copied, "warm window expected");
        }
        match precision {
            Precision::F32 => {
                pipeline.gesture_net.predict_batch_into(gwindows, n, glogits, gscratch)
            }
            Precision::Int8 => {
                quantized(pipeline).gesture_net.predict_batch_into(gwindows, n, glogits, qscratch)
            }
        }
        debug_assert_eq!(glogits.cols(), NUM_GESTURES);
        for (b, &j) in gmembers.iter().enumerate() {
            let raw = glogits.argmax_row(b);
            // lint: allow(panic, reason = "gmembers holds indices of jobs; every job.engine passed the entry bound assert")
            let e = &mut engines[jobs[j].engine];
            e.gesture = Some(e.smooth_raw_class(raw));
        }
    }

    // Phase 3: stage-2 scoring, batched per routed classifier. Grouping by
    // route is safe because every batched row only depends on its own
    // window; the stable sort keeps job order within each group.
    scores.clear();
    scores.resize(jobs.len(), None);
    pending.clear();
    for (j, job) in jobs.iter().enumerate() {
        // lint: allow(panic, reason = "eready got one push per job in phase 1, so j is in range")
        if !eready[j] {
            continue;
        }
        // lint: allow(panic, reason = "every job.engine passed the entry bound assert")
        let e = &engines[job.engine];
        let routing = match e.mode {
            ContextMode::NoContext => Some(0),
            // lint: allow(hot-path, reason = "receiver is an Option, not a Mat -- std .map() name collision in the receiver-blind resolver")
            _ => e.gesture.map(Gesture::index),
        };
        let Some(route_class) = routing else { continue };
        match pipeline.error_route(route_class, e.mode) {
            // No classifier for this route: scored 0, like score_window.
            // lint: allow(panic, reason = "scores was resized to jobs.len(), so j is in range")
            None => scores[j] = Some(0.0),
            Some(route) => pending.push((j, route)),
        }
    }
    pending.sort_by_key(|&(_, route)| route);
    let mut i = 0usize;
    while i < pending.len() {
        // lint: allow(panic, reason = "the loop condition holds i < pending.len()")
        let route = pending[i].1;
        let mut end = i + 1;
        // lint: allow(panic, reason = "the while condition holds end < pending.len()")
        while end < pending.len() && pending[end].1 == route {
            end += 1;
        }
        let n = end - i;
        // lint: allow(panic, reason = "pending holds (job index, route) pairs; every job.engine passed the entry bound assert")
        let first = &engines[jobs[pending[i].0].engine];
        let w = first.window.width();
        let d = first.window.dims();
        ewindows.resize(n * w, d);
        // lint: allow(panic, reason = "i..end is a scanned run inside pending")
        for (b, &(j, _)) in pending[i..end].iter().enumerate() {
            // lint: allow(panic, reason = "pending holds job indices; every job.engine passed the entry bound assert")
            let e = &engines[jobs[j].engine];
            let copied = e.window.copy_current_into(ewindows, b * w);
            debug_assert!(copied, "warm window expected");
        }
        match precision {
            Precision::F32 => {
                pipeline.error_net(route).predict_batch_into(ewindows, n, elogits, escratch)
            }
            Precision::Int8 => quantized(pipeline)
                .error_net(route)
                .predict_batch_into(ewindows, n, elogits, qscratch),
        }
        // lint: allow(panic, reason = "i..end is a scanned run inside pending")
        for (b, &(j, _)) in pending[i..end].iter().enumerate() {
            // Covers this line and the next: pending holds job indices,
            // every job.engine passed the entry assert, and probs/scores
            // are sized by construction (binary head, jobs.len()).
            let e = &mut engines[jobs[j].engine]; // lint: allow(panic, reason = "pending holds job indices bounded by the entry assert; probs/scores sized by construction")
            softmax_into(elogits.row(b), &mut e.probs);
            // lint: allow(panic, reason = "probs is the binary head (len 2); scores was resized to jobs.len()")
            scores[j] = Some(e.probs[1]);
        }
        i = end;
    }

    // Phase 4: assemble per-job steps in submission order.
    for (j, job) in jobs.iter().enumerate() {
        // lint: allow(panic, reason = "every job.engine passed the entry bound assert; scores was resized to jobs.len()")
        outputs.push(EngineStep { gesture: engines[job.engine].gesture, unsafe_score: scores[j] });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Recount reference: most frequent value in a non-empty slice,
    /// earliest-seen winning ties. This is the exact rule the historical
    /// duplicated `mode_of` / `mode_of_deque` implementations enforced;
    /// [`MajorityFilter`] must stay equivalent to it forever.
    fn mode_of(values: &[usize]) -> usize {
        debug_assert!(!values.is_empty());
        let mut counts = std::collections::BTreeMap::new();
        for &v in values {
            *counts.entry(v).or_insert(0usize) += 1;
        }
        let mut best = values[0];
        let mut best_n = 0usize;
        for &v in values {
            let n = counts[&v];
            if n > best_n {
                best = v;
                best_n = n;
            }
        }
        best
    }

    /// Sliding-window recount reference implementing the historical
    /// semantics of `pipeline::mode_of` over the trailing `k` values.
    fn recount_reference(stream: &[usize], k: usize) -> Vec<usize> {
        (0..stream.len())
            .map(|i| {
                let lo = i.saturating_sub(k - 1);
                mode_of(&stream[lo..=i])
            })
            .collect()
    }

    #[test]
    fn majority_matches_recount_on_random_streams() {
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for &k in &[1usize, 2, 5, 9] {
            for classes in [2usize, 5, NUM_GESTURES] {
                let stream: Vec<usize> = (0..300).map(|_| next() % classes).collect();
                let expected = recount_reference(&stream, k);
                let mut filter = MajorityFilter::new(k, classes);
                let got: Vec<usize> = stream.iter().map(|&v| filter.push(v)).collect();
                assert_eq!(got, expected, "k={k}, classes={classes}");
            }
        }
    }

    #[test]
    fn tie_break_is_earliest_seen_in_window() {
        let mut filter = MajorityFilter::new(4, 3);
        assert_eq!(filter.push(2), 2); // [2]
        assert_eq!(filter.push(1), 2); // [2, 1]: 1-1 tie, 2 seen first
        assert_eq!(filter.push(1), 1); // [2, 1, 1]: 1 leads outright
        assert_eq!(filter.push(2), 2); // [2, 1, 1, 2]: 2-2 tie, 2 seen first
        assert_eq!(filter.push(2), 1); // [1, 1, 2, 2]: 2-2 tie, 1 seen first
        assert_eq!(filter.push(2), 2); // [1, 2, 2, 2]: 2 leads outright
                                       // Matches the recount reference rule exactly.
        assert_eq!(mode_of(&[2, 1]), 2);
        assert_eq!(mode_of(&[2, 1, 1, 2]), 2);
        assert_eq!(mode_of(&[1, 1, 2, 2]), 1);
        assert_eq!(mode_of(&[1, 2, 2, 2]), 2);
    }

    #[test]
    fn eviction_forgets_old_values() {
        let mut filter = MajorityFilter::new(2, 4);
        filter.push(3);
        filter.push(3);
        assert_eq!(filter.majority(), Some(3));
        filter.push(0);
        filter.push(0);
        assert_eq!(filter.majority(), Some(0), "3s evicted");
        assert_eq!(filter.len(), 2);
    }

    #[test]
    fn clear_resets_filter() {
        let mut filter = MajorityFilter::new(3, 2);
        filter.push(1);
        filter.clear();
        assert!(filter.is_empty());
        assert_eq!(filter.majority(), None);
        assert_eq!(filter.push(0), 0);
    }
}
