//! # `context-monitor` — real-time context-aware detection of unsafe events
//!
//! The paper's primary contribution (Yasar & Alemzadeh, DSN 2020): an online
//! safety-monitoring pipeline for robot-assisted surgery that
//!
//! 1. infers the **operational context** — the surgical gesture — from
//!    sliding windows of kinematics with a stacked-LSTM classifier, and
//! 2. routes each window to a **gesture-specific erroneous-gesture
//!    classifier** (1D-CNN or LSTM) that flags unsafe execution,
//!
//! with a non-context-specific single classifier as the baseline and a
//! perfect-boundary mode as the upper bound (Table VIII's three rows).
//!
//! ```no_run
//! use context_monitor::{ContextMode, MonitorConfig, SafetyMonitor, TrainedPipeline};
//! use gestures::Task;
//! use jigsaws::{generate, GeneratorConfig};
//! use kinematics::FeatureSet;
//!
//! let dataset = generate(&GeneratorConfig::fast(Task::Suturing));
//! let fold = &dataset.loso_folds()[0];
//! let cfg = MonitorConfig::fast(FeatureSet::CRG);
//! let pipeline = TrainedPipeline::train(&dataset, &fold.train, &cfg);
//!
//! // Stream kinematics through the online monitor.
//! let mut monitor = SafetyMonitor::new(pipeline, ContextMode::Predicted);
//! for frame in &dataset.demos[fold.test[0]].frames {
//!     if let Some(out) = monitor.push(frame).expect("Predicted mode needs no context") {
//!         if out.alert {
//!             println!("unsafe {} (p={:.2})", out.gesture, out.unsafe_probability);
//!         }
//!     }
//! }
//! ```
//!
//! For production-scale serving — many concurrent sessions sharded across
//! worker threads over one shared read-only pipeline, with cross-session
//! micro-batching — see [`serve::ShardedMonitorPool`].

#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)] // indexed loops mirror the math in numeric kernels

pub mod config;
pub mod engine;
pub mod models;
pub mod monitor;
pub mod pipeline;
pub mod report;
pub mod serve;

pub use config::{ErrorModelKind, MonitorConfig, Precision};
pub use engine::{
    step_batch, BatchJob, BatchScratch, EngineError, EngineStep, InferenceEngine, MajorityFilter,
};
pub use models::{error_classifier_spec, gesture_classifier_spec};
pub use monitor::{MonitorOutput, MonitorPool, SafetyMonitor, SessionId};
pub use pipeline::{
    ContextMode, ErrorRoute, GestureTrainStats, MonitorRun, QuantizedPipeline, SavedPipeline,
    TrainStages, TrainedPipeline,
};
pub use report::{
    error_events, evaluate_pipeline, evaluate_run, per_gesture_report, percentile,
    ClosedLoopSummary, DemoEval, GestureRow, LatencyStats, PipelineEval, PoolStats,
    REACTION_LOOKBACK_S,
};
pub use serve::{parallel_map, Decision, ServeConfig, ShardedMonitorPool};
