//! Training and inference for the two-stage pipeline (§III, Fig. 4).
//!
//! The two stages are trained **separately** (the paper trains the erroneous
//! gesture detectors on ground-truth gesture boundaries) and composed only
//! at evaluation/inference time, where the predicted gesture routes each
//! window to its gesture-specific classifier.

use crate::config::{MonitorConfig, Precision};
use crate::engine::InferenceEngine;
use crate::models::{error_classifier_spec, gesture_classifier_spec};
use gestures::{Gesture, NUM_GESTURES};
use kinematics::{windows_with_positions, Dataset, Demonstration, Normalizer, WindowConfig};
use nn::loss::{inverse_frequency_weights, softmax_into};
use nn::{
    train_classifier, Mat, Network, NetworkScratch, QuantError, QuantScratch, QuantizedNetwork,
    Sample, SavedNetwork, TrainConfig,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Instant;

/// How the second stage obtains its operational context (Table VIII rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ContextMode {
    /// Gesture-specific with the gesture classifier (the deployed system).
    Predicted,
    /// Gesture-specific with perfect gesture boundaries (upper bound).
    Perfect,
    /// Single classifier with no notion of context (baseline).
    NoContext,
}

impl std::fmt::Display for ContextMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ContextMode::Predicted => "gesture-specific (predicted)",
            ContextMode::Perfect => "gesture-specific (perfect boundaries)",
            ContextMode::NoContext => "non-gesture-specific",
        };
        f.write_str(s)
    }
}

/// Identity of the stage-2 classifier a window routes to — the grouping key
/// for cross-session micro-batching ([`crate::engine::step_batch`] stacks
/// all windows sharing a route into one batched forward pass). `Ord` so
/// pending work can be grouped with a stable sort.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ErrorRoute {
    /// The dedicated classifier of one gesture class.
    Dedicated(usize),
    /// The single non-gesture-specific classifier (the `NoContext` path and
    /// the fallback for gestures without a dedicated classifier).
    Global,
}

/// The trained two-stage pipeline.
///
/// All inference entry points take `&self`: the pipeline is read-only at
/// serving time (mutable inference scratch lives with each
/// [`crate::engine::InferenceEngine`]), so one instance behind an
/// `Arc<TrainedPipeline>` can be shared by every shard worker of a
/// [`crate::serve::ShardedMonitorPool`].
pub struct TrainedPipeline {
    /// Configuration it was trained with.
    pub config: MonitorConfig,
    /// Feature normalizer for the error stage, fitted on the training fold.
    pub normalizer: Normalizer,
    /// Feature normalizer for the gesture stage.
    pub gesture_normalizer: Normalizer,
    /// Stage 1: gesture classifier.
    pub gesture_net: Network,
    /// Stage 2: per-gesture erroneous-gesture classifiers.
    pub error_nets: BTreeMap<usize, Network>,
    /// Fallback / baseline: single non-gesture-specific classifier.
    pub global_error_net: Option<Network>,
    /// Error-stage input feature width.
    pub in_dim: usize,
    /// Gesture-stage input feature width.
    pub gesture_in_dim: usize,
    /// The calibrated int8 twin serving [`Precision::Int8`], populated by
    /// [`TrainedPipeline::quantize`]. A derived artifact — rebuilt from the
    /// f32 weights on demand, never serialized with the checkpoint.
    pub quantized: Option<QuantizedPipeline>,
}

/// The post-training-quantized twin of a [`TrainedPipeline`]: the same
/// two-stage topology with every classifier replaced by its calibrated
/// int8 [`QuantizedNetwork`]. Routing (which gesture maps to which
/// classifier) stays with the parent pipeline — the twin mirrors its key
/// set exactly, so [`TrainedPipeline::error_route`] resolves for both
/// tiers.
pub struct QuantizedPipeline {
    /// Stage 1: quantized gesture classifier.
    pub gesture_net: QuantizedNetwork,
    /// Stage 2: quantized per-gesture error classifiers (same keys as the
    /// f32 `error_nets`).
    pub error_nets: BTreeMap<usize, QuantizedNetwork>,
    /// Quantized fallback / baseline classifier.
    pub global_error_net: Option<QuantizedNetwork>,
}

impl QuantizedPipeline {
    /// The quantized classifier behind a route resolved by
    /// [`TrainedPipeline::error_route`] on the parent pipeline.
    ///
    /// # Panics
    ///
    /// Panics if the route does not exist (routes must come from the
    /// pipeline this twin was quantized from).
    pub fn error_net(&self, route: ErrorRoute) -> &QuantizedNetwork {
        match route {
            ErrorRoute::Dedicated(g) => &self.error_nets[&g],
            ErrorRoute::Global => {
                // lint: allow(panic, reason = "error_route() yields Global only when the parent pipeline holds a global net; checked at construction")
                self.global_error_net.as_ref().expect("route resolved against the parent pipeline")
            }
        }
    }
}

/// Serializable checkpoint of a [`TrainedPipeline`].
#[derive(Serialize, Deserialize)]
pub struct SavedPipeline {
    /// Configuration.
    pub config: MonitorConfig,
    /// Error-stage normalizer.
    pub normalizer: Normalizer,
    /// Gesture-stage normalizer.
    pub gesture_normalizer: Normalizer,
    /// Gesture-classifier weights.
    pub gesture: SavedNetwork,
    /// Per-gesture error-classifier weights.
    pub errors: Vec<(usize, SavedNetwork)>,
    /// Global error-classifier weights.
    pub global: Option<SavedNetwork>,
    /// Error-stage input width.
    pub in_dim: usize,
    /// Gesture-stage input width.
    pub gesture_in_dim: usize,
}

/// Per-frame output of running the monitor over a demonstration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonitorRun {
    /// Predicted gesture class per frame.
    pub gesture_pred: Vec<usize>,
    /// Unsafe probability per frame.
    pub unsafe_score: Vec<f32>,
    /// Binary unsafe prediction per frame (score > 0.5).
    pub unsafe_pred: Vec<bool>,
    /// Mean inference time **per frame**, milliseconds (total wall time of
    /// the replay divided by the frame count). Earlier revisions divided by
    /// a mixed count of stage-1 *plus* stage-2 windows, roughly halving the
    /// reported latency; per-frame is what the paper's Table VIII
    /// "computation time per sample" measures.
    pub compute_ms: f32,
}

/// Training-set statistics per gesture (Table VII's size columns).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GestureTrainStats {
    /// Gesture class index.
    pub gesture: usize,
    /// Number of training windows.
    pub windows: usize,
    /// Fraction labeled unsafe.
    pub error_rate: f32,
    /// Whether a dedicated classifier was trained.
    pub dedicated: bool,
}

/// Which pipeline stages to actually train (the ablation binaries train a
/// single stage to keep runs cheap).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrainStages {
    /// Train the gesture classifier (stage 1).
    pub gesture: bool,
    /// Train the erroneous-gesture classifiers (stage 2 + baseline).
    pub errors: bool,
}

impl TrainStages {
    /// Train everything.
    pub const ALL: TrainStages = TrainStages { gesture: true, errors: true };
    /// Gesture classifier only (Table IV).
    pub const GESTURE_ONLY: TrainStages = TrainStages { gesture: true, errors: false };
    /// Error classifiers only (Tables V/VI/VII with perfect boundaries).
    pub const ERRORS_ONLY: TrainStages = TrainStages { gesture: false, errors: true };
}

impl TrainedPipeline {
    /// Trains the full pipeline on the demonstrations selected by
    /// `train_idx`. A trailing ~20% of the training demonstrations is held
    /// out as the early-stopping validation split.
    ///
    /// # Panics
    ///
    /// Panics if `train_idx` is empty.
    pub fn train(dataset: &Dataset, train_idx: &[usize], cfg: &MonitorConfig) -> Self {
        Self::train_with_stats(dataset, train_idx, cfg).0
    }

    /// Like [`TrainedPipeline::train`] but also returns per-gesture training
    /// statistics (Table VII).
    pub fn train_with_stats(
        dataset: &Dataset,
        train_idx: &[usize],
        cfg: &MonitorConfig,
    ) -> (Self, Vec<GestureTrainStats>) {
        Self::train_stages(dataset, train_idx, cfg, TrainStages::ALL)
    }

    /// Trains only the requested stages; untrained stages keep their seeded
    /// initial weights (usable for [`ContextMode::Perfect`] /
    /// [`ContextMode::NoContext`] evaluation paths that do not rely on them).
    pub fn train_stages(
        dataset: &Dataset,
        train_idx: &[usize],
        cfg: &MonitorConfig,
        stages: TrainStages,
    ) -> (Self, Vec<GestureTrainStats>) {
        assert!(!train_idx.is_empty(), "empty training fold");
        let demos: Vec<&Demonstration> = train_idx.iter().map(|&i| &dataset.demos[i]).collect();
        let normalizer = Normalizer::fit(&demos, &cfg.features);
        let gesture_normalizer = Normalizer::fit(&demos, &cfg.gesture_features);
        let in_dim = normalizer.dims();
        let gesture_in_dim = gesture_normalizer.dims();

        // Harvest labeled windows from every training demonstration. The
        // gesture stage uses its own (wider) windows and feature set.
        let n_val_demos = (demos.len() / 5).max(1).min(demos.len() - 1);
        let (fit_demos, val_demos) = demos.split_at(demos.len() - n_val_demos);

        let harvest = |ds: &[&Demonstration]| {
            let mut gesture_samples: Vec<Sample> = Vec::new();
            let mut per_gesture: BTreeMap<usize, Vec<Sample>> = BTreeMap::new();
            let mut global: Vec<Sample> = Vec::new();
            for d in ds {
                let g_idx = d.gesture_indices();
                if stages.gesture {
                    let gfeats = gesture_normalizer.apply(&d.feature_matrix(&cfg.gesture_features));
                    let gw = kinematics::WindowConfig::new(cfg.gesture_window, cfg.train_stride);
                    for (w, pos) in windows_with_positions(&gfeats, gw) {
                        gesture_samples.push((w, g_idx[pos]));
                    }
                }
                if stages.errors {
                    let feats = normalizer.apply(&d.feature_matrix(&cfg.features));
                    let mut wcfg = cfg.window;
                    wcfg.stride = cfg.train_stride;
                    for (w, pos) in windows_with_positions(&feats, wcfg) {
                        let g = g_idx[pos];
                        let unsafe_ = d.unsafe_labels[pos] as usize;
                        per_gesture.entry(g).or_default().push((w.clone(), unsafe_));
                        global.push((w, unsafe_));
                    }
                }
            }
            (gesture_samples, per_gesture, global)
        };
        let (g_train, pg_train, glob_train) = harvest(fit_demos);
        let (g_val, pg_val, glob_val) = harvest(val_demos);

        // Stage 1: gesture classifier (class-weighted for imbalance).
        let mut gesture_net = Network::new(gesture_classifier_spec(cfg, gesture_in_dim), cfg.seed);
        if stages.gesture {
            let gesture_labels: Vec<usize> = g_train.iter().map(|(_, y)| *y).collect();
            let mut gesture_cfg = cfg.train.clone();
            gesture_cfg.class_weights =
                Some(inverse_frequency_weights(&gesture_labels, NUM_GESTURES));
            train_classifier(&mut gesture_net, &g_train, &g_val, &gesture_cfg);
        }

        // Stage 2: per-gesture error classifiers, trained in parallel over
        // the workspace's one audited fork-join primitive. Each gesture is a
        // self-contained job with its own derived seed (`cfg.seed ^ (g+1)`)
        // and `train_classifier` touches no shared mutable state, so the
        // trained weights are bit-identical for every worker count — the
        // shard assignment only decides *which thread* runs a job, never
        // *what* the job computes. `parallel_map` returns results in input
        // order, so the stats table and the BTreeMap insertions stay in
        // ascending gesture order too.
        let empty = Vec::new();
        let jobs: Vec<(usize, &Vec<Sample>)> = pg_train.iter().map(|(&g, s)| (g, s)).collect();
        let trained =
            crate::serve::parallel_map(&jobs, cfg.train_workers.max(1), |&(g, samples)| {
                let positives = samples.iter().filter(|(_, y)| *y == 1).count();
                let trainable = stages.errors
                    && samples.len() >= cfg.min_gesture_windows
                    && positives > 0
                    && positives < samples.len();
                let net = trainable.then(|| {
                    let val = pg_val.get(&g).unwrap_or(&empty);
                    train_binary(cfg, in_dim, samples, val, cfg.seed ^ (g as u64 + 1))
                });
                (g, positives, net)
            });
        let mut error_nets = BTreeMap::new();
        let mut stats = Vec::new();
        for ((g, positives, net), &(_, samples)) in trained.into_iter().zip(jobs.iter()) {
            let dedicated = net.is_some();
            if let Some(net) = net {
                error_nets.insert(g, net);
            }
            stats.push(GestureTrainStats {
                gesture: g,
                windows: samples.len(),
                error_rate: positives as f32 / samples.len() as f32,
                dedicated,
            });
        }

        // Baseline: single classifier over everything.
        let global_error_net = if stages.errors {
            let positives = glob_train.iter().filter(|(_, y)| *y == 1).count();
            (positives > 0 && positives < glob_train.len())
                .then(|| train_binary(cfg, in_dim, &glob_train, &glob_val, cfg.seed ^ 0xE5))
        } else {
            None
        };

        (
            Self {
                config: cfg.clone(),
                normalizer,
                gesture_normalizer,
                gesture_net,
                error_nets,
                global_error_net,
                in_dim,
                gesture_in_dim,
                quantized: None,
            },
            stats,
        )
    }

    /// Gesture classes with dedicated error classifiers.
    pub fn dedicated_gestures(&self) -> Vec<Gesture> {
        self.error_nets.keys().filter_map(|&g| Gesture::from_index(g)).collect()
    }

    /// Runs the monitor over a demonstration in the given context mode,
    /// producing per-frame predictions.
    ///
    /// Offline replay **is** the streaming path: this drives one
    /// [`InferenceEngine`] over the frames, so the outputs from the first
    /// fully warm frame onward are bit-identical to what
    /// [`SafetyMonitor::push`](crate::monitor::SafetyMonitor::push) emits.
    /// Frames before a stage's first output inherit that first output
    /// (warm-up backfill).
    ///
    /// # Panics
    ///
    /// Panics if the demonstration is shorter than either stage's window.
    pub fn run_demo(&self, demo: &Demonstration, mode: ContextMode) -> MonitorRun {
        self.run_demo_with(demo, mode, Precision::F32)
    }

    /// [`TrainedPipeline::run_demo`] on a chosen numeric tier. The
    /// [`Precision::Int8`] path replays through the quantized twin (the
    /// same engine code, quantized forward passes) — this is what the
    /// parity gate evaluates.
    ///
    /// # Panics
    ///
    /// Panics if the demonstration is shorter than either stage's window,
    /// or when asked for [`Precision::Int8`] before
    /// [`TrainedPipeline::quantize`] populated the quantized twin.
    pub fn run_demo_with(
        &self,
        demo: &Demonstration,
        mode: ContextMode,
        precision: Precision,
    ) -> MonitorRun {
        let w = self.config.window.width;
        let gw = self.config.gesture_window;
        assert!(demo.len() >= w.max(gw), "demonstration shorter than window");
        let started = Instant::now();

        let mut engine = InferenceEngine::with_precision(self, mode, precision);
        let mut gesture_pred = vec![0usize; demo.len()];
        let mut unsafe_score = vec![0.0f32; demo.len()];
        let mut first_gesture = None;
        let mut first_score = None;
        for (pos, frame) in demo.frames.iter().enumerate() {
            let step = match mode {
                ContextMode::Perfect => engine.step_with_context(self, frame, demo.gestures[pos]),
                _ => engine.step(self, frame).expect("step only fails in Perfect mode"),
            };
            if let Some(g) = step.gesture {
                first_gesture.get_or_insert(pos);
                gesture_pred[pos] = g.index();
            }
            if let Some(s) = step.unsafe_score {
                first_score.get_or_insert(pos);
                unsafe_score[pos] = s;
            }
        }
        // Warm-up backfill: frames before a stage's first output inherit it.
        if let Some(first) = first_gesture {
            let warm = gesture_pred[first];
            gesture_pred[..first].fill(warm);
        }
        if let Some(first) = first_score {
            let warm = unsafe_score[first];
            unsafe_score[..first].fill(warm);
        }

        let compute_ms = started.elapsed().as_secs_f32() * 1000.0 / demo.len() as f32;
        let unsafe_pred = unsafe_score.iter().map(|&s| s > 0.5).collect();
        MonitorRun { gesture_pred, unsafe_score, unsafe_pred, compute_ms }
    }

    /// Resolves which stage-2 classifier `gesture` routes to in `mode`:
    /// the dedicated per-gesture classifier with global fallback, or the
    /// global classifier alone in [`ContextMode::NoContext`]. `None` when
    /// no classifier exists at all (the score then defaults to 0).
    // lint: hot-path
    pub fn error_route(&self, gesture: usize, mode: ContextMode) -> Option<ErrorRoute> {
        match mode {
            ContextMode::NoContext => self.global_error_net.is_some().then_some(ErrorRoute::Global),
            _ => {
                if self.error_nets.contains_key(&gesture) {
                    Some(ErrorRoute::Dedicated(gesture))
                } else if self.global_error_net.is_some() {
                    Some(ErrorRoute::Global)
                } else {
                    None
                }
            }
        }
    }

    /// The classifier behind a route returned by
    /// [`TrainedPipeline::error_route`].
    ///
    /// # Panics
    ///
    /// Panics if the route does not exist in this pipeline (routes must
    /// come from `error_route` on the same pipeline).
    pub fn error_net(&self, route: ErrorRoute) -> &Network {
        match route {
            ErrorRoute::Dedicated(g) => &self.error_nets[&g],
            ErrorRoute::Global => {
                // lint: allow(panic, reason = "error_route() yields Global only when this pipeline holds a global net; checked at construction")
                self.global_error_net.as_ref().expect("route resolved against this pipeline")
            }
        }
    }

    /// Creates inference scratch fitting any of the stage-2 classifiers
    /// (they are built from one spec, so a single scratch serves every
    /// route). Empty scratch when no error classifier was trained.
    pub fn error_scratch(&self) -> NetworkScratch {
        self.error_nets
            .values()
            .next()
            .or(self.global_error_net.as_ref())
            .map(Network::make_scratch)
            .unwrap_or_default()
    }

    /// Scores one window's unsafe probability, routing to the
    /// gesture-specific classifier (with global fallback) or the global
    /// classifier depending on `mode`. Convenience wrapper that allocates
    /// fresh scratch; the hot path uses
    /// [`TrainedPipeline::score_window_scratch`].
    pub fn score_window(&self, window: &Mat, gesture: usize, mode: ContextMode) -> f32 {
        let mut logits = Mat::zeros(0, 0);
        let mut probs = [0.0f32; 2];
        let mut scratch = self.error_scratch();
        self.score_window_scratch(window, gesture, mode, &mut logits, &mut probs, &mut scratch)
    }

    /// Allocation-free [`TrainedPipeline::score_window`]: the forward pass
    /// writes into `logits`, the softmax into `probs`, and all intermediate
    /// activations into the caller's `scratch`, so the pipeline itself
    /// stays immutable (shareable across threads). Bit-identical results to
    /// `score_window`.
    // lint: hot-path
    pub fn score_window_scratch(
        &self,
        window: &Mat,
        gesture: usize,
        mode: ContextMode,
        logits: &mut Mat,
        probs: &mut [f32; 2],
        scratch: &mut NetworkScratch,
    ) -> f32 {
        match self.error_route(gesture, mode) {
            Some(route) => {
                self.error_net(route).predict_scratch(window, logits, scratch);
                softmax_into(logits.row(0), probs);
                probs[1]
            }
            None => 0.0,
        }
    }

    /// Serializes the pipeline to a checkpoint.
    pub fn save(&mut self) -> SavedPipeline {
        SavedPipeline {
            config: self.config.clone(),
            normalizer: self.normalizer.clone(),
            gesture_normalizer: self.gesture_normalizer.clone(),
            gesture: self.gesture_net.save(),
            errors: self.error_nets.iter_mut().map(|(&g, net)| (g, net.save())).collect(),
            global: self.global_error_net.as_mut().map(|n| n.save()),
            in_dim: self.in_dim,
            gesture_in_dim: self.gesture_in_dim,
        }
    }

    /// Restores a pipeline from a checkpoint.
    pub fn from_saved(saved: SavedPipeline) -> Self {
        Self {
            config: saved.config,
            normalizer: saved.normalizer,
            gesture_normalizer: saved.gesture_normalizer,
            gesture_net: Network::from_saved(&saved.gesture),
            error_nets: saved.errors.iter().map(|(g, s)| (*g, Network::from_saved(s))).collect(),
            global_error_net: saved.global.as_ref().map(Network::from_saved),
            in_dim: saved.in_dim,
            gesture_in_dim: saved.gesture_in_dim,
            quantized: None,
        }
    }

    /// Builds the calibrated int8 twin serving [`Precision::Int8`]
    /// (quantize-after-train), calibrating activation scales from the
    /// demonstrations selected by `calib_idx` (typically the training
    /// fold — calibration must never see test data). Windows are harvested
    /// non-overlapping through the same normalizers the engines apply at
    /// serving time, so calibration sees exactly the serving input
    /// distribution.
    ///
    /// # Errors
    ///
    /// [`QuantError::NoCalibration`] when `calib_idx` selects no windows;
    /// [`QuantError::Unsupported`] if a classifier architecture falls
    /// outside the quantizable layer set (the built-in specs never do).
    pub fn quantize(&mut self, dataset: &Dataset, calib_idx: &[usize]) -> Result<(), QuantError> {
        let cfg = self.config.clone();
        let mut gesture_cal: Vec<Mat> = Vec::new();
        let mut error_cal: Vec<Mat> = Vec::new();
        for &i in calib_idx {
            let d = &dataset.demos[i];
            let gfeats = self.gesture_normalizer.apply(&d.feature_matrix(&cfg.gesture_features));
            let gw = WindowConfig::new(cfg.gesture_window, cfg.gesture_window);
            for (w, _) in windows_with_positions(&gfeats, gw) {
                gesture_cal.push(w);
            }
            let feats = self.normalizer.apply(&d.feature_matrix(&cfg.features));
            let ew = WindowConfig::new(cfg.window.width, cfg.window.width);
            for (w, _) in windows_with_positions(&feats, ew) {
                error_cal.push(w);
            }
        }
        let gesture_net = QuantizedNetwork::quantize(&mut self.gesture_net, &gesture_cal)?;
        let mut error_nets = BTreeMap::new();
        for (&g, net) in self.error_nets.iter_mut() {
            error_nets.insert(g, QuantizedNetwork::quantize(net, &error_cal)?);
        }
        let global_error_net = match self.global_error_net.as_mut() {
            Some(net) => Some(QuantizedNetwork::quantize(net, &error_cal)?),
            None => None,
        };
        self.quantized = Some(QuantizedPipeline { gesture_net, error_nets, global_error_net });
        Ok(())
    }

    /// Scratch fitting any quantized stage-2 classifier (all buffers are
    /// high-water; one scratch serves every route).
    pub fn quant_scratch(&self) -> QuantScratch {
        QuantScratch::default()
    }

    /// [`TrainedPipeline::score_window_scratch`] on the int8 tier: same
    /// routing, quantized forward pass.
    ///
    /// # Panics
    ///
    /// Panics if [`TrainedPipeline::quantize`] has not populated the
    /// quantized twin (engines validate this at construction).
    // lint: hot-path
    pub fn score_window_scratch_q(
        &self,
        window: &Mat,
        gesture: usize,
        mode: ContextMode,
        logits: &mut Mat,
        probs: &mut [f32; 2],
        scratch: &mut QuantScratch,
    ) -> f32 {
        match self.error_route(gesture, mode) {
            Some(route) => {
                // lint: allow(panic, reason = "engines call quantize() before selecting Int8 precision; validated at engine construction")
                let quantized = self.quantized.as_ref().expect("quantize() before Int8 scoring");
                quantized.error_net(route).predict_scratch(window, logits, scratch);
                softmax_into(logits.row(0), probs);
                probs[1]
            }
            None => 0.0,
        }
    }
}

fn train_binary(
    cfg: &MonitorConfig,
    in_dim: usize,
    train: &[Sample],
    val: &[Sample],
    seed: u64,
) -> Network {
    let labels: Vec<usize> = train.iter().map(|(_, y)| *y).collect();
    let mut tc: TrainConfig = cfg.train.clone();
    tc.class_weights = Some(inverse_frequency_weights(&labels, 2));
    tc.seed = seed;
    let mut net = Network::new(error_classifier_spec(cfg, in_dim), seed);
    train_classifier(&mut net, train, val, &tc);
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use gestures::Task;
    use jigsaws::{generate, GeneratorConfig};
    use kinematics::FeatureSet;

    fn tiny_dataset() -> Dataset {
        generate(&GeneratorConfig::fast(Task::Suturing).with_seed(21))
    }

    fn tiny_cfg() -> MonitorConfig {
        let mut cfg = MonitorConfig::fast(FeatureSet::CRG).with_seed(3);
        cfg.train.epochs = 4;
        cfg.train_stride = 4;
        cfg
    }

    #[test]
    fn pipeline_trains_and_runs() {
        let ds = tiny_dataset();
        let idx: Vec<usize> = (0..ds.len()).collect();
        let (p, stats) = TrainedPipeline::train_with_stats(&ds, &idx, &tiny_cfg());
        assert!(!stats.is_empty());
        assert!(!p.error_nets.is_empty(), "no dedicated error classifiers trained");
        assert!(p.global_error_net.is_some());

        let run = p.run_demo(&ds.demos[0], ContextMode::Predicted);
        assert_eq!(run.gesture_pred.len(), ds.demos[0].len());
        assert_eq!(run.unsafe_score.len(), ds.demos[0].len());
        assert!(run.unsafe_score.iter().all(|s| (0.0..=1.0).contains(s)));
        assert!(run.compute_ms.is_finite() && run.compute_ms > 0.0);
    }

    #[test]
    fn perfect_mode_uses_ground_truth_gestures() {
        let ds = tiny_dataset();
        let idx: Vec<usize> = (0..ds.len()).collect();
        let p = TrainedPipeline::train(&ds, &idx, &tiny_cfg());
        let run = p.run_demo(&ds.demos[1], ContextMode::Perfect);
        let truth = ds.demos[1].gesture_indices();
        // After the warm-up, predictions equal ground truth exactly.
        let w = p.config.window.width;
        assert_eq!(&run.gesture_pred[w..], &truth[w..]);
    }

    #[test]
    fn save_load_roundtrip_preserves_outputs() {
        let ds = tiny_dataset();
        let idx: Vec<usize> = (0..ds.len()).collect();
        let mut p = TrainedPipeline::train(&ds, &idx, &tiny_cfg());
        let before = p.run_demo(&ds.demos[0], ContextMode::Predicted);
        let json = serde_json::to_string(&p.save()).unwrap();
        let saved: SavedPipeline = serde_json::from_str(&json).unwrap();
        let restored = TrainedPipeline::from_saved(saved);
        let after = restored.run_demo(&ds.demos[0], ContextMode::Predicted);
        assert_eq!(before.gesture_pred, after.gesture_pred);
        assert_eq!(before.unsafe_pred, after.unsafe_pred);
    }

    #[test]
    fn training_is_deterministic() {
        let ds = tiny_dataset();
        let idx: Vec<usize> = (0..ds.len()).collect();
        let a = TrainedPipeline::train(&ds, &idx, &tiny_cfg());
        let b = TrainedPipeline::train(&ds, &idx, &tiny_cfg());
        let ra = a.run_demo(&ds.demos[2], ContextMode::Predicted);
        let rb = b.run_demo(&ds.demos[2], ContextMode::Predicted);
        // compute_ms is wall-clock time and legitimately differs.
        assert_eq!(ra.gesture_pred, rb.gesture_pred);
        assert_eq!(ra.unsafe_score, rb.unsafe_score);
        assert_eq!(ra.unsafe_pred, rb.unsafe_pred);
    }
}
