//! Pipeline evaluation: the measurements behind Tables VII, VIII, IX and
//! Figs. 8/9.

use crate::pipeline::{ContextMode, MonitorRun, TrainedPipeline};
use eval::{
    auc, early_detection_rate, frames_to_ms, gesture_jitter, measure_reactions, BinaryCounts,
    ConfusionMatrix, ErrorEvent, RocCurve, Summary,
};
use gestures::NUM_GESTURES;
use kinematics::{Dataset, Demonstration};
use serde::{Deserialize, Serialize};

/// Evaluation of one test demonstration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DemoEval {
    /// Demonstration id.
    pub demo_id: String,
    /// AUC of the unsafe class (None when the demo has a single class).
    pub auc: Option<f32>,
    /// Frame-level F1 of the unsafe class (None when the demo has no
    /// unsafe frames).
    pub f1: Option<f32>,
    /// Reaction time per detected error event, milliseconds (Equation 4;
    /// positive = early).
    pub reaction_ms: Vec<f32>,
    /// Number of error events detected before their occurrence.
    pub early: usize,
    /// Total error events.
    pub events: usize,
    /// Mean per-window inference time (ms).
    pub compute_ms: f32,
    /// Per-frame unsafe scores (kept for ROC pooling / Fig. 9).
    pub scores: Vec<f32>,
    /// Ground-truth per-frame unsafe labels.
    pub labels: Vec<bool>,
}

/// Evaluation of the pipeline over a test fold.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineEval {
    /// Context mode evaluated.
    pub mode: ContextMode,
    /// Per-demonstration results.
    pub demos: Vec<DemoEval>,
    /// Sampling rate (for ms conversions).
    pub hz: f32,
}

/// Lookback (seconds) when matching detections to error events: a detection
/// slightly before the erroneous gesture still counts and yields a positive
/// reaction time (§IV-C, Fig. 8).
pub const REACTION_LOOKBACK_S: f32 = 1.0;

/// Builds [`eval::ErrorEvent`]s from a demonstration's annotations.
pub fn error_events(demo: &Demonstration) -> Vec<ErrorEvent> {
    demo.errors
        .iter()
        .map(|e| ErrorEvent {
            gesture: e.gesture.index(),
            span_start: e.span_start,
            span_end: e.span_end,
            actual_frame: e.actual_frame,
        })
        .collect()
}

/// Evaluates one run against its demonstration.
pub fn evaluate_run(demo: &Demonstration, run: &MonitorRun) -> DemoEval {
    let labels = demo.unsafe_labels.clone();
    let auc = auc(&run.unsafe_score, &labels);
    let has_positives = labels.iter().any(|&l| l);
    let f1 = has_positives.then(|| BinaryCounts::from_predictions(&run.unsafe_pred, &labels).f1());

    let lookback = (REACTION_LOOKBACK_S * demo.hz) as usize;
    let events = error_events(demo);
    let reactions = measure_reactions(&events, &run.unsafe_pred, lookback);
    let reaction_ms: Vec<f32> = reactions
        .iter()
        .filter_map(|r| r.reaction_frames())
        .map(|f| frames_to_ms(f, demo.hz))
        .collect();
    let early = reactions.iter().filter(|r| r.reaction_frames().is_some_and(|f| f > 0)).count();

    DemoEval {
        demo_id: demo.id.clone(),
        auc,
        f1,
        reaction_ms,
        early,
        events: events.len(),
        compute_ms: run.compute_ms,
        scores: run.unsafe_score.clone(),
        labels,
    }
}

/// Runs and evaluates the pipeline over the selected test demonstrations.
pub fn evaluate_pipeline(
    pipeline: &TrainedPipeline,
    dataset: &Dataset,
    test_idx: &[usize],
    mode: ContextMode,
) -> PipelineEval {
    let mut demos = Vec::with_capacity(test_idx.len());
    let mut hz = 30.0;
    for &i in test_idx {
        let demo = &dataset.demos[i];
        hz = demo.hz;
        let run = pipeline.run_demo(demo, mode);
        demos.push(evaluate_run(demo, &run));
    }
    PipelineEval { mode, demos, hz }
}

impl PipelineEval {
    /// Mean ± std of per-demo AUC (demos with defined AUC).
    pub fn auc_summary(&self) -> Summary {
        Summary::of(&self.demos.iter().filter_map(|d| d.auc).collect::<Vec<_>>())
    }

    /// Mean ± std of per-demo F1 (demos containing unsafe frames).
    pub fn f1_summary(&self) -> Summary {
        Summary::of(&self.demos.iter().filter_map(|d| d.f1).collect::<Vec<_>>())
    }

    /// Mean ± std reaction time over all detected error events (ms).
    pub fn reaction_summary(&self) -> Summary {
        let all: Vec<f32> = self.demos.iter().flat_map(|d| d.reaction_ms.clone()).collect();
        Summary::of(&all)
    }

    /// The paper's "% Early Detection": early detections over all events.
    pub fn early_detection_rate(&self) -> f32 {
        let events: usize = self.demos.iter().map(|d| d.events).sum();
        if events == 0 {
            return f32::NAN;
        }
        let early: usize = self.demos.iter().map(|d| d.early).sum();
        early as f32 / events as f32
    }

    /// Mean per-window compute time (ms).
    pub fn compute_ms(&self) -> f32 {
        let v: Vec<f32> =
            self.demos.iter().map(|d| d.compute_ms).filter(|c| c.is_finite()).collect();
        eval::mean(&v)
    }

    /// Per-demo ROC curves sorted by AUC (worst, …, best) — Fig. 9 picks
    /// worst/median/best.
    pub fn roc_curves(&self) -> Vec<(String, RocCurve)> {
        let mut curves: Vec<(String, RocCurve)> = self
            .demos
            .iter()
            .filter_map(|d| {
                RocCurve::from_scores(&d.scores, &d.labels).map(|c| (d.demo_id.clone(), c))
            })
            .collect();
        curves
            .sort_by(|a, b| a.1.auc().partial_cmp(&b.1.auc()).unwrap_or(std::cmp::Ordering::Equal));
        curves
    }

    /// One formatted Table VIII row.
    pub fn table8_row(&self, label: &str) -> String {
        format!(
            "{label:<55} AUC {}  F1 {}  react {:+.0} ms (±{:.0})  early {:.1}%  compute {:.2} ms",
            self.auc_summary(),
            self.f1_summary(),
            self.reaction_summary().mean,
            self.reaction_summary().std,
            100.0 * self.early_detection_rate(),
            self.compute_ms()
        )
    }
}

/// Per-gesture evaluation (Table IX).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GestureRow {
    /// Gesture class index.
    pub gesture: usize,
    /// Frame-level gesture detection accuracy (recall).
    pub detection_accuracy: f32,
    /// Mean jitter across all segments of this gesture (ms; positive =
    /// early).
    pub avg_jitter_ms: f32,
    /// Mean jitter across erroneous segments only (ms).
    pub avg_jitter_err_ms: f32,
    /// Mean reaction time over this gesture's error events (ms).
    pub avg_reaction_ms: f32,
    /// Frame-level F1 of the unsafe class restricted to this gesture.
    pub f1_err: f32,
    /// Number of error events.
    pub events: usize,
    /// Number of segments observed.
    pub segments: usize,
}

/// Computes the Table IX per-gesture breakdown over a test fold.
pub fn per_gesture_report(
    pipeline: &TrainedPipeline,
    dataset: &Dataset,
    test_idx: &[usize],
    mode: ContextMode,
) -> Vec<GestureRow> {
    let mut confusion = ConfusionMatrix::new(NUM_GESTURES);
    let mut jitter_all: Vec<Vec<f32>> = vec![Vec::new(); NUM_GESTURES];
    let mut jitter_err: Vec<Vec<f32>> = vec![Vec::new(); NUM_GESTURES];
    let mut reactions: Vec<Vec<f32>> = vec![Vec::new(); NUM_GESTURES];
    let mut counts: Vec<BinaryCounts> = vec![BinaryCounts::default(); NUM_GESTURES];
    let mut events_n = [0usize; NUM_GESTURES];
    let mut segments_n = [0usize; NUM_GESTURES];

    for &i in test_idx {
        let demo = &dataset.demos[i];
        let run = pipeline.run_demo(demo, mode);
        let truth = demo.gesture_indices();
        let lookback = (REACTION_LOOKBACK_S * demo.hz) as usize;

        for (t, &g) in truth.iter().enumerate() {
            confusion.record(g, run.gesture_pred[t]);
            counts[g].record(run.unsafe_pred[t], demo.unsafe_labels[t]);
        }

        for m in gesture_jitter(&truth, &run.gesture_pred, lookback) {
            segments_n[m.gesture] += 1;
            if let Some(j) = m.jitter_frames() {
                let ms = frames_to_ms(j, demo.hz);
                jitter_all[m.gesture].push(ms);
                let erroneous = demo
                    .errors
                    .iter()
                    .any(|e| e.gesture.index() == m.gesture && e.span_start == m.onset);
                if erroneous {
                    jitter_err[m.gesture].push(ms);
                }
            }
        }

        let events = error_events(demo);
        for r in measure_reactions(&events, &run.unsafe_pred, lookback) {
            events_n[r.event.gesture] += 1;
            if let Some(f) = r.reaction_frames() {
                reactions[r.event.gesture].push(frames_to_ms(f, demo.hz));
            }
        }
    }

    (0..NUM_GESTURES)
        .filter(|&g| segments_n[g] > 0)
        .map(|g| GestureRow {
            gesture: g,
            detection_accuracy: confusion.class_recall(g),
            avg_jitter_ms: eval::mean(&jitter_all[g]),
            avg_jitter_err_ms: eval::mean(&jitter_err[g]),
            avg_reaction_ms: eval::mean(&reactions[g]),
            f1_err: counts[g].f1(),
            events: events_n[g],
            segments: segments_n[g],
        })
        .collect()
}

/// Overall early-detection helper re-exported for the bench binaries.
pub fn overall_early_rate(reactions: &[eval::ReactionMeasurement]) -> f32 {
    early_detection_rate(reactions)
}

/// Nearest-rank percentile — re-exported from the workspace's one
/// statistics home ([`eval::percentile`], next to `mean`/`median`) for the
/// report renderers below.
pub use eval::percentile;

/// Per-decision latency distribution of a serving pool — the Table VIII
/// "average computation time" claim, upgraded from a mean to the tail
/// percentiles a production deployment is actually provisioned against.
/// Produced by `serve::ShardedMonitorPool::stats`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Decisions measured (warm frames only; warm-up frames carry no
    /// compute time).
    pub count: usize,
    /// Mean per-decision compute time (ms).
    pub mean_ms: f32,
    /// Median (ms). Histogram-quantized: reported as the containing
    /// bucket's upper edge, ≤ ~6% above the true quantile.
    pub p50_ms: f32,
    /// 99th percentile (ms). Histogram-quantized: reported as the
    /// containing bucket's upper edge, ≤ ~6% above the true quantile.
    pub p99_ms: f32,
    /// Exact maximum (ms).
    pub max_ms: f32,
}

impl LatencyStats {
    /// An empty measurement (no decisions yet).
    pub fn empty() -> Self {
        Self { count: 0, mean_ms: f32::NAN, p50_ms: f32::NAN, p99_ms: f32::NAN, max_ms: f32::NAN }
    }
}

impl std::fmt::Display for LatencyStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.count == 0 {
            return f.write_str("latency: no decisions measured");
        }
        write!(
            f,
            "latency over {} decisions: mean {:.3} ms  p50 {:.3} ms  p99 {:.3} ms  max {:.3} ms",
            self.count, self.mean_ms, self.p50_ms, self.p99_ms, self.max_ms
        )
    }
}

/// Latency decomposition of a serving pool: per-decision **compute** (the
/// micro-batched forward passes, amortized per frame) and **ingress-to-egress
/// queueing** (frame submit → decision drain, wall clock), so the closed-loop
/// reaction-time margin can be decomposed into model time vs. load-induced
/// waiting under fleet traffic. Produced by
/// `serve::ShardedMonitorPool::stats`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoolStats {
    /// Per-decision compute time. Warm decisions only: warm-up frames carry
    /// no compute measurement.
    pub compute: LatencyStats,
    /// Ingress-to-egress latency of **every** drained decision (warm-up
    /// frames queue like any other), measured from the `submit` call to the
    /// moment the decision left the egress channel.
    pub queue: LatencyStats,
    /// Live sessions per shard at the moment of the snapshot — the
    /// occupancy the elastic placement policy balances (sessions land on
    /// the least-occupied shard; removals free their slot). Sums to the
    /// pool's live session count.
    pub occupancy: Vec<usize>,
}

impl std::fmt::Display for PoolStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let live: usize = self.occupancy.iter().sum();
        write!(
            f,
            "compute  | {}\nqueueing | {}\nshards   | occupancy {:?} ({live} live session(s))",
            self.compute, self.queue, self.occupancy
        )
    }
}

/// Headline numbers of a closed-loop (twin-run) fault-injection campaign:
/// how often the reactor prevented the unsafe event the unmonitored twin
/// suffered, how often it stopped a trial that would have succeeded, and
/// how much reaction-time margin the alerts left. Filled in by
/// `faults::ClosedLoopReport::summary` and rendered by the
/// `repro_closed_loop` bench binary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClosedLoopSummary {
    /// Twin-run injections.
    pub injections: usize,
    /// Unmonitored twins that suffered the preventable unsafe event (a
    /// block drop).
    pub baseline_unsafe: usize,
    /// Of those, trials whose monitored twin did **not** drop the block.
    pub prevented: usize,
    /// Unmonitored twins that completed the task successfully.
    pub baseline_successes: usize,
    /// Of those, trials where the reactor engaged mitigation anyway.
    pub false_stops: usize,
    /// Monitored twins that raised at least one alert.
    pub alerted: usize,
    /// Reaction-time margins (ms): first alert to the counterfactual unsafe
    /// event of the unmonitored twin; positive = the alert came early.
    pub margins_ms: Vec<f32>,
}

impl ClosedLoopSummary {
    /// Prevented unsafe events over baseline unsafe events. The unmonitored
    /// baseline prevents nothing by construction, so any positive value
    /// beats it. `NaN` when the baseline had no unsafe events.
    pub fn prevention_rate(&self) -> f32 {
        if self.baseline_unsafe == 0 {
            return f32::NAN;
        }
        self.prevented as f32 / self.baseline_unsafe as f32
    }

    /// Mitigations engaged on would-have-succeeded trials, over baseline
    /// successes. `NaN` when the baseline never succeeded.
    pub fn false_stop_rate(&self) -> f32 {
        if self.baseline_successes == 0 {
            return f32::NAN;
        }
        self.false_stops as f32 / self.baseline_successes as f32
    }

    /// Fraction of measured margins that are positive (alert strictly
    /// before the counterfactual unsafe event).
    pub fn early_fraction(&self) -> f32 {
        if self.margins_ms.is_empty() {
            return f32::NAN;
        }
        self.margins_ms.iter().filter(|&&m| m > 0.0).count() as f32 / self.margins_ms.len() as f32
    }

    /// Renders the summary block of the reaction-time table. Undefined
    /// rates (no baseline unsafe events / no baseline successes) render as
    /// `n/a` instead of `NaN%`.
    pub fn render(&self) -> String {
        let pct = |rate: f32| {
            if rate.is_nan() {
                "n/a".to_string()
            } else {
                format!("{:.1}%", 100.0 * rate)
            }
        };
        let margins = &self.margins_ms;
        let mut out = String::new();
        out.push_str(&format!(
            "closed loop over {} twin-run injections\n\
             prevention:  {}/{} baseline block-drops prevented ({}; unmonitored baseline: 0%)\n\
             false stops: {}/{} baseline successes interrupted ({})\n",
            self.injections,
            self.prevented,
            self.baseline_unsafe,
            pct(self.prevention_rate()),
            self.false_stops,
            self.baseline_successes,
            pct(self.false_stop_rate()),
        ));
        if margins.is_empty() {
            out.push_str("reaction margin: no alerted baseline-unsafe trials\n");
        } else {
            out.push_str(&format!(
                "reaction margin ({} events): mean {:+.0} ms  p50 {:+.0} ms  min {:+.0} ms  \
                 max {:+.0} ms  early {:.1}%\n",
                margins.len(),
                eval::mean(margins),
                percentile(margins, 0.5),
                margins.iter().copied().fold(f32::INFINITY, f32::min),
                margins.iter().copied().fold(f32::NEG_INFINITY, f32::max),
                100.0 * self.early_fraction(),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MonitorConfig;
    use gestures::Task;
    use jigsaws::{generate, GeneratorConfig};
    use kinematics::FeatureSet;

    fn setup() -> (TrainedPipeline, Dataset, Vec<usize>, Vec<usize>) {
        let ds = generate(&GeneratorConfig::fast(Task::Suturing).with_seed(41).with_demos(10));
        let mut cfg = MonitorConfig::fast(FeatureSet::CRG).with_seed(9);
        cfg.train.epochs = 5;
        cfg.train_stride = 3;
        let folds = ds.loso_folds();
        let fold = &folds[0];
        let p = TrainedPipeline::train(&ds, &fold.train, &cfg);
        (p, ds.clone(), fold.train.clone(), fold.test.clone())
    }

    #[test]
    fn evaluation_produces_finite_metrics() {
        let (p, ds, _, test) = setup();
        let eval = evaluate_pipeline(&p, &ds, &test, ContextMode::Predicted);
        assert_eq!(eval.demos.len(), test.len());
        let auc = eval.auc_summary();
        assert!(auc.n > 0, "no demo produced a defined AUC");
        assert!(auc.mean > 0.0 && auc.mean <= 1.0);
        assert!(eval.compute_ms().is_finite());
        assert!(!eval.table8_row("test").is_empty());
    }

    #[test]
    fn perfect_context_is_at_least_as_good_on_gestures() {
        let (p, ds, _, test) = setup();
        let rows_perfect = per_gesture_report(&p, &ds, &test, ContextMode::Perfect);
        // With perfect boundaries, gesture detection accuracy is 1 for all
        // gestures (modulo the warm-up backfill).
        for r in &rows_perfect {
            assert!(
                r.detection_accuracy > 0.9,
                "gesture {} accuracy {} under perfect context",
                r.gesture,
                r.detection_accuracy
            );
        }
    }

    #[test]
    fn per_gesture_rows_cover_observed_gestures() {
        let (p, ds, _, test) = setup();
        let rows = per_gesture_report(&p, &ds, &test, ContextMode::Predicted);
        assert!(!rows.is_empty());
        for r in &rows {
            assert!(r.segments > 0);
            assert!((0.0..=1.0).contains(&r.detection_accuracy) || r.detection_accuracy.is_nan());
        }
    }

    #[test]
    fn latency_stats_render_without_panicking() {
        assert!(LatencyStats::empty().to_string().contains("no decisions"));
        let s = LatencyStats { count: 10, mean_ms: 1.0, p50_ms: 0.9, p99_ms: 2.0, max_ms: 2.5 };
        let text = s.to_string();
        assert!(text.contains("p99") && text.contains("10 decisions"));
    }

    #[test]
    fn closed_loop_summary_rates_and_rendering() {
        let s = ClosedLoopSummary {
            injections: 20,
            baseline_unsafe: 10,
            prevented: 7,
            baseline_successes: 6,
            false_stops: 1,
            alerted: 12,
            margins_ms: vec![300.0, -40.0, 120.0, 500.0],
        };
        assert!((s.prevention_rate() - 0.7).abs() < 1e-6);
        assert!((s.false_stop_rate() - 1.0 / 6.0).abs() < 1e-6);
        assert!((s.early_fraction() - 0.75).abs() < 1e-6);
        let text = s.render();
        assert!(text.contains("7/10") && text.contains("1/6"));

        let empty = ClosedLoopSummary {
            injections: 0,
            baseline_unsafe: 0,
            prevented: 0,
            baseline_successes: 0,
            false_stops: 0,
            alerted: 0,
            margins_ms: Vec::new(),
        };
        assert!(empty.prevention_rate().is_nan());
        assert!(empty.false_stop_rate().is_nan());
        let text = empty.render();
        assert!(text.contains("no alerted"));
        assert!(text.contains("(n/a;") && !text.contains("NaN"), "undefined rates render as n/a");
    }

    #[test]
    fn roc_curves_are_sorted_by_auc() {
        let (p, ds, _, test) = setup();
        let eval = evaluate_pipeline(&p, &ds, &test, ContextMode::Predicted);
        let curves = eval.roc_curves();
        for w in curves.windows(2) {
            assert!(w[0].1.auc() <= w[1].1.auc() + 1e-6);
        }
    }
}
